// L12 — Lemma 12's algorithm B as an experiment:
//   * consensus over the strongly-linearizable CAS queue (cost per decision,
//     always 1 decided value);
//   * k-set agreement over the k-out-of-order SL queue (<= k values);
//   * the Herlihy-Wing violation rate: fraction of random schedules on which
//     the merely-linearizable queue makes algorithm B disagree — the
//     measurable footprint of Theorem 17.
#include <benchmark/benchmark.h>

#include "agreement/lemma12.h"
#include "agreement/ordering.h"
#include "baselines/cas_structures.h"
#include "baselines/herlihy_wing_queue.h"
#include "sim/strategy.h"

namespace {

using namespace c2sl;

std::vector<int64_t> inputs_for(int n) {
  std::vector<int64_t> in(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<size_t>(i)] = 100 + i;
  return in;
}

void L12_Consensus_over_SL_CasQueue(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto ordering = agreement::queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::CasQueue>(w, "A");
  };
  uint64_t seed = 1;
  uint64_t agreed = 0;
  uint64_t total = 0;
  for (auto _ : state) {
    sim::RandomStrategy strategy(seed++);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      400000);
    ++total;
    if (res.check.ok()) ++agreed;
  }
  state.counters["agreement_rate"] = benchmark::Counter(
      static_cast<double>(agreed) / static_cast<double>(std::max<uint64_t>(total, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(L12_Consensus_over_SL_CasQueue)->Arg(3)->Arg(4)->Arg(6);

void L12_KSet_over_KOutOfOrderQueue(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  auto ordering = agreement::k_out_of_order_queue_ordering(n, k);
  auto make = [k](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::KOutOfOrderCasQueue>(w, "A", k);
  };
  uint64_t seed = 1;
  uint64_t within_k = 0;
  uint64_t total = 0;
  uint64_t distinct_sum = 0;
  for (auto _ : state) {
    sim::RandomStrategy strategy(seed++);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      400000);
    ++total;
    if (res.check.k_agreement) ++within_k;
    distinct_sum += static_cast<uint64_t>(res.check.distinct);
  }
  state.counters["within_k_rate"] = benchmark::Counter(
      static_cast<double>(within_k) / static_cast<double>(std::max<uint64_t>(total, 1)));
  state.counters["avg_distinct"] = benchmark::Counter(
      static_cast<double>(distinct_sum) / static_cast<double>(std::max<uint64_t>(total, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(L12_KSet_over_KOutOfOrderQueue)->Args({4, 2})->Args({6, 3});

void L12_ViolationRate_over_HerlihyWing(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto ordering = agreement::queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::HerlihyWingQueue>(w, "A");
  };
  uint64_t seed = 1;
  uint64_t violations = 0;
  uint64_t total = 0;
  for (auto _ : state) {
    sim::RandomStrategy strategy(seed++);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      400000);
    ++total;
    if (res.completed && !res.check.k_agreement) ++violations;
  }
  state.counters["violation_rate"] = benchmark::Counter(
      static_cast<double>(violations) / static_cast<double>(std::max<uint64_t>(total, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(L12_ViolationRate_over_HerlihyWing)->Arg(3)->Arg(4)->Arg(6);

}  // namespace
