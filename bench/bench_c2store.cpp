// C2Store service benchmark: thread-scaling sweep (1..hardware_concurrency),
// shard-count ablation, and the canonical op mixes, driven through the
// workload engine. Emits one c2sl-bench-v1 suite document (BENCH_c2store.json
// by default) and a human-readable summary on stdout.
//
//   $ ./bench_c2store [--quick] [--out FILE] [--ops N] [--threads-max N]
//                     [--bind cached|per_op] [--keys int|string] [--key-space N]
//                     [--sum-impl digest|scan] [--snap-impl digest|loop]
//
// --quick shrinks op counts for CI smoke runs. --bind selects the ref binding
// mode for every entry (bench names stay identical across modes), so two runs
// give the key-bound-refs vs per-op-routing comparison that tools/bench_diff
// gates in CI:
//
//   $ ./bench_c2store --keys string --bind per_op --out BENCH_perop.json
//   $ ./bench_c2store --keys string --bind cached --out BENCH_refs.json
//   $ tools/bench_diff.py BENCH_perop.json BENCH_refs.json
//
// --keys string is where bind-time caching earns its keep (FNV over every key
// byte per op otherwise); int keys route through one ~free SplitMix64 mix, so
// per-op routing is already competitive there. For the A/B gate use a
// --key-space that keeps the per-thread ref tables cache-resident (e.g. 512):
// at the default 4096, a timesliced many-thread run measures ref-TABLE
// eviction, not routing cost — real clients bind handles for their hot keys.
//
// --sum-impl selects how kCounterSum ops read the aggregate: the wait-free
// strongly-linearizable digest word (default) or the retired bounded
// double-collect scan. Bench names stay identical across the modes, so two
// runs give the scan-vs-digest ablation CI gates on the sum_heavy mix with a
// NEGATIVE bench_diff threshold (digest must beat the scan):
//
//   $ ./bench_c2store --sum-impl scan   --out BENCH_sum_scan.json
//   $ ./bench_c2store --sum-impl digest --out BENCH_sum_digest.json
//   $ tools/bench_diff.py BENCH_sum_scan.json BENCH_sum_digest.json
//         --bench-filter '^mix/sum_heavy$' --threshold=-0.10
//         --metrics throughput_ops_per_s     (one shell line)
//
// --acquire selects how the mix/session_churn entry (more worker threads
// than lanes; every op a full open->use->close cycle; latency percentiles
// are OPEN latencies) acquires its sessions: "block" parks on the handoff
// queue (open_session), "try" runs the retired try_open_session poll loop.
// Two runs give the acquisition ablation CI gates on that entry (block must
// not lose to try-poll):
//
//   $ ./bench_c2store --acquire try   --out BENCH_acquire_try.json
//   $ ./bench_c2store --acquire block --out BENCH_acquire_block.json
//   $ tools/bench_diff.py BENCH_acquire_try.json BENCH_acquire_block.json
//         --bench-filter '^mix/session_churn$' --threshold 0.30
//         --metrics throughput_ops_per_s,latency_ns.p50   (one shell line)
//
// --snap-impl selects how mix/snapshot_heavy's kSnapshot ops read the
// multi-key aggregate: the strongly linearizable journal-replay SnapshotRef
// ("digest", default) or the naive per-key read loop ("loop") — not even
// linearizable as one operation (the sim layer pins the refutation); it is
// the what-strong-linearizability-costs baseline. It costs nothing: the
// loop pays shard_count per-key digest reads per snapshot while the
// journal replay is one tail FAA plus the entries since the session's
// cursor, so digest WINS (2.3x locally at 4 threads) and CI gates it as an
// improvement requirement with a NEGATIVE threshold:
//
//   $ ./bench_c2store --snap-impl loop   --out BENCH_snap_loop.json
//   $ ./bench_c2store --snap-impl digest --out BENCH_snap_digest.json
//   $ tools/bench_diff.py BENCH_snap_loop.json BENCH_snap_digest.json
//         --bench-filter '^mix/snapshot_heavy$' --threshold=-0.10
//         --metrics throughput_ops_per_s   (one shell line)
//
// mix/transfer_audit (concurrent transfers + live conservation-checked
// snapshots) always runs snap_impl=digest — the loop cannot conserve, which
// is the refutation, not an ablation — so that entry is identical across
// --snap-impl runs.
//
// --resize-impl selects how mix/resize_storm serves its live shard resizes
// (worker 0 doubles the shard count every --resize-every of its ops, from 4
// shards up to the engine cap): "inplace" is the epoch hand-off — resizes run
// concurrently with data ops; "rebuild" is the stop-the-world baseline —
// every data op holds a reader lock and the resizer drains the store under
// the writer lock first. Two runs give the resize ablation CI gates on that
// entry with a NEGATIVE threshold (in-place must win):
//
//   $ ./bench_c2store --resize-impl rebuild --out BENCH_resize_rebuild.json
//   $ ./bench_c2store --resize-impl inplace --out BENCH_resize_inplace.json
//   $ tools/bench_diff.py BENCH_resize_rebuild.json BENCH_resize_inplace.json
//         --bench-include mix/resize_storm --threshold=-0.10
//         --metrics throughput_ops_per_s   (one shell line)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/trace_export.h"
#include "workload/engine.h"

using namespace c2sl;

namespace {

struct Args {
  bool quick = false;
  std::string out = "BENCH_c2store.json";
  uint64_t ops = 5000;
  bool ops_explicit = false;  // --quick only lowers ops when --ops is absent
  int threads_max = 0;        // 0 == hardware_concurrency
  std::string bind = "cached";
  std::string keys = "int";
  std::string sum_impl = "digest";
  std::string acquire = "block";
  std::string snap_impl = "digest";
  std::string resize_impl = "inplace";
  /// Worker 0's resize cadence for the mix/resize_storm entry (ops between
  /// shard-count doublings); 0 picks ops/8 so every run resizes a few times
  /// regardless of --ops / --quick.
  uint64_t resize_every = 0;
  uint64_t key_space = 4096;
  /// c2sl-metrics-v1 JSON snapshot of the mix/mixed run's store telemetry
  /// (plus the primitive-op calibration profile); empty = don't write. CI's
  /// overhead-ablation job uploads this as the `c2sl-metrics` artifact.
  std::string metrics_out;
  /// Same snapshot as a Prometheus text exposition; empty = don't write.
  std::string prom_out;
  /// c2sl-trace-v1 JSON of the mix/mixed run's witness trace; empty = don't
  /// write. CI's trace job audits this with tools/trace_audit.py.
  std::string trace_out;
  /// Same for the mix/transfer_audit run (the conservation-cut audit).
  std::string trace_audit_out;
  /// Chrome trace-event JSON of the mix/mixed run (chrome://tracing).
  std::string chrome_trace_out;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      a.out = argv[++i];
    } else if (arg == "--ops" && i + 1 < argc) {
      a.ops = std::strtoull(argv[++i], nullptr, 10);
      a.ops_explicit = true;
    } else if (arg == "--threads-max" && i + 1 < argc) {
      a.threads_max = std::atoi(argv[++i]);
    } else if (arg == "--bind" && i + 1 < argc) {
      a.bind = argv[++i];
    } else if (arg == "--keys" && i + 1 < argc) {
      a.keys = argv[++i];
    } else if (arg == "--sum-impl" && i + 1 < argc) {
      a.sum_impl = argv[++i];
    } else if (arg == "--acquire" && i + 1 < argc) {
      a.acquire = argv[++i];
    } else if (arg == "--snap-impl" && i + 1 < argc) {
      a.snap_impl = argv[++i];
    } else if (arg == "--resize-impl" && i + 1 < argc) {
      a.resize_impl = argv[++i];
    } else if (arg == "--resize-every" && i + 1 < argc) {
      a.resize_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--key-space" && i + 1 < argc) {
      a.key_space = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      a.metrics_out = argv[++i];
    } else if (arg == "--prom-out" && i + 1 < argc) {
      a.prom_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      a.trace_out = argv[++i];
    } else if (arg == "--trace-audit-out" && i + 1 < argc) {
      a.trace_audit_out = argv[++i];
    } else if (arg == "--chrome-trace-out" && i + 1 < argc) {
      a.chrome_trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE] [--ops N] [--threads-max N]"
                   " [--bind cached|per_op] [--keys int|string] [--key-space N]"
                   " [--sum-impl digest|scan] [--acquire block|try]"
                   " [--snap-impl digest|loop]"
                   " [--resize-impl inplace|rebuild] [--resize-every N]"
                   " [--metrics-out FILE] [--prom-out FILE]"
                   " [--trace-out FILE] [--trace-audit-out FILE]"
                   " [--chrome-trace-out FILE]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  if (a.quick && !a.ops_explicit) a.ops = 1000;
  return a;
}

wl::WorkloadResult run_one(wl::JsonWriter& w, const std::string& bench,
                           wl::WorkloadConfig cfg) {
  wl::WorkloadResult r = wl::run_workload(cfg);
  wl::append_result_entry(w, bench, r);
  std::printf("%-32s threads=%-2d shards=%-3d  %10.0f ops/s  p50=%6lld ns  p99=%8lld ns\n",
              bench.c_str(), cfg.threads, cfg.store.initial_shards, r.throughput_ops_s,
              static_cast<long long>(r.latency.p50_ns),
              static_cast<long long>(r.latency.p99_ns));
  if (r.wait_spread.waiters > 0) {
    // session_churn only: per-waiter open-latency fairness. The spread is the
    // max-min gap of each per-waiter statistic across waiters (0 = perfectly
    // even FIFO service).
    std::printf("%-32s waiters=%llu  p50 spread=%lld ns  p99 spread=%lld ns  "
                "max spread=%lld ns\n",
                "  wait-time-spread",
                static_cast<unsigned long long>(r.wait_spread.waiters),
                static_cast<long long>(r.wait_spread.p50_spread_ns),
                static_cast<long long>(r.wait_spread.p99_spread_ns),
                static_cast<long long>(r.wait_spread.max_spread_ns));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  int max_threads = args.threads_max > 0 ? args.threads_max : hw;
  max_threads = std::min(max_threads, 31);  // engine lane budget

  wl::JsonWriter w;
  w.begin_object();
  w.field("schema", "c2sl-bench-v1");
  w.field("suite", "bench_c2store");
  w.key("host").begin_object();
  w.field("hardware_concurrency", hw);
  w.field("bind", args.bind);
  w.field("keys", args.keys);
  w.field("sum_impl", args.sum_impl);
  w.field("acquire", args.acquire);
  w.field("snap_impl", args.snap_impl);
  w.field("resize_impl", args.resize_impl);
  w.field("key_space", args.key_space);
  w.end_object();
  w.key("results").begin_array();

  // --- thread-scaling sweep, zipfian keys, mixed ops ---
  for (int t = 1; t <= max_threads; ++t) {
    wl::WorkloadConfig cfg;
    cfg.threads = t;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = "zipfian";
    cfg.mix = wl::OpMix::mixed();
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = args.sum_impl;
    cfg.store.initial_shards = 16;
    run_one(w, "sweep/threads=" + std::to_string(t), cfg);
  }

  // --- shard-count ablation at full thread count ---
  for (int shards : {1, 2, 4, 8, 16, 32}) {
    wl::WorkloadConfig cfg;
    cfg.threads = max_threads;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = "zipfian";
    cfg.mix = wl::OpMix::mixed();
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = args.sum_impl;
    cfg.store.initial_shards = shards;
    run_one(w, "ablation/shards=" + std::to_string(shards), cfg);
  }

  // --- op-mix and key-distribution scenarios ---
  // The mix/mixed entry's store telemetry feeds --metrics-out / --prom-out
  // (the same entry the CI overhead-ablation gate diffs ON-vs-OFF).
  tel::MetricsSnapshot metrics;
  tel::TraceDump trace_mixed;
  tel::TraceDump trace_audit;
  const bool want_mixed_trace =
      !args.trace_out.empty() || !args.chrome_trace_out.empty();
  for (const char* mix :
       {"read_heavy", "write_heavy", "mixed", "aggregate_scan", "sum_heavy",
        "snapshot_heavy", "transfer_audit"}) {
    wl::WorkloadConfig cfg;
    cfg.threads = max_threads;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = "zipfian";
    cfg.mix = wl::OpMix::by_name(mix);
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = args.sum_impl;
    // transfer_audit pins digest: the loop cannot pass its live
    // conservation check (that impossibility is the sim layer's pinned
    // refutation, not an ablation axis).
    cfg.snap_impl =
        std::strcmp(mix, "transfer_audit") == 0 ? "digest" : args.snap_impl;
    cfg.store.initial_shards = 16;
    cfg.collect_trace =
        (std::strcmp(mix, "mixed") == 0 && want_mixed_trace) ||
        (std::strcmp(mix, "transfer_audit") == 0 && !args.trace_audit_out.empty());
    wl::WorkloadResult r = run_one(w, std::string("mix/") + mix, cfg);
    if (std::strcmp(mix, "mixed") == 0) {
      metrics = r.metrics;
      trace_mixed = std::move(r.trace);
    }
    if (std::strcmp(mix, "transfer_audit") == 0) trace_audit = std::move(r.trace);
  }
  // --- session churn: more threads than lanes, blocking-vs-try acquisition ---
  // The store keeps HALF the worker count in lanes, so every open contends;
  // --acquire selects how the open waits (park on the handoff queue vs the
  // retired try_open_session poll loop). Two runs give the ablation CI gates
  // on this entry: block must not lose to try-poll (tools/bench_diff
  // --bench-filter '^mix/session_churn$'). Latency percentiles here are OPEN
  // latencies (see workload/op_mix.h).
  {
    wl::WorkloadConfig cfg;
    cfg.threads = max_threads;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = "zipfian";
    cfg.mix = wl::OpMix::session_churn();
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = args.sum_impl;
    cfg.acquire = args.acquire;
    cfg.store.initial_shards = 16;
    cfg.store.max_threads = std::max(1, max_threads / 2);  // lanes < threads
    run_one(w, "mix/session_churn", cfg);
  }

  // --- resize storm: keyed traffic under live shard resizing ---
  // Worker 0 doubles the shard count on a fixed cadence while every worker
  // keeps writing/reading; --resize-impl picks the epoch hand-off vs the
  // stop-the-world reader/writer-lock baseline. Starts at 4 shards so the
  // schedule gets several doublings before the engine cap. The conservation
  // check (counter_sum == total incs across every cut) runs inside the
  // engine on this entry.
  {
    wl::WorkloadConfig cfg;
    cfg.threads = max_threads;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = "zipfian";
    cfg.mix = wl::OpMix::resize_storm();
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = "digest";  // post-resize slot scans over-approximate
    cfg.resize_impl = args.resize_impl;
    cfg.resize_every =
        args.resize_every > 0 ? args.resize_every : std::max<uint64_t>(1, args.ops / 8);
    cfg.store.initial_shards = 4;
    wl::WorkloadResult r = run_one(w, "mix/resize_storm", cfg);
    std::printf("%-32s resizes=%lld  final_shards=%d\n", "  resize-storm",
                static_cast<long long>(r.resizes_done), r.final_shards);
  }

  for (const char* dist : {"uniform", "hotburst"}) {
    wl::WorkloadConfig cfg;
    cfg.threads = max_threads;
    cfg.ops_per_thread = args.ops;
    cfg.key_space = args.key_space;
    cfg.dist = dist;
    cfg.mix = wl::OpMix::mixed();
    cfg.bind = args.bind;
    cfg.keys = args.keys;
    cfg.sum_impl = args.sum_impl;
    cfg.store.initial_shards = 16;
    run_one(w, std::string("dist/") + dist, cfg);
  }

  w.end_array();
  w.end_object();
  std::ofstream out(args.out);
  out << w.str() << "\n";
  std::printf("wrote %s\n", args.out.c_str());

  if (!args.metrics_out.empty() || !args.prom_out.empty()) {
    // The calibration pass (average FAA/TAS/swap per service op on a private
    // store) rides on the mix/mixed snapshot; a no-op when telemetry is off.
    wl::profile_primitives(metrics);
    if (!args.metrics_out.empty()) {
      std::ofstream mout(args.metrics_out);
      mout << tel::to_json(metrics, "bench_c2store") << "\n";
      std::printf("wrote %s\n", args.metrics_out.c_str());
    }
    if (!args.prom_out.empty()) {
      std::ofstream pout(args.prom_out);
      pout << tel::to_prometheus(metrics);
      std::printf("wrote %s\n", args.prom_out.c_str());
    }
  }
  if (!args.trace_out.empty()) {
    std::ofstream tout(args.trace_out);
    tout << tel::trace_to_json(trace_mixed, "bench_c2store:mix/mixed") << "\n";
    std::printf("wrote %s\n", args.trace_out.c_str());
  }
  if (!args.trace_audit_out.empty()) {
    std::ofstream tout(args.trace_audit_out);
    tout << tel::trace_to_json(trace_audit, "bench_c2store:mix/transfer_audit")
         << "\n";
    std::printf("wrote %s\n", args.trace_audit_out.c_str());
  }
  if (!args.chrome_trace_out.empty()) {
    std::ofstream tout(args.chrome_trace_out);
    tout << tel::trace_to_chrome(trace_mixed, "bench_c2store:mix/mixed") << "\n";
    std::printf("wrote %s\n", args.chrome_trace_out.c_str());
  }
  return 0;
}
