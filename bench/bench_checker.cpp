// CHK — verification tooling meta-experiment: linearizability-checker cost vs
// history length, and strong-linearizability model-checker cost vs execution-
// tree size. Justifies the bounded configs used in the test suite.
#include <benchmark/benchmark.h>

#include "core/max_register_faa.h"
#include "sim/explorer.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

namespace {

using namespace c2sl;

std::vector<sim::OpRecord> make_history(int n, int ops_per_proc, uint64_t seed) {
  sim::SimRun run(n);
  auto obj = std::make_shared<core::MaxRegisterFAA>(run.world, "m", n);
  for (int p = 0; p < n; ++p) {
    run.sched.spawn(p, [obj, p, ops_per_proc, seed](sim::Ctx& ctx) {
      Rng rng(seed + static_cast<uint64_t>(p));
      for (int j = 0; j < ops_per_proc; ++j) {
        verify::Invocation inv =
            rng.next_bool(0.5)
                ? verify::Invocation{"WriteMax", num(rng.next_in(0, 20)), p}
                : verify::Invocation{"ReadMax", unit(), p};
        core::invoke_recorded(ctx, *obj, inv);
      }
    });
  }
  sim::RandomStrategy strategy(seed ^ 0x77);
  run.sched.run(strategy, 1000000);
  return run.history.operations();
}

void CHK_LinChecker_HistoryLength(benchmark::State& state) {
  int ops_per_proc = static_cast<int>(state.range(0));
  auto history = make_history(4, ops_per_proc, 12);
  verify::MaxRegisterSpec spec;
  uint64_t checked = 0;
  for (auto _ : state) {
    auto res = verify::check_linearizability(history, spec);
    benchmark::DoNotOptimize(res.linearizable);
    ++checked;
  }
  state.counters["history_ops"] = benchmark::Counter(static_cast<double>(history.size()));
  state.SetItemsProcessed(static_cast<int64_t>(checked));
}
BENCHMARK(CHK_LinChecker_HistoryLength)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void CHK_StrongLinChecker_TreeSize(benchmark::State& state) {
  int write_ops = static_cast<int>(state.range(0));
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::MaxRegisterFAA>(w, "maxreg", n);
  };
  sim::ScenarioFn scenario = [factory, write_ops](sim::SimRun& run) {
    auto obj = factory(run.world, run.n());
    for (int p = 0; p < run.n(); ++p) {
      run.sched.spawn(p, [obj, p, write_ops](sim::Ctx& ctx) {
        for (int j = 0; j < write_ops; ++j) {
          core::invoke_recorded(ctx, *obj,
                                {"WriteMax", num(p * 10 + j), p});
        }
        core::invoke_recorded(ctx, *obj, {"ReadMax", unit(), p});
      });
    }
  };
  verify::MaxRegisterSpec spec;
  uint64_t tree_nodes = 0;
  for (auto _ : state) {
    sim::ExploreOptions opts;
    opts.max_depth = 24;
    opts.max_nodes = 400000;
    sim::ExecTree tree = sim::explore(3, scenario, opts);
    tree_nodes = tree.size();
    verify::StrongLinOptions slopts;
    slopts.object = "maxreg";
    auto res = verify::check_strong_linearizability(tree, spec, slopts);
    benchmark::DoNotOptimize(res.strongly_linearizable);
  }
  state.counters["tree_nodes"] = benchmark::Counter(static_cast<double>(tree_nodes));
}
BENCHMARK(CHK_StrongLinChecker_TreeSize)->Arg(1)->Arg(2);

}  // namespace
