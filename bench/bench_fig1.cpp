// FIG1 — one row per arrow of the paper's Figure 1 (the construction map).
//
// For every construction the bench drives a mixed workload under a random
// schedule in the simulator and reports operations/second plus base-object
// steps per operation (the model-level cost the paper reasons about). Shapes
// to expect: the §3 FAA constructions cost exactly 1 step/op; Theorem 5 costs
// <= 2; Theorem 6 stacks the max-register cost on top; Theorem 9/10 costs grow
// with contention (lock-free, not wait-free).
#include <benchmark/benchmark.h>

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/simple_type.h"
#include "core/sl_set.h"
#include "core/snapshot_faa.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"
#include "verify/specs.h"

namespace {

using namespace c2sl;

struct WorkloadStats {
  uint64_t ops = 0;
  uint64_t steps = 0;
};

/// Runs `ops_per_proc` invocations per process under a random schedule.
WorkloadStats drive(core::ConcurrentObject& obj, sim::SimRun& run, int ops_per_proc,
                    const std::function<verify::Invocation(int, int, Rng&)>& gen,
                    uint64_t seed) {
  WorkloadStats stats;
  int n = run.n();
  for (int p = 0; p < n; ++p) {
    run.sched.spawn(p, [&obj, &gen, &stats, p, ops_per_proc, seed](sim::Ctx& ctx) {
      Rng rng(seed * 131 + static_cast<uint64_t>(p));
      for (int j = 0; j < ops_per_proc; ++j) {
        verify::Invocation inv = gen(p, j, rng);
        inv.proc = p;
        obj.apply(ctx, inv);
        ++stats.ops;
      }
    });
  }
  sim::RandomStrategy strategy(seed);
  auto rr = run.sched.run(strategy, 100000000ULL);
  stats.steps = rr.steps;
  return stats;
}

verify::Invocation maxreg_gen(int, int, Rng& rng) {
  return rng.next_bool(0.5)
             ? verify::Invocation{"WriteMax", num(rng.next_in(0, 30)), -1}
             : verify::Invocation{"ReadMax", unit(), -1};
}

verify::Invocation snapshot_gen(int, int, Rng& rng) {
  return rng.next_bool(0.5) ? verify::Invocation{"Update", num(rng.next_in(0, 30)), -1}
                            : verify::Invocation{"Scan", unit(), -1};
}

void report(benchmark::State& state, const WorkloadStats& total) {
  state.counters["steps_per_op"] =
      benchmark::Counter(static_cast<double>(total.steps) /
                         static_cast<double>(std::max<uint64_t>(total.ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(total.ops));
}

// ---- §3.1 / Thm 1: max register <- fetch&add -------------------------------
void Fig1_MaxRegister_from_FAA(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::MaxRegisterFAA obj(run.world, "m", n);
    WorkloadStats s = drive(obj, run, 20, maxreg_gen, seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_MaxRegister_from_FAA)->Arg(2)->Arg(4)->Arg(8);

// ---- §3.2 / Thm 2: snapshot <- fetch&add -----------------------------------
void Fig1_Snapshot_from_FAA(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::SnapshotFAA obj(run.world, "s", n);
    WorkloadStats s = drive(obj, run, 20, snapshot_gen, seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_Snapshot_from_FAA)->Arg(2)->Arg(4)->Arg(8);

// ---- §3.3 / Thms 3-4: simple types <- snapshot <- fetch&add ----------------
void Fig1_Counter_from_Snapshot(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  static verify::CounterSpec spec;
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    auto obj = core::make_counter(run.world, "c", n, spec);
    WorkloadStats s = drive(*obj, run, 10,
                            [](int, int, Rng& rng) {
                              return rng.next_bool(0.7)
                                         ? verify::Invocation{"Inc", unit(), -1}
                                         : verify::Invocation{"Read", unit(), -1};
                            },
                            seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_Counter_from_Snapshot)->Arg(2)->Arg(4);

// ---- §4.1 / Thm 5: readable test&set <- test&set ---------------------------
void Fig1_ReadableTAS_from_TAS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTAS obj(run.world, "t");
    WorkloadStats s = drive(obj, run, 20,
                            [](int, int, Rng& rng) {
                              return rng.next_bool(0.3)
                                         ? verify::Invocation{"TAS", unit(), -1}
                                         : verify::Invocation{"Read", unit(), -1};
                            },
                            seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_ReadableTAS_from_TAS)->Arg(2)->Arg(4)->Arg(8);

// ---- §4.1 / Thm 6 + Cor 7: multishot TAS <- readable TAS + max register ----
void Fig1_MultishotTAS_Cor7(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::MaxRegisterFAA curr(run.world, "curr", n);
    core::ReadableTasArray ts(run.world, "TS");
    core::MultishotTAS obj("mt", curr, ts);
    WorkloadStats s = drive(obj, run, 15,
                            [](int, int, Rng& rng) {
                              uint64_t r = rng.next_below(10);
                              if (r < 4) return verify::Invocation{"TAS", unit(), -1};
                              if (r < 7) return verify::Invocation{"Read", unit(), -1};
                              return verify::Invocation{"Reset", unit(), -1};
                            },
                            seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_MultishotTAS_Cor7)->Arg(2)->Arg(4);

// ---- §4.2 / Thm 9: fetch&increment <- readable test&set --------------------
void Fig1_FetchIncrement_from_TAS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray ts(run.world, "M");
    core::FetchIncrement obj("f", ts);
    WorkloadStats s = drive(obj, run, 10,
                            [](int, int, Rng& rng) {
                              return rng.next_bool(0.7)
                                         ? verify::Invocation{"FAI", unit(), -1}
                                         : verify::Invocation{"Read", unit(), -1};
                            },
                            seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_FetchIncrement_from_TAS)->Arg(2)->Arg(4)->Arg(8);

// ---- §4.3 / Thm 10: set <- test&set + fetch&increment ----------------------
void Fig1_Set_from_TAS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkloadStats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray fai_ts(run.world, "MaxM");
    core::FetchIncrement fai("Max", fai_ts);
    core::SLSet obj(run.world, "set", fai);
    WorkloadStats s = drive(obj, run, 8,
                            [](int p, int j, Rng& rng) {
                              if (rng.next_bool(0.6)) {
                                return verify::Invocation{"Put", num(p * 100 + j), -1};
                              }
                              return verify::Invocation{"Take", unit(), -1};
                            },
                            seed++);
    total.ops += s.ops;
    total.steps += s.steps;
  }
  report(state, total);
}
BENCHMARK(Fig1_Set_from_TAS)->Arg(2)->Arg(4);

}  // namespace
