// T1 — max register variants (paper §3.1 vs alternatives): FAA-packed (Thm 1),
// atomic reference, plain AAC tree (registers, bounded), per-process collect
// (registers, unbounded). Sweeps process count and value range; reports steps
// per operation. Expected shape: FAA == 1 step/op always; tree == O(log B);
// collect: 2-step writes, n-step reads.
#include <benchmark/benchmark.h>

#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

enum class Variant { kFAA, kAtomic, kTree, kCollect };

void run_variant(benchmark::State& state, Variant variant) {
  int n = static_cast<int>(state.range(0));
  int64_t range = state.range(1);
  uint64_t ops = 0;
  uint64_t steps = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    std::unique_ptr<core::MaxRegisterIface> obj;
    core::ConcurrentObject* as_obj = nullptr;
    switch (variant) {
      case Variant::kFAA: {
        auto p = std::make_unique<core::MaxRegisterFAA>(run.world, "m", n);
        as_obj = p.get();
        obj = std::move(p);
        break;
      }
      case Variant::kAtomic: {
        auto p = std::make_unique<core::AtomicMaxRegister>(run.world, "m");
        as_obj = p.get();
        obj = std::move(p);
        break;
      }
      case Variant::kTree: {
        int64_t capacity = 2;
        while (capacity <= range) capacity *= 2;
        auto p = std::make_unique<core::BoundedRWMaxRegister>(run.world, "m", capacity);
        as_obj = p.get();
        obj = std::move(p);
        break;
      }
      case Variant::kCollect: {
        auto p = std::make_unique<core::CollectMaxRegister>(run.world, "m", n);
        as_obj = p.get();
        obj = std::move(p);
        break;
      }
    }
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [as_obj, p, range, seed, &ops](sim::Ctx& ctx) {
        Rng rng(seed * 997 + static_cast<uint64_t>(p));
        for (int j = 0; j < 20; ++j) {
          verify::Invocation inv =
              rng.next_bool(0.5)
                  ? verify::Invocation{"WriteMax", num(rng.next_in(0, range)), p}
                  : verify::Invocation{"ReadMax", unit(), p};
          as_obj->apply(ctx, inv);
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(std::max<uint64_t>(ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}

void T1_MaxRegister_FAA(benchmark::State& s) { run_variant(s, Variant::kFAA); }
void T1_MaxRegister_Atomic(benchmark::State& s) { run_variant(s, Variant::kAtomic); }
void T1_MaxRegister_AacTree(benchmark::State& s) { run_variant(s, Variant::kTree); }
void T1_MaxRegister_Collect(benchmark::State& s) { run_variant(s, Variant::kCollect); }

BENCHMARK(T1_MaxRegister_FAA)->Args({2, 15})->Args({4, 15})->Args({4, 255})->Args({8, 63});
BENCHMARK(T1_MaxRegister_Atomic)->Args({2, 15})->Args({4, 15})->Args({4, 255})->Args({8, 63});
BENCHMARK(T1_MaxRegister_AacTree)->Args({2, 15})->Args({4, 15})->Args({4, 255})->Args({8, 63});
BENCHMARK(T1_MaxRegister_Collect)->Args({2, 15})->Args({4, 15})->Args({4, 255})->Args({8, 63});

// §6 width observation: register bit growth of the unary FAA encoding as a
// function of the largest written value.
void T1_RegisterWidthGrowth(benchmark::State& state) {
  int n = 4;
  int64_t max_value = state.range(0);
  uint64_t bits = 0;
  for (auto _ : state) {
    sim::World world;
    core::MaxRegisterFAA m(world, "m", n);
    sim::Ctx solo;
    solo.world = &world;
    for (int p = 0; p < n; ++p) {
      solo.self = p;
      m.write_max(solo, max_value - p);
    }
    bits = m.register_bits(solo);
  }
  state.counters["register_bits"] = benchmark::Counter(static_cast<double>(bits));
}
BENCHMARK(T1_RegisterWidthGrowth)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace
