// NAT — native std::atomic constructions on real threads: throughput of the
// bounded §3/§4 variants under genuine hardware contention. (On a single-core
// host the thread counts time-slice; the numbers are functional throughput,
// not a scaling study.)
//
// Emits BENCH_native.json in the repo-wide c2sl-bench-v1 schema alongside the
// usual console output.
#include <benchmark/benchmark.h>

#include "json_reporter.h"

#include "runtime/native_max_register.h"
#include "runtime/native_snapshot.h"
#include "runtime/native_tas_family.h"
#include "runtime/stress.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

void NAT_MaxRegister(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  uint64_t ops = 0;
  for (auto _ : state) {
    rt::NativeMaxRegister64 reg(threads, 63 / threads);
    rt::run_stress(threads, 200, [&](int t, int j) {
      rt::TimedOp op;
      if (j % 2 == 0) {
        reg.write_max(t, j % (63 / threads));
      } else {
        benchmark::DoNotOptimize(reg.read_max());
      }
      return op;
    });
    ops += static_cast<uint64_t>(threads) * 200;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(NAT_MaxRegister)->Arg(1)->Arg(2)->Arg(4);

void NAT_Snapshot(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  uint64_t ops = 0;
  for (auto _ : state) {
    rt::NativeSnapshot64 snap(threads, 64 / threads > 8 ? 8 : 64 / threads);
    rt::run_stress(threads, 200, [&](int t, int j) {
      rt::TimedOp op;
      if (j % 2 == 0) {
        snap.update(t, j % 7);
      } else {
        benchmark::DoNotOptimize(snap.scan());
      }
      return op;
    });
    ops += static_cast<uint64_t>(threads) * 200;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(NAT_Snapshot)->Arg(1)->Arg(2)->Arg(4);

void NAT_FetchIncrement(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  const int per_thread = 300;
  uint64_t ops = 0;
  for (auto _ : state) {
    rt::NativeFetchIncrement fai;
    rt::run_stress(threads, per_thread, [&](int, int) {
      rt::TimedOp op;
      benchmark::DoNotOptimize(fai.fetch_and_increment());
      return op;
    });
    ops += static_cast<uint64_t>(threads * per_thread);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(NAT_FetchIncrement)->Arg(1)->Arg(2)->Arg(4);

void NAT_Set(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  const int per_thread = 200;
  uint64_t ops = 0;
  for (auto _ : state) {
    rt::NativeSet set;
    rt::run_stress(threads, per_thread, [&](int t, int j) {
      rt::TimedOp op;
      if (j % 2 == 0) {
        set.put(t * 100000 + j);
      } else {
        benchmark::DoNotOptimize(set.take());
      }
      return op;
    });
    ops += static_cast<uint64_t>(threads * per_thread);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(NAT_Set)->Arg(1)->Arg(2)->Arg(4);

// The reference comparison the paper's motivation implies: the native
// fetch&add-based readable F&I (1 instruction) vs the TAS-array construction.
void NAT_FetchAdd_Reference(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  const int per_thread = 300;
  uint64_t ops = 0;
  for (auto _ : state) {
    std::atomic<int64_t> ctr{0};
    rt::run_stress(threads, per_thread, [&](int, int) {
      rt::TimedOp op;
      benchmark::DoNotOptimize(ctr.fetch_add(1, std::memory_order_seq_cst));
      return op;
    });
    ops += static_cast<uint64_t>(threads * per_thread);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(NAT_FetchAdd_Reference)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return c2bench::run_with_schema_reporter(argc, argv, "bench_native",
                                           "BENCH_native.json");
}
