// T3/T4 — the Algorithm 1 simple-type construction: cost of the graph-based
// execute as history grows, the snapshot-backend ablation (SL SnapshotFAA per
// Theorem 4 vs a hypothetical atomic snapshot), and counter-vs-direct overhead.
// Expected shape: per-op cost grows linearly with published operations (the
// A-H construction keeps the whole operation graph); the snapshot backend
// contributes a constant per operation.
#include <benchmark/benchmark.h>

#include "core/max_register_faa.h"
#include "core/simple_type.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"
#include "verify/specs.h"

namespace {

using namespace c2sl;

verify::CounterSpec g_counter_spec;
verify::MaxRegisterSpec g_maxreg_spec;
verify::UnionSetSpec g_union_spec;

void T4_Counter_OpsScaling(benchmark::State& state) {
  int n = 3;
  int ops_per_proc = static_cast<int>(state.range(0));
  uint64_t ops = 0;
  uint64_t steps = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    auto obj = core::make_counter(run.world, "c", n, g_counter_spec);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, ops_per_proc, &ops](sim::Ctx& ctx) {
        for (int j = 0; j < ops_per_proc; ++j) {
          obj->apply(ctx, {"Inc", unit(), ctx.self});
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(std::max<uint64_t>(ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(T4_Counter_OpsScaling)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void T4_Instances(benchmark::State& state) {
  int n = 3;
  int which = static_cast<int>(state.range(0));
  uint64_t ops = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    std::unique_ptr<core::SimpleTypeObject> obj;
    std::function<verify::Invocation(Rng&)> gen;
    switch (which) {
      case 0:
        obj = core::make_counter(run.world, "o", n, g_counter_spec);
        gen = [](Rng& rng) {
          return rng.next_bool(0.7) ? verify::Invocation{"Inc", unit(), -1}
                                    : verify::Invocation{"Read", unit(), -1};
        };
        break;
      case 1:
        obj = core::make_max_register_st(run.world, "o", n, g_maxreg_spec);
        gen = [](Rng& rng) {
          return rng.next_bool(0.5)
                     ? verify::Invocation{"WriteMax", num(rng.next_in(0, 50)), -1}
                     : verify::Invocation{"ReadMax", unit(), -1};
        };
        break;
      default:
        obj = core::make_union_set(run.world, "o", n, g_union_spec);
        gen = [](Rng& rng) {
          int64_t x = rng.next_in(0, 8);
          return rng.next_bool(0.5) ? verify::Invocation{"Insert", num(x), -1}
                                    : verify::Invocation{"Has", num(x), -1};
        };
        break;
    }
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, &gen, p, seed, &ops](sim::Ctx& ctx) {
        Rng rng(seed * 13 + static_cast<uint64_t>(p));
        for (int j = 0; j < 10; ++j) {
          verify::Invocation inv = gen(rng);
          inv.proc = p;
          obj->apply(ctx, inv);
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    run.sched.run(strategy, 100000000ULL);
  }
  state.SetLabel(which == 0 ? "counter" : which == 1 ? "max_register" : "union_set");
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(T4_Instances)->Arg(0)->Arg(1)->Arg(2);

// Ablation: direct FAA max register vs the same object built through the
// Algorithm 1 graph machinery — the cost of generality.
void T4_MaxRegister_DirectVsSimpleType(benchmark::State& state) {
  bool direct = state.range(0) == 0;
  int n = 3;
  uint64_t ops = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    std::unique_ptr<core::ConcurrentObject> obj;
    if (direct) {
      obj = std::make_unique<core::MaxRegisterFAA>(run.world, "m", n);
    } else {
      obj = core::make_max_register_st(run.world, "m", n, g_maxreg_spec);
    }
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, seed, &ops](sim::Ctx& ctx) {
        Rng rng(seed * 17 + static_cast<uint64_t>(p));
        for (int j = 0; j < 10; ++j) {
          verify::Invocation inv =
              rng.next_bool(0.5)
                  ? verify::Invocation{"WriteMax", num(rng.next_in(0, 30)), p}
                  : verify::Invocation{"ReadMax", unit(), p};
          obj->apply(ctx, inv);
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    run.sched.run(strategy, 100000000ULL);
  }
  state.SetLabel(direct ? "direct_faa" : "via_algorithm1");
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(T4_MaxRegister_DirectVsSimpleType)->Arg(0)->Arg(1);

}  // namespace
