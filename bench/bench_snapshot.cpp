// T2 — snapshots: the §3.2 fetch&add construction vs the register-based AADGMS
// baseline. Expected shape: FAA scans are 1 step regardless of n; AADGMS scans
// cost at least 2n reads and degrade under update contention (unclean double
// collects); FAA updates pay BigInt arithmetic proportional to lane width.
#include <benchmark/benchmark.h>

#include "baselines/aadgms_snapshot.h"
#include "core/snapshot_faa.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

template <typename Snap>
void run_snapshot(benchmark::State& state, double update_prob) {
  int n = static_cast<int>(state.range(0));
  int64_t range = state.range(1);
  uint64_t ops = 0;
  uint64_t steps = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    Snap obj(run.world, "s", n);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, range, update_prob, seed, &ops](sim::Ctx& ctx) {
        Rng rng(seed * 31 + static_cast<uint64_t>(p));
        for (int j = 0; j < 15; ++j) {
          if (rng.next_bool(update_prob)) {
            obj.update(ctx, rng.next_in(0, range));
          } else {
            benchmark::DoNotOptimize(obj.scan(ctx));
          }
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps) / static_cast<double>(std::max<uint64_t>(ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}

void T2_Snapshot_FAA(benchmark::State& s) { run_snapshot<core::SnapshotFAA>(s, 0.5); }
void T2_Snapshot_AADGMS(benchmark::State& s) {
  run_snapshot<baselines::AadgmsSnapshot>(s, 0.5);
}
void T2_Snapshot_FAA_UpdateHeavy(benchmark::State& s) {
  run_snapshot<core::SnapshotFAA>(s, 0.9);
}
void T2_Snapshot_AADGMS_UpdateHeavy(benchmark::State& s) {
  run_snapshot<baselines::AadgmsSnapshot>(s, 0.9);
}

BENCHMARK(T2_Snapshot_FAA)->Args({2, 100})->Args({4, 100})->Args({8, 100});
BENCHMARK(T2_Snapshot_AADGMS)->Args({2, 100})->Args({4, 100})->Args({8, 100});
BENCHMARK(T2_Snapshot_FAA_UpdateHeavy)->Args({4, 100})->Args({8, 100});
BENCHMARK(T2_Snapshot_AADGMS_UpdateHeavy)->Args({4, 100})->Args({8, 100});

// Value-width sweep for the FAA snapshot: BigInt cost grows with lane width,
// the price of packing everything into one register (§6 discussion).
void T2_Snapshot_FAA_ValueWidth(benchmark::State& state) {
  int n = 4;
  int64_t range = (int64_t{1} << state.range(0)) - 1;
  uint64_t ops = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::SnapshotFAA obj(run.world, "s", n);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, range, seed, &ops](sim::Ctx& ctx) {
        Rng rng(seed * 7 + static_cast<uint64_t>(p));
        for (int j = 0; j < 15; ++j) {
          obj.update(ctx, rng.next_in(0, range));
          ++ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    run.sched.run(strategy, 100000000ULL);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(T2_Snapshot_FAA_ValueWidth)->Arg(4)->Arg(16)->Arg(32)->Arg(48);

}  // namespace
