// T5/T6/T9/T10 — the §4 family: readable test&set, the three multi-shot
// test&set backends (Thm 6 atomic bases, Cor 7 FAA max register, the
// registers-only collect max register), fetch&increment one-shot vs
// multi-shot, and the Algorithm 2 set under different put/take mixes.
//
// Emits BENCH_tas_family.json in the repo-wide c2sl-bench-v1 schema alongside
// the usual console output.
#include <benchmark/benchmark.h>

#include "json_reporter.h"

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/sl_set.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

struct Stats {
  uint64_t ops = 0;
  uint64_t steps = 0;
};

void report(benchmark::State& state, const Stats& s) {
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(s.steps) / static_cast<double>(std::max<uint64_t>(s.ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(s.ops));
}

void T5_ReadableTAS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTAS obj(run.world, "t");
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 101);
        for (int j = 0; j < 25; ++j) {
          if (rng.next_bool(0.3)) {
            obj.test_and_set(ctx);
          } else {
            obj.read(ctx);
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  report(state, total);
}
BENCHMARK(T5_ReadableTAS)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

enum class MtasBackend { kAtomic, kCor7, kCollect };

void run_mtas(benchmark::State& state, MtasBackend backend) {
  int n = static_cast<int>(state.range(0));
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    std::unique_ptr<core::MaxRegisterIface> curr;
    std::unique_ptr<core::ReadableTasArrayIface> ts;
    switch (backend) {
      case MtasBackend::kAtomic:
        curr = std::make_unique<core::AtomicMaxRegister>(run.world, "curr");
        ts = std::make_unique<core::AtomicReadableTasArray>(run.world, "TS");
        break;
      case MtasBackend::kCor7:
        curr = std::make_unique<core::MaxRegisterFAA>(run.world, "curr", n);
        ts = std::make_unique<core::ReadableTasArray>(run.world, "TS");
        break;
      case MtasBackend::kCollect:
        curr = std::make_unique<core::CollectMaxRegister>(run.world, "curr", n);
        ts = std::make_unique<core::ReadableTasArray>(run.world, "TS");
        break;
    }
    core::MultishotTAS obj("mt", *curr, *ts);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 211);
        for (int j = 0; j < 15; ++j) {
          uint64_t r = rng.next_below(10);
          if (r < 4) {
            obj.test_and_set(ctx);
          } else if (r < 7) {
            obj.read(ctx);
          } else {
            obj.reset(ctx);
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  report(state, total);
}

void T6_MultishotTAS_AtomicBases(benchmark::State& s) { run_mtas(s, MtasBackend::kAtomic); }
void T6_MultishotTAS_Cor7_FAA(benchmark::State& s) { run_mtas(s, MtasBackend::kCor7); }
void T6_MultishotTAS_CollectMax(benchmark::State& s) { run_mtas(s, MtasBackend::kCollect); }
BENCHMARK(T6_MultishotTAS_AtomicBases)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(T6_MultishotTAS_Cor7_FAA)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(T6_MultishotTAS_CollectMax)->Arg(2)->Arg(4)->Arg(8);

void T9_FetchIncrement(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool one_shot = state.range(1) == 1;
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray ts(run.world, "M");
    core::FetchIncrement obj("f", ts, one_shot);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, one_shot, &total](sim::Ctx& ctx) {
        int reps = one_shot ? 1 : 10;
        for (int j = 0; j < reps; ++j) {
          obj.fetch_and_increment(ctx);
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.SetLabel(one_shot ? "one_shot(wait-free)" : "multi_shot(lock-free)");
  report(state, total);
}
BENCHMARK(T9_FetchIncrement)->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({4, 1})->Args({8, 1});

void T10_Set(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  double put_prob = static_cast<double>(state.range(1)) / 100.0;
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray fai_ts(run.world, "MaxM");
    core::FetchIncrement fai("Max", fai_ts);
    core::SLSet obj(run.world, "set", fai);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, put_prob, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 401);
        for (int j = 0; j < 10; ++j) {
          if (rng.next_bool(put_prob)) {
            obj.put(ctx, p * 1000 + j);
          } else {
            benchmark::DoNotOptimize(obj.take(ctx));
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.SetLabel("put%=" + std::to_string(static_cast<int>(put_prob * 100)));
  report(state, total);
}
BENCHMARK(T10_Set)->Args({2, 70})->Args({4, 70})->Args({4, 30})->Args({8, 50});

}  // namespace

int main(int argc, char** argv) {
  return c2bench::run_with_schema_reporter(argc, argv, "bench_tas_family",
                                           "BENCH_tas_family.json");
}
