// T5/T6/T9/T10 — the §4 family: readable test&set, the three multi-shot
// test&set backends (Thm 6 atomic bases, Cor 7 FAA max register, the
// registers-only collect max register), fetch&increment one-shot vs
// multi-shot, and the Algorithm 2 set under different put/take mixes.
//
// Emits BENCH_tas_family.json in the repo-wide c2sl-bench-v1 schema alongside
// the usual console output (`--out=PATH` overrides the artifact path).
//
// NATIVE ABLATION (`--impl=flat|segmented`): the same binary also registers
// real-thread benchmarks of the Thm 9 fetch&increment read path over either
//   * flat    — the retired fixed-capacity array with the O(value) ascending
//               scan (reference implementation kept below), or
//   * segmented — the shipped rt::NativeFetchIncrement over doubling
//               segments with the galloped O(log value) search.
// Bench names are impl-agnostic ("NativeFaiRead/<value>", ...), so two runs
// diff directly:
//   ./bench_tas_family --impl=flat      --benchmark_filter=NativeFai --out=flat.json
//   ./bench_tas_family --impl=segmented --benchmark_filter=NativeFai --out=seg.json
//   tools/bench_diff.py flat.json seg.json --threshold=-0.5 --metrics throughput_ops_per_s
// The NEGATIVE threshold turns the diff into an improvement gate: CI fails
// unless segmented beats flat by >= 50% on every entry — the O(value) ->
// O(log value) claim, enforced per run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "json_reporter.h"

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/sl_set.h"
#include "runtime/native_tas_family.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

struct Stats {
  uint64_t ops = 0;
  uint64_t steps = 0;
};

void report(benchmark::State& state, const Stats& s) {
  state.counters["steps_per_op"] = benchmark::Counter(
      static_cast<double>(s.steps) / static_cast<double>(std::max<uint64_t>(s.ops, 1)));
  state.SetItemsProcessed(static_cast<int64_t>(s.ops));
}

void T5_ReadableTAS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTAS obj(run.world, "t");
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 101);
        for (int j = 0; j < 25; ++j) {
          if (rng.next_bool(0.3)) {
            obj.test_and_set(ctx);
          } else {
            obj.read(ctx);
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  report(state, total);
}
BENCHMARK(T5_ReadableTAS)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

enum class MtasBackend { kAtomic, kCor7, kCollect };

void run_mtas(benchmark::State& state, MtasBackend backend) {
  int n = static_cast<int>(state.range(0));
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    std::unique_ptr<core::MaxRegisterIface> curr;
    std::unique_ptr<core::ReadableTasArrayIface> ts;
    switch (backend) {
      case MtasBackend::kAtomic:
        curr = std::make_unique<core::AtomicMaxRegister>(run.world, "curr");
        ts = std::make_unique<core::AtomicReadableTasArray>(run.world, "TS");
        break;
      case MtasBackend::kCor7:
        curr = std::make_unique<core::MaxRegisterFAA>(run.world, "curr", n);
        ts = std::make_unique<core::ReadableTasArray>(run.world, "TS");
        break;
      case MtasBackend::kCollect:
        curr = std::make_unique<core::CollectMaxRegister>(run.world, "curr", n);
        ts = std::make_unique<core::ReadableTasArray>(run.world, "TS");
        break;
    }
    core::MultishotTAS obj("mt", *curr, *ts);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 211);
        for (int j = 0; j < 15; ++j) {
          uint64_t r = rng.next_below(10);
          if (r < 4) {
            obj.test_and_set(ctx);
          } else if (r < 7) {
            obj.read(ctx);
          } else {
            obj.reset(ctx);
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  report(state, total);
}

void T6_MultishotTAS_AtomicBases(benchmark::State& s) { run_mtas(s, MtasBackend::kAtomic); }
void T6_MultishotTAS_Cor7_FAA(benchmark::State& s) { run_mtas(s, MtasBackend::kCor7); }
void T6_MultishotTAS_CollectMax(benchmark::State& s) { run_mtas(s, MtasBackend::kCollect); }
BENCHMARK(T6_MultishotTAS_AtomicBases)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(T6_MultishotTAS_Cor7_FAA)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(T6_MultishotTAS_CollectMax)->Arg(2)->Arg(4)->Arg(8);

void T9_FetchIncrement(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool one_shot = state.range(1) == 1;
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray ts(run.world, "M");
    core::FetchIncrement obj("f", ts, one_shot);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, one_shot, &total](sim::Ctx& ctx) {
        int reps = one_shot ? 1 : 10;
        for (int j = 0; j < reps; ++j) {
          obj.fetch_and_increment(ctx);
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.SetLabel(one_shot ? "one_shot(wait-free)" : "multi_shot(lock-free)");
  report(state, total);
}
BENCHMARK(T9_FetchIncrement)->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({4, 1})->Args({8, 1});

void T10_Set(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  double put_prob = static_cast<double>(state.range(1)) / 100.0;
  Stats total;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::SimRun run(n);
    core::ReadableTasArray fai_ts(run.world, "MaxM");
    core::FetchIncrement fai("Max", fai_ts);
    core::SLSet obj(run.world, "set", fai);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [&obj, p, put_prob, seed, &total](sim::Ctx& ctx) {
        Rng rng(seed + static_cast<uint64_t>(p) * 401);
        for (int j = 0; j < 10; ++j) {
          if (rng.next_bool(put_prob)) {
            obj.put(ctx, p * 1000 + j);
          } else {
            benchmark::DoNotOptimize(obj.take(ctx));
          }
          ++total.ops;
        }
      });
    }
    sim::RandomStrategy strategy(seed++);
    total.steps += run.sched.run(strategy, 100000000ULL).steps;
  }
  state.SetLabel("put%=" + std::to_string(static_cast<int>(put_prob * 100)));
  report(state, total);
}
BENCHMARK(T10_Set)->Args({2, 70})->Args({4, 70})->Args({4, 30})->Args({8, 50});

// --- native flat-vs-segmented ablation (Thm 9 read path) --------------------

/// The RETIRED implementation, kept verbatim as the ablation reference: a
/// fixed-capacity array of readable TAS cells with O(value) ascending scans.
/// Do not use outside this benchmark — the shipped family is unbounded.
class FlatFetchIncrement {
 public:
  explicit FlatFetchIncrement(size_t capacity)
      : cells_(std::make_unique<c2sl::rt::NativeReadableTAS[]>(capacity)),
        capacity_(capacity) {}

  int64_t fetch_and_increment() {
    for (size_t i = 0;; ++i) {
      if (i >= capacity_) std::abort();  // capacity exhausted (the old error)
      if (cells_[i].test_and_set() == 0) return static_cast<int64_t>(i);
    }
  }
  int64_t read() const {
    for (size_t i = 0;; ++i) {
      if (i >= capacity_) std::abort();
      if (cells_[i].read() == 0) return static_cast<int64_t>(i);
    }
  }

 private:
  std::unique_ptr<c2sl::rt::NativeReadableTAS[]> cells_;
  size_t capacity_;
};

template <typename Fai>
void run_fai_read(benchmark::State& state, Fai& fai, int64_t value) {
  for (int64_t i = 0; i < value; ++i) fai.fetch_and_increment();  // untimed prefill
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fai.read());
    ++ops;
  }
  state.counters["throughput_ops_per_s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

template <typename Fai>
void run_fai_inc(benchmark::State& state, Fai& fai, int64_t value) {
  for (int64_t i = 0; i < value; ++i) fai.fetch_and_increment();  // untimed prefill
  uint64_t ops = 0;
  for (auto _ : state) {
    // Flat pays the O(value) from-zero scan on EVERY increment once the array
    // is deep; segmented starts at the galloped lower bound.
    benchmark::DoNotOptimize(fai.fetch_and_increment());
    ++ops;
  }
  state.counters["throughput_ops_per_s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void register_native_ablation(const std::string& impl) {
  // Fixed iteration counts keep CI cost deterministic (no min-time hunting);
  // the flat read at value 131072 is ~131k loads per iteration.
  const int64_t kValues[] = {1024, 16384, 131072};
  const int kReadIters = 2000;
  const int kIncIters = 2000;
  for (int64_t v : kValues) {
    std::string read_name = "NativeFaiRead/" + std::to_string(v);
    std::string inc_name = "NativeFaiInc/" + std::to_string(v);
    if (impl == "flat") {
      benchmark::RegisterBenchmark(read_name.c_str(), [v](benchmark::State& s) {
        FlatFetchIncrement fai(static_cast<size_t>(v) + 1);
        run_fai_read(s, fai, v);
      })->Iterations(kReadIters);
      benchmark::RegisterBenchmark(inc_name.c_str(), [v](benchmark::State& s) {
        FlatFetchIncrement fai(static_cast<size_t>(v) +
                               static_cast<size_t>(s.max_iterations) + 1);
        run_fai_inc(s, fai, v);
      })->Iterations(kIncIters);
    } else {
      benchmark::RegisterBenchmark(read_name.c_str(), [v](benchmark::State& s) {
        c2sl::rt::NativeFetchIncrement fai;
        run_fai_read(s, fai, v);
      })->Iterations(kReadIters);
      benchmark::RegisterBenchmark(inc_name.c_str(), [v](benchmark::State& s) {
        c2sl::rt::NativeFetchIncrement fai;
        run_fai_inc(s, fai, v);
      })->Iterations(kIncIters);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Default: segmented — the shipped implementation.
  std::string impl = c2bench::consume_flag(&argc, argv, "--impl=", "segmented");
  if (impl != "flat" && impl != "segmented") {
    std::fprintf(stderr, "bench_tas_family: --impl must be flat|segmented\n");
    return 1;
  }
  register_native_ablation(impl);
  return c2bench::run_with_schema_reporter(argc, argv, "bench_tas_family",
                                           "BENCH_tas_family.json");
}
