// ABL-W — the §6 open-problem ablation: wide (BigInt) vs narrow (64-bit)
// fetch&add registers for the max register construction. The paper notes its
// constructions "store extremely large values in a single variable" and asks
// for O(log n)-bit alternatives; this bench quantifies what width costs.
// Expected shape: the native 64-bit variant is orders of magnitude faster but
// caps n * max_value at 63 bits; the BigInt variant's cost grows with lane
// width.
#include <benchmark/benchmark.h>

#include "core/max_register_faa.h"
#include "runtime/native_max_register.h"
#include "sim/sim_run.h"
#include "util/rng.h"

namespace {

using namespace c2sl;

// Sequential single-thread cost of the wide (BigInt, simulated world, solo
// context => no scheduling overhead) max register.
void ABLW_Wide_BigInt(benchmark::State& state) {
  int n = 4;
  int64_t range = state.range(0);
  sim::World world;
  core::MaxRegisterFAA reg(world, "m", n);
  sim::Ctx solo;
  solo.world = &world;
  Rng rng(5);
  uint64_t ops = 0;
  for (auto _ : state) {
    solo.self = static_cast<int>(rng.next_below(static_cast<uint64_t>(n)));
    if (rng.next_bool(0.5)) {
      reg.write_max(solo, rng.next_in(0, range));
    } else {
      benchmark::DoNotOptimize(reg.read_max(solo));
    }
    ++ops;
  }
  state.counters["register_bits"] =
      benchmark::Counter(static_cast<double>(reg.register_bits(solo)));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(ABLW_Wide_BigInt)->Arg(15)->Arg(255)->Arg(4095)->Arg(65535);

// The same algorithm on a single 64-bit word (narrow fetch&add): only feasible
// while n * max_value <= 63.
void ABLW_Narrow_64bit(benchmark::State& state) {
  int n = 4;
  int64_t range = state.range(0);
  rt::NativeMaxRegister64 reg(n, range);
  Rng rng(5);
  uint64_t ops = 0;
  for (auto _ : state) {
    int proc = static_cast<int>(rng.next_below(static_cast<uint64_t>(n)));
    if (rng.next_bool(0.5)) {
      reg.write_max(proc, rng.next_in(0, range));
    } else {
      benchmark::DoNotOptimize(reg.read_max());
    }
    ++ops;
  }
  state.counters["register_bits"] = benchmark::Counter(static_cast<double>(n * range));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(ABLW_Narrow_64bit)->Arg(3)->Arg(7)->Arg(15);

}  // namespace
