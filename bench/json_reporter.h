// Bridges the google-benchmark suites onto the repo-wide "c2sl-bench-v1"
// JSON schema (the same envelope the workload engine emits, see README.md),
// so BENCH_*.json trajectory tracking covers every suite uniformly.
//
// Usage: replace BENCHMARK_MAIN() with
//   int main(int argc, char** argv) {
//     return c2bench::run_with_schema_reporter(argc, argv, "bench_native",
//                                              "BENCH_native.json");
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "workload/json_writer.h"

namespace c2bench {

/// Tee reporter: normal console output PLUS a c2sl-bench-v1 JSON file. Passed
/// as the *display* reporter (benchmark refuses custom file reporters unless
/// --benchmark_out is also given).
class C2SchemaReporter : public benchmark::BenchmarkReporter {
 public:
  C2SchemaReporter(std::string path, std::string suite)
      : path_(std::move(path)), suite_(std::move(suite)) {
    writer_.begin_object();
    writer_.field("schema", "c2sl-bench-v1");
    writer_.field("suite", suite_);
    writer_.key("results").begin_array();
  }

  bool ReportContext(const Context& context) override {
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      writer_.begin_object();
      writer_.field("bench", run.benchmark_name());
      writer_.key("config").begin_object();
      writer_.field("iterations", static_cast<int64_t>(run.iterations));
      if (!run.report_label.empty()) writer_.field("label", run.report_label);
      writer_.end_object();
      writer_.key("metrics").begin_object();
      double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      writer_.field("seconds", run.real_accumulated_time);
      writer_.field("seconds_per_iter", run.real_accumulated_time / iters);
      writer_.field("cpu_seconds_per_iter", run.cpu_accumulated_time / iters);
      // Benchmarks that publish a "throughput_ops_per_s" rate counter get it
      // hoisted to a top-level metric — the key tools/bench_diff.py gates on —
      // so google-benchmark suites can participate in the same A/B gates as
      // the workload engine's artifacts (e.g. the flat-vs-segmented F&I
      // ablation in bench_tas_family).
      auto thr = run.counters.find("throughput_ops_per_s");
      if (thr != run.counters.end()) {
        writer_.field("throughput_ops_per_s", static_cast<double>(thr->second));
      }
      if (!run.counters.empty()) {
        writer_.key("counters").begin_object();
        for (const auto& [name, counter] : run.counters) {
          writer_.field(name, static_cast<double>(counter));
        }
        writer_.end_object();
      }
      writer_.end_object();  // metrics
      writer_.end_object();  // entry
    }
  }

  void Finalize() override {
    console_.Finalize();
    writer_.end_array();
    writer_.end_object();
    std::ofstream out(path_);
    out << writer_.str() << "\n";
  }

 private:
  std::string path_;
  std::string suite_;
  c2sl::wl::JsonWriter writer_;
  benchmark::ConsoleReporter console_;
};

/// Consumes every `--<prefix>value` occurrence of one suite-private flag from
/// argv (compacting argv so google-benchmark never sees it) and returns the
/// last value, or `fallback`. Serves `--out=` below and suite-specific flags
/// like bench_tas_family's `--impl=`.
inline std::string consume_flag(int* argc, char** argv, const char* prefix,
                                const char* fallback) {
  std::string value = fallback;
  const size_t len = std::string(prefix).size();
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(len);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return value;
}

inline int run_with_schema_reporter(int argc, char** argv, const char* suite,
                                    const char* path) {
  // `--out=PATH` lets one binary emit several artifacts for A/B gating (same
  // bench names, different runs — bench_diff matches entries by name).
  std::string out = consume_flag(&argc, argv, "--out=", path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  C2SchemaReporter display(out, suite);
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return 0;
}

}  // namespace c2bench
