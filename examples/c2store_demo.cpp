// C2Store quickstart: a sharded object service built ONLY from
// consensus-number-2 primitives (exchange + fetch&add — no CAS anywhere, not
// even in the service plumbing), serving a mixed workload from real threads.
//
//   $ ./example_c2store_demo [threads] [ops_per_thread]
#include <cstdio>
#include <cstdlib>

#include "service/c2store.h"
#include "workload/engine.h"

using namespace c2sl;

int main(int argc, char** argv) try {
  wl::WorkloadConfig cfg;
  cfg.threads = argc > 1 ? std::atoi(argv[1]) : 4;
  cfg.ops_per_thread = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;
  cfg.key_space = 4096;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::mixed();
  cfg.store.shards = 16;

  // Direct API taste: open a session (RAII lane), bind typed key-bound refs
  // once, then operate through the cached handles. String keys route through
  // the same FNV+mix hash path — but only at bind time.
  svc::C2Store store(cfg.store);
  svc::C2Session session = store.open_session();
  svc::MaxRef score = session.max("user:1042/score");
  svc::CounterRef hits = session.counter("page:/index/hits");
  svc::SetRef emails = session.set("queue:emails");
  score.write(5);
  hits.inc();
  emails.put(7001);
  std::printf("direct: score=%lld hits=%lld email=%lld (lane=%d)\n",
              static_cast<long long>(score.read()),
              static_cast<long long>(hits.read()),
              static_cast<long long>(emails.take()), session.lane());
  session.close();

  wl::WorkloadResult r = wl::run_workload(cfg);
  std::printf(
      "workload: %llu ops on %d threads x %d shards in %.3fs  (%.0f ops/s)\n"
      "  latency ns: p50=%lld p90=%lld p99=%lld max=%lld\n"
      "  final: shards_touched=%d global_max=%lld counter_sum=%lld\n",
      static_cast<unsigned long long>(r.total_ops), cfg.threads, cfg.store.shards,
      r.seconds, r.throughput_ops_s, static_cast<long long>(r.latency.p50_ns),
      static_cast<long long>(r.latency.p90_ns), static_cast<long long>(r.latency.p99_ns),
      static_cast<long long>(r.latency.max_ns), r.initialized_shards,
      static_cast<long long>(r.final_global_max),
      static_cast<long long>(r.final_counter_sum));

  std::printf("%s\n", wl::result_to_json("c2store_demo", "demo/mixed", r).c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
