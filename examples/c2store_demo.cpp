// C2Store quickstart: a sharded object service built ONLY from
// consensus-number-2 primitives (exchange + fetch&add — no CAS anywhere, not
// even in the service plumbing), serving a mixed workload from real threads.
//
//   $ ./example_c2store_demo [threads] [ops_per_thread] [--metrics]
//                             [--trace-out FILE]
//
// --metrics additionally prints the workload store's c2sl-metrics-v1 JSON
// snapshot and its Prometheus text exposition (the no-CAS telemetry layer;
// a disabled C2SL_TELEMETRY=0 build prints telemetry_enabled=false).
// --trace-out FILE writes the workload's linearization-witness trace as
// c2sl-trace-v1 JSON (audit it offline with tools/trace_audit.py).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/c2store.h"
#include "telemetry/export.h"
#include "telemetry/trace_export.h"
#include "workload/engine.h"

using namespace c2sl;

int main(int argc, char** argv) try {
  bool metrics = false;
  std::string trace_out;
  int pos = 0;
  int positional[2] = {0, 0};
  bool have[2] = {false, false};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (pos < 2) {
      positional[pos] = std::atoi(argv[i]);
      have[pos] = true;
      ++pos;
    }
  }
  wl::WorkloadConfig cfg;
  cfg.threads = have[0] ? positional[0] : 4;
  cfg.ops_per_thread = have[1] ? static_cast<uint64_t>(positional[1]) : 5000;
  cfg.key_space = 4096;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::mixed();
  cfg.store.initial_shards = 16;
  cfg.collect_trace = !trace_out.empty();

  // Direct API taste: open a session (RAII lane), bind typed key-bound refs
  // once, then operate through the cached handles. String keys route through
  // the same FNV+mix hash path — but only at bind time.
  svc::C2Store store(cfg.store);
  svc::C2Session session = store.open_session();
  svc::MaxRef score = session.max("user:1042/score");
  svc::CounterRef hits = session.counter("page:/index/hits");
  svc::SetRef emails = session.set("queue:emails");
  score.write(5);
  hits.inc();
  emails.put(7001);
  std::printf("direct: score=%lld hits=%lld email=%lld (lane=%d)\n",
              static_cast<long long>(score.read()),
              static_cast<long long>(hits.read()),
              static_cast<long long>(emails.take()), session.lane());
  session.close();

  wl::WorkloadResult r = wl::run_workload(cfg);
  std::printf(
      "workload: %llu ops on %d threads x %d shards in %.3fs  (%.0f ops/s)\n"
      "  latency ns: p50=%lld p90=%lld p99=%lld max=%lld\n"
      "  final: shards_touched=%d global_max=%lld counter_sum=%lld\n",
      static_cast<unsigned long long>(r.total_ops), cfg.threads, cfg.store.initial_shards,
      r.seconds, r.throughput_ops_s, static_cast<long long>(r.latency.p50_ns),
      static_cast<long long>(r.latency.p90_ns), static_cast<long long>(r.latency.p99_ns),
      static_cast<long long>(r.latency.max_ns), r.initialized_shards,
      static_cast<long long>(r.final_global_max),
      static_cast<long long>(r.final_counter_sum));

  std::printf("%s\n", wl::result_to_json("c2store_demo", "demo/mixed", r).c_str());

  if (metrics) {
    std::printf("%s\n", tel::to_json(r.metrics, "c2store_demo").c_str());
    std::printf("%s", tel::to_prometheus(r.metrics).c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream tout(trace_out);
    tout << tel::trace_to_json(r.trace, "c2store_demo") << "\n";
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
