// C2Store quickstart: a sharded object service built ONLY from
// consensus-number-2 primitives (exchange + fetch&add — no CAS anywhere, not
// even in the service plumbing), serving a mixed workload from real threads.
//
//   $ ./example_c2store_demo [threads] [ops_per_thread]
#include <cstdio>
#include <cstdlib>

#include "service/c2store.h"
#include "workload/engine.h"

using namespace c2sl;

int main(int argc, char** argv) try {
  wl::WorkloadConfig cfg;
  cfg.threads = argc > 1 ? std::atoi(argv[1]) : 4;
  cfg.ops_per_thread = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;
  cfg.key_space = 4096;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::mixed();
  cfg.store.shards = 16;

  // Direct API taste: string keys route through the same FNV+mix hash path.
  svc::C2Store store(cfg.store);
  store.max_write(0, "user:1042/score", 5);
  store.counter_inc("page:/index/hits");
  store.set_put("queue:emails", 7001);
  std::printf("direct: score=%lld hits=%lld email=%lld\n",
              static_cast<long long>(store.max_read("user:1042/score")),
              static_cast<long long>(store.counter_read("page:/index/hits")),
              static_cast<long long>(store.set_take("queue:emails")));

  wl::WorkloadResult r = wl::run_workload(cfg);
  std::printf(
      "workload: %llu ops on %d threads x %d shards in %.3fs  (%.0f ops/s)\n"
      "  latency ns: p50=%lld p90=%lld p99=%lld max=%lld\n"
      "  final: shards_touched=%d global_max=%lld counter_sum=%lld\n",
      static_cast<unsigned long long>(r.total_ops), cfg.threads, cfg.store.shards,
      r.seconds, r.throughput_ops_s, static_cast<long long>(r.latency.p50_ns),
      static_cast<long long>(r.latency.p90_ns), static_cast<long long>(r.latency.p99_ns),
      static_cast<long long>(r.latency.max_ns), r.initialized_shards,
      static_cast<long long>(r.final_global_max),
      static_cast<long long>(r.final_counter_sum));

  std::printf("%s\n", wl::result_to_json("c2store_demo", "demo/mixed", r).c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
