// Sessions demo: dynamic join/leave of worker threads against one C2Store.
//
// The store is configured with only 4 session lanes, but 3 waves x 4 workers
// (12 worker threads in total) serve traffic over its lifetime: each worker
// joins (open_session — RAII lane from the consensus-2 LaneRegistry), binds
// typed key-bound refs once, hammers them, and leaves (lane recycled for the
// next wave). A 5th concurrent open fails cleanly and succeeds after a leave.
//
// Exits non-zero on any inconsistency, so CI can run it as a smoke test.
//
//   $ ./example_c2store_sessions_demo [workers_per_wave] [waves] [ops]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "service/c2store.h"

using namespace c2sl;

namespace {

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  if (workers < 1) workers = 1;
  if (workers > 31) workers = 31;  // 63-bit lane packing budget
  const int waves = argc > 2 ? std::atoi(argv[2]) : 3;
  const int ops = argc > 3 ? std::atoi(argv[3]) : 2000;

  svc::C2StoreConfig cfg;
  cfg.shards = 16;
  cfg.max_threads = workers;  // lanes for ONE wave; later waves recycle them
  cfg.max_value = 63 / workers;
  cfg.tas_max_resets = 63 / workers - 1;  // lane-packing budget scales down too
  svc::C2Store store(cfg);

  for (int wave = 0; wave < waves; ++wave) {
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&store, &cfg, wave, w, ops] {
        // Join: this thread did not exist when the store was built.
        svc::C2Session session = store.open_session();
        svc::CounterRef requests = session.counter("svc:requests");
        svc::MaxRef high_water = session.max("svc:high_water");
        svc::TasRef leader = session.tas("svc:leader");
        const bool won = leader.test_and_set() == 0;
        for (int i = 0; i < ops; ++i) {
          requests.inc();
          if (i % 64 == w) high_water.write((i + w) % (cfg.max_value + 1));
        }
        if (won) {
          // This wave's leader recycles the flag for the next wave (sole
          // resetter, so the advisory budget gate is race-free).
          session.tas_reset("svc:leader");
        }
        // Leave: the session destructor releases the lane for the next wave.
        std::printf("wave %d worker %d served %d ops on lane %d%s\n", wave, w, ops,
                    session.lane(), won ? " (leader)" : "");
      });
    }
    for (auto& t : pool) t.join();
  }

  // Lanes were recycled, never grown: waves*workers workers joined over the
  // store's lifetime, but the dispenser never issued more than `workers`
  // fresh tickets. (It may issue fewer — a worker that finishes before the
  // next one starts hands its lane straight to the recycler.)
  expect(store.lane_tickets_issued() <= cfg.max_threads,
         "later waves must recycle lanes, not draw fresh tickets");

  // Oversubscription: hold every lane, watch the next join fail cleanly.
  {
    std::vector<svc::C2Session> held;
    for (int i = 0; i < cfg.max_threads; ++i) held.push_back(store.open_session());
    svc::C2Session extra = store.try_open_session();
    expect(!extra.valid(), "try_open_session must report no free lane");
    held.pop_back();  // one worker leaves...
    extra = store.try_open_session();
    expect(extra.valid(), "...and the freed lane is immediately joinable");
  }

  svc::C2Session audit = store.open_session();
  const int64_t served = audit.counter("svc:requests").read();
  const int64_t expected = static_cast<int64_t>(waves) * workers * ops;
  std::printf("total requests: %lld (expected %lld), global_max=%lld, tickets=%lld\n",
              static_cast<long long>(served), static_cast<long long>(expected),
              static_cast<long long>(store.global_max()),
              static_cast<long long>(store.lane_tickets_issued()));
  expect(served == expected, "every op from every wave must be counted exactly once");

  if (failures > 0) return 1;
  std::printf("ok: %d workers joined/left across %d waves on %d lanes\n",
              waves * workers, waves, cfg.max_threads);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
