// Sessions demo: dynamic join/leave of worker threads against one C2Store,
// with MORE concurrent workers than session lanes.
//
// The store is configured with `lanes` session lanes but `workers` (> lanes)
// threads serve traffic CONCURRENTLY: each worker joins by calling
// open_session() — which now BLOCKS under full-lane contention, parking on
// the registry's consensus-2 handoff queue until a leaving worker hands its
// lane over directly (FIFO-fair, no busy-spin) — binds typed refs, hammers
// them, and leaves (RAII close = direct lane handoff to the oldest waiter).
// No caller-side retry loop anywhere.
//
// The retired poll-loop acquisition stays demoed behind --try: each join then
// spins on try_open_session() + yield, which is exactly the caller-side
// busy-wait the blocking API removes (and what bench_c2store --acquire=try
// measures as the ablation baseline).
//
// Exits non-zero on any inconsistency, so CI can run it as a smoke test.
//
//   $ ./example_c2store_sessions_demo [lanes] [workers] [ops] [--try]
//                                      [--metrics] [--trace-out FILE]
//
// --metrics additionally prints the store's c2sl-metrics-v1 JSON snapshot and
// Prometheus text — under oversubscription the open_wait histogram and the
// handoff park/delivery counters are the interesting part.
// --trace-out FILE drains the store's linearization-witness trace after all
// workers leave and writes it as c2sl-trace-v1 JSON — under handoff churn the
// kSessionOpen/kSessionClose point events show each lane changing hands.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "service/c2store.h"
#include "telemetry/export.h"
#include "telemetry/trace_export.h"

using namespace c2sl;

namespace {

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  bool use_try_poll = false;
  bool metrics = false;
  std::string trace_out;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--try") == 0) {
      use_try_poll = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  int lanes = pos.size() > 0 ? std::atoi(pos[0]) : 2;
  if (lanes < 1) lanes = 1;
  if (lanes > 31) lanes = 31;  // 63-bit lane packing budget
  int workers = pos.size() > 1 ? std::atoi(pos[1]) : 3 * lanes;
  if (workers < lanes) workers = lanes;
  const int ops = pos.size() > 2 ? std::atoi(pos[2]) : 2000;

  svc::C2StoreConfig cfg;
  cfg.initial_shards = 16;
  cfg.max_threads = lanes;  // workers > lanes: joins must wait their turn
  cfg.max_value = 63 / lanes;
  cfg.tas_max_resets = 63 / lanes - 1;  // lane-packing budget scales down too
  svc::C2Store store(cfg);

  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&store, &cfg, w, ops, use_try_poll] {
      // Join: waits for a lane when all are held — parked on the handoff
      // queue (default) or busy-polling (--try, the retired pattern).
      svc::C2Session session;
      if (use_try_poll) {
        for (;;) {
          session = store.try_open_session();
          if (session.valid()) break;
          std::this_thread::yield();
        }
      } else {
        session = store.open_session();
      }
      svc::CounterRef requests = session.counter("svc:requests");
      svc::MaxRef high_water = session.max("svc:high_water");
      for (int i = 0; i < ops; ++i) {
        requests.inc();
        if (i % 64 == w % 64) high_water.write((i + w) % (cfg.max_value + 1));
      }
      // Leave: the session destructor hands the lane to the oldest parked
      // joiner (or recycles it when no one is waiting).
      std::printf("worker %2d served %d ops on lane %d\n", w, ops, session.lane());
    });
  }
  for (auto& t : pool) t.join();

  // Lanes were handed off or recycled, never grown: `workers` threads joined
  // concurrently, but the dispenser never issued more than `lanes` fresh
  // tickets. (It may issue fewer — handoffs bypass the dispenser entirely.)
  expect(store.lane_tickets_issued() <= cfg.max_threads,
         "concurrent joins must wait for lanes, not mint new ones");

  // Oversubscription probes: with every lane held, the non-waiting forms
  // report failure cleanly; a leave makes the next join immediate.
  {
    std::vector<svc::C2Session> held;
    for (int i = 0; i < cfg.max_threads; ++i) held.push_back(store.open_session());
    svc::C2Session extra = store.try_open_session();
    expect(!extra.valid(), "try_open_session must report no free lane");
    extra = store.open_session_for(std::chrono::milliseconds(1));
    expect(!extra.valid(), "a timed open must give up when every lane stays held");
    held.pop_back();  // one worker leaves...
    extra = store.try_open_session();
    expect(extra.valid(), "...and the freed lane is immediately joinable");
  }

  svc::C2Session audit = store.open_session();
  const int64_t served = audit.counter("svc:requests").read();
  const int64_t expected = static_cast<int64_t>(workers) * ops;
  std::printf(
      "total requests: %lld (expected %lld), tickets=%lld, handoffs=%lld, "
      "parks=%lld\n",
      static_cast<long long>(served), static_cast<long long>(expected),
      static_cast<long long>(store.lane_tickets_issued()),
      static_cast<long long>(store.lane_handoff_deliveries()),
      static_cast<long long>(store.lane_handoff_parks()));
  expect(served == expected, "every op from every worker must be counted exactly once");

  if (metrics) {
    tel::MetricsSnapshot snap = store.metrics_snapshot();
    std::printf("%s\n", tel::to_json(snap, "c2store_sessions_demo").c_str());
    std::printf("%s", tel::to_prometheus(snap).c_str());
  }

  if (!trace_out.empty()) {
    // All workers joined; the audit session below is the only writer left, so
    // the drain sees a quiescent trace (every lane's published count final).
    std::ofstream tout(trace_out);
    tout << tel::trace_to_json(store.trace_dump(), "c2store_sessions_demo")
         << "\n";
    std::printf("wrote %s\n", trace_out.c_str());
  }

  if (failures > 0) return 1;
  std::printf("ok: %d workers shared %d lanes via %s acquisition\n", workers,
              cfg.max_threads, use_try_poll ? "try-poll" : "blocking handoff");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
