// Tooling demo: export an execution tree to Graphviz DOT, highlighting the
// strong-linearizability conflict node the checker found. Applied to the
// Herlihy-Wing queue (the paper's §5 exhibit).
//
//   $ ./example_export_witness_tree > hw_witness.dot && dot -Tsvg hw_witness.dot -o hw.svg
#include <cstdio>

#include "baselines/herlihy_wing_queue.h"
#include "sim/dot.h"
#include "sim/explorer.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

using namespace c2sl;

int main() {
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto q = std::make_shared<baselines::HerlihyWingQueue>(run.world, "queue");
    std::vector<std::vector<verify::Invocation>> programs = {
        {{"Enq", num(10), 0}}, {{"Enq", num(20), 1}}, {{"Deq", unit(), 2}}};
    for (int p = 0; p < run.n(); ++p) {
      auto invs = programs[static_cast<size_t>(p)];
      run.sched.spawn(p, [q, invs, p](sim::Ctx& ctx) {
        for (verify::Invocation inv : invs) {
          inv.proc = p;
          core::invoke_recorded(ctx, *q, inv);
        }
      });
    }
  };

  // A shallow tree keeps the rendering readable; the conflict is found within
  // depth 12 (see tests/strong_lin_negative_test.cpp for the full check).
  sim::ExploreOptions opts;
  opts.max_depth = 8;
  opts.max_nodes = 4000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);

  verify::QueueSpec spec;
  verify::StrongLinOptions slopts;
  slopts.object = "queue";
  auto res = verify::check_strong_linearizability(tree, spec, slopts);

  sim::DotOptions dot_opts;
  dot_opts.highlight_node = res.witness_node;
  std::fputs(sim::to_dot(tree, dot_opts).c_str(), stdout);

  std::fprintf(stderr, "tree nodes: %zu; strongly linearizable at this depth: %s\n",
               tree.size(),
               res.decided ? (res.strongly_linearizable ? "yes" : "NO") : "undecided");
  return 0;
}
