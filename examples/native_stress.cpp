// Native quickstart: the bounded 64-bit variants of the paper's constructions
// on REAL std::thread concurrency (std::atomic exchange == test&set,
// fetch_add == fetch&add; no compare&swap anywhere), with a post-hoc
// linearizability check of a sampled window.
//
//   $ ./example_native_stress [threads] [ops_per_thread]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "runtime/native_max_register.h"
#include "runtime/native_snapshot.h"
#include "runtime/native_tas_family.h"
#include "runtime/stress.h"
#include "util/rng.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

using namespace c2sl;

int main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  int ops = argc > 2 ? std::atoi(argv[2]) : 2000;

  // --- fetch&increment from test&set (Thm 9), full volume ------------------
  rt::NativeFetchIncrement fai;
  auto t0 = std::chrono::steady_clock::now();
  auto history = rt::run_stress(threads, ops, [&](int, int) {
    rt::TimedOp op;
    op.name = "FAI";
    op.resp = fai.fetch_and_increment();
    return op;
  });
  auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::set<int64_t> values;
  for (const auto& op : history) values.insert(op.resp);
  bool dense = values.size() == history.size() &&
               *values.rbegin() == static_cast<int64_t>(history.size()) - 1;
  std::printf("fetch&increment from test&set: %zu ops on %d threads in %.3fs (%.0f ops/s)\n",
              history.size(), threads, dt, static_cast<double>(history.size()) / dt);
  std::printf("  all values distinct and dense 0..%zu: %s\n", history.size() - 1,
              dense ? "YES" : "NO");

  // --- max register from fetch&add (Thm 1, bounded lanes), checked window --
  rt::NativeMaxRegister64 reg(3, 10);
  Rng rng(7);
  std::vector<Rng> rngs;
  for (int t = 0; t < 3; ++t) rngs.emplace_back(100 + t);
  auto window = rt::run_stress(3, 5, [&](int t, int) {
    rt::TimedOp op;
    if (rngs[static_cast<size_t>(t)].next_bool(0.5)) {
      op.name = "WriteMax";
      op.arg = rngs[static_cast<size_t>(t)].next_in(0, 10);
      reg.write_max(t, op.arg);
    } else {
      op.name = "ReadMax";
      op.resp = reg.read_max();
    }
    return op;
  });
  std::vector<sim::OpRecord> records;
  for (size_t i = 0; i < window.size(); ++i) {
    sim::OpRecord r;
    r.id = static_cast<sim::OpId>(i);
    r.proc = window[i].thread;
    r.object = "maxreg";
    r.name = window[i].name;
    r.args = num(window[i].arg);
    r.complete = true;
    r.resp = window[i].name == "ReadMax" ? num(window[i].resp) : unit();
    r.inv_seq = window[i].inv_seq;
    r.resp_seq = window[i].resp_seq;
    records.push_back(std::move(r));
  }
  verify::MaxRegisterSpec spec;
  auto lin = verify::check_linearizability(records, spec);
  std::printf("max register from fetch&add: 15-op real-thread window linearizable: %s\n",
              lin.linearizable ? "YES" : "NO");

  // --- snapshot from fetch&add (Thm 2, bounded lanes) ----------------------
  rt::NativeSnapshot64 snap(threads <= 8 ? threads : 8, 4);
  auto snap_hist = rt::run_stress(threads <= 8 ? threads : 8, 1000, [&](int t, int j) {
    rt::TimedOp op;
    if (j % 2 == 0) {
      snap.update(t, j % 15);
    } else {
      auto view = snap.scan();
      op.resp = view[static_cast<size_t>(t)];
    }
    return op;
  });
  std::printf("snapshot from fetch&add: %zu real-thread ops completed\n",
              snap_hist.size());
  return dense && lin.linearizable ? 0 : 1;
}
