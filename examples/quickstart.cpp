// Quickstart: build the paper's strongly-linearizable objects, run them in the
// deterministic simulator under a random schedule, and machine-check the
// recorded history against the sequential specification.
//
//   $ ./example_quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/max_register_faa.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/snapshot_faa.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

using namespace c2sl;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const int n = 3;

  // One simulated world; every base object (the fetch&add register backing the
  // max register, the snapshot register, the test&set array) lives inside it.
  sim::SimRun run(n);
  auto maxreg = std::make_shared<core::MaxRegisterFAA>(run.world, "maxreg", n);
  auto snap = std::make_shared<core::SnapshotFAA>(run.world, "snap", n);

  // Three asynchronous processes hammer both objects.
  for (int p = 0; p < n; ++p) {
    run.sched.spawn(p, [maxreg, snap, p](sim::Ctx& ctx) {
      core::invoke_recorded(ctx, *maxreg, {"WriteMax", num(10 * (p + 1)), p});
      core::invoke_recorded(ctx, *snap, {"Update", num(p + 1), p});
      core::invoke_recorded(ctx, *maxreg, {"ReadMax", unit(), p});
      core::invoke_recorded(ctx, *snap, {"Scan", unit(), p});
    });
  }

  // The adversary: a seeded random scheduler interleaving base-object steps.
  sim::RandomStrategy adversary(seed);
  auto result = run.sched.run(adversary, /*max_steps=*/100000);
  std::printf("schedule seed %llu: %llu base-object steps, all done: %s\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(result.steps),
              result.all_done ? "yes" : "no");

  std::printf("\nrecorded history:\n%s\n", run.history.to_string().c_str());

  // Post-hoc machine checking, per object (linearizability is compositional).
  auto ops = run.history.operations();
  verify::MaxRegisterSpec maxreg_spec;
  verify::SnapshotSpec snap_spec(n);
  auto lin1 = verify::check_object_linearizability(ops, "maxreg", maxreg_spec);
  auto lin2 = verify::check_object_linearizability(ops, "snap", snap_spec);
  std::printf("maxreg linearizable: %s\n", lin1.linearizable ? "YES" : "NO");
  std::printf("snap   linearizable: %s\n", lin2.linearizable ? "YES" : "NO");

  if (lin1.linearizable) {
    std::printf("\none witness linearization of maxreg:\n");
    for (const auto& [op, resp] : lin1.witness) {
      std::printf("  op%d -> %s\n", op, to_string(resp).c_str());
    }
  }
  return lin1.linearizable && lin2.linearizable ? 0 : 1;
}
