// Lemma 12 live: turning strongly-linearizable ordering objects into agreement.
//
// Algorithm B (paper §5) is run over three substrates:
//   1. the strongly-linearizable CAS queue  -> consensus, every schedule;
//   2. the k-out-of-order SL queue (k = 2)  -> 2-set agreement;
//   3. the Herlihy-Wing queue (fetch&add + swap, linearizable but NOT strongly
//      linearizable) -> agreement violations appear, as Theorem 17 demands:
//      if the reduction never failed, C2 primitives would solve consensus.
//
//   $ ./example_set_agreement_demo [num_schedules]
#include <cstdio>
#include <cstdlib>

#include "agreement/lemma12.h"
#include "agreement/ordering.h"
#include "baselines/cas_structures.h"
#include "baselines/herlihy_wing_queue.h"
#include "sim/strategy.h"

using namespace c2sl;

namespace {

struct Row {
  const char* name;
  int n;
  int k;
  std::function<std::unique_ptr<core::ConcurrentObject>(sim::World&)> make;
  agreement::OrderingObject ordering;
};

void run_row(const Row& row, uint64_t schedules) {
  std::vector<int64_t> inputs(static_cast<size_t>(row.n));
  for (int i = 0; i < row.n; ++i) inputs[static_cast<size_t>(i)] = 100 + i;

  uint64_t ok = 0;
  uint64_t violations = 0;
  int max_distinct = 0;
  for (uint64_t seed = 0; seed < schedules; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(row.n, row.ordering, inputs, row.make, strategy,
                                      400000);
    if (!res.completed) continue;
    max_distinct = std::max(max_distinct, res.check.distinct);
    if (res.check.ok()) {
      ++ok;
    } else if (!res.check.k_agreement) {
      ++violations;
    }
  }
  std::printf("  %-38s n=%d k=%d  ok=%4llu/%llu  k-violations=%llu  max distinct=%d\n",
              row.name, row.n, row.k, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(schedules),
              static_cast<unsigned long long>(violations), max_distinct);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t schedules = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  std::printf("algorithm B (Lemma 12), %llu random schedules per row\n\n",
              static_cast<unsigned long long>(schedules));

  std::vector<Row> rows;
  rows.push_back({"CAS queue (strongly linearizable)", 3, 1,
                  [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
                    return std::make_unique<baselines::CasQueue>(w, "A");
                  },
                  agreement::queue_ordering(3)});
  rows.push_back({"CAS stack (strongly linearizable)", 3, 1,
                  [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
                    return std::make_unique<baselines::CasStack>(w, "A");
                  },
                  agreement::stack_ordering(3)});
  rows.push_back({"2-out-of-order CAS queue", 4, 2,
                  [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
                    return std::make_unique<baselines::KOutOfOrderCasQueue>(w, "A", 2);
                  },
                  agreement::k_out_of_order_queue_ordering(4, 2)});
  rows.push_back({"1-stuttering CAS queue", 3, 1,
                  [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
                    return std::make_unique<baselines::StutteringCasQueue>(w, "A", 1);
                  },
                  agreement::stuttering_queue_ordering(3, 1)});
  rows.push_back({"Herlihy-Wing queue (NOT strongly lin.)", 3, 1,
                  [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
                    return std::make_unique<baselines::HerlihyWingQueue>(w, "A");
                  },
                  agreement::queue_ordering(3)});

  for (const Row& row : rows) run_row(row, schedules);

  std::printf(
      "\nReading: the strongly-linearizable rows decide <= k values on every\n"
      "schedule; the Herlihy-Wing row shows k-violations — no consensus from\n"
      "test&set/fetch&add/swap for n >= 3 (Theorem 17), so algorithm B's\n"
      "premises (strong linearizability) must fail, and measurably do.\n");
  return 0;
}
