// Why linearizability is not enough — the paper's motivation, run as code.
//
// Two wait-free, linearizable max registers:
//   * core::MaxRegisterFAA    (§3.1, from fetch&add)  — strongly linearizable;
//   * core::CollectMaxRegister (from per-process registers) — NOT strongly
//     linearizable (Denysyuk–Woelfel impossibility).
//
// The bounded model checker explores EVERY schedule of a small scenario and
// either produces a prefix-closed linearization function or a concrete
// conflict: a reachable prefix none of whose linearizations survives all
// futures — exactly the leverage a strong adversary uses against randomized
// programs (§1).
//
//   $ ./example_strong_vs_linearizable
#include <cstdio>

#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "sim/explorer.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

using namespace c2sl;

namespace {

sim::ScenarioFn scenario_for(bool use_faa) {
  return [use_faa](sim::SimRun& run) {
    std::shared_ptr<core::ConcurrentObject> obj;
    if (use_faa) {
      obj = std::make_shared<core::MaxRegisterFAA>(run.world, "maxreg", run.n());
    } else {
      obj = std::make_shared<core::CollectMaxRegister>(run.world, "maxreg", run.n());
    }
    std::vector<std::vector<verify::Invocation>> programs = {
        {{"WriteMax", num(2), 0}},
        {{"WriteMax", num(1), 1}},
        {{"ReadMax", unit(), 2}, {"ReadMax", unit(), 2}}};
    for (int p = 0; p < run.n(); ++p) {
      auto invs = programs[static_cast<size_t>(p)];
      run.sched.spawn(p, [obj, invs, p](sim::Ctx& ctx) {
        for (verify::Invocation inv : invs) {
          inv.proc = p;
          core::invoke_recorded(ctx, *obj, inv);
        }
      });
    }
  };
}

void check_and_report(const char* name, bool use_faa) {
  sim::ExploreOptions opts;
  opts.max_depth = 24;
  opts.max_nodes = 800000;
  sim::ExecTree tree = sim::explore(3, scenario_for(use_faa), opts);

  verify::MaxRegisterSpec spec;
  verify::StrongLinOptions slopts;
  slopts.object = "maxreg";
  slopts.max_search_nodes = 30'000'000;
  auto res = verify::check_strong_linearizability(tree, spec, slopts);

  std::printf("%-28s explored %zu executions-tree nodes\n", name, tree.size());
  if (!res.decided) {
    std::printf("  verdict: UNDECIDED (budget)\n\n");
    return;
  }
  if (res.strongly_linearizable) {
    std::printf("  verdict: STRONGLY LINEARIZABLE on the full bounded tree\n\n");
  } else {
    std::printf("  verdict: NOT strongly linearizable.\n  %s\n",
                res.report.c_str());
  }
}

}  // namespace

int main() {
  std::printf("Scenario: p0: WriteMax(2); p1: WriteMax(1); p2: ReadMax, ReadMax\n");
  std::printf("Both implementations are wait-free and linearizable. Only one\n");
  std::printf("admits a prefix-closed linearization function.\n\n");
  check_and_report("MaxRegisterFAA (Thm 1):", /*use_faa=*/true);
  check_and_report("CollectMaxRegister:", /*use_faa=*/false);
  return 0;
}
