#include "agreement/consensus.h"

#include "util/assert.h"

namespace c2sl::agreement {

TasConsensus::TasConsensus(sim::World& world, const std::string& name) {
  proposals_ = world.add<prim::RegArray>(name + ".proposals");
  ts_ = world.add<prim::TestAndSet>(name + ".ts", /*readable=*/false,
                                    /*max_participants=*/2);
}

int64_t TasConsensus::propose(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(ctx.self == 0 || ctx.self == 1,
             "TasConsensus supports processes 0 and 1 only");
  prim::RegArray& props = ctx.world->get(proposals_);
  props.write(ctx, static_cast<size_t>(ctx.self), num(v));
  if (ctx.world->get(ts_).test_and_set(ctx) == 0) {
    return v;  // winner decides its own proposal
  }
  Val other = props.read(ctx, static_cast<size_t>(1 - ctx.self));
  C2SL_ASSERT_MSG(!is_unit(other), "loser must observe the winner's proposal");
  return as_num(other);
}

CasConsensus::CasConsensus(sim::World& world, const std::string& name) {
  decision_ = world.add<prim::CasReg>(name + ".decision");
}

int64_t CasConsensus::propose(sim::Ctx& ctx, int64_t v) {
  prim::CasReg& dec = ctx.world->get(decision_);
  if (dec.compare_and_swap(ctx, Val{}, num(v))) return v;
  return as_num(dec.read(ctx));
}

QueueConsensus::QueueConsensus(sim::World& world, const std::string& name,
                               core::ConcurrentObject& queue)
    : queue_(queue) {
  proposals_ = world.add<prim::RegArray>(name + ".proposals");
  // Seed the queue with a winner token followed by a loser token during
  // initialisation (before the execution starts), using a free-running solo
  // context. Two tokens ensure both dequeues return, even on a partial
  // (blocking-on-empty) queue such as Herlihy-Wing.
  sim::Ctx init;
  init.world = &world;
  init.self = 0;
  queue_.apply(init, verify::Invocation{"Enq", num(1), 0});
  queue_.apply(init, verify::Invocation{"Enq", num(0), 0});
}

int64_t QueueConsensus::propose(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(ctx.self == 0 || ctx.self == 1,
             "QueueConsensus supports processes 0 and 1 only");
  prim::RegArray& props = ctx.world->get(proposals_);
  props.write(ctx, static_cast<size_t>(ctx.self), num(v));
  Val token = queue_.apply(ctx, verify::Invocation{"Deq", unit(), ctx.self});
  bool won = std::holds_alternative<int64_t>(token) && as_num(token) == 1;
  if (won) return v;
  Val other = props.read(ctx, static_cast<size_t>(1 - ctx.self));
  C2SL_ASSERT_MSG(!is_unit(other), "loser must observe the winner's proposal");
  return as_num(other);
}

}  // namespace c2sl::agreement
