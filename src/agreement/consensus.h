// Classic consensus protocols grounding the consensus hierarchy the paper
// builds on (Herlihy 1991):
//
//   * TasConsensus   — wait-free 2-process consensus from one test&set and two
//                      registers (consensus number of test&set is exactly 2).
//   * CasConsensus   — wait-free n-process consensus from one compare&swap
//                      (infinite consensus number).
//   * QueueConsensus — wait-free 2-process consensus from a shared queue
//                      pre-filled with a winner token plus two registers
//                      (queues have consensus number 2 — the §5 objects really
//                      are "level 2" objects).
//
// Used by tests to sanity-check the primitives' positions in the hierarchy and
// by examples to contrast with the Lemma 12 reduction.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/arrays.h"
#include "primitives/swap_cas.h"
#include "primitives/tas.h"

namespace c2sl::agreement {

class TasConsensus {
 public:
  /// `max_participants` guards the 2-process restriction.
  TasConsensus(sim::World& world, const std::string& name);

  /// Returns the agreed value. Callable once per process; at most 2 processes.
  int64_t propose(sim::Ctx& ctx, int64_t v);

 private:
  sim::Handle<prim::RegArray> proposals_;
  sim::Handle<prim::TestAndSet> ts_;
};

class CasConsensus {
 public:
  CasConsensus(sim::World& world, const std::string& name);

  int64_t propose(sim::Ctx& ctx, int64_t v);

 private:
  sim::Handle<prim::CasReg> decision_;
};

class QueueConsensus {
 public:
  /// `queue` must be empty-initialised; the winner/loser tokens are enqueued
  /// at construction time via a solo context (initialisation is not part of
  /// the execution, matching Herlihy's protocol statement).
  QueueConsensus(sim::World& world, const std::string& name,
                 core::ConcurrentObject& queue);

  int64_t propose(sim::Ctx& ctx, int64_t v);

 private:
  sim::Handle<prim::RegArray> proposals_;
  core::ConcurrentObject& queue_;
};

}  // namespace c2sl::agreement
