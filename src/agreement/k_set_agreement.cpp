#include "agreement/k_set_agreement.h"

#include <algorithm>

namespace c2sl::agreement {

AgreementCheck validate_agreement(const std::vector<int64_t>& inputs,
                                  const std::vector<int64_t>& decisions, int k,
                                  const std::vector<bool>& crashed) {
  AgreementCheck out;
  out.termination = true;
  out.validity = true;
  std::set<int64_t> values;
  for (size_t i = 0; i < decisions.size(); ++i) {
    bool is_crashed = i < crashed.size() && crashed[i];
    if (decisions[i] == kUndecided) {
      if (!is_crashed) out.termination = false;
      continue;
    }
    values.insert(decisions[i]);
    if (std::find(inputs.begin(), inputs.end(), decisions[i]) == inputs.end()) {
      out.validity = false;
    }
  }
  out.distinct = static_cast<int>(values.size());
  out.k_agreement = out.distinct <= k;
  return out;
}

std::string AgreementCheck::to_string() const {
  std::string s = "termination=";
  s += termination ? "yes" : "NO";
  s += " validity=";
  s += validity ? "yes" : "NO";
  s += " distinct=" + std::to_string(distinct);
  s += k_agreement ? " (within k)" : " (EXCEEDS k)";
  return s;
}

}  // namespace c2sl::agreement
