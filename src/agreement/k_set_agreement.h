// k-set agreement (paper §2): each process proposes a value and decides one,
// such that Termination (every correct process decides), Validity (decisions
// are proposals) and k-Agreement (at most k distinct decisions) hold.
// Consensus is 1-set agreement.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace c2sl::agreement {

constexpr int64_t kUndecided = INT64_MIN;

struct AgreementCheck {
  bool termination = false;  ///< every correct (non-crashed) process decided
  bool validity = false;     ///< every decision is some process's input
  bool k_agreement = false;  ///< at most k distinct decisions
  int distinct = 0;
  bool ok(bool require_termination = true) const {
    return (!require_termination || termination) && validity && k_agreement;
  }
  std::string to_string() const;
};

/// Validates one execution outcome. `decisions[i] == kUndecided` means process
/// i did not decide; `crashed[i]` marks processes the adversary crashed (they
/// are exempt from Termination). Pass an empty `crashed` when no crashes
/// occurred.
AgreementCheck validate_agreement(const std::vector<int64_t>& inputs,
                                  const std::vector<int64_t>& decisions, int k,
                                  const std::vector<bool>& crashed = {});

}  // namespace c2sl::agreement
