#include "agreement/lemma12.h"

#include "primitives/arrays.h"
#include "util/assert.h"

namespace c2sl::agreement {

void spawn_lemma12(sim::SimRun& run, core::ConcurrentObject& impl,
                   size_t object_range_end, const OrderingObject& ordering,
                   const std::vector<int64_t>& inputs, Lemma12State& state,
                   const Lemma12Options& opts) {
  const int n = run.n();
  C2SL_CHECK(static_cast<int>(inputs.size()) == n, "one input per process");
  state.decisions.assign(static_cast<size_t>(n), kUndecided);
  state.solo_steps.assign(static_cast<size_t>(n), 0);

  // B's own shared state: the proposal array M and the step-counter array T.
  auto m_arr = run.world.add<prim::RegArray>("lemma12.M");
  auto t_arr = run.world.add<prim::RegArray>("lemma12.T");

  for (int i = 0; i < n; ++i) {
    int64_t input = inputs[static_cast<size_t>(i)];
    // `ordering` and `opts` are captured BY VALUE: callers may pass
    // temporaries, and the program lambdas outlive this function (they run
    // when the scheduler drives the fibers).
    run.sched.spawn(i, [&impl, ordering, &state, opts, m_arr, t_arr, i, n, input,
                        object_range_end](sim::Ctx& ctx) {
      // Step 1-2: announce the proposal.
      int64_t t = 0;
      ctx.world->get(m_arr).write(ctx, static_cast<size_t>(i), num(input));

      // Step 3: run prop_i on A, bumping T[i] before each step of A.
      ctx.pre_step_hook = [m_arr, t_arr, i, &t](sim::Ctx& c) {
        ++t;
        c.world->get(t_arr).write(c, static_cast<size_t>(i), num(t));
      };
      std::vector<Val> resps;
      for (const verify::Invocation& inv : ordering.prop(i)) {
        resps.push_back(impl.apply(ctx, inv));
      }
      ctx.pre_step_hook = nullptr;

      // Steps 4-5: stabilised double collect of T around a collect of R.
      auto collect_t = [&](std::vector<Val>& out) {
        out.clear();
        for (int j = 0; j < n; ++j) {
          out.push_back(ctx.world->get(t_arr).read(ctx, static_cast<size_t>(j)));
        }
      };
      std::vector<Val> t1;
      std::vector<Val> t2;
      std::vector<std::string> r(object_range_end);
      for (;;) {
        collect_t(t1);
        for (size_t idx = 0; idx < object_range_end; ++idx) {
          r[idx] = sim::read_object_state(ctx, idx);
        }
        collect_t(t2);
        if (t1 == t2) break;
      }

      // Step 6: local (solo) simulation of dec_i from the collected states.
      std::unique_ptr<sim::World> local = ctx.world->clone();
      for (size_t idx = 0; idx < object_range_end; ++idx) {
        local->at(idx).set_state_string(r[idx]);
      }
      sim::Ctx solo;
      solo.world = local.get();
      solo.sched = nullptr;
      solo.hist = nullptr;
      solo.self = i;
      solo.solo_budget = opts.solo_step_budget;
      bool simulated = true;
      try {
        for (const verify::Invocation& inv : ordering.dec(i)) {
          resps.push_back(impl.apply(solo, inv));
        }
      } catch (const sim::SoloBudgetExceeded&) {
        simulated = false;
      }
      state.solo_steps[static_cast<size_t>(i)] = solo.steps_taken;
      if (!simulated) {
        ++state.solo_budget_exhausted;
        return;  // undecided: the local simulation did not terminate
      }

      // Step 7: decide the winner's announced proposal.
      int winner = ordering.decide(i, resps);
      if (winner < 0 || winner >= n) return;  // malformed responses: undecided
      Val decision = ctx.world->get(m_arr).read(ctx, static_cast<size_t>(winner));
      if (is_unit(decision)) return;  // winner never announced: undecided
      state.decisions[static_cast<size_t>(i)] = as_num(decision);
    });
  }
}

Lemma12Result run_lemma12(int n, const OrderingObject& ordering,
                          const std::vector<int64_t>& inputs,
                          const std::function<std::unique_ptr<core::ConcurrentObject>(
                              sim::World&)>& make_impl,
                          sim::Strategy& strategy, uint64_t max_steps,
                          const Lemma12Options& opts) {
  Lemma12Result result;
  sim::SimRun run(n);
  std::unique_ptr<core::ConcurrentObject> impl = make_impl(run.world);
  size_t object_range_end = run.world.size();
  spawn_lemma12(run, *impl, object_range_end, ordering, inputs, result.state, opts);
  auto run_result = run.sched.run(strategy, max_steps);
  result.completed = run_result.all_done;
  result.check = validate_agreement(inputs, result.state.decisions, ordering.k);
  return result;
}

}  // namespace c2sl::agreement
