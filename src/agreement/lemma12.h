// Algorithm B of Lemma 12: k-set agreement from a lock-free strongly-
// linearizable implementation A of a k-ordering object with readable base
// objects.
//
// Process p_i with input x (paper, §5):
//   1. t := 0
//   2. M[i].write(x)
//   3. execute prop_i on A, writing T[i] := ++t immediately before EVERY base-
//      object step of A (realised with the simulator's pre-step hook)
//   4. do { t1 := collect(T); r := collect(R); t2 := collect(T) }
//   5. while t1 != t2
//   6. starting from the base-object states in r, locally simulate dec_i to
//      completion (realised by cloning the world and installing r)
//   7. return M[d(i, responses of steps 3 and 6)].read()
//
// The stabilised double collect guarantees r is a consistent snapshot of A's
// base objects in SOME extension of the execution (Claim 13); strong
// linearizability then pins the winner set S_alpha across all processes'
// simulated extensions, giving k-agreement. Run over a merely-linearizable A
// (e.g. the Herlihy–Wing queue) the same algorithm exhibits agreement
// violations — the experiment behind Theorem 17.
#pragma once

#include <cstdint>
#include <vector>

#include "agreement/k_set_agreement.h"
#include "agreement/ordering.h"
#include "core/object_api.h"
#include "sim/sim_run.h"

namespace c2sl::agreement {

struct Lemma12Options {
  /// Step budget for the solo simulation of dec_i (step 6). Exhaustion marks
  /// the process undecided — for a lock-free A this cannot happen (Claim 13);
  /// for broken substrates it is reported instead of hanging.
  uint64_t solo_step_budget = 200000;
};

struct Lemma12State {
  std::vector<int64_t> decisions;     ///< per process; kUndecided if none
  std::vector<uint64_t> solo_steps;   ///< steps used by each local simulation
  int solo_budget_exhausted = 0;      ///< processes whose simulation ran dry
};

/// Spawns algorithm B's program on every process of `run`. `object_range_end`
/// is the world size right after A (and everything below it) was created: the
/// base-object set R is [0, object_range_end). `impl` must already live in
/// run.world. Results land in `state` as the scheduler drives the run.
void spawn_lemma12(sim::SimRun& run, core::ConcurrentObject& impl,
                   size_t object_range_end, const OrderingObject& ordering,
                   const std::vector<int64_t>& inputs, Lemma12State& state,
                   const Lemma12Options& opts = {});

/// Convenience: builds a SimRun, creates A via `make_impl`, runs algorithm B
/// under the given strategy, and validates the outcome.
struct Lemma12Result {
  Lemma12State state;
  AgreementCheck check;
  bool completed = false;  ///< scheduler drained all programs within bounds
};

Lemma12Result run_lemma12(int n, const OrderingObject& ordering,
                          const std::vector<int64_t>& inputs,
                          const std::function<std::unique_ptr<core::ConcurrentObject>(
                              sim::World&)>& make_impl,
                          sim::Strategy& strategy, uint64_t max_steps,
                          const Lemma12Options& opts = {});

}  // namespace c2sl::agreement
