#include "agreement/ordering.h"

namespace c2sl::agreement {

namespace {

bool is_empty_marker(const Val& v) {
  return std::holds_alternative<std::string>(v) && as_str(v) == "EMPTY";
}

/// d for queue-like objects: the sequence is OK^(prop_len) followed by one
/// dequeue response; the winner is that response.
int last_item_after_oks(const std::vector<Val>& resps, size_t prop_len) {
  if (resps.size() != prop_len + 1) return -1;
  const Val& item = resps.back();
  if (!std::holds_alternative<int64_t>(item)) return -1;
  return static_cast<int>(as_num(item));
}

/// d for stack-like objects: OK^(prop_len) then pops; winner is the last
/// non-EMPTY pop response ("the non-eps element with largest subindex").
int last_non_empty_pop(const std::vector<Val>& resps, size_t prop_len) {
  int winner = -1;
  for (size_t i = prop_len; i < resps.size(); ++i) {
    if (std::holds_alternative<int64_t>(resps[i])) {
      winner = static_cast<int>(as_num(resps[i]));
    } else if (!is_empty_marker(resps[i])) {
      return -1;
    }
  }
  return winner;
}

}  // namespace

OrderingObject queue_ordering(int n) {
  OrderingObject o;
  o.description = "queue (1-ordering)";
  o.n = n;
  o.k = 1;
  o.prop = [](int i) { return std::vector<verify::Invocation>{{"Enq", num(i), i}}; };
  o.dec = [](int i) { return std::vector<verify::Invocation>{{"Deq", unit(), i}}; };
  o.decide = [](int, const std::vector<Val>& resps) {
    return last_item_after_oks(resps, 1);
  };
  return o;
}

OrderingObject stack_ordering(int n) {
  OrderingObject o;
  o.description = "stack (1-ordering)";
  o.n = n;
  o.k = 1;
  o.prop = [](int i) { return std::vector<verify::Invocation>{{"Push", num(i), i}}; };
  o.dec = [n](int i) {
    // n+1 pops: at most n pushes happened, so some pop returns EMPTY and the
    // last non-EMPTY response is the FIRST push in the linearization.
    std::vector<verify::Invocation> seq;
    for (int j = 0; j < n + 1; ++j) seq.push_back({"Pop", unit(), i});
    return seq;
  };
  o.decide = [](int, const std::vector<Val>& resps) {
    return last_non_empty_pop(resps, 1);
  };
  return o;
}

OrderingObject multiplicity_queue_ordering(int n) {
  OrderingObject o = queue_ordering(n);
  o.description = "queue with multiplicity (1-ordering)";
  return o;
}

OrderingObject stuttering_queue_ordering(int n, int m) {
  OrderingObject o;
  o.description = std::to_string(m) + "-stuttering queue (1-ordering)";
  o.n = n;
  o.k = 1;
  o.prop = [m](int i) {
    // m+1 enqueues: at least one is guaranteed to take effect.
    std::vector<verify::Invocation> seq;
    for (int j = 0; j < m + 1; ++j) seq.push_back({"Enq", num(i), i});
    return seq;
  };
  o.dec = [](int i) { return std::vector<verify::Invocation>{{"Deq", unit(), i}}; };
  o.decide = [m](int, const std::vector<Val>& resps) {
    return last_item_after_oks(resps, static_cast<size_t>(m) + 1);
  };
  return o;
}

OrderingObject stuttering_stack_ordering(int n, int m) {
  OrderingObject o;
  o.description = std::to_string(m) + "-stuttering stack (1-ordering)";
  o.n = n;
  o.k = 1;
  o.prop = [m](int i) {
    std::vector<verify::Invocation> seq;
    for (int j = 0; j < m + 1; ++j) seq.push_back({"Push", num(i), i});
    return seq;
  };
  o.dec = [n, m](int i) {
    // n(m+1)+1 pops: at most n(m+1) pushes took effect.
    std::vector<verify::Invocation> seq;
    for (int j = 0; j < n * (m + 1) + 1; ++j) seq.push_back({"Pop", unit(), i});
    return seq;
  };
  o.decide = [m](int, const std::vector<Val>& resps) {
    return last_non_empty_pop(resps, static_cast<size_t>(m) + 1);
  };
  return o;
}

OrderingObject k_out_of_order_queue_ordering(int n, int k) {
  OrderingObject o = queue_ordering(n);
  o.description = std::to_string(k) + "-out-of-order queue (" + std::to_string(k) +
                  "-ordering)";
  o.k = k;
  return o;
}

}  // namespace c2sl::agreement
