// k-ordering objects (paper §5, Definition 11) as data: per-process proposal
// and decision invocation sequences plus the decision function d. The paper's
// examples are provided as factories:
//
//   queues                 1-ordering   prop=Enq(i), dec=Deq, d = the item
//   stacks                 1-ordering   prop=Push(i), dec=Pop^(n+1),
//                                       d = last non-EMPTY response
//   queues w/ multiplicity 1-ordering   same sequences as queues
//   m-stuttering queues    1-ordering   prop=Enq(i)^(m+1), dec=Deq
//   m-stuttering stacks    1-ordering   prop=Push(i)^(m+1), dec=Pop^(n(m+1)+1)
//   k-out-of-order queues  k-ordering   prop=Enq(i), dec=Deq
//
// Proposal items are process INDICES: algorithm B turns the index winner into a
// proposal value via its M array.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "verify/spec.h"

namespace c2sl::agreement {

struct OrderingObject {
  std::string description;
  int n = 0;  ///< number of processes
  int k = 1;  ///< the object is k-ordering
  /// Proposal / decision invocation sequences per process index.
  std::function<std::vector<verify::Invocation>(int i)> prop;
  std::function<std::vector<verify::Invocation>(int i)> dec;
  /// d(i, responses of prop_i followed by responses of dec_i) -> winner index.
  /// Returns -1 if the responses are malformed (treated as undecided).
  std::function<int(int i, const std::vector<Val>& resps)> decide;
};

OrderingObject queue_ordering(int n);
OrderingObject stack_ordering(int n);
OrderingObject multiplicity_queue_ordering(int n);
OrderingObject stuttering_queue_ordering(int n, int m);
OrderingObject stuttering_stack_ordering(int n, int m);
OrderingObject k_out_of_order_queue_ordering(int n, int k);

}  // namespace c2sl::agreement
