#include "baselines/aadgms_snapshot.h"

#include "util/assert.h"

namespace c2sl::baselines {

// Cell encoding inside one register Val: [value, seq, view_0 .. view_{n-1}].

AadgmsSnapshot::AadgmsSnapshot(sim::World& world, const std::string& name, int n)
    : name_(name), n_(n) {
  C2SL_CHECK(n > 0, "snapshot needs at least one process");
  regs_ = world.add<prim::RegArray>(name + ".R");
}

AadgmsSnapshot::Cell AadgmsSnapshot::read_cell(sim::Ctx& ctx, int i) {
  Val raw = ctx.world->get(regs_).read(ctx, static_cast<size_t>(i));
  Cell c;
  c.view.assign(static_cast<size_t>(n_), 0);
  if (is_unit(raw)) return c;  // initial: value 0, seq 0, zero view
  const std::vector<int64_t>& enc = as_vec(raw);
  C2SL_ASSERT(enc.size() == static_cast<size_t>(n_) + 2);
  c.value = enc[0];
  c.seq = enc[1];
  c.view.assign(enc.begin() + 2, enc.end());
  return c;
}

void AadgmsSnapshot::write_cell(sim::Ctx& ctx, int i, const Cell& c) {
  std::vector<int64_t> enc;
  enc.reserve(c.view.size() + 2);
  enc.push_back(c.value);
  enc.push_back(c.seq);
  enc.insert(enc.end(), c.view.begin(), c.view.end());
  ctx.world->get(regs_).write(ctx, static_cast<size_t>(i), vec(enc));
}

void AadgmsSnapshot::update(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(ctx.self >= 0 && ctx.self < n_, "process id out of range");
  std::vector<int64_t> embedded = scan(ctx);
  Cell old = read_cell(ctx, ctx.self);
  Cell fresh;
  fresh.value = v;
  fresh.seq = old.seq + 1;
  fresh.view = embedded;
  write_cell(ctx, ctx.self, fresh);
}

std::vector<int64_t> AadgmsSnapshot::scan(sim::Ctx& ctx) {
  std::vector<int> moved(static_cast<size_t>(n_), 0);
  std::vector<Cell> first(static_cast<size_t>(n_));
  for (;;) {
    for (int i = 0; i < n_; ++i) first[static_cast<size_t>(i)] = read_cell(ctx, i);
    std::vector<Cell> second(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) second[static_cast<size_t>(i)] = read_cell(ctx, i);

    bool clean = true;
    for (int i = 0; i < n_; ++i) {
      if (first[static_cast<size_t>(i)].seq != second[static_cast<size_t>(i)].seq) {
        clean = false;
        break;
      }
    }
    if (clean) {
      std::vector<int64_t> view(static_cast<size_t>(n_));
      for (int i = 0; i < n_; ++i) view[static_cast<size_t>(i)] = second[static_cast<size_t>(i)].value;
      return view;
    }
    for (int i = 0; i < n_; ++i) {
      if (first[static_cast<size_t>(i)].seq != second[static_cast<size_t>(i)].seq) {
        if (++moved[static_cast<size_t>(i)] >= 2) {
          // i completed an entire update during this scan: borrow its view.
          return second[static_cast<size_t>(i)].view;
        }
      }
    }
  }
}

Val AadgmsSnapshot::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Update") {
    update(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "Scan") return vec(scan(ctx));
  C2SL_CHECK(false, "unknown snapshot operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::baselines
