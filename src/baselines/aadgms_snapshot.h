// AADGMS single-writer atomic snapshot from single-writer registers
// (Afek, Attiya, Dolev, Gafni, Merritt, Shavit — J.ACM 1993, the paper's [1]).
//
// This is the implementation Golab–Higham–Woelfel [16] originally used to show
// that linearizability does not suffice for randomized programs: it is
// wait-free and linearizable, but NOT strongly linearizable. It is included as
// the second negative exhibit for the model checker, and as the read/write
// comparison point for the §3.2 SnapshotFAA benchmarks.
//
// Algorithm: register R[i] holds (value, seq, embedded view) written only by
// process i.
//   update_i(v): view := scan(); R[i] := (v, seq+1, view)
//   scan():      repeatedly double-collect; a clean double collect (no sequence
//                number changed) returns the collected values; otherwise, a
//                process observed to move TWICE has completed a full embedded
//                update during this scan, and its embedded view is returned
//                ("borrowed").
// Wait-freedom: after n+1 unclean double collects some process moved twice.
#pragma once

#include <string>
#include <vector>

#include "core/object_api.h"
#include "primitives/arrays.h"

namespace c2sl::baselines {

class AadgmsSnapshot : public core::ConcurrentObject, public core::SnapshotIface {
 public:
  AadgmsSnapshot(sim::World& world, const std::string& name, int n);

  void update(sim::Ctx& ctx, int64_t v) override;
  std::vector<int64_t> scan(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int n() const { return n_; }

 private:
  struct Cell {
    int64_t value = 0;
    int64_t seq = 0;
    std::vector<int64_t> view;
  };
  Cell read_cell(sim::Ctx& ctx, int i);
  void write_cell(sim::Ctx& ctx, int i, const Cell& c);

  std::string name_;
  int n_;
  sim::Handle<prim::RegArray> regs_;  // R[i]: single-writer (writer == i)
};

}  // namespace c2sl::baselines
