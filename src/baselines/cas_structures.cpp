#include "baselines/cas_structures.h"

#include "util/assert.h"

namespace c2sl::baselines {

namespace {

std::vector<int64_t> items_of(const Val& v) {
  if (is_unit(v)) return {};
  return as_vec(v);
}

}  // namespace

// -------------------------------------------------------------------- CasQueue

CasQueue::CasQueue(sim::World& world, const std::string& name) : name_(name) {
  state_ = world.add<prim::CasReg>(name + ".state", vec({}));
}

Val CasQueue::enq(sim::Ctx& ctx, int64_t x) {
  prim::CasReg& st = ctx.world->get(state_);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    items.push_back(x);
    if (st.compare_and_swap(ctx, cur, vec(items))) return str("OK");
  }
}

Val CasQueue::deq(sim::Ctx& ctx) {
  prim::CasReg& st = ctx.world->get(state_);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    if (items.empty()) return str("EMPTY");  // linearizes at the read above
    int64_t front = items.front();
    items.erase(items.begin());
    if (st.compare_and_swap(ctx, cur, vec(items))) return num(front);
  }
}

Val CasQueue::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Enq") return enq(ctx, as_num(inv.args));
  if (inv.name == "Deq") return deq(ctx);
  C2SL_CHECK(false, "unknown queue operation: " + inv.name);
  return unit();
}

// -------------------------------------------------------------------- CasStack

CasStack::CasStack(sim::World& world, const std::string& name) : name_(name) {
  state_ = world.add<prim::CasReg>(name + ".state", vec({}));
}

Val CasStack::push(sim::Ctx& ctx, int64_t x) {
  prim::CasReg& st = ctx.world->get(state_);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    items.push_back(x);  // back == top
    if (st.compare_and_swap(ctx, cur, vec(items))) return str("OK");
  }
}

Val CasStack::pop(sim::Ctx& ctx) {
  prim::CasReg& st = ctx.world->get(state_);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    if (items.empty()) return str("EMPTY");
    int64_t top = items.back();
    items.pop_back();
    if (st.compare_and_swap(ctx, cur, vec(items))) return num(top);
  }
}

Val CasStack::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Push") return push(ctx, as_num(inv.args));
  if (inv.name == "Pop") return pop(ctx);
  C2SL_CHECK(false, "unknown stack operation: " + inv.name);
  return unit();
}

// ----------------------------------------------------------- StutteringCasQueue

StutteringCasQueue::StutteringCasQueue(sim::World& world, const std::string& name, int m)
    : name_(name), m_(m) {
  C2SL_CHECK(m >= 1, "m must be at least 1");
  state_ = world.add<prim::CasReg>(name + ".state", vec({0, 0}));
  op_counter_ = world.add<prim::LocalStore<int64_t>>(name + ".opctr",
                                                     /*n=*/64, int64_t{0});
}

bool StutteringCasQueue::wants_stutter(sim::Ctx& ctx) {
  int64_t& ctr = ctx.world->get(op_counter_).local(ctx);
  uint64_t mix = static_cast<uint64_t>(ctx.self) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(ctr) * 0x94d049bb133111ebULL;
  ++ctr;
  return (mix >> 17) % 2 == 0;
}

Val StutteringCasQueue::enq(sim::Ctx& ctx, int64_t x) {
  prim::CasReg& st = ctx.world->get(state_);
  bool try_stutter = wants_stutter(ctx);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> enc = as_vec(cur);
    int64_t ec = enc[0];
    std::vector<int64_t> next = enc;
    if (try_stutter && ec < m_) {
      next[0] = ec + 1;  // no-op enqueue, budget consumed
    } else {
      next[0] = 0;
      next.push_back(x);
    }
    if (st.compare_and_swap(ctx, cur, vec(next))) return str("OK");
  }
}

Val StutteringCasQueue::deq(sim::Ctx& ctx) {
  prim::CasReg& st = ctx.world->get(state_);
  bool try_stutter = wants_stutter(ctx);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> enc = as_vec(cur);
    int64_t dc = enc[1];
    if (enc.size() == 2) return str("EMPTY");
    int64_t front = enc[2];
    std::vector<int64_t> next = enc;
    if (try_stutter && dc < m_) {
      next[1] = dc + 1;  // return the front but do not remove it
    } else {
      next[1] = 0;
      next.erase(next.begin() + 2);
    }
    if (st.compare_and_swap(ctx, cur, vec(next))) return num(front);
  }
}

Val StutteringCasQueue::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Enq") return enq(ctx, as_num(inv.args));
  if (inv.name == "Deq") return deq(ctx);
  C2SL_CHECK(false, "unknown queue operation: " + inv.name);
  return unit();
}

// ---------------------------------------------------------- KOutOfOrderCasQueue

KOutOfOrderCasQueue::KOutOfOrderCasQueue(sim::World& world, const std::string& name,
                                         int k)
    : name_(name), k_(k) {
  C2SL_CHECK(k >= 1, "k must be at least 1");
  state_ = world.add<prim::CasReg>(name + ".state", vec({}));
  op_counter_ = world.add<prim::LocalStore<int64_t>>(name + ".opctr",
                                                     /*n=*/64, int64_t{0});
}

Val KOutOfOrderCasQueue::enq(sim::Ctx& ctx, int64_t x) {
  prim::CasReg& st = ctx.world->get(state_);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    items.push_back(x);
    if (st.compare_and_swap(ctx, cur, vec(items))) return str("OK");
  }
}

Val KOutOfOrderCasQueue::deq(sim::Ctx& ctx) {
  prim::CasReg& st = ctx.world->get(state_);
  int64_t& ctr = ctx.world->get(op_counter_).local(ctx);
  for (;;) {
    Val cur = st.read(ctx);
    std::vector<int64_t> items = items_of(cur);
    if (items.empty()) return str("EMPTY");
    // Deterministic choice among the k oldest: mix process id and an
    // operation counter so different deqs spread over the window.
    size_t window = std::min<size_t>(items.size(), static_cast<size_t>(k_));
    uint64_t mix = static_cast<uint64_t>(ctx.self) * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(ctr) * 0xbf58476d1ce4e5b9ULL;
    size_t pick = static_cast<size_t>(mix % window);
    int64_t item = items[pick];
    items.erase(items.begin() + static_cast<ptrdiff_t>(pick));
    if (st.compare_and_swap(ctx, cur, vec(items))) {
      ++ctr;
      return num(item);
    }
  }
}

Val KOutOfOrderCasQueue::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Enq") return enq(ctx, as_num(inv.args));
  if (inv.name == "Deq") return deq(ctx);
  C2SL_CHECK(false, "unknown queue operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::baselines
