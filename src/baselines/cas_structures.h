// Lock-free queue, stack and k-out-of-order queue from compare&swap — the
// universal-primitive comparison points for §5.
//
// Each keeps its abstract state in one CAS register (Herlihy's universal
// "small object" construction specialised): an operation reads the state,
// computes the successor locally, and installs it with compare&swap, retrying
// on interference. Every successful operation linearizes at its own successful
// CAS; a Deq/Pop that observes the empty state linearizes at that read. All
// linearization points are fixed steps of the operation itself, so the induced
// linearization function is prefix-closed — these implementations are strongly
// linearizable, which the bounded model checker confirms
// (tests/strong_lin_positive_test.cpp).
//
// Their existence is NOT in tension with Theorem 17: compare&swap has infinite
// consensus number. They are exactly what the paper contrasts against — and
// they are the strongly-linearizable k-ordering objects that algorithm B
// (Lemma 12) turns into consensus / k-set agreement.
//
// The k-out-of-order queue's Deq picks deterministically (a hash of process id
// and a per-process counter) among the k oldest items, so executions remain a
// deterministic function of the schedule while exercising the relaxed spec.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/local.h"
#include "primitives/swap_cas.h"

namespace c2sl::baselines {

class CasQueue : public core::ConcurrentObject {
 public:
  CasQueue(sim::World& world, const std::string& name);

  Val enq(sim::Ctx& ctx, int64_t x);
  Val deq(sim::Ctx& ctx);  ///< returns item or "EMPTY"

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  sim::Handle<prim::CasReg> state_;  // holds the item sequence as a vector Val
};

class CasStack : public core::ConcurrentObject {
 public:
  CasStack(sim::World& world, const std::string& name);

  Val push(sim::Ctx& ctx, int64_t x);
  Val pop(sim::Ctx& ctx);  ///< returns item or "EMPTY"

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  sim::Handle<prim::CasReg> state_;
};

/// m-stuttering queue (§5) from CAS: the whole state [enq_stutters,
/// deq_stutters, items...] lives in one CAS register; an operation decides
/// deterministically (hash of process id and per-process counter) whether to
/// stutter, within the spec's budget of m consecutive stutters per type.
/// Strongly linearizable for the same single-CAS reason as CasQueue.
class StutteringCasQueue : public core::ConcurrentObject {
 public:
  StutteringCasQueue(sim::World& world, const std::string& name, int m);

  Val enq(sim::Ctx& ctx, int64_t x);
  Val deq(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int m() const { return m_; }

 private:
  bool wants_stutter(sim::Ctx& ctx);

  std::string name_;
  int m_;
  sim::Handle<prim::CasReg> state_;  // [ec, dc, items...]
  sim::Handle<prim::LocalStore<int64_t>> op_counter_;
};

class KOutOfOrderCasQueue : public core::ConcurrentObject {
 public:
  KOutOfOrderCasQueue(sim::World& world, const std::string& name, int k);

  Val enq(sim::Ctx& ctx, int64_t x);
  Val deq(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int k() const { return k_; }

 private:
  std::string name_;
  int k_;
  sim::Handle<prim::CasReg> state_;
  sim::Handle<prim::LocalStore<int64_t>> op_counter_;
};

}  // namespace c2sl::baselines
