#include "baselines/herlihy_wing_queue.h"

#include "util/assert.h"

namespace c2sl::baselines {

HerlihyWingQueue::HerlihyWingQueue(sim::World& world, const std::string& name)
    : name_(name) {
  tail_ = world.add<prim::FetchAddInt>(name + ".tail");
  items_ = world.add<prim::SwapRegArray>(name + ".items");
}

Val HerlihyWingQueue::enq(sim::Ctx& ctx, int64_t x) {
  int64_t i = ctx.world->get(tail_).fetch_add(ctx, 1);
  ctx.world->get(items_).write(ctx, static_cast<size_t>(i), num(x));
  return str("OK");
}

Val HerlihyWingQueue::deq(sim::Ctx& ctx) {
  for (;;) {
    int64_t n = ctx.world->get(tail_).read(ctx);
    for (int64_t i = 0; i < n; ++i) {
      Val x = ctx.world->get(items_).swap(ctx, static_cast<size_t>(i), Val{});
      if (!is_unit(x)) return x;
    }
  }
}

Val HerlihyWingQueue::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Enq") return enq(ctx, as_num(inv.args));
  if (inv.name == "Deq") return deq(ctx);
  C2SL_CHECK(false, "unknown queue operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::baselines
