// Herlihy–Wing queue — the classic linearizable queue from fetch&add + swap
// (Herlihy & Wing 1990, §4; also Li [25]'s starting point). Base objects have
// consensus number 2, exactly the regime of the paper's §5.
//
//   Enq(x): i = tail.fetch&add(1); items[i].write(x)
//   Deq():  loop { n = tail.read(); for i in 0..n-1 { x = items[i].swap(bottom);
//           if x != bottom return x } }
//
// Enq is wait-free (2 steps), Deq is lock-free and blocks while the queue is
// empty (the original has no EMPTY response).
//
// This queue is linearizable but NOT strongly linearizable: after two Enqs have
// claimed slots but not yet written them, which of them dequeues first depends
// on the future, so no prefix-closed linearization function exists. Theorem 17
// says no lock-free strongly-linearizable queue from these primitives can exist
// at all; this implementation is the exhibit the checker refutes
// (tests/strong_lin_negative_test.cpp) and the vehicle for the Lemma 12
// agreement-violation demonstration (agreement tests and bench_agreement).
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/arrays.h"
#include "primitives/faa.h"

namespace c2sl::baselines {

class HerlihyWingQueue : public core::ConcurrentObject {
 public:
  HerlihyWingQueue(sim::World& world, const std::string& name);

  Val enq(sim::Ctx& ctx, int64_t x);
  /// Blocks (loops) while the queue is empty, per the original algorithm.
  Val deq(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  sim::Handle<prim::FetchAddInt> tail_;
  sim::Handle<prim::SwapRegArray> items_;
};

}  // namespace c2sl::baselines
