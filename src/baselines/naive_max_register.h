// The NAIVE register-based max register — a deliberately broken exhibit.
//
//   WriteMax(v): loop { cur = R.read(); if cur >= v return; R.write(v) }
//   ReadMax():   R.read()
//
// This "obvious" algorithm is NOT linearizable: a writer holding a stale small
// value can overwrite a larger value whose WriteMax already completed, causing
// a new-old inversion for subsequent reads. The linearizability checker finds
// the violation automatically on random schedules
// (tests/baselines_test.cpp: NaiveMaxRegister.CheckerFindsNonLinearizable),
// demonstrating that the verification tooling catches real algorithmic bugs —
// and motivating why §3.1 needs fetch&add (or the per-process-register collect
// of core::CollectMaxRegister) instead.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/register.h"

namespace c2sl::baselines {

class NaiveRWMaxRegister : public core::ConcurrentObject, public core::MaxRegisterIface {
 public:
  NaiveRWMaxRegister(sim::World& world, const std::string& name) : name_(name) {
    reg_ = world.add<prim::RWRegister>(name + ".R", num(0));
  }

  void write_max(sim::Ctx& ctx, int64_t v) override {
    prim::RWRegister& r = ctx.world->get(reg_);
    for (;;) {
      int64_t cur = as_num(r.read(ctx));
      if (cur >= v) return;
      r.write(ctx, num(v));  // BUG: may overwrite a larger concurrent value
    }
  }

  int64_t read_max(sim::Ctx& ctx) override {
    return as_num(ctx.world->get(reg_).read(ctx));
  }

  std::string object_name() const override { return name_; }

  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override {
    if (inv.name == "WriteMax") {
      write_max(ctx, as_num(inv.args));
      return unit();
    }
    if (inv.name == "ReadMax") return num(read_max(ctx));
    C2SL_CHECK(false, "unknown max register operation: " + inv.name);
    return unit();
  }

 private:
  std::string name_;
  sim::Handle<prim::RWRegister> reg_;
};

}  // namespace c2sl::baselines
