#include "core/fetch_increment.h"

#include <algorithm>

#include "util/assert.h"

namespace c2sl::core {

FetchIncrement::FetchIncrement(std::string name, ReadableTasArrayIface& ts, bool one_shot)
    : name_(std::move(name)), ts_(ts), one_shot_(one_shot) {}

int64_t FetchIncrement::fetch_and_increment(sim::Ctx& ctx) {
  if (one_shot_) {
    C2SL_CHECK(std::find(fai_callers_.begin(), fai_callers_.end(), ctx.self) ==
                   fai_callers_.end(),
               "one-shot fetch&increment invoked twice by process " +
                   std::to_string(ctx.self));
    fai_callers_.push_back(ctx.self);
  }
  for (size_t i = 0;; ++i) {
    if (ts_.test_and_set(ctx, i) == 0) return static_cast<int64_t>(i);
  }
}

int64_t FetchIncrement::read(sim::Ctx& ctx) {
  for (size_t i = 0;; ++i) {
    if (ts_.read(ctx, i) == 0) return static_cast<int64_t>(i);
  }
}

Val FetchIncrement::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "FAI") return num(fetch_and_increment(ctx));
  if (inv.name == "Read") return num(read(ctx));
  C2SL_CHECK(false, "unknown fetch&increment operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::core
