// Lock-free strongly-linearizable readable fetch&increment from readable
// test&set (paper §4.2, Theorem 9).
//
// Shared state: an infinite array M of readable test&set objects.
//   fetch&increment(): apply test&set to M[0], M[1], ... in ascending order
//                      until one returns 0; return its index.
//   read():            read M[0], M[1], ... in ascending order until one reads
//                      0; return its index.
//
// At all times the implemented value is the least index whose test&set is
// still 0; every operation linearizes at the step where it obtains 0 — a fixed
// step of its own, hence prefix-closed linearization (strong linearizability).
// The implementation is lock-free: an operation can be delayed past index k
// only because other fetch&increments completed k wins.
//
// The ONE-SHOT restriction (each process invokes fetch&increment at most once)
// is wait-free with an n·(per-entry cost) step bound — this is the Afek–
// Weisberger[–Weisman] one-shot fetch&increment the paper's related-work
// section calls strongly linearizable; `one_shot` enforces the restriction.
#pragma once

#include <string>
#include <vector>

#include "core/object_api.h"

namespace c2sl::core {

class FetchIncrement : public ConcurrentObject, public FaiIface {
 public:
  /// `ts` must outlive this object.
  FetchIncrement(std::string name, ReadableTasArrayIface& ts, bool one_shot = false);

  int64_t fetch_and_increment(sim::Ctx& ctx) override;
  int64_t read(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  ReadableTasArrayIface& ts_;
  bool one_shot_;
  std::vector<sim::ProcId> fai_callers_;  // one-shot enforcement bookkeeping
};

}  // namespace c2sl::core
