#include "core/max_register_faa.h"

#include <algorithm>

#include "util/assert.h"

namespace c2sl::core {

MaxRegisterFAA::MaxRegisterFAA(sim::World& world, const std::string& name, int n)
    : name_(name), n_(n) {
  C2SL_CHECK(n > 0, "max register needs at least one process");
  reg_ = world.add<prim::FetchAddBig>(name + ".R");
  prev_local_max_ = world.add<prim::LocalStore<uint64_t>>(name + ".prevLocalMax", n,
                                                          uint64_t{0});
}

void MaxRegisterFAA::write_max(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(v >= 0, "max register values are non-negative");
  C2SL_CHECK(ctx.self >= 0 && ctx.self < n_, "process id out of range");
  uint64_t k = static_cast<uint64_t>(v);
  uint64_t& prev = ctx.world->get(prev_local_max_).local(ctx);
  if (k <= prev) {
    // Not needed for correctness; gives the operation a fetch&add step to
    // linearize at (§3.1 step 1).
    ctx.world->get(reg_).fetch_add(ctx, BigInt(0));
    return;
  }
  BigInt delta = lanes::unary_raise_delta(n_, ctx.self, prev, k);
  ctx.world->get(reg_).fetch_add(ctx, delta);
  prev = k;
}

int64_t MaxRegisterFAA::read_max(sim::Ctx& ctx) {
  BigInt snapshot = ctx.world->get(reg_).fetch_add(ctx, BigInt(0));
  uint64_t best = 0;
  for (uint64_t lane : lanes::all_unary_lanes(snapshot, n_)) {
    best = std::max(best, lane);
  }
  return static_cast<int64_t>(best);
}

Val MaxRegisterFAA::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "WriteMax") {
    write_max(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "ReadMax") {
    return num(read_max(ctx));
  }
  C2SL_CHECK(false, "unknown max register operation: " + inv.name);
  return unit();
}

uint64_t MaxRegisterFAA::register_bits(sim::Ctx& ctx) {
  return ctx.world->get(reg_).peek().bit_length();
}

}  // namespace c2sl::core
