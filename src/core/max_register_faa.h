// Wait-free strongly-linearizable max register from fetch&add (paper §3.1,
// Theorem 1).
//
// One fetch&add register R packs an n-lane bit-interleaved array; process i's
// lane holds, in unary, the largest value i has written. WriteMax(K) raises the
// caller's lane from its previous local maximum to K with a single fetch&add
// (and performs fetch&add(R, 0) when K is not larger — "not needed for
// correctness, but it simplifies the linearization proof", §3.1, and it makes
// every operation's linearization point *its own* fetch&add step). ReadMax is
// fetch&add(R, 0) followed by local reconstruction of the lane maxima.
//
// Linearization point of every operation: its unique fetch&add step. The
// points are fixed steps of the operation itself, so the induced linearization
// function is prefix-closed — strong linearizability.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/faa.h"
#include "primitives/local.h"
#include "util/interleave.h"

namespace c2sl::core {

class MaxRegisterFAA : public ConcurrentObject, public MaxRegisterIface {
 public:
  /// Creates the shared register and per-process bookkeeping in `world`.
  MaxRegisterFAA(sim::World& world, const std::string& name, int n);

  void write_max(sim::Ctx& ctx, int64_t v) override;
  int64_t read_max(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int n() const { return n_; }
  /// Current bit-width of the packed register (for the §6 width ablation).
  uint64_t register_bits(sim::Ctx& ctx);

 private:
  std::string name_;
  int n_;
  sim::Handle<prim::FetchAddBig> reg_;
  sim::Handle<prim::LocalStore<uint64_t>> prev_local_max_;
};

}  // namespace c2sl::core
