#include "core/max_register_variants.h"

#include "util/assert.h"

namespace c2sl::core {

namespace {

Val dispatch_max_register(MaxRegisterIface& self, sim::Ctx& ctx,
                          const verify::Invocation& inv) {
  if (inv.name == "WriteMax") {
    self.write_max(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "ReadMax") {
    return num(self.read_max(ctx));
  }
  C2SL_CHECK(false, "unknown max register operation: " + inv.name);
  return unit();
}

}  // namespace

// ---------------------------------------------------------------------- atomic

AtomicMaxRegister::AtomicMaxRegister(sim::World& world, const std::string& name)
    : name_(name) {
  reg_ = world.add<prim::MaxRegObj>(name + ".mr");
}

void AtomicMaxRegister::write_max(sim::Ctx& ctx, int64_t v) {
  ctx.world->get(reg_).write_max(ctx, v);
}

int64_t AtomicMaxRegister::read_max(sim::Ctx& ctx) {
  return ctx.world->get(reg_).read_max(ctx);
}

Val AtomicMaxRegister::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  return dispatch_max_register(*this, ctx, inv);
}

// --------------------------------------------------------- bounded, registers

BoundedRWMaxRegister::BoundedRWMaxRegister(sim::World& world, const std::string& name,
                                           int64_t capacity)
    : name_(name), capacity_(capacity) {
  C2SL_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
             "capacity must be a power of two >= 2");
  switches_ = world.add<prim::RegArray>(name + ".switches");
}

void BoundedRWMaxRegister::write_max(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(v >= 0 && v < capacity_, "value out of bounded max register range");
  write_rec(ctx, 1, 0, capacity_, v);
}

void BoundedRWMaxRegister::write_rec(sim::Ctx& ctx, size_t node, int64_t lo, int64_t hi,
                                     int64_t v) {
  if (hi - lo == 1) return;  // leaf: the position itself encodes the value
  int64_t mid = lo + (hi - lo) / 2;
  prim::RegArray& sw = ctx.world->get(switches_);
  if (v < mid) {
    // A set switch means some value >= mid was already written; v is obsolete.
    Val s = sw.read(ctx, node);
    if (!is_unit(s) && as_num(s) == 1) return;
    write_rec(ctx, 2 * node, lo, mid, v);
  } else {
    write_rec(ctx, 2 * node + 1, mid, hi, v);
    sw.write(ctx, node, num(1));
  }
}

int64_t BoundedRWMaxRegister::read_max(sim::Ctx& ctx) {
  return read_rec(ctx, 1, 0, capacity_);
}

int64_t BoundedRWMaxRegister::read_rec(sim::Ctx& ctx, size_t node, int64_t lo,
                                       int64_t hi) {
  if (hi - lo == 1) return lo;
  int64_t mid = lo + (hi - lo) / 2;
  Val s = ctx.world->get(switches_).read(ctx, node);
  if (!is_unit(s) && as_num(s) == 1) return read_rec(ctx, 2 * node + 1, mid, hi);
  return read_rec(ctx, 2 * node, lo, mid);
}

Val BoundedRWMaxRegister::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  return dispatch_max_register(*this, ctx, inv);
}

// ------------------------------------------------------ unbounded, registers

CollectMaxRegister::CollectMaxRegister(sim::World& world, const std::string& name, int n)
    : name_(name), n_(n) {
  C2SL_CHECK(n > 0, "max register needs at least one process");
  own_max_ = world.add<prim::RegArray>(name + ".A");
}

void CollectMaxRegister::write_max(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(v >= 0, "max register values are non-negative");
  C2SL_CHECK(ctx.self >= 0 && ctx.self < n_, "process id out of range");
  prim::RegArray& arr = ctx.world->get(own_max_);
  // Own register: single-writer, so read-then-write is race-free.
  Val cur = arr.read(ctx, static_cast<size_t>(ctx.self));
  if (!is_unit(cur) && as_num(cur) >= v) return;
  arr.write(ctx, static_cast<size_t>(ctx.self), num(v));
}

int64_t CollectMaxRegister::read_max(sim::Ctx& ctx) {
  prim::RegArray& arr = ctx.world->get(own_max_);
  int64_t best = 0;
  for (int i = 0; i < n_; ++i) {
    Val v = arr.read(ctx, static_cast<size_t>(i));
    if (!is_unit(v)) best = std::max(best, as_num(v));
  }
  return best;
}

Val CollectMaxRegister::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  return dispatch_max_register(*this, ctx, inv);
}

}  // namespace c2sl::core
