// Max register variants beyond the §3.1 fetch&add construction.
//
//  * AtomicMaxRegister — wraps the hypothetical atomic base object; the
//    reference point every implementation is compared against.
//  * BoundedRWMaxRegister — wait-free bounded max register from multi-writer
//    registers, the plain Aspnes–Attiya–Censor binary-tree construction: a
//    complete binary tree of switch bits over the value range; WriteMax
//    descends towards its leaf, setting switches on right-turns bottom-up;
//    ReadMax follows set switches greedily right. O(log capacity) steps per
//    operation, linearizable (verified by random-schedule sweeps) — but NOT
//    strongly linearizable: the model checker produces a witness
//    (tests/strong_lin_negative_test.cpp). Helmi–Higham–Woelfel [18] prove
//    bounded SL max registers from registers exist via a MODIFIED
//    construction; the checker verdict documents why the modification is
//    needed.
//  * CollectMaxRegister — unbounded wait-free max register from single-writer
//    registers: process i publishes its personal maximum in its own register;
//    ReadMax collects all registers and returns the largest value (monotone
//    values make the non-atomic collect linearizable). It is NOT strongly
//    linearizable — Denysyuk–Woelfel [14] prove unbounded wait-free SL max
//    registers from registers impossible — and the model checker exhibits the
//    violation (tests/strong_lin_negative_test.cpp).
//
// (The tempting read-compare-rewrite register loop is not even linearizable —
// see baselines::NaiveRWMaxRegister for the checker-caught counterexample.)
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/arrays.h"
#include "primitives/atomic_objects.h"
#include "primitives/register.h"

namespace c2sl::core {

class AtomicMaxRegister : public ConcurrentObject, public MaxRegisterIface {
 public:
  AtomicMaxRegister(sim::World& world, const std::string& name);

  void write_max(sim::Ctx& ctx, int64_t v) override;
  int64_t read_max(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  sim::Handle<prim::MaxRegObj> reg_;
};

class BoundedRWMaxRegister : public ConcurrentObject, public MaxRegisterIface {
 public:
  /// Values are restricted to [0, capacity); capacity must be a power of two.
  BoundedRWMaxRegister(sim::World& world, const std::string& name, int64_t capacity);

  void write_max(sim::Ctx& ctx, int64_t v) override;
  int64_t read_max(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int64_t capacity() const { return capacity_; }

 private:
  void write_rec(sim::Ctx& ctx, size_t node, int64_t lo, int64_t hi, int64_t v);
  int64_t read_rec(sim::Ctx& ctx, size_t node, int64_t lo, int64_t hi);

  std::string name_;
  int64_t capacity_;
  sim::Handle<prim::RegArray> switches_;  // heap-indexed tree of 0/1 switches
};

class CollectMaxRegister : public ConcurrentObject, public MaxRegisterIface {
 public:
  CollectMaxRegister(sim::World& world, const std::string& name, int n);

  void write_max(sim::Ctx& ctx, int64_t v) override;
  int64_t read_max(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  int n_;
  sim::Handle<prim::RegArray> own_max_;  // A[i]: written only by process i
};

}  // namespace c2sl::core
