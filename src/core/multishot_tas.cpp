#include "core/multishot_tas.h"

#include "util/assert.h"

namespace c2sl::core {

MultishotTAS::MultishotTAS(std::string name, MaxRegisterIface& curr,
                           ReadableTasArrayIface& ts)
    : name_(std::move(name)), curr_(curr), ts_(ts) {}

size_t MultishotTAS::current_index(sim::Ctx& ctx) {
  return static_cast<size_t>(curr_.read_max(ctx)) + 1;
}

int64_t MultishotTAS::test_and_set(sim::Ctx& ctx) {
  return ts_.test_and_set(ctx, current_index(ctx));
}

int64_t MultishotTAS::read(sim::Ctx& ctx) {
  return ts_.read(ctx, current_index(ctx));
}

void MultishotTAS::reset(sim::Ctx& ctx) {
  size_t c = current_index(ctx);
  if (ts_.read(ctx, c) == 1) {
    // Logical curr value c+1 == underlying max register value c.
    curr_.write_max(ctx, static_cast<int64_t>(c));
  }
}

Val MultishotTAS::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "TAS") return num(test_and_set(ctx));
  if (inv.name == "Read") return num(read(ctx));
  if (inv.name == "Reset") {
    reset(ctx);
    return unit();
  }
  C2SL_CHECK(false, "unknown multishot test&set operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::core
