// Readable MULTI-SHOT test&set (adds reset) from readable test&set and a max
// register (paper §4.1, Theorem 6, Corollaries 7 and 8).
//
// Shared state: a max register `curr` (logical value starts at 1) and an
// infinite array TS of readable test&set objects.
//   test&set(): return TS[curr.readMax()].test&set()
//   read():     return TS[curr.readMax()].read()
//   reset():    c = curr.readMax(); if TS[c].read() == 1: curr.writeMax(c+1)
//
// The object's state is that of TS[v] where v is curr's current value; the
// logical reset event is the first curr.writeMax(v+1), which batch-linearizes
// every operation that read v from curr but had not yet accessed TS[v]
// (Thm 6 proof). Prefix-closure follows because those events are fixed once
// they occur.
//
// The construction is parameterised by its two capabilities, giving the
// paper's corollaries by substitution:
//   * Cor 7 (wait-free, from test&set + fetch&add): MaxRegisterFAA +
//     ReadableTasArray;
//   * Cor 8 (lock-free, from test&set only): RWMaxRegister (registers) +
//     ReadableTasArray;
//   * the "(atomic) base objects" reading of Thm 6: AtomicMaxRegister +
//     AtomicReadableTasArray.
#pragma once

#include <string>

#include "core/object_api.h"

namespace c2sl::core {

class MultishotTAS : public ConcurrentObject {
 public:
  /// `curr` and `ts` must outlive this object.
  MultishotTAS(std::string name, MaxRegisterIface& curr, ReadableTasArrayIface& ts);

  int64_t test_and_set(sim::Ctx& ctx);
  int64_t read(sim::Ctx& ctx);
  void reset(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  /// curr's logical value = 1 + underlying max register value (which starts 0).
  size_t current_index(sim::Ctx& ctx);

  std::string name_;
  MaxRegisterIface& curr_;
  ReadableTasArrayIface& ts_;
};

}  // namespace c2sl::core
