#include "core/object_api.h"

namespace c2sl::core {

Val invoke_recorded(sim::Ctx& ctx, ConcurrentObject& obj, const verify::Invocation& inv) {
  sim::OpId id = ctx.begin_op(obj.object_name(), inv.name, inv.args);
  Val resp = obj.apply(ctx, inv);
  ctx.end_op(id, resp);
  return resp;
}

}  // namespace c2sl::core
