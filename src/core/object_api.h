// Public object API of the library.
//
// Every implemented concurrent object exposes two faces:
//  * typed methods (write_max, scan, test_and_set, ...) — the natural API;
//  * a uniform dynamic face, ConcurrentObject::apply(ctx, invocation), which
//    lets generic harnesses (random-workload linearizability sweeps, execution-
//    tree exploration, benchmarks) drive any object through one code path.
//
// Small capability interfaces (MaxRegisterIface, ReadableTasArrayIface,
// FaiIface) express the paper's composition structure: Theorem 6's multi-shot
// test&set is written against *a* max register and *an* array of readable
// test&set objects, and Corollaries 7/8 are obtained by plugging in different
// implementations of those capabilities.
#pragma once

#include <string>
#include <vector>

#include "sim/ctx.h"
#include "verify/spec.h"

namespace c2sl::core {

class ConcurrentObject {
 public:
  virtual ~ConcurrentObject() = default;
  /// Name under which operations are recorded in histories.
  virtual std::string object_name() const = 0;
  /// Dynamic dispatch of one operation; unknown names are precondition errors.
  virtual Val apply(sim::Ctx& ctx, const verify::Invocation& inv) = 0;
};

/// Runs one operation with invocation/response recording in the history.
Val invoke_recorded(sim::Ctx& ctx, ConcurrentObject& obj, const verify::Invocation& inv);

/// Max register capability (WriteMax / ReadMax), values >= 0.
class MaxRegisterIface {
 public:
  virtual ~MaxRegisterIface() = default;
  virtual void write_max(sim::Ctx& ctx, int64_t v) = 0;
  virtual int64_t read_max(sim::Ctx& ctx) = 0;
};

/// Infinite array of *readable* test&set objects.
class ReadableTasArrayIface {
 public:
  virtual ~ReadableTasArrayIface() = default;
  virtual int64_t test_and_set(sim::Ctx& ctx, size_t idx) = 0;
  virtual int64_t read(sim::Ctx& ctx, size_t idx) = 0;
};

/// Readable fetch&increment capability.
class FaiIface {
 public:
  virtual ~FaiIface() = default;
  virtual int64_t fetch_and_increment(sim::Ctx& ctx) = 0;
  virtual int64_t read(sim::Ctx& ctx) = 0;
};

/// n-component single-writer snapshot capability (the substrate of
/// Algorithm 1; Theorem 3 requires a STRONGLY linearizable implementation).
class SnapshotIface {
 public:
  virtual ~SnapshotIface() = default;
  virtual void update(sim::Ctx& ctx, int64_t v) = 0;
  virtual std::vector<int64_t> scan(sim::Ctx& ctx) = 0;
};

}  // namespace c2sl::core
