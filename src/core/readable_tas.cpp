#include "core/readable_tas.h"

#include "util/assert.h"

namespace c2sl::core {

ReadableTAS::ReadableTAS(sim::World& world, const std::string& name) : name_(name) {
  ts_ = world.add<prim::TestAndSet>(name + ".ts", /*readable=*/false);
  state_ = world.add<prim::RWRegister>(name + ".state", num(0));
}

int64_t ReadableTAS::test_and_set(sim::Ctx& ctx) {
  int64_t v = ctx.world->get(ts_).test_and_set(ctx);
  ctx.world->get(state_).write(ctx, num(1));
  return v;
}

int64_t ReadableTAS::read(sim::Ctx& ctx) {
  return as_num(ctx.world->get(state_).read(ctx));
}

Val ReadableTAS::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "TAS") return num(test_and_set(ctx));
  if (inv.name == "Read") return num(read(ctx));
  C2SL_CHECK(false, "unknown readable test&set operation: " + inv.name);
  return unit();
}

ReadableTasArray::ReadableTasArray(sim::World& world, const std::string& name) {
  ts_ = world.add<prim::TasArray>(name + ".ts", /*readable=*/false);
  state_ = world.add<prim::RegArray>(name + ".state");
}

int64_t ReadableTasArray::test_and_set(sim::Ctx& ctx, size_t idx) {
  int64_t v = ctx.world->get(ts_).test_and_set(ctx, idx);
  ctx.world->get(state_).write(ctx, idx, num(1));
  return v;
}

int64_t ReadableTasArray::read(sim::Ctx& ctx, size_t idx) {
  Val v = ctx.world->get(state_).read(ctx, idx);
  return is_unit(v) ? 0 : as_num(v);  // bottom == never set == 0
}

AtomicReadableTasArray::AtomicReadableTasArray(sim::World& world, const std::string& name) {
  ts_ = world.add<prim::TasArray>(name + ".ts", /*readable=*/true);
}

int64_t AtomicReadableTasArray::test_and_set(sim::Ctx& ctx, size_t idx) {
  return ctx.world->get(ts_).test_and_set(ctx, idx);
}

int64_t AtomicReadableTasArray::read(sim::Ctx& ctx, size_t idx) {
  return ctx.world->get(ts_).read(ctx, idx);
}

}  // namespace c2sl::core
