// Wait-free strongly-linearizable READABLE test&set from plain test&set and one
// read/write register (paper §4.1, Theorem 5).
//
// Shared state: a register `state` (init 0) and an n-process test&set `ts`.
//   test&set(): v = ts.test&set(); state.write(1); return v
//   read():     return state.read()
//
// Linearization (Thm 5 proof): reads linearize at their read of `state`; the
// first write of 1 into `state` (event e) linearizes, in a batch, the test&set
// operation op* that won `ts` followed by every test&set that had accessed `ts`
// before e; later test&sets linearize at their `ts` access. All points are
// schedule-determined and never move in extensions — prefix-closed.
//
// ReadableTasArray is the same construction applied index-wise over an infinite
// array (used by Theorems 6 and 9); AtomicReadableTasArray is the *atomic base
// object* version for the modular "(atomic) base objects" phrasing of Thm 6.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/arrays.h"
#include "primitives/register.h"
#include "primitives/tas.h"

namespace c2sl::core {

class ReadableTAS : public ConcurrentObject {
 public:
  ReadableTAS(sim::World& world, const std::string& name);

  int64_t test_and_set(sim::Ctx& ctx);
  int64_t read(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  sim::Handle<prim::TestAndSet> ts_;      // plain (non-readable) test&set
  sim::Handle<prim::RWRegister> state_;
};

/// Theorem 5 lifted to an infinite array: base objects are a non-readable
/// test&set array and a register array; entry k behaves as a readable test&set.
class ReadableTasArray : public ReadableTasArrayIface {
 public:
  ReadableTasArray(sim::World& world, const std::string& name);

  int64_t test_and_set(sim::Ctx& ctx, size_t idx) override;
  int64_t read(sim::Ctx& ctx, size_t idx) override;

 private:
  sim::Handle<prim::TasArray> ts_;      // constructed non-readable
  sim::Handle<prim::RegArray> state_;
};

/// Atomic readable test&set array — a plain base object, readable natively.
class AtomicReadableTasArray : public ReadableTasArrayIface {
 public:
  AtomicReadableTasArray(sim::World& world, const std::string& name);

  int64_t test_and_set(sim::Ctx& ctx, size_t idx) override;
  int64_t read(sim::Ctx& ctx, size_t idx) override;

 private:
  sim::Handle<prim::TasArray> ts_;
};

}  // namespace c2sl::core
