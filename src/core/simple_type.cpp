#include "core/simple_type.h"

#include <algorithm>
#include <set>

#include "util/assert.h"

namespace c2sl::core {

// ------------------------------------------------------------------ NodeArena

int64_t NodeArena::append(sim::Ctx& ctx, const STNode& node) {
  ctx.gate(name(), "append");
  nodes_.push_back(node);
  return static_cast<int64_t>(nodes_.size()) - 1;
}

STNode NodeArena::get(sim::Ctx& ctx, int64_t id) {
  ctx.gate(name(), "get(" + std::to_string(id) + ")");
  C2SL_ASSERT(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

std::unique_ptr<sim::SimObject> NodeArena::clone() const {
  auto c = std::make_unique<NodeArena>();
  c->nodes_ = nodes_;
  return c;
}

namespace {
constexpr char kField = '\x1f';
constexpr char kRecord = '\x1e';
}  // namespace

std::string NodeArena::state_string() const {
  std::string out;
  for (const STNode& n : nodes_) {
    out += n.inv_name;
    out += kField;
    out += encode_val(n.inv_args);
    out += kField;
    out += std::to_string(n.proc);
    out += kField;
    out += encode_val(n.resp);
    out += kField;
    for (size_t i = 0; i < n.preceding.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(n.preceding[i]);
    }
    out += kRecord;
  }
  return out;
}

void NodeArena::set_state_string(const std::string& s) {
  nodes_.clear();
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find(kRecord, start);
    if (end == std::string::npos) break;
    std::string rec = s.substr(start, end - start);
    start = end + 1;
    STNode node;
    std::vector<std::string> fields;
    size_t fstart = 0;
    for (int i = 0; i < 4; ++i) {
      size_t fend = rec.find(kField, fstart);
      C2SL_ASSERT(fend != std::string::npos);
      fields.push_back(rec.substr(fstart, fend - fstart));
      fstart = fend + 1;
    }
    fields.push_back(rec.substr(fstart));
    node.inv_name = fields[0];
    node.inv_args = decode_val(fields[1]);
    node.proc = std::stoi(fields[2]);
    node.resp = decode_val(fields[3]);
    size_t pstart = 0;
    const std::string& plist = fields[4];
    while (pstart < plist.size()) {
      size_t comma = plist.find(',', pstart);
      std::string tok = comma == std::string::npos ? plist.substr(pstart)
                                                   : plist.substr(pstart, comma - pstart);
      node.preceding.push_back(std::stoll(tok));
      if (comma == std::string::npos) break;
      pstart = comma + 1;
    }
    nodes_.push_back(std::move(node));
  }
}

// ----------------------------------------------------------- SimpleTypeObject

SimpleTypeObject::SimpleTypeObject(sim::World& world, const std::string& name, int n,
                                   const verify::Spec& spec, OverwritesFn overwrites)
    : name_(name), n_(n), spec_(spec), overwrites_(std::move(overwrites)) {
  owned_root_ = std::make_unique<SnapshotFAA>(world, name + ".root", n);
  root_ = owned_root_.get();
  arena_ = world.add<NodeArena>(name + ".arena");
}

SimpleTypeObject::SimpleTypeObject(sim::World& world, const std::string& name, int n,
                                   const verify::Spec& spec, OverwritesFn overwrites,
                                   SnapshotIface& root)
    : name_(name), n_(n), spec_(spec), overwrites_(std::move(overwrites)), root_(&root) {
  arena_ = world.add<NodeArena>(name + ".arena");
}

bool SimpleTypeObject::dominated(const STNode& a, const STNode& b) const {
  verify::Invocation ia{a.inv_name, a.inv_args, a.proc};
  verify::Invocation ib{b.inv_name, b.inv_args, b.proc};
  bool b_over_a = overwrites_(ia, ib);
  bool a_over_b = overwrites_(ib, ia);
  if (b_over_a && !a_over_b) return true;
  if (b_over_a && a_over_b) return a.proc < b.proc;
  return false;
}

Val SimpleTypeObject::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  // Line 12: view = root.scan().
  std::vector<int64_t> view = root_->scan(ctx);

  // Line 13: G = BFS over nodes reachable from the view (ids decrease along
  // `preceding` edges, so a worklist of unread ids terminates).
  NodeArena& arena = ctx.world->get(arena_);
  std::map<int64_t, STNode> graph;  // ordered: ascending id == topological order
  std::vector<int64_t> work;
  for (int64_t entry : view) {
    if (entry != 0) work.push_back(entry - 1);
  }
  while (!work.empty()) {
    int64_t id = work.back();
    work.pop_back();
    if (graph.count(id) != 0) continue;
    STNode node = arena.get(ctx, id);
    for (int64_t entry : node.preceding) {
      if (entry != 0 && graph.count(entry - 1) == 0) work.push_back(entry - 1);
    }
    graph.emplace(id, std::move(node));
  }

  // Line 14 + lingraph: start from the real-time order (edges preceding -> node;
  // ascending ids are one topological sort of it), add dominance edges where
  // they do not close a cycle, then Kahn-sort with min-id tie-breaking.
  std::vector<int64_t> ids;
  ids.reserve(graph.size());
  for (const auto& [id, node] : graph) ids.push_back(id);

  // adj[i][j] == true: edge ids[i] -> ids[j] (i before j).
  size_t k = ids.size();
  std::vector<std::vector<bool>> adj(k, std::vector<bool>(k, false));
  auto index_of = [&](int64_t id) {
    return static_cast<size_t>(std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };
  for (size_t j = 0; j < k; ++j) {
    const STNode& node = graph.at(ids[j]);
    for (int64_t entry : node.preceding) {
      if (entry == 0) continue;
      // Real-time order: every node reachable from `preceding` precedes node j;
      // direct edges suffice for the sort, transitivity is implied by ids.
      adj[index_of(entry - 1)][j] = true;
    }
  }
  // Transitive real-time order: any node in the graph with a smaller id that is
  // an ancestor. For cycle checks we work with reachability on the fly.
  auto reaches = [&](size_t from, size_t to) {
    if (from == to) return true;
    std::vector<size_t> stack = {from};
    std::vector<bool> seen(k, false);
    seen[from] = true;
    while (!stack.empty()) {
      size_t cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      for (size_t nxt = 0; nxt < k; ++nxt) {
        if (adj[cur][nxt] && !seen[nxt]) {
          seen[nxt] = true;
          stack.push_back(nxt);
        }
      }
    }
    return false;
  };
  // Pseudocode lines 4-9 over the id-ascending topological sort.
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const STNode& oi = graph.at(ids[i]);
      const STNode& oj = graph.at(ids[j]);
      if (dominated(oj, oi) && !reaches(j, i) && !adj[j][i]) {
        // o_i dominates o_j: o_j ordered before o_i unless that closes a cycle.
        if (!reaches(i, j)) adj[j][i] = true;
      }
      if (dominated(oi, oj) && !reaches(i, j) && !adj[i][j]) {
        if (!reaches(j, i)) adj[i][j] = true;
      }
    }
  }
  // Kahn topological sort, min-id first (deterministic).
  std::vector<size_t> indegree(k, 0);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      if (adj[a][b]) ++indegree[b];
    }
  }
  std::set<size_t> ready;
  for (size_t v = 0; v < k; ++v) {
    if (indegree[v] == 0) ready.insert(v);
  }
  std::vector<size_t> order;
  while (!ready.empty()) {
    size_t v = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(v);
    for (size_t w = 0; w < k; ++w) {
      if (adj[v][w] && --indegree[w] == 0) ready.insert(w);
    }
  }
  C2SL_ASSERT_MSG(order.size() == k, "lingraph produced a cycle");

  // Lines 15-19: replay S through the spec, then choose this invocation's
  // response so that S . inv . resp is valid.
  std::string state = spec_.initial();
  for (size_t v : order) {
    const STNode& node = graph.at(ids[v]);
    verify::Invocation i{node.inv_name, node.inv_args, node.proc};
    auto transitions = spec_.next(state, i);
    C2SL_ASSERT_MSG(!transitions.empty(), "spec rejected a published operation");
    // Prefer the transition matching the stored response (deterministic simple
    // types have exactly one transition anyway).
    const verify::Transition* chosen = &transitions[0];
    for (const verify::Transition& t : transitions) {
      if (t.resp == node.resp) {
        chosen = &t;
        break;
      }
    }
    state = chosen->state;
  }
  verify::Invocation own{inv.name, inv.args, ctx.self};
  auto own_transitions = spec_.next(state, own);
  C2SL_ASSERT_MSG(!own_transitions.empty(), "spec rejected invocation " + inv.name);
  Val resp = own_transitions[0].resp;

  // Lines 20-22: publish the node, then update root with its address.
  STNode e;
  e.inv_name = inv.name;
  e.inv_args = inv.args;
  e.proc = ctx.self;
  e.resp = resp;
  e.preceding = view;
  int64_t id = arena.append(ctx, e);
  root_->update(ctx, id + 1);
  return resp;
}

size_t SimpleTypeObject::graph_size(sim::Ctx& ctx) const {
  return ctx.world->get(const_cast<SimpleTypeObject*>(this)->arena_).size();
}

// ------------------------------------------------------------------ instances

namespace {

/// Any operation overwrites a pure read (a read never changes the state, so the
/// configuration after the second operation is unaffected).
bool is_read(const verify::Invocation& o, const char* read_name) {
  return o.name == read_name;
}

}  // namespace

std::unique_ptr<SimpleTypeObject> make_counter(sim::World& world, const std::string& name,
                                               int n, const verify::Spec& spec) {
  OverwritesFn fn = [](const verify::Invocation& o1, const verify::Invocation& o2) {
    (void)o2;
    return is_read(o1, "Read");  // Inc/Add/Read all overwrite Read; Incs commute
  };
  return std::make_unique<SimpleTypeObject>(world, name, n, spec, std::move(fn));
}

std::unique_ptr<SimpleTypeObject> make_max_register_st(sim::World& world,
                                                       const std::string& name, int n,
                                                       const verify::Spec& spec) {
  OverwritesFn fn = [](const verify::Invocation& o1, const verify::Invocation& o2) {
    if (is_read(o1, "ReadMax")) return true;  // WriteMax and ReadMax overwrite reads
    if (o1.name == "WriteMax" && o2.name == "WriteMax") {
      return as_num(o2.args) >= as_num(o1.args);  // §1: WriteMax(v1) overwrites
    }                                             // WriteMax(v2) iff v1 >= v2
    return false;
  };
  return std::make_unique<SimpleTypeObject>(world, name, n, spec, std::move(fn));
}

std::unique_ptr<SimpleTypeObject> make_union_set(sim::World& world, const std::string& name,
                                                 int n, const verify::Spec& spec) {
  OverwritesFn fn = [](const verify::Invocation& o1, const verify::Invocation& o2) {
    if (is_read(o1, "Has")) return true;
    if (o1.name == "Insert" && o2.name == "Insert") {
      return as_num(o1.args) == as_num(o2.args);  // same-element inserts idempotent
    }
    return false;
  };
  return std::make_unique<SimpleTypeObject>(world, name, n, spec, std::move(fn));
}

std::unique_ptr<SimpleTypeObject> make_logical_clock(sim::World& world,
                                                     const std::string& name, int n,
                                                     const verify::Spec& spec) {
  OverwritesFn fn = [](const verify::Invocation& o1, const verify::Invocation& o2) {
    if (is_read(o1, "Observe")) return true;
    if (o1.name == "Join" && o2.name == "Join") {
      return as_num(o2.args) >= as_num(o1.args);
    }
    return false;
  };
  return std::make_unique<SimpleTypeObject>(world, name, n, spec, std::move(fn));
}

}  // namespace c2sl::core
