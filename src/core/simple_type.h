// Wait-free strongly-linearizable SIMPLE TYPES from atomic snapshot
// (paper §3.3, Algorithm 1, Theorems 3 and 4; Aspnes–Herlihy [7] construction,
// strong linearizability by Ovens–Woelfel [27] / the paper's forward
// simulation).
//
// A simple type is an object where every pair of operations either commutes or
// one overwrites the other (counters, max registers, logical clocks,
// union-sets, ...). The construction maintains a grow-only operation graph:
//
//   * Nodes (invocation, response, preceding[1..n]) live in a shared
//     append-only arena; a node is immutable once published.
//   * A snapshot object `root` holds, per process, (a pointer to) its latest
//     node. Using the §3.2 strongly-linearizable SnapshotFAA here yields
//     Theorem 4 ("any simple type from fetch&add") by composition.
//
//   execute_p(invoke):
//     view := root.scan()                          (one snapshot step)
//     G    := graph reachable from view            (one read step per node)
//     S    := topological sort of lingraph(G)      (local computation)
//     resp := response making S · invoke · resp valid
//     publish node {invoke, resp, preceding := view}; root.update_p(node)
//
// lingraph(G) starts from the real-time partial order recorded in `preceding`
// and inserts dominance edges (dominated before dominator) whenever they do
// not close a cycle; `o1 dominated by o2` iff o2 overwrites o1 but not
// vice-versa, or they overwrite each other and o1's process id is smaller
// (Thm 3 proof). All topological sorts are deterministic (ascending node id /
// Kahn with min-id), as required for replay-based exploration.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/object_api.h"
#include "core/snapshot_faa.h"
#include "sim/ctx.h"
#include "sim/world.h"
#include "verify/spec.h"

namespace c2sl::core {

/// Published operation node (immutable after append).
struct STNode {
  std::string inv_name;
  Val inv_args;
  sim::ProcId proc = -1;
  Val resp;
  std::vector<int64_t> preceding;  // node id + 1 per process; 0 == null
};

/// Shared append-only node storage. Appending a fully-initialised node is one
/// step (a write to fresh memory); reading a published node is one step.
class NodeArena : public sim::SimObject {
 public:
  NodeArena() = default;

  int64_t append(sim::Ctx& ctx, const STNode& node);
  STNode get(sim::Ctx& ctx, int64_t id);
  size_t size() const { return nodes_.size(); }

  std::unique_ptr<sim::SimObject> clone() const override;
  std::string state_string() const override;
  void set_state_string(const std::string& s) override;

 private:
  std::vector<STNode> nodes_;
};

/// `overwrites(o1, o2)` == executing o1 immediately before o2 does not change
/// the configuration reached after o2.
using OverwritesFn =
    std::function<bool(const verify::Invocation& o1, const verify::Invocation& o2)>;

class SimpleTypeObject : public ConcurrentObject {
 public:
  /// `spec` must be a deterministic sequential specification of the simple
  /// type; `overwrites` its overwrite relation. Both must outlive the object.
  /// The root snapshot is the §3.2 SnapshotFAA (the Theorem 4 composition).
  SimpleTypeObject(sim::World& world, const std::string& name, int n,
                   const verify::Spec& spec, OverwritesFn overwrites);

  /// Backend-ablation constructor: runs Algorithm 1 over an externally-owned
  /// snapshot (Theorem 3 holds only if `root` is strongly linearizable;
  /// tests/simple_type_backend_test.cpp probes what breaks when it is not).
  SimpleTypeObject(sim::World& world, const std::string& name, int n,
                   const verify::Spec& spec, OverwritesFn overwrites,
                   SnapshotIface& root);

  std::string object_name() const override { return name_; }
  /// Algorithm 1's execute_p.
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  /// Number of published operation nodes (diagnostics / benchmarks).
  size_t graph_size(sim::Ctx& ctx) const;

 private:
  bool dominated(const STNode& a, const STNode& b) const;  // a dominated by b

  std::string name_;
  int n_;
  const verify::Spec& spec_;
  OverwritesFn overwrites_;
  std::unique_ptr<SnapshotFAA> owned_root_;  // default (Theorem 4) backend
  SnapshotIface* root_ = nullptr;            // the backend actually in use
  sim::Handle<NodeArena> arena_;
};

/// ----------------------------------------------------------------- instances
/// Factory helpers wiring the specs from verify/specs.h with their overwrite
/// relations. Returned objects allocate their shared state in `world`.

std::unique_ptr<SimpleTypeObject> make_counter(sim::World& world, const std::string& name,
                                               int n, const verify::Spec& spec);
std::unique_ptr<SimpleTypeObject> make_max_register_st(sim::World& world,
                                                       const std::string& name, int n,
                                                       const verify::Spec& spec);
std::unique_ptr<SimpleTypeObject> make_union_set(sim::World& world, const std::string& name,
                                                 int n, const verify::Spec& spec);
/// Logical clock: Join(v) advances to max(clock, v), Observe() reads. A Lamport
/// tick is the (non-atomic) composition Join(Observe() + 1).
std::unique_ptr<SimpleTypeObject> make_logical_clock(sim::World& world,
                                                     const std::string& name, int n,
                                                     const verify::Spec& spec);

}  // namespace c2sl::core
