#include "core/sl_set.h"

#include "util/assert.h"

namespace c2sl::core {

SLSet::SLSet(sim::World& world, const std::string& name, FaiIface& max)
    : name_(name), max_(max) {
  items_ = world.add<prim::RegArray>(name + ".Items");
  ts_ = world.add<prim::TasArray>(name + ".TS", /*readable=*/false);
}

Val SLSet::put(sim::Ctx& ctx, int64_t x) {
  int64_t m = max_.fetch_and_increment(ctx);
  ctx.world->get(items_).write(ctx, static_cast<size_t>(m), num(x));
  return str("OK");
}

Val SLSet::take(sim::Ctx& ctx) {
  int64_t taken_old = 0;
  int64_t max_old = 0;
  for (;;) {
    int64_t taken_new = 0;
    int64_t max_new = max_.read(ctx);
    for (int64_t c = 0; c < max_new; ++c) {
      Val x = ctx.world->get(items_).read(ctx, static_cast<size_t>(c));
      if (!is_unit(x)) {
        if (ctx.world->get(ts_).test_and_set(ctx, static_cast<size_t>(c)) == 0) {
          return x;
        }
        ++taken_new;  // slot already claimed by some other take
      }
    }
    if (taken_new == taken_old && max_new == max_old) return str("EMPTY");
    taken_old = taken_new;
    max_old = max_new;
  }
}

Val SLSet::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Put") return put(ctx, as_num(inv.args));
  if (inv.name == "Take") return take(ctx);
  C2SL_CHECK(false, "unknown set operation: " + inv.name);
  return unit();
}

}  // namespace c2sl::core
