// Lock-free strongly-linearizable SET from test&set (paper §4.3, Algorithm 2,
// Theorem 10).
//
// Shared state: Items — infinite array of read/write registers (init ⊥);
// TS — infinite array of (plain) test&set objects; Max — a readable
// fetch&increment object (itself built from readable test&set, Theorem 9).
//
//   Put(x):  m = Max.fetch&increment(); Items[m].write(x); return OK
//   Take():  repeatedly sweep Items[0 .. Max.read()-1]; claim the first slot
//            whose item is present and whose TS[c].test&set() returns 0;
//            return EMPTY after two consecutive sweeps observe the same number
//            of taken slots and the same Max (Algorithm 2's
//            taken_old/max_old stabilisation check).
//
// The abstract set at any moment is { Items[c] : c < Max, Items[c] != ⊥,
// TS[c] = 0 }. Puts linearize at their Items write, successful Takes at their
// winning test&set, EMPTY Takes at their last Max read — all fixed steps,
// hence prefix-closed linearization. Lock-free: a Take sweep can be invalidated
// only by other Puts/Takes completing.
#pragma once

#include <string>

#include "core/object_api.h"
#include "primitives/arrays.h"

namespace c2sl::core {

class SLSet : public ConcurrentObject {
 public:
  /// `max` must outlive this object (Theorem 10 composes with Theorem 9's
  /// fetch&increment; any FaiIface works).
  SLSet(sim::World& world, const std::string& name, FaiIface& max);

  Val put(sim::Ctx& ctx, int64_t x);
  /// Returns the taken item, or the string "EMPTY".
  Val take(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  FaiIface& max_;
  sim::Handle<prim::RegArray> items_;
  sim::Handle<prim::TasArray> ts_;  // plain test&set
};

}  // namespace c2sl::core
