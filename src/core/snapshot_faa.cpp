#include "core/snapshot_faa.h"

#include "util/assert.h"

namespace c2sl::core {

SnapshotFAA::SnapshotFAA(sim::World& world, const std::string& name, int n)
    : name_(name), n_(n) {
  C2SL_CHECK(n > 0, "snapshot needs at least one process");
  reg_ = world.add<prim::FetchAddBig>(name + ".R");
  prev_val_ = world.add<prim::LocalStore<BigInt>>(name + ".prevVal", n, BigInt(0));
}

void SnapshotFAA::update(sim::Ctx& ctx, int64_t v) {
  C2SL_CHECK(v >= 0, "snapshot components are non-negative");
  C2SL_CHECK(ctx.self >= 0 && ctx.self < n_, "process id out of range");
  BigInt& prev = ctx.world->get(prev_val_).local(ctx);
  BigInt next(v);
  if (next == prev) {
    ctx.world->get(reg_).fetch_add(ctx, BigInt(0));  // §3.2 step 1
    return;
  }
  BigInt delta = lanes::binary_rewrite_delta(n_, ctx.self, prev, next);
  ctx.world->get(reg_).fetch_add(ctx, delta);
  prev = next;
}

std::vector<int64_t> SnapshotFAA::scan(sim::Ctx& ctx) {
  BigInt snapshot = ctx.world->get(reg_).fetch_add(ctx, BigInt(0));
  std::vector<int64_t> view(static_cast<size_t>(n_));
  std::vector<BigInt> lane_values = lanes::all_binary_lanes(snapshot, n_);
  for (int i = 0; i < n_; ++i) {
    view[static_cast<size_t>(i)] = static_cast<int64_t>(lane_values[static_cast<size_t>(i)].to_u64());
  }
  return view;
}

Val SnapshotFAA::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Update") {
    update(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "Scan") {
    return vec(scan(ctx));
  }
  C2SL_CHECK(false, "unknown snapshot operation: " + inv.name);
  return unit();
}

uint64_t SnapshotFAA::register_bits(sim::Ctx& ctx) {
  return ctx.world->get(reg_).peek().bit_length();
}

}  // namespace c2sl::core
