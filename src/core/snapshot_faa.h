// Wait-free strongly-linearizable n-component single-writer atomic snapshot
// from fetch&add (paper §3.2, Theorem 2).
//
// One fetch&add register R packs an n-lane bit-interleaved view: the lane of
// process i holds the *binary* representation of its component. Update(v) by
// process i computes posAdj (lane bits to set) and negAdj (lane bits to clear)
// against its previous value and applies fetch&add(R, posAdj − negAdj) — one
// atomic step; equal values still perform fetch&add(R, 0). Scan is
// fetch&add(R, 0) plus local lane reconstruction.
//
// Linearization point of every operation: its unique fetch&add step (fixed,
// owned by the operation), hence strong linearizability.
#pragma once

#include <string>
#include <vector>

#include "core/object_api.h"
#include "primitives/faa.h"
#include "primitives/local.h"
#include "util/interleave.h"

namespace c2sl::core {

class SnapshotFAA : public ConcurrentObject, public SnapshotIface {
 public:
  SnapshotFAA(sim::World& world, const std::string& name, int n);

  /// Sets the calling process's component to v (>= 0).
  void update(sim::Ctx& ctx, int64_t v) override;
  /// Returns the full view, component i == latest update by process i.
  std::vector<int64_t> scan(sim::Ctx& ctx) override;

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

  int n() const { return n_; }
  uint64_t register_bits(sim::Ctx& ctx);

 private:
  std::string name_;
  int n_;
  sim::Handle<prim::FetchAddBig> reg_;
  sim::Handle<prim::LocalStore<BigInt>> prev_val_;
};

}  // namespace c2sl::core
