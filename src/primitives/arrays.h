// Grow-on-demand arrays of base objects.
//
// The paper's §4 constructions use "infinite arrays" of test&set objects and of
// read/write registers. Only finitely many entries are touched in any finite
// execution, so the arrays grow on demand. Each array is modelled as ONE
// readable base object whose per-index operations are single steps; this is the
// granularity algorithm B (Lemma 12) reads at. An array of test&set objects is
// no stronger than its elements for consensus purposes (operations on distinct
// indices commute; operations on one index behave exactly like that element),
// so the consensus-number accounting of §5 is unaffected — see DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/assert.h"
#include "util/value.h"

namespace c2sl::prim {

/// Infinite array of test&set objects, each initially 0.
class TasArray : public sim::SimObject {
 public:
  explicit TasArray(bool readable = true) : readable_(readable) {}

  int64_t test_and_set(sim::Ctx& ctx, size_t idx) {
    ctx.gate(name(), "TS[" + std::to_string(idx) + "].test&set");
    ensure(idx);
    int64_t old = states_[idx];
    states_[idx] = 1;
    return old;
  }

  int64_t read(sim::Ctx& ctx, size_t idx) {
    C2SL_CHECK(readable_, "read() on non-readable test&set array: " + name());
    ctx.gate(name(), "TS[" + std::to_string(idx) + "].read");
    ensure(idx);
    return states_[idx];
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<TasArray>(readable_);
    c->states_ = states_;
    return c;
  }
  std::string state_string() const override {
    std::string out;
    out.reserve(states_.size());
    for (uint8_t s : states_) out.push_back(s != 0 ? '1' : '0');
    return out;
  }
  void set_state_string(const std::string& s) override {
    states_.clear();
    for (char c : s) states_.push_back(c == '1' ? 1 : 0);
  }

  int64_t peek(size_t idx) const { return idx < states_.size() ? states_[idx] : 0; }

 private:
  void ensure(size_t idx) {
    if (idx >= states_.size()) states_.resize(idx + 1, 0);
  }

  bool readable_;
  std::vector<uint8_t> states_;
};

/// Infinite array of read/write registers, each initially bottom (unit Val).
class RegArray : public sim::SimObject {
 public:
  RegArray() = default;

  Val read(sim::Ctx& ctx, size_t idx) {
    ctx.gate(name(), "R[" + std::to_string(idx) + "].read");
    ensure(idx);
    return values_[idx];
  }

  void write(sim::Ctx& ctx, size_t idx, Val v) {
    ctx.gate(name(), "R[" + std::to_string(idx) + "].write(" + c2sl::to_string(v) + ")");
    ensure(idx);
    values_[idx] = std::move(v);
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<RegArray>();
    c->values_ = values_;
    return c;
  }
  std::string state_string() const override {
    std::string out;
    for (const Val& v : values_) {
      out += encode_val(v);
      out += '|';
    }
    return out;
  }
  void set_state_string(const std::string& s) override {
    values_.clear();
    size_t start = 0;
    while (start < s.size()) {
      size_t bar = s.find('|', start);
      if (bar == std::string::npos) break;
      values_.push_back(decode_val(std::string_view(s).substr(start, bar - start)));
      start = bar + 1;
    }
  }

  Val peek(size_t idx) const { return idx < values_.size() ? values_[idx] : Val{}; }

 private:
  void ensure(size_t idx) {
    if (idx >= values_.size()) values_.resize(idx + 1, Val{});
  }

  std::vector<Val> values_;
};

/// Infinite array of swap registers (read/write/swap), each initially bottom.
/// Distinct from RegArray so that implementations advertised as register-only
/// cannot accidentally use swap.
class SwapRegArray : public sim::SimObject {
 public:
  SwapRegArray() = default;

  Val read(sim::Ctx& ctx, size_t idx) {
    ctx.gate(name(), "S[" + std::to_string(idx) + "].read");
    ensure(idx);
    return values_[idx];
  }

  void write(sim::Ctx& ctx, size_t idx, Val v) {
    ctx.gate(name(), "S[" + std::to_string(idx) + "].write(" + c2sl::to_string(v) + ")");
    ensure(idx);
    values_[idx] = std::move(v);
  }

  Val swap(sim::Ctx& ctx, size_t idx, Val v) {
    ctx.gate(name(), "S[" + std::to_string(idx) + "].swap(" + c2sl::to_string(v) + ")");
    ensure(idx);
    Val old = std::move(values_[idx]);
    values_[idx] = std::move(v);
    return old;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<SwapRegArray>();
    c->values_ = values_;
    return c;
  }
  std::string state_string() const override {
    std::string out;
    for (const Val& v : values_) {
      out += encode_val(v);
      out += '|';
    }
    return out;
  }
  void set_state_string(const std::string& s) override {
    values_.clear();
    size_t start = 0;
    while (start < s.size()) {
      size_t bar = s.find('|', start);
      if (bar == std::string::npos) break;
      values_.push_back(decode_val(std::string_view(s).substr(start, bar - start)));
      start = bar + 1;
    }
  }

 private:
  void ensure(size_t idx) {
    if (idx >= values_.size()) values_.resize(idx + 1, Val{});
  }

  std::vector<Val> values_;
};

}  // namespace c2sl::prim
