// Hypothetical *atomic* high-level base objects: a max register and a snapshot
// whose operations are single steps. The paper phrases Theorem 6 over
// "(atomic) base objects readable test&set and max register" and Algorithm 1
// over an atomic snapshot; these objects realise that phrasing directly, and
// serve as ablation baselines against the implemented (multi-step) versions.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/assert.h"

namespace c2sl::prim {

class MaxRegObj : public sim::SimObject {
 public:
  explicit MaxRegObj(int64_t initial = 0) : value_(initial) {}

  void write_max(sim::Ctx& ctx, int64_t v) {
    ctx.gate(name(), "writeMax(" + std::to_string(v) + ")");
    value_ = std::max(value_, v);
  }

  int64_t read_max(sim::Ctx& ctx) {
    ctx.gate(name(), "readMax");
    return value_;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<MaxRegObj>(value_);
  }
  std::string state_string() const override { return std::to_string(value_); }
  void set_state_string(const std::string& s) override { value_ = std::stoll(s); }

  int64_t peek() const { return value_; }

 private:
  int64_t value_;
};

class SnapshotObj : public sim::SimObject {
 public:
  explicit SnapshotObj(int n) : view_(static_cast<size_t>(n), 0) {}

  void update(sim::Ctx& ctx, int64_t v) {
    ctx.gate(name(), "update(" + std::to_string(v) + ")");
    C2SL_ASSERT(ctx.self >= 0 && static_cast<size_t>(ctx.self) < view_.size());
    view_[static_cast<size_t>(ctx.self)] = v;
  }

  std::vector<int64_t> scan(sim::Ctx& ctx) {
    ctx.gate(name(), "scan");
    return view_;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<SnapshotObj>(static_cast<int>(view_.size()));
    c->view_ = view_;
    return c;
  }
  std::string state_string() const override {
    std::string out;
    for (int64_t v : view_) {
      out += std::to_string(v);
      out += ',';
    }
    return out;
  }
  void set_state_string(const std::string& s) override {
    size_t idx = 0;
    size_t start = 0;
    while (start < s.size() && idx < view_.size()) {
      size_t comma = s.find(',', start);
      if (comma == std::string::npos) break;
      view_[idx++] = std::stoll(s.substr(start, comma - start));
      start = comma + 1;
    }
  }

 private:
  std::vector<int64_t> view_;
};

}  // namespace c2sl::prim
