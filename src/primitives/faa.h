// Fetch&add base objects (consensus number 2; Herlihy 1991).
//
// FetchAddBig is the register used by the paper's §3 constructions: its value
// is an arbitrary-precision integer, because the bit-interleaved encodings
// store one unbounded lane per process ("extremely large values in a single
// variable", §6). FetchAddInt is the familiar 64-bit flavour (wrap-around
// two's-complement), used by baselines such as the Herlihy–Wing queue.
#pragma once

#include <string>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/bigint.h"

namespace c2sl::prim {

class FetchAddBig : public sim::SimObject {
 public:
  explicit FetchAddBig(BigInt initial = BigInt()) : value_(std::move(initial)) {}

  /// Atomically adds `delta` (which may be negative, cf. posAdj − negAdj in
  /// §3.2) and returns the previous value.
  BigInt fetch_add(sim::Ctx& ctx, const BigInt& delta) {
    ctx.gate(name(), delta.is_zero() ? "fetch&add(0)" : "fetch&add(" + delta.to_hex() + ")");
    BigInt old = value_;
    value_ += delta;
    return old;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<FetchAddBig>(value_);
  }
  std::string state_string() const override { return value_.to_hex(); }
  void set_state_string(const std::string& s) override { value_ = BigInt::from_hex(s); }

  const BigInt& peek() const { return value_; }

 private:
  BigInt value_;
};

class FetchAddInt : public sim::SimObject {
 public:
  explicit FetchAddInt(int64_t initial = 0) : value_(initial) {}

  int64_t fetch_add(sim::Ctx& ctx, int64_t delta) {
    ctx.gate(name(), "fetch&add(" + std::to_string(delta) + ")");
    int64_t old = value_;
    value_ = static_cast<int64_t>(static_cast<uint64_t>(value_) +
                                  static_cast<uint64_t>(delta));
    return old;
  }

  int64_t read(sim::Ctx& ctx) { return fetch_add(ctx, 0); }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<FetchAddInt>(value_);
  }
  std::string state_string() const override { return std::to_string(value_); }
  void set_state_string(const std::string& s) override { value_ = std::stoll(s); }

  int64_t peek() const { return value_; }

 private:
  int64_t value_;
};

}  // namespace c2sl::prim
