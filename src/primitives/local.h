// Per-process local persistent state.
//
// Several constructions keep process-local variables across operations
// (prevLocalMax in §3.1, prevVal in §3.2). Local state is not shared — reading
// or writing it is not a base-object step — but it must live in the World so
// that World::clone() (used by Lemma 12's local simulation and by the explorer)
// carries it along. LocalStore<T> is a per-process array of T accessed only by
// the owning process.
#pragma once

#include <string>
#include <vector>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/assert.h"
#include "util/bigint.h"
#include "util/value.h"

namespace c2sl::prim {

namespace detail {

inline std::string encode_local(int64_t v) { return std::to_string(v); }
inline std::string encode_local(uint64_t v) { return std::to_string(v); }
inline std::string encode_local(const BigInt& v) { return v.to_hex(); }
inline std::string encode_local(const Val& v) { return encode_val(v); }

inline void decode_local(const std::string& s, int64_t& out) { out = std::stoll(s); }
inline void decode_local(const std::string& s, uint64_t& out) { out = std::stoull(s); }
inline void decode_local(const std::string& s, BigInt& out) { out = BigInt::from_hex(s); }
inline void decode_local(const std::string& s, Val& out) { out = decode_val(s); }

}  // namespace detail

template <typename T>
class LocalStore : public sim::SimObject {
 public:
  LocalStore(int n, T initial) : cells_(static_cast<size_t>(n), initial) {}

  /// Access the calling process's own cell; free (no step).
  T& local(sim::Ctx& ctx) {
    C2SL_ASSERT(ctx.self >= 0 && static_cast<size_t>(ctx.self) < cells_.size());
    return cells_[static_cast<size_t>(ctx.self)];
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<LocalStore<T>>(static_cast<int>(cells_.size()), cells_[0]);
    c->cells_ = cells_;
    return c;
  }

  std::string state_string() const override {
    std::string out;
    for (const T& cell : cells_) {
      out += detail::encode_local(cell);
      out += '\x1f';  // unit separator: cannot occur in the encodings above
    }
    return out;
  }

  void set_state_string(const std::string& s) override {
    size_t start = 0;
    size_t idx = 0;
    while (start < s.size() && idx < cells_.size()) {
      size_t sep = s.find('\x1f', start);
      if (sep == std::string::npos) break;
      detail::decode_local(s.substr(start, sep - start), cells_[idx]);
      start = sep + 1;
      ++idx;
    }
  }

 private:
  std::vector<T> cells_;
};

}  // namespace c2sl::prim
