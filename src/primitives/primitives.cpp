// The primitives module is header-only; this translation unit exists so the
// module builds as a static library and gets compile-checked on its own.
#include "primitives/arrays.h"
#include "primitives/faa.h"
#include "primitives/local.h"
#include "primitives/register.h"
#include "primitives/swap_cas.h"
#include "primitives/tas.h"

namespace c2sl::prim {
// Instantiate the LocalStore templates the library uses, as a compile check.
template class LocalStore<int64_t>;
template class LocalStore<uint64_t>;
template class LocalStore<BigInt>;
template class LocalStore<Val>;
}  // namespace c2sl::prim
