// Read/write register base object (consensus number 1).
#pragma once

#include <string>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/value.h"

namespace c2sl::prim {

/// Multi-writer multi-reader atomic register holding a Val.
class RWRegister : public sim::SimObject {
 public:
  explicit RWRegister(Val initial = Val{}) : value_(std::move(initial)) {}

  Val read(sim::Ctx& ctx) {
    ctx.gate(name(), "read");
    return value_;
  }

  void write(sim::Ctx& ctx, Val v) {
    ctx.gate(name(), "write(" + c2sl::to_string(v) + ")");
    value_ = std::move(v);
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<RWRegister>(value_);
  }
  std::string state_string() const override { return encode_val(value_); }
  void set_state_string(const std::string& s) override { value_ = decode_val(s); }

  /// Non-step peek for assertions and diagnostics only.
  const Val& peek() const { return value_; }

 private:
  Val value_;
};

}  // namespace c2sl::prim
