// Swap (consensus number 2) and compare&swap (consensus number infinity)
// base objects. CAS is deliberately present even though the paper's positive
// constructions avoid it: the baselines (Treiber stack, CAS queue) and the
// Lemma 12 positive experiments need a universal primitive to contrast with.
#pragma once

#include <string>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/value.h"

namespace c2sl::prim {

class SwapReg : public sim::SimObject {
 public:
  explicit SwapReg(Val initial = Val{}) : value_(std::move(initial)) {}

  /// Atomically replaces the value and returns the previous one.
  Val swap(sim::Ctx& ctx, Val v) {
    ctx.gate(name(), "swap(" + c2sl::to_string(v) + ")");
    Val old = std::move(value_);
    value_ = std::move(v);
    return old;
  }

  Val read(sim::Ctx& ctx) {
    ctx.gate(name(), "read");
    return value_;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<SwapReg>(value_);
  }
  std::string state_string() const override { return encode_val(value_); }
  void set_state_string(const std::string& s) override { value_ = decode_val(s); }

  const Val& peek() const { return value_; }

 private:
  Val value_;
};

class CasReg : public sim::SimObject {
 public:
  explicit CasReg(Val initial = Val{}) : value_(std::move(initial)) {}

  /// Installs `desired` iff the current value equals `expected`; returns
  /// whether the installation happened.
  bool compare_and_swap(sim::Ctx& ctx, const Val& expected, Val desired) {
    ctx.gate(name(), "cas(" + c2sl::to_string(expected) + " -> " +
                         c2sl::to_string(desired) + ")");
    if (value_ == expected) {
      value_ = std::move(desired);
      return true;
    }
    return false;
  }

  Val read(sim::Ctx& ctx) {
    ctx.gate(name(), "read");
    return value_;
  }

  void write(sim::Ctx& ctx, Val v) {
    ctx.gate(name(), "write(" + c2sl::to_string(v) + ")");
    value_ = std::move(v);
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    return std::make_unique<CasReg>(value_);
  }
  std::string state_string() const override { return encode_val(value_); }
  void set_state_string(const std::string& s) override { value_ = decode_val(s); }

  const Val& peek() const { return value_; }

 private:
  Val value_;
};

}  // namespace c2sl::prim
