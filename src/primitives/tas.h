// Test&set base object (consensus number 2; Herlihy 1991).
//
// The paper distinguishes plain test&set (operations: test&set only) from
// *readable* test&set (adds read). The base object here is plain by default:
// read() enforces the readability capability so that constructions advertised
// as "from test&set" (Thm 5) cannot accidentally rely on reads. Lemma 16
// readability (read_object_state) is an orthogonal, system-level capability and
// remains available to algorithm B regardless.
//
// `max_participants` enforces the access restriction of t-process test&set
// (e.g. 2-process test&set in Thm 19): a C2SL_CHECK fires if more distinct
// processes than allowed ever apply test&set.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/ctx.h"
#include "sim/world.h"
#include "util/assert.h"

namespace c2sl::prim {

class TestAndSet : public sim::SimObject {
 public:
  explicit TestAndSet(bool readable = false, int max_participants = -1)
      : readable_(readable), max_participants_(max_participants) {}

  /// Returns the previous state (0 exactly once) and sets the state to 1.
  int64_t test_and_set(sim::Ctx& ctx) {
    note_participant(ctx.self);
    ctx.gate(name(), "test&set");
    int64_t old = state_;
    state_ = 1;
    return old;
  }

  int64_t read(sim::Ctx& ctx) {
    C2SL_CHECK(readable_, "read() on a non-readable test&set: " + name());
    ctx.gate(name(), "read");
    return state_;
  }

  std::unique_ptr<sim::SimObject> clone() const override {
    auto c = std::make_unique<TestAndSet>(readable_, max_participants_);
    c->state_ = state_;
    c->participants_ = participants_;
    return c;
  }
  std::string state_string() const override { return std::to_string(state_); }
  void set_state_string(const std::string& s) override { state_ = std::stoll(s); }

  int64_t peek() const { return state_; }

 private:
  void note_participant(sim::ProcId p) {
    if (max_participants_ < 0) return;
    if (std::find(participants_.begin(), participants_.end(), p) != participants_.end())
      return;
    participants_.push_back(p);
    C2SL_CHECK(static_cast<int>(participants_.size()) <= max_participants_,
               "too many processes access " + std::to_string(max_participants_) +
                   "-process test&set: " + name());
  }

  int64_t state_ = 0;
  bool readable_;
  int max_participants_;
  std::vector<sim::ProcId> participants_;
};

}  // namespace c2sl::prim
