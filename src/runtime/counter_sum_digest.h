// CounterSumDigest — a wait-free, strongly-linearizable SUM aggregate built
// from fetch&add only (no CAS), the counter analogue of the global-max digest
// word in service/c2store.h.
//
// The paper's §3.2 snapshot packs bounded per-process components into ONE
// fetch&add register so a scan is a single FAA(0) read — the whole point is
// that a multi-word collect cannot be strongly linearizable (the service's
// double-collect refutations, pinned in tests/service_sim_test.cpp, are the
// mechanised record). For a SUM the packing degenerates beautifully: addition
// is both the per-component update AND the cross-component combiner, so the
// per-lane components can share one accumulator word outright — every
// counter_add contributes fetch_add(1) to the same 64-bit word, and the sum
// read is one fetch_add(0). Each operation is a single hardware atomic on the
// word, i.e. a fixed own-step linearization point, hence prefix-closed:
// strongly linearizable by construction. 63 bits of total bound the digest
// (~9.2e18 adds — not a reachable program state), so unlike the max digest
// there is no per-lane width budget to configure.
//
// The per-lane components are still REAL and still per-lane: each lane also
// counts its own contributions in a private FAA cell on a SegmentedArray
// spine (cache-line padded, single-writer, published with the pinned
// claim-TAS → init → register-write pattern — see runtime/segmented_array.h).
// They are deliberately NOT on the sum read path — reading them one by one
// would be exactly the collect the checker refutes. They exist because the
// decomposition is useful anyway:
//   * diagnostics/introspection (who produced the traffic), exposed upward as
//     C2Store::lane_counter_adds();
//   * a testable conservation invariant: add() bumps the OWN LANE CELL FIRST
//     and the total word second, so at every instant
//         read() <= sum over lanes of lane_contribution(lane)
//     (the total never leads the components), with equality at quiescence;
//   * the future shard-rebalancing item (ROADMAP) wants per-producer digests
//     whose migration can be replayed component-wise.
//
// Cross-facet order, one level up: C2Store's CounterRef::inc writes the SHARD
// counter first and this digest second — the digest never runs ahead of the
// keyed read paths, mirroring (and pinned by the same sim tests as) the
// global-max digest contract. docs/PROOFS.md §"The counter-sum digest" gives
// the full argument.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/segmented_array.h"
#include "util/assert.h"

namespace c2sl::rt {

class CounterSumDigest {
 public:
  CounterSumDigest() = default;

  /// One contribution from `lane`. Own lane cell first, total second: the
  /// total word never leads the per-lane components. The total fetch_add is
  /// the operation's linearization point (a fixed own-step).
  void add(int lane) {
    C2SL_CHECK(lane >= 0, "lane must be non-negative");
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — lane component write; must precede the total
    lanes_.cell(static_cast<size_t>(lane)).v.fetch_add(1, std::memory_order_seq_cst);
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — linearization point of add (fixed own-step)
    total_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// The digest read: one FAA(0) on the total word — wait-free, strongly
  /// linearizable (the §3.2 single-word-scan move, degenerate sum form).
  int64_t read() {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — FAA(0) read IS the digest's atomic scan step
    return total_.fetch_add(0, std::memory_order_seq_cst);
  }

  /// Contributions recorded by `lane` (diagnostics; never on the sum path).
  /// An unpublished lane segment reads as 0 — the lane has never added.
  int64_t lane_contribution(int lane) const {
    C2SL_CHECK(lane >= 0, "lane must be non-negative");
    const LaneCell* c = lanes_.peek(static_cast<size_t>(lane));
    // c2sl-atomic: load relaxed — diagnostics-only; never feeds the sum path
    return c ? c->v.load(std::memory_order_relaxed) : 0;
  }

 private:
  /// Padded so neighbouring lanes never share a cache line (each cell is
  /// single-writer; the padding keeps the write path truly uncontended).
  struct alignas(64) LaneCell {
    std::atomic<int64_t> v{0};
  };

  SegmentedArray<LaneCell> lanes_;
  std::atomic<int64_t> total_{0};
};

}  // namespace c2sl::rt
