// HandoffQueue — a wait-aware FIFO handoff queue from consensus-number-2
// primitives: two fetch&add ticket words and single-use swap (exchange) cells
// on a SegmentedArray spine (whose per-segment publication claim is the
// readable test&set of runtime/segmented_array.h). No CAS anywhere, no
// capacity knobs — the cell array grows like every other unbounded
// construction in this runtime.
//
// The queue transfers VALUES (non-negative int64s — lane ids in the service
// layer) from releasers to waiters, first-come-first-served in waiter order:
//
//   enqueue():   w = Tail.fetch&add(1)           — the waiter's ticket. This
//                single FAA is the whole enqueue and its linearization point:
//                a fixed own-step, so the enqueue facet is strongly
//                linearizable (checker-verified on the sim twin,
//                svc::SimHandoffQueue, tests/handoff_queue_test.cpp).
//   hand(v):     guard Head < Tail, then h = Head.fetch&add(1) — the handoff's
//                commitment: slot h is THIS handoff's target, decided at the
//                FAA regardless of the future. The value moves by one
//                exchange on cell h. Contrast Herlihy–Wing's dequeue, which
//                SCANS for the first ready slot and therefore decides its
//                target by future publication order — linearizable but not
//                strongly linearizable (Theorem 17 regime; the scan-order
//                variant of the sim twin is the pinned refutation).
//   await(w):    park on cell w until a value or a revocation arrives.
//   cancel(w):   exchange a tombstone into cell w; returns the value instead
//                if a delivery won the race (the caller then owns it).
//
// Cell state machine (each cell is written at most once by each party, all
// transitions are exchanges, so both sides of every race learn the outcome
// from their own swap's return value):
//
//   kCellEmpty --claim(waiter)--> kCellClaimed --deliver--> value   (waiter parked)
//       |  \--deliver--> value   (waiter finds it at claim: no park)
//       |  \--revoke---> kCellRevoked  (overshoot: waiter retries at claim)
//       \--cancel(waiter)--> kCellCancelled  (deliverer skips to next slot)
//
// The overshoot (revocation) path: hand() may win a Head ticket h and then
// observe Tail <= h — the guard passed on a waiter that a concurrent hand()
// already targeted. The slot is killed with kCellRevoked so the waiter that
// eventually takes ticket h retries instead of parking on a dead slot, and
// hand() reports failure: the caller still owns the value and must route it
// through its fallback (the lane registry's free set). Callers that fall
// back MUST re-check waiters_pending() after publishing the value to the
// fallback and pull it back for a late waiter — the Dekker-style re-check in
// svc::LaneRegistry::release; without it a waiter that polled the fallback
// just before the publish parks forever.
//
// Parking uses std::atomic<int64_t>::wait/notify_one on the waiter's own
// cell. Parking is a SCHEDULING concern, not part of the linearizability
// story: every protocol decision above is made by a swap or fetch&add; the
// wait merely stops the waiter from burning cycles until its cell changes.
// Wakeups are targeted (one notify per delivery or revocation, to exactly
// the affected waiter — no thundering herd), so parks are bounded by
// enqueues and enqueues by acquisitions + revocations; the TSAN stress in
// tests/c2store_stress_test.cpp asserts both bounds through the counters
// below. Timed waits (await_until) poll their own cell with a bounded
// backoff instead, because C++ atomic waits have no deadline form.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "runtime/segmented_array.h"
#include "util/assert.h"

namespace c2sl::rt {

class HandoffQueue {
 public:
  /// await()/cancel() outcome: the waiter's slot was revoked by an
  /// overshooting hand() — the fallback path was refilled, retry there.
  static constexpr int64_t kRevoked = -1;
  /// cancel() outcome: the slot was tombstoned before any delivery.
  static constexpr int64_t kCancelled = -2;
  /// await_until() outcome: the deadline passed with the slot still live.
  /// The ticket remains claimed — the caller must cancel() (and honour a
  /// value that raced in) before abandoning it.
  static constexpr int64_t kTimedOut = -3;

  HandoffQueue() = default;
  HandoffQueue(const HandoffQueue&) = delete;
  HandoffQueue& operator=(const HandoffQueue&) = delete;

  /// Registers the caller as a waiter; returns its ticket. The fetch&add IS
  /// the enqueue — after it, every hand() is obliged to serve this ticket
  /// before any later one (FIFO by ticket order).
  size_t enqueue() {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — Tail ticket IS the enqueue (fixed own-step)
    return static_cast<size_t>(tail_.fetch_add(1, std::memory_order_seq_cst));
  }

  /// Delivers `value` (>= 0) to the oldest live waiter. Returns true when the
  /// value was handed to some waiter's cell (a parked waiter is woken; one
  /// mid-enqueue finds the value at its claim). Returns false when no waiter
  /// was visible — the caller keeps the value and must route it through its
  /// fallback, then re-check waiters_pending() (header comment).
  bool hand(int64_t value) {
    C2SL_CHECK(value >= 0, "handoff values must be non-negative");
    for (;;) {
      // Guard: consume a Head ticket only when a waiter is visible. The
      // pre-read keeps Head from drifting past Tail in the common no-waiter
      // case (mirroring LaneRegistry::try_acquire's dispenser pre-read); the
      // overshoot branch below handles the race it cannot close.
      // c2sl-atomic: load seq_cst, load seq_cst — Dekker-style guard: the
      // Head/Tail pre-reads must not reorder or an empty queue leaks tickets
      if (head_.load(std::memory_order_seq_cst) >=
          tail_.load(std::memory_order_seq_cst)) {
        return false;
      }
      C2SL_TEL_PRIM_FAA();
      // c2sl-atomic: faa seq_cst — Head ticket commits this hand to slot h
      size_t h = static_cast<size_t>(head_.fetch_add(1, std::memory_order_seq_cst));
      // c2sl-atomic: load seq_cst — overshoot re-check against the real Tail
      if (static_cast<int64_t>(h) >= tail_.load(std::memory_order_seq_cst)) {
        // Overshoot: a concurrent hand() served the waiter the guard saw.
        // Kill slot h so its eventual waiter retries rather than parking on
        // a slot no hand() will ever target again.
        C2SL_TEL_PRIM_SWAP();
        // c2sl-atomic: swap seq_cst — tombstone deposit; decision step on cell h
        int64_t prev = cell(h).exchange(kCellRevoked, std::memory_order_seq_cst);
        // c2sl-atomic: faa relaxed noprofile — diagnostics counter, no protocol role
        revocations_.fetch_add(1, std::memory_order_relaxed);
        // c2sl-atomic: wait-notify n/a — wake the parked waiter to see the tombstone
        if (prev == kCellClaimed) cell(h).notify_one();  // waiter already parked
        // prev == kCellEmpty: the waiter will see the tombstone at its claim.
        // prev == kCellCancelled: the waiter is gone anyway.
        // prev cannot be a value: only hand() writes values, one ticket each.
        return false;
      }
      C2SL_TEL_PRIM_SWAP();
      // c2sl-atomic: swap seq_cst — value deposit; linearization point of hand
      int64_t prev = cell(h).exchange(encode(value), std::memory_order_seq_cst);
      if (prev == kCellCancelled) continue;  // waiter timed out: next waiter
      // c2sl-atomic: faa relaxed noprofile — diagnostics counter, no protocol role
      deliveries_.fetch_add(1, std::memory_order_relaxed);
      // c2sl-atomic: wait-notify n/a — wake the parked waiter to collect
      if (prev == kCellClaimed) cell(h).notify_one();  // waiter parked: wake it
      // prev == kCellEmpty: waiter between its ticket FAA and its claim — its
      // claim exchange will return the value without ever parking.
      return true;
    }
  }

  /// Parks until ticket `t` receives a value (returned, >= 0) or is revoked
  /// (kRevoked — the fallback was refilled; re-poll it and re-enqueue).
  int64_t await(size_t t) {
    int64_t claimed = claim(t);
    if (claimed != kCellClaimed) return settle(claimed);
    std::atomic<int64_t>& c = cell(t);
    // c2sl-atomic: faa relaxed noprofile — diagnostics counter, no protocol role
    parks_.fetch_add(1, std::memory_order_relaxed);
    // c2sl-atomic: load seq_cst — poll own cell for the deposited value
    int64_t v = c.load(std::memory_order_seq_cst);
    while (v == kCellClaimed) {
      // c2sl-atomic: wait-notify seq_cst — futex-style park; no busy spin
      c.wait(kCellClaimed);
      // c2sl-atomic: load seq_cst — re-read after wake (spurious wakes allowed)
      v = c.load(std::memory_order_seq_cst);
    }
    return settle(v);
  }

  /// Like await() but gives up at `deadline`, returning kTimedOut with the
  /// slot still claimed — the caller must cancel() and honour a racing
  /// delivery. The wait polls the caller's OWN cell with exponential backoff
  /// (1us doubling to 1ms): C++ atomic waits have no deadline form, and a
  /// bounded-frequency probe of a private cell is not contended spinning.
  int64_t await_until(size_t t, std::chrono::steady_clock::time_point deadline) {
    int64_t claimed = claim(t);
    if (claimed != kCellClaimed) return settle(claimed);
    std::atomic<int64_t>& c = cell(t);
    // c2sl-atomic: faa relaxed noprofile — diagnostics counter, no protocol role
    parks_.fetch_add(1, std::memory_order_relaxed);
    std::chrono::microseconds backoff{1};
    for (;;) {
      // c2sl-atomic: load seq_cst — bounded-frequency probe of the own cell
      int64_t v = c.load(std::memory_order_seq_cst);
      if (v != kCellClaimed) return settle(v);
      if (std::chrono::steady_clock::now() >= deadline) return kTimedOut;
      std::this_thread::sleep_for(backoff);
      if (backoff < std::chrono::microseconds{1000}) backoff *= 2;
    }
  }

  /// Abandons ticket `t`. Returns kCancelled when the tombstone landed first
  /// (no value was or will be delivered here), kRevoked when the slot was
  /// already dead, or the VALUE when a delivery won the race — the caller
  /// then owns that value and must not drop it.
  int64_t cancel(size_t t) {
    C2SL_TEL_PRIM_SWAP();
    // c2sl-atomic: swap seq_cst — cancellation races the deposit; swap decides
    int64_t prev = cell(t).exchange(kCellCancelled, std::memory_order_seq_cst);
    if (prev >= kValueBase) return decode(prev);
    if (prev == kCellRevoked) return kRevoked;
    return kCancelled;  // prev was kCellEmpty or our own kCellClaimed
  }

  /// Whether any enqueued waiter has not yet been targeted by a hand().
  /// Callers use this for the post-fallback re-check; it may transiently
  /// report true for waiters that are concurrently cancelling (harmless: the
  /// recovering hand() skips tombstones).
  bool waiters_pending() const {
    // c2sl-atomic: load seq_cst, load seq_cst — same Dekker discipline as the
    // hand() guard: the post-fallback re-check must see any committed ticket
    return head_.load(std::memory_order_seq_cst) <
           tail_.load(std::memory_order_seq_cst);
  }

  // --- introspection (diagnostics and the no-busy-spin stress bounds) -------
  // c2sl-atomic: load relaxed — diagnostics-only view of Tail
  int64_t enqueued() const { return tail_.load(std::memory_order_relaxed); }
  // c2sl-atomic: load relaxed — diagnostics-only view of Head
  int64_t hands_started() const { return head_.load(std::memory_order_relaxed); }
  // c2sl-atomic: load relaxed — diagnostics counter read
  int64_t deliveries() const { return deliveries_.load(std::memory_order_relaxed); }
  // c2sl-atomic: load relaxed — diagnostics counter read
  int64_t revocations() const { return revocations_.load(std::memory_order_relaxed); }
  // c2sl-atomic: load relaxed — diagnostics counter read
  int64_t parks() const { return parks_.load(std::memory_order_relaxed); }

 private:
  // Cell markers (values v are stored as v + kValueBase, so markers and
  // payloads never collide).
  static constexpr int64_t kCellEmpty = 0;
  static constexpr int64_t kCellClaimed = 1;
  static constexpr int64_t kCellCancelled = 2;
  static constexpr int64_t kCellRevoked = 3;
  static constexpr int64_t kValueBase = 4;

  static int64_t encode(int64_t v) { return v + kValueBase; }
  static int64_t decode(int64_t c) { return c - kValueBase; }

  struct Cell {
    std::atomic<int64_t> v{kCellEmpty};
  };

  std::atomic<int64_t>& cell(size_t i) { return cells_.cell(i).v; }

  /// The waiter's claim: announce presence on the cell. Returns kCellClaimed
  /// when the waiter should park, else the pre-claim content (a value or a
  /// revocation tombstone) to settle immediately.
  int64_t claim(size_t t) {
    C2SL_TEL_PRIM_SWAP();
    // c2sl-atomic: swap seq_cst — claim announces the waiter on its own cell
    int64_t prev = cell(t).exchange(kCellClaimed, std::memory_order_seq_cst);
    if (prev == kCellEmpty) return kCellClaimed;
    return prev;  // encoded value or kCellRevoked; never claimed/cancelled
  }

  int64_t settle(int64_t raw) {
    if (raw >= kValueBase) return decode(raw);
    C2SL_CHECK(raw == kCellRevoked, "handoff cell in impossible state");
    return kRevoked;
  }

  /// Waiter tickets (enqueue count). Monotone; ticket w exists iff tail > w.
  std::atomic<int64_t> tail_{0};
  /// Handoff tickets (hand commitments). Monotone; slot h is targeted by
  /// exactly the hand() whose fetch&add returned h.
  std::atomic<int64_t> head_{0};
  SegmentedArray<Cell> cells_;

  std::atomic<int64_t> deliveries_{0};
  std::atomic<int64_t> revocations_{0};
  std::atomic<int64_t> parks_{0};
};

}  // namespace c2sl::rt
