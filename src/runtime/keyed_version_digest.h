// KeyedVersionDigest — the write journal behind C2Session::snapshot(): a
// strongly-linearizable multi-key read surface built from fetch&add and plain
// registers only (no CAS, no capacity knobs), on the SegmentedArray spine.
//
// Why a journal and not a per-key-version double-collect. The obvious
// construction — bump a per-key FAA version word on every write, double-collect
// the keyed values until the version vector stabilises — is linearizable but
// NOT strongly linearizable, by the same future-dependence that kills every
// validation-window scheme (the pinned double-collect refutations in
// tests/service_sim_test.cpp): whether a collect "was consistent" is decided
// by version reads the scanner performs LATER, so the scan's linearization
// point is not prefix-closed. Worse, overlapping scans can be forced into a
// prefix-closure contradiction by one in-flight writer whose value step landed
// but whose version bump is deferred past both validations (docs/PROOFS.md
// works the two-scanner anomaly in full). The paper's way out (§3.1/§3.2) is
// to make every operation linearize at ONE step of its own on ONE word — so
// the multi-key state is packed behind a single fetch&add TAIL:
//
//   * every keyed write appends one immutable entry to a ticket-indexed
//     journal — the ticket fetch&add on the tail word IS the write's
//     linearization point (fixed own-step);
//   * a snapshot reads the tail once with FAA(0) — its linearization point —
//     and deterministically REPLAYS entries below that ticket into per-shard
//     accumulators. Two snapshots that read the same tail return identical
//     vectors; prefix closure holds because every op's point is its own step.
//
// The tail word doubles as the "version digest" of the ISSUE: it advances by
// exactly one per keyed write, so it bounds the replay the way the per-key
// version words were meant to bound the double-collect — except here the bound
// is exact and the collect is a deterministic function of it.
//
// Entry deposit protocol (the HandoffQueue rendezvous idiom): the ticket owner
// writes the plain payload word first, then publishes the packed meta word
// with a release store; meta == 0 means not-ready. A replayer that holds a
// tail ticket T acquire-spins on the meta of each entry below T — bounded by
// the number of writers still between their ticket fetch&add and their
// deposit, so snapshots are lock-free but not wait-free (a stalled depositor
// stalls replayers; the entry CONTENT is nevertheless fixed at ticket time,
// which is what keeps the replay deterministic). Entries are write-once and
// 16 bytes; adjacent tickets may share a cache line — deposits are two plain
// stores, so the contended word is the tail, not the cells.
//
// Growth: the journal is unbounded (one entry per keyed write, on the lazily
// grown SegmentedArray — no capacity knobs). Truncation/compaction below the
// slowest session cursor is the ROADMAP follow-up; sessions keep replay
// cursors precisely so that becomes a local change.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/segmented_array.h"
#include "util/assert.h"

namespace c2sl::rt {

class KeyedVersionDigest {
 public:
  /// Journal entry kinds. Values start at 1: a zero meta word is the
  /// not-yet-deposited state the replayer spins on.
  enum class Kind : int {
    kCounterInc = 1,  ///< +1 on shard_a's ledger balance
    kMaxWrite = 2,    ///< max-merge v into shard_a's max
    kTransfer = 3,    ///< move v from shard_a's to shard_b's ledger balance
    kResize = 4,      ///< routing grew to v shard slots (appended after the
                      ///< migration replay, before the epoch publish).
                      ///< INFORMATIONAL: the snapshot facet is bucketed under
                      ///< the INITIAL mask forever, so replayers skip this
                      ///< marker — it exists for audit tools and tests.
  };

  struct EntryView {
    Kind kind;
    int shard_a;
    int shard_b;
    int64_t v;
  };

  KeyedVersionDigest() = default;

  /// Appends one entry; returns its ticket. The tail fetch&add is the
  /// operation's linearization point on the snapshot facet — the entry's
  /// content is fixed here (the deposit below merely publishes it).
  int64_t append(Kind kind, int shard_a, int shard_b, int64_t v) {
    C2SL_CHECK(shard_a >= 0 && shard_a < (1 << kShardBits) && shard_b >= 0 &&
                   shard_b < (1 << kShardBits),
               "journal shard index out of range");
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — ticket issue; linearization point of the
    // keyed write on the snapshot facet (fixed own-step)
    int64_t t = tail_.fetch_add(1, std::memory_order_seq_cst);
    Cell& c = cells_.cell(static_cast<size_t>(t));
    c.v = v;  // plain payload store; ordered by the meta release below
    // c2sl-atomic: store release — entry publish: a replayer's acquire load of
    // meta carries visibility of the payload word
    c.meta.store(pack(kind, shard_a, shard_b), std::memory_order_release);
    return t;
  }

  /// The version-digest read: one FAA(0) on the tail — wait-free, and the
  /// linearization point of any snapshot that replays up to the result.
  int64_t version() {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — FAA(0) read IS the snapshot's atomic step
    return tail_.fetch_add(0, std::memory_order_seq_cst);
  }

  /// Entry at `ticket` (< some tail read). Spins until the ticket owner's
  /// deposit is published — bounded by in-flight writers (see header).
  EntryView entry(int64_t ticket) {
    Cell& c = cells_.cell(static_cast<size_t>(ticket));
    uint64_t m;
    // c2sl-atomic: load acquire — deposit-publication spin; pairs with the
    // release store in append
    while ((m = c.meta.load(std::memory_order_acquire)) == 0) {
    }
    return EntryView{static_cast<Kind>(m & 0x7u),
                     static_cast<int>((m >> 3) & kShardMask),
                     static_cast<int>((m >> (3 + kShardBits)) & kShardMask),
                     c.v};
  }

  /// Tickets issued (diagnostics; may exceed the published prefix while
  /// deposits are in flight). Never on the snapshot path.
  int64_t tickets_issued() const {
    // c2sl-atomic: load relaxed — diagnostics-only tail peek
    return tail_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kShardBits = 24;
  static constexpr uint64_t kShardMask = (uint64_t{1} << kShardBits) - 1;

  static uint64_t pack(Kind kind, int shard_a, int shard_b) {
    return static_cast<uint64_t>(kind) |
           (static_cast<uint64_t>(shard_a) << 3) |
           (static_cast<uint64_t>(shard_b) << (3 + kShardBits));
  }

  /// Write-once entry cell. meta == 0 is the uninitialised state the
  /// SegmentedArray's value-initialisation guarantees; the payload is a plain
  /// word ordered entirely by the meta release/acquire pair.
  struct Cell {
    std::atomic<uint64_t> meta{0};
    int64_t v = 0;
  };

  SegmentedArray<Cell> cells_;
  std::atomic<int64_t> tail_{0};
};

}  // namespace c2sl::rt
