// Native (std::atomic) bounded variant of the §3.1 fetch&add max register.
//
// The simulated construction stores unbounded unary lanes in a BigInt register;
// real hardware fetch&add is 64-bit, so this variant packs n unary lanes of
// max_value bits each into one std::atomic<uint64_t> — faithful to the paper's
// algorithm for bounded parameters (n * max_value <= 63), and exactly the
// "narrow fetch&add" side of the §6 width discussion.
//
// Thread i owns global bits i, n+i, 2n+i, ...; only the owner adds to its lane
// bits, so fetch_add never carries across lanes. write_max of a non-larger
// value still issues fetch_add(0), mirroring the simulated algorithm (§3.1
// step 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/prim_profile.h"
#include "util/assert.h"

namespace c2sl::rt {

class NativeMaxRegister64 {
 public:
  NativeMaxRegister64(int n, int64_t max_value)
      : n_(n), max_value_(max_value), prev_(static_cast<size_t>(n)) {
    C2SL_CHECK(n > 0 && max_value >= 1, "need n >= 1 and max_value >= 1");
    C2SL_CHECK(static_cast<int64_t>(n) * max_value <= 63,
               "n * max_value must fit in 63 bits");
  }

  void write_max(int proc, int64_t v) {
    C2SL_CHECK(proc >= 0 && proc < n_, "thread id out of range");
    C2SL_CHECK(v >= 0 && v <= max_value_, "value out of range");
    Cell& cell = prev_[static_cast<size_t>(proc)];
    uint64_t k = static_cast<uint64_t>(v);
    if (k <= cell.prev) {
      C2SL_TEL_PRIM_FAA();
      // c2sl-atomic: faa seq_cst — no-op FAA(0) is still the WriteMax step
      reg_.fetch_add(0, std::memory_order_seq_cst);
      return;
    }
    uint64_t delta = 0;
    for (uint64_t j = cell.prev; j < k; ++j) {
      delta |= uint64_t{1} << (j * static_cast<uint64_t>(n_) + static_cast<uint64_t>(proc));
    }
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — linearization point of WriteMax (§4 encoding)
    reg_.fetch_add(delta, std::memory_order_seq_cst);
    cell.prev = k;
  }

  int64_t read_max() {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — FAA(0) atomically snapshots the whole word
    uint64_t snapshot = reg_.fetch_add(0, std::memory_order_seq_cst);
    int64_t best = 0;
    for (int i = 0; i < n_; ++i) {
      best = std::max(best, lane_value(snapshot, i));
    }
    return best;
  }

  int64_t lane_value(uint64_t snapshot, int i) const {
    int64_t v = 0;
    for (int64_t j = 0; j < max_value_; ++j) {
      uint64_t bit = static_cast<uint64_t>(j) * static_cast<uint64_t>(n_) +
                     static_cast<uint64_t>(i);
      if (snapshot & (uint64_t{1} << bit)) v = j + 1;
    }
    return v;
  }

 private:
  struct alignas(64) Cell {  // per-thread prevLocalMax, no false sharing
    uint64_t prev = 0;
  };

  int n_;
  int64_t max_value_;
  std::atomic<uint64_t> reg_{0};
  std::vector<Cell> prev_;
};

}  // namespace c2sl::rt
