// Native (std::atomic) bounded variant of the §3.2 fetch&add snapshot.
//
// n binary lanes of lane_bits each packed into one std::atomic<uint64_t>
// (n * lane_bits <= 64). Update computes posAdj − negAdj in two's-complement;
// because the owner is the only writer of its lane bits, additions never carry
// and subtractions never borrow across lanes, so the wrap-around arithmetic
// flips exactly the intended bits (same argument as the BigInt version).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/prim_profile.h"
#include "util/assert.h"

namespace c2sl::rt {

class NativeSnapshot64 {
 public:
  NativeSnapshot64(int n, int lane_bits)
      : n_(n), lane_bits_(lane_bits), prev_(static_cast<size_t>(n)) {
    C2SL_CHECK(n > 0 && lane_bits >= 1, "need n >= 1 and lane_bits >= 1");
    C2SL_CHECK(n * lane_bits <= 64, "n * lane_bits must fit in 64 bits");
  }

  int64_t max_component() const { return (int64_t{1} << lane_bits_) - 1; }

  void update(int proc, int64_t v) {
    C2SL_CHECK(proc >= 0 && proc < n_, "thread id out of range");
    C2SL_CHECK(v >= 0 && v <= max_component(), "component out of range");
    Cell& cell = prev_[static_cast<size_t>(proc)];
    uint64_t next = static_cast<uint64_t>(v);
    uint64_t delta = spread(next, proc) - spread(cell.prev, proc);  // wraps safely
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — linearization point of Update (§4 encoding)
    reg_.fetch_add(delta, std::memory_order_seq_cst);
    cell.prev = next;
  }

  std::vector<int64_t> scan() {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — FAA(0) atomically snapshots every component
    uint64_t snapshot = reg_.fetch_add(0, std::memory_order_seq_cst);
    std::vector<int64_t> view(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      view[static_cast<size_t>(i)] = static_cast<int64_t>(extract(snapshot, i));
    }
    return view;
  }

 private:
  uint64_t spread(uint64_t lane, int i) const {
    uint64_t out = 0;
    for (int j = 0; j < lane_bits_; ++j) {
      if (lane & (uint64_t{1} << j)) {
        out |= uint64_t{1} << (static_cast<uint64_t>(j) * static_cast<uint64_t>(n_) +
                               static_cast<uint64_t>(i));
      }
    }
    return out;
  }

  uint64_t extract(uint64_t snapshot, int i) const {
    uint64_t lane = 0;
    for (int j = 0; j < lane_bits_; ++j) {
      uint64_t bit = static_cast<uint64_t>(j) * static_cast<uint64_t>(n_) +
                     static_cast<uint64_t>(i);
      if (snapshot & (uint64_t{1} << bit)) lane |= uint64_t{1} << j;
    }
    return lane;
  }

  struct alignas(64) Cell {
    uint64_t prev = 0;
  };

  int n_;
  int lane_bits_;
  std::atomic<uint64_t> reg_{0};
  std::vector<Cell> prev_;
};

}  // namespace c2sl::rt
