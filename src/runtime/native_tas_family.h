// Native (std::atomic) variants of the §4 constructions:
//   * NativeReadableTAS     (Thm 5):  exchange-based test&set + a state word;
//   * NativeMultishotTAS    (Thm 6):  max register + readable test&set array;
//   * NativeFetchIncrement  (Thm 9):  ascending scan over readable test&set;
//   * NativeSet             (Thm 10): Algorithm 2 over the above.
//
// std::atomic provides the exact consensus-number-2 primitives the paper
// assumes: exchange (test&set / swap) and fetch_add. CAS is never used.
// Arrays are bounded (capacity fixed at construction) — in any finite run only
// finitely many entries are touched; capacity exhaustion is a checked error.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/native_max_register.h"
#include "util/assert.h"

namespace c2sl::rt {

class NativeReadableTAS {
 public:
  /// Returns 0 to exactly one caller, then 1.
  int64_t test_and_set() {
    int64_t old = ts_.exchange(1, std::memory_order_seq_cst);
    state_.store(1, std::memory_order_seq_cst);
    return old;
  }

  int64_t read() const { return state_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int64_t> ts_{0};     // the plain test&set (exchange)
  std::atomic<int64_t> state_{0};  // the readable register
};

class NativeReadableTasArray {
 public:
  explicit NativeReadableTasArray(size_t capacity)
      : cells_(std::make_unique<NativeReadableTAS[]>(capacity)), capacity_(capacity) {}

  int64_t test_and_set(size_t idx) {
    C2SL_CHECK(idx < capacity_, "test&set array capacity exhausted");
    return cells_[idx].test_and_set();
  }
  int64_t read(size_t idx) const {
    C2SL_CHECK(idx < capacity_, "test&set array capacity exhausted");
    return cells_[idx].read();
  }
  size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<NativeReadableTAS[]> cells_;
  size_t capacity_;
};

class NativeMultishotTAS {
 public:
  /// Supports up to max_resets reset generations.
  NativeMultishotTAS(int n, int64_t max_resets)
      : max_resets_(max_resets),
        curr_(n, max_resets + 1),
        ts_(static_cast<size_t>(max_resets) + 2) {}

  int64_t test_and_set(int proc) {
    (void)proc;
    return ts_.test_and_set(index());
  }
  int64_t read() { return ts_.read(index()); }
  void reset(int proc) {
    size_t c = index();
    if (ts_.read(c) == 1) {
      curr_.write_max(proc, static_cast<int64_t>(c));  // logical curr := c + 1
    }
  }

  /// Reset generations consumed so far (0 .. max_resets). Callers that may run
  /// out of generations (e.g. the C2Store service layer) gate reset() on this;
  /// near exhaustion the gate is advisory only, so concurrent resetters must be
  /// externally serialized for the last generation.
  int64_t generation() { return curr_.read_max(); }
  int64_t max_resets() const { return max_resets_; }

 private:
  size_t index() { return static_cast<size_t>(curr_.read_max()) + 1; }

  int64_t max_resets_;
  NativeMaxRegister64 curr_;
  NativeReadableTasArray ts_;
};

class NativeFetchIncrement {
 public:
  explicit NativeFetchIncrement(size_t capacity) : cells_(capacity) {}

  int64_t fetch_and_increment() {
    for (size_t i = 0;; ++i) {
      if (cells_.test_and_set(i) == 0) return static_cast<int64_t>(i);
    }
  }
  int64_t read() const {
    for (size_t i = 0;; ++i) {
      if (cells_.read(i) == 0) return static_cast<int64_t>(i);
    }
  }

 private:
  NativeReadableTasArray cells_;
};

class NativeSet {
 public:
  static constexpr int64_t kEmpty = INT64_MIN;

  explicit NativeSet(size_t capacity)
      : max_(capacity),
        items_(std::make_unique<std::atomic<int64_t>[]>(capacity)),
        ts_(std::make_unique<std::atomic<int64_t>[]>(capacity)),
        capacity_(capacity) {
    for (size_t i = 0; i < capacity; ++i) {
      items_[i].store(kEmpty, std::memory_order_relaxed);
      ts_[i].store(0, std::memory_order_relaxed);
    }
  }

  void put(int64_t x) {
    int64_t m = max_.fetch_and_increment();
    C2SL_CHECK(m >= 0 && static_cast<size_t>(m) < capacity_, "set capacity exhausted");
    items_[static_cast<size_t>(m)].store(x, std::memory_order_seq_cst);
  }

  /// Returns the taken item or kEmpty.
  int64_t take() {
    int64_t taken_old = 0;
    int64_t max_old = 0;
    for (;;) {
      int64_t taken_new = 0;
      int64_t max_new = max_.read();
      for (int64_t c = 0; c < max_new; ++c) {
        int64_t x = items_[static_cast<size_t>(c)].load(std::memory_order_seq_cst);
        if (x != kEmpty) {
          if (ts_[static_cast<size_t>(c)].exchange(1, std::memory_order_seq_cst) == 0) {
            return x;
          }
          ++taken_new;
        }
      }
      if (taken_new == taken_old && max_new == max_old) return kEmpty;
      taken_old = taken_new;
      max_old = max_new;
    }
  }

 private:
  NativeFetchIncrement max_;
  std::unique_ptr<std::atomic<int64_t>[]> items_;
  std::unique_ptr<std::atomic<int64_t>[]> ts_;
  size_t capacity_;
};

}  // namespace c2sl::rt
