// Native (std::atomic) variants of the §4 constructions:
//   * NativeReadableTAS     (Thm 5):  exchange-based test&set + a state word;
//   * NativeMultishotTAS    (Thm 6):  max register + readable test&set array;
//   * NativeFetchIncrement  (Thm 9):  least-unset search over readable test&set;
//   * NativeSet             (Thm 10): Algorithm 2 over the above.
//
// std::atomic provides the exact consensus-number-2 primitives the paper
// assumes: exchange (test&set / swap) and fetch_add. CAS is never used.
//
// Arrays are UNBOUNDED: every construction stores its cells in a
// SegmentedArray (runtime/segmented_array.h) of lazily-published doubling
// segments, matching the paper's "infinite array" model with no capacity
// configuration. The only remaining bounds are the 63-bit lane-packing limits
// of NativeMaxRegister64 (a WIDTH constraint, §6 — see the ROADMAP item), not
// array capacities.
//
// Two native-only refinements ride on the segmented layout; both preserve
// strong linearizability and both are argued in docs/PROOFS.md:
//
//   * O(log value) fetch&increment reads. In the Thm 9 usage the set cells
//     always form a PREFIX [0, value): a test&set win at index i requires the
//     winner to have lost (hence observed set) every cell below i, and
//     NativeReadableTAS writes the state word on the losing path too, so a
//     single observation of state 1 at index i certifies every index <= i.
//     The read therefore hops doubling segment boundaries and binary-searches
//     the straddling segment instead of scanning cell by cell, then makes one
//     CONFIRMING read of the candidate: a 0 observed at index v AFTER a 1 was
//     observed at v-1 pins the value at exactly v at that read — a fixed own
//     step, so the linearization stays prefix-closed.
//
//   * A verified-taken-prefix skip hint in NativeSet::take. A taken flag never
//     clears, so "every cell below h was taken" is a stable fact; take()
//     records the longest such prefix it verified in a plain register and
//     later sweeps start there. The hint is advisory (racy plain stores may
//     publish a stale smaller value) but every published value WAS verified,
//     so skipping [0, h) can never change a response — it only removes
//     re-exchanges of permanently dead cells. This is what makes unbounded
//     lane recycling (service/lane_registry.h) O(1) amortized per
//     acquire/release cycle instead of O(total releases ever).
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/native_max_register.h"
#include "runtime/segmented_array.h"
#include "util/assert.h"

namespace c2sl::rt {

class NativeReadableTAS {
 public:
  /// Returns 0 to exactly one caller, then 1.
  int64_t test_and_set() {
    C2SL_TEL_PRIM_TAS();
    // c2sl-atomic: tas seq_cst — the winner decision (Thm 5 readable-TAS)
    int64_t old = ts_.exchange(1, std::memory_order_seq_cst);
    // c2sl-atomic: store seq_cst — mirror write readers linearize against
    state_.store(1, std::memory_order_seq_cst);
    return old;
  }

  // c2sl-atomic: load seq_cst — the readable-TAS protocol read (Thm 5)
  int64_t read() const { return state_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<int64_t> ts_{0};     // the plain test&set (exchange)
  std::atomic<int64_t> state_{0};  // the readable register
};

/// The issue-facing name for the family's backing store: readable test&set
/// cells over lazily-published doubling segments.
using SegmentedTasArray = SegmentedArray<NativeReadableTAS>;

/// Thm 5 applied index-wise over an infinite array. Reads of cells in
/// unpublished segments return 0 without allocating (the cell is untouched by
/// definition — mutators publish the segment before exchanging any cell).
class NativeReadableTasArray {
 public:
  NativeReadableTasArray() = default;

  int64_t test_and_set(size_t idx) { return cells_.cell(idx).test_and_set(); }
  int64_t read(size_t idx) const {
    const NativeReadableTAS* c = cells_.peek(idx);
    return c ? c->read() : 0;
  }

  /// Cell state if published, 0 otherwise, plus segment math passthroughs —
  /// the fetch&increment search loops below drive these directly.
  const NativeReadableTAS* peek(size_t idx) const { return cells_.peek(idx); }
  static int segment_of(size_t idx) { return SegmentedTasArray::segment_of(idx); }
  static size_t segment_last(int s) { return SegmentedTasArray::segment_last(s); }
  static constexpr int kMaxSegments = SegmentedTasArray::kMaxSegments;

 private:
  SegmentedTasArray cells_;
};

class NativeMultishotTAS {
 public:
  /// `max_resets` bounds reset GENERATIONS, and comes from the 63-bit packing
  /// of the generation max register (n * (max_resets + 1) lane bits), not from
  /// array capacity — the test&set cells themselves are unbounded.
  NativeMultishotTAS(int n, int64_t max_resets)
      : max_resets_(max_resets), curr_(n, max_resets + 1) {}

  int64_t test_and_set(int proc) {
    (void)proc;
    return ts_.test_and_set(index());
  }
  int64_t read() { return ts_.read(index()); }
  void reset(int proc) {
    size_t c = index();
    if (ts_.read(c) == 1) {
      curr_.write_max(proc, static_cast<int64_t>(c));  // logical curr := c + 1
    }
  }

  /// Reset generations consumed so far (0 .. max_resets). Callers that may run
  /// out of generations (e.g. the C2Store service layer) gate reset() on this;
  /// near exhaustion the gate is advisory only, so concurrent resetters must be
  /// externally serialized for the last generation.
  int64_t generation() { return curr_.read_max(); }
  int64_t max_resets() const { return max_resets_; }

 private:
  size_t index() { return static_cast<size_t>(curr_.read_max()) + 1; }

  int64_t max_resets_;
  NativeMaxRegister64 curr_;
  NativeReadableTasArray ts_;
};

class NativeFetchIncrement {
 public:
  NativeFetchIncrement() = default;

  /// Wins the least available cell; the winning exchange is the linearization
  /// point (Thm 9). Starting the ascending scan at the searched lower bound
  /// skips only cells already OBSERVED set — cells a from-zero scan would have
  /// exchanged and lost — so the behaviour is exactly the paper's algorithm
  /// minus provably losing steps.
  int64_t fetch_and_increment() {
    // The increment path needs only the certified LOWER BOUND (all cells below
    // it observed set) — not read()'s confirming retry loop, which would
    // re-gallop on every concurrent completion without changing where the
    // exchange scan may start.
    for (size_t i = known_set_bound();; ++i) {
      if (cells_.test_and_set(i) == 0) return static_cast<int64_t>(i);
    }
  }

  /// O(log value) instead of the flat array's O(value): see the header
  /// comment for the prefix invariant and the confirming-read argument
  /// (mechanised complexity claim: bench_tas_family's flat-vs-segmented
  /// ablation; proof sketch: docs/PROOFS.md §"fetch&increment").
  int64_t read() const { return static_cast<int64_t>(first_unset()); }

 private:
  /// Certified lower bound: every index below the result was OBSERVED set (at
  /// some past step — permanent, states never clear). Gallop the doubling
  /// segment boundaries, then binary-search the straddling segment; one
  /// state-1 observation certifies its whole prefix (header comment), and an
  /// unpublished segment counts as a 0-observation (the spine load is the
  /// atomic step; no cell of an unpublished segment has ever been exchanged).
  size_t known_set_bound() const {
    size_t known_set_below = 0;  // every index < this was observed set
    int s = 0;
    for (; s < NativeReadableTasArray::kMaxSegments; ++s) {
      const NativeReadableTAS* last =
          cells_.peek(NativeReadableTasArray::segment_last(s));
      if (!last || last->read() == 0) break;
      known_set_below = NativeReadableTasArray::segment_last(s) + 1;
    }
    C2SL_CHECK(s < NativeReadableTasArray::kMaxSegments,
               "segmented spine exhausted (~2^63 increments)");
    size_t lo = known_set_below;
    size_t hi = NativeReadableTasArray::segment_last(s);
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      const NativeReadableTAS* c = cells_.peek(mid);
      if (c && c->read() == 1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Least index whose readable state is 0, linearized at the final read.
  size_t first_unset() const {
    for (;;) {
      size_t lo = known_set_bound();
      // Confirm: this read postdates the 1-observation at lo-1 (if any), so a
      // 0 here pins the implemented value at exactly lo — the linearization
      // point. A 1 means other increments completed meanwhile; rescan
      // (lock-free for the same reason as the flat scan: only completed wins
      // can invalidate us).
      const NativeReadableTAS* c = cells_.peek(lo);
      if (!c || c->read() == 0) return lo;
    }
  }

  NativeReadableTasArray cells_;
};

namespace detail {
/// NativeSet cell types with the right initial states for value-initialised
/// segment construction (SegmentedArray news segments with `new T[n]()`).
struct SetItemCell {
  std::atomic<int64_t> v{INT64_MIN};  // NativeSet::kEmpty
};
struct SetTakenCell {
  std::atomic<int64_t> v{0};  // plain (non-readable) test&set
};
}  // namespace detail

class NativeSet {
 public:
  static constexpr int64_t kEmpty = INT64_MIN;

  NativeSet() = default;

  void put(int64_t x) {
    int64_t m = max_.fetch_and_increment();
    // c2sl-atomic: store seq_cst — item deposit; put linearizes at this write
    items_.cell(static_cast<size_t>(m)).v.store(x, std::memory_order_seq_cst);
  }

  /// Returns the taken item or kEmpty. Algorithm 2's sweep, restricted to
  /// [hint, Max): cells below the hint are permanently taken (header comment),
  /// so the restriction removes no candidate and moves no linearization point.
  int64_t take() {
    // c2sl-atomic: load relaxed — advisory hint; any stale value is sound
    const size_t skip =
        static_cast<size_t>(taken_prefix_.load(std::memory_order_relaxed));
    int64_t taken_old = 0;
    int64_t max_old = 0;
    for (;;) {
      int64_t taken_new = 0;
      int64_t max_new = max_.read();
      size_t dead = skip;  // [0, dead) verified taken during this sweep
      for (int64_t c = static_cast<int64_t>(skip); c < max_new; ++c) {
        const detail::SetItemCell* item = items_.peek(static_cast<size_t>(c));
        // c2sl-atomic: load seq_cst — Algorithm 2 sweep read of the item cell
        int64_t x = item ? item->v.load(std::memory_order_seq_cst) : kEmpty;
        if (x != kEmpty) {
          C2SL_TEL_PRIM_TAS();
          // c2sl-atomic: tas seq_cst — take decision; winner owns item c
          if (ts_.cell(static_cast<size_t>(c)).v.exchange(
                  1, std::memory_order_seq_cst) == 0) {
            if (static_cast<size_t>(c) == dead) ++dead;  // we just killed c too
            publish_hint(dead);
            return x;
          }
          ++taken_new;
          if (static_cast<size_t>(c) == dead) ++dead;
        }
        // x == kEmpty: a pending put may still land here — the cell is not
        // dead, so the verified prefix stops growing (dead stays < c + 1 and
        // the equality above fails for every later cell of this sweep).
      }
      if (taken_new == taken_old && max_new == max_old) {
        publish_hint(dead);
        return kEmpty;  // linearizes at this sweep's stabilised Max read
      }
      taken_old = taken_new;
      max_old = max_new;
    }
  }

 private:
  void publish_hint(size_t dead) {
    // Plain register store: racy by design. Any published value was verified
    // all-taken by its writer and taken flags never clear, so every value in
    // the register is a sound (possibly stale) lower bound.
    // c2sl-atomic: load relaxed — advisory-hint read; monotonicity is best-effort
    if (dead > static_cast<size_t>(taken_prefix_.load(std::memory_order_relaxed))) {
      // c2sl-atomic: store relaxed — advisory-hint write; sound even if lost
      taken_prefix_.store(static_cast<int64_t>(dead), std::memory_order_relaxed);
    }
  }

  NativeFetchIncrement max_;
  SegmentedArray<detail::SetItemCell> items_;
  SegmentedArray<detail::SetTakenCell> ts_;
  std::atomic<int64_t> taken_prefix_{0};  // advisory verified-taken prefix
};

}  // namespace c2sl::rt
