// RoutingEpoch — the epoch spine behind C2Store's online shard resizing: a
// monotone sequence of published routing tables built from one-shot exchange
// claims and plain register writes only (no CAS), on the SegmentedArray spine.
//
// A routing EPOCH is a power-of-two shard count. Epoch 0 is fixed at
// construction; each successful resize installs epoch e+1 with a strictly
// larger count. Because counts are powers of two and only grow, the masks
// NEST: for any key hash h, h & (S'-1) is either h & (S-1) (the key stays) or
// an index >= S (the key moves to a fresh slot). That nesting is what makes
// live migration by idempotent monotone replay possible at all — the old slot
// remains a valid lower bound for every key that stayed, and a moved key's
// state can be re-applied to its new slot with write_max / counter re-add
// without ever needing a "remove" (the per-key objects are monotone).
//
// The whole hand-off is driven by ONE atomic stamp word:
//
//   stamp == 2e     epoch e is published; no resize in flight
//   stamp == 2e+1   epoch e is published; epoch e+1 is INSTALLING (the unique
//                   claim winner of cell e+1 is migrating state)
//
// The stamp is monotone and every transition is a plain register store by the
// unique claim winner — 2e -> 2e+1 (install) and 2e+1 -> 2e+2 (publish) — so
// no RMW stronger than the one-shot claim exchange is ever needed on it.
// Claim serialisation is the SegmentedArray publication argument verbatim: a
// resizer must observe stamp == 2e (even) before it may try to claim cell
// e+1, and the cell's exchange admits exactly one winner ever, so a stale
// resizer (one that read an old even stamp) always LOSES the exchange for the
// cell it targets — the claims cannot interleave across epochs.
//
// Failure semantics (the kill-style recovery contract, pinned by
// tests/resize_test.cpp):
//   * claim winner throws during migration  -> it poisons its cell; the store
//     keeps serving epoch e forever and later resizes fail with kPoisoned;
//   * claim winner simply disappears        -> the stamp stays odd; the store
//     keeps serving epoch e and later resizes return kInFlight forever.
// In both cases every data op keeps succeeding on the published table — an
// abandoned resize never wedges readers or writers, only future resizes.
//
// Memory-order notes (PR 7 policy): the claim exchange and BOTH stamp
// transitions are seq_cst because they form the resizer's half of the Dekker
// handshake with writers — a writer's post-op seq_cst stamp recheck
// (service/c2store.h) must totally order against the install store, or a
// write landing in an old slot during the dual-write window could be missed
// by the migration replay AND skip its own re-application. The per-epoch
// shard count is published before the install store and read after a stamp
// load that observed it, so its loads can stay relaxed.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/segmented_array.h"
#include "telemetry/prim_profile.h"
#include "util/assert.h"

namespace c2sl::rt {

class RoutingEpoch {
 public:
  /// Outcome of try_begin() (and of the service-level resize built on it).
  enum class ResizeStatus {
    kInstalled,  ///< this caller won the claim; it now owns the migration
    kNoop,       ///< new count <= published count; nothing to do
    kInFlight,   ///< another resize is installing (or was abandoned mid-claim)
    kPoisoned,   ///< an earlier migration threw; resizing is permanently off
  };

  /// Claim token for one installing epoch. Returned by try_begin(); the
  /// holder must finish with publish() or poison() — dropping it models a
  /// killed resizer (the abandoned-claim recovery test does exactly that).
  struct Claim {
    int64_t epoch = -1;  ///< the NEW epoch index being installed
    int shards = 0;      ///< the NEW shard count
    bool valid() const { return epoch > 0; }
  };

  explicit RoutingEpoch(int initial_shards) {
    C2SL_CHECK(initial_shards > 0 &&
                   (initial_shards & (initial_shards - 1)) == 0,
               "shard count must be a power of two");
    EpochCell& c0 = cells_.cell(0);
    // c2sl-atomic: store relaxed — constructor runs single-threaded; epoch 0
    // is published by the constructor's happens-before edge to every user
    c0.shards.store(initial_shards, std::memory_order_relaxed);
  }

  // --- stamp reads ----------------------------------------------------------

  /// Advisory stamp peek for the ref-revalidation hot path: a stale value is
  /// harmless (correctness rides on the writer's seq_cst recheck), so this
  /// costs one relaxed load.
  int64_t stamp_relaxed() const {
    // c2sl-atomic: load relaxed — advisory revalidation peek; a stale read
    // only delays a rebind, never misroutes (the seq_cst recheck decides)
    return stamp_.load(std::memory_order_relaxed);
  }

  /// The writer-side Dekker recheck: totally ordered against the install
  /// store, so a writer that raced the migration window is guaranteed to see
  /// the odd stamp (or the migration replay is guaranteed to see its write).
  int64_t stamp() const {
    // c2sl-atomic: load seq_cst — the writer half of the install/recheck
    // Dekker pair; must totally order against the resizer's install store
    return stamp_.load(std::memory_order_seq_cst);
  }

  static constexpr bool installing(int64_t stamp) { return (stamp & 1) != 0; }
  /// The newest PUBLISHED epoch encoded in `stamp` (2e and 2e+1 -> e).
  static constexpr int64_t published_epoch(int64_t stamp) { return stamp >> 1; }
  /// The newest epoch with an installed table: the installing one if the
  /// stamp is odd, else the published one. Writers dual-apply under THIS
  /// epoch's mask so the migration replay can never finish behind them.
  static constexpr int64_t newest_epoch(int64_t stamp) {
    return (stamp + 1) >> 1;
  }

  /// Shard count of `epoch`. Only valid for epochs whose install store was
  /// observed through a stamp read (published_epoch / newest_epoch of a read
  /// stamp) — that observation carries the count's visibility.
  int shards_of(int64_t epoch) const {
    const EpochCell* c = cells_.peek(static_cast<size_t>(epoch));
    C2SL_CHECK(c != nullptr, "epoch cell read before its install");
    // c2sl-atomic: load relaxed — ordered by the stamp read that exposed this
    // epoch (install stores the count before the stamp transition)
    int64_t s = c->shards.load(std::memory_order_relaxed);
    C2SL_CHECK(s > 0, "epoch cell read before its install");
    return static_cast<int>(s);
  }

  /// Published epoch + its shard count (one seq_cst stamp load).
  int64_t current_epoch() const { return published_epoch(stamp()); }
  int current_shards() const { return shards_of(current_epoch()); }

  // --- the resize protocol --------------------------------------------------

  /// Tries to claim the next epoch with `new_shards` slots. On kInstalled the
  /// caller owns the migration and MUST eventually call publish() or
  /// poison(); any other status leaves the spine untouched.
  ResizeStatus try_begin(int new_shards, Claim& out) {
    C2SL_CHECK(new_shards > 0 && (new_shards & (new_shards - 1)) == 0,
               "shard count must be a power of two");
    // c2sl-atomic: load seq_cst — resize admission read; pairs with the
    // install/publish stores below (part of the claim-serialisation argument)
    int64_t st = stamp_.load(std::memory_order_seq_cst);
    int64_t next = published_epoch(st) + 1;
    if (installing(st)) {
      const EpochCell* installing_cell = cells_.peek(static_cast<size_t>(next));
      // c2sl-atomic: load seq_cst — cold poison check; cross-checked with the
      // stamp by failed resizers, so it stays at the strongest order
      bool dead = installing_cell != nullptr &&
                  installing_cell->poisoned.load(std::memory_order_seq_cst);
      return dead ? ResizeStatus::kPoisoned : ResizeStatus::kInFlight;
    }
    if (new_shards <= shards_of(published_epoch(st))) return ResizeStatus::kNoop;
    EpochCell& cell = cells_.cell(static_cast<size_t>(next));
    C2SL_TEL_PRIM_TAS();
    // c2sl-atomic: tas seq_cst — the one-shot resize claim: exactly one
    // resizer per epoch; a stale claimant (old stamp) always loses here
    if (cell.claim.exchange(1, std::memory_order_seq_cst) != 0) {
      return ResizeStatus::kInFlight;
    }
    // Install: count first, stamp second, both seq_cst — the stamp store
    // opens the writers' dual-write window (the Dekker half the recheck in
    // service/c2store.h pairs with), and any stamp observer must already see
    // the count.
    // c2sl-atomic: store seq_cst — epoch table install; must precede the
    // stamp transition in the single total order
    cell.shards.store(new_shards, std::memory_order_seq_cst);
    // c2sl-atomic: store seq_cst — install stamp 2e -> 2e+1; the resizer half
    // of the Dekker pair with every writer's post-op recheck
    stamp_.store(2 * next - 1, std::memory_order_seq_cst);
    C2SL_TEL_EVENT(tel::TelEvent::kResizeClaim);
    out = Claim{next, new_shards};
    return ResizeStatus::kInstalled;
  }

  /// Publishes the claimed epoch after migration: stamp 2e+1 -> 2e+2. From
  /// here every newly bound ref routes under the new mask.
  void publish(const Claim& c) {
    C2SL_CHECK(c.valid(), "publish of an invalid resize claim");
    // c2sl-atomic: store seq_cst — publish stamp 2e+1 -> 2e+2; ends the
    // dual-write window, so it must join the same total order as the install
    stamp_.store(2 * c.epoch, std::memory_order_seq_cst);
    C2SL_TEL_EVENT(tel::TelEvent::kEpochPublish);
  }

  /// Records a failed migration: the store keeps serving the old epoch and
  /// every later resize fails with kPoisoned (clean error, never a wedge).
  void poison(const Claim& c) {
    C2SL_CHECK(c.valid(), "poison of an invalid resize claim");
    // c2sl-atomic: store seq_cst — cold failure flag; cross-checked with the
    // odd stamp by later resizers, so it stays at the strongest order
    cells_.cell(static_cast<size_t>(c.epoch))
        .poisoned.store(true, std::memory_order_seq_cst);
  }

 private:
  /// One epoch's published state. claim is the one-shot exchange (consensus
  /// number 2); shards and poisoned are plain registers. Value-initialised by
  /// the SegmentedArray, so shards == 0 doubles as "not installed".
  struct EpochCell {
    std::atomic<uint64_t> claim{0};
    std::atomic<int64_t> shards{0};
    std::atomic<bool> poisoned{false};
  };

  SegmentedArray<EpochCell> cells_;
  std::atomic<int64_t> stamp_{0};
};

}  // namespace c2sl::rt
