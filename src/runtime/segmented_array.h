// SegmentedArray<T> — the unbounded backing store of the native TAS family.
//
// The paper's §4 constructions are written against INFINITE arrays of base
// objects; only finitely many entries are touched in any finite run. The
// simulated side models that directly (prim::TasArray grows on demand inside
// one atomic step). The native side used to approximate it with fixed-capacity
// arrays, which leaked capacity knobs all the way up into C2StoreConfig and
// bounded the lifetime of every long-running store. This header removes that
// approximation: storage is a SPINE of lazily-published SEGMENTS with doubling
// sizes (base 64, so segment s holds 64·2^s cells and starts at 64·(2^s − 1)).
// 57 spine slots cover ~2^63 indices — "infinite" for every purpose of the
// paper, with no configuration surface.
//
// Publication uses the same pattern C2Store already uses for shard slots
// (service/c2store.h): each spine slot carries a one-shot claim implemented
// with a plain exchange (test&set — consensus number 2) and an atomic segment
// pointer (a read/write register — consensus number 1). The claim winner
// CONSTRUCTS THE SEGMENT FIRST (default-constructing every cell to its initial
// state) and PUBLISHES THE POINTER SECOND; losers spin on the pointer, readers
// that must not allocate treat an unpublished segment as "all cells initial"
// (peek() returns nullptr). No CAS anywhere — the no-CAS grep test
// (tests/c2store_test.cpp) scans this file.
//
// The init-before-publish order is load-bearing, not style: publishing first
// would let a concurrent reader observe uninitialised cells (garbage that can
// masquerade as already-set state, breaking even plain linearizability). The
// bounded model checker pins exactly this: the simulated twin of this protocol
// (svc::SimSegmentedTasArray, service/sim_bridge.h) verifies strongly
// linearizable in publication order and is REFUTED with the two writes
// swapped (tests/service_sim_test.cpp). docs/PROOFS.md gives the prose
// argument.
//
// Why doubling segments (and not, say, a linked list of fixed blocks): the
// spine stays small enough to sit inline (57 slots), index→segment is two bit
// operations, and the fetch&increment READ path gets its complexity win — the
// least-unset-index search hops O(log value) segment boundaries instead of
// scanning O(value) cells (see NativeFetchIncrement in native_tas_family.h).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "telemetry/prim_profile.h"
#include "util/assert.h"

namespace c2sl::rt {

template <typename T>
class SegmentedArray {
 public:
  /// Cells per segment 0; segment s holds kBase << s cells.
  static constexpr size_t kBase = 64;
  /// Spine length: segment 56 ends at 64·(2^57 − 1) − 1 ≈ 2^62.8, so the
  /// addressable index space is ~2^63 — exhausting it is not a reachable
  /// program state (a process touching one cell per nanosecond needs ~290
  /// years). There is deliberately NO capacity configuration.
  static constexpr int kMaxSegments = 57;

  SegmentedArray() = default;
  SegmentedArray(const SegmentedArray&) = delete;
  SegmentedArray& operator=(const SegmentedArray&) = delete;
  ~SegmentedArray() {
    for (auto& slot : spine_) {
      // c2sl-atomic: load relaxed — destructor runs single-threaded by contract
      delete[] slot.seg.load(std::memory_order_relaxed);
    }
  }

  // --- index math (static: shared with the search loops in callers) ---------
  static constexpr int segment_of(size_t i) {
    return std::bit_width(i / kBase + 1) - 1;
  }
  static constexpr size_t segment_start(int s) {
    return kBase * ((size_t{1} << s) - 1);
  }
  static constexpr size_t segment_size(int s) { return kBase << s; }
  static constexpr size_t segment_last(int s) {
    return segment_start(s) + segment_size(s) - 1;
  }

  /// Cell i, materialising its segment on demand (claim + construct + publish;
  /// losers spin on the pointer — the winner is at most a few stores away).
  T& cell(size_t i) {
    int s = checked_segment_of(i);
    // c2sl-atomic: load acquire — pairs with the release publish; a non-null
    // pointer carries visibility of every constructed cell behind it
    T* seg = spine_[s].seg.load(std::memory_order_acquire);
    if (!seg) seg = materialize(s);
    return seg[i - segment_start(s)];
  }

  /// Cell i if its segment is published, nullptr otherwise. Never allocates:
  /// an unpublished segment means every one of its cells is still in its
  /// initial state (any operation that mutates a cell publishes the segment
  /// first), so callers may treat nullptr as "initial value" — and the spine
  /// load itself is the atomic step that justifies that reading.
  const T* peek(size_t i) const {
    int s = checked_segment_of(i);
    // c2sl-atomic: load acquire — publication read; per-object coherence keeps
    // the nullptr ⇒ cells-initial reading sound without seq_cst
    const T* seg = spine_[s].seg.load(std::memory_order_acquire);
    return seg ? seg + (i - segment_start(s)) : nullptr;
  }
  T* peek(size_t i) {
    int s = checked_segment_of(i);
    // c2sl-atomic: load acquire — publication read (same argument as above)
    T* seg = spine_[s].seg.load(std::memory_order_acquire);
    return seg ? seg + (i - segment_start(s)) : nullptr;
  }

  /// Whether segment s is published (diagnostics and search loops).
  bool segment_published(int s) const {
    C2SL_CHECK(s >= 0 && s < kMaxSegments, "segment index out of spine range");
    // c2sl-atomic: load acquire — publication read (diagnostics and sweeps)
    return spine_[s].seg.load(std::memory_order_acquire) != nullptr;
  }
  /// Number of published segments (diagnostics only; racy by nature).
  int segments_published() const {
    int count = 0;
    for (int s = 0; s < kMaxSegments; ++s) {
      if (segment_published(s)) ++count;
    }
    return count;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> claim{0};       // one-shot exchange: init winner
    std::atomic<T*> seg{nullptr};        // published segment (register write)
    std::atomic<bool> poisoned{false};   // winner threw before publishing
  };

  /// segment_of with the spine-range check BEFORE any spine access: indices
  /// past segment 56 (> ~2^62.8) are not reachable by honest use, but they
  /// must surface as the documented checked error, not as an out-of-bounds
  /// spine read.
  static int checked_segment_of(size_t i) {
    int s = segment_of(i);
    C2SL_CHECK(s < kMaxSegments, "segmented spine exhausted (index beyond ~2^62)");
    return s;
  }

  T* materialize(int s) {
    Slot& slot = spine_[s];
    C2SL_TEL_PRIM_TAS();
    // c2sl-atomic: tas seq_cst — init-winner decision for the segment
    if (slot.claim.exchange(1, std::memory_order_seq_cst) == 0) {
      C2SL_TEL_EVENT(tel::TelEvent::kSegmentClaim);
      // Claim won: construct every cell to its initial state, THEN publish.
      // Swapping these two steps is the pinned-broken variant — see header.
      T* seg = nullptr;
      try {
        seg = new T[segment_size(s)]();
      } catch (...) {
        // c2sl-atomic: store seq_cst — cold failure flag; cross-checked with
        // the spine by spinning losers, so it stays at the strongest order
        slot.poisoned.store(true, std::memory_order_seq_cst);
        throw;
      }
      // c2sl-atomic: store release — the publish: constructed cells become
      // visible to every acquire spine load
      slot.seg.store(seg, std::memory_order_release);
      C2SL_TEL_EVENT(tel::TelEvent::kSegmentPublish);
      return seg;
    }
    T* seg = nullptr;
    // c2sl-atomic: load acquire — loser spin on the publish; pairs with the
    // release store above
    while (!(seg = slot.seg.load(std::memory_order_acquire))) {
      // c2sl-atomic: load seq_cst — cold poison check inside the spin
      C2SL_CHECK(!slot.poisoned.load(std::memory_order_seq_cst),
                 "segment initialization failed in another thread");
    }
    return seg;
  }

  Slot spine_[kMaxSegments];
};

}  // namespace c2sl::rt
