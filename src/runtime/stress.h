// Real-thread stress harness for the native constructions.
//
// Threads run operation loops; every operation draws an invocation sequence
// number from one global seq_cst counter immediately before it starts and a
// response number right after it returns. If op A's response number is smaller
// than op B's invocation number, A really did complete before B began, so the
// recorded intervals are a sound (conservative) real-time order for post-hoc
// linearizability checking.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace c2sl::rt {

struct TimedOp {
  int thread = 0;
  std::string name;
  int64_t arg = 0;
  int64_t resp = 0;
  uint64_t inv_seq = 0;
  uint64_t resp_seq = 0;
};

/// Runs `threads` real threads; thread t executes ops_per_thread operations by
/// calling `body(t, op_index)`, which performs one operation and returns its
/// record (inv/resp sequence numbers are filled in by the harness).
inline std::vector<TimedOp> run_stress(
    int threads, int ops_per_thread,
    const std::function<TimedOp(int thread, int op_index)>& body) {
  std::atomic<uint64_t> clock{0};
  std::atomic<int> start_gate{0};
  std::vector<std::vector<TimedOp>> per_thread(static_cast<size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // c2sl-atomic: faa seq_cst noprofile — harness start barrier, not an
      // object under test; profiling it would skew the primitive cost model
      start_gate.fetch_add(1);
      // c2sl-atomic: load seq_cst — barrier spin; must see every arrival
      while (start_gate.load() < threads) {
      }  // barrier: maximise overlap
      auto& out = per_thread[static_cast<size_t>(t)];
      out.reserve(static_cast<size_t>(ops_per_thread));
      for (int j = 0; j < ops_per_thread; ++j) {
        // c2sl-atomic: faa seq_cst noprofile — harness clock tick; the total
        // tick order must agree with real time across threads
        uint64_t inv = clock.fetch_add(1, std::memory_order_seq_cst);
        TimedOp op = body(t, j);
        // c2sl-atomic: faa seq_cst noprofile — harness clock tick (response)
        uint64_t resp = clock.fetch_add(1, std::memory_order_seq_cst);
        op.thread = t;
        op.inv_seq = inv;
        op.resp_seq = resp;
        out.push_back(op);
      }
    });
  }
  for (auto& th : pool) th.join();
  std::vector<TimedOp> all;
  for (auto& v : per_thread) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

}  // namespace c2sl::rt
