#include "service/c2store.h"

#include <algorithm>
#include <vector>

#include "telemetry/export.h"
#include "util/assert.h"

namespace c2sl::svc {

// Runs in the init list, before any member construction: every config error
// surfaces here with a service-level message, and ShardObjects construction
// below can no longer throw for config reasons (only bad_alloc remains).
// Returns a NORMALISED copy: the deprecated `shards` alias (PR 1 name) is
// resolved into initial_shards — when set, the alias wins, so existing
// call sites keep their meaning for the one-release deprecation window.
C2StoreConfig C2Store::validate(C2StoreConfig cfg) {
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  if (cfg.shards != C2StoreConfig::kShardsUnset) {
    cfg.initial_shards = cfg.shards;
    cfg.shards = C2StoreConfig::kShardsUnset;
  }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  C2SL_CHECK(cfg.initial_shards > 0 &&
                 (cfg.initial_shards & (cfg.initial_shards - 1)) == 0,
             "initial_shards must be a power of two");
  C2SL_CHECK(cfg.max_threads >= 1, "need at least one session lane");
  C2SL_CHECK(cfg.max_value >= 1, "max_value must be at least 1");
  C2SL_CHECK(cfg.tas_max_resets >= 0, "tas_max_resets must be non-negative");
  C2SL_CHECK(static_cast<int64_t>(cfg.max_threads) * cfg.max_value <= 63,
             "max_threads * max_value must fit in 63 bits");
  C2SL_CHECK(static_cast<int64_t>(cfg.max_threads) * (cfg.tas_max_resets + 1) <= 63,
             "max_threads * (tas_max_resets + 1) must fit in 63 bits");
  return cfg;
}

C2Store::C2Store(const C2StoreConfig& cfg)
    : cfg_(validate(cfg)),
      epochs_(cfg_.initial_shards),
      router_(&epochs_),
      initial_mask_(static_cast<uint64_t>(cfg_.initial_shards) - 1),
      lanes_(cfg_.max_threads),
      digest_(cfg_.max_threads, cfg_.max_value) {
  // Route assert failures through this store's flight recorder (last store
  // constructed wins the slot; a no-op under C2SL_TELEMETRY=0).
  tel::install_flight_dump_on_assert(&tel_, &trace_, cfg_.max_threads);
}

C2Store::~C2Store() {
  tel::uninstall_flight_dump_on_assert(&tel_);
  // Sweep up to the NEWEST epoch's count, published or not: an abandoned or
  // poisoned install may have materialised slots beyond the published range.
  int total = epochs_.shards_of(rt::RoutingEpoch::newest_epoch(epochs_.stamp()));
  for (int s = 0; s < total; ++s) {
    ShardSlot* sl = slots_.peek(static_cast<size_t>(s));
    if (!sl) continue;  // segment never materialised: nothing to free
    // c2sl-atomic: load relaxed — destructor runs single-threaded by contract
    delete sl->objs.load(std::memory_order_relaxed);
  }
}

C2Session C2Store::open_session() {
  // Blocks while all lanes are held: the registry parks this caller on its
  // handoff queue and a closing session hands its lane over directly. The
  // timer measures that blocking window (the wait-time-spread metric rides
  // on the per-lane open_wait histograms this feeds).
  tel::OpenTimer timer;
  int lane = lanes_.acquire_blocking();
  int64_t wait_ns = timer.elapsed_ns();
  tel_.record_open_wait(tel_.lane(lane), wait_ns);
  trace_.record_event(trace_.lane(lane), tel::TraceOp::kSessionOpen,
                      /*key=*/-1, /*arg=*/wait_ns, /*result=*/lane,
                      /*witness=*/-1, /*epoch=*/-1);
  return C2Session(this, lane);
}

C2Session C2Store::try_open_session() {
  int lane = lanes_.try_acquire();
  if (lane == LaneRegistry::kNone) return C2Session();
  tel_.record_open_wait(tel_.lane(lane), 0);  // non-blocking: zero wait
  trace_.record_event(trace_.lane(lane), tel::TraceOp::kSessionOpen,
                      /*key=*/-1, /*arg=*/0, /*result=*/lane,
                      /*witness=*/-1, /*epoch=*/-1);
  return C2Session(this, lane);
}

C2Session C2Store::open_session_for(std::chrono::nanoseconds timeout) {
  tel::OpenTimer timer;
  int lane = lanes_.acquire_for(timeout);
  if (lane == LaneRegistry::kNone) return C2Session();
  int64_t wait_ns = timer.elapsed_ns();
  tel_.record_open_wait(tel_.lane(lane), wait_ns);
  trace_.record_event(trace_.lane(lane), tel::TraceOp::kSessionOpen,
                      /*key=*/-1, /*arg=*/wait_ns, /*result=*/lane,
                      /*witness=*/-1, /*epoch=*/-1);
  return C2Session(this, lane);
}

ShardObjects& C2Store::shard(int s) {
  ShardSlot& slot = slots_.cell(static_cast<size_t>(s));
  // c2sl-atomic: load acquire — publication read; a non-null pointer carries
  // visibility of the constructed ShardObjects behind it
  ShardObjects* p = slot.objs.load(std::memory_order_acquire);
  if (p) return *p;
  if (slot.claim.test_and_set() == 0) {
    // We won the readable test&set: construct and publish. The publication is
    // a plain register write (consensus number 1) — still no CAS. The config
    // was validated up front, so only allocation failure can throw here; the
    // poison flag turns that into an error for the waiters instead of a
    // permanent spin (the one-shot claim is already consumed).
    try {
      p = new ShardObjects(cfg_);
    } catch (...) {
      // c2sl-atomic: store seq_cst — cold failure flag; cross-checked with the
      // slot pointer by spinning losers, so it stays at the strongest order
      slot.poisoned.store(true, std::memory_order_seq_cst);
      throw;
    }
    // c2sl-atomic: store release — the publish: the constructed ShardObjects
    // becomes visible to every acquire load of the slot pointer
    slot.objs.store(p, std::memory_order_release);
    C2SL_TEL_EVENT(tel::TelEvent::kShardInit);
    return *p;
  }
  // Another thread won the claim; its publication is at most a few stores
  // away, so losers spin on the pointer.
  // c2sl-atomic: load acquire — loser spin on the publish; pairs with the
  // release store above
  while (!(p = slot.objs.load(std::memory_order_acquire))) {
    // c2sl-atomic: load seq_cst — cold poison check inside the spin
    C2SL_CHECK(!slot.poisoned.load(std::memory_order_seq_cst),
               "shard initialization failed in another thread");
  }
  return *p;
}

// --- online resizing (PR 9) --------------------------------------------------

ResizeStatus C2Store::resize(int new_shards) {
  C2Session s = open_session();
  return s.resize(new_shards);
}

ResizeStatus C2Store::resize_with_lane(int lane, int new_shards) {
  rt::RoutingEpoch::Claim claim;
  ResizeStatus st = epochs_.try_begin(new_shards, claim);
  if (st != ResizeStatus::kInstalled) return st;
  // We own the installing epoch. From the install store on, every writer's
  // post-op Dekker recheck dual-applies under the new mask, so the replay
  // below plus the dual-write window covers every concurrent write
  // (docs/PROOFS.md, "epoch hand-off"). A throw during migration poisons the
  // claim — the store keeps serving the published epoch, and later resizes
  // report kPoisoned instead of wedging.
  try {
    migrate(lane, claim);
  } catch (...) {
    epochs_.poison(claim);
    throw;
  }
  // Journal the resize (after the replay, before the publish). The marker is
  // INFORMATIONAL: snapshot replay buckets under the initial mask forever and
  // skips it — it exists for audit tools and tests (keyed_version_digest.h).
  int64_t ticket =
      journal_.append(rt::KeyedVersionDigest::Kind::kResize, 0, 0,
                      static_cast<int64_t>(claim.shards));
  epochs_.publish(claim);
  // Trace the resize on the migrating lane: the kResize marker's ticket is
  // its journal-facet witness, and the claimed epoch rides in the epoch
  // field (the epoch stamp is the resize's own publication step).
  trace_.record_event(trace_.lane(lane), tel::TraceOp::kResize,
                      /*key=*/-1, /*arg=*/claim.shards,
                      /*result=*/static_cast<int64_t>(ResizeStatus::kInstalled),
                      /*witness=*/ticket, /*epoch=*/claim.epoch);
  return ResizeStatus::kInstalled;
}

// Migration replay: for every NEW slot j in [old_count, new_count), fold the
// monotone state of its parent slot (j masked down to the old count) in.
// Idempotent by monotonicity — write_max re-merge, counter re-add, TAS
// set-ness re-set — so racing writers that dual-apply the same state are
// harmless on every VALUE facet. Old slots intentionally keep their state
// (mask nesting makes them valid lower bounds; the duplication is why
// counter_sum_scan over-approximates after a resize while the lane-keyed
// digests stay exact). Unmaterialised parents are skipped: nothing to move,
// and the replay never materialises slots.
void C2Store::migrate(int lane, const rt::RoutingEpoch::Claim& claim) {
  int old_count = epochs_.shards_of(claim.epoch - 1);
  for (int j = old_count; j < claim.shards; ++j) {
    ShardObjects* src = peek(j & (old_count - 1));
    if (!src) continue;
    int64_t mx = src->max.read_max();
    int64_t cnt = src->counter.read();
    int64_t set = src->tas.read();
    if (mx == 0 && cnt == 0 && set == 0) continue;  // nothing to move
    ShardObjects& dst = shard(j);
    if (mx > 0) dst.max.write_max(lane, mx);
    for (int64_t i = 0; i < cnt; ++i) dst.counter.fetch_and_increment();
    if (set != 0) dst.tas.test_and_set(lane);
    C2SL_TEL_EVENT(tel::TelEvent::kKeysMigrated);
  }
}

// Double-collect over a monotone per-shard read. Uninitialised shards read as
// `empty`; a shard can only transition uninitialised → initialised, and the
// per-shard values only grow, so two identical consecutive collects certify a
// single logical instant at which all collected values were simultaneously
// current (the read linearizes there). Returns true when a stable pair was
// found within `max_rounds` collects; `out` then holds the certified view.
// An unbounded loop here can livelock under sustained writes (one landing
// write per round is enough to invalidate every collect forever) — callers
// fall back to their digest read when stabilisation fails, which keeps the
// scan aggregates bounded AND linearizable (the digest step sits inside the
// scan's interval).
namespace {
template <typename ReadShard>
bool stable_collect(int shards, int64_t empty, const ReadShard& read,
                    int max_rounds, std::vector<int64_t>& out) {
  // Two buffers, swapped between rounds: no allocations after the first
  // round even when write contention forces many rescans.
  std::vector<int64_t> prev(static_cast<size_t>(shards), empty - 1);
  std::vector<int64_t> curr(static_cast<size_t>(shards));
  for (int round = 0; round < max_rounds; ++round) {
    for (int s = 0; s < shards; ++s) curr[static_cast<size_t>(s)] = read(s);
    if (curr == prev) {
      out = std::move(curr);
      return true;
    }
    std::swap(prev, curr);
  }
  return false;
}
}  // namespace

int64_t C2Store::global_max() { return digest_.read_max(); }

int64_t C2Store::counter_sum() { return sum_digest_.read(); }

int64_t C2Store::global_max_scan() {
  // The scanned range is the shard count read ONCE here; counts only grow, so
  // an unchanged count after the collect certifies no epoch published
  // mid-scan (the resize-stale guard below).
  int shards = shard_count();
  std::vector<int64_t> view;
  bool stable = stable_collect(
      shards, 0,
      [this](int s) {
        ShardObjects* p = peek(s);
        return p ? p->max.read_max() : 0;
      },
      kScanRetryRounds, view);
  // Fallbacks (both documented): unstable collect, or a resize published
  // mid-scan (the collected range is stale — newer slots were never read).
  // The digest step sits inside the scan's interval, so the scan stays
  // linearizable either way.
  if (!stable || shard_count() != shards) return global_max();
  return *std::max_element(view.begin(), view.end());
}

int64_t C2Store::counter_sum_scan() {
  int shards = shard_count();  // read once; see global_max_scan
  std::vector<int64_t> view;
  bool stable = stable_collect(
      shards, 0,
      [this](int s) {
        ShardObjects* p = peek(s);
        return p ? p->counter.read() : 0;
      },
      kScanRetryRounds, view);
  if (!stable || shard_count() != shards) return counter_sum();
  int64_t sum = 0;
  for (int64_t v : view) sum += v;
  return sum;
}

// Replays journal entries [r.cursor, tail) into the session-local per-shard
// accumulators. Deterministic: entry content is fixed at ticket time, so every
// replayer that reaches `tail` computes the same vectors regardless of how its
// cursor got there — which is what makes two same-tail snapshots identical and
// the FAA(0) tail read a legitimate linearization point. Bucket indices are
// INITIAL-mask for every entry kind (the snapshot facet is epoch-independent),
// so no entry can ever index outside the fixed accumulator vectors.
void C2Store::replay_journal(detail::SnapReplay& r, int64_t tail) {
  for (int64_t t = r.cursor; t < tail; ++t) {
    rt::KeyedVersionDigest::EntryView e = journal_.entry(t);
    switch (e.kind) {
      case rt::KeyedVersionDigest::Kind::kCounterInc:
        r.ctr_net[static_cast<size_t>(e.shard_a)] += e.v;
        r.total_incs += e.v;
        break;
      case rt::KeyedVersionDigest::Kind::kMaxWrite:
        r.max_seen[static_cast<size_t>(e.shard_a)] =
            std::max(r.max_seen[static_cast<size_t>(e.shard_a)], e.v);
        break;
      case rt::KeyedVersionDigest::Kind::kTransfer:
        r.ctr_net[static_cast<size_t>(e.shard_a)] -= e.v;
        r.ctr_net[static_cast<size_t>(e.shard_b)] += e.v;
        break;
      case rt::KeyedVersionDigest::Kind::kResize:
        // Informational marker (the new slot count in v) — the snapshot facet
        // buckets under the initial mask forever, so there is nothing to fold.
        break;
    }
  }
  r.cursor = tail;
}

int C2Store::initialized_shards() const {
  int count = 0;
  for (int s = 0; s < shard_count(); ++s) {
    if (peek(s)) ++count;
  }
  return count;
}

tel::MetricsSnapshot C2Store::metrics_snapshot() const {
  // Telemetry core first (the strongly linearizable ops-total digest read
  // plus the racy lane scans), then the session-layer counters the registry
  // and handoff queue already expose.
  tel::MetricsSnapshot s = tel_.snapshot(cfg_.max_threads, shard_count());
  s.lane_tickets = lane_tickets_issued();
  s.handoff_enqueued = lane_handoff_enqueued();
  s.handoff_deliveries = lane_handoff_deliveries();
  s.handoff_parks = lane_handoff_parks();
  s.handoff_revocations = lane_handoff_revocations();
  for (int lane = 0; lane < cfg_.max_threads; ++lane) {
    s.lane_counter_adds += lane_counter_adds(lane);
  }
  return s;
}

}  // namespace c2sl::svc
