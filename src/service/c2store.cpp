#include "service/c2store.h"

#include <algorithm>
#include <vector>

#include "telemetry/export.h"
#include "util/assert.h"

namespace c2sl::svc {

// Runs in the init list, before any member construction: every config error
// surfaces here with a service-level message, and ShardObjects construction
// below can no longer throw for config reasons (only bad_alloc remains).
const C2StoreConfig& C2Store::validate(const C2StoreConfig& cfg) {
  C2SL_CHECK(cfg.max_threads >= 1, "need at least one session lane");
  C2SL_CHECK(cfg.max_value >= 1, "max_value must be at least 1");
  C2SL_CHECK(cfg.tas_max_resets >= 0, "tas_max_resets must be non-negative");
  C2SL_CHECK(static_cast<int64_t>(cfg.max_threads) * cfg.max_value <= 63,
             "max_threads * max_value must fit in 63 bits");
  C2SL_CHECK(static_cast<int64_t>(cfg.max_threads) * (cfg.tas_max_resets + 1) <= 63,
             "max_threads * (tas_max_resets + 1) must fit in 63 bits");
  return cfg;
}

C2Store::C2Store(const C2StoreConfig& cfg)
    : cfg_(validate(cfg)),
      router_(cfg.shards),
      slots_(std::make_unique<ShardSlot[]>(static_cast<size_t>(cfg.shards))),
      lanes_(cfg.max_threads),
      digest_(cfg.max_threads, cfg.max_value) {
  // Route assert failures through this store's flight recorder (last store
  // constructed wins the slot; a no-op under C2SL_TELEMETRY=0).
  tel::install_flight_dump_on_assert(&tel_, cfg_.max_threads);
}

C2Store::~C2Store() {
  tel::uninstall_flight_dump_on_assert(&tel_);
  for (int s = 0; s < router_.shard_count(); ++s) {
    // c2sl-atomic: load relaxed — destructor runs single-threaded by contract
    delete slots_[static_cast<size_t>(s)].objs.load(std::memory_order_relaxed);
  }
}

C2Session C2Store::open_session() {
  // Blocks while all lanes are held: the registry parks this caller on its
  // handoff queue and a closing session hands its lane over directly. The
  // timer measures that blocking window (the wait-time-spread metric rides
  // on the per-lane open_wait histograms this feeds).
  tel::OpenTimer timer;
  int lane = lanes_.acquire_blocking();
  tel_.record_open_wait(tel_.lane(lane), timer.elapsed_ns());
  return C2Session(this, lane);
}

C2Session C2Store::try_open_session() {
  int lane = lanes_.try_acquire();
  if (lane == LaneRegistry::kNone) return C2Session();
  tel_.record_open_wait(tel_.lane(lane), 0);  // non-blocking: zero wait
  return C2Session(this, lane);
}

C2Session C2Store::open_session_for(std::chrono::nanoseconds timeout) {
  tel::OpenTimer timer;
  int lane = lanes_.acquire_for(timeout);
  if (lane == LaneRegistry::kNone) return C2Session();
  tel_.record_open_wait(tel_.lane(lane), timer.elapsed_ns());
  return C2Session(this, lane);
}

ShardObjects& C2Store::shard(int s) {
  ShardSlot& slot = slots_[static_cast<size_t>(s)];
  // c2sl-atomic: load acquire — publication read; a non-null pointer carries
  // visibility of the constructed ShardObjects behind it
  ShardObjects* p = slot.objs.load(std::memory_order_acquire);
  if (p) return *p;
  if (slot.claim.test_and_set() == 0) {
    // We won the readable test&set: construct and publish. The publication is
    // a plain register write (consensus number 1) — still no CAS. The config
    // was validated up front, so only allocation failure can throw here; the
    // poison flag turns that into an error for the waiters instead of a
    // permanent spin (the one-shot claim is already consumed).
    try {
      p = new ShardObjects(cfg_);
    } catch (...) {
      // c2sl-atomic: store seq_cst — cold failure flag; cross-checked with the
      // slot pointer by spinning losers, so it stays at the strongest order
      slot.poisoned.store(true, std::memory_order_seq_cst);
      throw;
    }
    // c2sl-atomic: store release — the publish: the constructed ShardObjects
    // becomes visible to every acquire load of the slot pointer
    slot.objs.store(p, std::memory_order_release);
    C2SL_TEL_EVENT(tel::TelEvent::kShardInit);
    return *p;
  }
  // Another thread won the claim; its publication is at most a few stores
  // away, so losers spin on the pointer.
  // c2sl-atomic: load acquire — loser spin on the publish; pairs with the
  // release store above
  while (!(p = slot.objs.load(std::memory_order_acquire))) {
    // c2sl-atomic: load seq_cst — cold poison check inside the spin
    C2SL_CHECK(!slot.poisoned.load(std::memory_order_seq_cst),
               "shard initialization failed in another thread");
  }
  return *p;
}

// Double-collect over a monotone per-shard read. Uninitialised shards read as
// `empty`; a shard can only transition uninitialised → initialised, and the
// per-shard values only grow, so two identical consecutive collects certify a
// single logical instant at which all collected values were simultaneously
// current (the read linearizes there). Returns true when a stable pair was
// found within `max_rounds` collects; `out` then holds the certified view.
// An unbounded loop here can livelock under sustained writes (one landing
// write per round is enough to invalidate every collect forever) — callers
// fall back to their digest read when stabilisation fails, which keeps the
// scan aggregates bounded AND linearizable (the digest step sits inside the
// scan's interval).
namespace {
template <typename ReadShard>
bool stable_collect(int shards, int64_t empty, const ReadShard& read,
                    int max_rounds, std::vector<int64_t>& out) {
  // Two buffers, swapped between rounds: no allocations after the first
  // round even when write contention forces many rescans.
  std::vector<int64_t> prev(static_cast<size_t>(shards), empty - 1);
  std::vector<int64_t> curr(static_cast<size_t>(shards));
  for (int round = 0; round < max_rounds; ++round) {
    for (int s = 0; s < shards; ++s) curr[static_cast<size_t>(s)] = read(s);
    if (curr == prev) {
      out = std::move(curr);
      return true;
    }
    std::swap(prev, curr);
  }
  return false;
}
}  // namespace

int64_t C2Store::global_max() { return digest_.read_max(); }

int64_t C2Store::counter_sum() { return sum_digest_.read(); }

int64_t C2Store::global_max_scan() {
  std::vector<int64_t> view;
  bool stable = stable_collect(
      router_.shard_count(), 0,
      [this](int s) {
        ShardObjects* p = peek(s);
        return p ? p->max.read_max() : 0;
      },
      kScanRetryRounds, view);
  if (!stable) return global_max();  // documented fallback: the digest read
  return *std::max_element(view.begin(), view.end());
}

int64_t C2Store::counter_sum_scan() {
  std::vector<int64_t> view;
  bool stable = stable_collect(
      router_.shard_count(), 0,
      [this](int s) {
        ShardObjects* p = peek(s);
        return p ? p->counter.read() : 0;
      },
      kScanRetryRounds, view);
  if (!stable) return counter_sum();  // documented fallback: the digest read
  int64_t sum = 0;
  for (int64_t v : view) sum += v;
  return sum;
}

// Replays journal entries [r.cursor, tail) into the session-local per-shard
// accumulators. Deterministic: entry content is fixed at ticket time, so every
// replayer that reaches `tail` computes the same vectors regardless of how its
// cursor got there — which is what makes two same-tail snapshots identical and
// the FAA(0) tail read a legitimate linearization point.
void C2Store::replay_journal(detail::SnapReplay& r, int64_t tail) {
  for (int64_t t = r.cursor; t < tail; ++t) {
    rt::KeyedVersionDigest::EntryView e = journal_.entry(t);
    switch (e.kind) {
      case rt::KeyedVersionDigest::Kind::kCounterInc:
        r.ctr_net[static_cast<size_t>(e.shard_a)] += e.v;
        break;
      case rt::KeyedVersionDigest::Kind::kMaxWrite:
        r.max_seen[static_cast<size_t>(e.shard_a)] =
            std::max(r.max_seen[static_cast<size_t>(e.shard_a)], e.v);
        break;
      case rt::KeyedVersionDigest::Kind::kTransfer:
        r.ctr_net[static_cast<size_t>(e.shard_a)] -= e.v;
        r.ctr_net[static_cast<size_t>(e.shard_b)] += e.v;
        break;
    }
  }
  r.cursor = tail;
}

int C2Store::initialized_shards() const {
  int count = 0;
  for (int s = 0; s < router_.shard_count(); ++s) {
    if (peek(s)) ++count;
  }
  return count;
}

tel::MetricsSnapshot C2Store::metrics_snapshot() const {
  // Telemetry core first (the strongly linearizable ops-total digest read
  // plus the racy lane scans), then the session-layer counters the registry
  // and handoff queue already expose.
  tel::MetricsSnapshot s = tel_.snapshot(cfg_.max_threads);
  s.lane_tickets = lane_tickets_issued();
  s.handoff_enqueued = lane_handoff_enqueued();
  s.handoff_deliveries = lane_handoff_deliveries();
  s.handoff_parks = lane_handoff_parks();
  s.handoff_revocations = lane_handoff_revocations();
  for (int lane = 0; lane < cfg_.max_threads; ++lane) {
    s.lane_counter_adds += lane_counter_adds(lane);
  }
  return s;
}

}  // namespace c2sl::svc
