// C2Store — a sharded, strongly-linearizable object service over the native
// (std::atomic) constructions of the paper, using NO primitive stronger than
// consensus number 2: exchange (test&set / swap) and fetch&add only; there is
// no compare&swap anywhere in the service plumbing either (grep-enforced by
// tests/c2store_test.cpp and machine-checked by tools/atomics_audit.py).
//
// Public surface (the session redesign):
//
//   C2Store store(cfg);
//   C2Session s = store.open_session();      // RAII lane acquisition
//   MaxRef score = s.max("user:1042/score"); // hash ONCE, route per epoch
//   score.write(5);                          // cached-pointer op from here on
//   s.counter("hits").inc();
//   s.resize(64);                            // grow the store, live (PR 9)
//
// All lane-indexed constructions (max-register unary lanes, TAS reset
// writers) need a caller lane below cfg.max_threads. That lane is no longer a
// raw `int tid` parameter on every call — a C2Session acquires one from the
// LaneRegistry (F&I ticket for first-acquire, NativeSet put/take to recycle
// freed lanes; see service/lane_registry.h) and releases it on destruction,
// so dynamically joining and leaving threads share a bounded lane space
// without any call-site bookkeeping. Recycling is unbounded (the registry's
// free set rides on the segmented arrays), so a store supports arbitrarily
// many session opens/closes over its lifetime. Under full-lane contention,
// open_session() BLOCKS on the registry's consensus-2 handoff queue
// (runtime/handoff_queue.h): a closing session hands its lane directly to the
// oldest waiter, FIFO-fair, instead of racing opportunistic reopeners.
//
// ROUTING EPOCHS (PR 9). The shard count is a starting hint, not a capacity
// commitment: C2Session::resize(new_shards) grows the store under live
// traffic. Routing state lives on a RoutingEpoch spine
// (runtime/routing_epoch.h): each epoch is a wider power-of-two table, a
// resize claims the next epoch cell with a one-shot exchange, migrates the
// per-shard state it moves by idempotent monotone replay (write_max / counter
// re-add / TAS set-ness merge), then register-publishes the epoch. Because
// masks nest (a key either keeps its slot or moves to a fresh one >= the old
// count), old slots remain valid lower bounds and the replay needs no
// "remove" — the per-key objects are monotone, which is the whole trick.
//
// Typed key-bound refs — MaxRef / CounterRef / TasRef / SetRef — are the
// per-key surface. Binding hashes the key ONCE and caches the routed slot
// pointer, stamped with the routing epoch it routed under. The hot path
// revalidates with one RELAXED stamp load (advisory: a stale read only delays
// a rebind, never breaks correctness — see the Dekker note below) and rebinds
// only on an actual epoch publish, so the steady-state cost stays the PR 2
// cached-pointer path: no re-hash, no re-route. Mutating ops additionally
// end with one seq_cst stamp recheck — the writer half of a Dekker handshake
// with the resizer's install store: if a migration raced the op, the op
// re-applies itself under the newest mask (idempotent for the same monotone
// reason the migration replay is), so a write can never fall between the
// migration's replay and the new epoch's publish. SetRef does NOT follow
// epochs: take() is not monotone, so set routing is pinned to the INITIAL
// mask forever (documented below).
//
// What survives a resize, exactly: the monotone VALUE facets — max reads,
// counter counts (lower bounds; slot-scan sums over-approximate after a
// resize because replay duplicates in-window increments, while counter_sum()
// stays exact), TAS set-ness — never regress across the cut, and the
// epoch hand-off on the value facets is checker-verified strongly
// linearizable (SimRoutingEpoch; the serve-before-replay variant is pinned
// refuted). DECISION outputs — TAS winner identity, fetch&increment tickets —
// are per-epoch, exactly like the documented key-collision semantics: a
// resize changes which slot a key NAMES, so uniqueness tokens from different
// epochs of a key are tokens of different slot objects. Callers needing a
// cross-resize unique decision should serialise resizes with those decisions
// (the same advisory contract as TAS resets).
//
// Shape: cache-line-padded slots on a lazily-grown SegmentedArray spine; a
// key (int or string) is hashed onto a slot (lock-striping style — keys that
// collide share the slot's objects, which is the documented semantics: the
// store serves `shards` independent instances of each object type and keys
// *name* them through hashing). Each slot lazily materialises one instance of
// each shardable object type on first touch:
//   * NativeMaxRegister64  (Thm 1)  — MaxRef
//   * NativeFetchIncrement (Thm 9)  — CounterRef
//   * NativeMultishotTAS   (Thm 6)  — TasRef
//   * NativeSet            (Thm 10) — SetRef
//
// Lazy initialisation is guarded by the paper's own readable test&set (Thm 5):
// the winner of the slot's test&set constructs the objects and publishes them
// through an atomic pointer store (a plain register write — consensus number
// 1); losers spin on the publication. No CAS, no mutex. Binding a ref does
// NOT materialise the shard — reads through an unmaterialised ref return the
// initial values; the first mutating op claims the slot.
//
// Per-key operations are strongly linearizable by locality: each key's ops run
// on one strongly-linearizable shard instance, and strong linearizability
// composes (tests/service_sim_test.cpp checks per-shard facets through the
// real routing layer on full execution trees). Lane acquire/release is itself
// strongly linearizable (tests/lane_registry_test.cpp, checker-verified).
//
// Aggregates come in two provably different flavours:
//   * global_max() and counter_sum() read store-level DIGESTS that every
//     write also updates — global_max an extra NativeMaxRegister64 (every
//     MaxRef::write lands there too), counter_sum a CounterSumDigest (every
//     CounterRef::inc also fetch_adds the digest word) — so each global read
//     is a single fetch&add(0): wait-free and strongly linearizable, exactly
//     the paper's "pack it into one FAA word" move (§3.1/§3.2). The digests
//     are keyed by LANE, not by slot, so they are EPOCH-INDEPENDENT: a
//     resize cannot tear them, and they stay exact across any number of
//     migrations (the in-window slot duplication never reaches them).
//   * global_max_scan() / counter_sum_scan() scan the per-shard read paths
//     with a double-collect stabilisation loop (repeat until two consecutive
//     collects of the monotone per-shard values coincide). A naive one-pass
//     scan is not even linearizable — a reader can miss an earlier, larger
//     write on a shard it already passed while observing a later, smaller
//     write on a shard still ahead of it. The double-collect IS linearizable,
//     but it is NOT strongly linearizable: the read's linearization point
//     (the stable pair) is determined by future schedule steps, so it is not
//     prefix-closed. The bounded model checker refutes it mechanically
//     (tests/service_sim_test.cpp pins both refutations), which is precisely
//     why the digests exist. The scans are kept (and benchmarked, see
//     bench_c2store --sum-impl) as the ablation baseline; they retry at most
//     kScanRetryRounds collects and then fall back to the corresponding
//     digest read — still linearizable (the digest step is inside the scan's
//     interval), and bounded instead of livelocking under sustained writes.
//     A scan that observes a grown shard count also falls back to its digest
//     (the collected range is stale); counter_sum_scan over-approximates
//     after a resize (replay duplication) — the digest is the exact read.
//
// Between the per-key ops and the whole-store aggregates sits the MULTI-KEY
// surface: session.snapshot(keys) returns a consistent vector over chosen
// counter/max keys, strongly linearizable as ONE operation, and
// session.transfer(a, b, d) atomically moves d between two counter keys'
// ledger balances. Both ride the store's write journal
// (runtime/keyed_version_digest.h): every keyed write appends one entry whose
// tail fetch&add is its linearization point, and a snapshot linearizes at a
// single tail FAA(0), then deterministically replays the journal prefix into
// session-local per-shard accumulators. The journal facet is EPOCH-
// INDEPENDENT BY CONSTRUCTION: entries and snapshot components are bucketed
// under the INITIAL mask forever, so the snapshot/transfer story never reads
// routing state at all — resizes appear in the journal only as informational
// kResize markers. (Consequence: snapshot key-collision classes are fixed at
// cfg.initial_shards; two keys that a resize separates on the slot facet keep
// sharing a snapshot bucket.) Counter keys snapshot to their LEDGER balance
// (#incs + net transfers — transfers exist only on this facet, since the
// Thm 9 counter is inc-only); max keys snapshot to the running max of
// journaled writes. At quiescence with no resizes: snapshot(counter k) ==
// counter_read(k) + net transfers into k's bucket, and snapshot(max k) ==
// max_read(k) (tests/snapshot_service_test.cpp pins both identities).
// Snapshots never materialise shards — an untouched key reads as 0.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/counter_sum_digest.h"
#include "runtime/keyed_version_digest.h"
#include "runtime/native_tas_family.h"
#include "runtime/routing_epoch.h"
#include "runtime/segmented_array.h"
#include "service/lane_registry.h"
#include "service/shard_router.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace c2sl::svc {

/// No capacity knobs: counters, sets, lane recycling AND (since PR 9) the
/// shard table itself are backed by segmented, lazily-grown arrays
/// (runtime/segmented_array.h) and are unbounded — a store and its sessions
/// can run indefinitely, and resize() grows the shard count under live
/// traffic. The two remaining numeric bounds are 63-bit lane-PACKING limits
/// of the fetch&add max registers (§6 width discussion), not array
/// capacities.
// The pragma pair suppresses -Wdeprecated-declarations INSIDE the struct
// only: GCC attributes the implicit constructors' "use" of the deprecated
// member's default initializer to the struct itself, so merely constructing
// a config would otherwise warn. Call sites that touch .shards still warn.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
struct C2StoreConfig {
  /// Sentinel for the deprecated `shards` alias below.
  static constexpr int kShardsUnset = -1;

  int initial_shards = 16;  ///< power of two; a starting hint — see resize()
  int max_threads = 8;      ///< maximum CONCURRENT sessions (lane owners)

  /// Per-shard max register bound; max_threads * max_value must fit in 63 bits.
  int64_t max_value = 7;
  /// Per-shard multi-shot TAS reset budget; max_threads * (tas_max_resets + 1)
  /// must fit in 63 bits.
  int64_t tas_max_resets = 6;

  /// Deprecated PR 1 name for `initial_shards`, kept one release for source
  /// compatibility (see README "Migrating to resizable stores"). When set
  /// (!= kShardsUnset) it wins over initial_shards.
  [[deprecated("use initial_shards; the count is a starting hint now")]]
  int shards = kShardsUnset;
};
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Typed outcome of TasRef::reset(). The budget gate is advisory under
/// concurrency: callers that might consume the LAST reset generation
/// concurrently must serialize resets externally.
enum class ResetResult {
  kOk,          ///< the TAS was recycled (a reset generation was consumed)
  kBudgetSpent  ///< the shard's reset budget is exhausted; nothing was done
};

/// Outcome of a resize (re-exported from the runtime spine): kInstalled means
/// THIS caller migrated and published the new epoch.
using ResizeStatus = rt::RoutingEpoch::ResizeStatus;

class C2Store;
class C2Session;

/// One shard slot's lazily-materialised objects. Internal layout — public at
/// namespace scope only so the typed refs can inline their cached-pointer hot
/// paths; never construct or hold one directly.
struct ShardObjects {
  rt::NativeMaxRegister64 max;
  rt::NativeFetchIncrement counter;
  rt::NativeMultishotTAS tas;
  rt::NativeSet set;

  explicit ShardObjects(const C2StoreConfig& c)
      : max(c.max_threads, c.max_value), tas(c.max_threads, c.tas_max_resets) {}
};

namespace detail {
/// Common state of the typed key-bound refs: the key is hashed ONCE at bind
/// time; the routed slot and its object pointer are cached, stamped with the
/// routing epoch they were computed under. Ops revalidate the stamp with one
/// relaxed load (rebind only on an epoch publish — re-route without
/// re-hashing), and mutating ops settle with a seq_cst stamp recheck (the
/// Dekker handshake with a concurrent resize; see settle()). A ref is a
/// borrowed view: it must not outlive its session (the lane it carries is
/// recycled when the session closes) or the store.
class ShardRef {
 public:
  int shard() const { return shard_; }

 protected:
  inline ShardRef(C2Store* store, int lane, uint64_t hash,
                  tel::LaneTelemetry* tel, tel::LaneTrace* trc);
  /// Tag ctor for refs whose routing NEVER follows epochs (SetRef: take() is
  /// not monotone, so set state cannot be migrated — pinned to the initial
  /// mask, documented in the header).
  struct PinInitialRouting {};
  inline ShardRef(C2Store* store, int lane, uint64_t hash,
                  tel::LaneTelemetry* tel, tel::LaneTrace* trc,
                  PinInitialRouting);

  /// Cached objects, or nullptr while the shard is unmaterialised.
  inline ShardObjects* resolved();
  /// Cached objects, materialising the shard (readable-TAS claim) on demand.
  inline ShardObjects& ensure();
  /// Epoch revalidation, the hot-path prefix of every epoch-following op: one
  /// RELAXED stamp load against the cached epoch; on mismatch, re-route from
  /// the cached hash under the current published mask (a seq_cst stamp read —
  /// cold, once per resize per ref). The relaxed load is advisory: if it is
  /// stale the op simply runs against the older slot and settle() repairs
  /// (writers) or the read linearizes before the publish (readers — any
  /// happens-before edge from a newer-epoch write forces a fresh stamp by
  /// coherence, so a genuinely-completed-before write is never missed).
  inline void revalidate();
  /// The writer-side Dekker recheck, run AFTER the primary slot application:
  /// one seq_cst stamp load; while it exposes an epoch newer than the last
  /// one applied under, re-apply the op (idempotent monotone merge) to the
  /// key's slot under the newest mask and re-load. In the seq_cst total
  /// order either the migration's replay read captured the primary write, or
  /// this recheck sees the install and re-applies — a write can never fall
  /// through a migration (docs/PROOFS.md works the two cases).
  template <typename Apply>
  inline void settle(const Apply& apply);

  C2Store* store_;
  /// The owning session's lane-local telemetry block (single-writer — the
  /// session's thread), cached at bind time like the shard slot. Null only in
  /// the C2SL_TELEMETRY=0 flavour, where tel::OpScope ignores it.
  tel::LaneTelemetry* tel_;
  /// The owning session's lane-local trace log (single-writer, same
  /// discipline). Null only in the C2SL_TRACE=0 flavour, where
  /// tel::TraceScope ignores it.
  tel::LaneTrace* trc_;
  ShardObjects* objs_ = nullptr;
  uint64_t hash_;   ///< hashed once at bind; rebinds re-mask, never re-hash
  int64_t epoch_;   ///< routing epoch shard_ was computed under
  int lane_;
  int shard_;
};
}  // namespace detail

/// Key-bound max register (Thm 1 lanes under the hood).
class MaxRef : public detail::ShardRef {
 public:
  inline void write(int64_t v);
  inline int64_t read();

 private:
  friend class C2Session;
  using ShardRef::ShardRef;
};

/// Key-bound readable fetch&increment counter (Thm 9).
class CounterRef : public detail::ShardRef {
 public:
  inline int64_t inc();  ///< returns the pre-increment value
  inline int64_t read();

 private:
  friend class C2Session;
  using ShardRef::ShardRef;
};

/// Key-bound multi-shot readable test&set (Thm 6).
class TasRef : public detail::ShardRef {
 public:
  inline int64_t test_and_set();  ///< 0 to the generation's winner, else 1
  inline int64_t read();
  inline ResetResult reset();

 private:
  friend class C2Session;
  using ShardRef::ShardRef;
};

/// Key-bound unordered set (Thm 10, Algorithm 2). Routing is PINNED to the
/// initial mask: take() is not monotone, so set contents cannot be migrated
/// by idempotent replay — a resize never changes which slot a set key names.
class SetRef : public detail::ShardRef {
 public:
  inline void put(int64_t item);
  inline int64_t take();  ///< taken item or C2Store::kEmpty

 private:
  friend class C2Session;
  using ShardRef::ShardRef;
};

/// Key classes a snapshot component can observe. Counter keys report the
/// LEDGER balance (incs + net transfers); max keys report the running max of
/// journaled writes (== the shard max register at quiescence, absent resizes).
enum class SnapKind : int { kCounter = 0, kMax = 1 };

/// One snapshot component: a typed key. Build with SnapKey::counter /
/// SnapKey::max. Keys collapse to buckets under the INITIAL mask — the
/// snapshot facet is epoch-independent, so its collision classes never change
/// (keys that hash together under cfg.initial_shards share a component).
struct SnapKey {
  SnapKind kind;
  uint64_t key;
  static SnapKey counter(uint64_t k) { return {SnapKind::kCounter, k}; }
  static SnapKey max(uint64_t k) { return {SnapKind::kMax, k}; }
};

namespace detail {
/// Session-local journal replay state: the cursor (journal prefix already
/// folded in) and the per-bucket accumulators it folded into. O(buckets), not
/// O(journal): replay cost is paid once per journal entry per session, no
/// matter how many snapshots are taken. A fresh session starts at cursor 0
/// and replays the full journal on its first snapshot (the close/reopen
/// continuity test rides on exactly that). Bucket space is the INITIAL shard
/// count, fixed for the store's lifetime (the journal facet is
/// epoch-independent; kResize markers are informational).
struct SnapReplay {
  explicit SnapReplay(int buckets)
      : ctr_net(static_cast<size_t>(buckets), 0),
        max_seen(static_cast<size_t>(buckets), 0) {}
  int64_t cursor = 0;
  std::vector<int64_t> ctr_net;   ///< per-bucket ledger balance
  std::vector<int64_t> max_seen;  ///< per-bucket max of journaled writes
  /// Total journaled increments below cursor (transfers net zero, so this is
  /// also the sum of all ledger balances) — the snapshot's traced result.
  int64_t total_incs = 0;
};
}  // namespace detail

/// Bound multi-key snapshot over the write journal
/// (runtime/keyed_version_digest.h). Binding routes every key ONCE under the
/// initial mask (duplicates allowed, order preserved; the empty list is valid
/// and reads as the empty vector). read() is strongly linearizable as ONE
/// operation: it linearizes at its single tail FAA(0) and deterministically
/// replays the journal prefix below it — it never reads routing state, so it
/// is trivially resize-proof (no torn table reads are even expressible).
/// Reads never materialise shards — an untouched key reads as 0 and
/// initialized_shards() is unchanged. A borrowed view like the typed refs: it
/// must not outlive its session.
class SnapshotRef {
 public:
  /// One value per bound key, consistent as of a single linearization point.
  inline std::vector<int64_t> read();
  int size() const { return static_cast<int>(slots_.size()); }

 private:
  friend class C2Session;
  SnapshotRef(C2Store* store, detail::SnapReplay* replay,
              tel::LaneTelemetry* tel, tel::LaneTrace* trc,
              std::vector<std::pair<SnapKind, int>> slots)
      : store_(store),
        replay_(replay),
        tel_(tel),
        trc_(trc),
        slots_(std::move(slots)) {}

  C2Store* store_;
  detail::SnapReplay* replay_;  ///< the owning session's replay state
  tel::LaneTelemetry* tel_;
  tel::LaneTrace* trc_;
  std::vector<std::pair<SnapKind, int>> slots_;  ///< bound (kind, bucket)
};

/// RAII lane handle and the store's entire per-key surface. Obtained from
/// C2Store::open_session(); the lane is released back to the registry on
/// destruction (or close()). Move-only. A session is a single-client handle:
/// one session must not be used from two threads at once (its lane indexes
/// per-thread state in the underlying constructions) — open one per worker.
class C2Session {
 public:
  C2Session() = default;  ///< invalid (valid() == false) until move-assigned
  C2Session(C2Session&& o) noexcept
      : store_(o.store_),
        tel_lane_(o.tel_lane_),
        trc_lane_(o.trc_lane_),
        snap_(std::move(o.snap_)),
        lane_(o.lane_) {
    o.store_ = nullptr;
    o.tel_lane_ = nullptr;
    o.trc_lane_ = nullptr;
    o.lane_ = -1;
  }
  C2Session& operator=(C2Session&& o) noexcept {
    if (this != &o) {
      // Destruction semantics for the overwritten session: like ~C2Session,
      // swallow the (allocation-failure-only) close error paths rather than
      // throw from noexcept.
      try {
        close();
      } catch (...) {
      }
      store_ = o.store_;
      tel_lane_ = o.tel_lane_;
      trc_lane_ = o.trc_lane_;
      snap_ = std::move(o.snap_);
      lane_ = o.lane_;
      o.store_ = nullptr;
      o.tel_lane_ = nullptr;
      o.trc_lane_ = nullptr;
      o.lane_ = -1;
    }
    return *this;
  }
  C2Session(const C2Session&) = delete;
  C2Session& operator=(const C2Session&) = delete;
  ~C2Session() {
    // A destructor must not throw. Lane recycling is unbounded, so the only
    // conceivable close() failure left is allocation failure inside the
    // recycle set's segment growth — swallowed here, observable via an
    // explicit close() instead.
    try {
      close();
    } catch (...) {
    }
  }

  /// Releases the lane early; idempotent. Invalidates every ref bound here.
  inline void close();
  bool valid() const { return store_ != nullptr; }
  /// The acquired lane (< cfg.max_threads); exposed for diagnostics only.
  int lane() const { return lane_; }

  // --- typed key-bound refs: hash once, then cached-pointer ops ---
  inline MaxRef max(uint64_t key);
  inline MaxRef max(std::string_view key);
  inline CounterRef counter(uint64_t key);
  inline CounterRef counter(std::string_view key);
  inline TasRef tas(uint64_t key);
  inline TasRef tas(std::string_view key);
  inline SetRef set(uint64_t key);
  inline SetRef set(std::string_view key);

  // --- one-shot conveniences: bind + op per call (per-op routing cost) ---
  void max_write(uint64_t key, int64_t v) { max(key).write(v); }
  void max_write(std::string_view key, int64_t v) { max(key).write(v); }
  int64_t max_read(uint64_t key) { return max(key).read(); }
  int64_t max_read(std::string_view key) { return max(key).read(); }
  int64_t counter_inc(uint64_t key) { return counter(key).inc(); }
  int64_t counter_inc(std::string_view key) { return counter(key).inc(); }
  int64_t counter_read(uint64_t key) { return counter(key).read(); }
  int64_t counter_read(std::string_view key) { return counter(key).read(); }
  int64_t test_and_set(uint64_t key) { return tas(key).test_and_set(); }
  int64_t test_and_set(std::string_view key) { return tas(key).test_and_set(); }
  int64_t tas_read(uint64_t key) { return tas(key).read(); }
  int64_t tas_read(std::string_view key) { return tas(key).read(); }
  ResetResult tas_reset(uint64_t key) { return tas(key).reset(); }
  ResetResult tas_reset(std::string_view key) { return tas(key).reset(); }
  void set_put(uint64_t key, int64_t item) { set(key).put(item); }
  void set_put(std::string_view key, int64_t item) { set(key).put(item); }
  int64_t set_take(uint64_t key) { return set(key).take(); }
  int64_t set_take(std::string_view key) { return set(key).take(); }

  // --- online resizing (PR 9) ---
  /// Grows the store to `new_shards` slots (power of two), live: claims the
  /// next routing epoch, migrates moved per-shard state by idempotent
  /// monotone replay ON THIS SESSION'S LANE, journals a kResize marker, then
  /// publishes. Concurrent traffic keeps running throughout (the dual-write
  /// Dekker in the refs covers the window). Returns kInstalled when this call
  /// did the migration; kNoop when new_shards <= the current count;
  /// kInFlight when another resize holds the epoch claim (including an
  /// ABANDONED claim — a resizer that died mid-migration wedges future
  /// resizes, never the data path); kPoisoned when an earlier migration
  /// threw. Uses this session's lane because migration replays write_max /
  /// test&set as a lane-indexed writer.
  inline ResizeStatus resize(int new_shards);

  // --- multi-key snapshots and transfers (journal-backed; see SnapshotRef) ---
  /// Binds a reusable snapshot over `keys` (route once, snapshot many).
  inline SnapshotRef snapshot_ref(const std::vector<SnapKey>& keys);
  /// One-shot bind + read (the per-op routing cost, like the one-shot refs).
  inline std::vector<int64_t> snapshot(const std::vector<SnapKey>& keys);
  /// All-counters convenience: one ledger balance per key.
  inline std::vector<int64_t> snapshot_counters(const std::vector<uint64_t>& keys);
  /// Atomically moves `amount` from `from_key`'s to `to_key`'s ledger balance
  /// — ONE journal entry, so every snapshot sees either both sides or
  /// neither (the transfer_audit conservation invariant). Balances may go
  /// negative; a negative amount transfers the other way. Visible only on the
  /// snapshot facet (the Thm 9 counter is inc-only). Returns the journal
  /// ticket (diagnostics).
  inline int64_t transfer(uint64_t from_key, uint64_t to_key, int64_t amount);
  inline int64_t transfer(std::string_view from_key, std::string_view to_key,
                          int64_t amount);

  // --- aggregates, forwarded to the store ---
  inline int64_t global_max();
  inline int64_t global_max_scan();
  inline int64_t counter_sum();
  inline int64_t counter_sum_scan();

 private:
  friend class C2Store;
  inline C2Session(C2Store* store, int lane);  // defined after C2Store

  /// Lazily-created replay state shared by every SnapshotRef bound here.
  inline detail::SnapReplay& snap_state();

  C2Store* store_ = nullptr;
  tel::LaneTelemetry* tel_lane_ = nullptr;  ///< cached lane telemetry block
  tel::LaneTrace* trc_lane_ = nullptr;      ///< cached lane trace log
  std::unique_ptr<detail::SnapReplay> snap_;
  int lane_ = -1;
};

class C2Store {
 public:
  static constexpr int64_t kEmpty = rt::NativeSet::kEmpty;

  explicit C2Store(const C2StoreConfig& cfg);
  ~C2Store();
  C2Store(const C2Store&) = delete;
  C2Store& operator=(const C2Store&) = delete;

  // --- sessions (the only door to the per-key surface) ---
  /// Acquires a lane, BLOCKING while all cfg.max_threads lanes are held: the
  /// caller enqueues on the registry's consensus-2 handoff queue and parks
  /// until a closing session hands its lane over directly — FIFO-fair under
  /// full-lane contention, no busy-spinning and no caller-side retry loop
  /// (service/lane_registry.h, runtime/handoff_queue.h). Never fails for
  /// exhaustion; use try_open_session() / open_session_for() to bound the
  /// wait. CAUTION — waiting replaces the old exhaustion error, so a caller
  /// that holds all cfg.max_threads sessions ITSELF (the misuse the retired
  /// PreconditionError used to catch) now self-deadlocks: it parks with no
  /// possible waker. Diagnose a suspect hang via lane_handoff_parks() /
  /// lane_handoff_enqueued(); callers that might over-hold should use
  /// open_session_for() instead.
  C2Session open_session();
  /// Like open_session() but returns an invalid session when no lane is free
  /// (never waits).
  C2Session try_open_session();
  /// Like open_session() but gives up after `timeout`, returning an invalid
  /// session. A lane handed over in the timeout's race window is kept (the
  /// session is valid) — lanes are never dropped.
  C2Session open_session_for(std::chrono::nanoseconds timeout);

  // --- online resizing (PR 9) ---
  /// Convenience wrapper around C2Session::resize: opens its own (blocking)
  /// session for the migration lane. Prefer the session method inside worker
  /// code — this one can block on lane exhaustion like open_session().
  ResizeStatus resize(int new_shards);
  /// TEST ONLY: claims the next epoch and abandons it without migrating or
  /// publishing — models a resizer killed mid-flight. The store keeps serving
  /// the published epoch; later resizes return kInFlight forever (the
  /// documented recovery contract, pinned by tests/resize_test.cpp).
  ResizeStatus debug_abandon_resize(int new_shards) {
    rt::RoutingEpoch::Claim c;
    return epochs_.try_begin(new_shards, c);
  }

  // --- aggregates ---
  /// Bound on double-collect retries in the *_scan aggregates: after this
  /// many collects without two consecutive ones coinciding, the scan falls
  /// back to the corresponding digest read (documented fallback — the scan
  /// stays linearizable and becomes bounded instead of livelocking under
  /// sustained writes; see tests/c2store_stress_test.cpp).
  static constexpr int kScanRetryRounds = 64;

  /// Digest read: one fetch&add(0); wait-free, strongly linearizable as its
  /// own facet, and epoch-independent (lane-keyed — exact across resizes).
  /// Cross-facet caveat: MaxRef::write updates the shard register BEFORE the
  /// digest, so a client that reads a value via MaxRef::read can briefly
  /// observe global_max() lagging behind it while the writer is between its
  /// two updates; each facet is individually consistent. The write order
  /// (shard first, digest never ahead of any shard) is pinned by
  /// tests/service_sim_test.cpp — reordering it fails loudly there.
  int64_t global_max();
  /// Sum digest read: one fetch&add(0) on the CounterSumDigest word —
  /// wait-free, strongly linearizable as its own facet (checker-verified via
  /// the sim twin), and epoch-independent (exact across resizes — the only
  /// exact whole-store count once a resize has duplicated in-window
  /// increments on the slot facet). Same cross-facet contract as
  /// global_max(): CounterRef::inc updates the shard counter BEFORE the
  /// digest, so the digest never leads any keyed counter read, and may
  /// briefly lag one (both directions pinned by tests/service_sim_test.cpp).
  int64_t counter_sum();
  /// Double-collect scans over per-shard read paths: linearizable, NOT
  /// strongly linearizable (pinned refutations in tests/service_sim_test).
  /// Retained as the measured ablation baseline (bench_c2store --sum-impl);
  /// bounded by kScanRetryRounds with a digest fallback, which also covers a
  /// shard count grown mid-scan. counter_sum_scan over-approximates after a
  /// resize (migration replay duplicates in-window increments across parent
  /// and child slots); counter_sum() is the exact read.
  int64_t global_max_scan();
  int64_t counter_sum_scan();

  // --- introspection ---
  /// Shard count of the newest PUBLISHED routing epoch (grows over time).
  int shard_count() const { return router_.shard_count(); }
  int initialized_shards() const;
  const C2StoreConfig& config() const { return cfg_; }
  int shard_of(uint64_t key) const { return router_.shard_of(key); }
  int shard_of(std::string_view key) const { return router_.shard_of(key); }
  /// The published routing epoch (0 until the first successful resize).
  int64_t routing_epoch() const { return epochs_.current_epoch(); }
  /// Fresh lane tickets issued so far (diagnostics).
  int64_t lane_tickets_issued() const { return lanes_.tickets_issued(); }
  /// Lanes handed directly from a closing session to a blocked open_session()
  /// (diagnostics; never touched the free set).
  int64_t lane_handoff_deliveries() const { return lanes_.handoff_deliveries(); }
  /// Times a blocked open_session() parked / had its slot revoked
  /// (diagnostics; the no-busy-spin stress bounds ride on these).
  int64_t lane_handoff_parks() const { return lanes_.handoff_parks(); }
  int64_t lane_handoff_revocations() const { return lanes_.handoff_revocations(); }
  int64_t lane_handoff_enqueued() const { return lanes_.handoff_enqueued(); }
  /// Counter adds contributed through `lane` (diagnostics; the sum digest's
  /// per-lane component — never on the counter_sum() read path).
  int64_t lane_counter_adds(int lane) const {
    return sum_digest_.lane_contribution(lane);
  }
  /// Journal tickets issued so far (diagnostics; may exceed the published
  /// prefix while deposits are in flight — see keyed_version_digest.h).
  int64_t journal_tickets() const { return journal_.tickets_issued(); }

  // --- telemetry (src/telemetry/; all of it compiles out under
  // --- C2SL_TELEMETRY=0) ---
  /// Full metrics snapshot: the strongly linearizable ops-total digest read,
  /// the racy per-lane counter/histogram scans, and the session-layer
  /// counters above — the c2sl-metrics-v1 payload (tel::to_json /
  /// tel::to_prometheus in telemetry/export.h).
  tel::MetricsSnapshot metrics_snapshot() const;
  /// The live telemetry root, for tel::dump_flight and tests. Read-only:
  /// writes belong to lane owners.
  const tel::StoreTelemetry& telemetry() const { return tel_; }

  // --- linearization-witness tracing (src/telemetry/trace.h; compiles out
  // --- under C2SL_TRACE=0) ---
  /// Drains every lane's trace log into a plain-data dump for
  /// tel::trace_to_json / tel::trace_to_chrome and tools/trace_audit.py.
  /// Safe against live writers (release/acquire publication per record);
  /// for a complete history, drain after sessions quiesce.
  tel::TraceDump trace_dump() const {
    return trace_.dump(cfg_.max_threads, cfg_.initial_shards);
  }
  /// The live trace root, for tel::dump_trace_tail and tests.
  const tel::StoreTrace& trace() const { return trace_; }

 private:
  friend class C2Session;
  friend class detail::ShardRef;
  friend class MaxRef;
  friend class CounterRef;
  friend class TasRef;
  friend class SetRef;
  friend class SnapshotRef;

  struct alignas(128) ShardSlot {
    rt::NativeReadableTAS claim;           // Thm 5 readable test&set: init winner
    std::atomic<ShardObjects*> objs{nullptr};
    std::atomic<bool> poisoned{false};     // claim winner threw before publishing
  };

  /// Normalises the config (resolves the deprecated `shards` alias into
  /// initial_shards) and validates it; every config error surfaces here with
  /// a service-level message, before any member construction.
  static C2StoreConfig validate(C2StoreConfig cfg);

  int route(uint64_t key) const { return router_.shard_of(key); }
  int route(std::string_view key) const { return router_.shard_of(key); }
  /// Key's slot under `epoch`'s mask (the epoch must have been exposed by a
  /// stamp read — see RoutingEpoch::shards_of).
  int slot_under(uint64_t hash, int64_t epoch) const {
    return static_cast<int>(
        hash & (static_cast<uint64_t>(epochs_.shards_of(epoch)) - 1));
  }
  /// Key's journal/snapshot bucket: the INITIAL mask, forever (the journal
  /// facet is epoch-independent by construction).
  int journal_slot(uint64_t hash) const {
    return static_cast<int>(hash & initial_mask_);
  }

  /// Folds journal entries [r.cursor, tail) into r's accumulators; replay is
  /// a deterministic function of `tail`, which is what makes every snapshot's
  /// tail FAA(0) its linearization point (defined in c2store.cpp).
  void replay_journal(detail::SnapReplay& r, int64_t tail);

  /// The claimed-epoch migration: for every NEW slot, replay its parent
  /// slot's monotone state (write_max / counter re-add / TAS set-ness) on
  /// `lane`, then journal the kResize marker. Defined in c2store.cpp.
  ResizeStatus resize_with_lane(int lane, int new_shards);
  void migrate(int lane, const rt::RoutingEpoch::Claim& claim);

  /// Get-or-lazily-initialize the slot's objects (readable-TAS guarded).
  ShardObjects& shard(int s);
  /// Initialized objects or nullptr; never initializes (and never
  /// materialises the slot's spine segment either).
  ShardObjects* peek(int s) const {
    const ShardSlot* sl = slots_.peek(static_cast<size_t>(s));
    // c2sl-atomic: load acquire — publication read; never initializes
    return sl ? sl->objs.load(std::memory_order_acquire) : nullptr;
  }

  C2StoreConfig cfg_;
  /// The routing-epoch spine: published shard counts, resize claims, and the
  /// stamp word the refs' revalidation/Dekker reads ride on.
  rt::RoutingEpoch epochs_;
  ShardRouter router_;  ///< live mode: masks under the published epoch
  uint64_t initial_mask_;
  /// Shard slots on a lazily-grown segmented spine — resize() extends the
  /// index range; low slots are PHYSICALLY SHARED across epochs (mask
  /// nesting: a key that stays keeps its exact slot object).
  rt::SegmentedArray<ShardSlot> slots_;
  LaneRegistry lanes_;
  /// Store-level max digest; MaxRef::write updates it after the shard write so
  /// global_max() is a single-word read. Lane-keyed: epoch-independent.
  rt::NativeMaxRegister64 digest_;
  /// Store-level sum digest; CounterRef::inc updates it after the shard
  /// counter win so counter_sum() is a single-word read. No configuration:
  /// the total is 63-bit bounded and the per-lane cells ride on a segmented
  /// spine (runtime/counter_sum_digest.h). Lane-keyed: epoch-independent.
  rt::CounterSumDigest sum_digest_;
  /// The write journal behind session.snapshot()/transfer(): every keyed
  /// write appends one entry AFTER its shard-object and digest updates (the
  /// journal never leads the keyed read paths — the same pinned cross-facet
  /// order as the digests; tests/snapshot_sim_test.cpp). Unbounded, like the
  /// other segmented spines. Bucketed under the initial mask: epoch-
  /// independent.
  rt::KeyedVersionDigest journal_;
  /// Lane-local metrics + the shared ops-total FAA digest (telemetry.h). An
  /// empty shell under C2SL_TELEMETRY=0. Mutable: ref hot paths reach it
  /// through const-agnostic session state, and its lane blocks are
  /// single-writer by the session discipline.
  mutable tel::StoreTelemetry tel_;
  /// Lane-local linearization-witness trace logs (telemetry/trace.h). An
  /// empty shell under C2SL_TRACE=0. Mutable for the same reason as tel_.
  mutable tel::StoreTrace trace_;
};

// --- inline hot paths -------------------------------------------------------

namespace detail {
inline ShardRef::ShardRef(C2Store* store, int lane, uint64_t hash,
                          tel::LaneTelemetry* tel, tel::LaneTrace* trc)
    : store_(store), tel_(tel), trc_(trc), hash_(hash), lane_(lane) {
  // Bind under the published epoch of a seq_cst stamp read (the read also
  // carries visibility of that epoch's table entry).
  epoch_ = rt::RoutingEpoch::published_epoch(store_->epochs_.stamp());
  shard_ = store_->slot_under(hash_, epoch_);
}
inline ShardRef::ShardRef(C2Store* store, int lane, uint64_t hash,
                          tel::LaneTelemetry* tel, tel::LaneTrace* trc,
                          PinInitialRouting)
    : store_(store), tel_(tel), trc_(trc), hash_(hash), epoch_(-1),
      lane_(lane), shard_(store->journal_slot(hash)) {}

inline ShardObjects* ShardRef::resolved() {
  if (!objs_) objs_ = store_->peek(shard_);
  return objs_;
}
inline ShardObjects& ShardRef::ensure() {
  if (!objs_) objs_ = &store_->shard(shard_);
  return *objs_;
}
inline void ShardRef::revalidate() {
  if (rt::RoutingEpoch::published_epoch(store_->epochs_.stamp_relaxed()) ==
      epoch_) {
    return;  // hot path: one relaxed load, no re-hash, no re-route
  }
  // Epoch changed (or the relaxed load raced a publish): rebind from the
  // cached hash under the current published mask. Cold — once per resize per
  // ref; the seq_cst read orders the new epoch's table entry.
  epoch_ = rt::RoutingEpoch::published_epoch(store_->epochs_.stamp());
  int s = store_->slot_under(hash_, epoch_);
  if (s != shard_) {
    shard_ = s;
    objs_ = nullptr;  // new slot: drop the cached object pointer
  }
}
template <typename Apply>
inline void ShardRef::settle(const Apply& apply) {
  int64_t applied_epoch = epoch_;
  int applied_slot = shard_;
  // c2sl annotation lives in RoutingEpoch::stamp(); this loop is the writer
  // half of the install/recheck Dekker pair (see class comment).
  int64_t st = store_->epochs_.stamp();
  while (rt::RoutingEpoch::newest_epoch(st) != applied_epoch) {
    applied_epoch = rt::RoutingEpoch::newest_epoch(st);
    int s = store_->slot_under(hash_, applied_epoch);
    if (s != applied_slot) {
      applied_slot = s;
      apply(store_->shard(s));
    }
    // Confirm no newer install slipped in between the re-application and
    // here; a stable stamp proves (in the seq_cst total order) that any later
    // migration's replay must observe the re-applied slot state.
    st = store_->epochs_.stamp();
  }
}
}  // namespace detail

inline void MaxRef::write(int64_t v) {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kMaxWrite, shard_, v);
  tel::TraceScope tr(trc_, tel::TraceOp::kMaxWrite,
                     store_->journal_slot(hash_), v);
  revalidate();
  // Shard register FIRST, digest second, journal LAST: neither derived facet
  // ever runs ahead of the shard registers (pinned cross-facet invariants;
  // see global_max() and tests/snapshot_sim_test.cpp). The Dekker settle
  // runs after all three — its re-applications are idempotent merges.
  ensure().max.write_max(lane_, v);
  store_->digest_.write_max(lane_, v);
  // The journal ticket IS this write's linearization witness on the
  // snapshot facet (its own FAA step) — captured, not discarded.
  tr.set_witness(store_->journal_.append(rt::KeyedVersionDigest::Kind::kMaxWrite,
                                         store_->journal_slot(hash_), 0, v));
  tr.set_epoch(epoch_);
  settle([&](ShardObjects& o) { o.max.write_max(lane_, v); });
}
inline int64_t MaxRef::read() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kMaxRead, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kMaxRead, shard_, 0);
  revalidate();
  ShardObjects* p = resolved();
  int64_t v = p ? p->max.read_max() : 0;
  tr.set_result(v);
  return v;
}

inline int64_t CounterRef::inc() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kCounterInc, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kCounterInc,
                     store_->journal_slot(hash_), 1);
  revalidate();
  // Shard counter FIRST, sum digest second, journal LAST: neither derived
  // facet ever runs ahead of any keyed counter read (pinned cross-facet
  // invariant, mirroring MaxRef::write; see C2Store::counter_sum() and
  // tests/snapshot_sim_test.cpp). The settle re-application below reaches
  // only the SLOT facet — digest and journal see exactly one increment, which
  // is why they stay exact across resizes while slot scans over-approximate.
  int64_t prev = ensure().counter.fetch_and_increment();
  store_->sum_digest_.add(lane_);
  // Witness: the journal ticket (the inc's own FAA step on the snapshot
  // facet). With the trace, prev lets the auditor replay each bucket's
  // pre-increment sequence exactly (absent resizes).
  tr.set_witness(
      store_->journal_.append(rt::KeyedVersionDigest::Kind::kCounterInc,
                              store_->journal_slot(hash_), 0, 1));
  tr.set_result(prev);
  tr.set_epoch(epoch_);
  settle([&](ShardObjects& o) { o.counter.fetch_and_increment(); });
  return prev;
}
inline int64_t CounterRef::read() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kCounterRead, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kCounterRead, shard_, 0);
  revalidate();
  ShardObjects* p = resolved();
  int64_t v = p ? p->counter.read() : 0;
  tr.set_result(v);
  return v;
}

inline int64_t TasRef::test_and_set() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kTasSet, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kTasSet, shard_, 0);
  revalidate();
  int64_t won = ensure().tas.test_and_set(lane_);
  // Set-ness (monotone) migrates; the WINNER decision is per-epoch, like the
  // key-collision semantics (see header: "what survives a resize").
  settle([&](ShardObjects& o) { o.tas.test_and_set(lane_); });
  tr.set_result(won);
  return won;
}
inline int64_t TasRef::read() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kTasRead, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kTasRead, shard_, 0);
  revalidate();
  ShardObjects* p = resolved();
  int64_t v = p ? p->tas.read() : 0;
  tr.set_result(v);
  return v;
}
inline ResetResult TasRef::reset() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kTasReset, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kTasReset, shard_, 0);
  revalidate();
  ShardObjects& o = ensure();
  if (o.tas.generation() >= o.tas.max_resets()) return ResetResult::kBudgetSpent;
  o.tas.reset(lane_);
  // No settle: a reset is not a monotone merge. A reset racing a resize may
  // be absorbed by the migration replay (the replay re-sets set-ness it read
  // before the reset) — folded under the existing "serialize resets
  // externally" advisory above.
  return ResetResult::kOk;
}

inline void SetRef::put(int64_t item) {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kSetPut, shard_, item);
  tel::TraceScope tr(trc_, tel::TraceOp::kSetPut, shard_, item);
  ensure().set.put(item);
}
inline int64_t SetRef::take() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kSetTake, shard_, 0);
  tel::TraceScope tr(trc_, tel::TraceOp::kSetTake, shard_, 0);
  ShardObjects* p = resolved();
  int64_t v = p ? p->set.take() : C2Store::kEmpty;
  tr.set_result(v);
  return v;
}

inline C2Session::C2Session(C2Store* store, int lane)
    : store_(store),
      tel_lane_(store->tel_.lane(lane)),
      trc_lane_(store->trace_.lane(lane)),
      lane_(lane) {}

inline void C2Session::close() {
  if (store_) {
    store_->trace_.record_event(trc_lane_, tel::TraceOp::kSessionClose,
                                /*key=*/-1, /*arg=*/0, /*result=*/lane_,
                                /*witness=*/-1, /*epoch=*/-1);
    store_->lanes_.release(lane_);
    store_ = nullptr;
    tel_lane_ = nullptr;
    trc_lane_ = nullptr;
    snap_.reset();  // replay state dies with the session (refs are invalid now)
    lane_ = -1;
  }
}

inline MaxRef C2Session::max(uint64_t key) {
  C2SL_CHECK(valid(), "session is closed");
  return MaxRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline MaxRef C2Session::max(std::string_view key) {
  C2SL_CHECK(valid(), "session is closed");
  return MaxRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline CounterRef C2Session::counter(uint64_t key) {
  C2SL_CHECK(valid(), "session is closed");
  return CounterRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline CounterRef C2Session::counter(std::string_view key) {
  C2SL_CHECK(valid(), "session is closed");
  return CounterRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline TasRef C2Session::tas(uint64_t key) {
  C2SL_CHECK(valid(), "session is closed");
  return TasRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline TasRef C2Session::tas(std::string_view key) {
  C2SL_CHECK(valid(), "session is closed");
  return TasRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_);
}
inline SetRef C2Session::set(uint64_t key) {
  C2SL_CHECK(valid(), "session is closed");
  return SetRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_,
                detail::ShardRef::PinInitialRouting{});
}
inline SetRef C2Session::set(std::string_view key) {
  C2SL_CHECK(valid(), "session is closed");
  return SetRef(store_, lane_, hash_key(key), tel_lane_, trc_lane_,
                detail::ShardRef::PinInitialRouting{});
}

inline ResizeStatus C2Session::resize(int new_shards) {
  C2SL_CHECK(valid(), "session is closed");
  return store_->resize_with_lane(lane_, new_shards);
}

// --- snapshots and transfers ------------------------------------------------

inline detail::SnapReplay& C2Session::snap_state() {
  if (!snap_) {
    snap_ = std::make_unique<detail::SnapReplay>(store_->cfg_.initial_shards);
  }
  return *snap_;
}

inline SnapshotRef C2Session::snapshot_ref(const std::vector<SnapKey>& keys) {
  C2SL_CHECK(valid(), "session is closed");
  std::vector<std::pair<SnapKind, int>> slots;
  slots.reserve(keys.size());
  for (const SnapKey& k : keys) {
    C2SL_CHECK(k.kind == SnapKind::kCounter || k.kind == SnapKind::kMax,
               "unknown snapshot key kind");
    slots.emplace_back(k.kind, store_->journal_slot(hash_key(k.key)));
  }
  return SnapshotRef(store_, &snap_state(), tel_lane_, trc_lane_,
                     std::move(slots));
}

inline std::vector<int64_t> C2Session::snapshot(const std::vector<SnapKey>& keys) {
  return snapshot_ref(keys).read();
}

inline std::vector<int64_t> C2Session::snapshot_counters(
    const std::vector<uint64_t>& keys) {
  std::vector<SnapKey> ks;
  ks.reserve(keys.size());
  for (uint64_t k : keys) ks.push_back(SnapKey::counter(k));
  return snapshot(ks);
}

inline int64_t C2Session::transfer(uint64_t from_key, uint64_t to_key,
                                   int64_t amount) {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kTransfer, -1, amount);
  int from = store_->journal_slot(hash_key(from_key));
  int to = store_->journal_slot(hash_key(to_key));
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kTransfer, from, amount);
  tr.set_key_b(static_cast<int32_t>(to));
  int64_t ticket = store_->journal_.append(
      rt::KeyedVersionDigest::Kind::kTransfer, from, to, amount);
  tr.set_witness(ticket);
  tr.set_result(ticket);
  return ticket;
}
inline int64_t C2Session::transfer(std::string_view from_key,
                                   std::string_view to_key, int64_t amount) {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kTransfer, -1, amount);
  int from = store_->journal_slot(hash_key(from_key));
  int to = store_->journal_slot(hash_key(to_key));
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kTransfer, from, amount);
  tr.set_key_b(static_cast<int32_t>(to));
  int64_t ticket = store_->journal_.append(
      rt::KeyedVersionDigest::Kind::kTransfer, from, to, amount);
  tr.set_witness(ticket);
  tr.set_result(ticket);
  return ticket;
}

inline std::vector<int64_t> SnapshotRef::read() {
  tel::OpScope t(store_->tel_, tel_, tel::TelOp::kSnapshot, -1,
                 static_cast<int64_t>(slots_.size()));
  tel::TraceScope tr(trc_, tel::TraceOp::kSnapshot, -1,
                     static_cast<int64_t>(slots_.size()));
  // The single tail FAA(0) IS the snapshot's linearization point; everything
  // after is a deterministic function of its result.
  int64_t tail = store_->journal_.version();
  store_->replay_journal(*replay_, tail);
  // Witness = the tail; result = total journaled incs below it. The auditor
  // replays the witnessed prefix and must reproduce this count exactly.
  tr.set_witness(tail);
  tr.set_result(replay_->total_incs);
  std::vector<int64_t> out;
  out.reserve(slots_.size());
  for (const auto& [kind, shard] : slots_) {
    out.push_back(kind == SnapKind::kCounter
                      ? replay_->ctr_net[static_cast<size_t>(shard)]
                      : replay_->max_seen[static_cast<size_t>(shard)]);
  }
  return out;
}

// Aggregates carry session telemetry (store-level calls made without a
// session are NOT instrumented — telemetry is lane-local by design).
inline int64_t C2Session::global_max() {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kGlobalMax, -1, 0);
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kGlobalMax, -1, 0);
  int64_t v = store_->global_max();
  // The digest FAA(0) value is its own witness: the max facet is monotone,
  // so the auditor checks these never regress under real-time order.
  tr.set_result(v);
  tr.set_witness(v);
  return v;
}
inline int64_t C2Session::global_max_scan() {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kGlobalMaxScan, -1, 0);
  // Deliberately unwitnessed (witness = -1): the double-collect scan is NOT
  // strongly linearizable, so it has no own-step evidence to record — the
  // trace schema carries the refutation story.
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kGlobalMaxScan, -1, 0);
  int64_t v = store_->global_max_scan();
  tr.set_result(v);
  return v;
}
inline int64_t C2Session::counter_sum() {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kCounterSum, -1, 0);
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kCounterSum, -1, 0);
  int64_t v = store_->counter_sum();
  // The sum digest FAA(0) value is its own witness (monotone: incs only).
  tr.set_result(v);
  tr.set_witness(v);
  return v;
}
inline int64_t C2Session::counter_sum_scan() {
  C2SL_CHECK(valid(), "session is closed");
  tel::OpScope t(store_->tel_, tel_lane_, tel::TelOp::kCounterSumScan, -1, 0);
  tel::TraceScope tr(trc_lane_, tel::TraceOp::kCounterSumScan, -1, 0);
  int64_t v = store_->counter_sum_scan();
  tr.set_result(v);
  return v;
}

}  // namespace c2sl::svc
