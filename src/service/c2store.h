// C2Store — a sharded, strongly-linearizable object service over the native
// (std::atomic) constructions of the paper, using NO primitive stronger than
// consensus number 2: exchange (test&set / swap) and fetch&add only; there is
// no compare&swap anywhere in the service plumbing either (grep-enforced by
// tests/c2store_test.cpp).
//
// Shape: `shards` cache-line-padded slots; a key (int or string) is hashed
// onto a slot (lock-striping style — keys that collide share the slot's
// objects, which is the documented semantics: the store serves `shards`
// independent instances of each object type and keys *name* them through
// hashing). Each slot lazily materialises one instance of each shardable
// object type on first touch:
//   * NativeMaxRegister64  (Thm 1)  — max_write / max_read
//   * NativeFetchIncrement (Thm 9)  — counter_inc / counter_read
//   * NativeMultishotTAS   (Thm 6)  — tas / tas_read / tas_reset
//   * NativeSet            (Thm 10) — set_put / set_take
//
// Lazy initialisation is guarded by the paper's own readable test&set (Thm 5):
// the winner of the slot's test&set constructs the objects and publishes them
// through an atomic pointer store (a plain register write — consensus number
// 1); losers spin on the publication. No CAS, no mutex.
//
// Per-key operations are strongly linearizable by locality: each key's ops run
// on one strongly-linearizable shard instance, and strong linearizability
// composes (tests/service_sim_test.cpp checks per-shard facets through the
// real routing layer on full execution trees).
//
// Aggregates come in two provably different flavours:
//   * global_max() reads a store-level DIGEST — one extra NativeMaxRegister64
//     that every max_write also updates — so the global read is a single
//     fetch&add(0): wait-free and strongly linearizable, exactly the paper's
//     "pack it into one FAA word" move (§3.1/§3.2).
//   * global_max_scan() / counter_sum() scan the per-shard read paths with a
//     double-collect stabilisation loop (repeat until two consecutive collects
//     of the monotone per-shard values coincide). A naive one-pass scan is not
//     even linearizable — a reader can miss an earlier, larger write on a
//     shard it already passed while observing a later, smaller write on a
//     shard still ahead of it. The double-collect IS linearizable, but it is
//     NOT strongly linearizable: the read's linearization point (the stable
//     pair) is determined by future schedule steps, so it is not
//     prefix-closed. The bounded model checker refutes it mechanically
//     (tests/service_sim_test.cpp pins both refutations), which is precisely
//     why the digest exists. Scans are lock-free, the same trade Algorithm 2's
//     Take makes with its taken_old/max_old stabilisation check.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "runtime/native_tas_family.h"
#include "service/shard_router.h"

namespace c2sl::svc {

struct C2StoreConfig {
  int shards = 16;      ///< power of two
  int max_threads = 8;  ///< lane owners for the per-shard max registers / TAS

  /// Per-shard max register bound; max_threads * max_value must fit in 63 bits.
  int64_t max_value = 7;
  /// Per-shard multi-shot TAS reset budget; max_threads * (tas_max_resets + 1)
  /// must fit in 63 bits.
  int64_t tas_max_resets = 6;
  size_t counter_capacity = size_t{1} << 14;  ///< max increments per shard
  size_t set_capacity = size_t{1} << 14;      ///< max puts per shard
};

class C2Store {
 public:
  static constexpr int64_t kEmpty = rt::NativeSet::kEmpty;

  explicit C2Store(const C2StoreConfig& cfg);
  ~C2Store();
  C2Store(const C2Store&) = delete;
  C2Store& operator=(const C2Store&) = delete;

  // --- per-key operations (tid: calling thread's lane, < cfg.max_threads) ---
  void max_write(int tid, uint64_t key, int64_t v) { max_write_shard(tid, route(key), v); }
  void max_write(int tid, std::string_view key, int64_t v) {
    max_write_shard(tid, route(key), v);
  }
  int64_t max_read(uint64_t key) { return max_read_shard(route(key)); }
  int64_t max_read(std::string_view key) { return max_read_shard(route(key)); }

  int64_t counter_inc(uint64_t key) { return counter_inc_shard(route(key)); }
  int64_t counter_inc(std::string_view key) { return counter_inc_shard(route(key)); }
  int64_t counter_read(uint64_t key) { return counter_read_shard(route(key)); }
  int64_t counter_read(std::string_view key) { return counter_read_shard(route(key)); }

  int64_t tas(int tid, uint64_t key) { return tas_shard(tid, route(key)); }
  int64_t tas(int tid, std::string_view key) { return tas_shard(tid, route(key)); }
  int64_t tas_read(uint64_t key) { return tas_read_shard(route(key)); }
  int64_t tas_read(std::string_view key) { return tas_read_shard(route(key)); }
  /// Returns false (and does nothing) once the shard's reset budget is spent.
  /// The budget gate is advisory under concurrency: callers that might consume
  /// the LAST generation concurrently must serialize resets externally.
  bool tas_reset(int tid, uint64_t key) { return tas_reset_shard(tid, route(key)); }
  bool tas_reset(int tid, std::string_view key) { return tas_reset_shard(tid, route(key)); }

  void set_put(uint64_t key, int64_t item) { set_put_shard(route(key), item); }
  void set_put(std::string_view key, int64_t item) { set_put_shard(route(key), item); }
  int64_t set_take(uint64_t key) { return set_take_shard(route(key)); }
  int64_t set_take(std::string_view key) { return set_take_shard(route(key)); }

  // --- aggregates ---
  /// Digest read: one fetch&add(0); wait-free, strongly linearizable as its
  /// own facet. Cross-facet caveat: max_write updates the shard register
  /// BEFORE the digest, so a client that reads a value via max_read(key) can
  /// briefly observe global_max() lagging behind it while the writer is
  /// between its two updates; each facet is individually consistent.
  int64_t global_max();
  /// Double-collect scans over per-shard read paths: linearizable, lock-free,
  /// NOT strongly linearizable (pinned refutation in tests/service_sim_test).
  int64_t global_max_scan();
  int64_t counter_sum();

  // --- introspection ---
  int shard_count() const { return router_.shard_count(); }
  int initialized_shards() const;
  const C2StoreConfig& config() const { return cfg_; }
  int shard_of(uint64_t key) const { return router_.shard_of(key); }
  int shard_of(std::string_view key) const { return router_.shard_of(key); }

 private:
  struct ShardObjects;
  struct alignas(128) ShardSlot {
    rt::NativeReadableTAS claim;           // Thm 5 readable test&set: init winner
    std::atomic<ShardObjects*> objs{nullptr};
    std::atomic<bool> poisoned{false};     // claim winner threw before publishing
  };

  static const C2StoreConfig& validate(const C2StoreConfig& cfg);

  int route(uint64_t key) const { return router_.shard_of(key); }
  int route(std::string_view key) const { return router_.shard_of(key); }

  /// Get-or-lazily-initialize the slot's objects (readable-TAS guarded).
  ShardObjects& shard(int s);
  /// Initialized objects or nullptr; never initializes.
  ShardObjects* peek(int s) const;

  void max_write_shard(int tid, int s, int64_t v);
  int64_t max_read_shard(int s);
  int64_t counter_inc_shard(int s);
  int64_t counter_read_shard(int s);
  int64_t tas_shard(int tid, int s);
  int64_t tas_read_shard(int s);
  bool tas_reset_shard(int tid, int s);
  void set_put_shard(int s, int64_t item);
  int64_t set_take_shard(int s);

  C2StoreConfig cfg_;
  ShardRouter router_;
  std::unique_ptr<ShardSlot[]> slots_;
  /// Store-level max digest; max_write updates it after the shard write so
  /// global_max() is a single-word read.
  rt::NativeMaxRegister64 digest_;
};

}  // namespace c2sl::svc
