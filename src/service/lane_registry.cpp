#include "service/lane_registry.h"

#include "util/assert.h"

namespace c2sl::svc {

int LaneRegistry::try_acquire() {
  // 1. Recycle a freed lane if one is waiting.
  int64_t recycled = free_.take();
  if (recycled != rt::NativeSet::kEmpty) return static_cast<int>(recycled);

  // 2. Fresh ticket. The pre-read keeps the dispenser from drifting when the
  // registry is already exhausted (every failed try_acquire would otherwise
  // burn a ticket); the fetch_add itself is still the linearization point of
  // a successful fresh acquire — the pre-read is an optimisation, not a gate.
  if (next_.load(std::memory_order_seq_cst) < max_lanes_) {
    int64_t t = next_.fetch_add(1, std::memory_order_seq_cst);
    if (t < max_lanes_) return static_cast<int>(t);
  }

  // 3. Tickets are spent; a release may have landed since step 1.
  recycled = free_.take();
  if (recycled != rt::NativeSet::kEmpty) return static_cast<int>(recycled);
  return kNone;
}

void LaneRegistry::release(int lane) {
  C2SL_CHECK(lane >= 0 && lane < max_lanes_, "lane out of range");
  free_.put(lane);
}

}  // namespace c2sl::svc
