#include "service/lane_registry.h"

#include "telemetry/prim_profile.h"
#include "util/assert.h"

namespace c2sl::svc {

int LaneRegistry::try_acquire() {
  // 1. Recycle a freed lane if one is waiting.
  int64_t recycled = free_.take();
  if (recycled != rt::NativeSet::kEmpty) return static_cast<int>(recycled);

  // 2. Fresh ticket. The pre-read keeps the dispenser from drifting when the
  // registry is already exhausted (every failed try_acquire would otherwise
  // burn a ticket); the fetch_add itself is still the linearization point of
  // a successful fresh acquire — the pre-read is an optimisation, not a gate.
  // c2sl-atomic: load seq_cst — dispenser pre-read; ordered against take()'s
  // sweep so an exhausted registry never burns tickets
  if (next_.load(std::memory_order_seq_cst) < max_lanes_) {
    C2SL_TEL_PRIM_FAA();
    // c2sl-atomic: faa seq_cst — linearization point of a fresh acquire
    int64_t t = next_.fetch_add(1, std::memory_order_seq_cst);
    if (t < max_lanes_) return static_cast<int>(t);
  }

  // 3. Tickets are spent; a release may have landed since step 1.
  recycled = free_.take();
  if (recycled != rt::NativeSet::kEmpty) return static_cast<int>(recycled);
  return kNone;
}

int LaneRegistry::acquire_blocking() {
  for (;;) {
    int lane = try_acquire();
    if (lane != kNone) return lane;
    size_t t = handoff_.enqueue();
    // Re-poll AFTER the enqueue made this waiter visible: a release whose
    // hand() guard ran before the enqueue routed its lane to the free set,
    // and its post-put re-check may have run before the enqueue too — this
    // probe is the waiter's half of that Dekker pair (release() holds the
    // other half), so one of the two always sees the lane.
    lane = try_acquire();
    if (lane != kNone) {
      int64_t raced = handoff_.cancel(t);
      // A delivery can beat the cancellation; this caller then briefly owns
      // TWO lanes and must return one (to the next waiter or the free set).
      if (raced >= 0) release(static_cast<int>(raced));
      return lane;
    }
    int64_t v = handoff_.await(t);
    if (v == rt::HandoffQueue::kRevoked) continue;  // free set refilled: retry
    return static_cast<int>(v);
  }
}

int LaneRegistry::acquire_for(std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int lane = try_acquire();
    if (lane != kNone) return lane;
    size_t t = handoff_.enqueue();
    lane = try_acquire();  // same Dekker probe as acquire_blocking
    if (lane != kNone) {
      int64_t raced = handoff_.cancel(t);
      if (raced >= 0) release(static_cast<int>(raced));
      return lane;
    }
    int64_t v = handoff_.await_until(t, deadline);
    if (v == rt::HandoffQueue::kTimedOut) {
      v = handoff_.cancel(t);
      if (v >= 0) return static_cast<int>(v);  // a delivery beat the timeout
      return kNone;
    }
    if (v == rt::HandoffQueue::kRevoked) {
      if (std::chrono::steady_clock::now() >= deadline) return kNone;
      continue;  // free set refilled: retry within the deadline
    }
    return static_cast<int>(v);
  }
}

void LaneRegistry::release(int lane) {
  C2SL_CHECK(lane >= 0 && lane < max_lanes_, "lane out of range");
  int64_t l = lane;
  for (;;) {
    // Direct handoff first: the oldest blocked acquirer gets the lane without
    // a free-set round trip (and without racing opportunistic try_acquires).
    if (handoff_.hand(l)) return;
    free_.put(l);
    // Dekker re-check: a waiter may have enqueued between hand()'s guard and
    // the put above, then missed the lane in its own probe. If one is
    // visible, pull a lane back out and hand it; an empty take means some
    // other thread took the lane meanwhile (progress either way).
    if (!handoff_.waiters_pending()) return;
    int64_t back = free_.take();
    if (back == rt::NativeSet::kEmpty) return;
    l = back;
  }
}

}  // namespace c2sl::svc
