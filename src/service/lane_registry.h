// LaneRegistry — consensus-number-2 lane lifecycle for the C2Store service.
//
// Every lane-indexed construction in this repo (NativeMaxRegister64's unary
// lanes, NativeMultishotTAS's reset writers) needs its caller to present a
// lane id below max_lanes, and before this registry existed that obligation
// leaked out of the store as a raw `int tid` parameter on half the public
// surface. The registry moves the whole lifecycle inside the service:
//
//   acquire():  1. try to recycle a freed lane: NativeSet::take() — Algorithm 2
//                  (Thm 10), whose successful Take linearizes at its winning
//                  test&set exchange;
//               2. else draw a fresh ticket from a fetch&increment dispenser
//                  (one std::atomic fetch_add — the Thm 9 object collapses to a
//                  single hardware F&A word here because tickets are dense and
//                  never read back); tickets below max_lanes are fresh lanes;
//               3. on ticket exhaustion, probe the recycle set once more (a
//                  release may have landed meanwhile) and otherwise report
//                  "no lane free" (kNone).
//   release(l): hand the lane DIRECTLY to the oldest blocked acquirer via the
//               consensus-2 HandoffQueue (runtime/handoff_queue.h) — the
//               handoff commits at the queue's head fetch&add; only when no
//               waiter is visible does the lane fall back to NativeSet::put(l)
//               (linearizing at its Items write), followed by a Dekker-style
//               re-check that pulls the lane back out for a waiter that
//               enqueued concurrently (no lost wakeups).
//
//   acquire_blocking(): try_acquire, else enqueue a handoff ticket, re-poll
//               the free set once (closing the race against a release that
//               missed the enqueue), and park on the ticket's cell until a
//               released lane is handed over — FIFO-fair in enqueue order,
//               no busy-spinning (the park is a targeted futex-style wait;
//               wakeups per acquisition are bounded, asserted by the TSAN
//               stress in tests/c2store_stress_test.cpp). acquire_for() is
//               the deadline form; its timeout path cancels the ticket and
//               honours a delivery that races the cancellation.
//
// Exchange and fetch&add only; no CAS anywhere (grep-enforced along with the
// rest of src/service by tests/c2store_test.cpp). Every operation linearizes
// at a fixed step of its own — the winning exchange inside take(), the
// fetch_add of a fresh ticket, the Items write inside put(), the enqueue/hand
// fetch&adds of the handoff queue, or (for a kNone acquire) the final
// stabilised Max read of the failing take() — so the induced linearization is
// prefix-closed: the registry is strongly linearizable.
// tests/lane_registry_test.cpp verifies exactly this with the bounded model
// checker on the simulated twin (svc::SimLaneRegistry), and stress-tests the
// native implementation for uniqueness under contention;
// tests/handoff_queue_test.cpp carries the queue's own checker story
// (enqueue/handoff facets verified, scan-order delivery refuted).
//
// Khanchandani–Wattenhofer's CAS-from-consensus-2 reduction is the conceptual
// licence: lane assignment is itself a consensus-2 problem, so it belongs
// inside the store rather than on every call site.
//
// Lifetime: UNBOUNDED. The recycle set rides on the segmented NativeSet
// (runtime/segmented_array.h), so a registry survives arbitrarily many
// release() calls — there is no recycle capacity and no config knob for one.
// NativeSet's verified-taken-prefix hint keeps each acquire/release cycle
// O(1) amortized even after millions of recycles (pinned by the lifetime test
// in tests/lane_registry_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "runtime/handoff_queue.h"
#include "runtime/native_tas_family.h"

namespace c2sl::svc {

class LaneRegistry {
 public:
  /// acquire() result when every lane is concurrently held.
  static constexpr int kNone = -1;

  explicit LaneRegistry(int max_lanes) : max_lanes_(max_lanes) {
    C2SL_CHECK(max_lanes >= 1, "need at least one lane");
  }
  LaneRegistry(const LaneRegistry&) = delete;
  LaneRegistry& operator=(const LaneRegistry&) = delete;

  /// Returns a lane in [0, max_lanes) owned exclusively by the caller until
  /// it is release()d, or kNone when every lane is currently held. Lock-free:
  /// the only loop is inside NativeSet::take's Algorithm 2 stabilisation.
  int try_acquire();

  /// Like try_acquire(), but when every lane is held the caller enqueues a
  /// handoff ticket and PARKS until a release hands it a lane directly.
  /// FIFO-fair in enqueue order (modulo revocation retries, which re-enqueue
  /// at the back after re-polling the refilled free set); never busy-spins.
  int acquire_blocking();

  /// Deadline form of acquire_blocking(): returns kNone when `deadline`
  /// passes first. A lane that is handed over in the race window of the
  /// timeout's cancellation is kept and returned (success beats timeout) —
  /// lanes are never dropped.
  int acquire_for(std::chrono::nanoseconds timeout);

  /// Returns `lane` to the registry — to the oldest blocked acquire_blocking
  /// caller when one is waiting (direct handoff, no free-set round trip),
  /// else to the recycle set. The caller must own it (acquired and not yet
  /// released) — a double release would let two sessions share a lane and
  /// silently corrupt each other's unary lanes, which is precisely the bug
  /// class the registry exists to remove.
  void release(int lane);

  int max_lanes() const { return max_lanes_; }
  /// Fresh tickets drawn so far (introspection; >= lanes ever acquired fresh).
  // c2sl-atomic: load relaxed — diagnostics-only view of the dispenser
  int64_t tickets_issued() const { return next_.load(std::memory_order_relaxed); }

  // --- handoff introspection (diagnostics; the stress bounds ride on these) --
  /// Waiter tickets ever enqueued by blocked acquires.
  int64_t handoff_enqueued() const { return handoff_.enqueued(); }
  /// Lanes delivered directly to a waiter (never touched the free set).
  int64_t handoff_deliveries() const { return handoff_.deliveries(); }
  /// Overshot handoff slots (waiter retried; lane went to the free set).
  int64_t handoff_revocations() const { return handoff_.revocations(); }
  /// Times a blocked acquire actually parked (<= handoff_enqueued()).
  int64_t handoff_parks() const { return handoff_.parks(); }

 private:
  int max_lanes_;
  /// F&I ticket dispenser for first-acquires. Plain fetch_add — consensus
  /// number 2 — is all this needs: tickets are handed out densely and only
  /// their order matters, never a readable intermediate value.
  std::atomic<int64_t> next_{0};
  /// Freed lanes awaiting recycling (Thm 10 set: put/take, no CAS, unbounded).
  rt::NativeSet free_;
  /// Blocked acquirers awaiting a direct lane handoff (FIFO, no CAS,
  /// unbounded; see runtime/handoff_queue.h for the cell protocol).
  rt::HandoffQueue handoff_;
};

}  // namespace c2sl::svc
