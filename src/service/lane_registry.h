// LaneRegistry — consensus-number-2 lane lifecycle for the C2Store service.
//
// Every lane-indexed construction in this repo (NativeMaxRegister64's unary
// lanes, NativeMultishotTAS's reset writers) needs its caller to present a
// lane id below max_lanes, and before this registry existed that obligation
// leaked out of the store as a raw `int tid` parameter on half the public
// surface. The registry moves the whole lifecycle inside the service:
//
//   acquire():  1. try to recycle a freed lane: NativeSet::take() — Algorithm 2
//                  (Thm 10), whose successful Take linearizes at its winning
//                  test&set exchange;
//               2. else draw a fresh ticket from a fetch&increment dispenser
//                  (one std::atomic fetch_add — the Thm 9 object collapses to a
//                  single hardware F&A word here because tickets are dense and
//                  never read back); tickets below max_lanes are fresh lanes;
//               3. on ticket exhaustion, probe the recycle set once more (a
//                  release may have landed meanwhile) and otherwise report
//                  "no lane free" (kNone).
//   release(l): NativeSet::put(l) — linearizes at its Items write.
//
// Exchange and fetch&add only; no CAS anywhere (grep-enforced along with the
// rest of src/service by tests/c2store_test.cpp). Every operation linearizes
// at a fixed step of its own — the winning exchange inside take(), the
// fetch_add of a fresh ticket, the Items write inside put(), or (for a kNone
// acquire) the final stabilised Max read of the failing take() — so the
// induced linearization is prefix-closed: the registry is strongly
// linearizable. tests/lane_registry_test.cpp verifies exactly this with the
// bounded model checker on the simulated twin (svc::SimLaneRegistry), and
// stress-tests the native implementation for uniqueness under contention.
//
// Khanchandani–Wattenhofer's CAS-from-consensus-2 reduction is the conceptual
// licence: lane assignment is itself a consensus-2 problem, so it belongs
// inside the store rather than on every call site.
//
// Lifetime: UNBOUNDED. The recycle set rides on the segmented NativeSet
// (runtime/segmented_array.h), so a registry survives arbitrarily many
// release() calls — there is no recycle capacity and no config knob for one.
// NativeSet's verified-taken-prefix hint keeps each acquire/release cycle
// O(1) amortized even after millions of recycles (pinned by the lifetime test
// in tests/lane_registry_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/native_tas_family.h"

namespace c2sl::svc {

class LaneRegistry {
 public:
  /// acquire() result when every lane is concurrently held.
  static constexpr int kNone = -1;

  explicit LaneRegistry(int max_lanes) : max_lanes_(max_lanes) {
    C2SL_CHECK(max_lanes >= 1, "need at least one lane");
  }
  LaneRegistry(const LaneRegistry&) = delete;
  LaneRegistry& operator=(const LaneRegistry&) = delete;

  /// Returns a lane in [0, max_lanes) owned exclusively by the caller until
  /// it is release()d, or kNone when every lane is currently held. Lock-free:
  /// the only loop is inside NativeSet::take's Algorithm 2 stabilisation.
  int try_acquire();

  /// Returns `lane` to the registry. The caller must own it (acquired and not
  /// yet released) — a double release would let two sessions share a lane and
  /// silently corrupt each other's unary lanes, which is precisely the bug
  /// class the registry exists to remove.
  void release(int lane);

  int max_lanes() const { return max_lanes_; }
  /// Fresh tickets drawn so far (introspection; >= lanes ever acquired fresh).
  int64_t tickets_issued() const { return next_.load(std::memory_order_seq_cst); }

 private:
  int max_lanes_;
  /// F&I ticket dispenser for first-acquires. Plain fetch_add — consensus
  /// number 2 — is all this needs: tickets are handed out densely and only
  /// their order matters, never a readable intermediate value.
  std::atomic<int64_t> next_{0};
  /// Freed lanes awaiting recycling (Thm 10 set: put/take, no CAS, unbounded).
  rt::NativeSet free_;
};

}  // namespace c2sl::svc
