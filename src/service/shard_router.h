// Key → shard routing for the C2Store service layer.
//
// Routing is pure hashing: a key (64-bit integer or string) is mixed through a
// SplitMix64-style finalizer and masked onto a power-of-two shard count, so
// the router is stateless, wait-free and identical on every thread. Because
// strong linearizability is local (composable), a keyspace striped across
// independent strongly-linearizable shard objects stays strongly linearizable
// end-to-end — the router is the only piece of "distribution" logic and it
// touches no shared memory at all.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/assert.h"

namespace c2sl::svc {

/// SplitMix64 finalizer: cheap full-avalanche 64-bit mix.
inline uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline uint64_t hash_key(uint64_t key) { return mix64(key + 0x9e3779b97f4a7c15ULL); }

/// FNV-1a over the bytes, then finalized so that low bits are well mixed
/// before the power-of-two mask is applied.
inline uint64_t hash_key(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

class ShardRouter {
 public:
  explicit ShardRouter(int shard_count)
      : shard_count_(shard_count), mask_(static_cast<uint64_t>(shard_count) - 1) {
    C2SL_CHECK(shard_count > 0 && (shard_count & (shard_count - 1)) == 0,
               "shard count must be a power of two");
  }

  int shard_of(uint64_t key) const { return static_cast<int>(hash_key(key) & mask_); }
  int shard_of(std::string_view key) const {
    return static_cast<int>(hash_key(key) & mask_);
  }
  int shard_count() const { return shard_count_; }

 private:
  int shard_count_;
  uint64_t mask_;
};

}  // namespace c2sl::svc
