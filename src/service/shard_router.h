// Key → shard routing for the C2Store service layer.
//
// Hashing is pure and stateless: a key (64-bit integer or string) is mixed
// through a SplitMix64-style finalizer and masked onto a power-of-two shard
// count. Since PR 9 the COUNT is no longer a construction-time constant — a
// live router reads it from the store's RoutingEpoch spine
// (runtime/routing_epoch.h), so the mask widens when a resize publishes a new
// epoch. Because strong linearizability is local (composable), a keyspace
// striped across independent strongly-linearizable shard objects stays
// strongly linearizable end-to-end; the epoch hand-off itself (how a key's
// state follows its slot across a mask change) is the RoutingEpoch + migration
// protocol, checker-pinned via SimRoutingEpoch.
//
// The fixed-count mode survives for the sim twins and unit helpers that want
// the PR 1 pure-function router (service/sim_bridge.h constructs one
// directly); the service always uses the live mode.
#pragma once

#include <cstdint>
#include <string_view>

#include "runtime/routing_epoch.h"
#include "util/assert.h"

namespace c2sl::svc {

/// SplitMix64 finalizer: cheap full-avalanche 64-bit mix.
inline uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline uint64_t hash_key(uint64_t key) { return mix64(key + 0x9e3779b97f4a7c15ULL); }

/// FNV-1a over the bytes, then finalized so that low bits are well mixed
/// before the power-of-two mask is applied.
inline uint64_t hash_key(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

class ShardRouter {
 public:
  /// Fixed-count mode: the PR 1 pure masked hash (sim twins, unit helpers).
  explicit ShardRouter(int shard_count)
      : fixed_count_(shard_count) {
    C2SL_CHECK(shard_count > 0 && (shard_count & (shard_count - 1)) == 0,
               "shard count must be a power of two");
  }

  /// Live mode: the mask tracks the newest PUBLISHED routing epoch. The
  /// router stays stateless — it borrows the spine, it never owns state.
  explicit ShardRouter(const rt::RoutingEpoch* epochs) : epochs_(epochs) {}

  int shard_of(uint64_t key) const { return slot_of(hash_key(key)); }
  int shard_of(std::string_view key) const { return slot_of(hash_key(key)); }
  /// Route an already-computed hash (the typed refs hash once at bind and
  /// re-route on epoch change without re-hashing — the PR 2 string-key win).
  int slot_of(uint64_t hash) const {
    return static_cast<int>(hash & (static_cast<uint64_t>(shard_count()) - 1));
  }
  int shard_count() const {
    return epochs_ ? epochs_->current_shards() : fixed_count_;
  }

 private:
  const rt::RoutingEpoch* epochs_ = nullptr;  ///< live mode when non-null
  int fixed_count_ = 0;
};

}  // namespace c2sl::svc
