#include "service/sim_bridge.h"

#include <algorithm>

#include "util/assert.h"

namespace c2sl::svc {

// --- SimKeyedStore ----------------------------------------------------------

SimKeyedStore::SimKeyedStore(sim::World& world, std::string name, int n, int shards)
    : name_(std::move(name)), router_(shards) {
  for (int s = 0; s < shards; ++s) {
    regs_.push_back(std::make_unique<core::MaxRegisterFAA>(
        world, name_ + ".s" + std::to_string(s) + ".maxreg", n));
    ts_.push_back(std::make_unique<core::AtomicReadableTasArray>(
        world, name_ + ".s" + std::to_string(s) + ".M"));
    ctrs_.push_back(std::make_unique<core::FetchIncrement>(
        name_ + ".s" + std::to_string(s) + ".fai", *ts_.back()));
  }
}

std::string SimKeyedStore::max_object(int shard) const {
  return name_ + ".s" + std::to_string(shard) + ".max";
}

std::string SimKeyedStore::ctr_object(int shard) const {
  return name_ + ".s" + std::to_string(shard) + ".ctr";
}

void SimKeyedStore::max_write(sim::Ctx& ctx, uint64_t key, int64_t v) {
  int s = router_.shard_of(key);
  sim::record_op(ctx, max_object(s), "WriteMax", num(v), [&] {
    regs_[static_cast<size_t>(s)]->write_max(ctx, v);
    return unit();
  });
}

int64_t SimKeyedStore::max_read(sim::Ctx& ctx, uint64_t key) {
  int s = router_.shard_of(key);
  Val r = sim::record_op(ctx, max_object(s), "ReadMax", unit(), [&] {
    return num(regs_[static_cast<size_t>(s)]->read_max(ctx));
  });
  return as_num(r);
}

int64_t SimKeyedStore::counter_inc(sim::Ctx& ctx, uint64_t key) {
  int s = router_.shard_of(key);
  Val r = sim::record_op(ctx, ctr_object(s), "FAI", unit(), [&] {
    return num(ctrs_[static_cast<size_t>(s)]->fetch_and_increment(ctx));
  });
  return as_num(r);
}

int64_t SimKeyedStore::counter_read(sim::Ctx& ctx, uint64_t key) {
  int s = router_.shard_of(key);
  Val r = sim::record_op(ctx, ctr_object(s), "Read", unit(), [&] {
    return num(ctrs_[static_cast<size_t>(s)]->read(ctx));
  });
  return as_num(r);
}

// --- SimGlobalMax -----------------------------------------------------------

SimGlobalMax::SimGlobalMax(sim::World& world, std::string name, int n, int shards)
    : name_(std::move(name)), shards_(shards) {
  C2SL_CHECK(shards > 0 && (shards & (shards - 1)) == 0,
             "shard count must be a power of two");
  for (int s = 0; s < shards; ++s) {
    regs_.push_back(std::make_unique<core::MaxRegisterFAA>(
        world, name_ + ".shard" + std::to_string(s), n));
  }
  digest_ = std::make_unique<core::MaxRegisterFAA>(world, name_ + ".digest", n);
}

void SimGlobalMax::write_max(sim::Ctx& ctx, int64_t v) {
  int s = static_cast<int>(static_cast<uint64_t>(v) & static_cast<uint64_t>(shards_ - 1));
  regs_[static_cast<size_t>(s)]->write_max(ctx, v);
  digest_->write_max(ctx, v);
}

int64_t SimGlobalMax::read_max(sim::Ctx& ctx) { return digest_->read_max(ctx); }

int64_t SimGlobalMax::read_shard_max(sim::Ctx& ctx, int s) {
  C2SL_CHECK(s >= 0 && s < shards_, "shard index out of range");
  return regs_[static_cast<size_t>(s)]->read_max(ctx);
}

Val SimGlobalMax::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "WriteMax") {
    write_max(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "ReadMax") return num(read_max(ctx));
  if (inv.name == "ReadShard") {
    return num(read_shard_max(ctx, static_cast<int>(as_num(inv.args))));
  }
  C2SL_CHECK(false, "unknown operation on global max digest: " + inv.name);
  return unit();
}

// --- SimCounterSumDigest (the counter_sum digest design) --------------------

SimCounterSumDigest::SimCounterSumDigest(sim::World& world, std::string name,
                                         int shards)
    : name_(std::move(name)), shards_(shards) {
  C2SL_CHECK(shards > 0 && (shards & (shards - 1)) == 0,
             "shard count must be a power of two");
  for (int s = 0; s < shards; ++s) {
    ts_.push_back(std::make_unique<core::AtomicReadableTasArray>(
        world, name_ + ".M" + std::to_string(s)));
    ctrs_.push_back(std::make_unique<core::FetchIncrement>(
        name_ + ".ctr" + std::to_string(s), *ts_.back()));
  }
  digest_ = world.add<prim::FetchAddInt>(name_ + ".digest");
}

void SimCounterSumDigest::inc(sim::Ctx& ctx) {
  // Shard counter FIRST, digest second — the same cross-facet order as
  // SimGlobalMax::write_max and the native CounterRef::inc (pinned by
  // tests/service_sim_test.cpp). The digest fetch&add is the linearization
  // point of the Inc on the digest facet.
  int s = static_cast<int>(static_cast<uint64_t>(ctx.self) &
                           static_cast<uint64_t>(shards_ - 1));
  ctrs_[static_cast<size_t>(s)]->fetch_and_increment(ctx);
  ctx.world->get(digest_).fetch_add(ctx, 1);
}

int64_t SimCounterSumDigest::read(sim::Ctx& ctx) {
  return ctx.world->get(digest_).read(ctx);  // one FAA(0) step
}

int64_t SimCounterSumDigest::read_shard(sim::Ctx& ctx, int s) {
  C2SL_CHECK(s >= 0 && s < shards_, "shard index out of range");
  return ctrs_[static_cast<size_t>(s)]->read(ctx);
}

Val SimCounterSumDigest::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Inc") {
    this->inc(ctx);
    return unit();
  }
  if (inv.name == "Read") return num(read(ctx));
  if (inv.name == "ReadShard") {
    return num(read_shard(ctx, static_cast<int>(as_num(inv.args))));
  }
  C2SL_CHECK(false, "unknown operation on counter sum digest: " + inv.name);
  return unit();
}

// --- SimTelemetryCounter (the telemetry ops-total digest) -------------------

SimTelemetryCounter::SimTelemetryCounter(sim::World& world, std::string name,
                                         int lanes, bool scan_read)
    : name_(std::move(name)), lanes_(lanes), scan_read_(scan_read) {
  C2SL_CHECK(lanes >= 1, "need at least one lane");
  cells_ = world.add<prim::RegArray>(name_ + ".cells");
  digest_ = world.add<prim::FetchAddInt>(name_ + ".digest");
}

void SimTelemetryCounter::inc(sim::Ctx& ctx) {
  // Lane cell FIRST (plain register read+write; the cell is single-owner, so
  // this is exactly LaneTelemetry::bump's relaxed load/store pair), digest
  // second — the Inc linearizes at its own digest fetch&add step.
  C2SL_CHECK(ctx.self >= 0 && ctx.self < lanes_, "caller is not a lane owner");
  prim::RegArray& cells = ctx.world->get(cells_);
  size_t lane = static_cast<size_t>(ctx.self);
  Val cur = cells.read(ctx, lane);
  int64_t next = (std::holds_alternative<int64_t>(cur) ? as_num(cur) : 0) + 1;
  cells.write(ctx, lane, num(next));
  ctx.world->get(digest_).fetch_add(ctx, 1);
}

int64_t SimTelemetryCounter::read(sim::Ctx& ctx) {
  if (!scan_read_) return ctx.world->get(digest_).read(ctx);  // one FAA(0)
  // Negative control: naive one-pass sum over the lane cells, the read
  // StoreTelemetry::ops_total_scan performs. Linearizable here (each cell is
  // monotone and single-writer) but NOT strongly linearizable — the checker
  // refutes it (tests/telemetry_test.cpp pins the verdict).
  int64_t sum = 0;
  for (int lane = 0; lane < lanes_; ++lane) {
    Val v = ctx.world->get(cells_).read(ctx, static_cast<size_t>(lane));
    if (std::holds_alternative<int64_t>(v)) sum += as_num(v);
  }
  return sum;
}

Val SimTelemetryCounter::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Inc") {
    this->inc(ctx);
    return unit();
  }
  if (inv.name == "Read") return num(read(ctx));
  C2SL_CHECK(false, "unknown operation on telemetry counter: " + inv.name);
  return unit();
}

// --- SimKeyedSnapshot (the snapshot write journal) --------------------------

namespace {
/// Journal entry packing, mirroring rt::KeyedVersionDigest: kind in the low
/// 2 bits (1 = Inc, 2 = WriteMax, 3 = Xfer; 0 is "not deposited" — here the
/// cell simply still holds ⊥), shard indices in 3 bits each, value above.
constexpr int64_t pack_entry(int kind, int a, int b, int64_t v) {
  return kind | (int64_t{a} << 2) | (int64_t{b} << 5) | (v << 8);
}
}  // namespace

SimKeyedSnapshot::SimKeyedSnapshot(sim::World& world, std::string name, int n,
                                   int shards, bool naive_loop)
    : name_(std::move(name)), shards_(shards), naive_loop_(naive_loop) {
  C2SL_CHECK(shards >= 1 && shards <= 8, "spec packing supports up to 8 shards");
  for (int s = 0; s < shards; ++s) {
    ts_.push_back(std::make_unique<core::AtomicReadableTasArray>(
        world, name_ + ".M" + std::to_string(s)));
    ctrs_.push_back(std::make_unique<core::FetchIncrement>(
        name_ + ".ctr" + std::to_string(s), *ts_.back()));
    regs_.push_back(std::make_unique<core::MaxRegisterFAA>(
        world, name_ + ".reg" + std::to_string(s), n));
  }
  tail_ = world.add<prim::FetchAddInt>(name_ + ".tail");
  entries_ = world.add<prim::RegArray>(name_ + ".entries");
}

void SimKeyedSnapshot::journal_append(sim::Ctx& ctx, int kind, int a, int b,
                                      int64_t v) {
  // The tail fetch&add is the keyed write's linearization point on the
  // snapshot facet; the entry write below only publishes content that was
  // fixed here (the native deposit's release store).
  int64_t t = ctx.world->get(tail_).fetch_add(ctx, 1);
  ctx.world->get(entries_).write(ctx, static_cast<size_t>(t),
                                 num(pack_entry(kind, a, b, v)));
}

void SimKeyedSnapshot::inc(sim::Ctx& ctx, int s) {
  // Shard object FIRST, journal LAST — the pinned cross-facet order shared
  // with the max/sum digests: the journal never runs ahead of the keyed reads.
  ctrs_[static_cast<size_t>(s)]->fetch_and_increment(ctx);
  journal_append(ctx, 1, s, 0, 1);
}

void SimKeyedSnapshot::write_max(sim::Ctx& ctx, int s, int64_t v) {
  regs_[static_cast<size_t>(s)]->write_max(ctx, v);
  journal_append(ctx, 2, s, 0, v);
}

void SimKeyedSnapshot::transfer(sim::Ctx& ctx, int from, int to, int64_t d) {
  // Journal-only: the ONE entry is what makes the debit and credit
  // inseparable at every snapshot cut (the conservation contract).
  journal_append(ctx, 3, from, to, d);
}

std::vector<int64_t> SimKeyedSnapshot::snap(sim::Ctx& ctx) {
  std::vector<int64_t> view(static_cast<size_t>(2 * shards_), 0);
  if (naive_loop_) {
    // Negative control: one pass of direct per-shard reads. Each read is
    // individually fine; the VECTOR is torn by any write landing between two
    // of them — the checker refutes this (not even linearizable).
    for (int s = 0; s < shards_; ++s) {
      view[static_cast<size_t>(s)] = ctrs_[static_cast<size_t>(s)]->read(ctx);
    }
    for (int s = 0; s < shards_; ++s) {
      view[static_cast<size_t>(shards_ + s)] =
          regs_[static_cast<size_t>(s)]->read_max(ctx);
    }
    return view;
  }
  // The FAA(0) tail read IS the snapshot: everything below is a deterministic
  // replay of entries whose content was fixed at their ticket fetch&add.
  int64_t t_end = ctx.world->get(tail_).read(ctx);
  prim::RegArray& entries = ctx.world->get(entries_);
  for (int64_t t = 0; t < t_end; ++t) {
    Val e = entries.read(ctx, static_cast<size_t>(t));
    while (!std::holds_alternative<int64_t>(e)) {
      // Ticket drawn, deposit in flight: poll, like the native acquire-spin.
      e = entries.read(ctx, static_cast<size_t>(t));
    }
    int64_t p = as_num(e);
    int kind = static_cast<int>(p & 3);
    size_t a = static_cast<size_t>((p >> 2) & 7);
    size_t b = static_cast<size_t>((p >> 5) & 7);
    int64_t v = p >> 8;
    if (kind == 1) {
      view[a] += v;
    } else if (kind == 2) {
      view[static_cast<size_t>(shards_) + a] =
          std::max(view[static_cast<size_t>(shards_) + a], v);
    } else {
      view[a] -= v;
      view[b] += v;
    }
  }
  return view;
}

int64_t SimKeyedSnapshot::read_shard(sim::Ctx& ctx, int s) {
  C2SL_CHECK(s >= 0 && s < shards_, "shard index out of range");
  return ctrs_[static_cast<size_t>(s)]->read(ctx);
}

Val SimKeyedSnapshot::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Inc") {
    this->inc(ctx, static_cast<int>(as_num(inv.args)));
    return unit();
  }
  if (inv.name == "WriteMax") {
    int64_t p = as_num(inv.args);
    write_max(ctx, static_cast<int>(p & 7), p >> 3);
    return unit();
  }
  if (inv.name == "Xfer") {
    int64_t p = as_num(inv.args);
    transfer(ctx, static_cast<int>(p & 7), static_cast<int>((p >> 3) & 7), p >> 6);
    return unit();
  }
  if (inv.name == "Snap") return vec(snap(ctx));
  if (inv.name == "ReadShard") {
    return num(read_shard(ctx, static_cast<int>(as_num(inv.args))));
  }
  C2SL_CHECK(false, "unknown operation on keyed snapshot: " + inv.name);
  return unit();
}

// --- SimLaneRegistry --------------------------------------------------------

SimLaneRegistry::SimLaneRegistry(sim::World& world, std::string name, int max_lanes)
    : name_(std::move(name)), max_lanes_(max_lanes) {
  C2SL_CHECK(max_lanes >= 1, "need at least one lane");
  ticket_ts_ = std::make_unique<core::AtomicReadableTasArray>(world, name_ + ".tM");
  tickets_ = std::make_unique<core::FetchIncrement>(name_ + ".tickets", *ticket_ts_);
  free_ts_ = std::make_unique<core::AtomicReadableTasArray>(world, name_ + ".fM");
  free_max_ = std::make_unique<core::FetchIncrement>(name_ + ".fmax", *free_ts_);
  free_ = std::make_unique<core::SLSet>(world, name_ + ".free", *free_max_);
}

int64_t SimLaneRegistry::acquire(sim::Ctx& ctx) {
  Val r = sim::record_op(ctx, name_, "Acquire", unit(), [&]() -> Val {
    // 1. Recycle a freed lane (successful Take linearizes at its winning
    //    test&set — a fixed own-step).
    Val recycled = free_->take(ctx);
    if (!std::holds_alternative<std::string>(recycled)) return recycled;
    // 2. Fresh F&I ticket (linearizes at the winning test&set inside the
    //    Thm 9 ascending scan).
    int64_t t = tickets_->fetch_and_increment(ctx);
    if (t < max_lanes_) return num(t);
    // 3. Tickets spent; one more recycle probe. A kNone response linearizes
    //    at this Take's stabilised EMPTY point, where the free set is empty
    //    and (tickets being monotone) every lane is held.
    recycled = free_->take(ctx);
    if (!std::holds_alternative<std::string>(recycled)) return recycled;
    return num(kNone);
  });
  return as_num(r);
}

void SimLaneRegistry::release(sim::Ctx& ctx, int64_t lane) {
  C2SL_CHECK(lane >= 0 && lane < max_lanes_, "lane out of range");
  sim::record_op(ctx, name_, "Release", num(lane), [&] {
    free_->put(ctx, lane);
    return unit();
  });
}

// --- SimHandoffQueue (the blocking-acquisition handoff queue) ---------------

namespace {
/// Cell markers. A cell holds ⊥ (never touched), num(wid) (announced waiter),
/// "TAKEN" (collected by a handoff) or "REVOKED" (overshot slot).
const char* kHandoffTaken = "TAKEN";
const char* kHandoffRevoked = "REVOKED";
}  // namespace

SimHandoffQueue::SimHandoffQueue(sim::World& world, std::string name,
                                 bool scan_delivery)
    : name_(std::move(name)), scan_delivery_(scan_delivery) {
  tail_ = world.add<prim::FetchAddInt>(name_ + ".tail");
  head_ = world.add<prim::FetchAddInt>(name_ + ".head");
  cells_ = world.add<prim::SwapRegArray>(name_ + ".cells");
}

Val SimHandoffQueue::enq(sim::Ctx& ctx, int64_t wid) {
  C2SL_CHECK(wid > 0, "waiter ids must be positive (0 and markers collide)");
  // The Tail fetch&add IS the enqueue: ticket t commits this waiter to FIFO
  // position t at a fixed own-step. The announcement swap that follows only
  // publishes the id for the handoff to collect — a handoff that arrives
  // first simply waits at the rendezvous (mirroring the native queue, where
  // the roles are swapped and the WAITER waits for the deposit).
  int64_t t = ctx.world->get(tail_).fetch_add(ctx, 1);
  ctx.world->get(cells_).swap(ctx, static_cast<size_t>(t), num(wid));
  return str("OK");
}

Val SimHandoffQueue::hand(sim::Ctx& ctx) {
  prim::SwapRegArray& cells = ctx.world->get(cells_);
  if (scan_delivery_) {
    // Publication-order delivery, Herlihy–Wing style: serve the first
    // ANNOUNCED waiter. With two tickets drawn but neither announced, which
    // waiter is served depends on future cell writes — no prefix-closed
    // linearization exists (the checker's pinned refutation).
    for (;;) {
      int64_t n = ctx.world->get(tail_).read(ctx);
      for (int64_t i = 0; i < n; ++i) {
        Val x = cells.swap(ctx, static_cast<size_t>(i), str(kHandoffTaken));
        if (std::holds_alternative<int64_t>(x)) return x;
      }
    }
  }
  // Ticket-order delivery (the verified design). Guard reads: head first,
  // then tail — when no waiter is visible the EMPTY response linearizes at
  // the tail read (every ticket below the earlier head observation was
  // already committed to some handoff's fetch&add).
  int64_t h0 = ctx.world->get(head_).read(ctx);
  int64_t e0 = ctx.world->get(tail_).read(ctx);
  if (h0 >= e0) return str("EMPTY");
  // The Head fetch&add commits this handoff to slot h — the linearization
  // point, fixed regardless of the future.
  int64_t h = ctx.world->get(head_).fetch_add(ctx, 1);
  if (h >= ctx.world->get(tail_).read(ctx)) {
    // Overshoot (only reachable with concurrent handoffs racing one guard):
    // kill the slot so its eventual waiter retries, report no delivery.
    cells.swap(ctx, static_cast<size_t>(h), str(kHandoffRevoked));
    return str("EMPTY");
  }
  // Collect the committed waiter's id: the swap takes an announced id
  // directly; an empty cell means waiter h sits between its ticket and its
  // announcement — its swap will return our TAKEN marker and leave the id.
  Val v = cells.swap(ctx, static_cast<size_t>(h), str(kHandoffTaken));
  while (!std::holds_alternative<int64_t>(v)) {
    v = cells.read(ctx, static_cast<size_t>(h));
  }
  return v;
}

Val SimHandoffQueue::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Enq") return enq(ctx, as_num(inv.args));
  if (inv.name == "Deq") return hand(ctx);
  C2SL_CHECK(false, "unknown operation on handoff queue: " + inv.name);
  return unit();
}

// --- SimSegmentedTasArray (segment publication protocol) --------------------

SimSegmentedTasArray::SimSegmentedTasArray(sim::World& world, std::string name,
                                           bool publish_before_init)
    : name_(std::move(name)), publish_before_init_(publish_before_init) {
  claims_ = world.add<prim::TasArray>(name_ + ".claims", /*readable=*/false);
  spine_ = world.add<prim::RegArray>(name_ + ".spine");
  cells_ = world.add<prim::SwapRegArray>(name_ + ".cells");
}

std::string SimSegmentedTasArray::cell_object(size_t idx) const {
  return name_ + "[" + std::to_string(idx) + "]";
}

int SimSegmentedTasArray::segment_of(size_t idx) {
  int s = 0;
  while (idx + 1 >= (size_t{2} << s)) ++s;  // base-1 doubling: [2^s-1, 2^(s+1)-1)
  return s;
}

size_t SimSegmentedTasArray::segment_start(int s) { return (size_t{1} << s) - 1; }

size_t SimSegmentedTasArray::segment_size(int s) { return size_t{1} << s; }

/// ⊥ models uninitialised memory. The adversarial reading is "garbage that
/// happens to look set": in the publication-order protocol no step ever
/// observes it (every cells_ access is gated behind an observed publish, which
/// the winner issues only AFTER initialising every cell), so the mapping is
/// dead code there — while in the broken variant it surfaces as a spec
/// violation the checker catches.
int64_t SimSegmentedTasArray::cell_value(const Val& raw) const {
  if (is_unit(raw)) return 1;  // garbage
  return as_num(raw);
}

void SimSegmentedTasArray::ensure_segment(sim::Ctx& ctx, int s) {
  if (!is_unit(ctx.world->get(spine_).read(ctx, static_cast<size_t>(s)))) {
    return;  // already published
  }
  prim::TasArray& claims = ctx.world->get(claims_);
  if (claims.test_and_set(ctx, static_cast<size_t>(s)) == 0) {
    // Claim won: initialise every cell, then publish — the same two-phase
    // order as rt::SegmentedArray::materialize. The broken variant swaps the
    // phases; tests/service_sim_test.cpp pins its refutation.
    prim::SwapRegArray& cells = ctx.world->get(cells_);
    prim::RegArray& spine = ctx.world->get(spine_);
    if (publish_before_init_) {
      spine.write(ctx, static_cast<size_t>(s), num(1));
    }
    const size_t start = segment_start(s);
    for (size_t c = 0; c < segment_size(s); ++c) {
      cells.write(ctx, start + c, num(0));
    }
    if (!publish_before_init_) {
      spine.write(ctx, static_cast<size_t>(s), num(1));
    }
    return;
  }
  // Claim lost: the winner's publish is at most a few steps away; spin on the
  // spine register, mirroring the native losers' spin on the segment pointer.
  // (Under the bounded explorer, schedules that starve the winner truncate at
  // the depth budget — the spin itself is safe, each probe is one step.)
  while (is_unit(ctx.world->get(spine_).read(ctx, static_cast<size_t>(s)))) {
  }
}

int64_t SimSegmentedTasArray::test_and_set(sim::Ctx& ctx, size_t idx) {
  Val r = sim::record_op(ctx, cell_object(idx), "TAS", unit(), [&] {
    ensure_segment(ctx, segment_of(idx));
    return num(cell_value(ctx.world->get(cells_).swap(ctx, idx, num(1))));
  });
  return as_num(r);
}

int64_t SimSegmentedTasArray::read(sim::Ctx& ctx, size_t idx) {
  Val r = sim::record_op(ctx, cell_object(idx), "Read", unit(), [&]() -> Val {
    // Publication gate first: an unpublished segment's cells are all logically
    // 0, and the spine read IS the atomic step that justifies returning 0
    // (no cell of an unpublished segment has ever been swapped).
    if (is_unit(ctx.world->get(spine_).read(
            ctx, static_cast<size_t>(segment_of(idx))))) {
      return num(0);
    }
    return num(cell_value(ctx.world->get(cells_).read(ctx, idx)));
  });
  return as_num(r);
}

// --- SimRoutingEpoch (the PR 9 epoch hand-off) ------------------------------

SimRoutingEpoch::SimRoutingEpoch(sim::World& world, std::string name, int n,
                                 int initial_shards, int max_shards,
                                 bool publish_before_replay)
    : name_(std::move(name)),
      initial_shards_(initial_shards),
      max_shards_(max_shards),
      publish_before_replay_(publish_before_replay) {
  C2SL_CHECK(initial_shards > 0 && (initial_shards & (initial_shards - 1)) == 0,
             "shard count must be a power of two");
  C2SL_CHECK(max_shards >= initial_shards &&
                 (max_shards & (max_shards - 1)) == 0,
             "max shard count must be a power of two >= initial");
  claims_ = world.add<prim::TasArray>(name_ + ".claims", /*readable=*/false);
  counts_ = world.add<prim::RegArray>(name_ + ".counts");
  stamp_ = world.add<prim::RegArray>(name_ + ".stamp");
  for (int s = 0; s < max_shards; ++s) {
    regs_.push_back(std::make_unique<core::MaxRegisterFAA>(
        world, name_ + ".slot" + std::to_string(s), n));
  }
}

std::string SimRoutingEpoch::key_object(uint64_t key) const {
  return name_ + ".k" + std::to_string(key);
}

int64_t SimRoutingEpoch::stamp_read(sim::Ctx& ctx) {
  // ⊥ (never written) is stamp 0: epoch 0 published, nothing installing —
  // the native atomic's zero-initialisation.
  Val v = ctx.world->get(stamp_).read(ctx, 0);
  return std::holds_alternative<int64_t>(v) ? as_num(v) : 0;
}

int SimRoutingEpoch::shards_of(sim::Ctx& ctx, int64_t epoch) {
  // Epoch 0's count is a construction-time constant (the native constructor's
  // happens-before edge); later epochs read the installed count — only ever
  // called for epochs exposed by a stamp read, so the cell is never ⊥.
  if (epoch == 0) return initial_shards_;
  Val v = ctx.world->get(counts_).read(ctx, static_cast<size_t>(epoch));
  C2SL_CHECK(std::holds_alternative<int64_t>(v),
             "epoch count read before its install");
  return static_cast<int>(as_num(v));
}

void SimRoutingEpoch::write_max(sim::Ctx& ctx, uint64_t key, int64_t v) {
  sim::record_op(ctx, key_object(key), "WriteMax", num(v), [&] {
    // Bind under the published epoch of one stamp read (ShardRef's bind),
    // primary slot write, then the Dekker settle loop (ShardRef::settle).
    int64_t st = stamp_read(ctx);
    int64_t applied = st >> 1;  // published epoch
    int slot = static_cast<int>(
        key & (static_cast<uint64_t>(shards_of(ctx, applied)) - 1));
    regs_[static_cast<size_t>(slot)]->write_max(ctx, v);
    st = stamp_read(ctx);
    while (((st + 1) >> 1) != applied) {
      applied = (st + 1) >> 1;  // newest installed epoch
      int s2 = static_cast<int>(
          key & (static_cast<uint64_t>(shards_of(ctx, applied)) - 1));
      if (s2 != slot) {
        slot = s2;
        regs_[static_cast<size_t>(s2)]->write_max(ctx, v);
      }
      st = stamp_read(ctx);
    }
    return unit();
  });
}

int64_t SimRoutingEpoch::read_max(sim::Ctx& ctx, uint64_t key) {
  Val r = sim::record_op(ctx, key_object(key), "ReadMax", unit(), [&] {
    int64_t ep = stamp_read(ctx) >> 1;  // published epoch
    int slot = static_cast<int>(
        key & (static_cast<uint64_t>(shards_of(ctx, ep)) - 1));
    return num(regs_[static_cast<size_t>(slot)]->read_max(ctx));
  });
  return as_num(r);
}

void SimRoutingEpoch::resize(sim::Ctx& ctx, int new_shards) {
  C2SL_CHECK(new_shards <= max_shards_, "resize beyond max_shards");
  C2SL_CHECK((new_shards & (new_shards - 1)) == 0,
             "shard count must be a power of two");
  sim::record_op(ctx, name_ + ".resize", "Resize", num(new_shards), [&]() -> Val {
    int64_t st = stamp_read(ctx);
    if ((st & 1) != 0) return str("INFLIGHT");
    int64_t e = st >> 1;
    int old_count = shards_of(ctx, e);
    if (new_shards <= old_count) return str("NOOP");
    int64_t next = e + 1;
    if (ctx.world->get(claims_).test_and_set(ctx, static_cast<size_t>(next)) != 0) {
      return str("LOST");
    }
    // Install: count first, then the stamp transition 2e -> 2e+1 (opens the
    // writers' dual-write window), replay, publish 2e+1 -> 2e+2. The broken
    // variant publishes BEFORE the replay — serve-before-replay — and the
    // checker refutes it: a fresh reader routes to a new slot and misses a
    // completed write.
    ctx.world->get(counts_).write(ctx, static_cast<size_t>(next), num(new_shards));
    ctx.world->get(stamp_).write(ctx, 0, num(2 * next - 1));
    if (publish_before_replay_) {
      ctx.world->get(stamp_).write(ctx, 0, num(2 * next));
    }
    for (int j = old_count; j < new_shards; ++j) {
      int64_t mv = regs_[static_cast<size_t>(j & (old_count - 1))]->read_max(ctx);
      if (mv > 0) regs_[static_cast<size_t>(j)]->write_max(ctx, mv);
    }
    if (!publish_before_replay_) {
      ctx.world->get(stamp_).write(ctx, 0, num(2 * next));
    }
    return str("OK");
  });
}

// --- SimShardedMaxRegister (aggregate-scan experiment) ----------------------

SimShardedMaxRegister::SimShardedMaxRegister(sim::World& world, std::string name, int n,
                                             int shards, bool double_collect)
    : name_(std::move(name)), shards_(shards), double_collect_(double_collect) {
  C2SL_CHECK(shards > 0 && (shards & (shards - 1)) == 0,
             "shard count must be a power of two");
  regs_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    regs_.push_back(std::make_unique<core::MaxRegisterFAA>(
        world, name_ + ".shard" + std::to_string(s), n));
  }
}

void SimShardedMaxRegister::write_max(sim::Ctx& ctx, int64_t v) {
  int s = static_cast<int>(static_cast<uint64_t>(v) & static_cast<uint64_t>(shards_ - 1));
  regs_[static_cast<size_t>(s)]->write_max(ctx, v);
}

std::vector<int64_t> SimShardedMaxRegister::collect(sim::Ctx& ctx) {
  std::vector<int64_t> view(static_cast<size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    view[static_cast<size_t>(s)] = regs_[static_cast<size_t>(s)]->read_max(ctx);
  }
  return view;
}

int64_t SimShardedMaxRegister::read_max(sim::Ctx& ctx) {
  std::vector<int64_t> curr = collect(ctx);
  if (double_collect_) {
    for (;;) {
      std::vector<int64_t> next = collect(ctx);
      if (next == curr) break;
      curr = std::move(next);
    }
  }
  return *std::max_element(curr.begin(), curr.end());
}

Val SimShardedMaxRegister::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "WriteMax") {
    write_max(ctx, as_num(inv.args));
    return unit();
  }
  if (inv.name == "ReadMax") return num(read_max(ctx));
  C2SL_CHECK(false, "unknown operation on sharded max register: " + inv.name);
  return unit();
}

// --- SimShardedCounter (aggregate-scan experiment) ---------------------------

SimShardedCounter::SimShardedCounter(sim::World& world, std::string name, int shards,
                                     bool double_collect)
    : name_(std::move(name)), shards_(shards), double_collect_(double_collect) {
  C2SL_CHECK(shards > 0 && (shards & (shards - 1)) == 0,
             "shard count must be a power of two");
  for (int s = 0; s < shards; ++s) {
    ts_.push_back(std::make_unique<core::AtomicReadableTasArray>(
        world, name_ + ".M" + std::to_string(s)));
    ctrs_.push_back(std::make_unique<core::FetchIncrement>(
        name_ + ".ctr" + std::to_string(s), *ts_.back()));
  }
}

void SimShardedCounter::inc(sim::Ctx& ctx) {
  int s = static_cast<int>(static_cast<uint64_t>(ctx.self) &
                           static_cast<uint64_t>(shards_ - 1));
  ctrs_[static_cast<size_t>(s)]->fetch_and_increment(ctx);
}

std::vector<int64_t> SimShardedCounter::collect(sim::Ctx& ctx) {
  std::vector<int64_t> view(static_cast<size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    view[static_cast<size_t>(s)] = ctrs_[static_cast<size_t>(s)]->read(ctx);
  }
  return view;
}

int64_t SimShardedCounter::read(sim::Ctx& ctx) {
  std::vector<int64_t> curr = collect(ctx);
  if (double_collect_) {
    for (;;) {
      std::vector<int64_t> next = collect(ctx);
      if (next == curr) break;
      curr = std::move(next);
    }
  }
  int64_t sum = 0;
  for (int64_t v : curr) sum += v;
  return sum;
}

Val SimShardedCounter::apply(sim::Ctx& ctx, const verify::Invocation& inv) {
  if (inv.name == "Inc") {
    this->inc(ctx);
    return unit();
  }
  if (inv.name == "Read") return num(read(ctx));
  C2SL_CHECK(false, "unknown operation on sharded counter: " + inv.name);
  return unit();
}

}  // namespace c2sl::svc
