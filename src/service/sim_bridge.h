// Sim-mode C2Store bridge: small sharded configurations of the service layer
// rebuilt over the *simulated* paper constructions, so the bounded model
// checkers (verify/lin_checker, verify/strong_lin) can exercise the service's
// routing and aggregate algorithms on full execution trees.
//
// Four facades, mirroring the native service's verification story:
//
//   * SimKeyedStore — the per-key service path through the REAL ShardRouter:
//     keyed max-register and counter ops recorded under per-shard object
//     names ("<name>.s<k>.max" / "<name>.s<k>.ctr"). Strong linearizability
//     is local, so checking each shard facet on the shared execution tree
//     certifies the whole keyed configuration; this is the configuration the
//     checker PASSES (tests/service_sim_test.cpp).
//
//   * SimGlobalMax — the digest design behind C2Store::global_max(): WriteMax
//     routes the value to a shard register AND a single digest register;
//     GlobalMax reads only the digest (one FAA(0) step). Strongly linearizable
//     — the write's linearization point is its own digest step.
//
//   * SimCounterSumDigest — the digest design behind C2Store::counter_sum()
//     (runtime/counter_sum_digest.h): Inc lands in a per-shard Thm 9 counter
//     AND fetch&adds one digest FAA register (shard first — the digest never
//     leads the keyed read paths, same pinned cross-facet order as the max
//     digest); Read is a single FAA(0) on the digest. Strongly linearizable —
//     every Inc linearizes at its own digest FAA step, every Read at its
//     FAA(0), fixed own-steps. This is the sum the double-collect scan CANNOT
//     provide (refutation below), the §3.2 pack-into-one-FAA-word move in its
//     degenerate sum form (addition is its own combiner, so the per-process
//     components share the accumulator).
//
//   * SimShardedMaxRegister / SimShardedCounter — the aggregate-SCAN
//     experiments. Reads collect per-shard values: with `double_collect` the
//     read repeats until two consecutive collects of the monotone values
//     coincide — linearizable (the stable pair pins a single logical instant)
//     but NOT strongly linearizable: the linearization point depends on
//     future schedule steps, so no prefix-closed assignment exists and the
//     checker refutes it. With `double_collect = false` (naive one-pass scan)
//     the read is not even linearizable. Both refutations are pinned tests —
//     they are exactly why C2Store serves global_max from a digest word, the
//     same reason the paper packs its snapshot into one fetch&add register.
//   * SimLaneRegistry — the lane lifecycle behind C2Store::open_session()
//     (service/lane_registry.h) rebuilt over the simulated constructions:
//     Acquire tries SLSet::Take (recycle), falls back to a Thm 9
//     fetch&increment ticket, and reports -1 only when tickets are spent and
//     the free set stabilises empty; Release is SLSet::Put. The checker
//     verifies acquire/release strongly linearizable against
//     verify::LaneRegistrySpec (tests/lane_registry_test.cpp).
//
//   * SimHandoffQueue — the sim twin of the FIFO handoff queue behind
//     blocking open_session() (runtime/handoff_queue.h): waiters register by
//     one Tail fetch&add (the enqueue's linearization point) and announce
//     their id on their ticket's swap cell; a handoff commits to the oldest
//     ticket by one Head fetch&add and collects the waiter id from the cell.
//     Both sides linearize at their own FAA — fixed own-steps — so the
//     checker verifies the enqueue/handoff facets strongly linearizable
//     against verify::QueueSpec (tests/handoff_queue_test.cpp). The data
//     direction is inverted relative to the native queue (there the DELIVERER
//     deposits a lane and the waiter collects; here the WAITER deposits its
//     id and the handoff collects) because the checkable response is "which
//     waiter got served" — the commitment structure under test is identical.
//     The `scan_delivery` variant replaces the Head fetch&add with
//     Herlihy–Wing's publication-order scan (take the first ANNOUNCED
//     waiter): its delivery target is decided by future cell writes, and the
//     checker REFUTES it (pinned negative control, same schedule family and
//     verdict as the baselines/herlihy_wing_queue positive control).
//
//   * SimSegmentedTasArray — the sim twin of the native SegmentedArray's
//     publication protocol (runtime/segmented_array.h), at base-object step
//     granularity: doubling segments (base 1 here, so the trees stay small:
//     segment s covers [2^s − 1, 2^(s+1) − 1)), each published by the winner
//     of a per-segment claim test&set through a register write, with cells
//     INITIALISED BEFORE the publish. Uninitialised cells model real
//     uninitialised memory: they read as garbage (an adversarial 1). The
//     checker verifies each index facet of the publication-order variant
//     strongly linearizable, and REFUTES the `publish_before_init` variant —
//     a reader that passes the publication gate early observes garbage, and
//     the winner's late cell-initialisation then erases observed state, so
//     some histories are not even linearizable (tests/service_sim_test.cpp
//     pins both verdicts). This is the mechanised justification for the
//     init-then-publish order in rt::SegmentedArray::materialize.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/object_api.h"
#include "core/readable_tas.h"
#include "core/sl_set.h"
#include "primitives/faa.h"
#include "service/shard_router.h"

namespace c2sl::svc {

class SimKeyedStore {
 public:
  SimKeyedStore(sim::World& world, std::string name, int n, int shards);

  // Each call is recorded as one high-level op on its shard's facet.
  void max_write(sim::Ctx& ctx, uint64_t key, int64_t v);
  int64_t max_read(sim::Ctx& ctx, uint64_t key);
  int64_t counter_inc(sim::Ctx& ctx, uint64_t key);
  int64_t counter_read(sim::Ctx& ctx, uint64_t key);

  int shard_of(uint64_t key) const { return router_.shard_of(key); }
  std::string max_object(int shard) const;
  std::string ctr_object(int shard) const;

 private:
  std::string name_;
  ShardRouter router_;
  std::vector<std::unique_ptr<core::MaxRegisterFAA>> regs_;
  std::vector<std::unique_ptr<core::AtomicReadableTasArray>> ts_;
  std::vector<std::unique_ptr<core::FetchIncrement>> ctrs_;
};

class SimGlobalMax : public core::ConcurrentObject {
 public:
  SimGlobalMax(sim::World& world, std::string name, int n, int shards);

  void write_max(sim::Ctx& ctx, int64_t v);  ///< shard write, then digest write
  int64_t read_max(sim::Ctx& ctx);           ///< digest read only
  /// Direct read of one shard register ("ReadShard" under apply). Not part of
  /// the service surface — exposed so tests/service_sim_test.cpp can pin the
  /// cross-facet write order (shard first, digest second): the digest must
  /// never run ahead of every shard register, and the shard register may
  /// briefly run ahead of the digest.
  int64_t read_shard_max(sim::Ctx& ctx, int s);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  int shards_;
  std::vector<std::unique_ptr<core::MaxRegisterFAA>> regs_;
  std::unique_ptr<core::MaxRegisterFAA> digest_;
};

/// Sim twin of the counter-sum digest behind C2Store::counter_sum() (see
/// header comment above). Incs route to per-shard Thm 9 counters by calling
/// process id (like SimShardedCounter, so the two designs face identical
/// schedules) and then take one digest FAA step; Read is one digest FAA(0).
class SimCounterSumDigest : public core::ConcurrentObject {
 public:
  SimCounterSumDigest(sim::World& world, std::string name, int shards);

  void inc(sim::Ctx& ctx);      ///< shard counter win, then digest fetch&add
  int64_t read(sim::Ctx& ctx);  ///< digest FAA(0) only
  /// Direct read of one shard counter ("ReadShard" under apply). Not part of
  /// the service surface — exposed so tests/service_sim_test.cpp can pin the
  /// cross-facet write order (shard first, digest second): the digest must
  /// never run ahead of the shard counters, and a shard counter may briefly
  /// run ahead of the digest.
  int64_t read_shard(sim::Ctx& ctx, int s);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  int shards_;
  std::vector<std::unique_ptr<core::AtomicReadableTasArray>> ts_;
  std::vector<std::unique_ptr<core::FetchIncrement>> ctrs_;
  sim::Handle<prim::FetchAddInt> digest_;
};

/// Sim twin of the telemetry ops-total counter (telemetry/telemetry.h): each
/// lane (== calling process here) keeps its running op count in a single-owner
/// plain REGISTER cell, and every Inc also fetch&adds one shared digest word —
/// exactly the LaneTelemetry::bump + StoreTelemetry::bump_ops_total pair. Read
/// is a single digest FAA(0) (the verified configuration behind
/// metrics_snapshot().ops_total) or, with `scan_read`, the naive one-pass sum
/// over the lane cells — the pinned-REFUTED negative control: a reader that
/// has scanned cell 0 as empty cannot commit its return value at any own step,
/// because whether a completed Inc counts depends on cells it will only read
/// in the future, so no prefix-closed linearization exists. This is why the
/// native snapshot serves ops_total from the digest and exports the lane scan
/// only as the documented-racy `ops_total_scan` diagnostic.
class SimTelemetryCounter : public core::ConcurrentObject {
 public:
  SimTelemetryCounter(sim::World& world, std::string name, int lanes,
                      bool scan_read = false);

  void inc(sim::Ctx& ctx);      ///< lane-cell register write, then digest FAA
  int64_t read(sim::Ctx& ctx);  ///< digest FAA(0), or one-pass lane-cell sum

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  int lanes_;
  bool scan_read_;
  sim::Handle<prim::RegArray> cells_;     ///< per-lane counts, single writer
  sim::Handle<prim::FetchAddInt> digest_; ///< the ops-total FAA digest
};

/// Sim twin of the write journal behind C2Session::snapshot()
/// (runtime/keyed_version_digest.h): keyed writes land on their per-shard
/// paper construction FIRST and then append one immutable entry to a
/// ticket-indexed journal — the tail fetch&add IS the write's linearization
/// point on the snapshot facet. Snap reads the tail once (FAA(0) — its own
/// fixed step) and deterministically replays entries below that ticket into
/// per-shard accumulators, polling a not-yet-deposited entry exactly like the
/// native replayer (entry CONTENT is fixed at ticket time, so the replay is a
/// pure function of the tail read). Xfer appends ONE entry moving value
/// between two shard balances — which is why every snapshot conserves the
/// transferred sum: no cut can separate the debit from the credit.
///
/// With `naive_loop` Snap instead does the obvious thing — one pass of direct
/// per-shard reads — and the checker REFUTES it (not even linearizable: a
/// write landing between two of the loop's reads tears the vector). That
/// pinned refutation is the reason C2Session::snapshot replays a journal
/// instead of looping over keyed reads (tests/snapshot_sim_test.cpp).
///
/// All ops are recorded on ONE facet (`name`), checkable against
/// verify::KeyedSnapshotSpec. Args use the spec's packed-int encoding;
/// "ReadShard"(s) exposes the direct shard-counter read for the cross-facet
/// order pins (shard first, journal last — same contract as the digests).
class SimKeyedSnapshot : public core::ConcurrentObject {
 public:
  SimKeyedSnapshot(sim::World& world, std::string name, int n, int shards,
                   bool naive_loop = false);

  void inc(sim::Ctx& ctx, int s);                      ///< shard ctr, then journal
  void write_max(sim::Ctx& ctx, int s, int64_t v);     ///< shard reg, then journal
  void transfer(sim::Ctx& ctx, int from, int to, int64_t d);  ///< journal only
  std::vector<int64_t> snap(sim::Ctx& ctx);  ///< tail FAA(0) + replay (or loop)
  int64_t read_shard(sim::Ctx& ctx, int s);  ///< direct shard counter read

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  /// One tail fetch&add (the append's linearization point) + the entry write.
  void journal_append(sim::Ctx& ctx, int kind, int a, int b, int64_t v);

  std::string name_;
  int shards_;
  bool naive_loop_;
  std::vector<std::unique_ptr<core::AtomicReadableTasArray>> ts_;
  std::vector<std::unique_ptr<core::FetchIncrement>> ctrs_;
  std::vector<std::unique_ptr<core::MaxRegisterFAA>> regs_;
  sim::Handle<prim::FetchAddInt> tail_;   ///< journal tickets; FAA(0) = snapshot
  sim::Handle<prim::RegArray> entries_;   ///< ticket-indexed write-once entries
};

/// Sim twin of svc::LaneRegistry (see header comment above). Methods record
/// themselves as high-level ops, SimKeyedStore-style: spawn fibers that call
/// acquire/release directly.
class SimLaneRegistry {
 public:
  static constexpr int64_t kNone = -1;

  SimLaneRegistry(sim::World& world, std::string name, int max_lanes);

  /// Recorded as "Acquire" -> lane | -1 on object `name`.
  int64_t acquire(sim::Ctx& ctx);
  /// Recorded as "Release"(lane) -> () on object `name`.
  void release(sim::Ctx& ctx, int64_t lane);

  std::string object_name() const { return name_; }
  int max_lanes() const { return max_lanes_; }

 private:
  std::string name_;
  int max_lanes_;
  std::unique_ptr<core::AtomicReadableTasArray> ticket_ts_;
  std::unique_ptr<core::FetchIncrement> tickets_;  ///< Thm 9 F&I dispenser
  std::unique_ptr<core::AtomicReadableTasArray> free_ts_;
  std::unique_ptr<core::FetchIncrement> free_max_;
  std::unique_ptr<core::SLSet> free_;              ///< Thm 10 recycle set
};

/// Sim twin of rt::HandoffQueue (see header comment above). Records "Enq"
/// (waiter registration, arg = waiter id > 0) and "Deq" (handoff) on one
/// queue facet object, checkable against verify::QueueSpec: FIFO in ticket
/// order, both linearization points fixed own-step fetch&adds. With
/// `scan_delivery` the handoff instead sweeps announced cells Herlihy–Wing
/// style — the pinned-refuted publication-order variant.
class SimHandoffQueue : public core::ConcurrentObject {
 public:
  SimHandoffQueue(sim::World& world, std::string name, bool scan_delivery = false);

  /// Recorded as "Enq"(wid) -> "OK"; linearizes at the Tail fetch&add.
  Val enq(sim::Ctx& ctx, int64_t wid);
  /// Recorded as "Deq" -> wid | "EMPTY"; linearizes at the Head fetch&add
  /// (ticket-order commitment) — or, in the scan_delivery variant, wherever
  /// the future lets it (which is exactly what the checker refutes).
  Val hand(sim::Ctx& ctx);

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::string name_;
  bool scan_delivery_;
  sim::Handle<prim::FetchAddInt> tail_;   ///< waiter tickets (enqueue FAAs)
  sim::Handle<prim::FetchAddInt> head_;   ///< handoff tickets (commitment FAAs)
  sim::Handle<prim::SwapRegArray> cells_; ///< single-use rendezvous slots
};

/// Sim twin of rt::SegmentedArray<NativeReadableTAS> (see header comment).
/// Methods record themselves as high-level ops on PER-INDEX facet objects
/// (`cell_object(idx)`), so the checker can certify each cell as a readable
/// test&set via verify::TasSpec — strong linearizability is local, so
/// per-facet verdicts on the shared tree certify the whole array.
class SimSegmentedTasArray {
 public:
  SimSegmentedTasArray(sim::World& world, std::string name,
                       bool publish_before_init = false);

  /// Recorded as "TAS" -> 0|1 on `cell_object(idx)`.
  int64_t test_and_set(sim::Ctx& ctx, size_t idx);
  /// Recorded as "Read" -> 0|1 on `cell_object(idx)`. Never allocates: an
  /// unpublished segment reads as 0 at the spine-read step, mirroring the
  /// native peek() path.
  int64_t read(sim::Ctx& ctx, size_t idx);

  std::string cell_object(size_t idx) const;

  static int segment_of(size_t idx);
  static size_t segment_start(int s);
  static size_t segment_size(int s);

 private:
  void ensure_segment(sim::Ctx& ctx, int s);
  int64_t cell_value(const Val& raw) const;

  std::string name_;
  bool publish_before_init_;
  sim::Handle<prim::TasArray> claims_;     ///< per-segment one-shot claim
  sim::Handle<prim::RegArray> spine_;      ///< per-segment published flag
  /// Cell states: ⊥ = uninitialised memory (garbage), 0 = initialised unset,
  /// 1 = set. SwapRegArray so test&set is one swap step, like the native
  /// exchange.
  sim::Handle<prim::SwapRegArray> cells_;
};

/// Sim twin of the PR 9 routing-epoch hand-off (runtime/routing_epoch.h +
/// the epoch-stamped refs in service/c2store.h), at base-object step
/// granularity. One stamp register drives the whole protocol, exactly like
/// the native spine (2e = epoch e published, 2e+1 = epoch e+1 installing);
/// claims are per-epoch one-shot test&sets, counts live in a register spine,
/// and per-slot state is a Thm 1 max register per slot. Routing is the
/// identity mask (slot = key & (count-1)), which preserves the nesting
/// property the migration relies on while keeping the trees small.
///
///   * WriteMax(key, v): route under the PUBLISHED epoch of one stamp read,
///     slot write_max, then the writer-side Dekker settle loop — re-read the
///     stamp and re-apply under any newer mask until it is stable (the native
///     detail::ShardRef::settle verbatim).
///   * ReadMax(key): route under the published epoch of one stamp read, read
///     the slot register. (Reads never settle — the linearize-early argument
///     in the c2store.h header.)
///   * Resize(new): claim test&set -> count install -> stamp 2e+1 -> replay
///     parent slots into new slots by write_max -> stamp 2e+2.
///
/// Ops record on PER-KEY facet objects (`key_object`), so the checker
/// verifies each key's max-register facet strongly linearizable ACROSS the
/// migration cut — the epoch hand-off theorem, mechanised. The
/// `publish_before_replay` variant publishes the new epoch before replaying
/// (the serve-before-replay bug): a freshly-bound reader routes to the new
/// slot and reads 0 after a completed write — not even linearizable; the
/// checker REFUTES it (tests/service_sim_test.cpp pins both verdicts).
/// Resize itself records on a separate admin facet no spec checks.
class SimRoutingEpoch {
 public:
  SimRoutingEpoch(sim::World& world, std::string name, int n,
                  int initial_shards, int max_shards,
                  bool publish_before_replay = false);

  /// Recorded as "WriteMax"(v) on key_object(key).
  void write_max(sim::Ctx& ctx, uint64_t key, int64_t v);
  /// Recorded as "ReadMax" on key_object(key).
  int64_t read_max(sim::Ctx& ctx, uint64_t key);
  /// Recorded as "Resize"(new_shards) -> OK|NOOP|LOST|INFLIGHT on the admin
  /// facet (`name`.resize); the replay steps are the caller's own base steps.
  void resize(sim::Ctx& ctx, int new_shards);

  std::string key_object(uint64_t key) const;

 private:
  int64_t stamp_read(sim::Ctx& ctx);
  /// Identity-mask routing (slot = key & (count-1)) preserves the nesting
  /// property — a key either keeps its slot or moves to an index >= the old
  /// count — with no hashing noise in the trees.
  int shards_of(sim::Ctx& ctx, int64_t epoch);

  std::string name_;
  int initial_shards_;
  int max_shards_;
  bool publish_before_replay_;
  sim::Handle<prim::TasArray> claims_;  ///< per-epoch one-shot resize claim
  sim::Handle<prim::RegArray> counts_;  ///< epoch -> shard count (install)
  sim::Handle<prim::RegArray> stamp_;   ///< cell 0: the stamp word (⊥ = 0)
  std::vector<std::unique_ptr<core::MaxRegisterFAA>> regs_;  ///< per-slot Thm 1
};

class SimShardedMaxRegister : public core::ConcurrentObject {
 public:
  SimShardedMaxRegister(sim::World& world, std::string name, int n, int shards,
                        bool double_collect = true);

  void write_max(sim::Ctx& ctx, int64_t v);  ///< routes by v & (shards-1)
  int64_t read_max(sim::Ctx& ctx);           ///< aggregate scan

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::vector<int64_t> collect(sim::Ctx& ctx);

  std::string name_;
  int shards_;
  bool double_collect_;
  std::vector<std::unique_ptr<core::MaxRegisterFAA>> regs_;
};

class SimShardedCounter : public core::ConcurrentObject {
 public:
  SimShardedCounter(sim::World& world, std::string name, int shards,
                    bool double_collect = true);

  void inc(sim::Ctx& ctx);    ///< routes by calling process id
  int64_t read(sim::Ctx& ctx);  ///< aggregate scan (sum)

  std::string object_name() const override { return name_; }
  Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override;

 private:
  std::vector<int64_t> collect(sim::Ctx& ctx);

  std::string name_;
  int shards_;
  bool double_collect_;
  std::vector<std::unique_ptr<core::AtomicReadableTasArray>> ts_;
  std::vector<std::unique_ptr<core::FetchIncrement>> ctrs_;
};

}  // namespace c2sl::svc
