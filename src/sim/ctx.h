// Per-process execution context.
//
// Every operation implementation in this library is written against a Ctx: the
// context names the executing process, points at the world holding the shared
// base objects, and (when running under a scheduler) gates every base-object
// access so the scheduler controls the interleaving.
//
// Two modes:
//  * scheduled: `sched != nullptr` — gate() parks the fiber until the scheduler
//    grants the process its next atomic step; crash injection unwinds here.
//  * solo: `sched == nullptr` — gate() is free. Used by Lemma 12's algorithm B
//    to locally simulate decision sequences on a cloned world, and by purely
//    sequential tests.
//
// The pre-step hook implements algorithm B's instrumentation ("increment t and
// write T[i] before executing the next step of A", Lemma 12 step 3): the hook
// runs immediately before each gated step, and is suppressed re-entrantly so
// the hook's own base-object accesses are ordinary steps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/history.h"
#include "sim/world.h"
#include "util/value.h"

namespace c2sl::sim {

class Scheduler;

/// Thrown from Ctx::gate() in solo mode when the step budget is exhausted:
/// a local simulation (Lemma 12 step 6) failed to terminate within bounds.
struct SoloBudgetExceeded {};

struct Ctx {
  World* world = nullptr;
  Scheduler* sched = nullptr;
  History* hist = nullptr;
  ProcId self = 0;

  /// Solo mode only: remaining gate budget before SoloBudgetExceeded.
  uint64_t solo_budget = UINT64_MAX;

  std::function<void(Ctx&)> pre_step_hook;
  bool in_hook = false;

  /// Total base-object steps this process has taken (drives wait-freedom
  /// step-bound measurements).
  uint64_t steps_taken = 0;

  /// Atomic-step gate: called by every simulated primitive exactly once, at the
  /// operation's atomic point. Defined in scheduler.cpp.
  void gate(const std::string& object_name, const std::string& desc);

  /// History helpers used by test drivers (not by implementations; inner
  /// operations of layered implementations are implementation detail and do not
  /// appear in the recorded high-level history).
  OpId begin_op(std::string_view object, std::string_view name, Val args);
  void end_op(OpId id, Val resp);
};

/// Runs `f` as one recorded high-level operation and returns its response.
template <typename F>
Val record_op(Ctx& c, std::string_view object, std::string_view name, Val args, F&& f) {
  OpId id = c.begin_op(object, name, std::move(args));
  Val r = std::forward<F>(f)();
  c.end_op(id, r);
  return r;
}

}  // namespace c2sl::sim
