#include "sim/dot.h"

#include "sim/history.h"

namespace c2sl::sim {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const ExecTree& tree, const DotOptions& opts) {
  std::string out = "digraph exec_tree {\n  node [shape=box, fontsize=9];\n";
  for (const ExecNode& node : tree.nodes) {
    std::string label = "#" + std::to_string(node.id);
    if (node.all_done) label += " (done)";
    if (node.truncated) label += " (truncated)";
    for (const Event& e : node.suffix) {
      std::string line = to_string(e);
      if (line.size() > opts.max_label_chars) {
        line = line.substr(0, opts.max_label_chars) + "...";
      }
      label += "\\n" + escape(line);
    }
    out += "  n" + std::to_string(node.id) + " [label=\"" + label + "\"";
    if (node.id == opts.highlight_node) {
      out += ", style=filled, fillcolor=salmon";
    } else if (node.all_done) {
      out += ", style=filled, fillcolor=palegreen";
    }
    out += "];\n";
  }
  for (const ExecNode& node : tree.nodes) {
    if (node.parent < 0) continue;
    std::string edge_label = "p" + std::to_string(node.incoming.proc);
    if (node.incoming.crash) edge_label += " CRASH";
    out += "  n" + std::to_string(node.parent) + " -> n" + std::to_string(node.id) +
           " [label=\"" + edge_label + "\", fontsize=8];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace c2sl::sim
