// Graphviz export of execution trees — tooling for inspecting checker
// counterexamples: each node shows the events appended on its incoming edge;
// highlighted nodes mark a checker-reported witness.
#pragma once

#include <string>

#include "sim/explorer.h"

namespace c2sl::sim {

struct DotOptions {
  /// Node to highlight (e.g. StrongLinResult::witness_node); -1 for none.
  int highlight_node = -1;
  /// Trim event labels to this many characters per line.
  size_t max_label_chars = 60;
};

/// Renders the tree in DOT format (pipe into `dot -Tsvg`).
std::string to_dot(const ExecTree& tree, const DotOptions& opts = {});

}  // namespace c2sl::sim
