#include "sim/explorer.h"

#include <algorithm>

#include "util/assert.h"

namespace c2sl::sim {

std::vector<Event> ExecTree::history_at(int id) const {
  std::vector<int> chain;
  for (int cur = id; cur != -1; cur = nodes[static_cast<size_t>(cur)].parent) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  std::vector<Event> out;
  for (int node : chain) {
    const auto& sfx = nodes[static_cast<size_t>(node)].suffix;
    out.insert(out.end(), sfx.begin(), sfx.end());
  }
  return out;
}

std::vector<Choice> ExecTree::path_to(int id) const {
  std::vector<Choice> out;
  for (int cur = id; cur != -1; cur = nodes[static_cast<size_t>(cur)].parent) {
    if (nodes[static_cast<size_t>(cur)].parent != -1) {
      out.push_back(nodes[static_cast<size_t>(cur)].incoming);
    }
  }
  std::reverse(out.begin(), out.end());
  out.insert(out.begin(), prefix.begin(), prefix.end());
  return out;
}

namespace {

/// Replays `path` on a fresh SimRun and reports the resulting state.
struct ReplayResult {
  std::vector<Event> events;
  std::vector<ProcId> runnable;
  bool ok = true;  // false if an assertion-level problem occurred
};

ReplayResult replay(int n, const ScenarioFn& scenario, const std::vector<Choice>& path) {
  ReplayResult res;
  SimRun run(n);
  scenario(run);
  for (const Choice& c : path) {
    run.sched.apply(c);
  }
  res.events = run.history.events();
  res.runnable = run.sched.runnable();
  return res;
}

}  // namespace

ExecTree explore(int n, const ScenarioFn& scenario, const ExploreOptions& opts) {
  ExecTree tree;
  tree.prefix = opts.prefix;
  tree.nodes.push_back(ExecNode{});

  // Depth-first expansion with an explicit stack of node ids; each expansion
  // replays the path (cost: O(nodes * depth) scheduler steps).
  std::vector<int> stack = {0};
  // Number of crashes along the path to each node (for the crash budget).
  std::vector<int> crashes = {0};

  {
    ReplayResult root = replay(n, scenario, opts.prefix);
    tree.nodes[0].suffix = root.events;
    tree.nodes[0].all_done = root.runnable.empty();
  }

  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();

    std::vector<Choice> path = tree.path_to(id);
    ExecNode& node = tree.nodes[static_cast<size_t>(id)];
    if (node.depth >= opts.max_depth) {
      node.truncated = !node.all_done;
      continue;
    }

    ReplayResult here = replay(n, scenario, path);
    if (here.runnable.empty()) {
      tree.nodes[static_cast<size_t>(id)].all_done = true;
      continue;
    }

    std::vector<Choice> branches;
    for (ProcId p : here.runnable) branches.push_back(Choice{p, false});
    if (opts.include_crashes &&
        crashes[static_cast<size_t>(id)] < opts.max_crashes &&
        here.runnable.size() > 1) {
      for (ProcId p : here.runnable) branches.push_back(Choice{p, true});
    }

    for (const Choice& c : branches) {
      if (tree.nodes.size() >= opts.max_nodes) {
        tree.budget_exhausted = true;
        tree.nodes[static_cast<size_t>(id)].truncated = true;
        break;
      }
      std::vector<Choice> child_path = path;
      child_path.push_back(c);
      ReplayResult child = replay(n, scenario, child_path);

      ExecNode child_node;
      child_node.id = static_cast<int>(tree.nodes.size());
      child_node.parent = id;
      child_node.incoming = c;
      child_node.depth = tree.nodes[static_cast<size_t>(id)].depth + 1;
      child_node.all_done = child.runnable.empty();
      C2SL_ASSERT(child.events.size() >= here.events.size());
      child_node.suffix.assign(child.events.begin() +
                                   static_cast<ptrdiff_t>(here.events.size()),
                               child.events.end());
      int child_id = child_node.id;
      tree.nodes[static_cast<size_t>(id)].children.push_back(child_id);
      tree.nodes.push_back(std::move(child_node));
      crashes.push_back(crashes[static_cast<size_t>(id)] + (c.crash ? 1 : 0));
      stack.push_back(child_id);
    }
  }
  return tree;
}

}  // namespace c2sl::sim
