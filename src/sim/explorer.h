// Bounded exhaustive exploration of the execution tree of a scenario.
//
// A node is a finite execution (a choice sequence); its children extend it by
// one scheduler choice. The tree is the object over which strong
// linearizability is defined: a prefix-closed linearization function assigns a
// linearization to every node such that each node's value is a prefix of all of
// its children's values. The strong-linearizability checker (verify/strong_lin)
// consumes this tree.
//
// The explorer replays the scenario once per node (executions are deterministic
// functions of the choice sequence), records the events appended on each edge,
// and truncates at a depth or node budget.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_run.h"

namespace c2sl::sim {

struct ExploreOptions {
  int max_depth = 32;          ///< maximum choice-sequence length BELOW the root
  size_t max_nodes = 100000;   ///< global node budget
  bool include_crashes = false;
  int max_crashes = 1;         ///< per-path crash budget when crashes included
  /// Guided exploration: fixed choice sequence applied before branching. The
  /// tree's root then represents the execution after `prefix`. Sound for
  /// refutations: a prefix-closure conflict inside any subtree of the full
  /// execution tree is a conflict of the full tree.
  std::vector<Choice> prefix;
};

struct ExecNode {
  int id = 0;
  int parent = -1;
  Choice incoming;            ///< choice on the edge from parent (root: unset)
  std::vector<int> children;
  std::vector<Event> suffix;  ///< events appended relative to the parent node
  bool all_done = false;      ///< every program finished at this node
  bool truncated = false;     ///< children omitted (depth or node budget hit)
  int depth = 0;
};

struct ExecTree {
  std::vector<ExecNode> nodes;  ///< nodes[0] is the root (execution after prefix)
  std::vector<Choice> prefix;   ///< guided-exploration prefix (usually empty)
  bool budget_exhausted = false;

  /// Full event history at node `id` (concatenated suffixes from the root;
  /// the root suffix includes all prefix events).
  std::vector<Event> history_at(int id) const;
  /// Choice sequence from the scenario start to node `id` (prefix included).
  std::vector<Choice> path_to(int id) const;
  size_t size() const { return nodes.size(); }
};

/// Explores all executions of `scenario` with `n` processes.
ExecTree explore(int n, const ScenarioFn& scenario, const ExploreOptions& opts);

}  // namespace c2sl::sim
