#include "sim/fiber.h"

#include <cstdint>

#if C2SL_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#include "util/assert.h"

namespace c2sl::sim {

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : stack_(stack_bytes), body_(std::move(body)) {
  C2SL_ASSERT(stack_bytes >= 16 * 1024);
}

Fiber::~Fiber() {
  // Owners (the Scheduler) are responsible for unwinding unfinished fibers via
  // crash injection before destruction; if they did not, the stack memory is
  // still reclaimed here but destructors of objects on the fiber stack are
  // skipped. The Scheduler's destructor guarantees this never happens in
  // practice.
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  auto addr = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  reinterpret_cast<Fiber*>(addr)->run_body();
  // Returning from the trampoline resumes uc_link (== caller_).
}

void Fiber::run_body() {
#if C2SL_ASAN_FIBERS
  // First arrival on this fiber's stack: no fake stack to restore (nullptr),
  // and learn the caller's stack bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &caller_stack_bottom_,
                                  &caller_stack_size_);
#endif
  try {
    body_();
  } catch (const CrashUnwind&) {
    // Crash injection: the process stops silently mid-operation.
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
#if C2SL_ASAN_FIBERS
  // The fiber is dying: nullptr fake-stack pointer tells ASAN to destroy this
  // stack's fake frames. Returning resumes uc_link on the caller's stack.
  __sanitizer_start_switch_fiber(nullptr, caller_stack_bottom_,
                                 caller_stack_size_);
#endif
}

void Fiber::resume() {
  C2SL_ASSERT_MSG(!finished_, "resume() on a finished fiber");
  C2SL_ASSERT_MSG(!inside_, "resume() from inside the fiber");
  inside_ = true;
  if (!started_) {
    started_ = true;
    C2SL_ASSERT(getcontext(&self_) == 0);
    self_.uc_stack.ss_sp = stack_.data();
    self_.uc_stack.ss_size = stack_.size();
    self_.uc_link = &caller_;
    auto addr = reinterpret_cast<uintptr_t>(this);
    makecontext(&self_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
  }
#if C2SL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&caller_fake_stack_, stack_.data(),
                                 stack_.size());
#endif
  C2SL_ASSERT(swapcontext(&caller_, &self_) == 0);
#if C2SL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(caller_fake_stack_, nullptr, nullptr);
#endif
  inside_ = false;
  if (exception_) {
    std::exception_ptr e = exception_;
    exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  C2SL_ASSERT_MSG(inside_, "yield() outside the fiber");
#if C2SL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&fiber_fake_stack_, caller_stack_bottom_,
                                 caller_stack_size_);
#endif
  C2SL_ASSERT(swapcontext(&self_, &caller_) == 0);
#if C2SL_ASAN_FIBERS
  // Back on the fiber stack; the caller may have moved between resumes, so
  // refresh its bounds.
  __sanitizer_finish_switch_fiber(fiber_fake_stack_, &caller_stack_bottom_,
                                  &caller_stack_size_);
#endif
}

}  // namespace c2sl::sim
