// Stackful cooperative fibers over POSIX ucontext.
//
// The simulator runs every simulated process on its own fiber so that the
// paper's algorithms can be written as ordinary sequential code. Exactly one
// fiber runs at a time; context switches happen only inside Ctx::gate(), which
// makes every interleaving a deterministic function of the scheduler's choice
// sequence — the property the replay-based explorer and the strong-
// linearizability checker depend on.
#pragma once

#include <exception>
#include <functional>
#include <ucontext.h>
#include <vector>

// AddressSanitizer must be told about every switch onto a user-managed stack,
// or its shadow bookkeeping (and the unwinder's __asan_handle_no_return on a
// CrashUnwind throw) operates on the wrong stack and reports false
// stack-use-after-scope errors. The annotations compile away entirely in
// non-ASAN builds.
#if defined(__SANITIZE_ADDRESS__)
#define C2SL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define C2SL_ASAN_FIBERS 1
#endif
#endif
#ifndef C2SL_ASAN_FIBERS
#define C2SL_ASAN_FIBERS 0
#endif

namespace c2sl::sim {

/// Thrown by Ctx::gate() to unwind a crashed process. Deliberately not derived
/// from std::exception so that algorithm-level `catch (std::exception&)` blocks
/// (none exist in this codebase, but defensively) cannot swallow it. The fiber
/// trampoline catches it and marks the fiber finished; stack objects are
/// destroyed by normal unwinding, so crash injection does not leak.
struct CrashUnwind {};

class Fiber {
 public:
  explicit Fiber(std::function<void()> body, size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches into the fiber; returns when the fiber calls yield() or its body
  /// finishes. Must not be called on a finished fiber.
  void resume();

  /// Called from inside the fiber body: switches back to the resume() caller.
  void yield();

  bool finished() const { return finished_; }

  /// Exception (other than CrashUnwind) that escaped the body, if any.
  std::exception_ptr exception() const { return exception_; }

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void run_body();

  ucontext_t self_{};
  ucontext_t caller_{};
  std::vector<char> stack_;
#if C2SL_ASAN_FIBERS
  // ASAN fiber-switch protocol state: the fake-stack handles saved when each
  // side leaves its stack, and the caller's stack bounds as reported by
  // __sanitizer_finish_switch_fiber on fiber entry (needed to announce the
  // switch back).
  void* caller_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* caller_stack_bottom_ = nullptr;
  size_t caller_stack_size_ = 0;
#endif
  std::function<void()> body_;
  bool started_ = false;
  bool finished_ = false;
  bool inside_ = false;
  std::exception_ptr exception_;
};

}  // namespace c2sl::sim
