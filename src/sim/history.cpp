#include "sim/history.h"

#include "util/assert.h"

namespace c2sl::sim {

OpId History::invoke(ProcId proc, std::string object, std::string name, Val args) {
  OpId id = static_cast<OpId>(op_count_++);
  events_.push_back(Event{Event::Kind::kInvoke, proc, id, seq_++, std::move(object),
                          std::move(name), std::move(args)});
  return id;
}

void History::respond(ProcId proc, OpId op, Val resp) {
  C2SL_ASSERT(op >= 0 && static_cast<size_t>(op) < op_count_);
  events_.push_back(
      Event{Event::Kind::kRespond, proc, op, seq_++, "", "", std::move(resp)});
}

void History::on_step(ProcId proc, const std::string& object, const std::string& desc) {
  uint64_t seq = seq_++;
  if (record_steps) {
    events_.push_back(Event{Event::Kind::kStep, proc, -1, seq, object, desc, Val{}});
  }
}

void History::crash(ProcId proc) {
  events_.push_back(Event{Event::Kind::kCrash, proc, -1, seq_++, "", "", Val{}});
}

std::vector<OpRecord> History::operations() const {
  std::vector<OpRecord> ops(op_count_);
  for (const Event& e : events_) {
    switch (e.kind) {
      case Event::Kind::kInvoke: {
        OpRecord& r = ops[static_cast<size_t>(e.op)];
        r.id = e.op;
        r.proc = e.proc;
        r.object = e.object;
        r.name = e.name;
        r.args = e.payload;
        r.inv_seq = e.seq;
        break;
      }
      case Event::Kind::kRespond: {
        OpRecord& r = ops[static_cast<size_t>(e.op)];
        r.complete = true;
        r.resp = e.payload;
        r.resp_seq = e.seq;
        break;
      }
      default:
        break;
    }
  }
  return ops;
}

std::string to_string(const Event& e) {
  std::string out = "p" + std::to_string(e.proc) + " ";
  switch (e.kind) {
    case Event::Kind::kInvoke:
      out += "inv  " + e.object + "." + e.name + "(" + c2sl::to_string(e.payload) +
             ") [op" + std::to_string(e.op) + "]";
      break;
    case Event::Kind::kRespond:
      out += "resp op" + std::to_string(e.op) + " -> " + c2sl::to_string(e.payload);
      break;
    case Event::Kind::kStep:
      out += "step " + e.object + (e.name.empty() ? "" : ": " + e.name);
      break;
    case Event::Kind::kCrash:
      out += "CRASH";
      break;
  }
  return out;
}

std::string History::to_string() const {
  std::string out;
  for (const Event& e : events_) {
    out += "  @" + std::to_string(e.seq) + " " + sim::to_string(e) + "\n";
  }
  return out;
}

}  // namespace c2sl::sim
