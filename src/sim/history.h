// Execution histories in the standard shared-memory sense (paper §2): a
// sequence of invocation / response / base-object-step / crash events, totally
// ordered by a global sequence number. Histories are the interface between the
// simulator and the verification tooling: the linearizability checker consumes
// the operation table (operations()), the strong-linearizability checker
// consumes the raw event sequence of every node of an execution tree.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/value.h"

namespace c2sl::sim {

using ProcId = int;
using OpId = int;

struct Event {
  enum class Kind { kInvoke, kRespond, kStep, kCrash };
  Kind kind;
  ProcId proc;
  OpId op;  // -1 for steps/crashes not tied to a recorded operation
  uint64_t seq;
  std::string object;  // object the event concerns (empty for crash)
  std::string name;    // operation name for inv/resp, step description for steps
  Val payload;         // args for invoke, response for respond
};

/// One high-level operation, derived from the event sequence.
struct OpRecord {
  OpId id = -1;
  ProcId proc = -1;
  std::string object;
  std::string name;
  Val args;
  bool complete = false;
  Val resp;
  uint64_t inv_seq = 0;
  uint64_t resp_seq = std::numeric_limits<uint64_t>::max();
};

class History {
 public:
  /// When true, every base-object step is recorded as an event (useful for
  /// debugging and for linearization-witness extraction); inv/resp events are
  /// always recorded. Steps advance the global clock either way.
  bool record_steps = false;

  OpId invoke(ProcId proc, std::string object, std::string name, Val args);
  void respond(ProcId proc, OpId op, Val resp);
  void on_step(ProcId proc, const std::string& object, const std::string& desc);
  void crash(ProcId proc);

  const std::vector<Event>& events() const { return events_; }
  uint64_t time() const { return seq_; }
  size_t num_ops() const { return op_count_; }

  /// Operation table derived from events; index in the result equals OpId.
  std::vector<OpRecord> operations() const;

  /// Multi-line rendering for diagnostics and counterexample reports.
  std::string to_string() const;

 private:
  uint64_t seq_ = 0;
  size_t op_count_ = 0;
  std::vector<Event> events_;
};

/// Renders one event, e.g. "p0 inv  maxreg.WriteMax(3)".
std::string to_string(const Event& e);

}  // namespace c2sl::sim
