#include "sim/scheduler.h"

#include <algorithm>

#include "util/assert.h"

namespace c2sl::sim {

void Ctx::gate(const std::string& object_name, const std::string& desc) {
  if (pre_step_hook && !in_hook) {
    in_hook = true;
    pre_step_hook(*this);
    in_hook = false;
  }
  if (sched != nullptr) {
    sched->gate_impl(self);
  } else {
    if (solo_budget == 0) throw SoloBudgetExceeded{};
    --solo_budget;
  }
  ++steps_taken;
  if (hist != nullptr) {
    hist->on_step(self, object_name, desc);
  }
}

OpId Ctx::begin_op(std::string_view object, std::string_view name, Val args) {
  if (hist == nullptr) return -1;
  return hist->invoke(self, std::string(object), std::string(name), std::move(args));
}

void Ctx::end_op(OpId id, Val resp) {
  if (hist == nullptr || id < 0) return;
  hist->respond(self, id, std::move(resp));
}

Scheduler::Scheduler(World& world, History& history, int n)
    : world_(world), history_(history), procs_(static_cast<size_t>(n)) {
  C2SL_ASSERT(n > 0);
  for (int p = 0; p < n; ++p) {
    Proc& proc = procs_[static_cast<size_t>(p)];
    proc.ctx.world = &world_;
    proc.ctx.sched = this;
    proc.ctx.hist = &history_;
    proc.ctx.self = p;
  }
}

Scheduler::~Scheduler() {
  // Unwind every unfinished fiber via crash injection so that all stack-held
  // resources are destroyed (the Fiber destructor cannot unwind by itself).
  for (size_t p = 0; p < procs_.size(); ++p) {
    Proc& proc = procs_[p];
    if (proc.fiber && !proc.fiber->finished()) {
      proc.crash_requested = true;
      proc.fiber->resume();
      C2SL_ASSERT(proc.fiber->finished());
    }
  }
}

Ctx& Scheduler::ctx(ProcId p) {
  C2SL_ASSERT(p >= 0 && static_cast<size_t>(p) < procs_.size());
  return procs_[static_cast<size_t>(p)].ctx;
}

void Scheduler::spawn(ProcId p, std::function<void(Ctx&)> program) {
  C2SL_ASSERT(p >= 0 && static_cast<size_t>(p) < procs_.size());
  Proc& proc = procs_[static_cast<size_t>(p)];
  C2SL_ASSERT_MSG(!proc.spawned, "process already has a program");
  proc.spawned = true;
  Ctx* ctx = &proc.ctx;
  auto body = [program = std::move(program), ctx]() { program(*ctx); };
  proc.fiber = std::make_unique<Fiber>(std::move(body));
  // Run the prologue: everything up to the first base-object access.
  running_ = p;
  proc.fiber->resume();
  running_ = -1;
}

std::vector<ProcId> Scheduler::runnable() const {
  std::vector<ProcId> out;
  for (size_t p = 0; p < procs_.size(); ++p) {
    const Proc& proc = procs_[p];
    if (proc.spawned && !proc.crashed && proc.fiber && !proc.fiber->finished()) {
      out.push_back(static_cast<ProcId>(p));
    }
  }
  return out;
}

bool Scheduler::step(ProcId p) {
  C2SL_ASSERT(p >= 0 && static_cast<size_t>(p) < procs_.size());
  Proc& proc = procs_[static_cast<size_t>(p)];
  C2SL_ASSERT_MSG(proc.spawned && !proc.crashed && proc.fiber && !proc.fiber->finished(),
                  "step() on a non-runnable process");
  ++total_steps_;
  running_ = p;
  proc.fiber->resume();
  running_ = -1;
  return !proc.fiber->finished();
}

void Scheduler::crash(ProcId p) {
  C2SL_ASSERT(p >= 0 && static_cast<size_t>(p) < procs_.size());
  Proc& proc = procs_[static_cast<size_t>(p)];
  C2SL_ASSERT_MSG(proc.spawned && !proc.crashed && proc.fiber && !proc.fiber->finished(),
                  "crash() on a non-runnable process");
  proc.crash_requested = true;
  running_ = p;
  proc.fiber->resume();  // gate_impl observes the flag and throws CrashUnwind
  running_ = -1;
  C2SL_ASSERT(proc.fiber->finished());
  proc.crashed = true;
  history_.crash(p);
}

void Scheduler::apply(const Choice& c) {
  if (c.crash)
    crash(c.proc);
  else
    step(c.proc);
}

Scheduler::RunResult Scheduler::run(Strategy& strategy, uint64_t max_steps) {
  RunResult result;
  for (uint64_t i = 0; i < max_steps; ++i) {
    std::vector<ProcId> procs = runnable();
    if (procs.empty()) break;
    Choice c = strategy.choose(*this, procs);
    C2SL_ASSERT_MSG(std::find(procs.begin(), procs.end(), c.proc) != procs.end(),
                    "strategy chose a non-runnable process");
    apply(c);
    ++result.steps;
  }
  result.all_done = runnable().empty();
  return result;
}

void Scheduler::gate_impl(ProcId p) {
  Proc& proc = procs_[static_cast<size_t>(p)];
  C2SL_ASSERT_MSG(running_ == p, "gate reached outside the running fiber");
  if (proc.crash_requested) throw CrashUnwind{};
  proc.fiber->yield();  // park until the scheduler grants the step
  if (proc.crash_requested) throw CrashUnwind{};
}

std::string read_object_state(Ctx& ctx, size_t idx) {
  SimObject& obj = ctx.world->at(idx);
  ctx.gate(obj.name(), "read_state");
  return obj.state_string();
}

}  // namespace c2sl::sim
