// The scheduler: drives n simulated processes at base-object-step granularity.
//
// Model (paper §2): an execution is a sequence of steps, each a base-object
// operation by one process; processes are asynchronous and may crash at any
// point. Here the adversary is a Strategy that, at every point, picks which
// runnable process takes its next step (or crashes it). Executions are a
// deterministic function of the strategy's choice sequence, which is what makes
// replay, exhaustive exploration and counterexample minimisation possible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/ctx.h"
#include "sim/fiber.h"
#include "sim/history.h"
#include "sim/world.h"

namespace c2sl::sim {

class Scheduler;

/// A scheduling decision: which process moves, and whether it crashes instead
/// of taking a step.
struct Choice {
  ProcId proc = -1;
  bool crash = false;
  friend bool operator==(const Choice&, const Choice&) = default;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// `runnable` is non-empty and sorted ascending.
  virtual Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) = 0;
};

class Scheduler {
 public:
  Scheduler(World& world, History& history, int n);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int n() const { return static_cast<int>(procs_.size()); }
  Ctx& ctx(ProcId p);

  /// Installs a program for process p and runs it up to its first gate (running
  /// the prologue immediately keeps one spawn == one process and makes every
  /// subsequent resume correspond to exactly one atomic step).
  void spawn(ProcId p, std::function<void(Ctx&)> program);

  /// Processes that are parked at a gate (have a pending step) and not crashed.
  std::vector<ProcId> runnable() const;

  bool all_done() const { return runnable().empty(); }

  /// Grants process p one atomic step; p must be runnable. Returns true if the
  /// process is still runnable afterwards.
  bool step(ProcId p);

  /// Crashes process p: its fiber unwinds without taking further steps.
  void crash(ProcId p);

  void apply(const Choice& c);

  struct RunResult {
    uint64_t steps = 0;
    bool all_done = false;
  };

  /// Repeatedly asks the strategy for choices until no process is runnable or
  /// `max_steps` choices were applied.
  RunResult run(Strategy& strategy, uint64_t max_steps);

  uint64_t total_steps() const { return total_steps_; }

  /// Called by Ctx::gate().
  void gate_impl(ProcId p);

 private:
  struct Proc {
    std::unique_ptr<Fiber> fiber;
    Ctx ctx;
    bool spawned = false;
    bool crashed = false;
    bool crash_requested = false;
  };

  World& world_;
  History& history_;
  std::vector<Proc> procs_;
  uint64_t total_steps_ = 0;
  ProcId running_ = -1;  // process currently inside resume(), -1 if none
};

/// Readability of base objects (Lemma 16): one atomic step that returns the
/// full current state of object `idx` in the world. Algorithm B's collect(R)
/// is built from this.
std::string read_object_state(Ctx& ctx, size_t idx);

}  // namespace c2sl::sim
