// SimRun bundles one complete simulated execution environment: a world of base
// objects, a history, and a scheduler for n processes. Test drivers and
// benchmarks construct a SimRun, let a scenario function create implementation
// objects and spawn per-process programs, then drive the scheduler with a
// strategy.
#pragma once

#include <functional>

#include "sim/history.h"
#include "sim/scheduler.h"
#include "sim/world.h"

namespace c2sl::sim {

class SimRun {
 public:
  explicit SimRun(int n) : sched(world, history, n) {}

  World world;
  History history;
  Scheduler sched;

  Ctx& ctx(ProcId p) { return sched.ctx(p); }
  int n() const { return sched.n(); }
};

/// A scenario creates implementation objects in the run's world and spawns the
/// per-process programs. It must be deterministic: the explorer replays it many
/// times and relies on identical behaviour for identical choice sequences.
using ScenarioFn = std::function<void(SimRun&)>;

}  // namespace c2sl::sim
