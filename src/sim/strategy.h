// Scheduling strategies — the adversaries of the model.
//
//  * RandomStrategy: uniform choice each step, optional crash probability with a
//    crash budget (the classic strong adversary, sampled).
//  * RoundRobinStrategy: fair rotation; the friendliest schedule.
//  * ReplayStrategy: replays a recorded choice sequence exactly; used by the
//    execution-tree explorer and for counterexample reproduction.
//  * StarveStrategy: never schedules the victim while anyone else can move —
//    the adversary used to separate wait-freedom (victim's operation still
//    finishes in a bounded number of ITS OWN steps once scheduled) from
//    lock-freedom (victim may starve while others complete infinitely often).
//  * PriorityStrategy: a fixed priority order; drains high-priority processes
//    first, giving maximally bursty schedules.
#pragma once

#include <vector>

#include "sim/scheduler.h"
#include "util/assert.h"
#include "util/rng.h"

namespace c2sl::sim {

class RandomStrategy : public Strategy {
 public:
  explicit RandomStrategy(uint64_t seed, double crash_prob = 0.0, int max_crashes = 0)
      : rng_(seed), crash_prob_(crash_prob), crashes_left_(max_crashes) {}

  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    (void)sched;
    ProcId p = runnable[rng_.next_below(runnable.size())];
    // Keep at least one process alive so executions always make progress.
    if (crashes_left_ > 0 && runnable.size() > 1 && rng_.next_bool(crash_prob_)) {
      --crashes_left_;
      return Choice{p, /*crash=*/true};
    }
    return Choice{p, /*crash=*/false};
  }

 private:
  Rng rng_;
  double crash_prob_;
  int crashes_left_;
};

class RoundRobinStrategy : public Strategy {
 public:
  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    (void)sched;
    for (ProcId p : runnable) {
      if (p > last_) {
        last_ = p;
        return Choice{p, false};
      }
    }
    last_ = runnable.front();
    return Choice{last_, false};
  }

 private:
  ProcId last_ = -1;
};

class ReplayStrategy : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<Choice> choices) : choices_(std::move(choices)) {}

  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    (void)sched;
    (void)runnable;
    C2SL_ASSERT_MSG(pos_ < choices_.size(), "replay exhausted");
    return choices_[pos_++];
  }

  size_t remaining() const { return choices_.size() - pos_; }

 private:
  std::vector<Choice> choices_;
  size_t pos_ = 0;
};

class StarveStrategy : public Strategy {
 public:
  StarveStrategy(ProcId victim, uint64_t seed) : victim_(victim), rng_(seed) {}

  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    (void)sched;
    std::vector<ProcId> others;
    for (ProcId p : runnable) {
      if (p != victim_) others.push_back(p);
    }
    if (others.empty()) return Choice{victim_, false};
    return Choice{others[rng_.next_below(others.size())], false};
  }

 private:
  ProcId victim_;
  Rng rng_;
};

/// Wraps another strategy and records the chosen sequence — used to capture a
/// replayable prefix for guided exploration (ExploreOptions::prefix).
class RecordingStrategy : public Strategy {
 public:
  explicit RecordingStrategy(Strategy& inner) : inner_(inner) {}

  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    Choice c = inner_.choose(sched, runnable);
    recorded_.push_back(c);
    return c;
  }

  const std::vector<Choice>& recorded() const { return recorded_; }

 private:
  Strategy& inner_;
  std::vector<Choice> recorded_;
};

class PriorityStrategy : public Strategy {
 public:
  explicit PriorityStrategy(std::vector<ProcId> order) : order_(std::move(order)) {}

  Choice choose(const Scheduler& sched, const std::vector<ProcId>& runnable) override {
    (void)sched;
    for (ProcId p : order_) {
      for (ProcId r : runnable) {
        if (r == p) return Choice{p, false};
      }
    }
    return Choice{runnable.front(), false};
  }

 private:
  std::vector<ProcId> order_;
};

}  // namespace c2sl::sim
