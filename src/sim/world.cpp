#include "sim/world.h"

namespace c2sl::sim {

std::unique_ptr<World> World::clone() const {
  auto w = std::make_unique<World>();
  w->objects_.reserve(objects_.size());
  for (const auto& obj : objects_) {
    auto copy = obj->clone();
    copy->set_name(obj->name());
    w->objects_.push_back(std::move(copy));
  }
  return w;
}

std::string World::state_string() const {
  std::string out;
  for (const auto& obj : objects_) {
    out += obj->name();
    out += '=';
    out += obj->state_string();
    out += ';';
  }
  return out;
}

}  // namespace c2sl::sim
