// The world: an arena of simulated shared base objects.
//
// Base objects (registers, test&set, fetch&add, swap, compare&swap, arrays
// thereof, and per-process local-state cells) live in a World and are addressed
// by stable indices, so that
//   * implementations can be expressed as stateless views (they hold handles and
//     receive a Ctx pointing at a concrete world per call),
//   * World::clone() yields a deep copy with identical indices — this is what
//     Lemma 12's algorithm B uses to "simulate dec_i locally starting from the
//     collected states", and what the execution-tree explorer uses for node
//     fingerprints,
//   * every object is *readable* (Lemma 16): its full state serialises through
//     state_string(), and can be installed into a clone via set_state_string().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/assert.h"

namespace c2sl::sim {

class SimObject {
 public:
  virtual ~SimObject() = default;
  virtual std::unique_ptr<SimObject> clone() const = 0;
  /// Canonical, exact serialisation of the object's current state.
  virtual std::string state_string() const = 0;
  /// Installs a state previously produced by state_string() on a same-typed
  /// object.
  virtual void set_state_string(const std::string& s) = 0;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  std::string name_;
};

template <typename T>
struct Handle {
  size_t idx = static_cast<size_t>(-1);
  bool valid() const { return idx != static_cast<size_t>(-1); }
};

class World {
 public:
  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  template <typename T, typename... Args>
  Handle<T> add(std::string name, Args&&... args) {
    auto obj = std::make_unique<T>(std::forward<Args>(args)...);
    obj->set_name(std::move(name));
    objects_.push_back(std::move(obj));
    return Handle<T>{objects_.size() - 1};
  }

  template <typename T>
  T& get(Handle<T> h) {
    C2SL_ASSERT(h.valid() && h.idx < objects_.size());
    T* p = dynamic_cast<T*>(objects_[h.idx].get());
    C2SL_ASSERT_MSG(p != nullptr, "handle type mismatch");
    return *p;
  }

  SimObject& at(size_t idx) {
    C2SL_ASSERT(idx < objects_.size());
    return *objects_[idx];
  }
  const SimObject& at(size_t idx) const {
    C2SL_ASSERT(idx < objects_.size());
    return *objects_[idx];
  }

  size_t size() const { return objects_.size(); }

  /// Deep copy preserving indices.
  std::unique_ptr<World> clone() const;

  /// Concatenated serialisation of all objects — an execution-state fingerprint
  /// (process program counters are NOT included; see explorer notes).
  std::string state_string() const;

 private:
  std::vector<std::unique_ptr<SimObject>> objects_;
};

}  // namespace c2sl::sim
