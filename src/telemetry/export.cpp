#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>

#include "telemetry/trace_export.h"
#include "util/assert.h"
#include "workload/json_writer.h"

namespace c2sl::tel {

namespace {

void hist_json(wl::JsonWriter& w, const HistogramSnapshot& h) {
  w.begin_object();
  w.field("count", h.total());
  w.field("p50_upper_ns", h.quantile_upper_ns(0.50));
  w.field("p90_upper_ns", h.quantile_upper_ns(0.90));
  w.field("p99_upper_ns", h.quantile_upper_ns(0.99));
  w.field("max_upper_ns", h.max_upper_ns());
  w.key("buckets");
  w.begin_array();
  for (int b = 0; b < kHistBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    w.begin_array();
    w.value(hist_bucket_upper(b));
    w.value(h.counts[b]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap, std::string_view source) {
  wl::JsonWriter w;
  w.begin_object();
  w.field("schema", "c2sl-metrics-v1");
  w.field("source", source);
  w.field("telemetry_enabled", snap.enabled);
  w.field("lanes", snap.lanes);
  // The exact, strongly linearizable digest read next to the racy lane-scan
  // estimate: the pair is the PR's thesis in one snapshot (the two may
  // legitimately differ while writers are in flight).
  w.field("ops_total", snap.ops_total);
  w.field("ops_total_scan", snap.ops_total_scan);

  w.key("op_counts");
  w.begin_object();
  for (int k = 0; k < kTelOpCount; ++k) {
    w.field(to_string(static_cast<TelOp>(k)), snap.op_counts[k]);
  }
  w.end_object();

  w.key("op_latency_ns");
  w.begin_object();
  for (int k = 0; k < kTelOpCount; ++k) {
    if (snap.op_latency[k].total() == 0) continue;
    w.key(to_string(static_cast<TelOp>(k)));
    hist_json(w, snap.op_latency[k]);
  }
  w.end_object();

  w.key("open_wait_ns");
  hist_json(w, snap.open_wait);

  w.key("session");
  w.begin_object();
  w.field("lane_tickets", snap.lane_tickets);
  w.field("handoff_enqueued", snap.handoff_enqueued);
  w.field("handoff_deliveries", snap.handoff_deliveries);
  w.field("handoff_parks", snap.handoff_parks);
  w.field("handoff_revocations", snap.handoff_revocations);
  w.field("lane_counter_adds", snap.lane_counter_adds);
  w.end_object();

  w.key("events");
  w.begin_object();
  for (int e = 0; e < kTelEventCount; ++e) {
    w.field(to_string(static_cast<TelEvent>(e)), snap.events[e]);
  }
  w.end_object();

  // Per-shard heat: keyed ops per routing bucket (lane-scan, racy like
  // op_counts) plus the max-over-mean skew ratio. Aggregate ops carry no
  // shard, so the bucket sum is <= ops_total (metrics_diff checks this).
  w.key("shard_ops");
  w.begin_array();
  for (uint64_t c : snap.shard_ops) w.value(c);
  w.end_array();
  w.field("shard_imbalance", shard_imbalance(snap));

  if (snap.has_prim_profile) {
    w.key("prim_profile");
    w.begin_object();
    for (int k = 0; k < kTelOpCount; ++k) {
      const PrimProfile& p = snap.prim_profile[k];
      if (p.ops <= 0) continue;
      w.key(to_string(static_cast<TelOp>(k)));
      w.begin_object();
      w.field("faa", p.faa);
      w.field("tas", p.tas);
      w.field("swap", p.swap);
      w.field("ops", p.ops);
      w.end_object();
    }
    w.end_object();
  }

  w.end_object();
  return w.str();
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  char buf[256];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };

  line("# HELP c2sl_telemetry_enabled 1 when the store was built with "
       "C2SL_TELEMETRY=1.");
  line("# TYPE c2sl_telemetry_enabled gauge");
  line("c2sl_telemetry_enabled %d", snap.enabled ? 1 : 0);
  if (!snap.enabled) return out;

  line("# HELP c2sl_ops_total Exact instrumented-op count (strongly "
       "linearizable FAA-digest read).");
  line("# TYPE c2sl_ops_total counter");
  line("c2sl_ops_total %" PRId64, snap.ops_total);
  line("# HELP c2sl_ops_scan Racy per-lane scan estimate of the same count "
       "(merely linearizable; see docs/PROOFS.md).");
  line("# TYPE c2sl_ops_scan counter");
  line("c2sl_ops_scan %" PRIu64, snap.ops_total_scan);

  line("# TYPE c2sl_op_count counter");
  for (int k = 0; k < kTelOpCount; ++k) {
    line("c2sl_op_count{op=\"%s\"} %" PRIu64, to_string(static_cast<TelOp>(k)),
         snap.op_counts[k]);
  }

  line("# HELP c2sl_op_latency_ns Sampled nearest-rank latency quantile "
       "upper bounds (log2 buckets).");
  line("# TYPE c2sl_op_latency_ns gauge");
  static constexpr double kQuantiles[] = {0.50, 0.90, 0.99};
  for (int k = 0; k < kTelOpCount; ++k) {
    const HistogramSnapshot& h = snap.op_latency[k];
    if (h.total() == 0) continue;
    for (double q : kQuantiles) {
      line("c2sl_op_latency_ns{op=\"%s\",quantile=\"%g\"} %" PRId64,
           to_string(static_cast<TelOp>(k)), q, h.quantile_upper_ns(q));
    }
  }

  line("# TYPE c2sl_open_wait_ns gauge");
  for (double q : kQuantiles) {
    line("c2sl_open_wait_ns{quantile=\"%g\"} %" PRId64, q,
         snap.open_wait.quantile_upper_ns(q));
  }
  line("# TYPE c2sl_open_wait_count counter");
  line("c2sl_open_wait_count %" PRIu64, snap.open_wait.total());

  line("# TYPE c2sl_lane_tickets_total counter");
  line("c2sl_lane_tickets_total %" PRId64, snap.lane_tickets);
  line("# TYPE c2sl_handoff_enqueued_total counter");
  line("c2sl_handoff_enqueued_total %" PRId64, snap.handoff_enqueued);
  line("# TYPE c2sl_handoff_deliveries_total counter");
  line("c2sl_handoff_deliveries_total %" PRId64, snap.handoff_deliveries);
  line("# TYPE c2sl_handoff_parks_total counter");
  line("c2sl_handoff_parks_total %" PRId64, snap.handoff_parks);
  line("# TYPE c2sl_handoff_revocations_total counter");
  line("c2sl_handoff_revocations_total %" PRId64, snap.handoff_revocations);
  line("# TYPE c2sl_lane_counter_adds_total counter");
  line("c2sl_lane_counter_adds_total %" PRId64, snap.lane_counter_adds);

  line("# HELP c2sl_shard_ops Keyed ops routed to each shard bucket "
       "(racy lane-scan heat diagnostic).");
  line("# TYPE c2sl_shard_ops counter");
  for (size_t b = 0; b < snap.shard_ops.size(); ++b) {
    line("c2sl_shard_ops{shard=\"%zu\"} %" PRIu64, b, snap.shard_ops[b]);
  }
  line("# HELP c2sl_shard_imbalance Max-over-mean ratio of per-shard op "
       "counts (1.0 = balanced).");
  line("# TYPE c2sl_shard_imbalance gauge");
  line("c2sl_shard_imbalance %g", shard_imbalance(snap));

  for (int e = 0; e < kTelEventCount; ++e) {
    line("# TYPE c2sl_%s_total counter", to_string(static_cast<TelEvent>(e)));
    line("c2sl_%s_total %" PRIu64, to_string(static_cast<TelEvent>(e)),
         snap.events[e]);
  }
  return out;
}

#if C2SL_TELEMETRY

void dump_flight(std::FILE* out, const StoreTelemetry& tel, int max_lanes) {
  std::fprintf(out, "c2sl flight recorder (last %" PRIu64 " ops per lane):\n",
               FlightRecorder::kEntries);
  for (int lane = 0; lane < max_lanes; ++lane) {
    const LaneTelemetry* lt = tel.peek_lane(lane);
    if (lt == nullptr) continue;
    auto entries = lt->flight.snapshot();
    if (entries.empty()) continue;
    std::fprintf(out, "  lane %d (%zu entries):\n", lane, entries.size());
    for (const FlightEntry& e : entries) {
      if (e.shard >= 0) {
        std::fprintf(out, "    #%" PRIu64 " %s shard=%d arg=%" PRId64 "\n",
                     e.seq, to_string(e.op), e.shard, e.arg);
      } else {
        std::fprintf(out, "    #%" PRIu64 " %s arg=%" PRId64 "\n", e.seq,
                     to_string(e.op), e.arg);
      }
    }
  }
}

namespace {

// The hook context lives in a static (never dangles); it names the store
// whose rings to dump. Install races between concurrently-constructed stores
// are benign — this is a diagnostics channel, last installer wins.
struct DumpCtx {
  const StoreTelemetry* tel = nullptr;
  const StoreTrace* trace = nullptr;
  int max_lanes = 0;
};
DumpCtx g_dump_ctx;

/// Last-N trace records interleaved after the flight rings, so a post-mortem
/// names the witnesses around the failure, not just the op kinds.
constexpr int kAssertTraceTail = 8;

}  // namespace

void install_flight_dump_on_assert(const StoreTelemetry* tel,
                                   const StoreTrace* trace, int max_lanes) {
  g_dump_ctx.tel = tel;
  g_dump_ctx.trace = trace;
  g_dump_ctx.max_lanes = max_lanes;
  set_failure_hook(
      [](void* p) {
        auto* ctx = static_cast<DumpCtx*>(p);
        if (ctx->tel != nullptr) dump_flight(stderr, *ctx->tel, ctx->max_lanes);
        if (ctx->trace != nullptr) {
          dump_trace_tail(stderr, *ctx->trace, ctx->max_lanes,
                          kAssertTraceTail);
        }
      },
      &g_dump_ctx);
}

void uninstall_flight_dump_on_assert(const StoreTelemetry* tel) {
  if (g_dump_ctx.tel == tel) {
    g_dump_ctx.tel = nullptr;
    g_dump_ctx.trace = nullptr;
    clear_failure_hook(&g_dump_ctx);
  }
}

#endif  // C2SL_TELEMETRY

}  // namespace c2sl::tel
