// Telemetry exporters: the c2sl-metrics-v1 JSON snapshot, a Prometheus text
// exposition, and the flight-recorder dump (manual or wired into the assert
// failure hook of util/assert.h).
//
// The two serialisers take the plain-data MetricsSnapshot, so they have ONE
// definition regardless of the C2SL_TELEMETRY flavour — a disabled build
// still exports a well-formed snapshot that says telemetry_enabled=false
// (tools/metrics_diff.py treats that as "no counters to diff", not an error).
// The flight-dump entry points touch the live StoreTelemetry and so are
// flavour-versioned: inline no-ops when disabled, real implementations in
// telemetry/export.cpp when enabled.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace c2sl::tel {

/// JSON snapshot, schema "c2sl-metrics-v1" (documented in README.md;
/// validated and diffed by tools/metrics_diff.py). `source` names the
/// producer ("bench_c2store", "c2store_demo", ...).
std::string to_json(const MetricsSnapshot& snap, std::string_view source);

/// Prometheus text exposition (version 0.0.4): counters for op counts and
/// session/handoff/event totals, gauges for the nearest-rank latency
/// quantile estimates.
std::string to_prometheus(const MetricsSnapshot& snap);

#if C2SL_TELEMETRY

/// Prints every lane's last-N ops ring, oldest first, to `out`.
void dump_flight(std::FILE* out, const StoreTelemetry& tel, int max_lanes);

/// Routes assert_fail through dump_flight (last installer wins; the service
/// layer installs per store and uninstalls on destruction). When `trace` is
/// non-null and tracing is compiled in, the dump interleaves each lane's last
/// trace records — so a post-mortem carries linearization witnesses, not just
/// op kinds (tel::dump_trace_tail, telemetry/trace_export.h).
void install_flight_dump_on_assert(const StoreTelemetry* tel,
                                   const StoreTrace* trace, int max_lanes);
inline void install_flight_dump_on_assert(const StoreTelemetry* tel,
                                          int max_lanes) {
  install_flight_dump_on_assert(tel, nullptr, max_lanes);
}
void uninstall_flight_dump_on_assert(const StoreTelemetry* tel);

#else

inline void dump_flight(std::FILE*, const StoreTelemetry&, int) {}
inline void install_flight_dump_on_assert(const StoreTelemetry*,
                                          const StoreTrace*, int) {}
inline void install_flight_dump_on_assert(const StoreTelemetry*, int) {}
inline void uninstall_flight_dump_on_assert(const StoreTelemetry*) {}

#endif  // C2SL_TELEMETRY

}  // namespace c2sl::tel
