// Log-bucketed latency histograms + the repo's single nearest-rank quantile
// implementation.
//
// The quantile rule lived in src/workload/latency.h since PR 2 (and was
// bug-fixed against known vectors in PR 4); telemetry needs the same rule for
// its bucketed estimates, so the index computation is hoisted HERE and the
// engine calls it — one implementation, pinned by both the workload tests
// (exact, on raw samples) and the telogram tests (bucketed upper bounds).
//
// The live histogram is lane-local and single-writer (lanes are single-owner
// by construction — the service layer's whole point), so record() is a relaxed
// load + relaxed store on a private cache line: a plain register write in the
// paper's taxonomy, no RMW. Readers scan the cells racily; a histogram is an
// approximate object by nature and the racy read loses at most in-flight
// increments (the strongly linearizable telemetry facet is the ops-total
// digest in telemetry.h, NOT these buckets — see docs/PROOFS.md).
//
// Buckets are powers of two: bucket 0 holds <= 0ns (clock glitches), bucket
// b >= 1 holds [2^(b-1), 2^b) ns. 64 value buckets cover the full int64 range;
// quantile estimates report the bucket's inclusive upper bound, so estimates
// are conservative (never under-report a latency).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "telemetry/prim_profile.h"  // C2SL_TELEMETRY gate + flavour namespaces

#if C2SL_TELEMETRY
#include <atomic>
#endif

namespace c2sl::tel {

/// Nearest-rank order-statistic index: for a sorted sample of `count`
/// elements, quantile q is element number ceil(q * count) (1-based), clamped
/// to [1, count]; this returns the 0-based index. The exact rule PR 4 pinned:
/// p0 -> first element, p100 -> last, never out of range.
inline size_t nearest_rank_index(size_t count, double q) {
  if (count == 0) return 0;
  double scaled = q * static_cast<double>(count);
  auto rank = static_cast<size_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;  // ceil for non-integers
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  return rank - 1;
}

inline constexpr int kHistBuckets = 65;  // bucket 0 + one per power of two

/// Bucket index for a nanosecond value: 0 for <= 0, else 1 + floor(log2 v).
inline constexpr int hist_bucket_of(int64_t ns) {
  if (ns <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(ns));
}

/// Inclusive upper bound of bucket b: 0, 1, 3, 7, ... (2^b - 1).
inline constexpr int64_t hist_bucket_upper(int b) {
  if (b <= 0) return 0;
  if (b >= 63) return INT64_MAX;
  return static_cast<int64_t>((uint64_t{1} << b) - 1);
}

/// Plain-data histogram snapshot: what exporters and tests consume. Quantile
/// estimates apply the nearest-rank rule over bucket counts and report the
/// containing bucket's upper bound.
struct HistogramSnapshot {
  uint64_t counts[kHistBuckets] = {};

  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts) t += c;
    return t;
  }

  /// Nearest-rank quantile estimate (inclusive bucket upper bound), 0 if empty.
  int64_t quantile_upper_ns(double q) const {
    uint64_t n = total();
    if (n == 0) return 0;
    uint64_t target = static_cast<uint64_t>(nearest_rank_index(n, q)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
      seen += counts[b];
      if (seen >= target) return hist_bucket_upper(b);
    }
    return hist_bucket_upper(kHistBuckets - 1);
  }

  int64_t max_upper_ns() const {
    for (int b = kHistBuckets - 1; b >= 0; --b) {
      if (counts[b] != 0) return hist_bucket_upper(b);
    }
    return 0;
  }

  void merge(const HistogramSnapshot& other) {
    for (int b = 0; b < kHistBuckets; ++b) counts[b] += other.counts[b];
  }
};

#if C2SL_TELEMETRY

inline namespace tel_on {

/// Single-writer log-bucketed histogram. The writer (the lane owner) bumps a
/// private relaxed cell; concurrent snapshot() readers see a racy but
/// monotone view. Cells are std::atomic only so TSAN accepts the racy read —
/// the write is load+store, never an RMW (the no-CAS discipline applies to
/// telemetry too).
class LatencyHistogram {
 public:
  void record(int64_t ns) {
    std::atomic<uint64_t>& cell = counts_[hist_bucket_of(ns)];
    // c2sl-atomic: store relaxed, load relaxed — single-writer bucket bump;
    // load+store, never an RMW (the no-CAS discipline applies here too)
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (int b = 0; b < kHistBuckets; ++b) {
      // c2sl-atomic: load relaxed — racy-but-monotone snapshot read
      s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<uint64_t> counts_[kHistBuckets] = {};
};

}  // namespace tel_on

#else  // !C2SL_TELEMETRY

inline namespace tel_off {

/// Disabled flavour: stateless, constexpr-evaluable (the structural proof in
/// tests/telemetry_off_test.cpp calls record() inside constant evaluation).
class LatencyHistogram {
 public:
  constexpr void record(int64_t) const {}
  HistogramSnapshot snapshot() const { return HistogramSnapshot{}; }
};

}  // namespace tel_off

#endif  // C2SL_TELEMETRY

}  // namespace c2sl::tel
