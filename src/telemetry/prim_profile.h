// Primitive-op profiling: counts the consensus-number-2 primitive invocations
// (fetch&add, test&set/exchange, swap) issued by the current thread, plus a
// handful of process-wide cold-path events (segment claims/publications, shard
// initialisations).
//
// This header is the bottom of the telemetry stack: it is included by the
// runtime constructions themselves (native_tas_family.h, counter_sum_digest.h,
// handoff_queue.h, segmented_array.h), so it must not depend on anything above
// util/. The per-thread counters are plain (non-atomic) thread_local fields —
// bumping one is a register increment, never a shared-memory operation — and
// the whole thing compiles to nothing under C2SL_TELEMETRY=0: the macros
// expand to ((void)0), which is constexpr-evaluable, a property
// tests/telemetry_off_test.cpp exploits to prove structurally that the
// disabled flavour contains no atomic operations (atomics are not usable in
// constant evaluation).
//
// Why count at the primitive layer rather than the service layer: the paper's
// constructions are all towers of FAA/TAS/swap, so "how many primitive RMWs
// does one service op cost" is the natural cost model — the profile table
// exported in c2sl-metrics-v1 gives future perf work (batching, wider words)
// its baseline without re-deriving it from the algorithms.
#pragma once

#include <cstdint>

#ifndef C2SL_TELEMETRY
#define C2SL_TELEMETRY 1
#endif

#if C2SL_TELEMETRY
#include <atomic>
#endif

namespace c2sl::tel {

/// Per-thread primitive invocation counts. Plain data — snapshot by copy,
/// diff by subtraction (the profiler in src/workload/engine.cpp does both).
struct PrimCounts {
  uint64_t faa = 0;   ///< fetch&add (including the fetch&add(0) read idiom)
  uint64_t tas = 0;   ///< test&set / single-use exchange
  uint64_t swap = 0;  ///< multi-use swap (exchange on a swap register)
};

constexpr PrimCounts operator-(PrimCounts a, PrimCounts b) {
  return PrimCounts{a.faa - b.faa, a.tas - b.tas, a.swap - b.swap};
}

/// Process-wide cold-path events (all off the per-op hot path).
enum class TelEvent : int {
  kSegmentClaim = 0,    ///< SegmentedArray claim TAS won (materialisation race)
  kSegmentPublish = 1,  ///< SegmentedArray segment pointer published
  kShardInit = 2,       ///< C2Store shard lazily initialised
  kResizeClaim = 3,     ///< RoutingEpoch resize claim won (install started)
  kEpochPublish = 4,    ///< RoutingEpoch epoch published (migration complete)
  kKeysMigrated = 5,    ///< one shard slot's state replayed into a new bucket
  kCount = 6,
};

inline const char* to_string(TelEvent e) {
  switch (e) {
    case TelEvent::kSegmentClaim: return "segment_claims";
    case TelEvent::kSegmentPublish: return "segment_publishes";
    case TelEvent::kShardInit: return "shard_inits";
    case TelEvent::kResizeClaim: return "resize_claims";
    case TelEvent::kEpochPublish: return "epochs_published";
    case TelEvent::kKeysMigrated: return "migrated_keys";
    default: return "unknown_event";
  }
}

inline constexpr int kTelEventCount = static_cast<int>(TelEvent::kCount);

#if C2SL_TELEMETRY

inline namespace tel_on {  // inline namespace: ODR-safe across mixed-flavour TUs

inline constexpr bool kEnabled = true;

/// The calling thread's primitive counters. thread_local plain fields: the
/// C2SL_TEL_PRIM_* bumps below are single-thread register increments, not
/// shared-memory traffic.
inline PrimCounts& this_thread_prims() {
  thread_local PrimCounts counts;
  return counts;
}

/// Process-wide event counters. Cold path only (segment materialisation,
/// shard init), so a relaxed fetch_add here costs nothing measurable.
inline std::atomic<uint64_t>& event_counter(TelEvent e) {
  static std::atomic<uint64_t> counters[kTelEventCount];
  return counters[static_cast<int>(e)];
}

inline uint64_t event_count(TelEvent e) {
  // c2sl-atomic: load relaxed — cold event-counter read (export only)
  return event_counter(e).load(std::memory_order_relaxed);
}

}  // namespace tel_on

#define C2SL_TEL_PRIM_FAA() (void)(++::c2sl::tel::this_thread_prims().faa)
#define C2SL_TEL_PRIM_TAS() (void)(++::c2sl::tel::this_thread_prims().tas)
#define C2SL_TEL_PRIM_SWAP() (void)(++::c2sl::tel::this_thread_prims().swap)
// c2sl-atomic: faa relaxed — cold event bump (segment/shard init only); a
// relaxed RMW on a counter that feeds no decision
#define C2SL_TEL_EVENT(e) \
  (void)::c2sl::tel::event_counter(e).fetch_add(1, std::memory_order_relaxed)

#else  // !C2SL_TELEMETRY

inline namespace tel_off {

inline constexpr bool kEnabled = false;

/// Disabled flavour: everything is constexpr and stateless, so the compiler
/// erases it. Returning by value (not thread_local reference) keeps this
/// usable in constant evaluation — the structural zero-atomics proof.
constexpr PrimCounts this_thread_prims() { return PrimCounts{}; }
constexpr uint64_t event_count(TelEvent) { return 0; }

}  // namespace tel_off

#define C2SL_TEL_PRIM_FAA() ((void)0)
#define C2SL_TEL_PRIM_TAS() ((void)0)
#define C2SL_TEL_PRIM_SWAP() ((void)0)
#define C2SL_TEL_EVENT(e) ((void)0)

#endif  // C2SL_TELEMETRY

}  // namespace c2sl::tel
