// Lane-local telemetry with FAA-digest aggregation — the observability layer
// built from the repo's own no-CAS toolbox.
//
// Structure (mirroring the paper's §3.2 pack-into-one-FAA-word move, already
// powering rt::CounterSumDigest):
//
//   * Every service lane owns a LaneTelemetry block: per-op-kind counters,
//     log-bucketed latency histograms, and a bounded flight recorder. Lanes
//     are single-owner by construction (svc::LaneRegistry hands each lane to
//     exactly one session at a time), so every write here is a plain register
//     write — relaxed load + relaxed store on a private cache line, no RMW.
//   * One shared ops-total word is bumped with fetch&add(1) per instrumented
//     op, and read with fetch&add(0). That read's linearization point is its
//     own FAA step — fixed, prefix-closed, STRONGLY linearizable, exactly the
//     CounterSumDigest argument (docs/PROOFS.md). The alternative — summing
//     the per-lane counters in a scan — is linearizable but NOT strongly
//     linearizable; svc::SimTelemetryCounter pins both verdicts under the
//     bounded checker (tests/telemetry_test.cpp).
//
// So the one telemetry datum an adaptive adversary could game (the hot op
// counter a scheduler or test oracle might branch on) is exact and strongly
// linearizable, while the bulk statistics (per-kind counts, histograms) are
// deliberately racy approximations that cost the hot path nothing.
//
// Cost budget per instrumented op (on-flavour): two relaxed load+store pairs
// (kind counter + lane digest cell), three relaxed stores (flight ring), one
// seq_cst fetch&add (the digest), and a pair of clock reads on 1 of every
// kLatencySamplePeriod ops. Under C2SL_TELEMETRY=0 every type in this header
// collapses to an empty constexpr shell — tests/telemetry_off_test.cpp proves
// the hot-path calls are constant-evaluable, hence free of atomics.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/histogram.h"
#include "telemetry/prim_profile.h"

/// Flight-recorder depth (records per lane). Compile-time knob so post-mortem
/// capture can be widened without touching code; must be a power of two.
#ifndef C2SL_FLIGHT_RING
#define C2SL_FLIGHT_RING 64
#endif

#if C2SL_TELEMETRY
#include <atomic>
#include <chrono>

#include "runtime/segmented_array.h"
#endif

namespace c2sl::tel {

/// Instrumented service-op kinds (the C2Store ref/session surface).
enum class TelOp : int {
  kMaxWrite = 0,
  kMaxRead,
  kCounterInc,
  kCounterRead,
  kTasSet,
  kTasRead,
  kTasReset,
  kSetPut,
  kSetTake,
  kGlobalMax,
  kGlobalMaxScan,
  kCounterSum,
  kCounterSumScan,
  kSessionOpen,
  kSnapshot,
  kTransfer,
  kCount,
};

inline constexpr int kTelOpCount = static_cast<int>(TelOp::kCount);

inline const char* to_string(TelOp op) {
  switch (op) {
    case TelOp::kMaxWrite: return "max_write";
    case TelOp::kMaxRead: return "max_read";
    case TelOp::kCounterInc: return "counter_inc";
    case TelOp::kCounterRead: return "counter_read";
    case TelOp::kTasSet: return "tas_set";
    case TelOp::kTasRead: return "tas_read";
    case TelOp::kTasReset: return "tas_reset";
    case TelOp::kSetPut: return "set_put";
    case TelOp::kSetTake: return "set_take";
    case TelOp::kGlobalMax: return "global_max";
    case TelOp::kGlobalMaxScan: return "global_max_scan";
    case TelOp::kCounterSum: return "counter_sum";
    case TelOp::kCounterSumScan: return "counter_sum_scan";
    case TelOp::kSessionOpen: return "session_open";
    case TelOp::kSnapshot: return "snapshot";
    case TelOp::kTransfer: return "transfer";
    default: return "unknown_op";
  }
}

/// One decoded flight-recorder entry.
struct FlightEntry {
  uint64_t seq = 0;   ///< lane-local op sequence number
  TelOp op = TelOp::kCount;
  int shard = -1;     ///< -1 for lane-level / aggregate ops
  int64_t arg = 0;    ///< op argument (key value, written value, wait ns, ...)
};

/// Average primitive invocations per service op of one kind, measured by
/// wl::profile_primitives (a calibration pass over a private store).
struct PrimProfile {
  double faa = 0;
  double tas = 0;
  double swap = 0;
  double ops = 0;  ///< ops measured; 0 = kind not profiled
};

/// Plain-data snapshot of everything telemetry knows — what the exporters
/// (telemetry/export.h), the bench reporter, and tools/metrics_diff.py see.
/// `ops_total` is the strongly linearizable digest read; everything else is
/// an explicitly racy lane-scan or a relaxed counter.
struct MetricsSnapshot {
  bool enabled = false;
  int lanes = 0;  ///< lane blocks scanned

  int64_t ops_total = 0;        ///< digest fetch&add(0) — exact, strongly lin.
  uint64_t ops_total_scan = 0;  ///< racy per-lane sum — approximate by design

  uint64_t op_counts[kTelOpCount] = {};
  HistogramSnapshot op_latency[kTelOpCount];  ///< sampled, see kLatencySamplePeriod
  HistogramSnapshot open_wait;                ///< blocking open_session wait time

  // Session-layer counters (filled by svc::C2Store::metrics_snapshot from the
  // LaneRegistry/HandoffQueue introspection the TSAN stress already bounds).
  int64_t lane_tickets = 0;
  int64_t handoff_enqueued = 0;
  int64_t handoff_deliveries = 0;
  int64_t handoff_parks = 0;
  int64_t handoff_revocations = 0;
  int64_t lane_counter_adds = 0;

  uint64_t events[kTelEventCount] = {};

  // Per-shard heat: ops observed against each routing bucket, summed over
  // lanes (racy lane-scan like op_counts — heat is a diagnostic, not a
  // decision input). Aggregate ops carry no shard, so sum <= ops_total.
  std::vector<uint64_t> shard_ops;

  bool has_prim_profile = false;
  PrimProfile prim_profile[kTelOpCount];
};

/// Max-over-mean ratio of shard_ops — 1.0 is perfectly balanced, higher means
/// skew (zipfian/hotburst heat). 1.0 when nothing keyed was counted.
inline double shard_imbalance(const MetricsSnapshot& snap) {
  if (snap.shard_ops.empty()) return 1.0;
  uint64_t max = 0;
  uint64_t sum = 0;
  for (uint64_t c : snap.shard_ops) {
    if (c > max) max = c;
    sum += c;
  }
  if (sum == 0) return 1.0;
  double mean =
      static_cast<double>(sum) / static_cast<double>(snap.shard_ops.size());
  return static_cast<double>(max) / mean;
}

/// 1 of every 32 ops pays the two steady_clock reads for its latency sample;
/// the rest skip the clock entirely. Counters and the digest see every op.
inline constexpr uint64_t kLatencySamplePeriod = 32;

#if C2SL_TELEMETRY

inline namespace tel_on {

/// Bounded last-N ops ring, lane-local (single writer). Three relaxed stores
/// per record; entries are two words (packed meta + raw arg) so a torn
/// snapshot mispairs at worst one in-flight entry — acceptable for a crash
/// diagnostic. Dumped by telemetry/export.cpp on assert failure.
class FlightRecorder {
 public:
  static constexpr uint64_t kEntries = C2SL_FLIGHT_RING;
  static_assert(kEntries >= 2 && (kEntries & (kEntries - 1)) == 0,
                "C2SL_FLIGHT_RING must be a power of two >= 2");

  void record(TelOp op, int shard, int64_t arg) {
    // c2sl-atomic: load relaxed — single-writer ring cursor read
    uint64_t seq = seq_.load(std::memory_order_relaxed);
    Slot& s = slots_[static_cast<size_t>(seq & (kEntries - 1))];
    // meta: [seq:48][op:8][shard+1:8]; shard -1 encodes as 0.
    uint64_t meta = (seq << 16) |
                    ((static_cast<uint64_t>(op) & 0xff) << 8) |
                    (static_cast<uint64_t>(shard + 1) & 0xff);
    // c2sl-atomic: store relaxed, store relaxed, store relaxed — lane-local
    // ring writes; the racy dump tolerates a torn in-flight entry
    s.meta.store(meta, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);
  }

  /// Oldest-first decoded entries (racy read; diagnostics only).
  std::vector<FlightEntry> snapshot() const {
    // c2sl-atomic: load relaxed — documented-racy diagnostic read
    uint64_t seq = seq_.load(std::memory_order_relaxed);
    uint64_t count = seq < kEntries ? seq : kEntries;
    std::vector<FlightEntry> out;
    out.reserve(static_cast<size_t>(count));
    for (uint64_t k = seq - count; k < seq; ++k) {
      const Slot& s = slots_[static_cast<size_t>(k & (kEntries - 1))];
      // c2sl-atomic: load relaxed — documented-racy diagnostic read
      uint64_t meta = s.meta.load(std::memory_order_relaxed);
      FlightEntry e;
      e.seq = meta >> 16;
      e.op = static_cast<TelOp>((meta >> 8) & 0xff);
      e.shard = static_cast<int>(meta & 0xff) - 1;
      // c2sl-atomic: load relaxed — documented-racy diagnostic read
      e.arg = s.arg.load(std::memory_order_relaxed);
      out.push_back(e);
    }
    return out;
  }

 private:
  // Meta and arg interleaved per entry, so one record dirties a single slot
  // line (plus the seq line) instead of two parallel arrays' lines.
  struct Slot {
    std::atomic<uint64_t> meta{0};
    std::atomic<int64_t> arg{0};
  };
  std::atomic<uint64_t> seq_{0};
  Slot slots_[kEntries] = {};
};

/// Per-lane telemetry block. Single writer: the session that owns the lane.
/// All fields are plain-register (load+store) cells; std::atomic only so the
/// racy aggregating reader is well-defined under TSAN.
struct alignas(128) LaneTelemetry {
  std::atomic<uint64_t> op_counts[kTelOpCount] = {};
  LatencyHistogram op_hist[kTelOpCount];
  LatencyHistogram open_wait;
  FlightRecorder flight;

  // The per-op-kind counters double as the lane's digest cells: the lane's
  // total ops is their sum, so the hot path pays exactly one load+store pair
  // (the scan-side read sums kTelOpCount cells instead of one — it is the
  // documented-racy diagnostic, not a hot path).
  void bump(TelOp op) {
    std::atomic<uint64_t>& c = op_counts[static_cast<int>(op)];
    // c2sl-atomic: store relaxed, load relaxed — single-writer plain-register
    // cell; atomic only so the racy aggregating reader is defined
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  uint64_t total_ops_cell() const {
    uint64_t sum = 0;
    for (int k = 0; k < kTelOpCount; ++k) {
      // c2sl-atomic: load relaxed — documented-racy scan-side read
      sum += op_counts[k].load(std::memory_order_relaxed);
    }
    return sum;
  }

  // Per-shard heat cells, lane-local single-writer like op_counts, segmented
  // because resize can grow the bucket count without bound (no capacity knob).
  rt::SegmentedArray<std::atomic<uint64_t>> shard_ops;

  void bump_shard(int shard) {
    if (shard < 0) return;
    std::atomic<uint64_t>& c = shard_ops.cell(static_cast<size_t>(shard));
    // c2sl-atomic: store relaxed, load relaxed — single-writer heat cell;
    // atomic only so the racy aggregating reader is defined
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  uint64_t peek_shard(int shard) const {
    const std::atomic<uint64_t>* c =
        shard_ops.peek(static_cast<size_t>(shard));
    // c2sl-atomic: load relaxed — documented-racy scan-side read
    return c == nullptr ? 0 : c->load(std::memory_order_relaxed);
  }
};

/// Store-wide telemetry root: the lane-block spine plus the one shared FAA
/// word that makes ops_total() strongly linearizable.
class StoreTelemetry {
 public:
  StoreTelemetry() = default;
  StoreTelemetry(const StoreTelemetry&) = delete;
  StoreTelemetry& operator=(const StoreTelemetry&) = delete;

  LaneTelemetry* lane(int i) { return &lanes_.cell(static_cast<size_t>(i)); }
  const LaneTelemetry* peek_lane(int i) const {
    return lanes_.peek(static_cast<size_t>(i));
  }

  /// The digest add — the instrumented op's fixed linearization point in the
  /// telemetry facet. One fetch&add, seq_cst, exactly CounterSumDigest::add's
  /// total-word half.
  // c2sl-atomic: faa seq_cst — digest-add half; the op's telemetry-facet
  // linearization point
  void bump_ops_total() { ops_total_.fetch_add(1, std::memory_order_seq_cst); }

  /// Strongly linearizable exact read: fetch&add(0) linearizes at its own
  /// step (prefix-closed — the checker-verified path).
  int64_t ops_total() {
    // c2sl-atomic: faa seq_cst — FAA(0) exact read; linearizes at its own step
    return ops_total_.fetch_add(0, std::memory_order_seq_cst);
  }

  /// The pinned NEGATIVE control: a one-pass sum of the per-lane cells. Racy
  /// and merely linearizable — its linearization point depends on future
  /// writes (refuted by the checker on the sim twin). Kept for the on-vs-off
  /// contrast in the metrics export; never used where exactness matters.
  uint64_t ops_total_scan(int max_lanes) const {
    uint64_t sum = 0;
    for (int i = 0; i < max_lanes; ++i) {
      if (const LaneTelemetry* lt = peek_lane(i)) {
        sum += lt->total_ops_cell();
      }
    }
    return sum;
  }

  void record_open_wait(LaneTelemetry* lt, int64_t ns) {
    if (lt == nullptr) return;
    lt->bump(TelOp::kSessionOpen);
    lt->open_wait.record(ns);
    lt->flight.record(TelOp::kSessionOpen, -1, ns);
    bump_ops_total();
  }

  /// Telemetry-core snapshot (lane scan + digest read). The service layer
  /// adds its registry/handoff counters on top (C2Store::metrics_snapshot).
  /// `shards` sizes the per-shard heat vector (0 = skip the heat scan).
  MetricsSnapshot snapshot(int max_lanes, int shards = 0) const {
    MetricsSnapshot s;
    s.enabled = true;
    s.ops_total = const_cast<StoreTelemetry*>(this)->ops_total();
    s.ops_total_scan = ops_total_scan(max_lanes);
    s.shard_ops.assign(static_cast<size_t>(shards > 0 ? shards : 0), 0);
    for (int i = 0; i < max_lanes; ++i) {
      const LaneTelemetry* lt = peek_lane(i);
      if (lt == nullptr) continue;
      ++s.lanes;
      for (int k = 0; k < kTelOpCount; ++k) {
        // c2sl-atomic: load relaxed — documented-racy scan-side read
        s.op_counts[k] += lt->op_counts[k].load(std::memory_order_relaxed);
        s.op_latency[k].merge(lt->op_hist[k].snapshot());
      }
      for (size_t b = 0; b < s.shard_ops.size(); ++b) {
        s.shard_ops[b] += lt->peek_shard(static_cast<int>(b));
      }
      s.open_wait.merge(lt->open_wait.snapshot());
    }
    for (int e = 0; e < kTelEventCount; ++e) {
      s.events[e] = event_count(static_cast<TelEvent>(e));
    }
    return s;
  }

 private:
  rt::SegmentedArray<LaneTelemetry> lanes_;
  std::atomic<int64_t> ops_total_{0};
};

/// RAII instrumentation for one service op: counters + flight + digest at
/// entry, sampled latency at exit. Constructed at the top of every ref/
/// session hot path; `lane` is the session's cached LaneTelemetry pointer.
class OpScope {
 public:
  OpScope(StoreTelemetry& store, LaneTelemetry* lane, TelOp op, int shard,
          int64_t arg)
      : lane_(lane), op_(op) {
    std::atomic<uint64_t>& c = lane->op_counts[static_cast<int>(op)];
    // c2sl-atomic: load relaxed — single-writer cell read (sampling decision)
    uint64_t prev = c.load(std::memory_order_relaxed);
    // c2sl-atomic: store relaxed — single-writer cell bump
    c.store(prev + 1, std::memory_order_relaxed);
    lane->bump_shard(shard);
    lane->flight.record(op, shard, arg);
    store.bump_ops_total();
    sampled_ = (prev & (kLatencySamplePeriod - 1)) == 0;
    if (sampled_) t0_ = std::chrono::steady_clock::now();
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  ~OpScope() {
    if (!sampled_) return;
    auto dt = std::chrono::steady_clock::now() - t0_;
    lane_->op_hist[static_cast<int>(op_)].record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }

 private:
  LaneTelemetry* lane_;
  TelOp op_;
  bool sampled_;
  std::chrono::steady_clock::time_point t0_;
};

/// Times the blocking window of open_session. Off-flavour is empty — the
/// disabled build never touches the clock.
class OpenTimer {
 public:
  int64_t elapsed_ns() const {
    auto dt = std::chrono::steady_clock::now() - t0_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
};

}  // namespace tel_on

#else  // !C2SL_TELEMETRY

inline namespace tel_off {

/// Disabled flavour: every type is an empty constexpr shell. The hot-path
/// calls are constant-evaluable (no atomics possible) — proven structurally
/// in tests/telemetry_off_test.cpp.
struct FlightRecorder {
  constexpr void record(TelOp, int, int64_t) const {}
};

struct LaneTelemetry {
  constexpr void bump(TelOp) const {}
  constexpr void bump_shard(int) const {}
  constexpr uint64_t peek_shard(int) const { return 0; }
};

class StoreTelemetry {
 public:
  constexpr LaneTelemetry* lane(int) const { return nullptr; }
  constexpr const LaneTelemetry* peek_lane(int) const { return nullptr; }
  constexpr void bump_ops_total() const {}
  constexpr int64_t ops_total() const { return 0; }
  constexpr uint64_t ops_total_scan(int) const { return 0; }
  constexpr void record_open_wait(LaneTelemetry*, int64_t) const {}
  MetricsSnapshot snapshot(int, int = 0) const { return MetricsSnapshot{}; }
};

class OpScope {
 public:
  constexpr OpScope(const StoreTelemetry&, const LaneTelemetry*, TelOp, int,
                    int64_t) {}
};

class OpenTimer {
 public:
  constexpr int64_t elapsed_ns() const { return 0; }
};

}  // namespace tel_off

#endif  // C2SL_TELEMETRY

}  // namespace c2sl::tel
