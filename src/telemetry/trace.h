// Linearization-witness tracing — always-on per-op trace capture.
//
// Strong linearizability (the paper's whole point) means every operation
// fixes its place in the total order at one of its OWN steps. That makes the
// order *witnessable at runtime*: the journal ticket a keyed write draws from
// rt::KeyedVersionDigest, the FAA(0) value an aggregate read returns, the
// journal tail a snapshot pins — each IS the op's linearization evidence, not
// a reconstruction. This layer records that evidence per op, so an offline
// auditor (tools/trace_audit.py) can validate a *production* history in
// O(n log n) replay instead of the NP-hard search ordinary linearizability
// would require: replay the witnessed order through a sequential model, check
// every recorded result, and check real-time precedence
// (response(a) < invoke(b) ⇒ witness(a) < witness(b)).
//
// Capture discipline (same no-CAS budget as telemetry.h):
//   * One LaneTrace per service lane. Lanes are single-owner (the session
//     holding the lane), so record fields are PLAIN writes into a
//     writer-private segment spine (same doubling geometry as
//     rt::SegmentedArray, but single-writer: segments are allocated
//     UNINITIALISED — every published record is fully written before the
//     count release, so garbage cells are never readable — and the segment
//     pointers ride the same release/acquire pair as the records). The only
//     atomics are the release-published count (so a concurrent drain is
//     TSAN-defined), the relaxed segment pointers, and a relaxed drop
//     counter. No RMW, nothing on a decision path.
//   * Appends never block: past C2SL_TRACE_CAP records the lane counts drops
//     instead of writing (the auditor refuses a lossy trace unless told
//     otherwise, so a dropped record can never silently pass an audit).
//   * Timestamps are raw TSC ticks on x86, ONE read per op: a TraceScope
//     stamps its invoke tick at construction and leaves the record PENDING;
//     the next activity on the lane (the next scope, a point event, or an
//     explicit flush) stamps that same tick as the pending record's response
//     and commits it. The recorded response is therefore never EARLIER than
//     the true one — intervals only widen, which is the sound direction for
//     the auditor's precedence check (a widened interval can only suppress a
//     constraint, never fabricate one). StoreTrace keeps a (tick, ns)
//     calibration pair from construction and dump() takes a second pair, so
//     export converts ticks to wall nanoseconds without hot-path division.
//
// -DC2SL_TRACE=OFF collapses every type here to an empty constexpr shell
// (the telemetry_off pattern); tests/trace_off_test.cpp proves the disabled
// hot path constant-evaluable, hence free of atomics and clock reads.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/prim_profile.h"

#ifndef C2SL_TRACE
#define C2SL_TRACE 1
#endif

/// Per-lane record capacity. Beyond this the lane drops-with-count. 2^20
/// records x 64 B = 64 MiB/lane worst case, allocated lazily in segments.
#ifndef C2SL_TRACE_CAP
#define C2SL_TRACE_CAP (uint64_t{1} << 20)
#endif

#if C2SL_TRACE
#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <new>

#include "runtime/segmented_array.h"
#endif

namespace c2sl::tel {

/// Traced op kinds. A strict superset of TelOp (same codes for the shared
/// prefix, so a trace reader can reuse the metrics op table), plus the two
/// lifecycle kinds the metrics layer has no per-op counter for.
enum class TraceOp : int {
  kMaxWrite = 0,
  kMaxRead,
  kCounterInc,
  kCounterRead,
  kTasSet,
  kTasRead,
  kTasReset,
  kSetPut,
  kSetTake,
  kGlobalMax,
  kGlobalMaxScan,
  kCounterSum,
  kCounterSumScan,
  kSessionOpen,
  kSnapshot,
  kTransfer,
  kSessionClose,
  kResize,
  kCount,
};

inline constexpr int kTraceOpCount = static_cast<int>(TraceOp::kCount);

inline const char* to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kMaxWrite: return "max_write";
    case TraceOp::kMaxRead: return "max_read";
    case TraceOp::kCounterInc: return "counter_inc";
    case TraceOp::kCounterRead: return "counter_read";
    case TraceOp::kTasSet: return "tas_set";
    case TraceOp::kTasRead: return "tas_read";
    case TraceOp::kTasReset: return "tas_reset";
    case TraceOp::kSetPut: return "set_put";
    case TraceOp::kSetTake: return "set_take";
    case TraceOp::kGlobalMax: return "global_max";
    case TraceOp::kGlobalMaxScan: return "global_max_scan";
    case TraceOp::kCounterSum: return "counter_sum";
    case TraceOp::kCounterSumScan: return "counter_sum_scan";
    case TraceOp::kSessionOpen: return "session_open";
    case TraceOp::kSnapshot: return "snapshot";
    case TraceOp::kTransfer: return "transfer";
    case TraceOp::kSessionClose: return "session_close";
    case TraceOp::kResize: return "resize";
    default: return "unknown_op";
  }
}

/// One captured operation. Fixed 64-byte layout (one cache line, and
/// line-ALIGNED so an append dirties exactly one line), plain data in both
/// flavours so tests and exporters never need #if.
struct alignas(64) TraceRecord {
  int32_t op = 0;      ///< TraceOp code
  int32_t key_b = -1;  ///< transfer credit bucket; -1 for every other kind
  int64_t key = -1;    ///< journal bucket / shard slot; -1 = not keyed
  int64_t arg = 0;     ///< op argument (value written, amount, key count, ...)
  int64_t result = 0;  ///< op result (prev count, read value, sum, status)
  int64_t witness = -1;  ///< linearization witness (journal ticket / digest
                         ///< FAA value / snapshot tail); -1 = unwitnessed op
  int64_t t0 = 0;      ///< invoke timestamp, raw ticks
  int64_t t1 = 0;      ///< response timestamp, raw ticks
  int64_t epoch = -1;  ///< routing epoch observed by the op; -1 = n/a
};
static_assert(sizeof(TraceRecord) == 64, "one record = one cache line");

/// Drained copy of one lane's log. Plain data, flavour-independent.
struct LaneTraceDump {
  int lane = -1;
  uint64_t dropped = 0;
  std::vector<TraceRecord> records;
};

/// Drained copy of a whole store's trace plus the tick->ns calibration the
/// exporters need: ns(t) = (t - tick_base) * ns_per_tick + ns_base.
struct TraceDump {
  bool enabled = false;
  int initial_shards = 0;
  int64_t tick_base = 0;
  int64_t ns_base = 0;
  double ns_per_tick = 1.0;
  std::vector<LaneTraceDump> lanes;
};

#if C2SL_TRACE

inline namespace trace_on {

inline constexpr bool kTraceEnabled = true;

/// Raw monotonic tick. TSC on x86 (serializing fences deliberately omitted:
/// a few-cycle skew is far below the auditor's --slack-ns floor and a fenced
/// read would triple the cost of the two always-on reads per op);
/// steady_clock ns elsewhere (calibration then yields ns_per_tick == ~1).
inline int64_t trace_now() {
#if defined(__x86_64__) || defined(__i386__)
  return static_cast<int64_t>(__builtin_ia32_rdtsc());
#else
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

/// Process-lifetime reuse arena for trace segments, keyed by spine slot (all
/// segments in slot s share one size). First-touch page population costs
/// ~1µs/page on virtualised hosts — per-store allocation would re-pay it for
/// every store in a process, which is exactly the overhead the CI trace-on
/// ablation gate punishes. Recycling retired segments makes the steady state
/// fault-free. Acquire/release run only on the COLD segment-crossing path
/// (once per segment per lane life, never per record), so a plain mutex is
/// appropriate here: this is allocator infrastructure in the same trust
/// class as ::operator new (which also locks internally), not a step of any
/// traced operation — the no-CAS discipline governs decision paths, and no
/// trace decision runs under this lock. The containers are function-local
/// statics reachable until process exit, so pooled segments are never
/// leak-reported.
class TraceArena {
 public:
  static TraceRecord* acquire(int s) {
    {
      std::lock_guard<std::mutex> g(mu());
      auto& v = lists()[static_cast<size_t>(s)];
      if (!v.empty()) {
        TraceRecord* p = v.back();
        v.pop_back();
        return p;
      }
    }
    return static_cast<TraceRecord*>(::operator new(
        sizeof(TraceRecord) * rt::SegmentedArray<TraceRecord>::segment_size(s),
        std::align_val_t{alignof(TraceRecord)}));
  }
  static void release(int s, TraceRecord* p) {
    std::lock_guard<std::mutex> g(mu());
    lists()[static_cast<size_t>(s)].push_back(p);
  }

 private:
  using Lists = std::array<std::vector<TraceRecord*>,
                           rt::SegmentedArray<TraceRecord>::kMaxSegments>;
  static std::mutex& mu() {
    static std::mutex m;
    return m;
  }
  static Lists& lists() {
    static Lists* a = new Lists();  // deliberately immortal: see class comment
    return *a;
  }
};

/// One lane's append-only record log. Single writer (the session owning the
/// lane); any thread may drain concurrently. SPSC publication: the writer
/// fills the record with plain stores, then release-publishes the count; the
/// drainer acquire-loads the count and reads only below it.
///
/// The writer keeps two pieces of private state off the atomic path: a cached
/// window into the current segment (so the steady-state append is pointer
/// arithmetic, not a spine lookup), and at most one PENDING record — the last
/// TraceScope's, awaiting its response tick. The next writer-side activity
/// (scope, point event, or flush()) stamps and commits it; until then a
/// concurrent drain simply does not see the still-in-flight op.
class alignas(128) LaneTrace {
 public:
  static constexpr uint64_t kCap = C2SL_TRACE_CAP;

  LaneTrace() = default;
  LaneTrace(const LaneTrace&) = delete;
  LaneTrace& operator=(const LaneTrace&) = delete;
  ~LaneTrace() {
    for (int s = 0; s < kSegs; ++s) {
      if (segs_w_[s] != nullptr) TraceArena::release(s, segs_w_[s]);
    }
  }

  /// Writer side. Returns the slot to fill, or nullptr when the lane is at
  /// capacity (the drop is counted; the caller just skips its plain stores).
  /// Must not be called while a pending record is outstanding — callers
  /// always flush_pending() first.
  TraceRecord* begin_append() {
    uint64_t n = n_;  // plain field: writer-private cursor
    if (n >= kCap) {
      // c2sl-atomic: store relaxed, load relaxed — single-writer drop
      // counter; atomic only so the drain-side read is defined
      dropped_.store(dropped_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      return nullptr;
    }
    if (n < win_lo_ || n >= win_hi_) refresh_window(n);
    return win_base_ + (n - win_lo_);
  }

  /// Writer side, after the record's plain stores: make it drainable.
  void commit_append() {
    uint64_t n = n_ + 1;
    n_ = n;
    // c2sl-atomic: store release — publishes the filled record to drainers
    // (pairs with the acquire in drain_into)
    published_.store(n, std::memory_order_release);
    // Warm the next record's cache line for writing: appends stream one fresh
    // 64-byte line per op, and without the hint every commit eats the
    // read-for-ownership miss on the critical path.
    if (n >= win_lo_ && n < win_hi_) {
      __builtin_prefetch(win_base_ + (n - win_lo_), 1, 0);
    }
  }

  /// Writer side: stage `r` (the record begin_append just handed out, fully
  /// filled except its response tick) as pending. Committed by the next
  /// flush_pending with that activity's tick as the response timestamp.
  void stage_pending(TraceRecord* r) { pending_ = r; }

  /// Writer side: stamp and commit the pending record, if any. `tick` is
  /// taken at the START of the current activity, so it is never earlier than
  /// the pending op's true response — recorded intervals only widen.
  void flush_pending(int64_t tick) {
    TraceRecord* p = pending_;
    if (p == nullptr) return;
    pending_ = nullptr;
    p->t1 = tick;
    commit_append();
  }

  /// Writer side: flush the pending record at the current tick. For writers
  /// that stop appending without a session-close event (tests, ad-hoc use);
  /// the service layer's close event flushes implicitly.
  void flush() { flush_pending(trace_now()); }

  /// Drain side: copy everything published so far. Safe against a concurrent
  /// writer — only records below the acquired count are touched, and any
  /// segment holding such a record had its pointer stored before the count
  /// was released, so the acquire makes both visible together.
  void drain_into(LaneTraceDump& out) const {
    // c2sl-atomic: load acquire — pairs with commit_append's release; records
    // below this count are fully written
    uint64_t n = published_.load(std::memory_order_acquire);
    out.records.reserve(static_cast<size_t>(n));
    using Arr = rt::SegmentedArray<TraceRecord>;
    for (uint64_t i = 0; i < n;) {
      int s = Arr::segment_of(static_cast<size_t>(i));
      uint64_t start = Arr::segment_start(s);
      uint64_t end = start + Arr::segment_size(s);
      if (end > n) end = n;
      // c2sl-atomic: load relaxed — segment pointer; non-null for every
      // segment holding records below the acquired count (ordering rides the
      // published-count release/acquire pair)
      const TraceRecord* base = segs_[s].load(std::memory_order_relaxed);
      out.records.insert(out.records.end(), base + (i - start),
                         base + (end - start));
      i = end;
    }
    // c2sl-atomic: load relaxed — drop-counter read (drain side)
    out.dropped = dropped_.load(std::memory_order_relaxed);
  }

  uint64_t published() const {
    // c2sl-atomic: load acquire — drain-side count read
    return published_.load(std::memory_order_acquire);
  }

  uint64_t dropped() const {
    // c2sl-atomic: load relaxed — drop-counter read
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  using Arr = rt::SegmentedArray<TraceRecord>;  ///< geometry helpers only
  /// Spine slots needed to cover kCap records under the doubling geometry.
  static constexpr int kSegs =
      kCap == 0 ? 1 : Arr::segment_of(static_cast<size_t>(kCap) - 1) + 1;

  /// Re-aim the cached window at the segment holding index n, allocating the
  /// segment on first touch (cold: runs once per segment crossing,
  /// ~log2(n/64) times over a lane's whole life). The allocation is
  /// deliberately UNINITIALISED (::operator new, no constructors): drainers
  /// read only below the published count, and every such record was fully
  /// written before its count release — zeroing megabytes of soon-overwritten
  /// cells was a measurable fraction of the capture overhead.
  void refresh_window(uint64_t n) {
    int s = Arr::segment_of(static_cast<size_t>(n));
    TraceRecord* base = segs_w_[s];
    if (base == nullptr) {
      base = TraceArena::acquire(s);
      segs_w_[s] = base;
      // c2sl-atomic: store relaxed — segment-pointer publication to drainers;
      // ordering rides the published-count release (a record below the count
      // implies its segment pointer was stored before that release)
      segs_[s].store(base, std::memory_order_relaxed);
    }
    win_base_ = base;
    win_lo_ = Arr::segment_start(s);
    win_hi_ = win_lo_ + Arr::segment_size(s);
  }

  uint64_t n_ = 0;  ///< writer-private cursor (plain: single owner)
  TraceRecord* win_base_ = nullptr;  ///< writer-private segment window
  uint64_t win_lo_ = 0;              ///< first index inside the window
  uint64_t win_hi_ = 0;              ///< one past the last window index
  TraceRecord* pending_ = nullptr;   ///< writer-private: awaiting response tick
  TraceRecord* segs_w_[kSegs] = {};  ///< writer-private spine mirror
  std::atomic<TraceRecord*> segs_[kSegs] = {};  ///< drain-visible spine
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// Store-wide trace root: the lane-log spine plus tick calibration.
class StoreTrace {
 public:
  StoreTrace() {
    tick_base_ = trace_now();
    ns_base_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count();
  }
  StoreTrace(const StoreTrace&) = delete;
  StoreTrace& operator=(const StoreTrace&) = delete;

  LaneTrace* lane(int i) { return &lanes_.cell(static_cast<size_t>(i)); }
  const LaneTrace* peek_lane(int i) const {
    return lanes_.peek(static_cast<size_t>(i));
  }

  /// Point event (open/close/resize): one record with t0 == t1. Flushes the
  /// lane's pending record first, so a session-close event doubles as the
  /// flush point that makes the lane's last interval op drainable.
  void record_event(LaneTrace* lt, TraceOp op, int64_t key, int64_t arg,
                    int64_t result, int64_t witness, int64_t epoch) {
    if (lt == nullptr) return;
    int64_t now = trace_now();
    lt->flush_pending(now);
    TraceRecord* r = lt->begin_append();
    if (r == nullptr) return;
    r->op = static_cast<int32_t>(op);
    r->key_b = -1;
    r->key = key;
    r->arg = arg;
    r->result = result;
    r->witness = witness;
    r->t0 = now;
    r->t1 = now;
    r->epoch = epoch;
    lt->commit_append();
  }

  /// Drain every lane. Takes a second (tick, ns) calibration pair so the
  /// export runs on wall-clock nanoseconds however fast the TSC ticks.
  TraceDump dump(int max_lanes, int initial_shards) const {
    TraceDump d;
    d.enabled = true;
    d.initial_shards = initial_shards;
    d.tick_base = tick_base_;
    d.ns_base = ns_base_;
    int64_t tick_now = trace_now();
    int64_t ns_now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    d.ns_per_tick = tick_now > tick_base_
                        ? static_cast<double>(ns_now - ns_base_) /
                              static_cast<double>(tick_now - tick_base_)
                        : 1.0;
    for (int i = 0; i < max_lanes; ++i) {
      const LaneTrace* lt = peek_lane(i);
      if (lt == nullptr) continue;
      if (lt->published() == 0 && lt->dropped() == 0) continue;
      LaneTraceDump ld;
      ld.lane = i;
      lt->drain_into(ld);
      d.lanes.push_back(std::move(ld));
    }
    return d;
  }

 private:
  rt::SegmentedArray<LaneTrace> lanes_;
  int64_t tick_base_ = 0;
  int64_t ns_base_ = 0;
};

/// RAII capture for one interval op: ONE tick read at construction stamps
/// this op's invoke AND commits the lane's previous pending record with that
/// tick as its response (never earlier than the true response — sound for
/// the auditor; see the header comment). Destruction stages this record as
/// the new pending one. Sits next to tel::OpScope at the top of every
/// instrumented hot path; the setters run between, as the op's own steps
/// reveal its witness/result.
class TraceScope {
 public:
  TraceScope(LaneTrace* lt, TraceOp op, int64_t key, int64_t arg) : lt_(lt) {
    if (lt_ == nullptr) return;
    int64_t tick = trace_now();
    lt_->flush_pending(tick);
    rec_ = lt_->begin_append();
    if (rec_ == nullptr) return;  // lane at cap: drop counted, scope inert
    rec_->op = static_cast<int32_t>(op);
    rec_->key_b = -1;
    rec_->key = key;
    rec_->arg = arg;
    rec_->result = 0;
    rec_->witness = -1;
    rec_->epoch = -1;
    rec_->t0 = tick;
    rec_->t1 = tick;  // floor; the real response tick lands at the flush
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_result(int64_t v) {
    if (rec_) rec_->result = v;
  }
  void set_witness(int64_t w) {
    if (rec_) rec_->witness = w;
  }
  void set_key_b(int32_t b) {
    if (rec_) rec_->key_b = b;
  }
  void set_epoch(int64_t e) {
    if (rec_) rec_->epoch = e;
  }

  ~TraceScope() {
    if (rec_ == nullptr) return;
    lt_->stage_pending(rec_);
  }

 private:
  LaneTrace* lt_ = nullptr;
  TraceRecord* rec_ = nullptr;
};

}  // namespace trace_on

#else  // !C2SL_TRACE

inline namespace trace_off {

inline constexpr bool kTraceEnabled = false;

constexpr int64_t trace_now() { return 0; }

/// Disabled flavour: empty constexpr shells, the telemetry_off pattern.
/// tests/trace_off_test.cpp constant-evaluates the whole capture path.
struct LaneTrace {
  static constexpr uint64_t kCap = 0;
  constexpr TraceRecord* begin_append() const { return nullptr; }
  constexpr void commit_append() const {}
  constexpr void stage_pending(TraceRecord*) const {}
  constexpr void flush_pending(int64_t) const {}
  constexpr void flush() const {}
  constexpr uint64_t published() const { return 0; }
  constexpr uint64_t dropped() const { return 0; }
};

class StoreTrace {
 public:
  constexpr LaneTrace* lane(int) const { return nullptr; }
  constexpr const LaneTrace* peek_lane(int) const { return nullptr; }
  constexpr void record_event(LaneTrace*, TraceOp, int64_t, int64_t, int64_t,
                              int64_t, int64_t) const {}
  TraceDump dump(int, int) const { return TraceDump{}; }
};

class TraceScope {
 public:
  constexpr TraceScope(LaneTrace*, TraceOp, int64_t, int64_t) {}
  constexpr void set_result(int64_t) const {}
  constexpr void set_witness(int64_t) const {}
  constexpr void set_key_b(int32_t) const {}
  constexpr void set_epoch(int64_t) const {}
};

}  // namespace trace_off

#endif  // C2SL_TRACE

}  // namespace c2sl::tel
