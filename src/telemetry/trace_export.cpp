#include "telemetry/trace_export.h"

#include <cinttypes>
#include <cstdio>

#include "telemetry/telemetry.h"
#include "workload/json_writer.h"

namespace c2sl::tel {

// TraceOp extends TelOp with the same codes on the shared prefix, so tools
// reading both documents use one op table. Pin the correspondence.
static_assert(static_cast<int>(TraceOp::kMaxWrite) ==
              static_cast<int>(TelOp::kMaxWrite));
static_assert(static_cast<int>(TraceOp::kCounterInc) ==
              static_cast<int>(TelOp::kCounterInc));
static_assert(static_cast<int>(TraceOp::kSnapshot) ==
              static_cast<int>(TelOp::kSnapshot));
static_assert(static_cast<int>(TraceOp::kTransfer) ==
              static_cast<int>(TelOp::kTransfer));
static_assert(kTraceOpCount == kTelOpCount + 2,
              "TraceOp adds exactly session_close and resize");

namespace {

/// Tick -> nanoseconds since the store's trace epoch.
int64_t to_ns(const TraceDump& d, int64_t ticks) {
  return static_cast<int64_t>(static_cast<double>(ticks - d.tick_base) *
                              d.ns_per_tick);
}

const char* op_name(int32_t code) {
  if (code < 0 || code >= kTraceOpCount) return "unknown_op";
  return to_string(static_cast<TraceOp>(code));
}

}  // namespace

std::string trace_to_json(const TraceDump& dump, std::string_view source) {
  wl::JsonWriter w;
  w.begin_object();
  w.field("schema", "c2sl-trace-v1");
  w.field("source", source);
  w.field("trace_enabled", dump.enabled);
  w.field("initial_shards", dump.initial_shards);
  w.field("ns_per_tick", dump.ns_per_tick);
  uint64_t records_total = 0;
  uint64_t dropped_total = 0;
  for (const LaneTraceDump& l : dump.lanes) {
    records_total += l.records.size();
    dropped_total += l.dropped;
  }
  w.field("records_total", records_total);
  w.field("dropped_total", dropped_total);
  w.key("lanes");
  w.begin_array();
  for (const LaneTraceDump& l : dump.lanes) {
    w.begin_object();
    w.field("lane", l.lane);
    w.field("dropped", l.dropped);
    w.key("records");
    w.begin_array();
    for (const TraceRecord& r : l.records) {
      w.begin_object();
      w.field("op", op_name(r.op));
      if (r.key >= 0) w.field("key", r.key);
      if (r.key_b >= 0) w.field("key_b", static_cast<int64_t>(r.key_b));
      w.field("arg", r.arg);
      w.field("result", r.result);
      if (r.witness >= 0) w.field("witness", r.witness);
      w.field("t0_ns", to_ns(dump, r.t0));
      w.field("t1_ns", to_ns(dump, r.t1));
      if (r.epoch >= 0) w.field("epoch", r.epoch);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string trace_to_chrome(const TraceDump& dump, std::string_view source) {
  wl::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const LaneTraceDump& l : dump.lanes) {
    for (const TraceRecord& r : l.records) {
      w.begin_object();
      w.field("name", op_name(r.op));
      w.field("cat", "c2store");
      w.field("ph", "X");
      w.field("ts", static_cast<double>(to_ns(dump, r.t0)) / 1000.0);
      w.field("dur", static_cast<double>(to_ns(dump, r.t1) - to_ns(dump, r.t0)) /
                         1000.0);
      w.field("pid", 1);
      w.field("tid", l.lane);
      w.key("args");
      w.begin_object();
      if (r.key >= 0) w.field("key", r.key);
      if (r.key_b >= 0) w.field("key_b", static_cast<int64_t>(r.key_b));
      w.field("arg", r.arg);
      w.field("result", r.result);
      if (r.witness >= 0) w.field("witness", r.witness);
      if (r.epoch >= 0) w.field("epoch", r.epoch);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.field("displayTimeUnit", "ns");
  w.key("otherData");
  w.begin_object();
  w.field("source", source);
  w.field("schema", "c2sl-trace-v1-chrome");
  w.end_object();
  w.end_object();
  return w.str();
}

#if C2SL_TRACE

void dump_trace_tail(std::FILE* out, const StoreTrace& trace, int max_lanes,
                     int tail) {
  std::fprintf(out, "c2sl trace tail (last %d records per lane):\n", tail);
  for (int lane = 0; lane < max_lanes; ++lane) {
    const LaneTrace* lt = trace.peek_lane(lane);
    if (lt == nullptr) continue;
    uint64_t n = lt->published();
    if (n == 0) continue;
    LaneTraceDump ld;
    lt->drain_into(ld);
    uint64_t from = n > static_cast<uint64_t>(tail)
                        ? n - static_cast<uint64_t>(tail)
                        : 0;
    std::fprintf(out, "  lane %d (%" PRIu64 " records, %" PRIu64
                      " dropped):\n",
                 lane, n, ld.dropped);
    for (uint64_t i = from; i < ld.records.size(); ++i) {
      const TraceRecord& r = ld.records[i];
      std::fprintf(out,
                   "    #%" PRIu64 " %s key=%" PRId64 " arg=%" PRId64
                   " result=%" PRId64 " witness=%" PRId64 "\n",
                   i, op_name(r.op), r.key, r.arg, r.result, r.witness);
    }
  }
}

#endif  // C2SL_TRACE

}  // namespace c2sl::tel
