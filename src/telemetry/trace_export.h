// Trace exporters: the c2sl-trace-v1 JSON document (what tools/trace_audit.py
// consumes) and the Chrome trace-event format (chrome://tracing / Perfetto).
//
// Both serialisers take the plain-data TraceDump, so they have ONE definition
// regardless of the C2SL_TRACE flavour — a disabled build still exports a
// well-formed document that says trace_enabled=false (the auditor treats that
// as "nothing to audit", not an error). The post-mortem tail dump touches the
// live StoreTrace and is flavour-versioned like dump_flight.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "telemetry/trace.h"

namespace c2sl::tel {

/// JSON trace, schema "c2sl-trace-v1" (documented in README.md; audited by
/// tools/trace_audit.py). Timestamps are exported as nanoseconds relative to
/// the store's trace epoch (ticks * ns_per_tick), records in lane order.
std::string trace_to_json(const TraceDump& dump, std::string_view source);

/// Chrome trace-event JSON: one "X" (complete) event per record, tid = lane,
/// witness/key/result in args. Load in chrome://tracing or ui.perfetto.dev.
std::string trace_to_chrome(const TraceDump& dump, std::string_view source);

#if C2SL_TRACE

/// Prints each lane's last `tail` records (with witnesses) to `out` — the
/// post-mortem twin of dump_flight, wired into the same assert-failure hook
/// so crash dumps carry linearization evidence.
void dump_trace_tail(std::FILE* out, const StoreTrace& trace, int max_lanes,
                     int tail);

#else

inline void dump_trace_tail(std::FILE*, const StoreTrace&, int, int) {}

#endif  // C2SL_TRACE

}  // namespace c2sl::tel
