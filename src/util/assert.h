// Internal assertion helpers for the c2sl library.
//
// The simulator and the verification tooling are only trustworthy if their own
// invariants hold, so assertions stay enabled in every build configuration
// (the top-level CMakeLists strips -DNDEBUG). C2SL_ASSERT aborts with a
// source-located message; C2SL_CHECK throws, for conditions that depend on
// caller input rather than internal logic.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace c2sl {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "c2sl assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg.c_str());
  std::abort();
}

/// Thrown by C2SL_CHECK on precondition violations caused by caller input.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace c2sl

#define C2SL_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::c2sl::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define C2SL_ASSERT_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr)) ::c2sl::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define C2SL_CHECK(expr, msg)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      throw ::c2sl::PreconditionError(std::string("c2sl precondition: ") + \
                                      (msg));                             \
  } while (0)
