// Internal assertion helpers for the c2sl library.
//
// The simulator and the verification tooling are only trustworthy if their own
// invariants hold, so assertions stay enabled in every build configuration
// (the top-level CMakeLists strips -DNDEBUG). C2SL_ASSERT aborts with a
// source-located message; C2SL_CHECK throws, for conditions that depend on
// caller input rather than internal logic.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace c2sl {

/// Last-chance diagnostic hook, invoked by assert_fail before abort. The
/// telemetry layer installs a flight-recorder dump here (telemetry/export.h)
/// so a failed invariant ships the last-N ops per lane with it. Registration
/// is two plain register writes (last installer wins — one dump is plenty);
/// the slot holds a function + context pair read racily at failure time.
struct FailureHookSlot {
  std::atomic<void (*)(void*)> fn{nullptr};
  std::atomic<void*> ctx{nullptr};
};

inline FailureHookSlot& failure_hook() {
  static FailureHookSlot slot;
  return slot;
}

inline void set_failure_hook(void (*fn)(void*), void* ctx) {
  FailureHookSlot& slot = failure_hook();
  // c2sl-atomic: store relaxed — ctx publishes via the release store of fn
  slot.ctx.store(ctx, std::memory_order_relaxed);
  // c2sl-atomic: store release — publishes fn+ctx to a racing assert_fail
  slot.fn.store(fn, std::memory_order_release);
}

/// Clears the hook iff it still points at `ctx` (a dying owner must not
/// clobber a successor's registration).
inline void clear_failure_hook(void* ctx) {
  FailureHookSlot& slot = failure_hook();
  // c2sl-atomic: load acquire — pairs with set_failure_hook's release
  if (slot.ctx.load(std::memory_order_acquire) == ctx) {
    // c2sl-atomic: store relaxed — disarm fn first; ctx is dead once fn is null
    slot.fn.store(nullptr, std::memory_order_relaxed);
    // c2sl-atomic: store relaxed — best-effort slot scrub on the owner's exit
    slot.ctx.store(nullptr, std::memory_order_relaxed);
  }
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "c2sl assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg.c_str());
  FailureHookSlot& slot = failure_hook();
  // c2sl-atomic: load acquire — observing fn also makes its ctx visible
  if (auto* fn = slot.fn.load(std::memory_order_acquire)) {
    // c2sl-atomic: load relaxed — ordered after fn by the acquire above
    fn(slot.ctx.load(std::memory_order_relaxed));
  }
  std::abort();
}

/// Thrown by C2SL_CHECK on precondition violations caused by caller input.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace c2sl

#define C2SL_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::c2sl::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define C2SL_ASSERT_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr)) ::c2sl::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define C2SL_CHECK(expr, msg)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      throw ::c2sl::PreconditionError(std::string("c2sl precondition: ") + \
                                      (msg));                             \
  } while (0)
