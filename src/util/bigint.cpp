#include "util/bigint.h"

#include <algorithm>
#include <array>
#include <bit>

#include "util/assert.h"

namespace c2sl {

namespace {
constexpr uint64_t kLimbBits = 64;
using u128 = unsigned __int128;
}  // namespace

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? (~static_cast<uint64_t>(v) + 1) : static_cast<uint64_t>(v);
  mag_.push_back(mag);
}

BigInt BigInt::from_u64(uint64_t v) {
  BigInt r;
  if (v != 0) r.mag_.push_back(v);
  return r;
}

BigInt BigInt::pow2(uint64_t bit) {
  BigInt r;
  r.mag_.assign(bit / kLimbBits + 1, 0);
  r.mag_.back() = uint64_t{1} << (bit % kLimbBits);
  return r;
}

BigInt BigInt::from_hex(std::string_view s) {
  BigInt r;
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) s.remove_prefix(2);
  C2SL_CHECK(!s.empty(), "empty hex literal");
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else { C2SL_CHECK(false, "invalid hex digit"); return r; }
    r = r.shifted_left(4);
    r += BigInt(digit);
  }
  r.negative_ = neg && !r.is_zero();
  return r;
}

BigInt BigInt::from_dec(std::string_view s) {
  BigInt r;
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  C2SL_CHECK(!s.empty(), "empty decimal literal");
  for (char c : s) {
    C2SL_CHECK(c >= '0' && c <= '9', "invalid decimal digit");
    r = r * BigInt(10);
    r += BigInt(c - '0');
  }
  r.negative_ = neg && !r.is_zero();
  return r;
}

int BigInt::cmp_mag(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_mag(std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  if (a.size() < b.size()) a.resize(b.size(), 0);
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 sum = carry + a[i] + (i < b.size() ? b[i] : 0);
    a[i] = static_cast<uint64_t>(sum);
    carry = sum >> kLimbBits;
  }
  if (carry != 0) a.push_back(static_cast<uint64_t>(carry));
}

void BigInt::sub_mag(std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  C2SL_ASSERT(cmp_mag(a, b) >= 0);
  unsigned __int128 borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 sub = borrow + (i < b.size() ? b[i] : 0);
    if (a[i] >= sub) {
      a[i] -= static_cast<uint64_t>(sub);
      borrow = 0;
    } else {
      a[i] = static_cast<uint64_t>((u128{1} << kLimbBits) + a[i] - sub);
      borrow = 1;
    }
  }
  C2SL_ASSERT(borrow == 0);
}

void BigInt::normalize() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (negative_ == o.negative_) {
    add_mag(mag_, o.mag_);
  } else if (cmp_mag(mag_, o.mag_) >= 0) {
    sub_mag(mag_, o.mag_);
  } else {
    std::vector<uint64_t> tmp = o.mag_;
    sub_mag(tmp, mag_);
    mag_ = std::move(tmp);
    negative_ = o.negative_;
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) { return *this += -o; }

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt r;
  r.mag_.assign(mag_.size() + o.mag_.size(), 0);
  for (size_t i = 0; i < mag_.size(); ++i) {
    unsigned __int128 carry = 0;
    for (size_t j = 0; j < o.mag_.size(); ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(mag_[i]) * o.mag_[j] +
                              r.mag_[i + j] + carry;
      r.mag_[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> kLimbBits;
    }
    size_t k = i + o.mag_.size();
    while (carry != 0) {
      unsigned __int128 cur = carry + r.mag_[k];
      r.mag_[k] = static_cast<uint64_t>(cur);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  r.negative_ = negative_ != o.negative_;
  r.normalize();
  return r;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_)
    return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  int c = BigInt::cmp_mag(a.mag_, b.mag_);
  if (a.negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool BigInt::bit(uint64_t i) const {
  size_t limb_idx = i / kLimbBits;
  if (limb_idx >= mag_.size()) return false;
  return (mag_[limb_idx] >> (i % kLimbBits)) & 1;
}

void BigInt::set_bit(uint64_t i, bool v) {
  size_t limb_idx = i / kLimbBits;
  if (v) {
    if (limb_idx >= mag_.size()) mag_.resize(limb_idx + 1, 0);
    mag_[limb_idx] |= uint64_t{1} << (i % kLimbBits);
  } else if (limb_idx < mag_.size()) {
    mag_[limb_idx] &= ~(uint64_t{1} << (i % kLimbBits));
    normalize();
  }
}

uint64_t BigInt::bit_length() const {
  if (mag_.empty()) return 0;
  return (mag_.size() - 1) * kLimbBits +
         (kLimbBits - static_cast<uint64_t>(std::countl_zero(mag_.back())));
}

uint64_t BigInt::popcount() const {
  uint64_t n = 0;
  for (uint64_t l : mag_) n += static_cast<uint64_t>(std::popcount(l));
  return n;
}

BigInt BigInt::shifted_left(uint64_t k) const {
  if (is_zero() || k == 0) {
    BigInt r = *this;
    return r;
  }
  BigInt r;
  r.negative_ = negative_;
  size_t limb_shift = k / kLimbBits;
  uint64_t bit_shift = k % kLimbBits;
  r.mag_.assign(mag_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < mag_.size(); ++i) {
    r.mag_[i + limb_shift] |= bit_shift == 0 ? mag_[i] : (mag_[i] << bit_shift);
    if (bit_shift != 0)
      r.mag_[i + limb_shift + 1] |= mag_[i] >> (kLimbBits - bit_shift);
  }
  r.normalize();
  return r;
}

BigInt BigInt::shifted_right(uint64_t k) const {
  size_t limb_shift = k / kLimbBits;
  uint64_t bit_shift = k % kLimbBits;
  if (limb_shift >= mag_.size()) return BigInt();
  BigInt r;
  r.negative_ = negative_;
  r.mag_.assign(mag_.size() - limb_shift, 0);
  for (size_t i = 0; i < r.mag_.size(); ++i) {
    r.mag_[i] = bit_shift == 0 ? mag_[i + limb_shift] : (mag_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < mag_.size())
      r.mag_[i] |= mag_[i + limb_shift + 1] << (kLimbBits - bit_shift);
  }
  r.normalize();
  return r;
}

int64_t BigInt::to_i64() const {
  C2SL_CHECK(mag_.size() <= 1, "BigInt out of int64 range");
  if (mag_.empty()) return 0;
  uint64_t m = mag_[0];
  if (negative_) {
    C2SL_CHECK(m <= uint64_t{1} << 63, "BigInt out of int64 range");
    return static_cast<int64_t>(~m + 1);
  }
  C2SL_CHECK(m < (uint64_t{1} << 63), "BigInt out of int64 range");
  return static_cast<int64_t>(m);
}

uint64_t BigInt::to_u64() const {
  C2SL_CHECK(!negative_ && mag_.size() <= 1, "BigInt out of uint64 range");
  return mag_.empty() ? 0 : mag_[0];
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0x0";
  std::string out = negative_ ? "-0x" : "0x";
  static const char* digits = "0123456789abcdef";
  bool started = false;
  for (size_t i = mag_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      int d = static_cast<int>((mag_[i] >> (nib * 4)) & 0xf);
      if (!started && d == 0) continue;
      started = true;
      out.push_back(digits[d]);
    }
  }
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^19 (largest power of ten in a limb).
  constexpr uint64_t kChunk = 10'000'000'000'000'000'000ULL;
  std::vector<uint64_t> work = mag_;
  std::vector<uint64_t> chunks;
  while (!work.empty()) {
    unsigned __int128 rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << kLimbBits) | work[i];
      work[i] = static_cast<uint64_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    chunks.push_back(static_cast<uint64_t>(rem));
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

size_t BigInt::hash() const {
  uint64_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL;
  for (uint64_t l : mag_) {
    h ^= l + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

}  // namespace c2sl
