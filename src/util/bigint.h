// Arbitrary-precision signed integers.
//
// The paper's §3 constructions (max register, snapshot from fetch&add) pack one
// bit-lane per process into a single register and store unboundedly large values
// ("Our implementations using fetch&add store extremely large values in a single
// variable", §6). The simulated fetch&add base object therefore operates on
// BigInt. Representation: sign + magnitude, little-endian 64-bit limbs,
// normalised (no trailing zero limbs; zero has an empty limb vector and positive
// sign).
//
// Only the operations the library needs are provided: exact add/sub/mul,
// comparison, single-bit access, shifts, popcount, conversion and formatting.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace c2sl {

class BigInt {
 public:
  BigInt() = default;
  BigInt(int64_t v);  // NOLINT(google-explicit-constructor): intended implicit
  static BigInt from_u64(uint64_t v);
  /// 2^bit.
  static BigInt pow2(uint64_t bit);
  /// Parse from hex, with optional leading '-' and optional "0x" prefix.
  static BigInt from_hex(std::string_view s);
  /// Parse from decimal, with optional leading '-'.
  static BigInt from_dec(std::string_view s);

  bool is_zero() const { return mag_.empty(); }
  bool is_negative() const { return negative_; }

  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  BigInt operator-() const;
  BigInt operator*(const BigInt& o) const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.mag_ == b.mag_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Bit access on the magnitude; callers in this library only use bit access on
  /// non-negative values (lane encodings never go negative).
  bool bit(uint64_t i) const;
  void set_bit(uint64_t i, bool v);

  /// Number of bits in the magnitude (0 for zero).
  uint64_t bit_length() const;
  /// Number of set bits in the magnitude.
  uint64_t popcount() const;

  BigInt shifted_left(uint64_t k) const;
  BigInt shifted_right(uint64_t k) const;

  /// Checked narrowing conversions; throw PreconditionError if out of range.
  int64_t to_i64() const;
  uint64_t to_u64() const;

  std::string to_hex() const;  ///< e.g. "-0x1f", "0x0".
  std::string to_dec() const;  ///< decimal, e.g. "-31".

  size_t hash() const;

  size_t limb_count() const { return mag_.size(); }
  uint64_t limb(size_t i) const { return i < mag_.size() ? mag_[i] : 0; }

 private:
  static int cmp_mag(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b);
  static void add_mag(std::vector<uint64_t>& a, const std::vector<uint64_t>& b);
  /// Requires |a| >= |b|.
  static void sub_mag(std::vector<uint64_t>& a, const std::vector<uint64_t>& b);
  void normalize();

  bool negative_ = false;
  std::vector<uint64_t> mag_;
};

}  // namespace c2sl
