#include "util/interleave.h"

#include "util/assert.h"

namespace c2sl::lanes {

BigInt extract_lane(const BigInt& reg, int n, int i) {
  C2SL_ASSERT(n > 0 && i >= 0 && i < n);
  C2SL_ASSERT(!reg.is_negative());
  BigInt lane;
  uint64_t total_bits = reg.bit_length();
  for (uint64_t j = 0; global_bit(n, i, j) < total_bits; ++j) {
    if (reg.bit(global_bit(n, i, j))) lane.set_bit(j, true);
  }
  return lane;
}

BigInt spread_lane(const BigInt& lane, int n, int i) {
  C2SL_ASSERT(n > 0 && i >= 0 && i < n);
  C2SL_ASSERT(!lane.is_negative());
  BigInt reg;
  uint64_t bits = lane.bit_length();
  for (uint64_t j = 0; j < bits; ++j) {
    if (lane.bit(j)) reg.set_bit(global_bit(n, i, j), true);
  }
  return reg;
}

uint64_t unary_lane_value(const BigInt& reg, int n, int i) {
  return extract_lane(reg, n, i).bit_length();
}

BigInt unary_raise_delta(int n, int i, uint64_t old_value, uint64_t new_value) {
  C2SL_ASSERT(old_value <= new_value);
  BigInt delta;
  for (uint64_t j = old_value; j < new_value; ++j) {
    delta += BigInt::pow2(global_bit(n, i, j));
  }
  return delta;
}

BigInt binary_lane_value(const BigInt& reg, int n, int i) {
  return extract_lane(reg, n, i);
}

BigInt binary_rewrite_delta(int n, int i, const BigInt& old_value,
                            const BigInt& new_value) {
  C2SL_ASSERT(!old_value.is_negative() && !new_value.is_negative());
  BigInt pos_adj;  // bits that are 1 in new but 0 in old: must be set
  BigInt neg_adj;  // bits that are 0 in new but 1 in old: must be cleared
  uint64_t bits = std::max(old_value.bit_length(), new_value.bit_length());
  for (uint64_t j = 0; j < bits; ++j) {
    bool was = old_value.bit(j);
    bool now = new_value.bit(j);
    if (was == now) continue;
    if (now)
      pos_adj += BigInt::pow2(global_bit(n, i, j));
    else
      neg_adj += BigInt::pow2(global_bit(n, i, j));
  }
  return pos_adj - neg_adj;
}

std::vector<uint64_t> all_unary_lanes(const BigInt& reg, int n) {
  std::vector<uint64_t> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = unary_lane_value(reg, n, i);
  return out;
}

std::vector<BigInt> all_binary_lanes(const BigInt& reg, int n) {
  std::vector<BigInt> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = binary_lane_value(reg, n, i);
  return out;
}

}  // namespace c2sl::lanes
