// Bit-interleaved per-process lanes inside a single register (paper §3.1–§3.2).
//
// With n processes, process i owns the global bit positions i, n+i, 2n+i, ...
// ("p0 stores its value in bits 0, n, 2n, 3n, ..., p1 gets bits 1, n+1, 2n+1,
// ...") so that each process can grow its value unboundedly while all values
// share one fetch&add register. Two encodings are used:
//
//  * unary  (max register, §3.1): lane bit j is set iff the process has written a
//    value > j; the lane value is the number of leading ones = the highest set
//    lane bit + 1.
//  * binary (snapshot, §3.2): the lane bits are the binary representation of the
//    component value.
//
// Updates are expressed as fetch&add deltas: setting lane bit j adds 2^(j*n+i),
// clearing it subtracts the same amount. Because only the owning process ever
// flips its own lane bits, additions never carry and subtractions never borrow
// across lanes (the flipped bits are known to be 0 resp. 1), so a single
// fetch&add flips exactly the intended bits.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bigint.h"

namespace c2sl::lanes {

/// Global bit position of lane bit `j` of process `i` among `n` processes.
inline uint64_t global_bit(int n, int i, uint64_t j) {
  return j * static_cast<uint64_t>(n) + static_cast<uint64_t>(i);
}

/// Compacts the lane of process `i` out of register value `R`: result bit j ==
/// R bit (j*n + i).
BigInt extract_lane(const BigInt& reg, int n, int i);

/// Inverse of extract_lane: spreads `lane` bits of process `i` over the global
/// positions.
BigInt spread_lane(const BigInt& lane, int n, int i);

/// Unary lane value: highest set lane bit + 1 (0 when the lane is empty).
uint64_t unary_lane_value(const BigInt& reg, int n, int i);

/// Delta that raises process i's unary lane from `old_value` to `new_value`
/// (sets lane bits old_value .. new_value-1). Requires old_value <= new_value.
BigInt unary_raise_delta(int n, int i, uint64_t old_value, uint64_t new_value);

/// Binary lane value as a BigInt.
BigInt binary_lane_value(const BigInt& reg, int n, int i);

/// Signed delta (posAdj - negAdj, §3.2) that rewrites process i's binary lane
/// from `old_value` to `new_value`. Values must be non-negative.
BigInt binary_rewrite_delta(int n, int i, const BigInt& old_value,
                            const BigInt& new_value);

/// All unary lane values of an n-process register, index == process id.
std::vector<uint64_t> all_unary_lanes(const BigInt& reg, int n);

/// All binary lane values of an n-process register, index == process id.
std::vector<BigInt> all_binary_lanes(const BigInt& reg, int n);

}  // namespace c2sl::lanes
