// Deterministic, seedable pseudo-random number generation for schedules and
// workloads. All randomness in the simulator flows through Rng so that every
// execution is reproducible from a single 64-bit seed (required for replaying
// counterexamples found by the checkers).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace c2sl {

/// SplitMix64: tiny, statistically solid, and trivially seedable. Used both as a
/// generator and to derive independent streams (one per process, per test case).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be positive.
  uint64_t next_below(uint64_t bound) {
    C2SL_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias; the loop terminates quickly since
    // at least half the range is accepted.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  int64_t next_in(int64_t lo, int64_t hi) {
    C2SL_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
                    next_below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_unit() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  bool next_bool(double p_true = 0.5) { return next_unit() < p_true; }

  /// Derive an independent stream; mixing the label keeps streams decorrelated.
  Rng fork(uint64_t label) {
    uint64_t s = next_u64() ^ (label * 0xda942042e4dd58b5ULL);
    return Rng(s);
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    C2SL_ASSERT(!v.empty());
    return v[next_below(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace c2sl
