#include "util/value.h"

namespace c2sl {

std::string to_string(const Val& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "()"; }
    std::string operator()(int64_t n) const { return std::to_string(n); }
    std::string operator()(const std::vector<int64_t>& xs) const {
      std::string out = "[";
      for (size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(xs[i]);
      }
      return out + "]";
    }
    std::string operator()(const std::string& s) const { return "\"" + s + "\""; }
  };
  return std::visit(Visitor{}, v);
}

std::string encode_val(const Val& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "u"; }
    std::string operator()(int64_t n) const { return "n:" + std::to_string(n); }
    std::string operator()(const std::vector<int64_t>& xs) const {
      std::string out = "v:";
      for (size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(xs[i]);
      }
      return out;
    }
    std::string operator()(const std::string& s) const {
      return "s:" + std::to_string(s.size()) + ":" + s;
    }
  };
  return std::visit(Visitor{}, v);
}

Val decode_val(std::string_view s) {
  if (s == "u") return Val{std::monostate{}};
  if (s.substr(0, 2) == "n:") {
    return Val{static_cast<int64_t>(std::stoll(std::string(s.substr(2))))};
  }
  if (s.substr(0, 2) == "v:") {
    std::vector<int64_t> xs;
    std::string_view rest = s.substr(2);
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view tok = comma == std::string_view::npos ? rest : rest.substr(0, comma);
      xs.push_back(static_cast<int64_t>(std::stoll(std::string(tok))));
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
    return Val{std::move(xs)};
  }
  if (s.substr(0, 2) == "s:") {
    std::string_view rest = s.substr(2);
    size_t colon = rest.find(':');
    size_t len = static_cast<size_t>(std::stoull(std::string(rest.substr(0, colon))));
    return Val{std::string(rest.substr(colon + 1, len))};
  }
  return Val{std::monostate{}};
}

size_t hash_val(const Val& v) {
  struct Visitor {
    size_t operator()(std::monostate) const { return 0x5bd1e995; }
    size_t operator()(int64_t n) const {
      uint64_t z = static_cast<uint64_t>(n) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
    size_t operator()(const std::vector<int64_t>& xs) const {
      size_t h = 0x9e3779b9;
      for (int64_t x : xs) {
        h ^= (*this)(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
    size_t operator()(const std::string& s) const { return std::hash<std::string>{}(s); }
  };
  return std::visit(Visitor{}, v) ^ (v.index() * 0x94d049bb133111ebULL);
}

}  // namespace c2sl
