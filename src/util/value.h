// A small dynamic value type used at the boundary between implementations and
// the verification tooling: operation arguments, responses, and history events
// all carry Vals. Keeping the set of cases minimal (unit, integer, integer
// vector, string) makes specs and checkers simple to write while covering every
// object in the paper (bits, indices, items, snapshot views, OK/EMPTY markers).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace c2sl {

using Val = std::variant<std::monostate, int64_t, std::vector<int64_t>, std::string>;

/// Human-readable rendering, e.g. "()", "42", "[1, 2, 3]", "\"OK\"".
std::string to_string(const Val& v);

/// Stable hash for memoisation keys in the checkers.
size_t hash_val(const Val& v);

/// Convenience constructors.
inline Val unit() { return Val{std::monostate{}}; }
inline Val num(int64_t v) { return Val{v}; }
inline Val vec(std::vector<int64_t> v) { return Val{std::move(v)}; }
inline Val str(std::string s) { return Val{std::move(s)}; }

inline bool is_unit(const Val& v) { return std::holds_alternative<std::monostate>(v); }
inline int64_t as_num(const Val& v) { return std::get<int64_t>(v); }
inline const std::vector<int64_t>& as_vec(const Val& v) {
  return std::get<std::vector<int64_t>>(v);
}
inline const std::string& as_str(const Val& v) { return std::get<std::string>(v); }

/// Exact, machine-readable round-trip encoding (used for simulated-object state
/// serialisation: world cloning, tree-node hashing and the Lemma 12 collect).
std::string encode_val(const Val& v);
Val decode_val(std::string_view s);

}  // namespace c2sl
