#include "verify/lin_checker.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/assert.h"

namespace c2sl::verify {

namespace {

class Search {
 public:
  Search(const std::vector<sim::OpRecord>& ops, const Spec& spec, const LinOptions& opts)
      : ops_(ops), spec_(spec), opts_(opts) {
    // Only the first 64 ops fit the bitmask; run() refuses longer histories
    // before the mask is ever consulted, so don't shift past the word here.
    for (size_t i = 0; i < ops_.size() && i < 64; ++i) {
      if (ops_[i].complete) complete_mask_ |= uint64_t{1} << i;
    }
  }

  LinResult run() {
    LinResult result;
    if (ops_.size() > 64) {
      result.decided = false;
      result.explanation = "history too large (> 64 operations)";
      return result;
    }
    bool ok = dfs(0, spec_.initial());
    result.decided = visited_.size() < opts_.max_visited;
    result.linearizable = ok;
    if (ok) {
      result.witness = witness_;
    } else {
      result.explanation = "no linearization exists for history:\n" + render_history();
    }
    return result;
  }

 private:
  bool dfs(uint64_t mask, const std::string& state) {
    if ((mask & complete_mask_) == complete_mask_) return true;
    if (visited_.size() >= opts_.max_visited) return false;
    std::string key = state;
    key += '#';
    key += std::to_string(mask);
    if (!visited_.insert(key).second) return false;

    // Minimal-operation rule: op o may be linearized next iff no unlinearized
    // operation completed strictly before o was invoked.
    uint64_t min_resp = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (uint64_t{1} << i)) continue;
      if (ops_[i].complete) min_resp = std::min(min_resp, ops_[i].resp_seq);
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (uint64_t{1} << i)) continue;
      const sim::OpRecord& op = ops_[i];
      if (op.inv_seq > min_resp) continue;  // some unlinearized op precedes it
      Invocation inv{op.name, op.args, op.proc};
      for (const Transition& t : spec_.next(state, inv)) {
        if (op.complete && !(t.resp == op.resp)) continue;
        witness_.emplace_back(op.id, t.resp);
        if (dfs(mask | (uint64_t{1} << i), t.state)) return true;
        witness_.pop_back();
      }
    }
    return false;
  }

  std::string render_history() const {
    std::string out;
    for (const sim::OpRecord& r : ops_) {
      out += "  op" + std::to_string(r.id) + " p" + std::to_string(r.proc) + " " +
             r.name + "(" + c2sl::to_string(r.args) + ")";
      out += r.complete ? " -> " + c2sl::to_string(r.resp) : " (pending)";
      out += " [" + std::to_string(r.inv_seq) + "," +
             (r.complete ? std::to_string(r.resp_seq) : "inf") + "]\n";
    }
    return out;
  }

  const std::vector<sim::OpRecord>& ops_;
  const Spec& spec_;
  const LinOptions& opts_;
  uint64_t complete_mask_ = 0;
  std::unordered_set<std::string> visited_;
  std::vector<std::pair<sim::OpId, Val>> witness_;
};

}  // namespace

LinResult check_linearizability(const std::vector<sim::OpRecord>& ops, const Spec& spec,
                                const LinOptions& opts) {
  Search search(ops, spec, opts);
  return search.run();
}

LinResult check_object_linearizability(const std::vector<sim::OpRecord>& ops,
                                       const std::string& object, const Spec& spec,
                                       const LinOptions& opts) {
  return check_linearizability(filter_object(ops, object), spec, opts);
}

}  // namespace c2sl::verify
