// Linearizability checker (Wing–Gong search with state memoisation).
//
// Given the operation table of one object's history and its sequential spec,
// decides whether a linearization exists: a sequence containing every complete
// operation (with its actual response) and any subset of the pending operations
// (with spec-chosen responses), that respects real-time order and is a valid
// sequential execution of the spec. Pending operations may be linearized —
// this matters, e.g., when a completed Deq returned an item whose Enq is still
// pending.
//
// Complexity is exponential in the worst case; the memoisation key
// (linearized-set bitmask, spec state) keeps realistic histories fast. Both the
// decision and a witness linearization are reported.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "verify/spec.h"

namespace c2sl::verify {

struct LinOptions {
  /// Search-node budget; exceeding it yields decided == false.
  size_t max_visited = 4'000'000;
};

struct LinResult {
  bool linearizable = false;
  bool decided = true;
  /// On success: the linearization as (op id, response) in order.
  std::vector<std::pair<sim::OpId, Val>> witness;
  /// On failure: human-readable explanation with the history embedded.
  std::string explanation;
};

/// Checks the (single-object) operation table `ops` against `spec`.
/// At most 64 operations are supported (bitmask-based memoisation).
LinResult check_linearizability(const std::vector<sim::OpRecord>& ops, const Spec& spec,
                                const LinOptions& opts = {});

/// Convenience: filter `ops` by object name, then check.
LinResult check_object_linearizability(const std::vector<sim::OpRecord>& ops,
                                       const std::string& object, const Spec& spec,
                                       const LinOptions& opts = {});

}  // namespace c2sl::verify
