// Sequential specifications as nondeterministic transition relations.
//
// A Spec describes an object by its initial state and, for every (state,
// invocation) pair, the set of allowed (next-state, response) transitions.
// Nondeterminism is first-class so that relaxed objects — the paper's §5
// k-out-of-order and m-stuttering queues/stacks and the unordered set of §4.3 —
// check under exactly the same machinery as deterministic ones.
//
// States are type-erased as canonical strings: simple to clone, hash and
// memoise, and uniform across the checker implementations. Checker inputs are
// short histories, so the encoding cost is irrelevant next to search cost.
#pragma once

#include <string>
#include <vector>

#include "sim/history.h"
#include "util/value.h"

namespace c2sl::verify {

struct Invocation {
  std::string name;
  Val args;
  sim::ProcId proc = -1;  ///< needed by per-process objects (e.g. snapshot update)
};

struct Transition {
  std::string state;
  Val resp;
};

class Spec {
 public:
  virtual ~Spec() = default;
  virtual std::string name() const = 0;
  virtual std::string initial() const = 0;
  /// All allowed transitions; empty result == invocation not allowed in state.
  virtual std::vector<Transition> next(const std::string& state,
                                       const Invocation& inv) const = 0;
};

/// Operation table from a raw event sequence (same derivation as
/// History::operations, usable on explorer node histories).
std::vector<sim::OpRecord> operations_from_events(const std::vector<sim::Event>& events);

/// Ops on one object only (linearizability is compositional, so checking is
/// done per object).
std::vector<sim::OpRecord> filter_object(const std::vector<sim::OpRecord>& ops,
                                         const std::string& object);

}  // namespace c2sl::verify
