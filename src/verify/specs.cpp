#include "verify/specs.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace c2sl::verify {

namespace {

std::vector<int64_t> parse_list(const std::string& s) {
  std::vector<int64_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  return out;
}

std::string render_list(const std::vector<int64_t>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

const Val kOk = str("OK");
const Val kEmpty = str("EMPTY");

}  // namespace

std::vector<sim::OpRecord> operations_from_events(const std::vector<sim::Event>& events) {
  size_t op_count = 0;
  for (const sim::Event& e : events) {
    if (e.kind == sim::Event::Kind::kInvoke)
      op_count = std::max(op_count, static_cast<size_t>(e.op) + 1);
  }
  std::vector<sim::OpRecord> ops(op_count);
  for (const sim::Event& e : events) {
    switch (e.kind) {
      case sim::Event::Kind::kInvoke: {
        sim::OpRecord& r = ops[static_cast<size_t>(e.op)];
        r.id = e.op;
        r.proc = e.proc;
        r.object = e.object;
        r.name = e.name;
        r.args = e.payload;
        r.inv_seq = e.seq;
        break;
      }
      case sim::Event::Kind::kRespond: {
        sim::OpRecord& r = ops[static_cast<size_t>(e.op)];
        r.complete = true;
        r.resp = e.payload;
        r.resp_seq = e.seq;
        break;
      }
      default:
        break;
    }
  }
  return ops;
}

std::vector<sim::OpRecord> filter_object(const std::vector<sim::OpRecord>& ops,
                                         const std::string& object) {
  std::vector<sim::OpRecord> out;
  for (const sim::OpRecord& r : ops) {
    if (r.object == object) out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------- max register

std::string MaxRegisterSpec::initial() const { return "0"; }

std::vector<Transition> MaxRegisterSpec::next(const std::string& state,
                                              const Invocation& inv) const {
  int64_t cur = std::stoll(state);
  if (inv.name == "WriteMax") {
    int64_t v = as_num(inv.args);
    return {{std::to_string(std::max(cur, v)), unit()}};
  }
  if (inv.name == "ReadMax") {
    return {{state, num(cur)}};
  }
  return {};
}

// -------------------------------------------------------------------- snapshot

std::string SnapshotSpec::initial() const {
  return render_list(std::vector<int64_t>(static_cast<size_t>(n_), 0));
}

std::vector<Transition> SnapshotSpec::next(const std::string& state,
                                           const Invocation& inv) const {
  std::vector<int64_t> view = parse_list(state);
  C2SL_ASSERT(static_cast<int>(view.size()) == n_);
  if (inv.name == "Update") {
    C2SL_ASSERT(inv.proc >= 0 && inv.proc < n_);
    view[static_cast<size_t>(inv.proc)] = as_num(inv.args);
    return {{render_list(view), unit()}};
  }
  if (inv.name == "Scan") {
    return {{state, vec(view)}};
  }
  return {};
}

// -------------------------------------------------------------- keyed snapshot

std::string KeyedSnapshotSpec::initial() const {
  return render_list(std::vector<int64_t>(static_cast<size_t>(2 * shards_), 0));
}

std::vector<Transition> KeyedSnapshotSpec::next(const std::string& state,
                                                const Invocation& inv) const {
  std::vector<int64_t> view = parse_list(state);
  C2SL_ASSERT(static_cast<int>(view.size()) == 2 * shards_);
  if (inv.name == "Inc") {
    int64_t s = as_num(inv.args);
    C2SL_ASSERT(s >= 0 && s < shards_);
    view[static_cast<size_t>(s)] += 1;
    return {{render_list(view), unit()}};
  }
  if (inv.name == "WriteMax") {
    int64_t p = as_num(inv.args);
    size_t s = static_cast<size_t>(p & 7);
    C2SL_ASSERT(static_cast<int>(s) < shards_);
    size_t slot = static_cast<size_t>(shards_) + s;
    view[slot] = std::max(view[slot], p >> 3);
    return {{render_list(view), unit()}};
  }
  if (inv.name == "Xfer") {
    int64_t p = as_num(inv.args);
    size_t from = static_cast<size_t>(p & 7);
    size_t to = static_cast<size_t>((p >> 3) & 7);
    C2SL_ASSERT(static_cast<int>(from) < shards_ && static_cast<int>(to) < shards_);
    view[from] -= p >> 6;
    view[to] += p >> 6;  // one transition: debit and credit are inseparable
    return {{render_list(view), unit()}};
  }
  if (inv.name == "Snap") {
    return {{state, vec(view)}};
  }
  return {};
}

// --------------------------------------------------------------------- counter

std::string CounterSpec::initial() const { return "0"; }

std::vector<Transition> CounterSpec::next(const std::string& state,
                                          const Invocation& inv) const {
  int64_t cur = std::stoll(state);
  if (inv.name == "Inc") return {{std::to_string(cur + 1), unit()}};
  if (inv.name == "Add") return {{std::to_string(cur + as_num(inv.args)), unit()}};
  if (inv.name == "Read") return {{state, num(cur)}};
  return {};
}

// --------------------------------------------------------------- logical clock

std::string LogicalClockSpec::initial() const { return "0"; }

std::vector<Transition> LogicalClockSpec::next(const std::string& state,
                                               const Invocation& inv) const {
  int64_t cur = std::stoll(state);
  if (inv.name == "Join") {
    return {{std::to_string(std::max(cur, as_num(inv.args))), unit()}};
  }
  if (inv.name == "Observe") {
    return {{state, num(cur)}};
  }
  return {};
}

// ------------------------------------------------------------------- union set

std::string UnionSetSpec::initial() const { return ""; }

std::vector<Transition> UnionSetSpec::next(const std::string& state,
                                           const Invocation& inv) const {
  std::vector<int64_t> items = parse_list(state);
  if (inv.name == "Insert") {
    int64_t x = as_num(inv.args);
    if (std::find(items.begin(), items.end(), x) == items.end()) {
      items.push_back(x);
      std::sort(items.begin(), items.end());
    }
    return {{render_list(items), unit()}};
  }
  if (inv.name == "Has") {
    int64_t x = as_num(inv.args);
    bool has = std::find(items.begin(), items.end(), x) != items.end();
    return {{state, num(has ? 1 : 0)}};
  }
  return {};
}

// -------------------------------------------------------------------- test&set

std::string TasSpec::initial() const { return "0"; }

std::vector<Transition> TasSpec::next(const std::string& state,
                                      const Invocation& inv) const {
  if (inv.name == "TAS") {
    return {{"1", num(state == "1" ? 1 : 0)}};
  }
  if (inv.name == "Read") {
    return {{state, num(state == "1" ? 1 : 0)}};
  }
  if (multi_shot_ && inv.name == "Reset") {
    return {{"0", unit()}};
  }
  return {};
}

// --------------------------------------------------------------- fetch&increment

std::string FaiSpec::initial() const { return "0"; }

std::vector<Transition> FaiSpec::next(const std::string& state,
                                      const Invocation& inv) const {
  int64_t cur = std::stoll(state);
  if (inv.name == "FAI") return {{std::to_string(cur + 1), num(cur)}};
  if (inv.name == "Read") return {{state, num(cur)}};
  return {};
}

// ------------------------------------------------------------------- set (§4.3)

std::string SetSpec::initial() const { return ""; }

std::vector<Transition> SetSpec::next(const std::string& state,
                                      const Invocation& inv) const {
  std::vector<int64_t> items = parse_list(state);
  if (inv.name == "Put") {
    int64_t x = as_num(inv.args);
    if (std::find(items.begin(), items.end(), x) == items.end()) {
      items.push_back(x);
      std::sort(items.begin(), items.end());
    }
    return {{render_list(items), kOk}};
  }
  if (inv.name == "Take") {
    if (items.empty()) return {{state, kEmpty}};
    std::vector<Transition> out;
    for (size_t i = 0; i < items.size(); ++i) {
      std::vector<int64_t> rest = items;
      int64_t x = rest[i];
      rest.erase(rest.begin() + static_cast<ptrdiff_t>(i));
      out.push_back({render_list(rest), num(x)});
    }
    return out;
  }
  return {};
}

// --------------------------------------------------------------- lane registry

std::string LaneRegistrySpec::initial() const { return ""; }

std::vector<Transition> LaneRegistrySpec::next(const std::string& state,
                                               const Invocation& inv) const {
  std::vector<int64_t> held = parse_list(state);
  if (inv.name == "Acquire") {
    std::vector<Transition> out;
    for (int64_t l = 0; l < max_lanes_; ++l) {
      if (std::find(held.begin(), held.end(), l) == held.end()) {
        std::vector<int64_t> now = held;
        now.push_back(l);
        std::sort(now.begin(), now.end());
        out.push_back({render_list(now), num(l)});
      }
    }
    if (static_cast<int64_t>(held.size()) == max_lanes_) {
      out.push_back({state, num(-1)});  // every lane held: "none free" allowed
    }
    return out;
  }
  if (inv.name == "Release") {
    int64_t l = as_num(inv.args);
    auto it = std::find(held.begin(), held.end(), l);
    if (it == held.end()) return {};  // releasing an unheld lane is illegal
    held.erase(it);
    return {{render_list(held), unit()}};
  }
  return {};
}

// ----------------------------------------------------------------------- queue

std::string QueueSpec::initial() const { return ""; }

std::vector<Transition> QueueSpec::next(const std::string& state,
                                        const Invocation& inv) const {
  std::vector<int64_t> items = parse_list(state);
  if (inv.name == "Enq") {
    items.push_back(as_num(inv.args));
    return {{render_list(items), kOk}};
  }
  if (inv.name == "Deq") {
    if (items.empty()) return {{state, kEmpty}};
    std::vector<Transition> out;
    size_t window = std::min<size_t>(items.size(), static_cast<size_t>(k_));
    for (size_t i = 0; i < window; ++i) {
      std::vector<int64_t> rest = items;
      int64_t x = rest[i];
      rest.erase(rest.begin() + static_cast<ptrdiff_t>(i));
      out.push_back({render_list(rest), num(x)});
    }
    return out;
  }
  return {};
}

// ----------------------------------------------------------------------- stack

std::string StackSpec::initial() const { return ""; }

std::vector<Transition> StackSpec::next(const std::string& state,
                                        const Invocation& inv) const {
  std::vector<int64_t> items = parse_list(state);  // back == top
  if (inv.name == "Push") {
    items.push_back(as_num(inv.args));
    return {{render_list(items), kOk}};
  }
  if (inv.name == "Pop") {
    if (items.empty()) return {{state, kEmpty}};
    int64_t x = items.back();
    items.pop_back();
    return {{render_list(items), num(x)}};
  }
  return {};
}

// ----------------------------------------------------- m-stuttering queue (§5)

// State encoding: "<enq_stutters>:<deq_stutters>:<items>". A counter tracks how
// many consecutive stutters of that operation type have happened; an operation
// may stutter only while its counter is < m, and taking effect resets it
// ("at least one out of m+1 consecutive operations of the same type is
// guaranteed to have effect").

std::string StutteringQueueSpec::initial() const { return "0:0:"; }

std::vector<Transition> StutteringQueueSpec::next(const std::string& state,
                                                  const Invocation& inv) const {
  size_t c1 = state.find(':');
  size_t c2 = state.find(':', c1 + 1);
  int ec = std::stoi(state.substr(0, c1));
  int dc = std::stoi(state.substr(c1 + 1, c2 - c1 - 1));
  std::vector<int64_t> items = parse_list(state.substr(c2 + 1));
  auto render = [](int e, int d, const std::vector<int64_t>& xs) {
    return std::to_string(e) + ":" + std::to_string(d) + ":" + render_list(xs);
  };
  if (inv.name == "Enq") {
    std::vector<Transition> out;
    std::vector<int64_t> pushed = items;
    pushed.push_back(as_num(inv.args));
    out.push_back({render(0, dc, pushed), kOk});  // takes effect
    if (ec < m_) out.push_back({render(ec + 1, dc, items), kOk});  // stutters
    return out;
  }
  if (inv.name == "Deq") {
    if (items.empty()) return {{state, kEmpty}};
    std::vector<Transition> out;
    std::vector<int64_t> rest(items.begin() + 1, items.end());
    out.push_back({render(ec, 0, rest), num(items.front())});  // takes effect
    if (dc < m_) out.push_back({render(ec, dc + 1, items), num(items.front())});
    return out;
  }
  return {};
}

}  // namespace c2sl::verify
