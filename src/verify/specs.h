// Sequential specifications for every object the paper discusses.
//
// Operation-name conventions used across the library (implementations must
// record exactly these names for the checkers to apply):
//   max register:  WriteMax(v) -> ()            ReadMax() -> v
//   snapshot:      Update(v) -> ()              Scan() -> [v_0..v_{n-1}]
//   counter:       Inc() -> ()   Add(k) -> ()   Read() -> v
//   union set:     Insert(x) -> ()              Has(x) -> 0/1
//   test&set:      TAS() -> 0/1                 Read() -> 0/1    Reset() -> ()
//   fetch&inc:     FAI() -> v                   Read() -> v
//   set (§4.3):    Put(x) -> "OK"               Take() -> x | "EMPTY"
//   queue:         Enq(x) -> "OK"               Deq() -> x | "EMPTY"
//   stack:         Push(x) -> "OK"              Pop() -> x | "EMPTY"
#pragma once

#include <memory>

#include "verify/spec.h"

namespace c2sl::verify {

class MaxRegisterSpec : public Spec {
 public:
  std::string name() const override { return "max_register"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// n-component single-writer snapshot; component i belongs to process i.
class SnapshotSpec : public Spec {
 public:
  explicit SnapshotSpec(int n) : n_(n) {}
  std::string name() const override { return "snapshot"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  int n_;
};

/// Multi-key snapshot over `shards` counter slots and `shards` max slots —
/// the sequential spec behind C2Session::snapshot (sim twin:
/// svc::SimKeyedSnapshot). State: the 2*shards vector
/// [ctr_0..ctr_{s-1}, max_0..max_{s-1}]. Args are packed ints (3 bits per
/// shard index, so shards <= 8):
///   Inc(s) -> ()                    ctr_s += 1
///   WriteMax(s | v<<3) -> ()        max_s = max(max_s, v)
///   Xfer(from | to<<3 | d<<6) -> () ctr_from -= d; ctr_to += d  (atomic!)
///   Snap() -> [ctr.., max..]        the whole vector, one instant
/// Xfer moving both cells in ONE transition is the conservation contract a
/// torn implementation cannot meet — the checker refutes any snapshot that
/// can observe the debit without the credit.
class KeyedSnapshotSpec : public Spec {
 public:
  explicit KeyedSnapshotSpec(int shards) : shards_(shards) {}
  std::string name() const override { return "keyed_snapshot"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  int shards_;
};

class CounterSpec : public Spec {
 public:
  std::string name() const override { return "counter"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// Logical clock in the Aspnes–Herlihy simple-type sense: Join(v) advances the
/// clock to max(clock, v); Observe() reads it. (A Lamport tick is the
/// non-atomic composition Join(Observe() + 1).)
class LogicalClockSpec : public Spec {
 public:
  std::string name() const override { return "logical_clock"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

class UnionSetSpec : public Spec {
 public:
  std::string name() const override { return "union_set"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// Readable (optionally multi-shot) test&set: TAS, Read, and — when
/// `multi_shot` — Reset.
class TasSpec : public Spec {
 public:
  explicit TasSpec(bool multi_shot = false) : multi_shot_(multi_shot) {}
  std::string name() const override { return multi_shot_ ? "multishot_tas" : "tas"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  bool multi_shot_;
};

class FaiSpec : public Spec {
 public:
  std::string name() const override { return "fetch_inc"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// Unordered set of §4.3: Take removes and returns an arbitrary element
/// (nondeterministic), or returns "EMPTY".
class SetSpec : public Spec {
 public:
  std::string name() const override { return "set"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// Bounded lane registry (service/lane_registry.h): Acquire() hands out a
/// lane in [0, max_lanes) that no one currently holds — any free lane, so the
/// fresh-ticket/recycled distinction stays an implementation detail — or -1,
/// allowed ONLY when every lane is held; Release(l) requires l held. State:
/// the sorted list of held lanes.
class LaneRegistrySpec : public Spec {
 public:
  explicit LaneRegistrySpec(int max_lanes) : max_lanes_(max_lanes) {}
  std::string name() const override { return "lane_registry"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  int max_lanes_;
};

/// FIFO queue; `k_out_of_order > 1` relaxes Deq to return one of the k oldest
/// items (§5, k-out-of-order queues; k == 1 is the exact queue).
class QueueSpec : public Spec {
 public:
  explicit QueueSpec(int k_out_of_order = 1) : k_(k_out_of_order) {}
  std::string name() const override {
    return k_ == 1 ? "queue" : std::to_string(k_) + "-ooo-queue";
  }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  int k_;
};

class StackSpec : public Spec {
 public:
  std::string name() const override { return "stack"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;
};

/// m-stuttering queue (§5): an operation may have no effect up to m consecutive
/// times per operation type; a stuttering Deq returns the oldest item without
/// removing it, a stuttering Enq returns OK without enqueueing.
class StutteringQueueSpec : public Spec {
 public:
  explicit StutteringQueueSpec(int m) : m_(m) {}
  std::string name() const override { return std::to_string(m_) + "-stuttering-queue"; }
  std::string initial() const override;
  std::vector<Transition> next(const std::string& state,
                               const Invocation& inv) const override;

 private:
  int m_;
};

}  // namespace c2sl::verify
