#include "verify/strong_lin.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.h"

namespace c2sl::verify {

namespace {

/// A linearization under construction: ordered (op, response) pairs plus the
/// spec state reached after applying them.
struct Lin {
  std::vector<std::pair<sim::OpId, Val>> seq;
  std::string state;

  bool contains(sim::OpId id) const {
    for (const auto& [op, resp] : seq) {
      if (op == id) return true;
    }
    return false;
  }

  std::string key() const {
    std::string out = state;
    out += '|';
    for (const auto& [op, resp] : seq) {
      out += std::to_string(op);
      out += '=';
      out += encode_val(resp);
      out += ';';
    }
    return out;
  }

  std::string render() const {
    std::string out = "[";
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i != 0) out += ", ";
      out += "op" + std::to_string(seq[i].first) + "->" + c2sl::to_string(seq[i].second);
    }
    return out + "]";
  }
};

class Checker {
 public:
  Checker(const sim::ExecTree& tree, const Spec& spec, const StrongLinOptions& opts)
      : tree_(tree), spec_(spec), opts_(opts) {
    // Per-node operation tables, filtered to the object under scrutiny.
    ops_at_.reserve(tree_.nodes.size());
    for (size_t v = 0; v < tree_.nodes.size(); ++v) {
      std::vector<sim::OpRecord> ops =
          operations_from_events(tree_.history_at(static_cast<int>(v)));
      if (!opts_.object.empty()) {
        // Keep ids stable: blank out foreign-object ops instead of compacting.
        for (sim::OpRecord& r : ops) {
          if (r.object != opts_.object) r.id = -1;
        }
      }
      ops_at_.push_back(std::move(ops));
    }
  }

  StrongLinResult run() {
    StrongLinResult result;
    Lin root_lin;
    root_lin.state = spec_.initial();
    bool ok = extend_and_solve(0, root_lin);
    result.decided = budget_ > 0;
    result.strongly_linearizable = ok && result.decided;
    if (!ok && result.decided) {
      result.witness_node = deepest_fail_;
      result.report = render_failure();
    }
    return result;
  }

 private:
  /// Operations of node v that the checker tracks (object-filtered).
  std::vector<const sim::OpRecord*> tracked_ops(int v) const {
    std::vector<const sim::OpRecord*> out;
    for (const sim::OpRecord& r : ops_at_[static_cast<size_t>(v)]) {
      if (r.id >= 0) out.push_back(&r);
    }
    return out;
  }

  /// Entry point per node: find an extension of `base` (the parent's
  /// linearization, or the empty one at the root) into a valid linearization
  /// of v's history whose subtree also solves; `base` itself may already be a
  /// candidate when all of v's complete ops are covered.
  bool extend_and_solve(int v, const Lin& base) {
    if (budget_ == 0) return false;
    std::string memo_key = std::to_string(v) + '@' + base.key();
    if (failed_.count(memo_key)) return false;
    bool ok = ext_dfs(v, base);
    if (!ok) {
      failed_.insert(memo_key);
      note_failure(v, base);
    }
    return ok;
  }

  /// Backtracking search over ways to append operations of node v to `lin`.
  bool ext_dfs(int v, const Lin& lin) {
    if (budget_ == 0) return false;
    --budget_;
    const auto ops = tracked_ops(v);

    // Response consistency: an op linearized earlier (while pending) must have
    // been given the response it actually returned by now.
    for (const auto& [op, resp] : lin.seq) {
      const sim::OpRecord* rec = find_op(ops, op);
      if (rec != nullptr && rec->complete && !(rec->resp == resp)) return false;
    }

    bool all_complete_in = true;
    for (const sim::OpRecord* r : ops) {
      if (r->complete && !lin.contains(r->id)) {
        all_complete_in = false;
        break;
      }
    }
    if (all_complete_in && solve_children(v, lin)) return true;

    // Try appending one more eligible operation. Minimal-op rule relative to
    // the FULL history of v: an op is appendable only if every op that
    // real-time-precedes it is already linearized.
    uint64_t min_resp = std::numeric_limits<uint64_t>::max();
    for (const sim::OpRecord* r : ops) {
      if (r->complete && !lin.contains(r->id)) min_resp = std::min(min_resp, r->resp_seq);
    }
    for (const sim::OpRecord* r : ops) {
      if (lin.contains(r->id)) continue;
      if (r->inv_seq > min_resp) continue;
      Invocation inv{r->name, r->args, r->proc};
      for (const Transition& t : spec_.next(lin.state, inv)) {
        if (r->complete && !(t.resp == r->resp)) continue;
        Lin next = lin;
        next.seq.emplace_back(r->id, t.resp);
        next.state = t.state;
        if (ext_dfs(v, next)) return true;
      }
    }
    return false;
  }

  bool solve_children(int v, const Lin& lin) {
    const sim::ExecNode& node = tree_.nodes[static_cast<size_t>(v)];
    for (int child : node.children) {
      if (!extend_and_solve(child, lin)) return false;
    }
    return true;
  }

  static const sim::OpRecord* find_op(const std::vector<const sim::OpRecord*>& ops,
                                      sim::OpId id) {
    for (const sim::OpRecord* r : ops) {
      if (r->id == id) return r;
    }
    return nullptr;
  }

  void note_failure(int v, const Lin& lin) {
    int depth = tree_.nodes[static_cast<size_t>(v)].depth;
    if (depth >= deepest_fail_depth_) {
      deepest_fail_depth_ = depth;
      deepest_fail_ = v;
      deepest_fail_lin_ = lin.render();
    }
  }

  std::string render_failure() const {
    if (deepest_fail_ < 0) return "no prefix-closed linearization function exists";
    std::string out =
        "no prefix-closed linearization function exists.\n"
        "Deepest conflicting node: " +
        std::to_string(deepest_fail_) + " (depth " + std::to_string(deepest_fail_depth_) +
        ")\nParent linearization that could not be extended: " + deepest_fail_lin_ +
        "\nHistory at that node:\n";
    for (const sim::Event& e : tree_.history_at(deepest_fail_)) {
      out += "  " + sim::to_string(e) + "\n";
    }
    return out;
  }

  const sim::ExecTree& tree_;
  const Spec& spec_;
  const StrongLinOptions& opts_;
  std::vector<std::vector<sim::OpRecord>> ops_at_;
  std::unordered_set<std::string> failed_;
  size_t budget_ = 0;

  int deepest_fail_ = -1;
  int deepest_fail_depth_ = -1;
  std::string deepest_fail_lin_;

 public:
  void set_budget(size_t b) { budget_ = b; }
};

}  // namespace

StrongLinResult check_strong_linearizability(const sim::ExecTree& tree, const Spec& spec,
                                             const StrongLinOptions& opts) {
  Checker checker(tree, spec, opts);
  checker.set_budget(opts.max_search_nodes);
  return checker.run();
}

}  // namespace c2sl::verify
