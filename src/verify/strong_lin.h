// Bounded model checker for STRONG linearizability (Golab–Higham–Woelfel).
//
// Definition (paper §2): an implementation is strongly linearizable if there is
// a function L mapping each execution to a linearization such that L is
// prefix-closed: if α is a prefix of β then L(α) is a prefix of L(β).
//
// Over a bounded execution tree (sim/explorer.h) this is decidable exactly:
// assign to every node v a linearization L(v) of v's history such that along
// every edge the parent's assignment is a prefix of the child's. The checker
// searches for such an assignment with backtracking; failure is memoised per
// (node, assignment) pair.
//
//  * If the whole tree is explored (no truncation) and no assignment exists,
//    the implementation is NOT strongly linearizable, and the checker reports a
//    witness: a node whose every valid linearization fails in some extension.
//    This is how the library mechanically refutes strong linearizability of the
//    Herlihy–Wing queue and of the AADGMS snapshot (§1, §5 discussion).
//  * If an assignment exists, the implementation is strongly linearizable on
//    the explored tree — bounded evidence for the paper's positive theorems
//    (1, 2, 5, 6, 9, 10).
//
// Caveat recorded in DESIGN.md: a truncated tree makes the positive verdict
// weaker (prefix-closure holds only as far as explored), while the negative
// verdict is always sound (a conflict in a subtree is a conflict in the whole
// tree — linearizations must already diverge there).
#pragma once

#include <string>

#include "sim/explorer.h"
#include "verify/spec.h"

namespace c2sl::verify {

struct StrongLinOptions {
  /// Backtracking-node budget; exceeding it yields decided == false.
  size_t max_search_nodes = 8'000'000;
  /// Check ops on this object only ("" == all ops in the history).
  std::string object;
};

struct StrongLinResult {
  bool strongly_linearizable = false;
  bool decided = true;
  /// Failure diagnostics: deepest node where every candidate assignment died.
  int witness_node = -1;
  std::string report;
};

StrongLinResult check_strong_linearizability(const sim::ExecTree& tree, const Spec& spec,
                                             const StrongLinOptions& opts = {});

}  // namespace c2sl::verify
