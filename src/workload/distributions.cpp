#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "service/shard_router.h"
#include "util/assert.h"

namespace c2sl::wl {

UniformKeys::UniformKeys(uint64_t key_space) : space_(key_space) {
  C2SL_CHECK(key_space > 0, "key space must be non-empty");
}

uint64_t UniformKeys::next(Rng& rng, uint64_t) const { return rng.next_below(space_); }

ZipfianKeys::ZipfianKeys(uint64_t key_space, double theta, bool scramble)
    : space_(key_space), scramble_(scramble) {
  C2SL_CHECK(key_space > 0, "key space must be non-empty");
  C2SL_CHECK(key_space <= (uint64_t{1} << 24),
             "zipfian CDF table capped at 2^24 entries");
  C2SL_CHECK(theta > 0.0, "zipf theta must be positive");
  cdf_.resize(space_);
  // Kahan-compensated prefix sums: the harmonic terms arrive largest-first,
  // so by the tail the naive running sum is ~7 orders of magnitude above the
  // terms being added and plain accumulation rounds most of each tail term
  // away — at 2^24 keys with theta near 1 the adjacent-CDF differences (the
  // per-rank masses) degrade to a couple of float ulps. Carrying the
  // compensation keeps every stored partial exact to ~1 ulp, which makes the
  // tail masses accurate AND makes the final entry hit 1.0 exactly after
  // normalisation (cdf_[space-1] == sum by construction) — no back()=1.0
  // papering required. Mass conservation and tail accuracy are pinned in
  // tests/workload_test.cpp.
  double sum = 0.0;
  double comp = 0.0;
  for (uint64_t r = 0; r < space_; ++r) {
    double term = 1.0 / std::pow(static_cast<double>(r + 1), theta);
    double y = term - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
    cdf_[r] = sum;
  }
  for (uint64_t r = 0; r < space_; ++r) cdf_[r] /= sum;
}

double ZipfianKeys::mass(uint64_t rank) const {
  C2SL_CHECK(rank < space_, "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

uint64_t ZipfianKeys::next(Rng& rng, uint64_t) const {
  double u = rng.next_unit();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  uint64_t rank =
      it == cdf_.end() ? space_ - 1 : static_cast<uint64_t>(it - cdf_.begin());
  // YCSB-style scatter: hash the rank onto the keyspace so the hot ranks land
  // on unrelated shards (collisions merge ranks, which only flattens the tail).
  return scramble_ ? svc::mix64(rank) % space_ : rank;
}

HotKeyBurstKeys::HotKeyBurstKeys(uint64_t key_space, uint64_t hot_set_size,
                                 double hot_prob, uint64_t period)
    : space_(key_space), hot_set_(hot_set_size), hot_prob_(hot_prob), period_(period) {
  C2SL_CHECK(key_space > 0, "key space must be non-empty");
  C2SL_CHECK(hot_set_size > 0 && hot_set_size <= key_space,
             "hot set must be a non-empty subset of the keyspace");
  C2SL_CHECK(period > 0, "burst period must be positive");
}

uint64_t HotKeyBurstKeys::next(Rng& rng, uint64_t op_index) const {
  if (in_hot_phase(op_index) && rng.next_bool(hot_prob_)) {
    return rng.next_below(hot_set_);
  }
  return rng.next_below(space_);
}

std::unique_ptr<KeyDist> make_dist(const std::string& name, uint64_t key_space,
                                   double zipf_theta) {
  if (name == "uniform") return std::make_unique<UniformKeys>(key_space);
  if (name == "zipfian") return std::make_unique<ZipfianKeys>(key_space, zipf_theta);
  if (name == "hotburst") {
    uint64_t hot = std::max<uint64_t>(1, key_space / 64);
    return std::make_unique<HotKeyBurstKeys>(key_space, hot, 0.8, 1000);
  }
  C2SL_CHECK(false, "unknown key distribution: " + name);
  return nullptr;
}

}  // namespace c2sl::wl
