// Pluggable key distributions for the workload engine.
//
// A KeyDist draws keys in [0, key_space) from a caller-owned Rng, so the same
// distribution object can be shared (it is immutable after construction) while
// each worker thread keeps its own deterministic stream. The op index is
// passed in so phase-dependent distributions (hot-key bursts) stay a pure
// function of (rng stream, op index) — reproducible from the seed alone.
//
//   * UniformKeys      — uniform over the keyspace.
//   * ZipfianKeys      — Zipf(theta) by inverse-CDF over a precomputed table;
//                        ranks are optionally scattered across the keyspace
//                        YCSB-style (hash of the rank) so that hot keys do not
//                        cluster in one shard.
//   * HotKeyBurstKeys  — alternates hot and cold phases every `period` ops; in
//                        a hot phase, with probability `hot_prob` the key is
//                        drawn from a small hot set.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace c2sl::wl {

class KeyDist {
 public:
  virtual ~KeyDist() = default;
  virtual uint64_t next(Rng& rng, uint64_t op_index) const = 0;
  virtual std::string name() const = 0;
};

class UniformKeys : public KeyDist {
 public:
  explicit UniformKeys(uint64_t key_space);
  uint64_t next(Rng& rng, uint64_t op_index) const override;
  std::string name() const override { return "uniform"; }

 private:
  uint64_t space_;
};

class ZipfianKeys : public KeyDist {
 public:
  ZipfianKeys(uint64_t key_space, double theta, bool scramble = true);
  uint64_t next(Rng& rng, uint64_t op_index) const override;
  std::string name() const override { return "zipfian"; }

  /// Rank r's probability mass (for tests); rank 0 is the hottest.
  double mass(uint64_t rank) const;

 private:
  uint64_t space_;
  bool scramble_;
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r); back() == 1.0
};

class HotKeyBurstKeys : public KeyDist {
 public:
  HotKeyBurstKeys(uint64_t key_space, uint64_t hot_set_size, double hot_prob,
                  uint64_t period);
  uint64_t next(Rng& rng, uint64_t op_index) const override;
  std::string name() const override { return "hotburst"; }

  bool in_hot_phase(uint64_t op_index) const { return (op_index / period_) % 2 == 0; }
  uint64_t hot_set_size() const { return hot_set_; }

 private:
  uint64_t space_;
  uint64_t hot_set_;
  double hot_prob_;
  uint64_t period_;
};

/// Factory by name: "uniform" | "zipfian" | "hotburst".
std::unique_ptr<KeyDist> make_dist(const std::string& name, uint64_t key_space,
                                   double zipf_theta = 0.99);

}  // namespace c2sl::wl
