#include "workload/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace c2sl::wl {

namespace {

/// Clamp the store config so this workload cannot violate a construction
/// precondition. Only the 63-bit lane-packing budgets remain — counters, sets
/// and lane recycling grow without bound on the segmented arrays, so there is
/// no per-shard capacity left to size for the worst-case key skew.
svc::C2StoreConfig clamp_store(const WorkloadConfig& cfg) {
  svc::C2StoreConfig s = cfg.store;
  // session_churn keeps the configured lane count AS GIVEN — fewer lanes than
  // worker threads is the scenario (blocking opens bound the concurrent
  // sessions to the lane count, so the packing budgets below still hold).
  // Every other mix opens one session per worker up front and therefore
  // needs a lane per thread.
  if (cfg.mix.name != "session_churn") {
    s.max_threads = std::max(s.max_threads, cfg.threads);
  }
  C2SL_CHECK(s.max_threads <= 31, "engine supports at most 31 lanes");
  s.max_value = std::min<int64_t>(s.max_value, 63 / s.max_threads);
  s.tas_max_resets = std::min<int64_t>(s.tas_max_resets, 63 / s.max_threads - 1);
  return s;
}

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg) {
  C2SL_CHECK(cfg.threads >= 1, "need at least one worker thread");
  const bool cached = cfg.bind == "cached";
  C2SL_CHECK(cached || cfg.bind == "per_op",
             "bind mode must be \"cached\" or \"per_op\"");
  const bool string_keys = cfg.keys == "string";
  C2SL_CHECK(string_keys || cfg.keys == "int",
             "key shape must be \"int\" or \"string\"");
  const bool sum_scan = cfg.sum_impl == "scan";
  C2SL_CHECK(sum_scan || cfg.sum_impl == "digest",
             "sum impl must be \"digest\" or \"scan\"");
  const bool snap_loop = cfg.snap_impl == "loop";
  C2SL_CHECK(snap_loop || cfg.snap_impl == "digest",
             "snap impl must be \"digest\" or \"loop\"");
  const bool audit = cfg.mix.name == "transfer_audit";
  C2SL_CHECK(!(audit && snap_loop),
             "transfer_audit requires snap_impl=digest: the per-key loop "
             "cannot conserve the transferred sum under concurrency");
  const bool churn = cfg.mix.name == "session_churn";
  const bool resizing = cfg.resize_every > 0;
  const bool rebuild = cfg.resize_impl == "rebuild";
  C2SL_CHECK(rebuild || cfg.resize_impl == "inplace",
             "resize impl must be \"inplace\" or \"rebuild\"");
  C2SL_CHECK(!(resizing && churn),
             "resize_every needs a stable resizer session; the session_churn "
             "mix reopens sessions every op");
  C2SL_CHECK(!(resizing && sum_scan),
             "resize_every requires sum_impl=digest: post-resize slot scans "
             "over-approximate (migration replays duplicate state), only the "
             "epoch-independent digest stays exact");
  const bool acquire_block = cfg.acquire == "block";
  C2SL_CHECK(acquire_block || cfg.acquire == "try",
             "acquire mode must be \"block\" or \"try\"");
  C2SL_CHECK((!cached && !string_keys) || cfg.key_space <= (uint64_t{1} << 20),
             "cached refs / string keys are pre-built per key; key_space too large");
  WorkloadResult result;
  result.cfg = cfg;
  result.cfg.store = clamp_store(cfg);

  svc::C2Store store(result.cfg.store);
  std::unique_ptr<KeyDist> dist = make_dist(cfg.dist, cfg.key_space, cfg.zipf_theta);

  // Snapshot/transfer key set: one representative integer key per shard.
  // Keys collapse to shards, so these cover the whole aggregate state — and
  // auditing exactly one key per shard is what makes the transfer
  // conservation sum exact (two keys on one shard would double-count it).
  std::vector<uint64_t> snap_keys;
  std::vector<svc::SnapKey> snap_slots;
  {
    std::vector<bool> covered(static_cast<size_t>(store.shard_count()), false);
    int remaining = store.shard_count();
    for (uint64_t k = 0; remaining > 0; ++k) {
      int s = store.shard_of(k);
      if (!covered[static_cast<size_t>(s)]) {
        covered[static_cast<size_t>(s)] = true;
        snap_keys.push_back(k);
        --remaining;
      }
    }
    snap_slots.reserve(snap_keys.size());
    for (uint64_t k : snap_keys) snap_slots.push_back(svc::SnapKey::counter(k));
  }

  const int threads = cfg.threads;
  const uint64_t ops = cfg.ops_per_thread;
  // String-key shape: the key STRINGS exist up front in both bind modes (apps
  // hold their key names either way); only the per-op ROUTING cost differs
  // between the modes. Shared read-only across workers — names depend only on
  // the key space, and building key_space strings per thread would not.
  std::vector<std::string> names;
  if (string_keys) {
    names.reserve(cfg.key_space);
    for (uint64_t k = 0; k < cfg.key_space; ++k) {
      names.push_back("user:" + std::to_string(1000000 + k) + "/profile");
    }
  }
  std::vector<std::vector<int64_t>> lat(static_cast<size_t>(threads));
  std::vector<std::vector<uint64_t>> counts(
      static_cast<size_t>(threads), std::vector<uint64_t>(kOpKindCount, 0));
  std::atomic<int> start_gate{0};
  // Resize machinery. In-place resizes need none of this — C2Session::resize
  // runs concurrently with data ops by design. The rebuild arm is the
  // stop-the-world ablation baseline: every data op holds the reader side of
  // this lock, the resizer takes the writer side (which drains in-flight ops
  // and blocks new ones) and only then resizes. The lock is the whole point
  // of the arm — its per-op tax and its stall are what the CI gate charges
  // the rebuild strategy for.
  const bool locked_ops = resizing && rebuild;
  std::shared_mutex resize_mu;
  int64_t resizes_done = 0;  // written by worker 0 only; read after join
  // Workers timestamp their own timed region (after the barrier, after setup
  // like session open and ref pre-binding): wall time is max(end)-min(start),
  // so neither setup cost nor main-thread scheduling skews throughput.
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> t_start(static_cast<size_t>(threads));
  std::vector<Clock::time_point> t_end(static_cast<size_t>(threads));

  // `wid` is the worker index (deterministic seeds, sole-resetter election);
  // the session's lane is an internal detail the registry hands out.
  auto worker = [&](int wid) {
    Rng rng(cfg.seed * 1000003 + static_cast<uint64_t>(wid));
    auto& my_lat = lat[static_cast<size_t>(wid)];
    auto& my_counts = counts[static_cast<size_t>(wid)];
    my_lat.reserve(ops);
    if (churn) {
      // Session-churn mode: every op is a full open -> use -> close cycle
      // against a store whose lane count was NOT raised to the thread count,
      // so opens contend for real. The recorded latency is the OPEN latency
      // alone — exactly what the blocking-vs-try ablation measures; the one
      // counter op inside the session keeps the cycle honest (a lane is
      // actually used) without drowning the metric.
      // c2sl-atomic: faa seq_cst — harness start barrier (not under test)
      start_gate.fetch_add(1);
      // c2sl-atomic: load seq_cst — barrier spin; must see every arrival
      while (start_gate.load() < threads) {
      }
      t_start[static_cast<size_t>(wid)] = Clock::now();
      for (uint64_t i = 0; i < ops; ++i) {
        uint64_t key = dist->next(rng, i);
        auto t0 = Clock::now();
        svc::C2Session session;
        if (acquire_block) {
          session = store.open_session();  // parks on the handoff queue
        } else {
          // The retired caller-side poll loop the blocking API replaces.
          for (;;) {
            session = store.try_open_session();
            if (session.valid()) break;
            std::this_thread::yield();
          }
        }
        auto t1 = Clock::now();
        my_lat.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
        session.counter_inc(key);
        ++my_counts[static_cast<size_t>(OpKind::kSessionChurn)];
        // RAII close: the lane is handed to the oldest blocked opener.
      }
      t_end[static_cast<size_t>(wid)] = Clock::now();
      return;
    }
    // Resets of the per-shard multi-shot TAS have a finite generation budget;
    // worker 0 is the sole resetter so the budget gate is race-free. Under a
    // resize schedule tas.shard() can report any slot up to the growth cap,
    // so the bookkeeping is sized for the cap up front.
    std::vector<int64_t> resets_done(
        static_cast<size_t>(resizing ? kResizeShardCap : store.shard_count()),
        0);

    svc::C2Session session = store.open_session();
    // Cached bind mode: hash-route every key ONCE, before the timed loop; the
    // loop then runs entirely on cached slot pointers.
    std::vector<svc::MaxRef> max_refs;
    std::vector<svc::CounterRef> ctr_refs;
    std::vector<svc::TasRef> tas_refs;
    std::vector<svc::SetRef> set_refs;
    if (cached) {
      max_refs.reserve(cfg.key_space);
      ctr_refs.reserve(cfg.key_space);
      tas_refs.reserve(cfg.key_space);
      set_refs.reserve(cfg.key_space);
      for (uint64_t k = 0; k < cfg.key_space; ++k) {
        if (string_keys) {
          std::string_view name = names[k];
          max_refs.push_back(session.max(name));
          ctr_refs.push_back(session.counter(name));
          tas_refs.push_back(session.tas(name));
          set_refs.push_back(session.set(name));
        } else {
          max_refs.push_back(session.max(k));
          ctr_refs.push_back(session.counter(k));
          tas_refs.push_back(session.tas(k));
          set_refs.push_back(session.set(k));
        }
      }
    }

    // Each worker holds one SnapshotRef over the per-shard representatives:
    // its replay cursor advances incrementally across the worker's snapshots
    // instead of re-replaying the whole journal every time.
    svc::SnapshotRef snap_ref = session.snapshot_ref(snap_slots);

    // c2sl-atomic: faa seq_cst — harness start barrier (not under test)
    start_gate.fetch_add(1);
    // c2sl-atomic: load seq_cst — barrier spin; must see every arrival
    while (start_gate.load() < threads) {
    }
    t_start[static_cast<size_t>(wid)] = Clock::now();

    // Key-name view for per_op routing under the string shape.
    auto sv = [&names](uint64_t k) {
      return std::string_view(names[static_cast<size_t>(k)]);
    };
    for (uint64_t i = 0; i < ops; ++i) {
      OpKind kind = cfg.mix.pick(rng);
      uint64_t key = dist->next(rng, i);
      auto t0 = std::chrono::steady_clock::now();
      // Rebuild arm: the reader lock is INSIDE the timed region — its
      // acquisition cost and any stall behind a stop-the-world resize are
      // exactly the latency that strategy charges every operation.
      std::shared_lock<std::shared_mutex> op_guard(resize_mu, std::defer_lock);
      if (locked_ops) op_guard.lock();
      switch (kind) {
        case OpKind::kMaxWrite: {
          int64_t v = rng.next_in(0, result.cfg.store.max_value);
          if (cached) {
            max_refs[key].write(v);
          } else if (string_keys) {
            session.max_write(sv(key), v);
          } else {
            session.max_write(key, v);
          }
          break;
        }
        case OpKind::kMaxRead:
          cached ? max_refs[key].read()
                 : string_keys ? session.max_read(sv(key)) : session.max_read(key);
          break;
        case OpKind::kCounterInc:
          cached ? ctr_refs[key].inc()
                 : string_keys ? session.counter_inc(sv(key)) : session.counter_inc(key);
          break;
        case OpKind::kCounterRead:
          cached ? ctr_refs[key].read()
                 : string_keys ? session.counter_read(sv(key))
                               : session.counter_read(key);
          break;
        case OpKind::kSetPut: {
          int64_t item = static_cast<int64_t>(wid) * (1 << 30) +
                         static_cast<int64_t>(i);
          if (cached) {
            set_refs[key].put(item);
          } else if (string_keys) {
            session.set_put(sv(key), item);
          } else {
            session.set_put(key, item);
          }
          break;
        }
        case OpKind::kSetTake:
          cached ? set_refs[key].take()
                 : string_keys ? session.set_take(sv(key)) : session.set_take(key);
          break;
        case OpKind::kTas: {
          // Worker 0 occasionally recycles the TAS within the shard budget.
          auto run_tas = [&](svc::TasRef& tas) {
            int s = tas.shard();
            if (wid == 0 && tas.read() == 1 &&
                resets_done[static_cast<size_t>(s)] <
                    result.cfg.store.tas_max_resets) {
              if (tas.reset() == svc::ResetResult::kOk) {
                ++resets_done[static_cast<size_t>(s)];
              }
            }
            tas.test_and_set();
          };
          if (cached) {
            // Operate on the vector element itself so its slot pointer warms
            // up (a copy would re-resolve every op).
            run_tas(tas_refs[key]);
          } else {
            svc::TasRef tas = string_keys ? session.tas(sv(key)) : session.tas(key);
            run_tas(tas);
          }
          break;
        }
        case OpKind::kTasRead:
          cached ? tas_refs[key].read()
                 : string_keys ? session.tas_read(sv(key)) : session.tas_read(key);
          break;
        // Aggregates run through the session so the telemetry layer sees
        // them (store-level calls are uninstrumented by design).
        case OpKind::kGlobalMax:
          session.global_max();
          break;
        case OpKind::kGlobalMaxScan:
          session.global_max_scan();
          break;
        case OpKind::kCounterSum:
          sum_scan ? session.counter_sum_scan() : session.counter_sum();
          break;
        case OpKind::kSessionChurn:
          C2SL_CHECK(false, "kSessionChurn only runs in the session_churn mix");
          break;
        case OpKind::kSnapshot: {
          if (snap_loop) {
            // Naive per-key read loop: the ablation baseline. NOT
            // linearizable as one operation — the sim layer pins its
            // refutation — so no invariant is (or can be) asserted here.
            int64_t sum = 0;
            for (uint64_t k : snap_keys) sum += session.counter_read(k);
            (void)sum;
          } else {
            std::vector<int64_t> view = snap_ref.read();
            if (audit) {
              // The live conservation audit: transfers are single journal
              // entries, so EVERY cut must balance. This is the check the
              // sanitizer CI jobs run natively under TSAN/ASAN.
              int64_t sum = 0;
              for (int64_t v : view) sum += v;
              C2SL_CHECK(sum == 0,
                         "transfer_audit: snapshot observed a torn transfer");
            }
          }
          break;
        }
        case OpKind::kTransfer: {
          C2SL_CHECK(snap_keys.size() >= 2,
                     "transfers need at least two shards");
          size_t from = static_cast<size_t>(rng.next_below(snap_keys.size()));
          size_t to = static_cast<size_t>(rng.next_below(snap_keys.size() - 1));
          if (to >= from) ++to;  // distinct pair, uniform
          session.transfer(snap_keys[from], snap_keys[to], rng.next_in(1, 3));
          break;
        }
      }
      auto t1 = std::chrono::steady_clock::now();
      if (locked_ops) op_guard.unlock();
      my_lat.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      ++my_counts[static_cast<size_t>(kind)];
      // Control-plane: worker 0 doubles the shard count on its own op
      // schedule. Deliberately OUTSIDE the latency record — a resize is not a
      // data op; its cost shows up in the other workers' op latencies (stall
      // under rebuild, near-nothing under the in-place epoch hand-off) and in
      // wall-clock throughput, which is what the CI gate compares.
      if (resizing && wid == 0 && (i + 1) % cfg.resize_every == 0) {
        int cur = store.shard_count();
        if (cur < kResizeShardCap) {
          svc::ResizeStatus st;
          if (rebuild) {
            // Writer lock: drains every in-flight op and blocks new ones, so
            // the store is quiescent for the duration — the stop-the-world
            // semantics this arm models. (The resize itself still runs the
            // epoch machinery; the BASELINE cost being measured is the
            // exclusion, which any rebuild-into-a-bigger-store scheme pays
            // at minimum.)
            std::unique_lock<std::shared_mutex> g(resize_mu);
            st = session.resize(cur * 2);
          } else {
            st = session.resize(cur * 2);
          }
          if (st == svc::ResizeStatus::kInstalled) ++resizes_done;
        }
      }
    }
    t_end[static_cast<size_t>(wid)] = Clock::now();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  result.seconds = std::chrono::duration<double>(
                       *std::max_element(t_end.begin(), t_end.end()) -
                       *std::min_element(t_start.begin(), t_start.end()))
                       .count();
  std::vector<int64_t> all;
  for (auto& v : lat) {
    result.total_ops += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  if (churn) {
    // Per-waiter wait-time spread: each worker's open latencies are its own
    // waiter history (the per-thread buffers ARE per-waiter — merging them
    // first would destroy exactly the fairness signal). summarize_latencies
    // sorts each buffer in place; `all` already holds copies.
    WaitSpread& ws = result.wait_spread;
    for (auto& v : lat) {
      if (v.empty()) continue;
      LatencyStats s = summarize_latencies(v);
      if (ws.waiters == 0) {
        ws.p50_min_ns = ws.p50_max_ns = s.p50_ns;
        ws.p99_min_ns = ws.p99_max_ns = s.p99_ns;
        ws.max_min_ns = ws.max_max_ns = s.max_ns;
      } else {
        ws.p50_min_ns = std::min(ws.p50_min_ns, s.p50_ns);
        ws.p50_max_ns = std::max(ws.p50_max_ns, s.p50_ns);
        ws.p99_min_ns = std::min(ws.p99_min_ns, s.p99_ns);
        ws.p99_max_ns = std::max(ws.p99_max_ns, s.p99_ns);
        ws.max_min_ns = std::min(ws.max_min_ns, s.max_ns);
        ws.max_max_ns = std::max(ws.max_max_ns, s.max_ns);
      }
      ++ws.waiters;
    }
    ws.p50_spread_ns = ws.p50_max_ns - ws.p50_min_ns;
    ws.p99_spread_ns = ws.p99_max_ns - ws.p99_min_ns;
    ws.max_spread_ns = ws.max_max_ns - ws.max_min_ns;
  }
  result.throughput_ops_s =
      result.seconds > 0 ? static_cast<double>(result.total_ops) / result.seconds : 0;
  result.latency = summarize_latencies(all);
  for (const auto& per_thread : counts) {
    for (int k = 0; k < kOpKindCount; ++k) result.per_kind[k] += per_thread[static_cast<size_t>(k)];
  }
  result.initialized_shards = store.initialized_shards();
  result.resizes_done = resizes_done;
  result.final_shards = store.shard_count();
  result.final_global_max = store.global_max();
  // Post-quiescence the scan stabilises on its first two collects and agrees
  // with the digest exactly; read through the configured impl anyway so the
  // ablation artifact reports the path it measured.
  result.final_counter_sum = sum_scan ? store.counter_sum_scan() : store.counter_sum();
  result.journal_tickets = store.journal_tickets();
  if (resizing) {
    // Conservation across every resize cut: each counter inc lands in the
    // epoch-independent sum digest exactly once (the settle loop re-applies
    // only to SHARD slots, never to the digest), and transfers net to zero,
    // so the digest sum after quiescence must equal the inc count no matter
    // how many migrations ran mid-stream. A lost or double-counted inc
    // anywhere in the hand-off breaks this equality loudly.
    C2SL_CHECK(result.final_counter_sum ==
                   static_cast<int64_t>(
                       result.per_kind[static_cast<size_t>(OpKind::kCounterInc)]),
               "resize conservation: counter_sum != total incs across resizes");
  }
  if (audit) {
    // Quiescent audit from a fresh replay cursor: a full journal replay must
    // conserve, independently of the incremental cursors the workers held.
    svc::C2Session s = store.open_session();
    int64_t sum = 0;
    for (int64_t v : s.snapshot_counters(snap_keys)) sum += v;
    C2SL_CHECK(sum == 0, "transfer_audit: quiescent full replay did not conserve");
  }
  result.metrics = store.metrics_snapshot();
  // Quiescent drain: every session has closed, so the dump is the complete
  // witnessed history of the run (what tools/trace_audit.py replays).
  if (cfg.collect_trace) result.trace = store.trace_dump();
  return result;
}

void profile_primitives(tel::MetricsSnapshot& snap) {
  if (!tel::kEnabled) return;
  // A private single-session store: the per-thread primitive counters then
  // attribute every delta to exactly the profiled op. Small key space, one
  // lane — the profile is a COST MODEL (primitives per op), not a throughput
  // measurement, so contention is deliberately absent.
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 4;
  cfg.max_threads = 1;
  cfg.max_value = 63;
  cfg.tas_max_resets = 0;
  svc::C2Store store(cfg);
  constexpr int kOps = 256;

  auto profile = [&](tel::TelOp op, auto&& body) {
    tel::PrimCounts before = tel::this_thread_prims();
    for (int i = 0; i < kOps; ++i) body(i);
    tel::PrimCounts delta = tel::this_thread_prims() - before;
    tel::PrimProfile& p = snap.prim_profile[static_cast<int>(op)];
    p.faa = static_cast<double>(delta.faa) / kOps;
    p.tas = static_cast<double>(delta.tas) / kOps;
    p.swap = static_cast<double>(delta.swap) / kOps;
    p.ops = kOps;
  };

  {
    svc::C2Session s = store.open_session();
    svc::MaxRef mx = s.max(uint64_t{1});
    svc::CounterRef ctr = s.counter(uint64_t{2});
    svc::TasRef tas = s.tas(uint64_t{3});
    svc::SetRef set = s.set(uint64_t{4});
    mx.write(1);  // warm the shard slots so materialisation cost stays out
    ctr.inc();
    tas.read();
    set.put(0);

    profile(tel::TelOp::kMaxWrite, [&](int i) { mx.write(i % 63); });
    profile(tel::TelOp::kMaxRead, [&](int) { mx.read(); });
    profile(tel::TelOp::kCounterInc, [&](int) { ctr.inc(); });
    profile(tel::TelOp::kCounterRead, [&](int) { ctr.read(); });
    profile(tel::TelOp::kTasSet, [&](int) { tas.test_and_set(); });
    profile(tel::TelOp::kTasRead, [&](int) { tas.read(); });
    // Balanced put/take so the set neither grows without bound (take sweeps
    // would lengthen) nor runs dry (empty takes stabilise differently).
    profile(tel::TelOp::kSetPut, [&](int i) { set.put(i); });
    profile(tel::TelOp::kSetTake, [&](int) { set.take(); });
    profile(tel::TelOp::kGlobalMax, [&](int) { s.global_max(); });
    profile(tel::TelOp::kGlobalMaxScan, [&](int) { s.global_max_scan(); });
    profile(tel::TelOp::kCounterSum, [&](int) { s.counter_sum(); });
    profile(tel::TelOp::kCounterSumScan, [&](int) { s.counter_sum_scan(); });
    // Snapshot steady state: the first read drains the journal entries the
    // profiles above appended; after that each read is one tail FAA plus a
    // replay of whatever landed since — nothing, here, so the profile is the
    // irreducible per-snapshot cost (the fan-out to keys is free).
    svc::SnapshotRef snap = s.snapshot_ref(
        {svc::SnapKey::counter(uint64_t{2}), svc::SnapKey::max(uint64_t{1})});
    snap.read();
    profile(tel::TelOp::kSnapshot, [&](int) { snap.read(); });
    // Alternating signs keep the profiled balances bounded.
    profile(tel::TelOp::kTransfer, [&](int i) {
      s.transfer(uint64_t{2}, uint64_t{4}, (i % 2) ? 1 : -1);
    });
  }
  profile(tel::TelOp::kSessionOpen, [&](int) {
    svc::C2Session s = store.open_session();  // full open/close cycle
  });
  snap.has_prim_profile = true;
}

void append_result_entry(JsonWriter& w, const std::string& bench,
                         const WorkloadResult& r) {
  w.begin_object();
  w.field("bench", bench);
  w.key("config").begin_object();
  w.field("threads", r.cfg.threads);
  w.field("initial_shards", r.cfg.store.initial_shards);
  w.field("ops_per_thread", r.cfg.ops_per_thread);
  w.field("key_space", r.cfg.key_space);
  w.field("dist", r.cfg.dist);
  w.field("mix", r.cfg.mix.name);
  w.field("bind", r.cfg.bind);
  w.field("keys", r.cfg.keys);
  w.field("sum_impl", r.cfg.sum_impl);
  w.field("acquire", r.cfg.acquire);
  w.field("snap_impl", r.cfg.snap_impl);
  w.field("resize_every", r.cfg.resize_every);
  w.field("resize_impl", r.cfg.resize_impl);
  w.field("lanes", r.cfg.store.max_threads);
  w.field("seed", r.cfg.seed);
  w.end_object();
  w.key("metrics").begin_object();
  w.field("ops", r.total_ops);
  w.field("seconds", r.seconds);
  w.field("throughput_ops_per_s", r.throughput_ops_s);
  w.key("latency_ns").begin_object();
  w.field("mean", r.latency.mean_ns);
  w.field("min", r.latency.min_ns);
  w.field("p50", r.latency.p50_ns);
  w.field("p90", r.latency.p90_ns);
  w.field("p99", r.latency.p99_ns);
  w.field("p999", r.latency.p999_ns);
  w.field("max", r.latency.max_ns);
  w.end_object();
  w.key("op_counts").begin_object();
  for (int k = 0; k < kOpKindCount; ++k) {
    if (r.per_kind[k] > 0) w.field(to_string(static_cast<OpKind>(k)), r.per_kind[k]);
  }
  w.end_object();
  if (r.wait_spread.waiters > 0) {
    // session_churn only: per-waiter open-latency spread (fairness metric).
    const WaitSpread& ws = r.wait_spread;
    w.key("wait_spread_ns").begin_object();
    w.field("waiters", ws.waiters);
    w.field("p50_min", ws.p50_min_ns);
    w.field("p50_max", ws.p50_max_ns);
    w.field("p50_spread", ws.p50_spread_ns);
    w.field("p99_min", ws.p99_min_ns);
    w.field("p99_max", ws.p99_max_ns);
    w.field("p99_spread", ws.p99_spread_ns);
    w.field("max_min", ws.max_min_ns);
    w.field("max_max", ws.max_max_ns);
    w.field("max_spread", ws.max_spread_ns);
    w.end_object();
  }
  w.key("final_state").begin_object();
  w.field("initialized_shards", r.initialized_shards);
  w.field("resizes_done", r.resizes_done);
  w.field("final_shards", r.final_shards);
  w.field("global_max", r.final_global_max);
  w.field("counter_sum", r.final_counter_sum);
  w.field("journal_tickets", r.journal_tickets);
  w.end_object();
  w.end_object();  // metrics
  w.end_object();  // entry
}

std::string result_to_json(const std::string& suite, const std::string& bench,
                           const WorkloadResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "c2sl-bench-v1");
  w.field("suite", suite);
  w.key("results").begin_array();
  append_result_entry(w, bench, r);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace c2sl::wl
