#include "workload/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace c2sl::wl {

namespace {

/// Clamp the store config so this workload cannot violate a construction
/// precondition: lane budgets (63-bit packing) and per-shard capacities
/// (worst case: every routed op lands on one shard).
svc::C2StoreConfig clamp_store(const WorkloadConfig& cfg) {
  svc::C2StoreConfig s = cfg.store;
  s.max_threads = std::max(s.max_threads, cfg.threads);
  C2SL_CHECK(s.max_threads <= 31, "engine supports at most 31 threads");
  s.max_value = std::min<int64_t>(s.max_value, 63 / s.max_threads);
  s.tas_max_resets = std::min<int64_t>(s.tas_max_resets, 63 / s.max_threads - 1);
  uint64_t worst = static_cast<uint64_t>(cfg.threads) * cfg.ops_per_thread + 1;
  s.counter_capacity = std::max<size_t>(s.counter_capacity, worst);
  s.set_capacity = std::max<size_t>(s.set_capacity, worst);
  return s;
}

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg) {
  C2SL_CHECK(cfg.threads >= 1, "need at least one worker thread");
  WorkloadResult result;
  result.cfg = cfg;
  result.cfg.store = clamp_store(cfg);

  svc::C2Store store(result.cfg.store);
  std::unique_ptr<KeyDist> dist = make_dist(cfg.dist, cfg.key_space, cfg.zipf_theta);

  const int threads = cfg.threads;
  const uint64_t ops = cfg.ops_per_thread;
  std::vector<std::vector<int64_t>> lat(static_cast<size_t>(threads));
  std::vector<std::vector<uint64_t>> counts(
      static_cast<size_t>(threads), std::vector<uint64_t>(kOpKindCount, 0));
  std::atomic<int> start_gate{0};

  auto worker = [&](int tid) {
    Rng rng(cfg.seed * 1000003 + static_cast<uint64_t>(tid));
    auto& my_lat = lat[static_cast<size_t>(tid)];
    auto& my_counts = counts[static_cast<size_t>(tid)];
    my_lat.reserve(ops);
    // Resets of the per-shard multi-shot TAS have a finite generation budget;
    // thread 0 is the sole resetter so the budget gate is race-free.
    std::vector<int64_t> resets_done(
        static_cast<size_t>(store.shard_count()), 0);

    start_gate.fetch_add(1);
    while (start_gate.load() < threads) {
    }

    for (uint64_t i = 0; i < ops; ++i) {
      OpKind kind = cfg.mix.pick(rng);
      uint64_t key = dist->next(rng, i);
      auto t0 = std::chrono::steady_clock::now();
      switch (kind) {
        case OpKind::kMaxWrite:
          store.max_write(tid, key,
                          rng.next_in(0, result.cfg.store.max_value));
          break;
        case OpKind::kMaxRead:
          store.max_read(key);
          break;
        case OpKind::kCounterInc:
          store.counter_inc(key);
          break;
        case OpKind::kCounterRead:
          store.counter_read(key);
          break;
        case OpKind::kSetPut:
          store.set_put(key, static_cast<int64_t>(tid) * (1 << 30) +
                                 static_cast<int64_t>(i));
          break;
        case OpKind::kSetTake:
          store.set_take(key);
          break;
        case OpKind::kTas: {
          // Thread 0 occasionally recycles the TAS within the shard budget.
          int s = store.shard_of(key);
          if (tid == 0 && store.tas_read(key) == 1 &&
              resets_done[static_cast<size_t>(s)] <
                  result.cfg.store.tas_max_resets) {
            if (store.tas_reset(tid, key)) {
              ++resets_done[static_cast<size_t>(s)];
            }
          }
          store.tas(tid, key);
          break;
        }
        case OpKind::kTasRead:
          store.tas_read(key);
          break;
        case OpKind::kGlobalMax:
          store.global_max();
          break;
        case OpKind::kGlobalMaxScan:
          store.global_max_scan();
          break;
        case OpKind::kCounterSum:
          store.counter_sum();
          break;
      }
      auto t1 = std::chrono::steady_clock::now();
      my_lat.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      ++my_counts[static_cast<size_t>(kind)];
    }
  };

  auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();
  auto wall1 = std::chrono::steady_clock::now();

  result.seconds = std::chrono::duration<double>(wall1 - wall0).count();
  std::vector<int64_t> all;
  for (auto& v : lat) {
    result.total_ops += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  result.throughput_ops_s =
      result.seconds > 0 ? static_cast<double>(result.total_ops) / result.seconds : 0;
  result.latency = summarize_latencies(all);
  for (const auto& per_thread : counts) {
    for (int k = 0; k < kOpKindCount; ++k) result.per_kind[k] += per_thread[static_cast<size_t>(k)];
  }
  result.initialized_shards = store.initialized_shards();
  result.final_global_max = store.global_max();
  result.final_counter_sum = store.counter_sum();
  return result;
}

void append_result_entry(JsonWriter& w, const std::string& bench,
                         const WorkloadResult& r) {
  w.begin_object();
  w.field("bench", bench);
  w.key("config").begin_object();
  w.field("threads", r.cfg.threads);
  w.field("shards", r.cfg.store.shards);
  w.field("ops_per_thread", r.cfg.ops_per_thread);
  w.field("key_space", r.cfg.key_space);
  w.field("dist", r.cfg.dist);
  w.field("mix", r.cfg.mix.name);
  w.field("seed", r.cfg.seed);
  w.end_object();
  w.key("metrics").begin_object();
  w.field("ops", r.total_ops);
  w.field("seconds", r.seconds);
  w.field("throughput_ops_per_s", r.throughput_ops_s);
  w.key("latency_ns").begin_object();
  w.field("mean", r.latency.mean_ns);
  w.field("min", r.latency.min_ns);
  w.field("p50", r.latency.p50_ns);
  w.field("p90", r.latency.p90_ns);
  w.field("p99", r.latency.p99_ns);
  w.field("p999", r.latency.p999_ns);
  w.field("max", r.latency.max_ns);
  w.end_object();
  w.key("op_counts").begin_object();
  for (int k = 0; k < kOpKindCount; ++k) {
    if (r.per_kind[k] > 0) w.field(to_string(static_cast<OpKind>(k)), r.per_kind[k]);
  }
  w.end_object();
  w.key("final_state").begin_object();
  w.field("initialized_shards", r.initialized_shards);
  w.field("global_max", r.final_global_max);
  w.field("counter_sum", r.final_counter_sum);
  w.end_object();
  w.end_object();  // metrics
  w.end_object();  // entry
}

std::string result_to_json(const std::string& suite, const std::string& bench,
                           const WorkloadResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "c2sl-bench-v1");
  w.field("suite", suite);
  w.key("results").begin_array();
  append_result_entry(w, bench, r);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace c2sl::wl
