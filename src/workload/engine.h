// Multi-threaded workload driver for C2Store.
//
// Spawns `threads` real threads behind a start barrier; each thread opens its
// own C2Session (RAII lane) and runs `ops_per_thread` operations drawn from an
// OpMix, with keys drawn from a KeyDist, against one shared C2Store. Every
// operation's latency is recorded
// (two steady_clock reads per op) into a thread-local buffer; the driver
// merges the buffers, computes exact percentiles, re-reads the aggregate
// paths after quiescence, and can serialise everything as one entry of the
// repo-wide "c2sl-bench-v1" JSON schema (README.md documents the schema).
//
// Determinism: all randomness flows through per-thread SplitMix64 streams
// derived from (seed, thread id), so op/key sequences are reproducible from
// the seed alone; only timings vary between runs.
#pragma once

#include <cstdint>
#include <string>

#include "service/c2store.h"
#include "workload/distributions.h"
#include "workload/json_writer.h"
#include "workload/latency.h"
#include "workload/op_mix.h"

namespace c2sl::wl {

/// Hard ceiling on the shard count the resize_every schedule will grow a
/// store to — keeps TAS reset bookkeeping and migration sweeps bounded no
/// matter how many ops a long run pushes through worker 0.
inline constexpr int kResizeShardCap = 256;

struct WorkloadConfig {
  int threads = 4;
  uint64_t ops_per_thread = 5000;
  uint64_t key_space = 1024;
  std::string dist = "uniform";  ///< uniform | zipfian | hotburst
  double zipf_theta = 0.99;
  OpMix mix = OpMix::mixed();
  uint64_t seed = 1;
  /// Ref binding mode: "cached" binds one typed ref per key up front and runs
  /// every op through the cached slot pointer; "per_op" re-routes on every op
  /// through the session's one-shot conveniences — the old flat-surface cost,
  /// kept as the ablation baseline (bench_c2store emits both; tools/bench_diff
  /// gates that cached is no slower).
  std::string bind = "cached";
  /// Key shape: "int" routes raw uint64 keys (a SplitMix64 finalizer — nearly
  /// free, so per-op routing is competitive there); "string" formats each key
  /// as "user:NNNNNNN/profile" once up front and routes the string (FNV over
  /// ~20 bytes per op in per_op mode — the case bind-time caching removes).
  std::string keys = "int";
  /// counter_sum() implementation for kCounterSum ops: "digest" reads the
  /// wait-free strongly-linearizable CounterSumDigest word; "scan" runs the
  /// retired bounded double-collect (linearizable only — the ablation
  /// baseline bench_c2store emits under --sum-impl, gated by tools/bench_diff
  /// in CI: digest must win the sum-heavy mix).
  std::string sum_impl = "digest";
  /// Session acquisition for the session_churn mix: "block" parks on the
  /// store's consensus-2 handoff queue (open_session()); "try" is the retired
  /// caller-side poll loop over try_open_session() — the ablation baseline
  /// bench_c2store emits under --acquire, gated by tools/bench_diff in CI:
  /// block must not lose to try-poll at threads > lanes. Ignored by every
  /// other mix (workers there hold one session throughout).
  std::string acquire = "block";
  /// session.snapshot implementation for kSnapshot ops: "digest" reads the
  /// strongly linearizable journal-replay SnapshotRef; "loop" runs the naive
  /// one-pass per-key read loop — NOT even linearizable as one operation
  /// (the sim layer pins its refutation), kept as the ablation baseline
  /// bench_c2store emits under --snap-impl, gated by tools/bench_diff in CI
  /// on the snapshot_heavy mix. The transfer_audit mix refuses "loop": its
  /// live conservation check is exactly what the loop cannot satisfy.
  std::string snap_impl = "digest";
  /// Live-resize schedule: when > 0, worker 0 doubles the store's shard count
  /// after every `resize_every` of ITS OWN ops (capped at kResizeShardCap),
  /// while every worker keeps running keyed traffic — the resize_storm mix's
  /// reason to exist. 0 disables resizing. Incompatible with session_churn
  /// (no stable resizer session) and with sum_impl == "scan" (post-resize
  /// slot scans over-approximate; only the digest stays exact — the engine
  /// refuses the combination instead of reporting a wrong sum).
  uint64_t resize_every = 0;
  /// How resizes are served when resize_every > 0: "inplace" is the epoch
  /// hand-off (C2Session::resize, fully concurrent with data ops); "rebuild"
  /// is the stop-the-world ablation baseline — every data op holds a reader
  /// lock and the resizer takes the writer lock, drains, and only then
  /// resizes, so the whole store stalls for the duration. bench_c2store emits
  /// both arms under --resize-impl; tools/bench_diff gates that inplace wins
  /// the resize_storm mix in CI.
  std::string resize_impl = "inplace";
  /// When true, the workload drains the store's linearization-witness trace
  /// after quiescence into WorkloadResult::trace (tel::trace_to_json /
  /// tel::trace_to_chrome ready; audited offline by tools/trace_audit.py).
  /// Capture itself is always on (C2SL_TRACE=1 builds) — this only controls
  /// the drain, which copies every record.
  bool collect_trace = false;
  /// Shard layout etc. The engine clamps max_threads / max_value /
  /// tas_max_resets (the 63-bit lane-packing budgets) so any
  /// (threads, ops_per_thread) fits; nothing else needs sizing — the store's
  /// arrays are unbounded.
  svc::C2StoreConfig store;
};

/// Per-waiter fairness of blocking open_session() under the session_churn
/// mix (the wait-time-spread metric PR 5 left open): each worker thread is
/// one recurring waiter; its open latencies summarise to per-waiter p50/p99/
/// max, and the SPREAD is the max-min gap of each statistic across waiters —
/// zero would be perfectly even FIFO service.
struct WaitSpread {
  uint64_t waiters = 0;  ///< workers with at least one recorded open
  int64_t p50_min_ns = 0, p50_max_ns = 0, p50_spread_ns = 0;
  int64_t p99_min_ns = 0, p99_max_ns = 0, p99_spread_ns = 0;
  int64_t max_min_ns = 0, max_max_ns = 0, max_spread_ns = 0;
};

struct WorkloadResult {
  WorkloadConfig cfg;
  uint64_t total_ops = 0;
  double seconds = 0.0;
  double throughput_ops_s = 0.0;
  LatencyStats latency;
  uint64_t per_kind[kOpKindCount] = {0};
  int initialized_shards = 0;
  int64_t final_global_max = 0;
  int64_t final_counter_sum = 0;
  /// Keyed writes journaled during the run (counter incs, max writes,
  /// transfers — snapshots and reads never journal).
  int64_t journal_tickets = 0;
  /// Successful live resizes worker 0 completed (0 when resize_every == 0).
  int64_t resizes_done = 0;
  /// The store's routed shard count after quiescence (== the configured
  /// initial_shards unless resizes ran).
  int final_shards = 0;
  /// Populated only by the session_churn mix (waiters == 0 otherwise).
  WaitSpread wait_spread;
  /// The store's telemetry at workload end (enabled == false under
  /// C2SL_TELEMETRY=0); exported via tel::to_json / tel::to_prometheus.
  tel::MetricsSnapshot metrics;
  /// The store's witness trace at workload end — drained only when
  /// cfg.collect_trace is set (enabled == false otherwise or under
  /// C2SL_TRACE=0); exported via tel::trace_to_json / tel::trace_to_chrome.
  tel::TraceDump trace;
};

/// Runs one workload to completion. Builds its own C2Store from cfg.store.
WorkloadResult run_workload(const WorkloadConfig& cfg);

/// Calibration pass: measures the average primitive invocations (FAA / TAS /
/// swap) per service op of each kind on a PRIVATE single-session store, and
/// fills `snap.prim_profile` / `snap.has_prim_profile`. This is the paper's
/// cost model made empirical — e.g. counter_inc = 1 shard F&I tower + 2
/// digest FAAs. A no-op when telemetry is compiled out (the per-thread
/// primitive counters do not exist). TasRef::reset is not profiled: its
/// generation budget cannot sustain a calibration loop.
void profile_primitives(tel::MetricsSnapshot& snap);

/// Appends one "c2sl-bench-v1" result entry {bench, config, metrics} to `w`
/// (callers wrap entries in a suite document; see write_suite_* in
/// bench/bench_c2store.cpp and bench/json_reporter.h).
void append_result_entry(JsonWriter& w, const std::string& bench,
                         const WorkloadResult& r);

/// One-entry suite document for quick dumps.
std::string result_to_json(const std::string& suite, const std::string& bench,
                           const WorkloadResult& r);

}  // namespace c2sl::wl
