#include "workload/json_writer.h"

#include <cmath>
#include <cstdio>

namespace c2sl::wl {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value directly follows its key, no separator
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  value_escaped_append(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  value_escaped_append(v);
  return *this;
}

void JsonWriter::value_escaped_append(std::string_view v) {
  out_ += '"';
  for (unsigned char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += static_cast<char>(c);
        }
    }
  }
  out_ += '"';
}

}  // namespace c2sl::wl
