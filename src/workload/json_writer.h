// Minimal streaming JSON writer — the single serialisation path for every
// BENCH_*.json artifact in the repo (workload engine results, the C2Store
// sweep, and the google-benchmark-based suites via bench/json_reporter.h), so
// all benchmarks share one machine-readable schema ("c2sl-bench-v1", see
// README.md). No external dependency; emits UTF-8 with standard escaping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace c2sl::wl {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member name; must be followed by a value or container begin.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  void value_escaped_append(std::string_view v);

  std::string out_;
  std::vector<bool> first_;  ///< per open container: no element emitted yet
  bool pending_key_ = false;
};

}  // namespace c2sl::wl
