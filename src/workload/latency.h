// Latency aggregation for the workload engine: exact percentiles over the
// full recorded sample set. Workers record one int64 (nanoseconds) per
// operation into thread-local vectors; the driver merges and summarises once
// at the end, so the hot path pays two clock reads and one push_back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace c2sl::wl {

struct LatencyStats {
  uint64_t count = 0;
  double mean_ns = 0.0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  int64_t p999_ns = 0;
};

/// Destructive (sorts `samples_ns` in place).
inline LatencyStats summarize_latencies(std::vector<int64_t>& samples_ns) {
  LatencyStats s;
  if (samples_ns.empty()) return s;
  std::sort(samples_ns.begin(), samples_ns.end());
  s.count = samples_ns.size();
  double sum = 0.0;
  for (int64_t v : samples_ns) sum += static_cast<double>(v);
  s.mean_ns = sum / static_cast<double>(s.count);
  s.min_ns = samples_ns.front();
  s.max_ns = samples_ns.back();
  auto pct = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(s.count - 1) + 0.5);
    return samples_ns[std::min(idx, samples_ns.size() - 1)];
  };
  s.p50_ns = pct(0.50);
  s.p90_ns = pct(0.90);
  s.p99_ns = pct(0.99);
  s.p999_ns = pct(0.999);
  return s;
}

}  // namespace c2sl::wl
