// Latency aggregation for the workload engine: exact percentiles over the
// full recorded sample set. Workers record one int64 (nanoseconds) per
// operation into thread-local vectors; the driver merges and summarises once
// at the end, so the hot path pays two clock reads and one push_back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "telemetry/histogram.h"

namespace c2sl::wl {

struct LatencyStats {
  uint64_t count = 0;
  double mean_ns = 0.0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  int64_t p999_ns = 0;
};

/// Destructive (sorts `samples_ns` in place).
inline LatencyStats summarize_latencies(std::vector<int64_t>& samples_ns) {
  LatencyStats s;
  if (samples_ns.empty()) return s;
  std::sort(samples_ns.begin(), samples_ns.end());
  s.count = samples_ns.size();
  double sum = 0.0;
  for (int64_t v : samples_ns) sum += static_cast<double>(v);
  s.mean_ns = sum / static_cast<double>(s.count);
  s.min_ns = samples_ns.front();
  s.max_ns = samples_ns.back();
  // Nearest-rank percentile: the smallest sample whose cumulative share of
  // the sorted set is >= q, i.e. the ceil(q*count)-th order statistic. This
  // is the textbook rule with no interpolation surprises: the even-count p50
  // is the LOWER middle sample, and a tail quantile only coincides with max
  // when the sample count genuinely cannot resolve it (p99 needs >= 100
  // samples, p999 >= 1000). The index computation is shared with the
  // telemetry histograms (tel::nearest_rank_index — one rule, hoisted to
  // src/telemetry/histogram.h); pinned on known vectors in
  // tests/workload_test.cpp.
  auto pct = [&](double q) {
    return samples_ns[tel::nearest_rank_index(samples_ns.size(), q)];
  };
  s.p50_ns = pct(0.50);
  s.p90_ns = pct(0.90);
  s.p99_ns = pct(0.99);
  s.p999_ns = pct(0.999);
  return s;
}

}  // namespace c2sl::wl
