#include "workload/op_mix.h"

#include "util/assert.h"

namespace c2sl::wl {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kMaxWrite:
      return "MaxWrite";
    case OpKind::kMaxRead:
      return "MaxRead";
    case OpKind::kCounterInc:
      return "CounterInc";
    case OpKind::kCounterRead:
      return "CounterRead";
    case OpKind::kSetPut:
      return "SetPut";
    case OpKind::kSetTake:
      return "SetTake";
    case OpKind::kTas:
      return "Tas";
    case OpKind::kTasRead:
      return "TasRead";
    case OpKind::kGlobalMax:
      return "GlobalMax";
    case OpKind::kGlobalMaxScan:
      return "GlobalMaxScan";
    case OpKind::kCounterSum:
      return "CounterSum";
    case OpKind::kSessionChurn:
      return "SessionChurn";
    case OpKind::kSnapshot:
      return "Snapshot";
    case OpKind::kTransfer:
      return "Transfer";
  }
  return "?";
}

OpMix::OpMix(std::string mix_name, std::vector<std::pair<OpKind, double>> mix_weights)
    : name(std::move(mix_name)), weights(std::move(mix_weights)) {
  for (const auto& [kind, w] : weights) {
    (void)kind;
    total_ += w;
  }
}

OpKind OpMix::pick(Rng& rng) const {
  C2SL_CHECK(!weights.empty(), "op mix has no operations");
  double u = rng.next_unit() * total_;
  double acc = 0.0;
  for (const auto& [kind, w] : weights) {
    acc += w;
    if (u < acc) return kind;
  }
  return weights.back().first;  // floating-point edge: u == total
}

OpMix OpMix::read_heavy() {
  return {"read_heavy",
          {{OpKind::kMaxRead, 0.45},
           {OpKind::kCounterRead, 0.25},
           {OpKind::kTasRead, 0.20},
           {OpKind::kMaxWrite, 0.04},
           {OpKind::kCounterInc, 0.03},
           {OpKind::kSetPut, 0.015},
           {OpKind::kSetTake, 0.015}}};
}

OpMix OpMix::write_heavy() {
  return {"write_heavy",
          {{OpKind::kMaxWrite, 0.30},
           {OpKind::kCounterInc, 0.30},
           {OpKind::kSetPut, 0.15},
           {OpKind::kSetTake, 0.10},
           {OpKind::kTas, 0.05},
           {OpKind::kMaxRead, 0.05},
           {OpKind::kCounterRead, 0.05}}};
}

OpMix OpMix::mixed() {
  return {"mixed",
          {{OpKind::kMaxWrite, 0.125},
           {OpKind::kMaxRead, 0.125},
           {OpKind::kCounterInc, 0.125},
           {OpKind::kCounterRead, 0.125},
           {OpKind::kSetPut, 0.125},
           {OpKind::kSetTake, 0.125},
           {OpKind::kTas, 0.125},
           {OpKind::kTasRead, 0.125}}};
}

OpMix OpMix::sum_heavy() {
  // Sustained counter ingest with frequent sum queries: the worst case for
  // the scan-based counter_sum (every landing inc invalidates a collect) and
  // the showcase for the digest — CI's scan-vs-digest bench gate runs on
  // this mix.
  return {"sum_heavy",
          {{OpKind::kCounterInc, 0.55},
           {OpKind::kCounterSum, 0.35},
           {OpKind::kCounterRead, 0.10}}};
}

OpMix OpMix::aggregate_scan() {
  return {"aggregate_scan",
          {{OpKind::kGlobalMax, 0.05},
           {OpKind::kGlobalMaxScan, 0.05},
           {OpKind::kCounterSum, 0.10},
           {OpKind::kMaxWrite, 0.20},
           {OpKind::kCounterInc, 0.20},
           {OpKind::kMaxRead, 0.20},
           {OpKind::kCounterRead, 0.20}}};
}

OpMix OpMix::session_churn() {
  // Dynamic join/leave under lane starvation: every op is a full
  // open -> use -> close cycle against a store with fewer lanes than worker
  // threads. The blocking-vs-try-poll acquisition ablation (bench_c2store
  // --acquire, gated by CI on mix/session_churn) runs on this mix; the
  // recorded latency is the open latency.
  return {"session_churn", {{OpKind::kSessionChurn, 1.0}}};
}

OpMix OpMix::snapshot_heavy() {
  // Counter ingest with frequent multi-key snapshots. Deliberately NO
  // transfers: a transfer is invisible to the naive per-key loop's result
  // only when it happens to not tear — including them would make the A/B
  // unfair in the loop's favour (it never pays a journal replay). With incs
  // only, both impls answer the same query and the digest-vs-loop bench
  // gate (bench_c2store --snap-impl, tools/bench_diff in CI) compares cost,
  // not correctness.
  return {"snapshot_heavy",
          {{OpKind::kCounterInc, 0.50},
           {OpKind::kSnapshot, 0.40},
           {OpKind::kCounterRead, 0.10}}};
}

OpMix OpMix::transfer_audit() {
  // The conservation suite as a workload: concurrent transfers between
  // per-shard representative keys, audited live — every snapshot asserts
  // the balances sum to zero (C2SL_CHECK in the engine, so the sanitizer CI
  // jobs fail loudly on a torn cut). Requires snap_impl == "digest": the
  // naive loop CANNOT conserve under concurrency, which is the point of the
  // pinned sim refutation, not something to stress natively.
  return {"transfer_audit",
          {{OpKind::kTransfer, 0.70}, {OpKind::kSnapshot, 0.30}}};
}

OpMix OpMix::resize_storm() {
  // Keyed traffic designed to run UNDER live shard resizing (the engine's
  // resize_every knob doubles the shard count on a schedule; the mix itself
  // has no resize op — resizes are control-plane events, not data ops).
  // Write-leaning so migrations always race real updates, with enough reads
  // and aggregate queries to exercise ref revalidation and the scan-vs-digest
  // fallback mid-migration. No transfers: counter conservation across the
  // resize cut then has the exact closed form sum == #incs, which the engine
  // asserts after quiescence.
  return {"resize_storm",
          {{OpKind::kMaxWrite, 0.40},
           {OpKind::kMaxRead, 0.25},
           {OpKind::kCounterInc, 0.15},
           {OpKind::kCounterRead, 0.10},
           {OpKind::kGlobalMax, 0.05},
           {OpKind::kCounterSum, 0.05}}};
}

OpMix OpMix::by_name(const std::string& name) {
  if (name == "read_heavy") return read_heavy();
  if (name == "write_heavy") return write_heavy();
  if (name == "mixed") return mixed();
  if (name == "aggregate_scan") return aggregate_scan();
  if (name == "sum_heavy") return sum_heavy();
  if (name == "session_churn") return session_churn();
  if (name == "snapshot_heavy") return snapshot_heavy();
  if (name == "transfer_audit") return transfer_audit();
  if (name == "resize_storm") return resize_storm();
  C2SL_CHECK(false, "unknown op mix: " + name);
  return mixed();
}

}  // namespace c2sl::wl
