// Operation mixes for the workload engine.
//
// An OpMix is a named discrete distribution over the C2Store operation kinds.
// The canonical mixes mirror the usual service workload archetypes:
// read-heavy (cache-like), write-heavy (ingest-like), mixed, aggregate-scan
// (analytics queries riding on an operational store), and sum-heavy (counter
// ingest + frequent counter_sum — the scan-vs-digest ablation mix).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace c2sl::wl {

enum class OpKind : int {
  kMaxWrite = 0,
  kMaxRead,
  kCounterInc,
  kCounterRead,
  kSetPut,
  kSetTake,
  kTas,
  kTasRead,
  kGlobalMax,
  kGlobalMaxScan,
  kCounterSum,
  /// One full session churn cycle: open a session against a store with fewer
  /// lanes than worker threads (blocking or try-polling per
  /// WorkloadConfig::acquire), run one op through it, close it. The recorded
  /// latency is the OPEN latency alone — the metric the blocking-vs-try
  /// acquisition ablation gates on.
  kSessionChurn,
  /// Multi-key snapshot over one representative counter key per shard
  /// (keys collapse to shards, so per-shard representatives cover the whole
  /// aggregate state). WorkloadConfig::snap_impl picks the implementation:
  /// the journal-replay SnapshotRef ("digest") or the naive per-key read
  /// loop ("loop") — the loop is the strong-linearizability ablation
  /// baseline the CI bench gate runs against on the snapshot_heavy mix.
  kSnapshot,
  /// session.transfer between two distinct per-shard representative keys:
  /// one journal entry moves the amount, so every concurrent snapshot must
  /// see the balances sum to zero (the transfer_audit conservation check).
  kTransfer,
};
inline constexpr int kOpKindCount = 14;

const char* to_string(OpKind k);

struct OpMix {
  OpMix() = default;
  /// Weights need not sum to 1 (pick normalises); the total is cached here so
  /// the per-operation hot path never re-sums the vector.
  OpMix(std::string mix_name, std::vector<std::pair<OpKind, double>> mix_weights);

  std::string name;
  std::vector<std::pair<OpKind, double>> weights;

  OpKind pick(Rng& rng) const;
  double total_weight() const { return total_; }

  static OpMix read_heavy();
  static OpMix write_heavy();
  static OpMix mixed();
  static OpMix aggregate_scan();
  static OpMix sum_heavy();
  static OpMix session_churn();
  static OpMix snapshot_heavy();
  static OpMix transfer_audit();
  static OpMix resize_storm();
  /// "read_heavy" | "write_heavy" | "mixed" | "aggregate_scan" | "sum_heavy"
  /// | "session_churn" | "snapshot_heavy" | "transfer_audit" | "resize_storm".
  static OpMix by_name(const std::string& name);

 private:
  double total_ = 0.0;
};

}  // namespace c2sl::wl
