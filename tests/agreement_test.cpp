// §5 experiments: Lemma 12's algorithm B and the classic consensus protocols.
//
// The constructive story of Theorem 17, run as code:
//  * over a strongly-linearizable queue (CAS — consensus number infinity),
//    algorithm B solves CONSENSUS for n >= 3, every schedule, every seed;
//  * over the Herlihy–Wing queue (fetch&add + swap — consensus number 2,
//    linearizable but not strongly linearizable), the same algorithm exhibits
//    AGREEMENT VIOLATIONS — exactly what Lemma 12 + Herlihy's hierarchy
//    predict must happen for C2 primitives;
//  * over relaxed k-ordering objects (k-out-of-order queues, stuttering
//    queues/stacks, multiplicity queues) the reduction yields k-set agreement.
#include <gtest/gtest.h>

#include "agreement/consensus.h"
#include "agreement/lemma12.h"
#include "agreement/ordering.h"
#include "baselines/cas_structures.h"
#include "baselines/herlihy_wing_queue.h"
#include "sim/strategy.h"

namespace c2sl {
namespace {

using agreement::kUndecided;

std::vector<int64_t> inputs_for(int n) {
  std::vector<int64_t> in(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<size_t>(i)] = 100 + i;
  return in;
}

// ---------------------------------------------------------- classic protocols

TEST(Consensus, TasSolvesTwoProcessConsensus) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    sim::SimRun run(2);
    agreement::TasConsensus cons(run.world, "cons");
    std::vector<int64_t> decisions(2, kUndecided);
    for (int p = 0; p < 2; ++p) {
      run.sched.spawn(p, [&cons, &decisions, p](sim::Ctx& ctx) {
        decisions[static_cast<size_t>(p)] = cons.propose(ctx, 100 + p);
      });
    }
    sim::RandomStrategy strategy(seed);
    run.sched.run(strategy, 1000);
    ASSERT_TRUE(run.sched.all_done());
    auto check = agreement::validate_agreement(inputs_for(2), decisions, 1);
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.to_string();
  }
}

TEST(Consensus, CasSolvesNProcessConsensus) {
  for (int n : {2, 3, 5}) {
    for (uint64_t seed = 0; seed < 30; ++seed) {
      sim::SimRun run(n);
      agreement::CasConsensus cons(run.world, "cons");
      std::vector<int64_t> decisions(static_cast<size_t>(n), kUndecided);
      for (int p = 0; p < n; ++p) {
        run.sched.spawn(p, [&cons, &decisions, p](sim::Ctx& ctx) {
          decisions[static_cast<size_t>(p)] = cons.propose(ctx, 100 + p);
        });
      }
      sim::RandomStrategy strategy(seed);
      run.sched.run(strategy, 1000);
      ASSERT_TRUE(run.sched.all_done());
      auto check = agreement::validate_agreement(inputs_for(n), decisions, 1);
      EXPECT_TRUE(check.ok()) << "n=" << n << " seed=" << seed << ": "
                              << check.to_string();
    }
  }
}

// Queues have consensus number >= 2 (Herlihy): a pre-seeded queue + registers
// solve 2-process consensus — with EITHER queue implementation, since plain
// linearizability suffices for the direct protocol.
TEST(Consensus, QueueSolvesTwoProcessConsensus) {
  for (bool use_hw : {false, true}) {
    for (uint64_t seed = 0; seed < 40; ++seed) {
      sim::SimRun run(2);
      std::unique_ptr<core::ConcurrentObject> queue;
      if (use_hw) {
        queue = std::make_unique<baselines::HerlihyWingQueue>(run.world, "q");
      } else {
        queue = std::make_unique<baselines::CasQueue>(run.world, "q");
      }
      agreement::QueueConsensus cons(run.world, "cons", *queue);
      std::vector<int64_t> decisions(2, kUndecided);
      for (int p = 0; p < 2; ++p) {
        run.sched.spawn(p, [&cons, &decisions, p](sim::Ctx& ctx) {
          decisions[static_cast<size_t>(p)] = cons.propose(ctx, 100 + p);
        });
      }
      sim::RandomStrategy strategy(seed);
      run.sched.run(strategy, 5000);
      ASSERT_TRUE(run.sched.all_done());
      auto check = agreement::validate_agreement(inputs_for(2), decisions, 1);
      EXPECT_TRUE(check.ok()) << "hw=" << use_hw << " seed=" << seed << ": "
                              << check.to_string();
    }
  }
}

// ------------------------------------------- Lemma 12 positive: SL structures

TEST(Lemma12, ConsensusFromStronglyLinearizableQueue) {
  for (int n : {3, 4}) {
    auto ordering = agreement::queue_ordering(n);
    auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
      return std::make_unique<baselines::CasQueue>(w, "A");
    };
    for (uint64_t seed = 0; seed < 60; ++seed) {
      sim::RandomStrategy strategy(seed);
      auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                        /*max_steps=*/200000);
      ASSERT_TRUE(res.completed) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(res.check.ok()) << "n=" << n << " seed=" << seed << ": "
                                  << res.check.to_string();
      EXPECT_EQ(res.state.solo_budget_exhausted, 0);
    }
  }
}

TEST(Lemma12, ConsensusFromStronglyLinearizableStack) {
  const int n = 3;
  auto ordering = agreement::stack_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::CasStack>(w, "A");
  };
  for (uint64_t seed = 0; seed < 60; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/200000);
    ASSERT_TRUE(res.completed) << "seed=" << seed;
    EXPECT_TRUE(res.check.ok()) << "seed=" << seed << ": " << res.check.to_string();
  }
}

TEST(Lemma12, KSetAgreementFromKOutOfOrderQueue) {
  const int n = 4;
  const int k = 2;
  auto ordering = agreement::k_out_of_order_queue_ordering(n, k);
  auto make = [k](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::KOutOfOrderCasQueue>(w, "A", k);
  };
  int runs_with_two_values = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/200000);
    ASSERT_TRUE(res.completed) << "seed=" << seed;
    // k-agreement (never more than k distinct), validity, termination.
    EXPECT_TRUE(res.check.ok()) << "seed=" << seed << ": " << res.check.to_string();
    if (res.check.distinct == 2) ++runs_with_two_values;
  }
  // The relaxation is real: some executions use the full k-value allowance.
  EXPECT_GT(runs_with_two_values, 0);
}

TEST(Lemma12, AgreementFromStutteringQueue) {
  const int n = 3;
  const int m = 1;
  auto ordering = agreement::stuttering_queue_ordering(n, m);
  auto make = [m](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::StutteringCasQueue>(w, "A", m);
  };
  for (uint64_t seed = 0; seed < 60; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/200000);
    ASSERT_TRUE(res.completed) << "seed=" << seed;
    EXPECT_TRUE(res.check.ok()) << "seed=" << seed << ": " << res.check.to_string();
  }
}

TEST(Lemma12, AgreementFromMultiplicityQueueOrdering) {
  // Queues with multiplicity share the queue sequences (paper §5); run the
  // adapter against the exact SL queue as the sanity case.
  const int n = 3;
  auto ordering = agreement::multiplicity_queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::CasQueue>(w, "A");
  };
  for (uint64_t seed = 0; seed < 40; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/200000);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.check.ok()) << "seed=" << seed << ": " << res.check.to_string();
  }
}

// --------------------------------------- Lemma 12 negative: the HW queue case

// Over the merely-linearizable Herlihy–Wing queue, algorithm B must break:
// Lemma 12's proof needs strong linearizability, and Theorem 17 says no SL
// queue from these primitives exists. The failure mode is DISAGREEMENT —
// different processes' local simulations dequeue different "first" items
// (a claimed-but-unwritten slot is skipped by one snapshot and present in a
// later one). Termination and validity still hold.
TEST(Lemma12, HerlihyWingQueueViolatesAgreement) {
  const int n = 3;
  auto ordering = agreement::queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::HerlihyWingQueue>(w, "A");
  };
  int violations = 0;
  int total = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/400000);
    if (!res.completed) continue;
    ++total;
    EXPECT_TRUE(res.check.termination) << "seed=" << seed;
    EXPECT_TRUE(res.check.validity) << "seed=" << seed;
    if (!res.check.k_agreement) ++violations;
  }
  EXPECT_GT(total, 250);
  EXPECT_GT(violations, 0)
      << "expected agreement violations over the non-strongly-linearizable queue";
}

// Control for the violation test: the SAME schedules over the SL queue never
// disagree, so the violations above are attributable to the implementation,
// not to the harness.
TEST(Lemma12, SameSeedsNeverDisagreeOverSLQueue) {
  const int n = 3;
  auto ordering = agreement::queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<baselines::CasQueue>(w, "A");
  };
  for (uint64_t seed = 0; seed < 300; ++seed) {
    sim::RandomStrategy strategy(seed);
    auto res = agreement::run_lemma12(n, ordering, inputs_for(n), make, strategy,
                                      /*max_steps=*/400000);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.check.k_agreement) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace c2sl
