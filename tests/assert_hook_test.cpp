// The failure-hook contract (util/assert.h + telemetry/export.h): a failing
// C2SL_ASSERT must ship the per-lane flight rings to stderr before aborting,
// and the hook slot must survive the install/uninstall races its comment
// promises to tolerate (last installer wins; a dying owner never clobbers a
// successor's registration).
//
// The death tests fork (gtest "fast" style — each test file is its own
// single-threaded binary here, so forking is safe) and match the child's
// stderr: the dump header, the lane line, and the recorded ops must all be
// present — and must be ABSENT once the owning store has been destroyed,
// proving ~C2Store really disarms the hook rather than leaving a dangling
// context behind for the next assert to chase.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "service/c2store.h"
#include "telemetry/export.h"
#include "util/assert.h"

namespace c2sl {
namespace {

using ::testing::AllOf;
using ::testing::HasSubstr;
using ::testing::Not;

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 4;
  cfg.max_threads = 4;
  cfg.max_value = 15;
  cfg.tas_max_resets = 14;
  return cfg;
}

#if C2SL_TELEMETRY

TEST(AssertHookDeathTest, FailingAssertDumpsFlightRings) {
  EXPECT_DEATH(
      {
        svc::C2Store store(small_config());
        svc::C2Session s = store.open_session();
        svc::MaxRef mx = s.max(uint64_t{1});
        for (int i = 0; i < 3; ++i) mx.write(i);
        s.counter(uint64_t{2}).inc();
        C2SL_ASSERT(false && "deliberate: flight ring must ship with this");
      },
      AllOf(HasSubstr("c2sl assertion failed"),
            HasSubstr("c2sl flight recorder"), HasSubstr("lane 0"),
            HasSubstr("session_open"), HasSubstr("max_write"),
            HasSubstr("counter_inc")));
}

TEST(AssertHookDeathTest, DumpCarriesOpArguments) {
  // The ring stores the written value; the dump must render it, not just the
  // op name — that is what makes a post-mortem actionable.
  EXPECT_DEATH(
      {
        svc::C2Store store(small_config());
        svc::C2Session s = store.open_session();
        s.max(uint64_t{1}).write(13);
        C2SL_ASSERT(false);
      },
      AllOf(HasSubstr("max_write"), HasSubstr("arg=13")));
}

TEST(AssertHookDeathTest, SnapshotAndTransferRideTheFlightRing) {
  // The snapshot surface is instrumented like every other session op: a
  // transfer records its amount, a snapshot records its key count. Both must
  // land in the post-mortem dump — a conservation-check C2SL_CHECK firing
  // under the transfer_audit workload is exactly when this dump is read.
  EXPECT_DEATH(
      {
        svc::C2Store store(small_config());
        svc::C2Session s = store.open_session();
        s.transfer(uint64_t{1}, uint64_t{2}, 5);
        s.snapshot_counters({uint64_t{1}, uint64_t{2}, uint64_t{3}});
        C2SL_ASSERT(false && "deliberate: snapshot ops must ship with this");
      },
      AllOf(HasSubstr("c2sl flight recorder"), HasSubstr("transfer"),
            HasSubstr("arg=5"), HasSubstr("snapshot"), HasSubstr("arg=3")));
}

TEST(AssertHookDeathTest, DestroyedStoreDisarmsTheDump) {
  EXPECT_DEATH(
      {
        {
          svc::C2Store store(small_config());
          svc::C2Session s = store.open_session();
          s.max(uint64_t{1}).write(7);
        }  // ~C2Store runs uninstall_flight_dump_on_assert
        C2SL_ASSERT(false && "no store alive: assert must not dump");
      },
      AllOf(HasSubstr("c2sl assertion failed"),
            Not(HasSubstr("c2sl flight recorder"))));
}

TEST(AssertHookDeathTest, LastInstallerWinsAcrossTwoStores) {
  // Two live stores: the younger one owns the hook. Ops recorded on the
  // OLDER store's lanes must not appear (its rings are not the dump target),
  // while the younger store's ops must.
  EXPECT_DEATH(
      {
        svc::C2Store older(small_config());
        {
          svc::C2Session s = older.open_session();
          s.max(uint64_t{1}).write(1);
        }
        svc::C2Store younger(small_config());
        svc::C2Session s = younger.open_session();
        s.counter(uint64_t{9}).inc();
        C2SL_ASSERT(false);
      },
      AllOf(HasSubstr("c2sl flight recorder"), HasSubstr("counter_inc"),
            Not(HasSubstr("max_write"))));
}

#endif  // C2SL_TELEMETRY

// --- hook slot semantics (no forking needed) --------------------------------

void hook_a(void*) {}
void hook_b(void*) {}

struct SlotGuard {  // leave the process-wide slot clean for other tests
  ~SlotGuard() {
    failure_hook().fn.store(nullptr, std::memory_order_relaxed);
    failure_hook().ctx.store(nullptr, std::memory_order_relaxed);
  }
};

TEST(FailureHookSlot, SetPublishesFnAndCtx) {
  SlotGuard guard;
  int ctx = 0;
  set_failure_hook(&hook_a, &ctx);
  EXPECT_EQ(failure_hook().fn.load(std::memory_order_acquire), &hook_a);
  EXPECT_EQ(failure_hook().ctx.load(std::memory_order_relaxed), &ctx);
}

TEST(FailureHookSlot, ClearOnlyWhenCtxMatches) {
  SlotGuard guard;
  int mine = 0, other = 0;
  set_failure_hook(&hook_a, &mine);
  clear_failure_hook(&other);  // wrong owner: must be a no-op
  EXPECT_EQ(failure_hook().fn.load(std::memory_order_acquire), &hook_a);
  clear_failure_hook(&mine);
  EXPECT_EQ(failure_hook().fn.load(std::memory_order_acquire), nullptr);
  EXPECT_EQ(failure_hook().ctx.load(std::memory_order_relaxed), nullptr);
}

TEST(FailureHookSlot, DyingOwnerNeverClobbersSuccessor) {
  SlotGuard guard;
  int first = 0, second = 0;
  set_failure_hook(&hook_a, &first);
  set_failure_hook(&hook_b, &second);  // last installer wins
  clear_failure_hook(&first);          // first owner dies late
  EXPECT_EQ(failure_hook().fn.load(std::memory_order_acquire), &hook_b);
  EXPECT_EQ(failure_hook().ctx.load(std::memory_order_relaxed), &second);
}

}  // namespace
}  // namespace c2sl
