// Baseline implementations: the Herlihy–Wing queue and the CAS structures are
// linearizable under random schedules; the naive register max register is NOT
// linearizable and the checker produces the counterexample (a regression test
// for the tooling's bug-finding ability).
#include <gtest/gtest.h>

#include "baselines/cas_structures.h"
#include "baselines/herlihy_wing_queue.h"
#include "baselines/naive_max_register.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using testing::ObjectFactory;
using testing::OpGen;
using testing::WorkloadOptions;
using verify::Invocation;

TEST(HerlihyWingQueue, SequentialFifo) {
  sim::World world;
  baselines::HerlihyWingQueue q(world, "q");
  sim::Ctx solo;
  solo.world = &world;
  q.enq(solo, 1);
  q.enq(solo, 2);
  q.enq(solo, 3);
  EXPECT_EQ(q.deq(solo), num(1));
  EXPECT_EQ(q.deq(solo), num(2));
  q.enq(solo, 4);
  EXPECT_EQ(q.deq(solo), num(3));
  EXPECT_EQ(q.deq(solo), num(4));
}

TEST(HerlihyWingQueue, LinearizableUnderRandomSchedules) {
  verify::QueueSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::HerlihyWingQueue>(w, "queue");
  };
  // Keep deqs <= enqs per process so the partial deq always terminates.
  OpGen gen = [](int proc, int j, Rng&) {
    if (j % 2 == 0) return Invocation{"Enq", num(proc * 10 + j), -1};
    return Invocation{"Deq", unit(), -1};
  };
  for (int n : {2, 3, 4}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 4;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "queue")) << n;
  }
}

TEST(HerlihyWingQueue, EnqIsTwoStepsWaitFree) {
  sim::SimRun run(3);
  auto q = std::make_shared<baselines::HerlihyWingQueue>(run.world, "q");
  std::vector<uint64_t> enq_steps;
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [q, p, &enq_steps](sim::Ctx& ctx) {
      for (int j = 0; j < 4; ++j) {
        uint64_t before = ctx.steps_taken;
        q->enq(ctx, p * 10 + j);
        enq_steps.push_back(ctx.steps_taken - before);
      }
    });
  }
  sim::RandomStrategy strategy(9);
  run.sched.run(strategy, 10000);
  for (uint64_t s : enq_steps) EXPECT_EQ(s, 2u);
}

TEST(CasQueue, LinearizableUnderRandomSchedules) {
  verify::QueueSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::CasQueue>(w, "queue");
  };
  OpGen gen = [](int proc, int j, Rng& rng) {
    if (rng.next_bool(0.6)) return Invocation{"Enq", num(proc * 10 + j), -1};
    return Invocation{"Deq", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 4;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "queue"));
}

TEST(CasStack, LinearizableUnderRandomSchedules) {
  verify::StackSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::CasStack>(w, "stack");
  };
  OpGen gen = [](int proc, int j, Rng& rng) {
    if (rng.next_bool(0.6)) return Invocation{"Push", num(proc * 10 + j), -1};
    return Invocation{"Pop", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 4;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "stack"));
}

TEST(KOutOfOrderCasQueue, RespectsItsRelaxedSpec) {
  const int k = 2;
  verify::QueueSpec relaxed(k);
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::KOutOfOrderCasQueue>(w, "queue", 2);
  };
  OpGen gen = [](int proc, int j, Rng&) {
    if (j % 2 == 0) return Invocation{"Enq", num(proc * 10 + j), -1};
    return Invocation{"Deq", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 4;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, relaxed, opts, 40, "queue"));
}

TEST(KOutOfOrderCasQueue, ActuallyReordersSometimes) {
  // Differential evidence that the relaxation is exercised: the k=2 queue's
  // behaviour deviates from the exact FIFO spec in at least one execution.
  verify::QueueSpec exact(1);
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::KOutOfOrderCasQueue>(w, "queue", 2);
  };
  OpGen gen = [](int proc, int j, Rng&) {
    if (j % 2 == 0) return Invocation{"Enq", num(proc * 10 + j), -1};
    return Invocation{"Deq", unit(), -1};
  };
  int violations_of_exact_fifo = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions opts;
    opts.n = 3;
    opts.ops_per_proc = 4;
    opts.seed = seed;
    auto r = testing::run_random_workload(factory, gen, opts);
    auto lin = verify::check_object_linearizability(r.ops, "queue", exact);
    if (lin.decided && !lin.linearizable) ++violations_of_exact_fifo;
  }
  EXPECT_GT(violations_of_exact_fifo, 0);
}

TEST(StutteringCasQueue, RespectsItsRelaxedSpec) {
  const int m = 1;
  verify::StutteringQueueSpec spec(m);
  ObjectFactory factory = [m](sim::World& w, int) {
    return std::make_shared<baselines::StutteringCasQueue>(w, "queue", m);
  };
  OpGen gen = [](int proc, int j, Rng&) {
    if (j % 2 == 0) return Invocation{"Enq", num(proc * 10 + j), -1};
    return Invocation{"Deq", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 4;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "queue"));
}

// The tooling catches real bugs: the naive register-based max register is not
// linearizable, and random-schedule sweeps find a concrete counterexample.
TEST(NaiveMaxRegister, CheckerFindsNonLinearizable) {
  verify::MaxRegisterSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<baselines::NaiveRWMaxRegister>(w, "maxreg");
  };
  OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.6) ? Invocation{"WriteMax", num(rng.next_in(0, 15)), -1}
                              : Invocation{"ReadMax", unit(), -1};
  };
  int counterexamples = 0;
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    WorkloadOptions opts;
    opts.n = 3;
    opts.ops_per_proc = 3;
    opts.seed = seed;
    auto r = testing::run_random_workload(factory, gen, opts);
    auto lin = verify::check_object_linearizability(r.ops, "maxreg", spec);
    if (lin.decided && !lin.linearizable) ++counterexamples;
  }
  EXPECT_GT(counterexamples, 0);
}

}  // namespace
}  // namespace c2sl
