// Unit and property tests for util/BigInt — the arithmetic substrate of the
// §3 fetch&add constructions. Correct exact add/sub is what makes
// "fetch&add(posAdj - negAdj) flips exactly the intended bits" true.
#include "util/bigint.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace c2sl {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.to_i64(), 0);
  EXPECT_EQ(z.to_hex(), "0x0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
}

TEST(BigInt, SmallValuesRoundTrip) {
  for (int64_t v : {0L, 1L, -1L, 42L, -42L, 1000000007L, -999999937L}) {
    BigInt b(v);
    EXPECT_EQ(b.to_i64(), v) << v;
    EXPECT_EQ(b.to_dec(), std::to_string(v)) << v;
  }
}

TEST(BigInt, Int64MinMaxRoundTrip) {
  BigInt lo(INT64_MIN);
  BigInt hi(INT64_MAX);
  EXPECT_EQ(lo.to_i64(), INT64_MIN);
  EXPECT_EQ(hi.to_i64(), INT64_MAX);
  EXPECT_LT(lo, hi);
}

TEST(BigInt, Pow2) {
  EXPECT_EQ(BigInt::pow2(0).to_u64(), 1u);
  EXPECT_EQ(BigInt::pow2(10).to_u64(), 1024u);
  EXPECT_EQ(BigInt::pow2(63).to_u64(), uint64_t{1} << 63);
  BigInt big = BigInt::pow2(200);
  EXPECT_EQ(big.bit_length(), 201u);
  EXPECT_EQ(big.popcount(), 1u);
  EXPECT_TRUE(big.bit(200));
  EXPECT_FALSE(big.bit(199));
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_u64(UINT64_MAX);
  BigInt b = a + BigInt(1);
  EXPECT_EQ(b, BigInt::pow2(64));
  EXPECT_EQ((b - BigInt(1)), a);
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  BigInt a = BigInt::pow2(128);
  BigInt b = a - BigInt(1);
  EXPECT_EQ(b.bit_length(), 128u);
  EXPECT_EQ(b.popcount(), 128u);
  EXPECT_EQ(b + BigInt(1), a);
}

TEST(BigInt, SignedArithmetic) {
  BigInt a(100);
  BigInt b(-250);
  EXPECT_EQ((a + b).to_i64(), -150);
  EXPECT_EQ((b + a).to_i64(), -150);
  EXPECT_EQ((a - b).to_i64(), 350);
  EXPECT_EQ((b - a).to_i64(), -350);
  EXPECT_EQ((-a).to_i64(), -100);
  EXPECT_EQ((a + (-a)).to_i64(), 0);
}

TEST(BigInt, Multiplication) {
  EXPECT_EQ((BigInt(12345) * BigInt(6789)).to_i64(), 12345LL * 6789);
  EXPECT_EQ((BigInt(-3) * BigInt(7)).to_i64(), -21);
  EXPECT_EQ((BigInt(-3) * BigInt(-7)).to_i64(), 21);
  EXPECT_TRUE((BigInt(0) * BigInt(123456)).is_zero());
  // (2^64)^2 == 2^128
  EXPECT_EQ(BigInt::pow2(64) * BigInt::pow2(64), BigInt::pow2(128));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::pow2(100), BigInt::pow2(99));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LT(BigInt(), BigInt(1));
  EXPECT_GT(BigInt(), BigInt(-1));
}

TEST(BigInt, BitSetAndClear) {
  BigInt b;
  b.set_bit(5, true);
  b.set_bit(70, true);
  EXPECT_TRUE(b.bit(5));
  EXPECT_TRUE(b.bit(70));
  EXPECT_FALSE(b.bit(6));
  EXPECT_EQ(b.popcount(), 2u);
  b.set_bit(70, false);
  EXPECT_FALSE(b.bit(70));
  EXPECT_EQ(b.bit_length(), 6u);
  b.set_bit(5, false);
  EXPECT_TRUE(b.is_zero());
}

TEST(BigInt, Shifts) {
  BigInt b(0b1011);
  EXPECT_EQ(b.shifted_left(3).to_i64(), 0b1011000);
  EXPECT_EQ(b.shifted_right(2).to_i64(), 0b10);
  EXPECT_EQ(b.shifted_right(10).to_i64(), 0);
  EXPECT_EQ(BigInt(1).shifted_left(100), BigInt::pow2(100));
  EXPECT_EQ(BigInt::pow2(100).shifted_right(100).to_i64(), 1);
  // shift by multiples of the limb size
  EXPECT_EQ(BigInt(5).shifted_left(64).shifted_right(64).to_i64(), 5);
}

TEST(BigInt, HexRoundTrip) {
  for (const char* s : {"0x0", "0x1", "0xdeadbeef", "-0xff", "0x123456789abcdef0123456789"}) {
    BigInt b = BigInt::from_hex(s);
    EXPECT_EQ(b.to_hex(), s);
  }
  EXPECT_EQ(BigInt::from_hex("0X1F").to_i64(), 31);
  EXPECT_EQ(BigInt::from_hex("ff").to_i64(), 255);
}

TEST(BigInt, DecRoundTrip) {
  for (const char* s :
       {"0", "7", "-7", "18446744073709551616",  // 2^64
        "340282366920938463463374607431768211456",  // 2^128
        "-99999999999999999999999999999999"}) {
    BigInt b = BigInt::from_dec(s);
    EXPECT_EQ(b.to_dec(), s);
  }
}

TEST(BigInt, HashDiffersForDifferentValues) {
  EXPECT_NE(BigInt(1).hash(), BigInt(2).hash());
  EXPECT_NE(BigInt(1).hash(), BigInt(-1).hash());
  EXPECT_EQ(BigInt(42).hash(), BigInt(42).hash());
}

// Property: add/sub agree with int64 arithmetic on random small values.
TEST(BigIntProperty, MatchesInt64Arithmetic) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    int64_t x = rng.next_in(-1000000, 1000000);
    int64_t y = rng.next_in(-1000000, 1000000);
    EXPECT_EQ((BigInt(x) + BigInt(y)).to_i64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).to_i64(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).to_i64(), x * y);
    EXPECT_EQ(BigInt(x) < BigInt(y), x < y);
  }
}

// Property: (a + b) - b == a on random multi-limb values.
TEST(BigIntProperty, AddSubInverse) {
  Rng rng(13);
  for (int iter = 0; iter < 500; ++iter) {
    BigInt a;
    BigInt b;
    for (int bits = 0; bits < 5; ++bits) {
      a.set_bit(rng.next_below(300), true);
      b.set_bit(rng.next_below(300), true);
    }
    if (rng.next_bool()) a = -a;
    if (rng.next_bool()) b = -b;
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
    EXPECT_EQ(a + b, b + a);
  }
}

// Property: setting a clear bit == adding 2^bit; clearing a set bit ==
// subtracting 2^bit. This is exactly the §3.2 posAdj/negAdj reasoning.
TEST(BigIntProperty, BitFlipEqualsAddSub) {
  Rng rng(21);
  for (int iter = 0; iter < 500; ++iter) {
    BigInt a;
    for (int bits = 0; bits < 8; ++bits) a.set_bit(rng.next_below(200), true);
    uint64_t bit = rng.next_below(200);
    BigInt flipped = a;
    if (a.bit(bit)) {
      flipped.set_bit(bit, false);
      EXPECT_EQ(a - BigInt::pow2(bit), flipped);
    } else {
      flipped.set_bit(bit, true);
      EXPECT_EQ(a + BigInt::pow2(bit), flipped);
    }
  }
}

TEST(BigInt, OutOfRangeConversionsThrow) {
  EXPECT_THROW(BigInt::pow2(64).to_u64(), PreconditionError);
  EXPECT_THROW(BigInt::pow2(63).to_i64(), PreconditionError);
  EXPECT_THROW(BigInt(-1).to_u64(), PreconditionError);
  EXPECT_NO_THROW((-BigInt::pow2(63)).to_i64());  // INT64_MIN is representable
}

}  // namespace
}  // namespace c2sl
