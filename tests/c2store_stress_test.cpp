// Multi-threaded stress tests (TSAN targets) for the C2Store service layer
// and its native-runtime foundations: lazy-init races, session/ref routing
// under contention, NativeSet put/take, and NativeFetchIncrement. All seeds
// are deterministic; volumes are sized to stay fast under ThreadSanitizer.
//
// Worker threads address the store through per-thread C2Sessions (opened up
// front, one lane each) and typed key-bound refs, mirroring how a real client
// would hold handles across ops.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <vector>

#include "runtime/native_tas_family.h"
#include "runtime/stress.h"
#include "service/c2store.h"
#include "util/rng.h"

namespace c2sl {
namespace {

svc::C2StoreConfig stress_config(int threads) {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = threads;
  cfg.max_value = 63 / threads;
  cfg.tas_max_resets = 63 / threads - 1;
  return cfg;
}

/// One session per worker thread, opened before the threads start.
std::vector<svc::C2Session> open_sessions(svc::C2Store& store, int threads) {
  std::vector<svc::C2Session> out;
  out.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) out.push_back(store.open_session());
  return out;
}

// All threads race to initialise the SAME fresh shard on their very first
// operation; the readable-TAS guard must produce exactly one object (checked
// indirectly: fetch&increment results are globally distinct and dense).
TEST(C2StoreStress, LazyInitRaceOnOneShard) {
  const int threads = 4;
  const int per_thread = 50;
  for (int round = 0; round < 20; ++round) {
    svc::C2Store store(stress_config(threads));
    const uint64_t hot_key = static_cast<uint64_t>(round);
    auto sessions = open_sessions(store, threads);
    // One bound ref per thread: all refs race to materialise the same shard.
    std::vector<svc::CounterRef> ctr;
    for (int t = 0; t < threads; ++t) ctr.push_back(sessions[static_cast<size_t>(t)].counter(hot_key));
    std::vector<std::vector<int64_t>> got(static_cast<size_t>(threads));
    rt::run_stress(threads, per_thread, [&](int t, int) {
      rt::TimedOp op;
      got[static_cast<size_t>(t)].push_back(ctr[static_cast<size_t>(t)].inc());
      return op;
    });
    std::set<int64_t> all;
    for (const auto& v : got) {
      for (int64_t x : v) {
        EXPECT_TRUE(all.insert(x).second) << "duplicate counter value " << x;
      }
    }
    ASSERT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
    EXPECT_EQ(*all.rbegin(), threads * per_thread - 1) << "values must be dense";
    EXPECT_EQ(sessions[0].counter_read(hot_key), threads * per_thread);
  }
}

// Threads hammer distinct fresh keys concurrently — many shards initialise in
// parallel while others are already serving.
TEST(C2StoreStress, ConcurrentInitAcrossShards) {
  const int threads = 4;
  const int per_thread = 100;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& session = sessions[static_cast<size_t>(t)];
    uint64_t key = static_cast<uint64_t>(t * per_thread + j);
    session.counter_inc(key);
    session.max_write(key, (t + j) % (63 / threads));
    return op;
  });
  EXPECT_EQ(store.counter_sum(), threads * per_thread);
  EXPECT_EQ(store.initialized_shards(), store.shard_count());
}

TEST(C2StoreStress, CounterSumConservation) {
  const int threads = 4;
  const int per_thread = 250;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(900 + t);
  rt::run_stress(threads, per_thread, [&](int t, int) {
    rt::TimedOp op;
    sessions[static_cast<size_t>(t)].counter_inc(rngs[static_cast<size_t>(t)].next_below(64));
    return op;
  });
  EXPECT_EQ(store.counter_sum(), threads * per_thread);
}

// counter_sum() digest reads racing counter_add traffic: per observer thread
// the sum must be monotone (the digest word only grows) and never exceed the
// number of incs started; at quiescence digest, scan and per-lane components
// must all agree. (TSAN watches the digest word and the per-lane cells.)
TEST(C2StoreStress, CounterSumDigestMonotoneUnderConcurrentAdds) {
  const int threads = 4;
  const int per_thread = 300;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  std::atomic<bool> ok{true};
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(4200 + t);
  std::vector<int64_t> last_seen(static_cast<size_t>(threads), 0);
  const int64_t inc_threads = threads - 1;  // thread 0 only reads
  rt::run_stress(threads, per_thread, [&](int t, int) {
    rt::TimedOp op;
    if (t == 0) {
      int64_t sum = store.counter_sum();
      if (sum < last_seen[0] || sum > inc_threads * per_thread) ok.store(false);
      last_seen[0] = sum;
    } else {
      sessions[static_cast<size_t>(t)].counter_inc(
          rngs[static_cast<size_t>(t)].next_below(64));
    }
    return op;
  });
  EXPECT_TRUE(ok.load()) << "digest read non-monotone or out of bounds";
  EXPECT_EQ(store.counter_sum(), inc_threads * per_thread);
  EXPECT_EQ(store.counter_sum_scan(), inc_threads * per_thread);
  int64_t lanes_total = 0;
  for (int l = 0; l < store.config().max_threads; ++l) {
    lanes_total += store.lane_counter_adds(l);
  }
  EXPECT_EQ(lanes_total, inc_threads * per_thread)
      << "per-lane components must telescope to the digest total";
}

// The bounded scans under SUSTAINED writers: before the kScanRetryRounds
// bound, a write landing during every collect round could livelock the
// double-collect loop forever. Scanner threads hammer counter_sum_scan() and
// global_max_scan() while writers never pause; every scan must return (bound
// or stabilise) and respect the global bounds. (No cross-call monotonicity
// check here: a stabilised scan linearizes on the shard-counter facet while
// the fallback reads the digest facet, and the documented cross-facet lag
// makes a mixed sequence legitimately non-monotone.)
TEST(C2StoreStress, BoundedScansUnderSustainedWriters) {
  const int threads = 4;
  const int per_thread = 400;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const int64_t max_bound = 63 / threads;
  std::atomic<bool> ok{true};
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(5300 + t);
  const int64_t inc_threads = threads - 2;  // threads 0,1 scan; 2,3 write
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    if (t == 0 || (t == 1 && j % 2 == 0)) {
      int64_t sum = store.counter_sum_scan();
      if (sum < 0 || sum > inc_threads * per_thread) ok.store(false);
    } else if (t == 1) {
      int64_t m = store.global_max_scan();
      if (m < 0 || m > max_bound) ok.store(false);
    } else {
      auto& session = sessions[static_cast<size_t>(t)];
      auto& rng = rngs[static_cast<size_t>(t)];
      session.counter_inc(rng.next_below(64));
      session.max_write(rng.next_below(64), rng.next_in(0, max_bound));
    }
    return op;
  });
  EXPECT_TRUE(ok.load()) << "a scan returned a non-linearizable value";
  EXPECT_EQ(store.counter_sum(), inc_threads * per_thread);
  EXPECT_EQ(store.counter_sum_scan(), inc_threads * per_thread)
      << "quiesced scan must stabilise on its first two collects";
}

// global_max read concurrently with writes must never exceed the largest value
// written so far and must be monotone per observer thread.
TEST(C2StoreStress, GlobalMaxBoundedAndMonotone) {
  const int threads = 4;
  const int per_thread = 200;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const int64_t bound = 63 / threads;
  std::atomic<bool> ok{true};
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(1700 + t);
  std::vector<int64_t> last_seen(static_cast<size_t>(threads), 0);
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& rng = rngs[static_cast<size_t>(t)];
    if (j % 3 == 0) {
      sessions[static_cast<size_t>(t)].max_write(rng.next_below(64), rng.next_in(0, bound));
    } else {
      int64_t m = store.global_max();
      if (m < last_seen[static_cast<size_t>(t)] || m > bound) ok.store(false);
      last_seen[static_cast<size_t>(t)] = m;
    }
    return op;
  });
  EXPECT_TRUE(ok.load());
}

// Set operations through the routing layer: items are never taken twice, and
// after a full drain everything put was either taken or still drainable.
TEST(C2StoreStress, SetConservationThroughRouting) {
  const int threads = 4;
  const int per_thread = 150;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(7100 + t);
  std::vector<std::vector<int64_t>> put(static_cast<size_t>(threads));
  std::vector<std::vector<int64_t>> taken(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& rng = rngs[static_cast<size_t>(t)];
    uint64_t key = rng.next_below(16);
    if (j % 2 == 0) {
      int64_t item = static_cast<int64_t>(t) * 1000000 + j;
      sessions[static_cast<size_t>(t)].set_put(key, item);
      put[static_cast<size_t>(t)].push_back(item);
    } else {
      int64_t got = sessions[static_cast<size_t>(t)].set_take(key);
      if (got != svc::C2Store::kEmpty) taken[static_cast<size_t>(t)].push_back(got);
    }
    return op;
  });
  std::set<int64_t> all_put, all_taken;
  for (const auto& v : put) all_put.insert(v.begin(), v.end());
  for (const auto& v : taken) {
    for (int64_t x : v) {
      EXPECT_TRUE(all_taken.insert(x).second) << "item taken twice: " << x;
      EXPECT_TRUE(all_put.count(x)) << "item " << x << " never put";
    }
  }
  // Drain: everything not yet taken must still be reachable via its key.
  for (uint64_t key = 0; key < 16; ++key) {
    for (;;) {
      int64_t got = sessions[0].set_take(key);
      if (got == svc::C2Store::kEmpty) break;
      EXPECT_TRUE(all_taken.insert(got).second) << "item taken twice in drain";
      EXPECT_TRUE(all_put.count(got));
    }
  }
  EXPECT_EQ(all_taken, all_put);
}

// TAS through routing: per key, at most one winner per generation; resets
// are issued by a single thread (the budget gate is advisory under races).
TEST(C2StoreStress, TasSingleWinnerPerKey) {
  const int threads = 4;
  for (int round = 0; round < 20; ++round) {
    svc::C2Store store(stress_config(threads));
    const uint64_t key = static_cast<uint64_t>(round);
    auto sessions = open_sessions(store, threads);
    std::vector<svc::TasRef> tas;
    for (int t = 0; t < threads; ++t) tas.push_back(sessions[static_cast<size_t>(t)].tas(key));
    std::atomic<int> winners{0};
    rt::run_stress(threads, 1, [&](int t, int) {
      rt::TimedOp op;
      if (tas[static_cast<size_t>(t)].test_and_set() == 0) winners.fetch_add(1);
      return op;
    });
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(sessions[0].tas_read(key), 1);
  }
}

// Session churn: threads open/close sessions mid-stream (dynamic join/leave).
// Lanes must stay exclusive — two live sessions never share one — and every
// open must succeed because at most `threads` <= max_threads sessions are
// ever live at once.
TEST(C2StoreStress, SessionChurnKeepsLanesExclusive) {
  const int threads = 4;
  const int per_thread = 200;
  svc::C2Store store(stress_config(threads));
  std::vector<svc::C2Session> sessions(static_cast<size_t>(threads));
  std::vector<std::vector<int64_t>> got(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& session = sessions[static_cast<size_t>(t)];
    if (!session.valid()) session = store.open_session();
    got[static_cast<size_t>(t)].push_back(session.counter_inc(uint64_t{77}));
    if (j % 17 == t) session.close();  // leave; rejoin on the next op
    return op;
  });
  // Counter values are handed out by a shared F&I: if two sessions ever
  // shared state illegally we'd see duplicates.
  std::set<int64_t> all;
  for (const auto& v : got) {
    for (int64_t x : v) {
      EXPECT_TRUE(all.insert(x).second) << "duplicate counter value " << x;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
}

// --- blocking session acquisition (waiters vs closers) ----------------------

// More threads than lanes, every open blocking: each worker churns
// open_session (parks under full-lane contention) -> inc -> close (hands the
// lane to the queue head). Checks: counter conservation (no op lost), lane
// exclusivity, and the no-busy-spin bounds — every park is one enqueued
// ticket, and tickets exceed blocking opens only by revocation retries.
TEST(C2StoreStress, BlockingOpensUnderLaneStarvation) {
  const int threads = 6;
  const int per_thread = 400;
  const int lanes = 2;  // threads > lanes: sustained handoff contention
  svc::C2StoreConfig cfg = stress_config(lanes);
  svc::C2Store store(cfg);
  std::vector<std::atomic<int>> owner_flag(static_cast<size_t>(lanes));
  for (auto& f : owner_flag) f.store(0);
  std::atomic<bool> ok{true};
  rt::run_stress(threads, per_thread, [&](int, int) {
    rt::TimedOp op;
    svc::C2Session s = store.open_session();  // blocks; never fails
    int lane = s.lane();
    if (owner_flag[static_cast<size_t>(lane)].exchange(1) != 0) {
      ok.store(false);  // two live sessions shared a lane
    }
    s.counter_inc(uint64_t{3});
    // Yield WHILE holding the lane: on timesliced hosts this hands the core
    // to a thread that must then block, so the handoff path is really
    // exercised (without it, a 1-core run can serve every open from the free
    // set and the contention this test exists for never happens).
    std::this_thread::yield();
    owner_flag[static_cast<size_t>(lane)].store(0);
    return op;  // RAII close: the lane is handed to the oldest waiter
  });
  EXPECT_TRUE(ok.load()) << "a lane was held by two sessions at once";
  svc::C2Session audit = store.open_session();
  EXPECT_EQ(audit.counter_read(uint64_t{3}),
            static_cast<int64_t>(threads) * per_thread)
      << "every blocking open must have produced exactly one op";
  EXPECT_LE(store.lane_tickets_issued(), lanes);
  // No busy-spin: parks are bounded by enqueued tickets, and tickets exceed
  // the number of opens only by revocation retries (each retry is caused by
  // one overshot handoff). These are structural bounds of the cell protocol,
  // not tuning assumptions.
  const int64_t opens = static_cast<int64_t>(threads) * per_thread;
  EXPECT_LE(store.lane_handoff_parks(), store.lane_handoff_enqueued());
  EXPECT_LE(store.lane_handoff_enqueued(),
            opens + store.lane_handoff_revocations());
  // Contention really exercised the queue: most opens could not be satisfied
  // from the free set alone.
  EXPECT_GT(store.lane_handoff_deliveries(), 0);
}

// Timed opens racing closers: waiters that time out must tombstone their slot
// without swallowing any lane, and a lane handed over in the cancellation
// window must be kept (the session comes back valid), never dropped. The
// audit: every lane is recoverable at quiescence.
TEST(C2StoreStress, TimedOpensNeverLeakLanes) {
  const int threads = 6;
  const int per_thread = 300;
  const int lanes = 2;
  svc::C2StoreConfig cfg = stress_config(lanes);
  svc::C2Store store(cfg);
  std::atomic<int64_t> timeouts{0};
  std::atomic<int64_t> served{0};
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    // A mix of patient and impatient opens; impatient deadlines are short
    // enough to fire for real under 3x oversubscription.
    auto timeout = (t % 2 == 0) ? std::chrono::nanoseconds(std::chrono::microseconds(
                                      (t + j) % 3 == 0 ? 1 : 50))
                                : std::chrono::nanoseconds(std::chrono::milliseconds(100));
    svc::C2Session s = store.open_session_for(timeout);
    if (s.valid()) {
      served.fetch_add(1);
      s.counter_inc(uint64_t{9});
    } else {
      timeouts.fetch_add(1);
    }
    return op;
  });
  // Quiescence: every lane must be recoverable — nothing leaked into dead
  // (cancelled or revoked) handoff slots.
  std::vector<svc::C2Session> all;
  for (int i = 0; i < lanes; ++i) {
    svc::C2Session s = store.open_session_for(std::chrono::seconds(5));
    ASSERT_TRUE(s.valid()) << "lane " << i << " leaked during timeout churn";
    all.push_back(std::move(s));
  }
  EXPECT_FALSE(store.try_open_session().valid());
  svc::C2Session& audit = all.front();
  EXPECT_EQ(audit.counter_read(uint64_t{9}), served.load())
      << "served opens and counted ops must agree";
}

// --- native-runtime foundations at higher contention -----------------------

TEST(NativeSetStress, InterleavedPutTakeNoDuplicates) {
  const int threads = 4;
  const int per_thread = 300;
  for (int round = 0; round < 4; ++round) {
    rt::NativeSet set;
    std::vector<std::vector<int64_t>> put(static_cast<size_t>(threads));
    std::vector<std::vector<int64_t>> taken(static_cast<size_t>(threads));
    rt::run_stress(threads, per_thread, [&](int t, int j) {
      rt::TimedOp op;
      if (j % 3 != 2) {
        int64_t item = (static_cast<int64_t>(round) << 40) + t * 1000000 + j;
        set.put(item);
        put[static_cast<size_t>(t)].push_back(item);
      } else {
        int64_t got = set.take();
        if (got != rt::NativeSet::kEmpty) taken[static_cast<size_t>(t)].push_back(got);
      }
      return op;
    });
    std::set<int64_t> all_put, all_taken;
    for (const auto& v : put) all_put.insert(v.begin(), v.end());
    for (const auto& v : taken) {
      for (int64_t x : v) {
        ASSERT_TRUE(all_taken.insert(x).second) << "taken twice: " << x;
        ASSERT_TRUE(all_put.count(x));
      }
    }
    for (;;) {
      int64_t got = set.take();
      if (got == rt::NativeSet::kEmpty) break;
      ASSERT_TRUE(all_taken.insert(got).second);
    }
    EXPECT_EQ(all_taken, all_put) << "set must conserve items";
  }
}

// Put/take churn that repeatedly crosses segment doublings (64, 192, 448,
// 960 cells) while the verified-taken-prefix hint is being published and
// consumed concurrently: conservation must hold through every growth step.
TEST(NativeSetStress, PutTakeAcrossSegmentGrowth) {
  const int threads = 4;
  const int per_thread = 400;  // ~1070 puts: four segment doublings
  rt::NativeSet set;
  std::vector<std::vector<int64_t>> put(static_cast<size_t>(threads));
  std::vector<std::vector<int64_t>> taken(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    if (j % 3 != 2) {
      int64_t item = t * 1000000 + j;
      set.put(item);
      put[static_cast<size_t>(t)].push_back(item);
    } else {
      int64_t got = set.take();
      if (got != rt::NativeSet::kEmpty) taken[static_cast<size_t>(t)].push_back(got);
    }
    return op;
  });
  std::set<int64_t> all_put, all_taken;
  for (const auto& v : put) all_put.insert(v.begin(), v.end());
  for (const auto& v : taken) {
    for (int64_t x : v) {
      ASSERT_TRUE(all_taken.insert(x).second) << "taken twice: " << x;
      ASSERT_TRUE(all_put.count(x));
    }
  }
  for (;;) {
    int64_t got = set.take();
    if (got == rt::NativeSet::kEmpty) break;
    ASSERT_TRUE(all_taken.insert(got).second);
  }
  EXPECT_EQ(all_taken, all_put) << "growth must conserve items";
}

// Unbounded lane recycling under real threads: closes far beyond the retired
// lifetime capacity, with lanes staying exclusive throughout (TSAN watches
// the hint publication races).
TEST(C2StoreStress, SessionChurnBeyondRetiredRecycleCapacity) {
  const int threads = 4;
  const int per_thread = 9000;  // 36000 closes > 2x the retired 1<<14 default
  svc::C2Store store(stress_config(threads));
  std::atomic<bool> ok{true};
  std::vector<std::atomic<int>> owner_flag(
      static_cast<size_t>(store.config().max_threads));
  for (auto& f : owner_flag) f.store(0);
  rt::run_stress(threads, per_thread, [&](int, int) {
    rt::TimedOp op;
    svc::C2Session s = store.open_session();  // threads <= max_threads: no kNone
    int lane = s.lane();
    if (owner_flag[static_cast<size_t>(lane)].exchange(1) != 0) {
      ok.store(false);  // two live sessions shared a lane
    }
    owner_flag[static_cast<size_t>(lane)].store(0);
    return op;  // RAII close: one recycle-set put per op
  });
  EXPECT_TRUE(ok.load()) << "a lane was held by two sessions at once";
  EXPECT_LE(store.lane_tickets_issued(), threads * 2)
      << "late-lifetime churn must be recycle-driven";
}

TEST(NativeFetchIncrementStress, DenseUnderMaximumContention) {
  const int threads = 4;
  const int per_thread = 400;
  rt::NativeFetchIncrement fai;
  std::vector<std::vector<int64_t>> got(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int) {
    rt::TimedOp op;
    got[static_cast<size_t>(t)].push_back(fai.fetch_and_increment());
    return op;
  });
  std::set<int64_t> all;
  for (const auto& v : got) {
    for (int64_t x : v) ASSERT_TRUE(all.insert(x).second) << "duplicate " << x;
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), threads * per_thread - 1);
  EXPECT_EQ(fai.read(), threads * per_thread);
}

// Readable F&I: interleaved reads must be monotone and never exceed the number
// of increments started.
TEST(NativeFetchIncrementStress, ReadsMonotoneAndBounded) {
  const int threads = 4;
  const int per_thread = 200;
  rt::NativeFetchIncrement fai;
  std::atomic<bool> ok{true};
  std::vector<int64_t> last(static_cast<size_t>(threads), 0);
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    if (j % 2 == 0) {
      fai.fetch_and_increment();
    } else {
      int64_t v = fai.read();
      if (v < last[static_cast<size_t>(t)] ||
          v > static_cast<int64_t>(threads) * per_thread) {
        ok.store(false);
      }
      last[static_cast<size_t>(t)] = v;
    }
    return op;
  });
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace c2sl
