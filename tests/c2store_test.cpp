// Functional tests for the C2Store service layer: routing, lazy shard
// initialisation, per-type operations, aggregate scans, and the grep-enforced
// "no CAS anywhere in service plumbing" guarantee.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "service/c2store.h"
#include "service/shard_router.h"

namespace c2sl {
namespace {

TEST(ShardRouter, DeterministicAndInRange) {
  svc::ShardRouter router(16);
  for (uint64_t k = 0; k < 1000; ++k) {
    int s = router.shard_of(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 16);
    EXPECT_EQ(s, router.shard_of(k)) << "routing must be stable";
  }
  EXPECT_EQ(router.shard_of(std::string_view("user:1")),
            router.shard_of(std::string_view("user:1")));
}

TEST(ShardRouter, SpreadsKeysAcrossShards) {
  svc::ShardRouter router(16);
  std::set<int> hit;
  for (uint64_t k = 0; k < 256; ++k) hit.insert(router.shard_of(k));
  // 256 hashed keys over 16 shards: every shard should be touched.
  EXPECT_EQ(hit.size(), 16u);
}

TEST(ShardRouter, StringAndIntKeysShareTheSpace) {
  svc::ShardRouter router(8);
  std::set<int> hit;
  for (int i = 0; i < 64; ++i) hit.insert(router.shard_of("key:" + std::to_string(i)));
  EXPECT_GT(hit.size(), 4u);  // string hashing also spreads
}

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.shards = 8;
  cfg.max_threads = 4;
  cfg.max_value = 10;  // 4 * 10 <= 63
  cfg.tas_max_resets = 6;
  cfg.counter_capacity = 1 << 10;
  cfg.set_capacity = 1 << 10;
  return cfg;
}

// Config errors must surface at construction with service-level messages —
// never from inside a lazy-init winner (where a throw would poison the shard).
TEST(C2Store, InvalidConfigsRejectedUpFront) {
  auto bad = [](auto mutate) {
    svc::C2StoreConfig cfg = small_config();
    mutate(cfg);
    EXPECT_THROW(svc::C2Store store(cfg), PreconditionError);
  };
  bad([](svc::C2StoreConfig& c) { c.tas_max_resets = -1; });
  bad([](svc::C2StoreConfig& c) { c.max_value = 0; });
  bad([](svc::C2StoreConfig& c) { c.max_threads = 0; });
  bad([](svc::C2StoreConfig& c) { c.counter_capacity = 0; });
  bad([](svc::C2StoreConfig& c) { c.shards = 12; });  // not a power of two
  bad([](svc::C2StoreConfig& c) {
    c.max_threads = 8;
    c.max_value = 8;  // 64 bits > 63
  });
}

TEST(C2Store, LazyInitializationIsOnDemand) {
  svc::C2Store store(small_config());
  EXPECT_EQ(store.initialized_shards(), 0);
  store.counter_inc(uint64_t{42});
  EXPECT_EQ(store.initialized_shards(), 1);
  // Reads of untouched keys do not materialise shards.
  EXPECT_EQ(store.max_read(uint64_t{7}), 0);
  EXPECT_EQ(store.counter_read(uint64_t{9}), 0);
  EXPECT_EQ(store.set_take(uint64_t{11}), svc::C2Store::kEmpty);
  EXPECT_EQ(store.initialized_shards(), 1);
}

TEST(C2Store, MaxRegisterPerKeySemantics) {
  svc::C2Store store(small_config());
  store.max_write(0, uint64_t{1}, 3);
  store.max_write(1, uint64_t{1}, 7);
  store.max_write(2, uint64_t{1}, 5);
  EXPECT_EQ(store.max_read(uint64_t{1}), 7);
  EXPECT_EQ(store.global_max(), 7);
}

TEST(C2Store, CounterIncrementAndSum) {
  svc::C2Store store(small_config());
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;  // two distinct shards
  for (int i = 0; i < 10; ++i) store.counter_inc(a);
  for (int i = 0; i < 5; ++i) store.counter_inc(b);
  EXPECT_EQ(store.counter_read(a), 10);
  EXPECT_EQ(store.counter_read(b), 5);
  EXPECT_EQ(store.counter_sum(), 15);
}

TEST(C2Store, TasWinnerResetAndBudget) {
  svc::C2Store store(small_config());
  EXPECT_EQ(store.tas_read(uint64_t{5}), 0);
  EXPECT_EQ(store.tas(0, uint64_t{5}), 0);  // first caller wins
  EXPECT_EQ(store.tas(1, uint64_t{5}), 1);
  EXPECT_EQ(store.tas_read(uint64_t{5}), 1);
  int resets = 0;
  while (store.tas_reset(0, uint64_t{5})) {
    EXPECT_EQ(store.tas_read(uint64_t{5}), 0);
    EXPECT_EQ(store.tas(0, uint64_t{5}), 0);  // winnable again after reset
    ++resets;
  }
  EXPECT_EQ(resets, static_cast<int>(small_config().tas_max_resets));
}

TEST(C2Store, SetPutTakeRoundtrip) {
  svc::C2Store store(small_config());
  store.set_put(uint64_t{3}, 111);
  store.set_put(uint64_t{3}, 222);
  std::set<int64_t> taken;
  taken.insert(store.set_take(uint64_t{3}));
  taken.insert(store.set_take(uint64_t{3}));
  EXPECT_EQ(taken, (std::set<int64_t>{111, 222}));
  EXPECT_EQ(store.set_take(uint64_t{3}), svc::C2Store::kEmpty);
}

TEST(C2Store, CollidingKeysShareTheSlotObjects) {
  svc::C2Store store(small_config());
  // Find two distinct integer keys that route to the same shard.
  uint64_t a = 0, b = 1;
  while (store.shard_of(b) != store.shard_of(a)) ++b;
  store.counter_inc(a);
  EXPECT_EQ(store.counter_read(b), 1)
      << "colliding keys name the same striped instance by design";
}

TEST(C2Store, StringKeysRouteLikeIntKeys) {
  svc::C2Store store(small_config());
  store.max_write(0, "alpha", 4);
  EXPECT_EQ(store.max_read("alpha"), 4);
  store.set_put("box", 9);
  EXPECT_EQ(store.set_take("box"), 9);
}

TEST(C2Store, GlobalMaxAcrossManyShards) {
  svc::C2Store store(small_config());
  for (uint64_t k = 0; k < 32; ++k) {
    store.max_write(0, k, static_cast<int64_t>(k % 10));
  }
  EXPECT_EQ(store.global_max(), 9);
  EXPECT_GT(store.initialized_shards(), 1);
}

// The service, workload and native-runtime layers must never use CAS — the
// whole point of the paper (and the ROADMAP north star) is that consensus
// number 2 suffices. std::atomic exchange and fetch_add are the only RMW
// primitives allowed. Baselines (src/baselines) and the simulated consensus
// hierarchy (src/primitives, src/agreement) intentionally contain CAS and are
// excluded.
TEST(C2Store, NoCasInServiceWorkloadOrRuntimeSources) {
  namespace fs = std::filesystem;
  const std::vector<std::string> dirs = {
      std::string(C2SL_SOURCE_DIR) + "/src/service",
      std::string(C2SL_SOURCE_DIR) + "/src/workload",
      std::string(C2SL_SOURCE_DIR) + "/src/runtime",
  };
  const std::vector<std::string> forbidden = {
      "compare_exchange", "compare_and_swap", "__sync_val_compare",
      "__sync_bool_compare", "cmpxchg", "atomic_compare"};
  int files_scanned = 0;
  for (const auto& dir : dirs) {
    ASSERT_TRUE(fs::exists(dir)) << dir;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path());
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      ++files_scanned;
      for (const auto& token : forbidden) {
        EXPECT_EQ(text.find(token), std::string::npos)
            << "forbidden primitive `" << token << "` in " << entry.path();
      }
    }
  }
  EXPECT_GE(files_scanned, 10);
}

}  // namespace
}  // namespace c2sl
