// Functional tests for the C2Store service layer: routing, lazy shard
// initialisation, sessions and typed key-bound refs, aggregate scans, and the
// grep-enforced "no CAS anywhere in service plumbing" guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/c2store.h"
#include "service/shard_router.h"

namespace c2sl {
namespace {

TEST(ShardRouter, DeterministicAndInRange) {
  svc::ShardRouter router(16);
  for (uint64_t k = 0; k < 1000; ++k) {
    int s = router.shard_of(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 16);
    EXPECT_EQ(s, router.shard_of(k)) << "routing must be stable";
  }
  EXPECT_EQ(router.shard_of(std::string_view("user:1")),
            router.shard_of(std::string_view("user:1")));
}

TEST(ShardRouter, SpreadsKeysAcrossShards) {
  svc::ShardRouter router(16);
  std::set<int> hit;
  for (uint64_t k = 0; k < 256; ++k) hit.insert(router.shard_of(k));
  // 256 hashed keys over 16 shards: every shard should be touched.
  EXPECT_EQ(hit.size(), 16u);
}

TEST(ShardRouter, StringAndIntKeysShareTheSpace) {
  svc::ShardRouter router(8);
  std::set<int> hit;
  for (int i = 0; i < 64; ++i) hit.insert(router.shard_of("key:" + std::to_string(i)));
  EXPECT_GT(hit.size(), 4u);  // string hashing also spreads
}

// String-key routing must be close to uniform: hash 16k distinct keys of a
// realistic shape onto 16 shards and require every shard's share within 25%
// of the mean. (FNV-1a alone has weak low bits — the mix64 finalizer is what
// this test actually guards.)
TEST(ShardRouter, StringKeyDistributionIsUniform) {
  const int shards = 16;
  const int keys = 16384;
  svc::ShardRouter router(shards);
  std::vector<int> count(shards, 0);
  for (int i = 0; i < keys; ++i) {
    ++count[static_cast<size_t>(router.shard_of("user:" + std::to_string(i) + "/score"))];
  }
  const double mean = static_cast<double>(keys) / shards;
  for (int s = 0; s < shards; ++s) {
    EXPECT_GT(count[static_cast<size_t>(s)], mean * 0.75) << "shard " << s << " starved";
    EXPECT_LT(count[static_cast<size_t>(s)], mean * 1.25) << "shard " << s << " overloaded";
  }
}

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = 4;
  cfg.max_value = 10;  // 4 * 10 <= 63
  cfg.tas_max_resets = 6;
  return cfg;
}

// Config errors must surface at construction with service-level messages —
// never from inside a lazy-init winner (where a throw would poison the shard).
TEST(C2Store, InvalidConfigsRejectedUpFront) {
  auto bad = [](auto mutate) {
    svc::C2StoreConfig cfg = small_config();
    mutate(cfg);
    EXPECT_THROW(svc::C2Store store(cfg), PreconditionError);
  };
  bad([](svc::C2StoreConfig& c) { c.tas_max_resets = -1; });
  bad([](svc::C2StoreConfig& c) { c.max_value = 0; });
  bad([](svc::C2StoreConfig& c) { c.max_threads = 0; });
  bad([](svc::C2StoreConfig& c) { c.initial_shards = 12; });  // not a power of two
  bad([](svc::C2StoreConfig& c) {
    c.max_threads = 8;
    c.max_value = 8;  // 64 bits > 63
  });
}

// --- sessions ---------------------------------------------------------------

TEST(C2Session, OpenUseCloseLifecycle) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  EXPECT_TRUE(s.valid());
  EXPECT_GE(s.lane(), 0);
  EXPECT_LT(s.lane(), store.config().max_threads);
  s.max_write(uint64_t{1}, 3);
  EXPECT_EQ(s.max_read(uint64_t{1}), 3);
  s.close();
  EXPECT_FALSE(s.valid());
  s.close();  // idempotent
  EXPECT_THROW(s.max(uint64_t{1}), PreconditionError) << "closed session must not bind";
}

TEST(C2Session, MoveTransfersTheLane) {
  svc::C2Store store(small_config());
  svc::C2Session a = store.open_session();
  int lane = a.lane();
  svc::C2Session b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.lane(), lane);
  svc::C2Session c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.lane(), lane);
}

TEST(C2Session, ConcurrentSessionsGetDistinctLanes) {
  svc::C2Store store(small_config());
  std::vector<svc::C2Session> open;
  std::set<int> lanes;
  for (int i = 0; i < store.config().max_threads; ++i) {
    open.push_back(store.open_session());
    EXPECT_TRUE(lanes.insert(open.back().lane()).second) << "lane handed out twice";
  }
  // All lanes held: try_open_session reports invalid and the timed form
  // gives up cleanly; open_session() now BLOCKS instead of throwing (the
  // blocking path is exercised below and under TSAN in
  // tests/c2store_stress_test.cpp).
  EXPECT_FALSE(store.try_open_session().valid());
  EXPECT_FALSE(store.open_session_for(std::chrono::milliseconds(2)).valid());
}

TEST(C2Session, BlockingOpenWaitsForAClosingSession) {
  svc::C2Store store(small_config());
  std::vector<svc::C2Session> held;
  for (int i = 0; i < store.config().max_threads; ++i) {
    held.push_back(store.open_session());
  }
  const int freed_lane = held.back().lane();
  std::atomic<int> got_lane{-1};
  std::thread blocked([&] {
    svc::C2Session s = store.open_session();  // parks: every lane is held
    got_lane.store(s.lane());
  });
  // Wait until the opener is genuinely parked on the handoff queue, then
  // close one session: its lane must be handed over directly.
  while (store.lane_handoff_parks() == 0) std::this_thread::yield();
  EXPECT_EQ(got_lane.load(), -1) << "open_session returned while all lanes held";
  held.pop_back();
  blocked.join();
  EXPECT_EQ(got_lane.load(), freed_lane)
      << "the closing session's lane must be handed to the parked opener";
  EXPECT_GE(store.lane_handoff_deliveries(), 1);
}

TEST(C2Session, ClosedLanesAreRecycled) {
  svc::C2Store store(small_config());
  const int n = store.config().max_threads;
  {
    std::vector<svc::C2Session> wave;
    for (int i = 0; i < n; ++i) wave.push_back(store.open_session());
  }  // RAII: all lanes released
  // A second full wave must succeed entirely from recycled lanes: the fresh
  // ticket dispenser was spent by the first wave.
  std::vector<svc::C2Session> wave2;
  std::set<int> lanes;
  for (int i = 0; i < n; ++i) {
    wave2.push_back(store.open_session());
    EXPECT_TRUE(lanes.insert(wave2.back().lane()).second);
  }
  EXPECT_EQ(store.lane_tickets_issued(), n) << "second wave must recycle, not re-ticket";
}

// --- typed key-bound refs ---------------------------------------------------

TEST(C2Store, LazyInitializationIsOnDemand) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  EXPECT_EQ(store.initialized_shards(), 0);
  // Binding a ref routes but does NOT materialise the shard.
  svc::MaxRef m = s.max(uint64_t{7});
  svc::CounterRef c = s.counter(uint64_t{42});
  EXPECT_EQ(store.initialized_shards(), 0);
  c.inc();
  EXPECT_EQ(store.initialized_shards(), 1);
  // Reads of untouched keys do not materialise shards.
  EXPECT_EQ(m.read(), 0);
  EXPECT_EQ(s.counter_read(uint64_t{9}), 0);
  EXPECT_EQ(s.set_take(uint64_t{11}), svc::C2Store::kEmpty);
  EXPECT_EQ(store.initialized_shards(), 1);
}

TEST(C2Store, MaxRegisterPerKeySemantics) {
  svc::C2Store store(small_config());
  svc::C2Session s0 = store.open_session();
  svc::C2Session s1 = store.open_session();
  svc::C2Session s2 = store.open_session();
  s0.max_write(uint64_t{1}, 3);
  s1.max_write(uint64_t{1}, 7);
  s2.max_write(uint64_t{1}, 5);
  EXPECT_EQ(s0.max_read(uint64_t{1}), 7);
  EXPECT_EQ(store.global_max(), 7);
}

TEST(C2Store, CounterIncrementAndSum) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;  // two distinct shards
  svc::CounterRef ca = s.counter(a);
  svc::CounterRef cb = s.counter(b);
  for (int i = 0; i < 10; ++i) ca.inc();
  for (int i = 0; i < 5; ++i) cb.inc();
  EXPECT_EQ(ca.read(), 10);
  EXPECT_EQ(cb.read(), 5);
  EXPECT_EQ(store.counter_sum(), 15);
  EXPECT_EQ(store.counter_sum_scan(), 15) << "scan ablation must agree at quiescence";
}

// --- counter-sum digest edge cases ------------------------------------------

// The digest read must not materialise anything: a store with ZERO initialized
// shards answers 0 from the digest word alone (and the retained scan agrees).
TEST(C2Store, CounterSumOnZeroInitializedShards) {
  svc::C2Store store(small_config());
  EXPECT_EQ(store.counter_sum(), 0);
  EXPECT_EQ(store.counter_sum_scan(), 0);
  EXPECT_EQ(store.initialized_shards(), 0)
      << "aggregate reads must not materialise shards";
  // Same through a session, still without materialising.
  svc::C2Session s = store.open_session();
  EXPECT_EQ(s.counter_sum(), 0);
  EXPECT_EQ(s.counter_sum_scan(), 0);
  EXPECT_EQ(store.initialized_shards(), 0);
}

// A single-lane store (max_threads = 1) routes every digest add through lane
// 0; sums and the per-lane component must both hold up.
TEST(C2Store, CounterSumOnSingleLaneStore) {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 4;
  cfg.max_threads = 1;
  cfg.max_value = 63;
  cfg.tas_max_resets = 62;
  svc::C2Store store(cfg);
  svc::C2Session s = store.open_session();
  EXPECT_EQ(s.lane(), 0);
  for (uint64_t k = 0; k < 16; ++k) s.counter(k).inc();
  EXPECT_EQ(store.counter_sum(), 16);
  EXPECT_EQ(store.counter_sum_scan(), 16);
  EXPECT_EQ(store.lane_counter_adds(0), 16)
      << "single lane carries the whole per-lane component";
}

// Lane recycling across session close/reopen: the digest total must keep
// accumulating across session generations, and a recycled lane's per-lane
// component carries the contributions of every session that held it.
TEST(C2Store, CounterSumSurvivesSessionCloseReopen) {
  svc::C2Store store(small_config());
  const uint64_t key = 7;
  int first_lane;
  {
    svc::C2Session s = store.open_session();
    first_lane = s.lane();
    for (int i = 0; i < 5; ++i) s.counter(key).inc();
    EXPECT_EQ(store.counter_sum(), 5);
  }  // RAII close: the lane goes back to the registry
  {
    // Sole session on the store: the registry must recycle the freed lane.
    svc::C2Session s = store.open_session();
    EXPECT_EQ(s.lane(), first_lane) << "sole reopen must recycle the lane";
    for (int i = 0; i < 3; ++i) s.counter(key).inc();
    EXPECT_EQ(store.counter_sum(), 8) << "digest must accumulate across sessions";
    EXPECT_EQ(store.lane_counter_adds(first_lane), 8)
        << "a recycled lane's component spans session generations";
  }
  // And the per-key counter agrees with the digest at quiescence.
  svc::C2Session s = store.open_session();
  EXPECT_EQ(s.counter(key).read(), 8);
  EXPECT_EQ(store.counter_sum_scan(), 8);
}

// The digest never leads the per-lane components (add bumps the lane cell
// first): at quiescence they telescope to the same total.
TEST(C2Store, CounterSumMatchesLaneContributions) {
  svc::C2Store store(small_config());
  svc::C2Session s0 = store.open_session();
  svc::C2Session s1 = store.open_session();
  for (int i = 0; i < 6; ++i) s0.counter(uint64_t{1}).inc();
  for (int i = 0; i < 4; ++i) s1.counter(uint64_t{2}).inc();
  EXPECT_EQ(store.lane_counter_adds(s0.lane()), 6);
  EXPECT_EQ(store.lane_counter_adds(s1.lane()), 4);
  int64_t lanes_total = 0;
  for (int l = 0; l < store.config().max_threads; ++l) {
    lanes_total += store.lane_counter_adds(l);
  }
  EXPECT_EQ(store.counter_sum(), lanes_total);
}

TEST(C2Store, TasWinnerResetAndBudget) {
  svc::C2Store store(small_config());
  svc::C2Session s0 = store.open_session();
  svc::C2Session s1 = store.open_session();
  svc::TasRef t0 = s0.tas(uint64_t{5});
  svc::TasRef t1 = s1.tas(uint64_t{5});
  EXPECT_EQ(t0.read(), 0);
  EXPECT_EQ(t0.test_and_set(), 0);  // first caller wins
  EXPECT_EQ(t1.test_and_set(), 1);
  EXPECT_EQ(t1.read(), 1);
  int resets = 0;
  while (t0.reset() == svc::ResetResult::kOk) {
    EXPECT_EQ(t0.read(), 0);
    EXPECT_EQ(t0.test_and_set(), 0);  // winnable again after reset
    ++resets;
  }
  EXPECT_EQ(resets, static_cast<int>(small_config().tas_max_resets));
}

// The typed ResetResult must report budget exhaustion (not just refuse): after
// the budget is spent every further reset is kBudgetSpent and a no-op.
TEST(C2Store, TasResetBudgetExhaustionIsTyped) {
  svc::C2StoreConfig cfg = small_config();
  cfg.tas_max_resets = 2;
  cfg.max_value = 10;  // 4 * (2+1) <= 63 and 4 * 10 <= 63 both hold
  svc::C2Store store(cfg);
  svc::C2Session s = store.open_session();
  svc::TasRef t = s.tas(uint64_t{9});
  for (int g = 0; g < 2; ++g) {
    EXPECT_EQ(t.test_and_set(), 0);
    EXPECT_EQ(t.reset(), svc::ResetResult::kOk) << "generation " << g;
  }
  EXPECT_EQ(t.test_and_set(), 0);
  EXPECT_EQ(t.reset(), svc::ResetResult::kBudgetSpent);
  EXPECT_EQ(t.read(), 1) << "a kBudgetSpent reset must not recycle the TAS";
  EXPECT_EQ(s.tas_reset(uint64_t{9}), svc::ResetResult::kBudgetSpent)
      << "one-shot convenience must agree with the ref";
}

TEST(C2Store, SetPutTakeRoundtrip) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  svc::SetRef box = s.set(uint64_t{3});
  box.put(111);
  box.put(222);
  std::set<int64_t> taken;
  taken.insert(box.take());
  taken.insert(box.take());
  EXPECT_EQ(taken, (std::set<int64_t>{111, 222}));
  EXPECT_EQ(box.take(), svc::C2Store::kEmpty);
}

TEST(C2Store, CollidingKeysShareTheSlotObjects) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  // Find two distinct integer keys that route to the same shard.
  uint64_t a = 0, b = 1;
  while (store.shard_of(b) != store.shard_of(a)) ++b;
  s.counter(a).inc();
  EXPECT_EQ(s.counter(b).read(), 1)
      << "colliding keys name the same striped instance by design";
}

TEST(C2Store, StringKeysRouteLikeIntKeys) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  s.max("alpha").write(4);
  EXPECT_EQ(s.max("alpha").read(), 4);
  s.set_put("box", 9);
  EXPECT_EQ(s.set_take("box"), 9);
}

// Rebinding the same key — from the same or another session — must route to
// the same shard and reach the same underlying object instance.
TEST(C2Store, RefRebindingIsStable) {
  svc::C2Store store(small_config());
  svc::C2Session s1 = store.open_session();
  svc::C2Session s2 = store.open_session();
  const std::string key = "user:1042/score";
  svc::MaxRef a = s1.max(key);
  svc::MaxRef b = s1.max(key);   // rebind, same session
  svc::MaxRef c = s2.max(key);   // rebind, different session
  EXPECT_EQ(a.shard(), b.shard());
  EXPECT_EQ(a.shard(), c.shard());
  EXPECT_EQ(a.shard(), store.shard_of(std::string_view(key)));
  a.write(6);
  EXPECT_EQ(b.read(), 6) << "rebound ref must see the same object";
  EXPECT_EQ(c.read(), 6) << "other sessions bind the same object";
  // Counters agree too: increments through one binding are visible in all.
  s1.counter(key).inc();
  s2.counter(key).inc();
  EXPECT_EQ(s1.counter(key).read(), 2);
}

TEST(C2Store, GlobalMaxAcrossManyShards) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  for (uint64_t k = 0; k < 32; ++k) {
    s.max(k).write(static_cast<int64_t>(k % 10));
  }
  EXPECT_EQ(store.global_max(), 9);
  EXPECT_GT(store.initialized_shards(), 1);
}

// The service, workload and native-runtime layers must never use CAS — the
// whole point of the paper (and the ROADMAP north star) is that consensus
// number 2 suffices. std::atomic exchange and fetch_add are the only RMW
// primitives allowed. Baselines (src/baselines) and the simulated consensus
// hierarchy (src/primitives, src/agreement) intentionally contain CAS and are
// excluded.
TEST(C2Store, NoCasInServiceWorkloadOrRuntimeSources) {
  namespace fs = std::filesystem;
  const std::vector<std::string> dirs = {
      std::string(C2SL_SOURCE_DIR) + "/src/service",
      std::string(C2SL_SOURCE_DIR) + "/src/workload",
      std::string(C2SL_SOURCE_DIR) + "/src/runtime",
  };
  const std::vector<std::string> forbidden = {
      "compare_exchange", "compare_and_swap", "__sync_val_compare",
      "__sync_bool_compare", "cmpxchg", "atomic_compare"};
  int files_scanned = 0;
  for (const auto& dir : dirs) {
    ASSERT_TRUE(fs::exists(dir)) << dir;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path());
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      ++files_scanned;
      for (const auto& token : forbidden) {
        EXPECT_EQ(text.find(token), std::string::npos)
            << "forbidden primitive `" << token << "` in " << entry.path();
      }
    }
  }
  EXPECT_GE(files_scanned, 10);
}

}  // namespace
}  // namespace c2sl
