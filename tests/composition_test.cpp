// Composition: linearizability is compositional (Herlihy–Wing), and the paper
// relies on strong linearizability composing too ([9, Thm 10], used for
// Theorem 4 and Corollary 7). These tests drive MULTIPLE objects in one
// execution and check each against its own spec — plus a DOT-export smoke
// test for the tooling.
#include <gtest/gtest.h>

#include "core/max_register_faa.h"
#include "core/readable_tas.h"
#include "core/snapshot_faa.h"
#include "harness.h"
#include "sim/dot.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

TEST(Composition, ThreeObjectsOneExecution) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    sim::SimRun run(3);
    auto maxreg = std::make_shared<core::MaxRegisterFAA>(run.world, "maxreg", 3);
    auto snap = std::make_shared<core::SnapshotFAA>(run.world, "snap", 3);
    auto tas = std::make_shared<core::ReadableTAS>(run.world, "rtas");
    for (int p = 0; p < 3; ++p) {
      run.sched.spawn(p, [maxreg, snap, tas, p, seed](sim::Ctx& ctx) {
        Rng rng(seed * 71 + static_cast<uint64_t>(p));
        for (int j = 0; j < 4; ++j) {
          switch (rng.next_below(5)) {
            case 0:
              core::invoke_recorded(ctx, *maxreg,
                                    {"WriteMax", num(rng.next_in(0, 9)), p});
              break;
            case 1:
              core::invoke_recorded(ctx, *maxreg, {"ReadMax", unit(), p});
              break;
            case 2:
              core::invoke_recorded(ctx, *snap, {"Update", num(rng.next_in(0, 9)), p});
              break;
            case 3:
              core::invoke_recorded(ctx, *snap, {"Scan", unit(), p});
              break;
            default:
              core::invoke_recorded(ctx, *tas, {"TAS", unit(), p});
              break;
          }
        }
      });
    }
    sim::RandomStrategy strategy(seed);
    auto rr = run.sched.run(strategy, 100000);
    ASSERT_TRUE(rr.all_done);

    auto ops = run.history.operations();
    verify::MaxRegisterSpec maxreg_spec;
    verify::SnapshotSpec snap_spec(3);
    verify::TasSpec tas_spec;
    EXPECT_TRUE(
        verify::check_object_linearizability(ops, "maxreg", maxreg_spec).linearizable)
        << "seed " << seed;
    EXPECT_TRUE(verify::check_object_linearizability(ops, "snap", snap_spec).linearizable)
        << "seed " << seed;
    EXPECT_TRUE(verify::check_object_linearizability(ops, "rtas", tas_spec).linearizable)
        << "seed " << seed;
  }
}

// Exhaustive complement to the random sweeps: EVERY schedule of a small
// two-object scenario yields linearizable per-object histories at every leaf.
TEST(Composition, ExhaustiveSmallConfigAllLeavesLinearizable) {
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto maxreg = std::make_shared<core::MaxRegisterFAA>(run.world, "maxreg", 2);
    auto tas = std::make_shared<core::ReadableTAS>(run.world, "rtas");
    run.sched.spawn(0, [maxreg, tas](sim::Ctx& ctx) {
      core::invoke_recorded(ctx, *maxreg, {"WriteMax", num(3), 0});
      core::invoke_recorded(ctx, *tas, {"TAS", unit(), 0});
    });
    run.sched.spawn(1, [maxreg, tas](sim::Ctx& ctx) {
      core::invoke_recorded(ctx, *tas, {"TAS", unit(), 1});
      core::invoke_recorded(ctx, *maxreg, {"ReadMax", unit(), 1});
    });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_nodes = 50000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted);

  verify::MaxRegisterSpec maxreg_spec;
  verify::TasSpec tas_spec;
  int leaves = 0;
  for (const auto& node : tree.nodes) {
    if (!node.children.empty() || !node.all_done) continue;
    ++leaves;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    EXPECT_TRUE(
        verify::check_object_linearizability(ops, "maxreg", maxreg_spec).linearizable)
        << "leaf " << node.id;
    EXPECT_TRUE(verify::check_object_linearizability(ops, "rtas", tas_spec).linearizable)
        << "leaf " << node.id;
  }
  EXPECT_GT(leaves, 1);
}

TEST(Composition, DotExportRendersTree) {
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto tas = std::make_shared<core::ReadableTAS>(run.world, "rtas");
    for (int p = 0; p < 2; ++p) {
      run.sched.spawn(p, [tas, p](sim::Ctx& ctx) {
        core::invoke_recorded(ctx, *tas, {"TAS", unit(), p});
      });
    }
  };
  sim::ExploreOptions opts;
  opts.max_depth = 8;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  sim::DotOptions dot_opts;
  dot_opts.highlight_node = 1;
  std::string dot = sim::to_dot(tree, dot_opts);
  EXPECT_NE(dot.find("digraph exec_tree"), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);   // highlighted node
  EXPECT_NE(dot.find("palegreen"), std::string::npos);  // completed leaves
  EXPECT_NE(dot.find("->"), std::string::npos);
  // One node line per tree node.
  size_t count = 0;
  for (size_t pos = dot.find("[label="); pos != std::string::npos;
       pos = dot.find("[label=", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, tree.size());
}

}  // namespace
}  // namespace c2sl
