// Exhaustive-interleaving linearizability: for small fixed scenarios of EVERY
// §3/§4 construction, explore ALL schedules (complete execution tree) and
// check the history at every completed leaf against the sequential spec.
// Complements the random sweeps (which cover bigger configs sparsely) and the
// strong-linearizability checks (which subsume this but on the same trees —
// here the trees can be bigger because plain linearizability is cheaper).
#include <gtest/gtest.h>

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/simple_type.h"
#include "core/sl_set.h"
#include "core/snapshot_faa.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

struct ExhaustiveCase {
  std::string name;
  testing::ObjectFactory factory;
  std::vector<std::vector<Invocation>> programs;
  std::shared_ptr<verify::Spec> spec;
  std::string object;
  int max_depth = 28;
  size_t max_nodes = 300000;
};

class ExhaustiveLin : public ::testing::TestWithParam<int> {
 public:
  static const std::vector<ExhaustiveCase>& cases();
};

std::vector<ExhaustiveCase> build_cases() {
  std::vector<ExhaustiveCase> out;

  out.push_back({"maxreg_faa",
                 [](sim::World& w, int n) {
                   return std::make_shared<core::MaxRegisterFAA>(w, "obj", n);
                 },
                 {{{"WriteMax", num(4), 0}, {"ReadMax", unit(), 0}},
                  {{"WriteMax", num(2), 1}},
                  {{"ReadMax", unit(), 2}}},
                 std::make_shared<verify::MaxRegisterSpec>(),
                 "obj"});

  out.push_back({"snapshot_faa",
                 [](sim::World& w, int n) {
                   return std::make_shared<core::SnapshotFAA>(w, "obj", n);
                 },
                 {{{"Update", num(1), 0}, {"Update", num(4), 0}},
                  {{"Scan", unit(), 1}},
                  {{"Update", num(2), 2}}},
                 std::make_shared<verify::SnapshotSpec>(3),
                 "obj"});

  out.push_back({"readable_tas",
                 [](sim::World& w, int) {
                   return std::make_shared<core::ReadableTAS>(w, "obj");
                 },
                 {{{"TAS", unit(), 0}},
                  {{"Read", unit(), 1}, {"TAS", unit(), 1}},
                  {{"Read", unit(), 2}}},
                 std::make_shared<verify::TasSpec>(),
                 "obj"});

  struct MtasBundle : core::ConcurrentObject {
    core::AtomicMaxRegister curr;
    core::AtomicReadableTasArray ts;
    core::MultishotTAS mtas;
    explicit MtasBundle(sim::World& w)
        : curr(w, "curr"), ts(w, "TS"), mtas("obj", curr, ts) {}
    std::string object_name() const override { return "obj"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return mtas.apply(c, i); }
  };
  out.push_back({"multishot_tas",
                 [](sim::World& w, int) { return std::make_shared<MtasBundle>(w); },
                 {{{"TAS", unit(), 0}},
                  {{"Reset", unit(), 1}},
                  {{"Read", unit(), 2}}},
                 std::make_shared<verify::TasSpec>(/*multi_shot=*/true),
                 "obj"});

  struct FaiBundle : core::ConcurrentObject {
    core::ReadableTasArray ts;
    core::FetchIncrement fai;
    explicit FaiBundle(sim::World& w) : ts(w, "M"), fai("obj", ts) {}
    std::string object_name() const override { return "obj"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return fai.apply(c, i); }
  };
  out.push_back({"fetch_increment",
                 [](sim::World& w, int) { return std::make_shared<FaiBundle>(w); },
                 {{{"FAI", unit(), 0}}, {{"FAI", unit(), 1}}, {{"Read", unit(), 2}}},
                 std::make_shared<verify::FaiSpec>(),
                 "obj",
                 /*max_depth=*/30,
                 /*max_nodes=*/600000});

  struct SetBundle : core::ConcurrentObject {
    core::AtomicReadableTasArray ts;
    core::FetchIncrement fai;
    core::SLSet set;
    explicit SetBundle(sim::World& w)
        : ts(w, "M"), fai("Max", ts), set(w, "obj", fai) {}
    std::string object_name() const override { return "obj"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return set.apply(c, i); }
  };
  out.push_back({"sl_set",
                 [](sim::World& w, int) { return std::make_shared<SetBundle>(w); },
                 {{{"Put", num(7), 0}}, {{"Take", unit(), 1}}, {}},
                 std::make_shared<verify::SetSpec>(),
                 "obj",
                 /*max_depth=*/30,
                 /*max_nodes=*/600000});

  static verify::CounterSpec counter_spec;
  out.push_back({"simple_type_counter",
                 [](sim::World& w, int n) {
                   return std::shared_ptr<core::ConcurrentObject>(
                       core::make_counter(w, "obj", n, counter_spec));
                 },
                 {{{"Inc", unit(), 0}}, {{"Read", unit(), 1}}, {}},
                 std::make_shared<verify::CounterSpec>(),
                 "obj"});

  return out;
}

const std::vector<ExhaustiveCase>& ExhaustiveLin::cases() {
  static const std::vector<ExhaustiveCase> all = build_cases();
  return all;
}

TEST_P(ExhaustiveLin, AllLeavesLinearizable) {
  const ExhaustiveCase& c = cases()[static_cast<size_t>(GetParam())];
  int n = static_cast<int>(c.programs.size());
  auto scenario = testing::fixed_scenario(c.factory, c.programs);
  sim::ExploreOptions opts;
  opts.max_depth = c.max_depth;
  opts.max_nodes = c.max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << c.name << ": raise max_nodes";

  int leaves = 0;
  for (const auto& node : tree.nodes) {
    if (!node.children.empty() || !node.all_done) continue;
    ++leaves;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    auto lin = verify::check_object_linearizability(ops, c.object, *c.spec);
    ASSERT_TRUE(lin.decided) << c.name;
    ASSERT_TRUE(lin.linearizable)
        << c.name << " leaf " << node.id << "\n"
        << lin.explanation;
  }
  EXPECT_GT(leaves, 1) << c.name;
  RecordProperty("tree_nodes", static_cast<int>(tree.size()));
}

INSTANTIATE_TEST_SUITE_P(AllObjects, ExhaustiveLin, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return ExhaustiveLin::cases()[static_cast<size_t>(
                                                             info.param)]
                               .name;
                         });

}  // namespace
}  // namespace c2sl
