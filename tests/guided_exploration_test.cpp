// Guided exploration (ExploreOptions::prefix) and RecordingStrategy — the
// machinery behind the AADGMS refutation. Verifies that subtree exploration
// after a recorded prefix is consistent with full-tree exploration, and that
// prefix-rooted trees carry complete histories.
#include <gtest/gtest.h>

#include "core/readable_tas.h"
#include "harness.h"
#include "sim/explorer.h"
#include "sim/strategy.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

namespace c2sl {
namespace {

using verify::Invocation;

sim::ScenarioFn tas_scenario() {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<core::ReadableTAS>(w, "rtas");
  };
  return testing::fixed_scenario(factory, {{{"TAS", unit(), 0}},
                                           {{"TAS", unit(), 1}},
                                           {{"Read", unit(), 2}}});
}

TEST(GuidedExploration, RecordingStrategyCapturesChoices) {
  sim::SimRun run(3);
  tas_scenario()(run);
  sim::RandomStrategy random(17);
  sim::RecordingStrategy recorder(random);
  run.sched.run(recorder, 3);
  ASSERT_EQ(recorder.recorded().size(), 3u);
  // Replaying the recorded choices reproduces the identical history.
  sim::SimRun replay_run(3);
  tas_scenario()(replay_run);
  sim::ReplayStrategy replay(recorder.recorded());
  replay_run.sched.run(replay, 3);
  EXPECT_EQ(replay_run.history.to_string(), run.history.to_string());
}

TEST(GuidedExploration, PrefixRootCarriesPrefixEvents) {
  // Record a 2-step prefix, then explore: the subtree root's history must
  // contain everything that happened during the prefix.
  sim::SimRun probe(3);
  tas_scenario()(probe);
  sim::RandomStrategy random(5);
  sim::RecordingStrategy recorder(random);
  probe.sched.run(recorder, 2);
  size_t prefix_events = probe.history.events().size();

  sim::ExploreOptions opts;
  opts.prefix = recorder.recorded();
  opts.max_depth = 12;
  sim::ExecTree tree = sim::explore(3, tas_scenario(), opts);
  EXPECT_EQ(tree.prefix.size(), 2u);
  EXPECT_EQ(tree.history_at(0).size(), prefix_events);
  // Leaves reach completion: 3 invocations, 3 responses.
  for (const auto& node : tree.nodes) {
    if (node.children.empty() && node.all_done) {
      auto ops = verify::operations_from_events(tree.history_at(node.id));
      EXPECT_EQ(ops.size(), 3u);
      for (const auto& op : ops) EXPECT_TRUE(op.complete);
    }
  }
}

TEST(GuidedExploration, SubtreeVerdictConsistentWithFullTree) {
  // The readable TAS is strongly linearizable; every guided subtree must agree
  // (a conflict in a subtree would refute the full tree, Lemma: restriction of
  // a prefix-closed assignment stays prefix-closed).
  verify::TasSpec spec;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    sim::SimRun probe(3);
    tas_scenario()(probe);
    sim::RandomStrategy random(seed);
    sim::RecordingStrategy recorder(random);
    probe.sched.run(recorder, 3);
    if (recorder.recorded().size() < 3) continue;

    sim::ExploreOptions opts;
    opts.prefix = recorder.recorded();
    opts.max_depth = 12;
    sim::ExecTree tree = sim::explore(3, tas_scenario(), opts);
    verify::StrongLinOptions slopts;
    slopts.object = "rtas";
    auto res = verify::check_strong_linearizability(tree, spec, slopts);
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.strongly_linearizable) << "seed " << seed << "\n" << res.report;
  }
}

}  // namespace
}  // namespace c2sl
