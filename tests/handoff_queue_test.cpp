// HandoffQueue (runtime/handoff_queue.h) — the consensus-2 FIFO handoff
// behind blocking C2Store::open_session().
//
//  1. Native unit tests: FIFO delivery in ticket order, the no-waiter and
//     cancellation paths of the cell state machine, timed waits.
//  2. Native threaded tests: a parked waiter is woken by a handoff; racing
//     deliverers produce exactly one delivery, and an overshot (revoked)
//     slot sends its eventual waiter into the documented retry path.
//  3. The acceptance facets: the sim twin (svc::SimHandoffQueue — Tail/Head
//     fetch&add tickets + swap rendezvous cells, same commitment structure,
//     simulated base objects) is STRONGLY linearizable against
//     verify::QueueSpec on full bounded execution trees: both the enqueue
//     (Tail FAA) and the handoff (Head FAA) linearize at fixed own-steps.
//  4. The pinned refutation (negative control): the `scan_delivery` variant
//     replaces the Head fetch&add with Herlihy–Wing's publication-order scan;
//     its delivery target is decided by FUTURE announcement writes, so no
//     prefix-closed linearization exists and the checker refutes it — on the
//     same schedule family where the ticket-order design verifies.
//  5. The positive control: baselines/herlihy_wing_queue on that same family
//     keeps refuting (the known Theorem-17 exhibit), so a checker or bridge
//     regression cannot silently blank both verdicts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "baselines/herlihy_wing_queue.h"
#include "harness.h"
#include "runtime/handoff_queue.h"
#include "service/sim_bridge.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

namespace c2sl {
namespace {

using verify::Invocation;

// --- 1. native unit ---------------------------------------------------------

TEST(HandoffQueue, DeliversInTicketOrder) {
  rt::HandoffQueue q;
  size_t t0 = q.enqueue();
  size_t t1 = q.enqueue();
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 1u);
  EXPECT_TRUE(q.hand(5));
  EXPECT_TRUE(q.hand(7));
  EXPECT_EQ(q.await(t0), 5) << "oldest ticket gets the first value";
  EXPECT_EQ(q.await(t1), 7);
  EXPECT_EQ(q.deliveries(), 2);
  EXPECT_EQ(q.parks(), 0) << "pre-deposited values must not park the waiter";
}

TEST(HandoffQueue, HandWithoutWaitersFailsWithoutBurningTickets) {
  rt::HandoffQueue q;
  EXPECT_FALSE(q.hand(3));
  EXPECT_FALSE(q.hand(4));
  EXPECT_EQ(q.hands_started(), 0) << "the guard pre-read must keep Head parked";
  EXPECT_EQ(q.deliveries(), 0);
  EXPECT_FALSE(q.waiters_pending());
}

TEST(HandoffQueue, CancelledWaiterIsSkippedNotServed) {
  rt::HandoffQueue q;
  size_t t0 = q.enqueue();
  EXPECT_EQ(q.cancel(t0), rt::HandoffQueue::kCancelled);
  // The tombstoned slot must not swallow the value: with no live waiter the
  // hand reports failure and the caller keeps the lane.
  EXPECT_FALSE(q.hand(9));
  EXPECT_EQ(q.deliveries(), 0);
  // A fresh waiter behind the tombstone is served normally.
  size_t t1 = q.enqueue();
  EXPECT_TRUE(q.hand(9));
  EXPECT_EQ(q.await(t1), 9);
}

TEST(HandoffQueue, DeliveryBeatsCancellation) {
  rt::HandoffQueue q;
  size_t t0 = q.enqueue();
  EXPECT_TRUE(q.hand(6));
  // The cancel lost the race: the caller now owns the value and must route it.
  EXPECT_EQ(q.cancel(t0), 6);
}

TEST(HandoffQueue, AwaitUntilTimesOutAndCancelsCleanly) {
  rt::HandoffQueue q;
  size_t t0 = q.enqueue();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(q.await_until(t0, deadline), rt::HandoffQueue::kTimedOut);
  EXPECT_EQ(q.cancel(t0), rt::HandoffQueue::kCancelled);
  EXPECT_FALSE(q.hand(2)) << "the timed-out slot must not swallow a value";
}

// --- 2. native threads ------------------------------------------------------

TEST(HandoffQueue, ParkedWaiterIsWokenByHandoff) {
  rt::HandoffQueue q;
  size_t t = q.enqueue();
  std::atomic<int64_t> got{INT64_MIN};
  std::thread waiter([&] { got.store(q.await(t), std::memory_order_seq_cst); });
  while (q.parks() == 0) std::this_thread::yield();  // until genuinely parked
  EXPECT_TRUE(q.hand(42));
  waiter.join();
  EXPECT_EQ(got.load(), 42);
  EXPECT_EQ(q.parks(), 1);
}

// Two deliverers race one waiter: exactly one delivery ever happens, and when
// the loser overshoots (revoking the phantom next slot), the NEXT waiter to
// take that ticket observes kRevoked — the documented "fallback was refilled,
// retry there" signal the lane registry acts on.
TEST(HandoffQueue, RacingDeliverersProduceOneDeliveryAndRevokedSlotsRetry) {
  int revoked_rounds = 0;
  for (int round = 0; round < 200; ++round) {
    rt::HandoffQueue q;
    size_t t0 = q.enqueue();
    std::atomic<int> delivered{0};
    std::thread d1([&] { delivered.fetch_add(q.hand(1) ? 1 : 0); });
    std::thread d2([&] { delivered.fetch_add(q.hand(2) ? 1 : 0); });
    d1.join();
    d2.join();
    EXPECT_EQ(delivered.load(), 1) << "round " << round;
    int64_t v = q.await(t0);
    EXPECT_TRUE(v == 1 || v == 2) << "round " << round << " got " << v;
    EXPECT_LE(q.revocations(), 1) << "round " << round;
    if (q.revocations() == 1) {
      ++revoked_rounds;
      size_t t1 = q.enqueue();
      EXPECT_EQ(q.await(t1), rt::HandoffQueue::kRevoked)
          << "a waiter on an overshot slot must be told to retry";
    }
  }
  // Informational: the overshoot window is narrow; it is fine for a
  // timesliced host to never hit it here (TSAN stress covers it too).
  (void)revoked_rounds;
}

// --- 3. the sim facets: strongly linearizable -------------------------------

verify::StrongLinResult check_queue(const sim::ScenarioFn& scenario, int n,
                                    const std::string& object, int max_depth,
                                    size_t max_nodes) {
  sim::ExploreOptions opts;
  opts.max_depth = max_depth;
  opts.max_nodes = max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::QueueSpec spec;
  verify::StrongLinOptions slopts;
  slopts.object = object;
  slopts.max_search_nodes = 30'000'000;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

// Two concurrent enqueuers race one handoff: the handoff's Head fetch&add
// commits it to ticket 0 no matter how the announcements land afterwards, so
// a prefix-closed linearization exists (contrast the scan variant below,
// refuted on this exact schedule family).
TEST(HandoffQueueSim, ConcurrentEnqueuersOneHandoffStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimHandoffQueue>(w, "hq");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(1), 0}},
                                                    {{"Enq", num(2), 1}},
                                                    {{"Deq", unit(), 2}}});
  auto res = check_queue(scenario, 3, "hq", /*max_depth=*/20, /*max_nodes=*/800000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// One enqueuer, two handoffs in program order: deliveries must come back in
// ticket order (1 then 2) through every interleaving, including the windows
// where a handoff overlaps the enqueuer between its ticket and announcement.
TEST(HandoffQueueSim, SequentialEnqueuesHandedFifoStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimHandoffQueue>(w, "hq");
  };
  auto scenario = testing::fixed_scenario(
      factory,
      {{{"Enq", num(1), 0}, {"Enq", num(2), 0}},
       {{"Deq", unit(), 1}, {"Deq", unit(), 1}}});
  auto res = check_queue(scenario, 2, "hq", /*max_depth=*/26, /*max_nodes=*/800000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// The empty path: a handoff racing a single enqueue either commits to ticket 0
// or reports EMPTY from its guard reads — both at fixed own-steps.
TEST(HandoffQueueSim, HandoffRacingEnqueueStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimHandoffQueue>(w, "hq");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(1), 0}},
                                                    {{"Deq", unit(), 1}}});
  auto res = check_queue(scenario, 2, "hq", /*max_depth=*/16, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// --- 4. pinned refutation: publication-order (scan) delivery ----------------

// PINNED: with both tickets drawn but neither announced, the scan serves
// whichever waiter publishes first — the delivery target is decided by future
// steps, so no prefix-closed linearization function exists (the Herlihy–Wing
// failure mode, Theorem 17 regime). This is why rt::HandoffQueue commits via
// the Head fetch&add. If this starts passing, the checker or the bridge broke.
TEST(HandoffQueueSim, ScanDeliveryRefuted) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimHandoffQueue>(w, "hq", /*scan_delivery=*/true);
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(1), 0}},
                                                    {{"Enq", num(2), 1}},
                                                    {{"Deq", unit(), 2}}});
  auto res = check_queue(scenario, 3, "hq", /*max_depth=*/16, /*max_nodes=*/800000);
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "publication-order delivery must NOT verify — this refutation is why "
         "the handoff commits at its own Head fetch&add";
}

// --- 5. positive control: Herlihy–Wing on the same schedule family ----------

// The known Theorem-17 exhibit must keep refuting on the exact schedule shape
// used above. If both this and ScanDeliveryRefuted ever flip, the checker (or
// the explorer) regressed; if only this one flips, the baseline was touched.
TEST(HandoffQueueSim, HerlihyWingPositiveControlStillRefuted) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<baselines::HerlihyWingQueue>(w, "queue");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(1), 0}},
                                                    {{"Enq", num(2), 1}},
                                                    {{"Deq", unit(), 2}}});
  auto res = check_queue(scenario, 3, "queue", /*max_depth=*/14, /*max_nodes=*/500000);
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "Herlihy-Wing must NOT be strongly linearizable (Theorem 17)";
}

}  // namespace
}  // namespace c2sl
