// Shared test harness: generic workload drivers over the uniform
// ConcurrentObject API, so every construction is exercised by the same
// machinery — random-schedule linearizability sweeps, exhaustive small-config
// exploration, and strong-linearizability model checks.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/object_api.h"
#include "sim/explorer.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"
#include "util/rng.h"
#include "verify/lin_checker.h"
#include "verify/strong_lin.h"

namespace c2sl::testing {

/// Creates the object under test inside a run's world.
using ObjectFactory =
    std::function<std::shared_ptr<core::ConcurrentObject>(sim::World&, int n)>;

/// Produces the j-th invocation of process p (deterministic given the Rng).
using OpGen = std::function<verify::Invocation(int proc, int op_index, Rng& rng)>;

struct WorkloadOptions {
  int n = 3;
  int ops_per_proc = 3;
  uint64_t seed = 1;
  uint64_t max_steps = 500000;
  double crash_prob = 0.0;
  int max_crashes = 0;
};

struct WorkloadResult {
  std::vector<sim::OpRecord> ops;
  std::vector<sim::Event> events;
  bool all_done = false;
  uint64_t steps = 0;
};

/// Runs one random-schedule workload and returns the recorded history.
inline WorkloadResult run_random_workload(const ObjectFactory& factory, const OpGen& gen,
                                          const WorkloadOptions& opts) {
  sim::SimRun run(opts.n);
  std::shared_ptr<core::ConcurrentObject> obj = factory(run.world, opts.n);
  for (int p = 0; p < opts.n; ++p) {
    run.sched.spawn(p, [obj, gen, p, &opts](sim::Ctx& ctx) {
      Rng rng(opts.seed * 1000003 + static_cast<uint64_t>(p));
      for (int j = 0; j < opts.ops_per_proc; ++j) {
        verify::Invocation inv = gen(p, j, rng);
        inv.proc = p;
        core::invoke_recorded(ctx, *obj, inv);
      }
    });
  }
  sim::RandomStrategy strategy(opts.seed ^ 0xabcdef, opts.crash_prob, opts.max_crashes);
  auto rr = run.sched.run(strategy, opts.max_steps);

  WorkloadResult result;
  result.all_done = rr.all_done;
  result.steps = rr.steps;
  result.ops = run.history.operations();
  result.events = run.history.events();
  return result;
}

/// Builds a scenario (for the explorer) where each process runs a FIXED list of
/// invocations on the object under test.
inline sim::ScenarioFn fixed_scenario(const ObjectFactory& factory,
                                      std::vector<std::vector<verify::Invocation>> per_proc) {
  return [factory, per_proc = std::move(per_proc)](sim::SimRun& run) {
    std::shared_ptr<core::ConcurrentObject> obj = factory(run.world, run.n());
    for (int p = 0; p < run.n(); ++p) {
      auto invs = per_proc[static_cast<size_t>(p)];
      run.sched.spawn(p, [obj, invs, p](sim::Ctx& ctx) {
        for (verify::Invocation inv : invs) {
          inv.proc = p;
          core::invoke_recorded(ctx, *obj, inv);
        }
      });
    }
  };
}

/// Random-schedule linearizability sweep: many seeds, one verdict.
inline ::testing::AssertionResult lin_sweep(const ObjectFactory& factory, const OpGen& gen,
                                            const verify::Spec& spec,
                                            WorkloadOptions opts, int num_seeds,
                                            const std::string& object_name) {
  for (int s = 0; s < num_seeds; ++s) {
    opts.seed = static_cast<uint64_t>(s) + 1;
    WorkloadResult r = run_random_workload(factory, gen, opts);
    auto lin = verify::check_object_linearizability(r.ops, object_name, spec);
    if (!lin.decided) {
      return ::testing::AssertionFailure()
             << "seed " << s << ": linearizability check undecided (budget)";
    }
    if (!lin.linearizable) {
      return ::testing::AssertionFailure()
             << "seed " << s << ": NOT linearizable\n"
             << lin.explanation;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace c2sl::testing
