// Tests for the bit-interleaved lane codec (paper §3.1–§3.2): the invariant
// that per-process lanes are disjoint and that unary/binary deltas flip exactly
// the intended bits.
#include "util/interleave.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace c2sl {
namespace {

TEST(Lanes, GlobalBitLayout) {
  // n == 3: p0 owns bits 0,3,6,...; p1 owns 1,4,7,...; p2 owns 2,5,8,...
  EXPECT_EQ(lanes::global_bit(3, 0, 0), 0u);
  EXPECT_EQ(lanes::global_bit(3, 1, 0), 1u);
  EXPECT_EQ(lanes::global_bit(3, 2, 0), 2u);
  EXPECT_EQ(lanes::global_bit(3, 0, 1), 3u);
  EXPECT_EQ(lanes::global_bit(3, 1, 2), 7u);
}

TEST(Lanes, ExtractSpreadRoundTrip) {
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    int n = static_cast<int>(rng.next_in(1, 6));
    int i = static_cast<int>(rng.next_below(static_cast<uint64_t>(n)));
    BigInt lane;
    for (int b = 0; b < 6; ++b) lane.set_bit(rng.next_below(40), true);
    BigInt reg = lanes::spread_lane(lane, n, i);
    EXPECT_EQ(lanes::extract_lane(reg, n, i), lane);
    // Other lanes stay empty.
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        EXPECT_TRUE(lanes::extract_lane(reg, n, j).is_zero());
      }
    }
  }
}

TEST(Lanes, LanesAreDisjoint) {
  // Superimpose all lanes; extraction recovers each.
  const int n = 4;
  std::vector<BigInt> lanes_in(n);
  BigInt reg;
  Rng rng(17);
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < 5; ++b) lanes_in[static_cast<size_t>(i)].set_bit(rng.next_below(30), true);
    reg += lanes::spread_lane(lanes_in[static_cast<size_t>(i)], n, i);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(lanes::extract_lane(reg, n, i), lanes_in[static_cast<size_t>(i)]) << i;
  }
}

TEST(Lanes, UnaryRaiseDelta) {
  const int n = 3;
  const int i = 1;
  BigInt reg;
  // Raise 0 -> 3: lane bits 0,1,2 set.
  reg += lanes::unary_raise_delta(n, i, 0, 3);
  EXPECT_EQ(lanes::unary_lane_value(reg, n, i), 3u);
  // Raise 3 -> 5.
  reg += lanes::unary_raise_delta(n, i, 3, 5);
  EXPECT_EQ(lanes::unary_lane_value(reg, n, i), 5u);
  // No-op raise.
  BigInt zero_delta = lanes::unary_raise_delta(n, i, 5, 5);
  EXPECT_TRUE(zero_delta.is_zero());
  // Other lanes untouched.
  EXPECT_EQ(lanes::unary_lane_value(reg, n, 0), 0u);
  EXPECT_EQ(lanes::unary_lane_value(reg, n, 2), 0u);
}

TEST(Lanes, UnaryConcurrentLanesAccumulate) {
  const int n = 3;
  BigInt reg;
  reg += lanes::unary_raise_delta(n, 0, 0, 7);
  reg += lanes::unary_raise_delta(n, 1, 0, 2);
  reg += lanes::unary_raise_delta(n, 2, 0, 9);
  std::vector<uint64_t> values = lanes::all_unary_lanes(reg, n);
  EXPECT_EQ(values, (std::vector<uint64_t>{7, 2, 9}));
}

TEST(Lanes, BinaryRewriteDelta) {
  const int n = 4;
  const int i = 2;
  BigInt reg;
  reg += lanes::binary_rewrite_delta(n, i, BigInt(0), BigInt(13));
  EXPECT_EQ(lanes::binary_lane_value(reg, n, i).to_i64(), 13);
  reg += lanes::binary_rewrite_delta(n, i, BigInt(13), BigInt(6));
  EXPECT_EQ(lanes::binary_lane_value(reg, n, i).to_i64(), 6);
  reg += lanes::binary_rewrite_delta(n, i, BigInt(6), BigInt(0));
  EXPECT_TRUE(reg.is_zero());
}

// Property: a sequence of per-lane binary rewrites, applied through a single
// accumulating register, always reconstructs the latest value of every lane —
// the §3.2 correctness core.
TEST(LanesProperty, BinaryRewritesNeverInterfere) {
  Rng rng(99);
  for (int n : {2, 3, 5}) {
    BigInt reg;
    std::vector<BigInt> current(static_cast<size_t>(n), BigInt(0));
    for (int step = 0; step < 300; ++step) {
      int i = static_cast<int>(rng.next_below(static_cast<uint64_t>(n)));
      BigInt next(rng.next_in(0, 1 << 20));
      reg += lanes::binary_rewrite_delta(n, i, current[static_cast<size_t>(i)], next);
      current[static_cast<size_t>(i)] = next;
      std::vector<BigInt> views = lanes::all_binary_lanes(reg, n);
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(views[static_cast<size_t>(j)], current[static_cast<size_t>(j)])
            << "n=" << n << " step=" << step << " lane=" << j;
      }
    }
  }
}

// Property: unary raises through the shared register reconstruct per-process
// maxima — the §3.1 correctness core.
TEST(LanesProperty, UnaryRaisesReconstructMaxima) {
  Rng rng(123);
  for (int n : {2, 4}) {
    BigInt reg;
    std::vector<uint64_t> maxima(static_cast<size_t>(n), 0);
    for (int step = 0; step < 200; ++step) {
      int i = static_cast<int>(rng.next_below(static_cast<uint64_t>(n)));
      uint64_t target = rng.next_below(64);
      if (target > maxima[static_cast<size_t>(i)]) {
        reg += lanes::unary_raise_delta(n, i, maxima[static_cast<size_t>(i)], target);
        maxima[static_cast<size_t>(i)] = target;
      }
      ASSERT_EQ(lanes::all_unary_lanes(reg, n), maxima);
    }
  }
}

}  // namespace
}  // namespace c2sl
