// LaneRegistry (service/lane_registry.h) — the consensus-2 lane lifecycle
// behind C2Store::open_session().
//
//  1. Native unit tests: ticket order, recycling, exhaustion, release checks.
//  2. Native stress: lanes stay exclusive under real-thread churn.
//  3. The acceptance facet: the simulated twin (svc::SimLaneRegistry — F&I
//     ticket + Algorithm 2 set, same algorithm, simulated base objects) is
//     STRONGLY linearizable against verify::LaneRegistrySpec on full bounded
//     execution trees, recycling and "none free" paths included. Every
//     operation linearizes at a fixed own-step (winning exchange / fetch&add /
//     Items write / stabilised EMPTY read), so the linearization is
//     prefix-closed — this test checks that claim mechanically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "harness.h"
#include "runtime/stress.h"
#include "service/lane_registry.h"
#include "service/sim_bridge.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

namespace c2sl {
namespace {

// --- 1. native unit ---------------------------------------------------------

TEST(LaneRegistry, FreshTicketsAreDense) {
  svc::LaneRegistry reg(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reg.try_acquire(), i) << "fresh lanes come from the F&I dispenser in order";
  }
  EXPECT_EQ(reg.try_acquire(), svc::LaneRegistry::kNone);
  EXPECT_EQ(reg.tickets_issued(), 4);
}

TEST(LaneRegistry, ReleasedLanesAreRecycledNotReTicketed) {
  svc::LaneRegistry reg(2);
  int a = reg.try_acquire();
  int b = reg.try_acquire();
  EXPECT_EQ(reg.try_acquire(), svc::LaneRegistry::kNone);
  reg.release(a);
  EXPECT_EQ(reg.try_acquire(), a) << "freed lane must come back";
  reg.release(b);
  reg.release(a);
  std::set<int> again{reg.try_acquire(), reg.try_acquire()};
  EXPECT_EQ(again, (std::set<int>{0, 1}));
  EXPECT_EQ(reg.tickets_issued(), 2) << "recycling must not burn fresh tickets";
}

TEST(LaneRegistry, ReleaseValidatesTheLane) {
  svc::LaneRegistry reg(2);
  EXPECT_THROW(reg.release(-1), PreconditionError);
  EXPECT_THROW(reg.release(2), PreconditionError);
}

TEST(LaneRegistry, ExhaustedRegistryDoesNotBurnTickets) {
  svc::LaneRegistry reg(1);
  EXPECT_EQ(reg.try_acquire(), 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(reg.try_acquire(), svc::LaneRegistry::kNone);
  EXPECT_EQ(reg.tickets_issued(), 1) << "failed acquires must not drift the dispenser";
  reg.release(0);
  EXPECT_EQ(reg.try_acquire(), 0);
}

// --- 1b. blocking acquisition (the HandoffQueue wiring) ----------------------

TEST(LaneRegistry, BlockingAcquireReturnsImmediatelyWhenALaneIsFree) {
  svc::LaneRegistry reg(2);
  EXPECT_EQ(reg.acquire_blocking(), 0);
  EXPECT_EQ(reg.acquire_blocking(), 1);
  EXPECT_EQ(reg.handoff_enqueued(), 0) << "free lanes must not touch the queue";
}

TEST(LaneRegistry, AcquireForTimesOutWhenAllLanesHeld) {
  svc::LaneRegistry reg(1);
  ASSERT_EQ(reg.try_acquire(), 0);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(reg.acquire_for(std::chrono::milliseconds(5)), svc::LaneRegistry::kNone);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(5));
  // The timed-out waiter cancelled its ticket: a release must not lose the
  // lane to the dead slot.
  reg.release(0);
  EXPECT_EQ(reg.try_acquire(), 0);
}

// Blocked acquirers are served strictly in enqueue order: the registry's
// FIFO-fairness claim. Waiters are sequenced deterministically through the
// handoff_enqueued() counter, so the test pins the ORDER, not just liveness.
TEST(LaneRegistry, BlockingAcquireIsFifoFair) {
  svc::LaneRegistry reg(1);
  ASSERT_EQ(reg.try_acquire(), 0);
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int w = 0; w < 3; ++w) {
    // Admit waiter w only after waiter w-1 is enqueued: enqueue order is then
    // exactly 0, 1, 2.
    while (reg.handoff_enqueued() < w) std::this_thread::yield();
    waiters.emplace_back([&reg, &order, w] {
      int lane = reg.acquire_blocking();
      // Safe unsynchronised push: exactly one waiter holds the lane, and the
      // release -> handoff -> acquire chain orders the pushes.
      order.push_back(w);
      reg.release(lane);
    });
  }
  while (reg.handoff_enqueued() < 3) std::this_thread::yield();
  reg.release(0);  // feed the chain: 0 -> 1 -> 2
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}))
      << "handoff must serve blocked acquirers in enqueue order";
  EXPECT_EQ(reg.handoff_deliveries(), 3);
}

// --- 2. native stress -------------------------------------------------------

// Threads churn acquire/release; at every instant each lane has at most one
// owner. Ownership is tracked with per-lane atomic flags: a second owner of
// the same lane would trip the exchange check.
TEST(LaneRegistryStress, LanesStayExclusiveUnderChurn) {
  const int threads = 4;
  const int per_thread = 2000;
  const int max_lanes = 3;  // fewer lanes than threads: contention + kNone paths
  svc::LaneRegistry reg(max_lanes);
  std::vector<std::atomic<int>> owner_flag(static_cast<size_t>(max_lanes));
  for (auto& f : owner_flag) f.store(0);
  std::atomic<int> acquired{0};
  std::atomic<bool> ok{true};
  rt::run_stress(threads, per_thread, [&](int, int) {
    rt::TimedOp op;
    int lane = reg.try_acquire();
    if (lane == svc::LaneRegistry::kNone) return op;  // all held right now
    acquired.fetch_add(1);
    if (owner_flag[static_cast<size_t>(lane)].exchange(1) != 0) {
      ok.store(false);  // two concurrent owners of one lane
    }
    owner_flag[static_cast<size_t>(lane)].store(0);
    reg.release(lane);
    return op;
  });
  EXPECT_TRUE(ok.load()) << "a lane was held by two threads at once";
  EXPECT_GT(acquired.load(), 0);
  // The dispenser may stay below the lane bound (recycling can satisfy every
  // acquire after the first) and may overshoot it by at most one ticket per
  // thread racing the exhaustion window (the pre-read gate is not atomic
  // with the fetch_add; each thread can slip through it at most once).
  EXPECT_GE(reg.tickets_issued(), 1);
  EXPECT_LE(reg.tickets_issued(), max_lanes + threads);
  // Quiescent: all lanes free again.
  std::set<int> drained;
  for (int i = 0; i < max_lanes; ++i) drained.insert(reg.try_acquire());
  EXPECT_EQ(drained, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(reg.try_acquire(), svc::LaneRegistry::kNone);
}

// --- 3. the sim facet: strongly linearizable --------------------------------

verify::StrongLinResult check_lanes(const sim::ScenarioFn& scenario, int n,
                                    int max_lanes, const std::string& object) {
  sim::ExploreOptions opts;
  opts.max_depth = 40;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::LaneRegistrySpec spec(max_lanes);
  verify::StrongLinOptions slopts;
  slopts.object = object;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

// One lane, two processes: every interleaving of {fresh ticket, recycle after
// release, kNone when held} must admit a prefix-closed linearization. This is
// the configuration where acquire's linearization point matters most — P1's
// acquire races P0's release.
TEST(LaneRegistrySim, AcquireReleaseStronglyLinearizable) {
  auto scenario = [](sim::SimRun& run) {
    auto reg = std::make_shared<svc::SimLaneRegistry>(run.world, "lanes", 1);
    run.sched.spawn(0, [reg](sim::Ctx& ctx) {
      int64_t a = reg->acquire(ctx);  // fresh 0, recycled 0, or kNone — races P1
      if (a != svc::SimLaneRegistry::kNone) reg->release(ctx, a);
    });
    run.sched.spawn(1, [reg](sim::Ctx& ctx) {
      int64_t b = reg->acquire(ctx);  // fresh-loser: recycled 0 or kNone
      if (b != svc::SimLaneRegistry::kNone) reg->release(ctx, b);
    });
  };
  auto res = check_lanes(scenario, 2, 1, "lanes");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Two lanes, two processes: concurrent fresh acquires must hand out distinct
// lanes; P0 then releases and re-acquires, racing its own freed lane against
// the remaining fresh ticket. (Three processes overflow the node budget —
// acquire is ~6 gated steps, and the tree is branching^depth.)
TEST(LaneRegistrySim, ConcurrentAcquiresGetDistinctLanes) {
  auto scenario = [](sim::SimRun& run) {
    auto reg = std::make_shared<svc::SimLaneRegistry>(run.world, "lanes", 2);
    run.sched.spawn(0, [reg](sim::Ctx& ctx) {
      int64_t a = reg->acquire(ctx);
      reg->release(ctx, a);      // both fresh tickets fit two procs: a != kNone
      reg->acquire(ctx);         // recycled a or the last fresh ticket
    });
    run.sched.spawn(1, [reg](sim::Ctx& ctx) { reg->acquire(ctx); });
  };
  auto res = check_lanes(scenario, 2, 2, "lanes");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

}  // namespace
}  // namespace c2sl
