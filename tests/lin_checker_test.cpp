// Unit tests for the linearizability checker against hand-crafted histories
// with known verdicts, including pending operations and nondeterministic
// (relaxed) specifications.
#include "verify/lin_checker.h"

#include <gtest/gtest.h>

#include "verify/specs.h"

namespace c2sl {
namespace {

using sim::OpRecord;

/// Builds an OpRecord with explicit interval endpoints.
OpRecord op(sim::OpId id, int proc, std::string name, Val args, Val resp,
            uint64_t inv_seq, uint64_t resp_seq) {
  OpRecord r;
  r.id = id;
  r.proc = proc;
  r.object = "obj";
  r.name = std::move(name);
  r.args = std::move(args);
  r.complete = true;
  r.resp = std::move(resp);
  r.inv_seq = inv_seq;
  r.resp_seq = resp_seq;
  return r;
}

OpRecord pending_op(sim::OpId id, int proc, std::string name, Val args, uint64_t inv_seq) {
  OpRecord r;
  r.id = id;
  r.proc = proc;
  r.object = "obj";
  r.name = std::move(name);
  r.args = std::move(args);
  r.complete = false;
  r.inv_seq = inv_seq;
  return r;
}

TEST(LinChecker, EmptyHistoryIsLinearizable) {
  verify::QueueSpec spec;
  auto res = verify::check_linearizability({}, spec);
  EXPECT_TRUE(res.linearizable);
}

TEST(LinChecker, SequentialQueueHistory) {
  verify::QueueSpec spec;
  std::vector<OpRecord> h = {
      op(0, 0, "Enq", num(1), str("OK"), 0, 1),
      op(1, 0, "Enq", num(2), str("OK"), 2, 3),
      op(2, 1, "Deq", unit(), num(1), 4, 5),
      op(3, 1, "Deq", unit(), num(2), 6, 7),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_TRUE(res.linearizable);
  ASSERT_EQ(res.witness.size(), 4u);
  EXPECT_EQ(res.witness[0].first, 0);
}

TEST(LinChecker, FifoViolationRejected) {
  verify::QueueSpec spec;
  // Enq(1) strictly before Enq(2), but Deq returns 2 first: not linearizable.
  std::vector<OpRecord> h = {
      op(0, 0, "Enq", num(1), str("OK"), 0, 1),
      op(1, 0, "Enq", num(2), str("OK"), 2, 3),
      op(2, 1, "Deq", unit(), num(2), 4, 5),
      op(3, 1, "Deq", unit(), num(1), 6, 7),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_FALSE(res.linearizable);
  EXPECT_TRUE(res.decided);
  EXPECT_NE(res.explanation.find("no linearization"), std::string::npos);
}

TEST(LinChecker, ConcurrentEnqsAllowEitherOrder) {
  verify::QueueSpec spec;
  // Overlapping Enq(1)/Enq(2); dequeues can observe either order.
  for (int first : {1, 2}) {
    std::vector<OpRecord> h = {
        op(0, 0, "Enq", num(1), str("OK"), 0, 3),
        op(1, 1, "Enq", num(2), str("OK"), 1, 2),
        op(2, 2, "Deq", unit(), num(first), 4, 5),
        op(3, 2, "Deq", unit(), num(3 - first), 6, 7),
    };
    auto res = verify::check_linearizability(h, spec);
    EXPECT_TRUE(res.linearizable) << "first=" << first;
  }
}

TEST(LinChecker, RealTimeOrderIsRespected) {
  verify::MaxRegisterSpec spec;
  // WriteMax(5) completes before ReadMax starts; the read must see >= 5.
  std::vector<OpRecord> h = {
      op(0, 0, "WriteMax", num(5), unit(), 0, 1),
      op(1, 1, "ReadMax", unit(), num(0), 2, 3),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_FALSE(res.linearizable);
}

TEST(LinChecker, PendingOperationMayBeIncluded) {
  verify::QueueSpec spec;
  // Deq returned 7 although Enq(7) is still pending: the pending Enq must be
  // linearized before the Deq.
  std::vector<OpRecord> h = {
      pending_op(0, 0, "Enq", num(7), 0),
      op(1, 1, "Deq", unit(), num(7), 1, 2),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_TRUE(res.linearizable);
  ASSERT_EQ(res.witness.size(), 2u);
  EXPECT_EQ(res.witness[0].first, 0);  // the pending Enq linearized first
}

TEST(LinChecker, PendingOperationMayBeExcluded) {
  verify::QueueSpec spec;
  // A pending Enq need not be linearized: Deq -> EMPTY remains valid.
  std::vector<OpRecord> h = {
      pending_op(0, 0, "Enq", num(7), 0),
      op(1, 1, "Deq", unit(), str("EMPTY"), 1, 2),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_TRUE(res.linearizable);
}

TEST(LinChecker, PendingCannotBeInvokedInTheFuture) {
  verify::QueueSpec spec;
  // Deq->7 completes BEFORE Enq(7) is invoked: never linearizable.
  std::vector<OpRecord> h = {
      op(0, 1, "Deq", unit(), num(7), 0, 1),
      pending_op(1, 0, "Enq", num(7), 2),
  };
  auto res = verify::check_linearizability(h, spec);
  EXPECT_FALSE(res.linearizable);
}

TEST(LinChecker, SnapshotRegularity) {
  verify::SnapshotSpec spec(2);
  // p0 updates to 3; overlapping scan may see [0,0] or [3,0].
  std::vector<OpRecord> ok = {
      op(0, 0, "Update", num(3), unit(), 0, 3),
      op(1, 1, "Scan", unit(), vec({3, 0}), 1, 2),
  };
  EXPECT_TRUE(verify::check_linearizability(ok, spec).linearizable);

  // But after Update completed, a later scan cannot miss it.
  std::vector<OpRecord> bad = {
      op(0, 0, "Update", num(3), unit(), 0, 1),
      op(1, 1, "Scan", unit(), vec({0, 0}), 2, 3),
  };
  EXPECT_FALSE(verify::check_linearizability(bad, spec).linearizable);
}

TEST(LinChecker, NewOldInversionRejected) {
  verify::SnapshotSpec spec(2);
  // Two sequential scans: the first sees the update, the second does not.
  std::vector<OpRecord> h = {
      op(0, 0, "Update", num(3), unit(), 0, 5),
      op(1, 1, "Scan", unit(), vec({3, 0}), 1, 2),
      op(2, 1, "Scan", unit(), vec({0, 0}), 3, 4),
  };
  EXPECT_FALSE(verify::check_linearizability(h, spec).linearizable);
}

TEST(LinChecker, NondeterministicSetTake) {
  verify::SetSpec spec;
  // Take may remove either element.
  for (int taken : {1, 2}) {
    std::vector<OpRecord> h = {
        op(0, 0, "Put", num(1), str("OK"), 0, 1),
        op(1, 0, "Put", num(2), str("OK"), 2, 3),
        op(2, 1, "Take", unit(), num(taken), 4, 5),
    };
    EXPECT_TRUE(verify::check_linearizability(h, spec).linearizable) << taken;
  }
  // But it cannot return an item never put.
  std::vector<OpRecord> bad = {
      op(0, 0, "Put", num(1), str("OK"), 0, 1),
      op(1, 1, "Take", unit(), num(9), 2, 3),
  };
  EXPECT_FALSE(verify::check_linearizability(bad, spec).linearizable);
}

TEST(LinChecker, KOutOfOrderQueueWindow) {
  // 2-out-of-order queue: Deq may return the 2nd oldest, not the 3rd.
  verify::QueueSpec relaxed(2);
  std::vector<OpRecord> base = {
      op(0, 0, "Enq", num(1), str("OK"), 0, 1),
      op(1, 0, "Enq", num(2), str("OK"), 2, 3),
      op(2, 0, "Enq", num(3), str("OK"), 4, 5),
  };
  {
    auto h = base;
    h.push_back(op(3, 1, "Deq", unit(), num(2), 6, 7));
    EXPECT_TRUE(verify::check_linearizability(h, relaxed).linearizable);
  }
  {
    auto h = base;
    h.push_back(op(3, 1, "Deq", unit(), num(3), 6, 7));
    EXPECT_FALSE(verify::check_linearizability(h, relaxed).linearizable);
  }
}

TEST(LinChecker, StutteringQueueAllowsBoundedNoOps) {
  verify::StutteringQueueSpec spec(1);  // m == 1
  // One enqueue may stutter: two identical Deq responses are allowed...
  std::vector<OpRecord> h = {
      op(0, 0, "Enq", num(1), str("OK"), 0, 1),
      op(1, 1, "Deq", unit(), num(1), 2, 3),
      op(2, 1, "Deq", unit(), num(1), 4, 5),
  };
  EXPECT_TRUE(verify::check_linearizability(h, spec).linearizable);
  // ...but not three in a row (at least one of m+1 consecutive ops must land).
  std::vector<OpRecord> bad = h;
  bad.push_back(op(3, 1, "Deq", unit(), num(1), 6, 7));
  EXPECT_FALSE(verify::check_linearizability(bad, spec).linearizable);
}

TEST(LinChecker, TasSpecSingleWinner) {
  verify::TasSpec spec;
  std::vector<OpRecord> good = {
      op(0, 0, "TAS", unit(), num(0), 0, 3),
      op(1, 1, "TAS", unit(), num(1), 1, 2),
  };
  EXPECT_TRUE(verify::check_linearizability(good, spec).linearizable);
  std::vector<OpRecord> two_winners = {
      op(0, 0, "TAS", unit(), num(0), 0, 3),
      op(1, 1, "TAS", unit(), num(0), 1, 2),
  };
  EXPECT_FALSE(verify::check_linearizability(two_winners, spec).linearizable);
}

TEST(LinChecker, RejectsOversizedHistories) {
  verify::CounterSpec spec;
  std::vector<OpRecord> h;
  for (int i = 0; i < 65; ++i) h.push_back(op(i, 0, "Inc", unit(), unit(), 2 * i, 2 * i + 1));
  auto res = verify::check_linearizability(h, spec);
  EXPECT_FALSE(res.decided);
}

}  // namespace
}  // namespace c2sl
