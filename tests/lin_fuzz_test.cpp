// Seeded randomized differential fuzz for the linearizability checker.
//
// The Wing–Gong checker in verify/lin_checker.* is itself load-bearing: the
// strong-linearizability verdicts in the sim tests (and the PINNED refutations)
// are only as trustworthy as its search. This harness cross-checks it against
// an independent brute-force enumerator that implements the checker's contract
// from scratch — "a sequence containing every complete operation (with its
// actual response) and any subset of the pending operations (with spec-chosen
// responses), that respects real-time order and is a valid sequential
// execution" — with no memoisation, no bitmask tricks, nothing shared with the
// implementation under test.
//
// Histories are generated from a hidden sequential execution (so uncorrupted
// histories are linearizable by construction), then ~30% get one completed
// response mutated (so refutations occur by construction). Both verdict
// classes are asserted to appear; on any disagreement the failure message
// carries the seed and iteration for exact replay via --seed=<n>.
//
// This binary has its own main() (no gtest_main): it parses --seed=<n> and
// logs the seed in effect so every run is replayable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/history.h"
#include "util/rng.h"
#include "util/value.h"
#include "verify/lin_checker.h"
#include "verify/spec.h"
#include "verify/specs.h"

namespace c2sl {

/// Seed in effect for the whole binary; overridden by --seed=<n> in main().
uint64_t g_seed = 0xC2515EEDULL;

namespace {

// ----------------------------------------------------------------- generator

/// The spec pool. A mix of deterministic (counter, max-register, fetch&inc)
/// and nondeterministic (set: Take returns an arbitrary element; queue under
/// pending Enqs) specs, so the brute force has to explore genuine branching.
enum class SpecKind { kCounter = 0, kMaxRegister, kFai, kSet, kQueue, kCount };

const verify::Spec& spec_for(SpecKind kind) {
  static const verify::CounterSpec counter;
  static const verify::MaxRegisterSpec max_register;
  static const verify::FaiSpec fai;
  static const verify::SetSpec set;
  static const verify::QueueSpec queue;
  switch (kind) {
    case SpecKind::kCounter: return counter;
    case SpecKind::kMaxRegister: return max_register;
    case SpecKind::kFai: return fai;
    case SpecKind::kSet: return set;
    default: return queue;
  }
}

/// A random invocation legal for the given spec.
std::pair<std::string, Val> gen_call(SpecKind kind, Rng& rng) {
  switch (kind) {
    case SpecKind::kCounter:
      return rng.next_bool(0.6) ? std::pair<std::string, Val>{"Inc", unit()}
                                : std::pair<std::string, Val>{"Read", unit()};
    case SpecKind::kMaxRegister:
      return rng.next_bool(0.6)
                 ? std::pair<std::string, Val>{"WriteMax", num(rng.next_in(0, 5))}
                 : std::pair<std::string, Val>{"ReadMax", unit()};
    case SpecKind::kFai:
      return rng.next_bool(0.6) ? std::pair<std::string, Val>{"FAI", unit()}
                                : std::pair<std::string, Val>{"Read", unit()};
    case SpecKind::kSet:
      return rng.next_bool(0.55)
                 ? std::pair<std::string, Val>{"Put", num(rng.next_in(1, 4))}
                 : std::pair<std::string, Val>{"Take", unit()};
    default:
      return rng.next_bool(0.55)
                 ? std::pair<std::string, Val>{"Enq", num(rng.next_in(1, 4))}
                 : std::pair<std::string, Val>{"Deq", unit()};
  }
}

/// Builds a history by simulating a hidden sequential execution: each op is
/// invoked, later linearized (a spec transition is applied to the hidden
/// state), and later still responded. Ops invoked but not yet responded when
/// generation stops are left pending — some linearized (their effect is in the
/// hidden state), some not, exactly the ambiguity the checker must handle.
std::vector<sim::OpRecord> gen_history(SpecKind kind, const verify::Spec& spec,
                                       Rng& rng, bool leave_pending) {
  const int n_procs = static_cast<int>(rng.next_in(2, 3));
  const int total = static_cast<int>(rng.next_in(3, 7));
  std::vector<sim::OpRecord> ops;
  std::vector<Val> chosen(static_cast<size_t>(total));
  std::vector<bool> linearized(static_cast<size_t>(total), false);
  std::vector<int> proc_op(static_cast<size_t>(n_procs), -1);  // in-flight op
  std::string state = spec.initial();
  uint64_t seq = 1;
  int invoked = 0;
  for (;;) {
    std::vector<int> idle, can_lin, can_resp;
    for (int p = 0; p < n_procs; ++p)
      if (proc_op[static_cast<size_t>(p)] < 0) idle.push_back(p);
    for (int p = 0; p < n_procs; ++p) {
      int i = proc_op[static_cast<size_t>(p)];
      if (i < 0) continue;
      (linearized[static_cast<size_t>(i)] ? can_resp : can_lin).push_back(i);
    }
    const bool may_invoke = invoked < total && !idle.empty();
    if (!may_invoke && can_lin.empty() && can_resp.empty()) break;
    // Once everything is invoked, sometimes stop early and leave the
    // in-flight ops pending.
    if (invoked == total && (leave_pending || rng.next_bool(0.15))) break;
    // Weighted action choice among the available moves.
    std::vector<int> actions;
    if (may_invoke) actions.insert(actions.end(), 3, 0);
    if (!can_lin.empty()) actions.insert(actions.end(), 2, 1);
    if (!can_resp.empty()) actions.insert(actions.end(), 2, 2);
    switch (rng.pick(actions)) {
      case 0: {
        int p = rng.pick(idle);
        auto [name, args] = gen_call(kind, rng);
        sim::OpRecord rec;
        rec.id = static_cast<sim::OpId>(ops.size());
        rec.proc = p;
        rec.object = spec.name();
        rec.name = name;
        rec.args = args;
        rec.inv_seq = seq++;
        ops.push_back(rec);
        proc_op[static_cast<size_t>(p)] = static_cast<int>(rec.id);
        ++invoked;
        break;
      }
      case 1: {
        int i = rng.pick(can_lin);
        const sim::OpRecord& rec = ops[static_cast<size_t>(i)];
        verify::Invocation inv;
        inv.name = rec.name;
        inv.args = rec.args;
        inv.proc = rec.proc;
        auto trs = spec.next(state, inv);
        C2SL_CHECK(!trs.empty(), "generator produced an illegal invocation");
        const verify::Transition& tr =
            trs[rng.next_below(static_cast<uint64_t>(trs.size()))];
        state = tr.state;
        chosen[static_cast<size_t>(i)] = tr.resp;
        linearized[static_cast<size_t>(i)] = true;
        break;
      }
      default: {
        int i = rng.pick(can_resp);
        sim::OpRecord& rec = ops[static_cast<size_t>(i)];
        rec.complete = true;
        rec.resp = chosen[static_cast<size_t>(i)];
        rec.resp_seq = seq++;
        proc_op[static_cast<size_t>(rec.proc)] = -1;
        break;
      }
    }
  }
  return ops;
}

/// Type-plausible mutation of a completed response. Mutating a numeric
/// response keeps the type; unit/string responses become numbers (a Take that
/// "returned" an element, an Inc that "returned" a value) — both shapes of
/// refutation the sim layer can produce.
Val mutate_resp(const Val& v, Rng& rng) {
  if (std::holds_alternative<int64_t>(v))
    return num(std::get<int64_t>(v) + rng.next_in(1, 3));
  return num(rng.next_in(1, 4));
}

std::string render_history(const std::vector<sim::OpRecord>& ops) {
  std::ostringstream out;
  for (const sim::OpRecord& op : ops) {
    out << "  op " << op.id << " proc " << op.proc << " " << op.name << "("
        << to_string(op.args) << ") inv@" << op.inv_seq;
    if (op.complete)
      out << " -> " << to_string(op.resp) << " @" << op.resp_seq;
    else
      out << " pending";
    out << "\n";
  }
  return out.str();
}

// --------------------------------------------------------------- brute force

/// Independent enumerator of the checker's contract. Plain DFS over the
/// subset of ops placed so far: an op is eligible next iff no *unplaced*
/// completed op finished before it was invoked (real-time order); completed
/// ops must reproduce their actual response; pending ops may take any
/// spec-chosen response or be left out entirely. Success as soon as every
/// completed op is placed. No memoisation — at <= 7 ops the state space is
/// tiny, and sharing nothing with lin_checker is the point.
bool brute_linearizable(const std::vector<sim::OpRecord>& ops,
                        const verify::Spec& spec, uint64_t used,
                        const std::string& state) {
  bool all_complete_used = true;
  for (size_t i = 0; i < ops.size(); ++i)
    if (ops[i].complete && !((used >> i) & 1)) all_complete_used = false;
  if (all_complete_used) return true;
  for (size_t i = 0; i < ops.size(); ++i) {
    if ((used >> i) & 1) continue;
    bool eligible = true;
    for (size_t j = 0; j < ops.size(); ++j) {
      if (((used >> j) & 1) || j == i) continue;
      if (ops[j].complete && ops[j].resp_seq < ops[i].inv_seq) eligible = false;
    }
    if (!eligible) continue;
    verify::Invocation inv;
    inv.name = ops[i].name;
    inv.args = ops[i].args;
    inv.proc = ops[i].proc;
    for (const verify::Transition& tr : spec.next(state, inv)) {
      if (ops[i].complete && !(tr.resp == ops[i].resp)) continue;
      if (brute_linearizable(ops, spec, used | (uint64_t{1} << i), tr.state))
        return true;
    }
  }
  return false;
}

// -------------------------------------------------------------------- tests

struct FuzzTally {
  int linearizable = 0;
  int refuted = 0;
  int undecided = 0;
};

/// Runs `iters` seeded histories and asserts verdict agreement on each.
FuzzTally run_differential(int iters, uint64_t salt, bool leave_pending) {
  FuzzTally tally;
  Rng master(g_seed ^ salt);
  for (int it = 0; it < iters; ++it) {
    Rng rng = master.fork(static_cast<uint64_t>(it));
    auto kind = static_cast<SpecKind>(
        rng.next_below(static_cast<uint64_t>(SpecKind::kCount)));
    const verify::Spec& spec = spec_for(kind);
    std::vector<sim::OpRecord> ops = gen_history(kind, spec, rng, leave_pending);
    // ~30% of histories get one completed response corrupted so that the
    // "not linearizable" verdict is exercised as heavily as the happy path.
    std::vector<size_t> complete;
    for (size_t i = 0; i < ops.size(); ++i)
      if (ops[i].complete) complete.push_back(i);
    if (!complete.empty() && rng.next_bool(0.3)) {
      size_t victim = rng.pick(complete);
      ops[victim].resp = mutate_resp(ops[victim].resp, rng);
    }
    verify::LinResult res = verify::check_linearizability(ops, spec);
    if (!res.decided) {
      ++tally.undecided;
      continue;
    }
    bool expect = brute_linearizable(ops, spec, 0, spec.initial());
    EXPECT_EQ(res.linearizable, expect)
        << "checker and brute force disagree on spec " << spec.name()
        << " at iteration " << it << " (seed " << g_seed
        << "; replay with --seed=" << g_seed << ")\nhistory:\n"
        << render_history(ops) << "checker said "
        << (res.linearizable ? "linearizable" : "NOT linearizable")
        << ", brute force says " << (expect ? "linearizable" : "NOT")
        << "\n" << res.explanation;
    if (res.linearizable != expect) return tally;  // stop at first divergence
    ++(res.linearizable ? tally.linearizable : tally.refuted);
  }
  return tally;
}

// The main differential sweep: 10k seeded histories across the spec pool,
// checker vs. brute force, exact agreement required wherever the checker
// decides (it always decides at these sizes — asserted below).
TEST(LinFuzz, CheckerAgreesWithBruteForceOn10kHistories) {
  FuzzTally tally = run_differential(10000, /*salt=*/0, /*leave_pending=*/false);
  EXPECT_EQ(tally.undecided, 0) << "7-op histories must never exhaust the budget";
  // Both verdict classes must actually occur, or the sweep proves nothing.
  EXPECT_GT(tally.linearizable, 1000);
  EXPECT_GT(tally.refuted, 100);
}

// Pending-heavy variant: generation stops the moment the last op is invoked,
// so every history ends with in-flight ops (some linearized into the hidden
// state, some not). This leans on the subtlest part of the contract — the
// checker may linearize a pending op with a response of its choosing.
TEST(LinFuzz, CheckerAgreesWithBruteForceOnPendingHeavyHistories) {
  FuzzTally tally = run_differential(2000, /*salt=*/0x9E3779B9ULL,
                                     /*leave_pending=*/true);
  EXPECT_EQ(tally.undecided, 0);
  EXPECT_GT(tally.linearizable, 200);
  EXPECT_GT(tally.refuted, 20);
}

}  // namespace
}  // namespace c2sl

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0)
      c2sl::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
  }
  std::cerr << "lin_fuzz seed: " << c2sl::g_seed
            << " (replay any failure with --seed=" << c2sl::g_seed << ")\n";
  return RUN_ALL_TESTS();
}
