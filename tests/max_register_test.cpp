// Theorem 1 (paper §3.1): the fetch&add max register is wait-free and
// (strongly) linearizable. This file covers sequential semantics, randomized-
// schedule linearizability sweeps across n/seeds/crash injection, wait-freedom
// step bounds, and the §6 register-width observation. Strong-linearizability
// model checks live in strong_lin_positive_test.cpp.
#include "core/max_register_faa.h"

#include <gtest/gtest.h>

#include "core/max_register_variants.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using testing::ObjectFactory;
using testing::OpGen;
using testing::WorkloadOptions;

ObjectFactory faa_factory() {
  return [](sim::World& w, int n) {
    return std::make_shared<core::MaxRegisterFAA>(w, "maxreg", n);
  };
}

OpGen write_read_mix(int64_t max_value) {
  return [max_value](int, int, Rng& rng) {
    if (rng.next_bool(0.5)) {
      return verify::Invocation{"WriteMax", num(rng.next_in(0, max_value)), -1};
    }
    return verify::Invocation{"ReadMax", unit(), -1};
  };
}

TEST(MaxRegisterFAA, SequentialSemantics) {
  sim::World world;
  core::MaxRegisterFAA m(world, "m", 3);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 0;
  EXPECT_EQ(m.read_max(solo), 0);
  m.write_max(solo, 5);
  EXPECT_EQ(m.read_max(solo), 5);
  m.write_max(solo, 3);  // smaller: no effect
  EXPECT_EQ(m.read_max(solo), 5);
  m.write_max(solo, 9);
  EXPECT_EQ(m.read_max(solo), 9);
}

TEST(MaxRegisterFAA, PerProcessLanesCombine) {
  sim::World world;
  core::MaxRegisterFAA m(world, "m", 3);
  sim::Ctx c0, c1, c2;
  c0.world = c1.world = c2.world = &world;
  c0.self = 0;
  c1.self = 1;
  c2.self = 2;
  m.write_max(c0, 4);
  m.write_max(c1, 7);
  m.write_max(c2, 2);
  EXPECT_EQ(m.read_max(c0), 7);
  m.write_max(c2, 11);
  EXPECT_EQ(m.read_max(c1), 11);
}

TEST(MaxRegisterFAA, RejectsNegativeValues) {
  sim::World world;
  core::MaxRegisterFAA m(world, "m", 2);
  sim::Ctx solo;
  solo.world = &world;
  EXPECT_THROW(m.write_max(solo, -1), PreconditionError);
}

// Randomized-schedule linearizability sweep (the paper's claim is strong
// linearizability, which implies this; the sweep covers much bigger configs
// than the exhaustive model check can).
TEST(MaxRegisterFAA, LinearizableUnderRandomSchedules) {
  verify::MaxRegisterSpec spec;
  for (int n : {2, 3, 4}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 4;
    EXPECT_TRUE(testing::lin_sweep(faa_factory(), write_read_mix(20), spec, opts,
                                   /*num_seeds=*/40, "maxreg"))
        << "n=" << n;
  }
}

TEST(MaxRegisterFAA, LinearizableUnderCrashes) {
  verify::MaxRegisterSpec spec;
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  opts.crash_prob = 0.02;
  opts.max_crashes = 2;
  EXPECT_TRUE(testing::lin_sweep(faa_factory(), write_read_mix(10), spec, opts,
                                 /*num_seeds=*/40, "maxreg"));
}

// Wait-freedom: every operation is exactly ONE base-object step regardless of
// contention (the strongest possible step bound).
TEST(MaxRegisterFAA, EveryOperationIsOneStep) {
  sim::SimRun run(3);
  auto obj = std::make_shared<core::MaxRegisterFAA>(run.world, "m", 3);
  std::vector<uint64_t> per_op_steps;
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [obj, &per_op_steps](sim::Ctx& ctx) {
      for (int j = 0; j < 5; ++j) {
        uint64_t before = ctx.steps_taken;
        if (j % 2 == 0) {
          obj->write_max(ctx, 3 * j + ctx.self);
        } else {
          obj->read_max(ctx);
        }
        per_op_steps.push_back(ctx.steps_taken - before);
      }
    });
  }
  sim::RandomStrategy strategy(11);
  run.sched.run(strategy, 10000);
  ASSERT_EQ(per_op_steps.size(), 15u);
  for (uint64_t s : per_op_steps) EXPECT_EQ(s, 1u);
}

// Wait-freedom under starvation: once the victim IS scheduled, its operation
// completes within its own step bound (here: the single fetch&add).
TEST(MaxRegisterFAA, VictimCompletesOnceScheduled) {
  sim::SimRun run(3);
  auto obj = std::make_shared<core::MaxRegisterFAA>(run.world, "m", 3);
  bool victim_done = false;
  run.sched.spawn(0, [obj, &victim_done](sim::Ctx& ctx) {
    obj->write_max(ctx, 42);
    victim_done = true;
  });
  for (int p = 1; p < 3; ++p) {
    run.sched.spawn(p, [obj](sim::Ctx& ctx) {
      for (int j = 0; j < 20; ++j) obj->write_max(ctx, j);
    });
  }
  sim::StarveStrategy starve(/*victim=*/0, /*seed=*/3);
  run.sched.run(starve, 10000);
  EXPECT_TRUE(victim_done);  // starvation delays but cannot prevent completion
}

// §6: the unary encoding makes the register width grow with n * max-value —
// the price of the construction the Discussion highlights as an open problem.
TEST(MaxRegisterFAA, RegisterWidthGrowsUnary) {
  sim::World world;
  core::MaxRegisterFAA m(world, "m", 4);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 2;
  m.write_max(solo, 100);
  uint64_t bits = m.register_bits(solo);
  // Lane bit 99 of process 2 with n == 4 sits at global position 99*4+2.
  EXPECT_EQ(bits, 99u * 4 + 2 + 1);
}

// The bounded register-based variant agrees with the FAA variant on random
// sequential workloads (differential test).
TEST(MaxRegisterVariants, BoundedTreeMatchesFAASequentially) {
  sim::World world;
  core::MaxRegisterFAA faa(world, "faa", 2);
  core::BoundedRWMaxRegister tree(world, "tree", 64);
  core::AtomicMaxRegister atomic(world, "atomic");
  sim::Ctx solo;
  solo.world = &world;
  Rng rng(77);
  for (int step = 0; step < 300; ++step) {
    solo.self = static_cast<int>(rng.next_below(2));
    int64_t v = rng.next_in(0, 63);
    faa.write_max(solo, v);
    tree.write_max(solo, v);
    atomic.write_max(solo, v);
    ASSERT_EQ(faa.read_max(solo), tree.read_max(solo));
    ASSERT_EQ(faa.read_max(solo), atomic.read_max(solo));
  }
}

TEST(MaxRegisterVariants, BoundedTreeLinearizableUnderRandomSchedules) {
  verify::MaxRegisterSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<core::BoundedRWMaxRegister>(w, "maxreg", 32);
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, write_read_mix(31), spec, opts,
                                 /*num_seeds=*/40, "maxreg"));
}

TEST(MaxRegisterVariants, CollectLinearizableUnderRandomSchedules) {
  verify::MaxRegisterSpec spec;
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::make_shared<core::CollectMaxRegister>(w, "maxreg", n);
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, write_read_mix(16), spec, opts,
                                 /*num_seeds=*/40, "maxreg"));
}

// Parameterized sweep: linearizability across (n, value range) combinations.
class MaxRegisterSweep : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(MaxRegisterSweep, Linearizable) {
  auto [n, range] = GetParam();
  verify::MaxRegisterSpec spec;
  WorkloadOptions opts;
  opts.n = n;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(faa_factory(), write_read_mix(range), spec, opts,
                                 /*num_seeds=*/15, "maxreg"));
}

INSTANTIATE_TEST_SUITE_P(Configs, MaxRegisterSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(int64_t{3}, int64_t{50})));

}  // namespace
}  // namespace c2sl
