// Real std::thread stress tests of the native (bounded, 64-bit lane)
// constructions, with post-hoc linearizability checking of the recorded
// histories and semantic invariant checks at higher volume.
#include <gtest/gtest.h>

#include <set>

#include "runtime/native_max_register.h"
#include "runtime/native_snapshot.h"
#include "runtime/native_tas_family.h"
#include "runtime/stress.h"
#include "util/rng.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

std::vector<sim::OpRecord> to_records(const std::vector<rt::TimedOp>& ops) {
  std::vector<sim::OpRecord> out;
  out.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const rt::TimedOp& t = ops[i];
    sim::OpRecord r;
    r.id = static_cast<sim::OpId>(i);
    r.proc = t.thread;
    r.object = "native";
    r.name = t.name;
    r.args = num(t.arg);
    r.complete = true;
    if (t.name == "WriteMax" || t.name == "Update") {
      r.resp = unit();
    } else if (t.name == "Scan") {
      r.resp = unit();  // filled by caller when needed
    } else {
      r.resp = num(t.resp);
    }
    r.inv_seq = t.inv_seq;
    r.resp_seq = t.resp_seq;
    out.push_back(std::move(r));
  }
  return out;
}

TEST(NativeMaxRegister, StressHistoriesLinearizable) {
  const int threads = 3;
  const int ops = 5;  // 15 ops total: within the checker's 64-op limit
  for (int round = 0; round < 8; ++round) {
    rt::NativeMaxRegister64 reg(threads, 10);
    std::vector<Rng> rngs;
    for (int t = 0; t < threads; ++t) rngs.emplace_back(1000 * round + t);
    auto history = rt::run_stress(threads, ops, [&](int t, int) {
      rt::TimedOp op;
      if (rngs[static_cast<size_t>(t)].next_bool(0.5)) {
        op.name = "WriteMax";
        op.arg = rngs[static_cast<size_t>(t)].next_in(0, 10);
        reg.write_max(t, op.arg);
      } else {
        op.name = "ReadMax";
        op.resp = reg.read_max();
      }
      return op;
    });
    verify::MaxRegisterSpec spec;
    auto records = to_records(history);
    auto res = verify::check_linearizability(records, spec);
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "round " << round << "\n" << res.explanation;
  }
}

TEST(NativeMaxRegister, MonotoneReadsHighVolume) {
  const int threads = 4;
  rt::NativeMaxRegister64 reg(threads, 15);
  std::vector<std::atomic<int64_t>> last_read(threads);
  std::atomic<bool> monotone{true};
  rt::run_stress(threads, 2000, [&](int t, int j) {
    rt::TimedOp op;
    if (j % 3 == 0) {
      op.name = "WriteMax";
      op.arg = (j / 3) % 16;
      reg.write_max(t, op.arg);
    } else {
      op.name = "ReadMax";
      op.resp = reg.read_max();
      int64_t prev = last_read[static_cast<size_t>(t)].exchange(op.resp);
      if (op.resp < prev) monotone.store(false);
    }
    return op;
  });
  // Per-thread sequential reads of a max register can never decrease.
  EXPECT_TRUE(monotone.load());
}

TEST(NativeSnapshot, StressHistoriesLinearizable) {
  const int threads = 3;
  const int ops = 5;
  for (int round = 0; round < 8; ++round) {
    rt::NativeSnapshot64 snap(threads, 4);  // 3 lanes x 4 bits
    std::vector<Rng> rngs;
    for (int t = 0; t < threads; ++t) rngs.emplace_back(2000 * round + t);
    std::vector<std::vector<int64_t>> scan_results(
        static_cast<size_t>(threads * ops));
    std::atomic<int> scan_idx{0};
    std::vector<rt::TimedOp> raw = rt::run_stress(threads, ops, [&](int t, int) {
      rt::TimedOp op;
      if (rngs[static_cast<size_t>(t)].next_bool(0.5)) {
        op.name = "Update";
        op.arg = rngs[static_cast<size_t>(t)].next_in(0, 15);
        snap.update(t, op.arg);
      } else {
        op.name = "Scan";
        int slot = scan_idx.fetch_add(1);
        scan_results[static_cast<size_t>(slot)] = snap.scan();
        op.arg = slot;
      }
      return op;
    });
    // Build records with vector responses for scans.
    std::vector<sim::OpRecord> records;
    for (size_t i = 0; i < raw.size(); ++i) {
      sim::OpRecord r;
      r.id = static_cast<sim::OpId>(i);
      r.proc = raw[i].thread;
      r.object = "snap";
      r.name = raw[i].name;
      r.args = num(raw[i].arg);
      r.complete = true;
      r.inv_seq = raw[i].inv_seq;
      r.resp_seq = raw[i].resp_seq;
      r.resp = raw[i].name == "Scan"
                   ? vec(scan_results[static_cast<size_t>(raw[i].arg)])
                   : unit();
      if (raw[i].name == "Scan") r.args = unit();
      records.push_back(std::move(r));
    }
    verify::SnapshotSpec spec(threads);
    auto res = verify::check_linearizability(records, spec);
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "round " << round << "\n" << res.explanation;
  }
}

TEST(NativeReadableTAS, ExactlyOneWinnerHighVolume) {
  for (int round = 0; round < 50; ++round) {
    rt::NativeReadableTAS tas;
    std::atomic<int> winners{0};
    rt::run_stress(4, 1, [&](int, int) {
      rt::TimedOp op;
      op.name = "TAS";
      op.resp = tas.test_and_set();
      if (op.resp == 0) winners.fetch_add(1);
      return op;
    });
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(tas.read(), 1);
  }
}

TEST(NativeFetchIncrement, DistinctDenseValuesHighVolume) {
  const int threads = 4;
  const int per_thread = 500;
  rt::NativeFetchIncrement fai;  // unbounded: crosses several segment doublings
  std::vector<std::vector<int64_t>> got(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int) {
    rt::TimedOp op;
    op.name = "FAI";
    op.resp = fai.fetch_and_increment();
    got[static_cast<size_t>(t)].push_back(op.resp);
    return op;
  });
  std::set<int64_t> all;
  for (const auto& v : got) {
    for (int64_t x : v) {
      EXPECT_TRUE(all.insert(x).second) << "duplicate " << x;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
  EXPECT_EQ(*all.rbegin(), threads * per_thread - 1);  // dense range
  EXPECT_EQ(fai.read(), threads * per_thread);
}

TEST(NativeFetchIncrement, StressHistoriesLinearizable) {
  for (int round = 0; round < 8; ++round) {
    rt::NativeFetchIncrement fai;
    auto history = rt::run_stress(3, 5, [&](int t, int j) {
      rt::TimedOp op;
      if ((t + j) % 3 == 0) {
        op.name = "Read";
        op.resp = fai.read();
      } else {
        op.name = "FAI";
        op.resp = fai.fetch_and_increment();
      }
      return op;
    });
    verify::FaiSpec spec;
    auto records = to_records(history);
    auto res = verify::check_linearizability(records, spec);
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "round " << round << "\n" << res.explanation;
  }
}

TEST(NativeMultishotTAS, GenerationsBehave) {
  rt::NativeMultishotTAS tas(/*n=*/2, /*max_resets=*/8);
  EXPECT_EQ(tas.read(), 0);
  EXPECT_EQ(tas.test_and_set(0), 0);
  EXPECT_EQ(tas.test_and_set(1), 1);
  EXPECT_EQ(tas.read(), 1);
  tas.reset(0);
  EXPECT_EQ(tas.read(), 0);
  EXPECT_EQ(tas.test_and_set(1), 0);
}

TEST(NativeSet, NoItemTakenTwiceHighVolume) {
  const int threads = 4;
  const int per_thread = 200;
  rt::NativeSet set;
  std::vector<std::vector<int64_t>> taken(static_cast<size_t>(threads));
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    if (j % 2 == 0) {
      op.name = "Put";
      op.arg = t * 100000 + j;
      set.put(op.arg);
    } else {
      op.name = "Take";
      op.resp = set.take();
      if (op.resp != rt::NativeSet::kEmpty) {
        taken[static_cast<size_t>(t)].push_back(op.resp);
      }
    }
    return op;
  });
  std::set<int64_t> unique;
  size_t total = 0;
  for (const auto& v : taken) {
    for (int64_t x : v) {
      EXPECT_TRUE(unique.insert(x).second) << "item taken twice: " << x;
      ++total;
    }
  }
  EXPECT_EQ(unique.size(), total);
}

}  // namespace
}  // namespace c2sl
