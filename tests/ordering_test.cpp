// Unit tests for the Definition 11 machinery: the ordering adapters' proposal/
// decision sequences and decision functions, and algorithm B's internals (the
// pre-step instrumentation that writes T[i] before every step of A, and the
// world-clone isolation of the local simulation).
#include "agreement/ordering.h"

#include <gtest/gtest.h>

#include "agreement/lemma12.h"
#include "baselines/cas_structures.h"
#include "primitives/faa.h"
#include "primitives/register.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"

namespace c2sl {
namespace {

TEST(Ordering, QueueSequencesAndDecision) {
  auto o = agreement::queue_ordering(4);
  EXPECT_EQ(o.k, 1);
  auto prop = o.prop(2);
  ASSERT_EQ(prop.size(), 1u);
  EXPECT_EQ(prop[0].name, "Enq");
  EXPECT_EQ(prop[0].args, num(2));
  auto dec = o.dec(2);
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_EQ(dec[0].name, "Deq");
  // d(i, OK . l) = l
  EXPECT_EQ(o.decide(2, {str("OK"), num(3)}), 3);
  // malformed responses are rejected, not misdecoded
  EXPECT_EQ(o.decide(2, {str("OK"), str("EMPTY")}), -1);
  EXPECT_EQ(o.decide(2, {str("OK")}), -1);
}

TEST(Ordering, StackSequencesAndDecision) {
  const int n = 3;
  auto o = agreement::stack_ordering(n);
  auto dec = o.dec(0);
  EXPECT_EQ(dec.size(), static_cast<size_t>(n + 1));  // n+1 pops
  // d = last non-EMPTY pop: [OK, 2, 0, EMPTY, EMPTY] -> 0 (the FIRST push).
  EXPECT_EQ(o.decide(0, {str("OK"), num(2), num(0), str("EMPTY"), str("EMPTY")}), 0);
  // All pops non-empty would be malformed for this workload, but the function
  // still picks the last value.
  EXPECT_EQ(o.decide(0, {str("OK"), num(2), num(1), num(0), str("EMPTY")}), 0);
  // Unexpected payload kills the decision.
  EXPECT_EQ(o.decide(0, {str("OK"), str("BOGUS"), num(1), num(0), str("EMPTY")}), -1);
}

TEST(Ordering, StutteringQueueSequences) {
  auto o = agreement::stuttering_queue_ordering(3, /*m=*/2);
  auto prop = o.prop(1);
  EXPECT_EQ(prop.size(), 3u);  // m+1 enqueues
  for (const auto& inv : prop) {
    EXPECT_EQ(inv.name, "Enq");
    EXPECT_EQ(inv.args, num(1));
  }
  // d(i, OK^(m+1) . l) = l
  EXPECT_EQ(o.decide(1, {str("OK"), str("OK"), str("OK"), num(2)}), 2);
}

TEST(Ordering, StutteringStackSequences) {
  const int n = 2;
  const int m = 1;
  auto o = agreement::stuttering_stack_ordering(n, m);
  EXPECT_EQ(o.prop(0).size(), static_cast<size_t>(m + 1));
  EXPECT_EQ(o.dec(0).size(), static_cast<size_t>(n * (m + 1) + 1));  // 5 pops
  EXPECT_EQ(o.decide(0, {str("OK"), str("OK"), num(1), num(1), num(0),
                         str("EMPTY"), str("EMPTY")}),
            0);
}

TEST(Ordering, KOutOfOrderIsKOrdering) {
  auto o = agreement::k_out_of_order_queue_ordering(5, 2);
  EXPECT_EQ(o.k, 2);
  EXPECT_EQ(o.decide(4, {str("OK"), num(1)}), 1);
}

// Algorithm B instrumentation: with step recording on, every base-object step
// of A taken during the proposal phase must be immediately preceded by a write
// to lemma12.T (the pre-step hook contract from Lemma 12 step 3).
TEST(Lemma12Internals, TWrittenBeforeEveryAStep) {
  const int n = 2;
  sim::SimRun run(n);
  run.history.record_steps = true;
  auto impl = std::make_unique<baselines::CasQueue>(run.world, "A");
  size_t range_end = run.world.size();
  agreement::Lemma12State state;
  agreement::spawn_lemma12(run, *impl, range_end, agreement::queue_ordering(n),
                           {100, 101}, state);
  sim::RandomStrategy strategy(3);
  run.sched.run(strategy, 100000);
  ASSERT_TRUE(run.sched.all_done());

  const auto& events = run.history.events();
  // Track, per process, whether the previous step of that process was a T write.
  std::vector<std::string> prev_object(static_cast<size_t>(n));
  int a_steps_checked = 0;
  for (const auto& e : events) {
    if (e.kind != sim::Event::Kind::kStep) continue;
    const std::string& obj = e.object;
    bool is_a_step = obj.rfind("A.", 0) == 0;
    if (is_a_step) {
      EXPECT_EQ(prev_object[static_cast<size_t>(e.proc)], "lemma12.T")
          << "A-step without preceding T write at seq " << e.seq;
      ++a_steps_checked;
    }
    prev_object[static_cast<size_t>(e.proc)] = obj;
  }
  EXPECT_GT(a_steps_checked, 0);
}

// Local simulation isolation: the solo run of dec_i must not disturb the real
// world (it operates on a clone with the collected states installed).
TEST(Lemma12Internals, LocalSimulationDoesNotMutateRealWorld) {
  const int n = 3;
  sim::SimRun run(n);
  auto impl = std::make_unique<baselines::CasQueue>(run.world, "A");
  size_t range_end = run.world.size();
  agreement::Lemma12State state;
  agreement::spawn_lemma12(run, *impl, range_end, agreement::queue_ordering(n),
                           {100, 101, 102}, state);
  sim::RandomStrategy strategy(11);
  run.sched.run(strategy, 200000);
  ASSERT_TRUE(run.sched.all_done());
  // All three enqueued items are still in the REAL queue: the simulated deqs
  // happened on clones only.
  sim::Ctx solo;
  solo.world = &run.world;
  std::vector<int64_t> drained;
  for (int i = 0; i < n; ++i) {
    Val v = impl->deq(solo);
    ASSERT_TRUE(std::holds_alternative<int64_t>(v));
    drained.push_back(as_num(v));
  }
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, (std::vector<int64_t>{0, 1, 2}));  // process indices
  EXPECT_EQ(impl->deq(solo), str("EMPTY"));
}

// Solo budget: a decision simulation that cannot finish is reported, not hung.
TEST(Lemma12Internals, SoloBudgetExceededIsReported) {
  struct Spinner : core::ConcurrentObject {
    sim::Handle<prim::FetchAddInt> c;
    explicit Spinner(sim::World& w) { c = w.add<prim::FetchAddInt>("A.c"); }
    std::string object_name() const override { return "A"; }
    Val apply(sim::Ctx& ctx, const verify::Invocation& inv) override {
      if (inv.name == "Enq") {
        ctx.world->get(c).fetch_add(ctx, 1);
        return str("OK");
      }
      for (;;) ctx.world->get(c).fetch_add(ctx, 0);  // Deq never returns
    }
  };
  const int n = 2;
  auto ordering = agreement::queue_ordering(n);
  auto make = [](sim::World& w) -> std::unique_ptr<core::ConcurrentObject> {
    return std::make_unique<Spinner>(w);
  };
  sim::RandomStrategy strategy(1);
  agreement::Lemma12Options opts;
  opts.solo_step_budget = 500;
  auto res = agreement::run_lemma12(n, ordering, {100, 101}, make, strategy, 100000,
                                    opts);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.state.solo_budget_exhausted, n);
  EXPECT_FALSE(res.check.termination);
}

}  // namespace
}  // namespace c2sl
