// Systematic progress-property measurements across all constructions — the
// wait-free / lock-free classification column of Figure 1, as assertions.
//
//  * wait-free objects: a per-operation step bound holds on EVERY schedule,
//    including maximally adversarial (starving) ones;
//  * lock-free objects: system-wide progress holds while individual operations
//    can be starved by completions (fetch&increment's reader, the set's
//    taker), which is exactly the paper's wait-free vs lock-free split
//    (Thms 9/10 are lock-free; Thms 1/2/5/6 wait-free).
#include <gtest/gtest.h>

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/sl_set.h"
#include "core/snapshot_faa.h"
#include "harness.h"

namespace c2sl {
namespace {

using verify::Invocation;

/// Runs `victim_ops` on process 0 under a starving adversary while others run
/// `noise_ops`; returns the victim's steps per completed operation (empty if
/// the victim never completed).
struct StarveResult {
  std::vector<uint64_t> victim_op_steps;
  bool victim_done = false;
  bool all_done = false;
};

StarveResult starve_run(const std::function<std::shared_ptr<core::ConcurrentObject>(
                            sim::World&, int)>& factory,
                        std::vector<Invocation> victim_ops,
                        std::vector<Invocation> noise_ops, int n, uint64_t seed,
                        uint64_t max_steps = 200000) {
  StarveResult result;
  sim::SimRun run(n);
  auto obj = factory(run.world, n);
  run.sched.spawn(0, [obj, victim_ops, &result](sim::Ctx& ctx) {
    for (Invocation inv : victim_ops) {
      inv.proc = 0;
      uint64_t before = ctx.steps_taken;
      obj->apply(ctx, inv);
      result.victim_op_steps.push_back(ctx.steps_taken - before);
    }
    result.victim_done = true;
  });
  for (int p = 1; p < n; ++p) {
    run.sched.spawn(p, [obj, noise_ops, p](sim::Ctx& ctx) {
      for (Invocation inv : noise_ops) {
        inv.proc = p;
        obj->apply(ctx, inv);
      }
    });
  }
  sim::StarveStrategy starve(/*victim=*/0, seed);
  result.all_done = run.sched.run(starve, max_steps).all_done;
  return result;
}

// ---- wait-free: fixed step bounds under starvation -------------------------

TEST(Progress, MaxRegisterFAAIsOneStepWaitFree) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::MaxRegisterFAA>(w, "m", n);
  };
  auto res = starve_run(factory,
                        {{"WriteMax", num(9), 0}, {"ReadMax", unit(), 0}},
                        {{"WriteMax", num(5), 0}, {"ReadMax", unit(), 0}}, 4, 7);
  EXPECT_TRUE(res.victim_done);
  for (uint64_t s : res.victim_op_steps) EXPECT_EQ(s, 1u);
}

TEST(Progress, SnapshotFAAIsOneStepWaitFree) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::SnapshotFAA>(w, "s", n);
  };
  auto res = starve_run(factory, {{"Update", num(3), 0}, {"Scan", unit(), 0}},
                        {{"Update", num(1), 0}, {"Scan", unit(), 0}}, 4, 7);
  EXPECT_TRUE(res.victim_done);
  for (uint64_t s : res.victim_op_steps) EXPECT_EQ(s, 1u);
}

TEST(Progress, ReadableTASIsTwoStepWaitFree) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<core::ReadableTAS>(w, "t");
  };
  auto res = starve_run(factory, {{"TAS", unit(), 0}, {"Read", unit(), 0}},
                        {{"TAS", unit(), 0}, {"Read", unit(), 0}}, 4, 7);
  EXPECT_TRUE(res.victim_done);
  ASSERT_EQ(res.victim_op_steps.size(), 2u);
  EXPECT_EQ(res.victim_op_steps[0], 2u);  // ts.test&set + state.write
  EXPECT_EQ(res.victim_op_steps[1], 1u);  // state.read
}

TEST(Progress, MultishotTASIsBoundedWaitFree) {
  // Steps per op <= 3 with atomic bases (readMax + up to two TS accesses).
  struct Bundle : core::ConcurrentObject {
    core::AtomicMaxRegister curr;
    core::AtomicReadableTasArray ts;
    core::MultishotTAS mtas;
    explicit Bundle(sim::World& w) : curr(w, "c"), ts(w, "T"), mtas("mt", curr, ts) {}
    std::string object_name() const override { return "mt"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return mtas.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  auto res = starve_run(factory,
                        {{"TAS", unit(), 0}, {"Reset", unit(), 0}, {"Read", unit(), 0}},
                        {{"TAS", unit(), 0}, {"Reset", unit(), 0}}, 4, 7);
  EXPECT_TRUE(res.victim_done);
  for (uint64_t s : res.victim_op_steps) EXPECT_LE(s, 3u);
}

// ---- lock-free: system progress, starvable individuals ---------------------

TEST(Progress, FetchIncrementReadIsStarvableButSystemProgresses) {
  // The victim's Read chases a moving target: each completed FAI invalidates
  // its scan position. Under the starving adversary with ENOUGH noise ops the
  // victim cannot finish within their window — lock-free, not wait-free.
  struct Bundle : core::ConcurrentObject {
    core::ReadableTasArray ts;
    core::FetchIncrement fai;
    explicit Bundle(sim::World& w) : ts(w, "M"), fai("f", ts) {}
    std::string object_name() const override { return "f"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return fai.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  std::vector<Invocation> noise(40, {"FAI", unit(), 0});
  auto res = starve_run(factory, {{"Read", unit(), 0}}, noise, 3, 7);
  // The noise processes all complete (system-wide progress)...
  EXPECT_TRUE(res.all_done);
  // ...and once they are done the victim finishes too (the adversary can only
  // delay it while completions keep happening — the definition of lock-free).
  EXPECT_TRUE(res.victim_done);
  // Its single Read cost far more than any wait-free bound tied to its own
  // "contention-free" cost (1 step): it paid for others' progress.
  ASSERT_EQ(res.victim_op_steps.size(), 1u);
  EXPECT_GE(res.victim_op_steps[0], 80u);  // scanned past all 80 FAI wins
}

TEST(Progress, SetTakeScalesWithCompletedPuts) {
  struct Bundle : core::ConcurrentObject {
    core::ReadableTasArray fts;
    core::FetchIncrement fai;
    core::SLSet set;
    explicit Bundle(sim::World& w) : fts(w, "MM"), fai("Max", fts), set(w, "s", fai) {}
    std::string object_name() const override { return "s"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return set.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  std::vector<Invocation> noise;
  for (int j = 0; j < 20; ++j) noise.push_back({"Put", num(j), 0});
  auto res = starve_run(factory, {{"Take", unit(), 0}}, noise, 3, 7);
  EXPECT_TRUE(res.all_done);
  EXPECT_TRUE(res.victim_done);
  ASSERT_EQ(res.victim_op_steps.size(), 1u);
  // The starved Take paid at least a full sweep over the completed puts.
  EXPECT_GE(res.victim_op_steps[0], 20u);
}

// ---- crashes never block others (all objects are non-blocking) -------------

TEST(Progress, CrashedProcessNeverBlocksOthers) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::MaxRegisterFAA>(w, "m", n);
  };
  for (uint64_t seed = 0; seed < 30; ++seed) {
    sim::SimRun run(3);
    auto obj = factory(run.world, 3);
    for (int p = 0; p < 3; ++p) {
      run.sched.spawn(p, [obj, p](sim::Ctx& ctx) {
        for (int j = 0; j < 5; ++j) {
          core::invoke_recorded(ctx, *obj, {"WriteMax", num(p * 10 + j), p});
        }
      });
    }
    sim::RandomStrategy strategy(seed, /*crash_prob=*/0.1, /*max_crashes=*/2);
    auto rr = run.sched.run(strategy, 100000);
    EXPECT_TRUE(rr.all_done) << "seed " << seed;  // survivors always finish
  }
}

}  // namespace
}  // namespace c2sl
