// Multi-threaded stress tests (TSAN targets) for online shard resizing:
// writers racing live migrations, racing resizers, and snapshot/transfer
// conservation across resize cuts. All seeds are deterministic; volumes are
// sized to stay fast under ThreadSanitizer.
//
// Resizes run through each worker's OWN session (C2Session::resize) — the
// store-level convenience opens a fresh blocking session, which would
// deadlock here because every lane is already held by a worker.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/stress.h"
#include "service/c2store.h"
#include "util/rng.h"

namespace c2sl {
namespace {

svc::C2StoreConfig stress_config(int threads) {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = threads;
  cfg.max_value = 63 / threads;
  cfg.tas_max_resets = 63 / threads - 1;
  return cfg;
}

std::vector<svc::C2Session> open_sessions(svc::C2Store& store, int threads) {
  std::vector<svc::C2Session> out;
  out.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) out.push_back(store.open_session());
  return out;
}

/// One representative key per INITIAL shard: the snapshot facet is bucketed
/// under the initial mask forever, so these cover the whole counter aggregate
/// before and after any number of resizes. MUST be called before the first
/// resize — it derives the initial buckets from shard_of, which routes under
/// the published (possibly grown) mask.
std::vector<uint64_t> representative_keys(const svc::C2Store& store) {
  int shards = store.config().initial_shards;
  std::vector<uint64_t> keys;
  std::vector<bool> covered(static_cast<size_t>(shards), false);
  int remaining = shards;
  for (uint64_t k = 0; remaining > 0; ++k) {
    int s = store.shard_of(k);
    if (!covered[static_cast<size_t>(s)]) {
      covered[static_cast<size_t>(s)] = true;
      keys.push_back(k);
      --remaining;
    }
  }
  return keys;
}

// Writers hammer counters and max registers through CACHED refs while thread
// 0 doubles the shard count mid-stream (8 -> 64). The refs were bound under
// epoch 0, so every revalidation/settle path runs under TSAN; afterwards
// conservation (digest sum == incs started), per-key max identity, and the
// epoch-independent snapshot total must all hold exactly.
TEST(ResizeStress, WritersVsResizeStorm) {
  const int threads = 4;
  const int per_thread = 600;
  const uint64_t key_space = 64;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const int64_t max_bound = 63 / threads;

  // Epoch-0 routing and snapshot representatives, captured before any resize.
  std::vector<uint64_t> reps = representative_keys(store);
  std::vector<int> init_shard(key_space, 0);
  for (uint64_t k = 0; k < key_space; ++k) {
    init_shard[static_cast<size_t>(k)] = store.shard_of(k);
  }
  std::vector<std::vector<svc::MaxRef>> mx(static_cast<size_t>(threads));
  std::vector<std::vector<svc::CounterRef>> ctr(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    for (uint64_t k = 0; k < key_space; ++k) {
      mx[static_cast<size_t>(t)].push_back(sessions[static_cast<size_t>(t)].max(k));
      ctr[static_cast<size_t>(t)].push_back(sessions[static_cast<size_t>(t)].counter(k));
    }
  }
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(9100 + t);
  std::vector<int64_t> incs(static_cast<size_t>(threads), 0);
  // Per-thread per-key max written (merged after the run).
  std::vector<std::vector<int64_t>> wrote(
      static_cast<size_t>(threads), std::vector<int64_t>(key_space, -1));
  std::atomic<int> installed{0};
  std::atomic<bool> reads_ok{true};

  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& rng = rngs[static_cast<size_t>(t)];
    if (t == 0 && j % 100 == 50) {
      // The resize storm: doubles on a cadence, capped at 64 shards.
      int cur = store.shard_count();
      if (cur < 64 &&
          sessions[0].resize(cur * 2) == svc::ResizeStatus::kInstalled) {
        installed.fetch_add(1);
      }
      return op;
    }
    uint64_t key = rng.next_below(key_space);
    switch (j % 3) {
      case 0: {
        ctr[static_cast<size_t>(t)][key].inc();
        ++incs[static_cast<size_t>(t)];
        break;
      }
      case 1: {
        int64_t v = rng.next_in(0, max_bound);
        mx[static_cast<size_t>(t)][key].write(v);
        auto& w = wrote[static_cast<size_t>(t)][key];
        if (v > w) w = v;
        break;
      }
      default: {
        // Reads mid-migration: bounded by what anyone could have written.
        int64_t v = mx[static_cast<size_t>(t)][key].read();
        if (v < 0 || v > max_bound) reads_ok.store(false);
        break;
      }
    }
    return op;
  });

  EXPECT_TRUE(reads_ok.load()) << "a mid-migration read escaped its bounds";
  ASSERT_GE(installed.load(), 1) << "the storm must complete resizes";
  EXPECT_EQ(store.shard_count(), 8 << installed.load());
  EXPECT_EQ(store.routing_epoch(), installed.load());

  int64_t total_incs = 0;
  for (int64_t v : incs) total_incs += v;
  EXPECT_EQ(store.counter_sum(), total_incs)
      << "conservation: every inc lands in the digest exactly once across "
         "every migration cut";

  // Per-key audit through a FRESH session (routes under the final epoch).
  // The workers' sessions hold every lane, so release them first — a blocking
  // open would park forever otherwise. Keys collapse to shards and slots only
  // ever exchange state along their nested-mask parent chain, so a key's read
  // is bounded below by its OWN writes (monotone facets never lose one) and
  // above by its epoch-0 collision class (state never crosses initial-shard
  // families, no matter how many migrations ran).
  for (auto& sess : sessions) sess.close();
  svc::C2Session audit = store.open_session();
  std::vector<int64_t> family_max(8, 0);
  std::vector<int64_t> own_max(key_space, 0);
  for (uint64_t k = 0; k < key_space; ++k) {
    for (int t = 0; t < threads; ++t) {
      int64_t w = wrote[static_cast<size_t>(t)][k];
      auto& own = own_max[static_cast<size_t>(k)];
      if (w > own) own = w;
    }
    auto& fam = family_max[static_cast<size_t>(init_shard[static_cast<size_t>(k)])];
    fam = std::max(fam, own_max[static_cast<size_t>(k)]);
  }
  for (uint64_t k = 0; k < key_space; ++k) {
    int64_t v = audit.max_read(k);
    EXPECT_GE(v, own_max[static_cast<size_t>(k)]) << "key " << k;
    EXPECT_LE(v, family_max[static_cast<size_t>(init_shard[static_cast<size_t>(k)])])
        << "key " << k;
  }

  // The epoch-independent snapshot facet agrees with the digest.
  int64_t snap_sum = 0;
  for (int64_t v : audit.snapshot_counters(reps)) snap_sum += v;
  EXPECT_EQ(snap_sum, total_incs);
}

// Every thread races to install the SAME doubling, round after round: the
// one-shot claim must admit exactly one winner per epoch, and losers must
// fail closed (kNoop / kInFlight) without disturbing the spine.
TEST(ResizeStress, RacingResizersUniqueWinnerPerEpoch) {
  const int threads = 4;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  for (int round = 0; round < 3; ++round) {
    const int target = 16 << round;
    std::atomic<int> winners{0};
    std::atomic<int> losers{0};
    std::atomic<bool> clean_losses{true};
    rt::run_stress(threads, 1, [&](int t, int) {
      rt::TimedOp op;
      svc::ResizeStatus st = sessions[static_cast<size_t>(t)].resize(target);
      if (st == svc::ResizeStatus::kInstalled) {
        winners.fetch_add(1);
      } else {
        if (st != svc::ResizeStatus::kNoop &&
            st != svc::ResizeStatus::kInFlight) {
          clean_losses.store(false);
        }
        losers.fetch_add(1);
      }
      return op;
    });
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(losers.load(), threads - 1) << "round " << round;
    EXPECT_TRUE(clean_losses.load()) << "a loser saw kPoisoned in round " << round;
    // Losers may have returned while the winner was still migrating, but
    // run_stress joins its threads, so by here the round's epoch is live.
    EXPECT_EQ(store.shard_count(), target);
    EXPECT_EQ(store.routing_epoch(), round + 1);
  }
}

// Transfers race snapshots race a resize storm: every snapshot cut — taken
// through a ref bound under epoch 0, while migrations run — must conserve
// (balances sum to zero), and the final full replay must agree.
TEST(ResizeStress, SnapshotConservationAcrossResizeCuts) {
  const int threads = 4;
  const int per_thread = 400;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  std::vector<uint64_t> reps = representative_keys(store);
  ASSERT_GE(reps.size(), 2u);
  std::vector<svc::SnapKey> slots;
  for (uint64_t k : reps) slots.push_back(svc::SnapKey::counter(k));
  svc::SnapshotRef snap = sessions[3].snapshot_ref(slots);
  std::vector<Rng> rngs;
  for (int t = 0; t < threads; ++t) rngs.emplace_back(9900 + t);
  std::atomic<int> installed{0};
  std::atomic<bool> conserved{true};

  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    auto& rng = rngs[static_cast<size_t>(t)];
    if (t == 0) {
      if (j % 80 == 40) {
        int cur = store.shard_count();
        if (cur < 64 &&
            sessions[0].resize(cur * 2) == svc::ResizeStatus::kInstalled) {
          installed.fetch_add(1);
        }
      }
      return op;
    }
    if (t == 3) {
      int64_t sum = 0;
      for (int64_t v : snap.read()) sum += v;
      if (sum != 0) conserved.store(false);
      return op;
    }
    size_t from = static_cast<size_t>(rng.next_below(reps.size()));
    size_t to = static_cast<size_t>(rng.next_below(reps.size() - 1));
    if (to >= from) ++to;
    sessions[static_cast<size_t>(t)].transfer(reps[from], reps[to],
                                              rng.next_in(1, 3));
    return op;
  });

  EXPECT_TRUE(conserved.load())
      << "a snapshot observed a torn transfer across a resize cut";
  EXPECT_GE(installed.load(), 1) << "the storm must complete resizes";
  int64_t final_sum = 0;
  for (int64_t v : snap.read()) final_sum += v;
  EXPECT_EQ(final_sum, 0);
  // snap (a borrowed view of sessions[3]) is done; release every lane before
  // the blocking audit open.
  for (auto& sess : sessions) sess.close();
  svc::C2Session audit = store.open_session();
  int64_t fresh_sum = 0;
  for (int64_t v : audit.snapshot_counters(reps)) fresh_sum += v;
  EXPECT_EQ(fresh_sum, 0) << "quiescent full replay must conserve";
}

}  // namespace
}  // namespace c2sl
