// Functional tests for online shard resizing (PR 9): the RoutingEpoch spine's
// claim/install/publish protocol and failure contracts, C2Store::resize under
// live sessions, typed-ref rebinding across epoch bumps, aggregate and
// snapshot identity across migrations, and the deprecated C2StoreConfig
// `shards` alias.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/routing_epoch.h"
#include "service/c2store.h"
#include "telemetry/telemetry.h"

namespace c2sl {
namespace {

using rt::RoutingEpoch;
using Status = rt::RoutingEpoch::ResizeStatus;

// --- the epoch spine in isolation -------------------------------------------

TEST(RoutingEpochSpine, StampEncodingRoundTrips) {
  EXPECT_EQ(RoutingEpoch::published_epoch(0), 0);
  EXPECT_FALSE(RoutingEpoch::installing(0));
  EXPECT_EQ(RoutingEpoch::newest_epoch(0), 0);
  // 2e+1: epoch e published, e+1 installing — writers dual-apply under e+1.
  EXPECT_EQ(RoutingEpoch::published_epoch(1), 0);
  EXPECT_TRUE(RoutingEpoch::installing(1));
  EXPECT_EQ(RoutingEpoch::newest_epoch(1), 1);
  EXPECT_EQ(RoutingEpoch::published_epoch(4), 2);
  EXPECT_EQ(RoutingEpoch::newest_epoch(5), 3);
}

TEST(RoutingEpochSpine, ClaimInstallPublishLifecycle) {
  RoutingEpoch re(4);
  EXPECT_EQ(re.current_epoch(), 0);
  EXPECT_EQ(re.current_shards(), 4);

  RoutingEpoch::Claim c;
  ASSERT_EQ(re.try_begin(8, c), Status::kInstalled);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.epoch, 1);
  EXPECT_EQ(c.shards, 8);
  // Installing: the published epoch is still 0, but the stamp is odd and the
  // new count is already readable (writers need it for dual-application).
  EXPECT_TRUE(RoutingEpoch::installing(re.stamp()));
  EXPECT_EQ(re.current_epoch(), 0);
  EXPECT_EQ(re.shards_of(1), 8);
  // A second resize during the install window fails without touching state.
  RoutingEpoch::Claim other;
  EXPECT_EQ(re.try_begin(16, other), Status::kInFlight);

  re.publish(c);
  EXPECT_FALSE(RoutingEpoch::installing(re.stamp()));
  EXPECT_EQ(re.current_epoch(), 1);
  EXPECT_EQ(re.current_shards(), 8);
}

TEST(RoutingEpochSpine, ShrinkAndSameSizeAreNoops) {
  RoutingEpoch re(8);
  RoutingEpoch::Claim c;
  EXPECT_EQ(re.try_begin(8, c), Status::kNoop);
  EXPECT_EQ(re.try_begin(4, c), Status::kNoop);
  EXPECT_EQ(re.current_epoch(), 0) << "noops must not consume an epoch";
  EXPECT_THROW(re.try_begin(12, c), PreconditionError);  // not a power of two
}

TEST(RoutingEpochSpine, PoisonIsPermanent) {
  RoutingEpoch re(2);
  RoutingEpoch::Claim c;
  ASSERT_EQ(re.try_begin(4, c), Status::kInstalled);
  re.poison(c);  // the migration "threw"
  RoutingEpoch::Claim later;
  EXPECT_EQ(re.try_begin(4, later), Status::kPoisoned);
  EXPECT_EQ(re.try_begin(8, later), Status::kPoisoned);
  // The published table keeps serving forever.
  EXPECT_EQ(re.current_epoch(), 0);
  EXPECT_EQ(re.current_shards(), 2);
}

TEST(RoutingEpochSpine, AbandonedClaimReportsInFlightForever) {
  RoutingEpoch re(2);
  RoutingEpoch::Claim dropped;
  ASSERT_EQ(re.try_begin(4, dropped), Status::kInstalled);
  // The claim winner disappears without publish() or poison(): the stamp
  // stays odd and every later resize fails closed.
  RoutingEpoch::Claim later;
  EXPECT_EQ(re.try_begin(4, later), Status::kInFlight);
  EXPECT_EQ(re.try_begin(8, later), Status::kInFlight);
  EXPECT_EQ(re.current_epoch(), 0);
  EXPECT_EQ(re.current_shards(), 2);
}

// --- C2Store resize end to end ----------------------------------------------

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = 4;
  cfg.max_value = 10;  // 4 * 10 <= 63
  cfg.tas_max_resets = 6;
  return cfg;
}

TEST(C2StoreResize, GrowsRoutingAndPreservesEveryFacet) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  // Keys collapse to shards (one object family per shard), so the expected
  // post-resize value of a key is its PRE-RESIZE shard's aggregate — which
  // the migration replays verbatim into the key's new slot.
  std::vector<int64_t> shard_max(8, 0), shard_cnt(8, 0), shard_tas(8, 0);
  std::vector<int> old_shard(64, 0);
  for (uint64_t k = 0; k < 64; ++k) {
    int sh = store.shard_of(k);
    old_shard[static_cast<size_t>(k)] = sh;
    s.max_write(k, static_cast<int64_t>(k % 7));
    s.counter_inc(k);
    auto& mx = shard_max[static_cast<size_t>(sh)];
    mx = std::max(mx, static_cast<int64_t>(k % 7));
    ++shard_cnt[static_cast<size_t>(sh)];
    if (k % 3 == 0) {
      s.tas(k).test_and_set();
      shard_tas[static_cast<size_t>(sh)] = 1;
    }
  }
  int64_t sum_before = s.counter_sum();
  int64_t gmax_before = s.global_max();

  EXPECT_EQ(store.shard_count(), 8);
  EXPECT_EQ(store.routing_epoch(), 0);
  ASSERT_EQ(store.resize(32), svc::ResizeStatus::kInstalled);
  EXPECT_EQ(store.shard_count(), 32);
  EXPECT_EQ(store.routing_epoch(), 1);

  // Every monotone facet survives the migration exactly (whether the key
  // stayed in its old slot or moved to a replayed one); the digests (which
  // never read routing state) are bit-identical.
  for (uint64_t k = 0; k < 64; ++k) {
    size_t sh = static_cast<size_t>(old_shard[static_cast<size_t>(k)]);
    EXPECT_EQ(s.max_read(k), shard_max[sh]) << "key " << k;
    EXPECT_EQ(s.counter_read(k), shard_cnt[sh]) << "key " << k;
    EXPECT_EQ(s.tas_read(k), shard_tas[sh]) << "key " << k;
  }
  EXPECT_EQ(s.counter_sum(), sum_before);
  EXPECT_EQ(s.global_max(), gmax_before);

  // And the grown table keeps working for fresh traffic.
  s.max_write(uint64_t{1000}, 9);
  EXPECT_EQ(s.max_read(uint64_t{1000}), 9);
}

TEST(C2StoreResize, CachedRefsRebindAfterEpochBump) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  // Bind typed refs BEFORE the resize — the ref-revalidation path must carry
  // them across the epoch bump without rebinding by hand.
  svc::MaxRef mx = s.max(uint64_t{7});
  svc::CounterRef ctr = s.counter(uint64_t{7});
  svc::TasRef tas = s.tas(uint64_t{7});
  mx.write(3);
  ctr.inc();

  ASSERT_EQ(s.resize(32), svc::ResizeStatus::kInstalled);

  // Stale refs keep answering correctly...
  EXPECT_EQ(mx.read(), 3);
  EXPECT_EQ(ctr.read(), 1);
  // ...and writes through them land where fresh routing looks.
  mx.write(5);
  ctr.inc();
  EXPECT_EQ(tas.test_and_set(), 0);
  svc::C2Session fresh = store.open_session();
  EXPECT_EQ(fresh.max_read(uint64_t{7}), 5);
  EXPECT_EQ(fresh.counter_read(uint64_t{7}), 2);
  EXPECT_EQ(fresh.tas_read(uint64_t{7}), 1);
}

TEST(C2StoreResize, UnmaterialisedKeysReadZeroAcrossResize) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  s.max_write(uint64_t{1}, 2);  // materialise exactly one shard
  const int touched_shard = store.shard_of(uint64_t{1});  // under the 8-mask
  int touched = store.initialized_shards();
  ASSERT_EQ(s.resize(64), svc::ResizeStatus::kInstalled);
  // Reads never materialise: keys whose (nested-mask) PARENT slot is not the
  // one materialised shard still answer 0 through the new routing table, and
  // the migration only initialised slots whose parent had state to move.
  for (uint64_t k = 100; k < 200; ++k) {
    if ((store.shard_of(k) & 7) == touched_shard) continue;  // collides
    EXPECT_EQ(s.max_read(k), 0) << "key " << k;
    EXPECT_EQ(s.counter_read(k), 0) << "key " << k;
    EXPECT_EQ(s.tas_read(k), 0) << "key " << k;
  }
  EXPECT_LE(store.initialized_shards(), touched * (64 / 8))
      << "migration may materialise at most every child of a materialised "
         "parent (growth factor many), never an untouched family";
  EXPECT_EQ(s.max_read(uint64_t{1}), 2);
}

TEST(C2StoreResize, AbandonedClaimKeepsServingAndFailsLaterResizes) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  s.max_write(uint64_t{3}, 4);

  // A resizer claims epoch 1 and dies: the stamp sticks at "installing".
  ASSERT_EQ(store.debug_abandon_resize(16), svc::ResizeStatus::kInstalled);

  // Data ops keep serving the published epoch — including keys never touched
  // before the abandoned claim (mid-"migration" materialisation still works).
  EXPECT_EQ(s.max_read(uint64_t{3}), 4);
  s.max_write(uint64_t{99}, 6);
  EXPECT_EQ(s.max_read(uint64_t{99}), 6);
  EXPECT_EQ(s.counter_read(uint64_t{12345}), 0);
  EXPECT_EQ(store.shard_count(), 8);
  EXPECT_EQ(store.routing_epoch(), 0);

  // But the control plane is wedged by contract: kInFlight forever.
  EXPECT_EQ(store.resize(16), svc::ResizeStatus::kInFlight);
  EXPECT_EQ(store.resize(64), svc::ResizeStatus::kInFlight);
}

TEST(C2StoreResize, NoopShrinkAndBadCountsRejected) {
  svc::C2Store store(small_config());
  EXPECT_EQ(store.resize(8), svc::ResizeStatus::kNoop);
  EXPECT_EQ(store.resize(4), svc::ResizeStatus::kNoop);
  EXPECT_THROW(store.resize(12), PreconditionError);
  EXPECT_EQ(store.shard_count(), 8);
}

TEST(C2StoreResize, SessionChurnAcrossResizes) {
  svc::C2Store store(small_config());
  for (int round = 0; round < 3; ++round) {
    {
      svc::C2Session s = store.open_session();
      s.counter_inc(uint64_t{42});
      // RAII close between rounds: lanes recycle across epochs.
    }
    svc::C2Session s = store.open_session();
    if (round < 2) {
      ASSERT_EQ(s.resize(store.shard_count() * 2), svc::ResizeStatus::kInstalled);
    }
    s.counter_inc(uint64_t{42});
  }
  svc::C2Session s = store.open_session();
  EXPECT_EQ(s.counter_read(uint64_t{42}), 6);
  EXPECT_EQ(store.shard_count(), 32);
  EXPECT_EQ(store.routing_epoch(), 2);
}

TEST(C2StoreResize, SnapshotsAndTransfersConserveAcrossResize) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  // One representative key per INITIAL shard — the snapshot facet is
  // bucketed under the initial mask forever, so these cover it before and
  // after any number of resizes.
  std::vector<uint64_t> keys;
  {
    std::vector<bool> covered(8, false);
    int remaining = 8;
    for (uint64_t k = 0; remaining > 0; ++k) {
      int slot = store.shard_of(k);
      if (!covered[static_cast<size_t>(slot)]) {
        covered[static_cast<size_t>(slot)] = true;
        keys.push_back(k);
        --remaining;
      }
    }
  }
  svc::SnapshotRef snap = s.snapshot_ref([&] {
    std::vector<svc::SnapKey> slots;
    for (uint64_t k : keys) slots.push_back(svc::SnapKey::counter(k));
    return slots;
  }());

  s.transfer(keys[0], keys[1], 5);
  std::vector<int64_t> before = snap.read();

  ASSERT_EQ(s.resize(32), svc::ResizeStatus::kInstalled);

  // The pre-resize SnapshotRef keeps reading (it never touches routing
  // state), sees the identical balances, and still conserves after more
  // transfers on the grown store.
  std::vector<int64_t> after = snap.read();
  EXPECT_EQ(after, before);
  s.transfer(keys[2], keys[3], 7);
  int64_t sum = 0;
  for (int64_t v : snap.read()) sum += v;
  EXPECT_EQ(sum, 0) << "transfers must conserve across the resize cut";
  // A fresh replay cursor agrees with the incremental one.
  int64_t fresh_sum = 0;
  for (int64_t v : s.snapshot_counters(keys)) fresh_sum += v;
  EXPECT_EQ(fresh_sum, 0);
}

TEST(C2StoreResize, TelemetryCountsClaimsPublishesAndMigratedKeys) {
  if (!tel::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  for (uint64_t k = 0; k < 32; ++k) s.counter_inc(k);
  // Cold-path events are process-wide — other tests in this binary resize
  // too, so assert on DELTAS around this store's resizes.
  tel::MetricsSnapshot before = store.metrics_snapshot();
  ASSERT_EQ(store.resize(16), svc::ResizeStatus::kInstalled);
  EXPECT_EQ(store.resize(16), svc::ResizeStatus::kNoop);
  (void)store.debug_abandon_resize(32);  // claim without publish

  tel::MetricsSnapshot m = store.metrics_snapshot();
  auto delta = [&](tel::TelEvent e) {
    return m.events[static_cast<int>(e)] - before.events[static_cast<int>(e)];
  };
  EXPECT_EQ(delta(tel::TelEvent::kResizeClaim), 2u)
      << "the real resize + the abandoned one";
  EXPECT_EQ(delta(tel::TelEvent::kEpochPublish), 1u)
      << "only the real resize published";
  EXPECT_LE(delta(tel::TelEvent::kEpochPublish),
            delta(tel::TelEvent::kResizeClaim))
      << "the invariant tools/metrics_diff.py gates";
  EXPECT_GE(delta(tel::TelEvent::kKeysMigrated), 1u)
      << "32 touched keys on 8 shards must move state";
}

// --- the deprecated config alias --------------------------------------------

TEST(C2StoreConfigCompat, DeprecatedShardsAliasStillWorks) {
  // One release of compatibility: `shards` (the pre-PR 9 name) still
  // configures the INITIAL shard count and wins over the default when set.
  svc::C2StoreConfig cfg;
  cfg.max_threads = 2;
  cfg.max_value = 10;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  cfg.shards = 4;
#pragma GCC diagnostic pop
  svc::C2Store store(cfg);
  EXPECT_EQ(store.shard_count(), 4);
  EXPECT_EQ(store.config().initial_shards, 4)
      << "validate() must fold the alias into initial_shards";
  // The alias is still just a STARTING hint: the store resizes past it.
  EXPECT_EQ(store.resize(8), svc::ResizeStatus::kInstalled);
  EXPECT_EQ(store.shard_count(), 8);
}

TEST(C2StoreConfigCompat, AliasValuesAreValidated) {
  svc::C2StoreConfig cfg;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  cfg.shards = 12;  // not a power of two, via the alias
#pragma GCC diagnostic pop
  EXPECT_THROW(svc::C2Store store(cfg), PreconditionError);
}

}  // namespace
}  // namespace c2sl
