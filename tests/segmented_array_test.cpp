// SegmentedArray (runtime/segmented_array.h) and the unbounded native TAS
// family rebased on it:
//
//  1. Index math: the doubling-segment layout (base 64) maps every index to
//     exactly one segment, boundaries included.
//  2. Segment-boundary edges: fetch&increment values straddling the doublings
//     (63|64, 191|192, 447|448) — the galloped O(log value) read must agree
//     with the dense increment count at every step, and the first_unset
//     confirm loop must hold up under real-thread contention right at a
//     boundary.
//  3. Publication race: threads force the SAME fresh segment concurrently;
//     the claim must elect exactly one constructor (observed indirectly:
//     every cell still has exactly one test&set winner — two published
//     instances would hand out two wins).
//  4. NativeSet growth: put/take across several segment doublings conserves
//     items (a TSAN target via this suite's membership in the stress set
//     wouldn't add much — c2store_stress_test already runs set TSAN stress —
//     but the boundary-heavy volumes here run under the normal suite).
//  5. Lifetime: a LaneRegistry (and a C2Store session loop) survives far more
//     releases than any retired recycle capacity allowed — the acceptance
//     criterion for deleting `lane_recycle_capacity` — and stays fast doing
//     it (the verified-taken-prefix hint keeps each cycle O(1) amortized).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "runtime/native_tas_family.h"
#include "runtime/segmented_array.h"
#include "runtime/stress.h"
#include "service/c2store.h"
#include "service/lane_registry.h"

namespace c2sl {
namespace {

using Arr = rt::SegmentedTasArray;

// --- 1. index math -----------------------------------------------------------

TEST(SegmentedArray, DoublingSegmentLayout) {
  // Segment s: size 64 << s, start 64 * (2^s - 1).
  EXPECT_EQ(Arr::segment_of(0), 0);
  EXPECT_EQ(Arr::segment_of(63), 0);
  EXPECT_EQ(Arr::segment_of(64), 1);
  EXPECT_EQ(Arr::segment_of(191), 1);
  EXPECT_EQ(Arr::segment_of(192), 2);
  EXPECT_EQ(Arr::segment_of(447), 2);
  EXPECT_EQ(Arr::segment_of(448), 3);
  EXPECT_EQ(Arr::segment_start(0), 0u);
  EXPECT_EQ(Arr::segment_start(1), 64u);
  EXPECT_EQ(Arr::segment_start(2), 192u);
  EXPECT_EQ(Arr::segment_size(2), 256u);
  // Every index in a prefix maps into a segment that actually contains it.
  for (size_t i = 0; i < 3000; ++i) {
    int s = Arr::segment_of(i);
    EXPECT_GE(i, Arr::segment_start(s)) << i;
    EXPECT_LE(i, Arr::segment_last(s)) << i;
    if (i > 0) {
      EXPECT_GE(Arr::segment_of(i), Arr::segment_of(i - 1)) << i;
    }
  }
  // The spine really is "unbounded": the last segment ends beyond 2^62.
  EXPECT_GT(Arr::segment_last(Arr::kMaxSegments - 1),
            size_t{1} << 62);
}

TEST(SegmentedArray, PeekNeverAllocatesCellAlways) {
  rt::SegmentedArray<rt::NativeReadableTAS> arr;
  EXPECT_EQ(arr.segments_published(), 0);
  EXPECT_EQ(arr.peek(500), nullptr) << "peek must not materialise";
  EXPECT_EQ(arr.segments_published(), 0);
  arr.cell(500).test_and_set();  // index 500 lives in segment 3
  EXPECT_EQ(arr.segments_published(), 1);
  ASSERT_NE(arr.peek(500), nullptr);
  EXPECT_EQ(arr.peek(500)->read(), 1);
  ASSERT_NE(arr.peek(448), nullptr) << "same segment, published together";
  EXPECT_EQ(arr.peek(448)->read(), 0) << "sibling cells constructed initial";
  EXPECT_EQ(arr.peek(0), nullptr) << "other segments stay unpublished";
}

// --- 2. fetch&increment across segment doublings -----------------------------

TEST(NativeFetchIncrement, ReadAgreesAcrossSegmentBoundaries) {
  rt::NativeFetchIncrement fai;
  EXPECT_EQ(fai.read(), 0);
  // Cross the 64, 192 and 448 boundaries; the galloped read must track the
  // dense value exactly, including AT the doublings.
  for (int64_t i = 0; i < 600; ++i) {
    EXPECT_EQ(fai.fetch_and_increment(), i);
    EXPECT_EQ(fai.read(), i + 1) << "after increment " << i;
  }
}

TEST(NativeFetchIncrement, ContendedAtASegmentBoundary) {
  // Park the value just below a doubling, then let 4 threads fight across it:
  // results must stay distinct and dense through the boundary.
  const int threads = 4;
  const int per_thread = 8;
  for (int round = 0; round < 25; ++round) {
    rt::NativeFetchIncrement fai;
    const int64_t base = 62;  // boundary at 64 lands mid-contention
    for (int64_t i = 0; i < base; ++i) fai.fetch_and_increment();
    std::vector<std::vector<int64_t>> got(static_cast<size_t>(threads));
    rt::run_stress(threads, per_thread, [&](int t, int) {
      rt::TimedOp op;
      got[static_cast<size_t>(t)].push_back(fai.fetch_and_increment());
      return op;
    });
    std::set<int64_t> all;
    for (const auto& v : got) {
      for (int64_t x : v) {
        EXPECT_TRUE(all.insert(x).second) << "duplicate " << x;
      }
    }
    ASSERT_EQ(all.size(), static_cast<size_t>(threads * per_thread));
    EXPECT_EQ(*all.begin(), base);
    EXPECT_EQ(*all.rbegin(), base + threads * per_thread - 1);
    EXPECT_EQ(fai.read(), base + threads * per_thread);
  }
}

// --- 3. concurrent publication of one fresh segment -------------------------

TEST(SegmentedArray, RacedPublicationYieldsOneInstance) {
  const int threads = 4;
  for (int round = 0; round < 30; ++round) {
    rt::SegmentedArray<rt::NativeReadableTAS> arr;
    // All threads hit distinct cells of the SAME unpublished segment (segment
    // 1: indices 64..191), so every op races the claim/construct/publish.
    // Then all threads also race ONE shared cell; a duplicated segment would
    // show up as either a second winner or a lost win.
    std::atomic<int> winners{0};
    rt::run_stress(threads, 1, [&](int t, int) {
      rt::TimedOp op;
      arr.cell(static_cast<size_t>(64 + t)).test_and_set();
      if (arr.cell(100).test_and_set() == 0) winners.fetch_add(1);
      return op;
    });
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(arr.segments_published(), 1);
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(arr.peek(static_cast<size_t>(64 + t))->read(), 1);
    }
  }
}

// --- 4. NativeSet across growth ----------------------------------------------

TEST(NativeSet, ConservationAcrossSegmentGrowth) {
  rt::NativeSet set;
  // 700 puts span segments 0..3 of the items/taken arrays.
  for (int64_t i = 0; i < 700; ++i) set.put(1000 + i);
  std::set<int64_t> taken;
  for (;;) {
    int64_t got = set.take();
    if (got == rt::NativeSet::kEmpty) break;
    EXPECT_TRUE(taken.insert(got).second) << "taken twice: " << got;
  }
  EXPECT_EQ(taken.size(), 700u);
  EXPECT_EQ(*taken.begin(), 1000);
  EXPECT_EQ(*taken.rbegin(), 1699);
  // Growth continues after a full drain: the set is reusable indefinitely.
  set.put(7);
  EXPECT_EQ(set.take(), 7);
  EXPECT_EQ(set.take(), rt::NativeSet::kEmpty);
}

// --- 5. lifetime: more closes than any retired capacity ----------------------

TEST(LaneRegistry, OutlivesAnyRetiredRecycleCapacity) {
  // The deleted config defaulted lane_recycle_capacity to 1 << 14 releases
  // over a registry's LIFETIME. Run more than twice that through a two-lane
  // registry; every acquire must keep succeeding from recycled lanes.
  svc::LaneRegistry reg(2);
  const int cycles = (1 << 15) + 512;  // > 2x the retired default
  for (int i = 0; i < cycles; ++i) {
    int lane = reg.try_acquire();
    ASSERT_GE(lane, 0) << "cycle " << i;
    reg.release(lane);
  }
  EXPECT_EQ(reg.tickets_issued(), 1)
      << "steady-state churn must recycle, not re-ticket";
  // Both lanes still acquirable at quiescence.
  std::set<int> drained{reg.try_acquire(), reg.try_acquire()};
  EXPECT_EQ(drained, (std::set<int>{0, 1}));
  EXPECT_EQ(reg.try_acquire(), svc::LaneRegistry::kNone);
}

TEST(C2Session, StoreSurvivesUnboundedSessionChurn) {
  // Session-level restatement of the acceptance criterion: a store now
  // supports arbitrarily many open/close cycles (each close is one recycle-set
  // put). 2x the retired default + change, through the full session surface.
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 4;
  cfg.max_threads = 2;
  cfg.max_value = 10;
  cfg.tas_max_resets = 6;
  svc::C2Store store(cfg);
  const int cycles = (1 << 15) + 512;
  for (int i = 0; i < cycles; ++i) {
    svc::C2Session s = store.open_session();
    ASSERT_TRUE(s.valid()) << "cycle " << i;
    if ((i & 1023) == 0) s.counter("churn").inc();  // keep the store live too
  }
  EXPECT_EQ(store.lane_tickets_issued(), 1);
  svc::C2Session s = store.open_session();
  EXPECT_EQ(s.counter("churn").read(), (cycles + 1023) / 1024);
}

}  // namespace
}  // namespace c2sl
