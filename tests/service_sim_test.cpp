// Sim-mode verification of the C2Store service algorithms (service/sim_bridge)
// on full execution trees. The story, mechanically checked:
//
//  1. The keyed service path — routing through the real ShardRouter onto
//     per-shard paper constructions — IS strongly linearizable: strong
//     linearizability is local, and every shard facet verifies on the shared
//     tree. (The acceptance configuration.)
//  2. The digest designs behind C2Store::global_max() AND counter_sum()
//     (writes also land on one digest register; the global read is a
//     single-word read) ARE strongly linearizable — the sum digest is checked
//     on the very schedule family that refutes the scan-based sum.
//  3. The double-collect aggregate SCAN is linearizable (sweeps pass, and the
//     concrete schedule that kills the naive scan produces a linearizable
//     history) but NOT strongly linearizable: its linearization point — the
//     stable collect pair — is decided by future schedule steps, so no
//     prefix-closed assignment exists. PINNED refutation.
//  4. The naive one-pass scan is not even linearizable. PINNED refutation,
//     with the witness history checked directly against the spec.
//
// (3) and (4) are the experimental record of WHY global_max reads a digest
// word — the same reason the paper packs its snapshot into one fetch&add
// register instead of collecting per-process registers.
#include <gtest/gtest.h>

#include "harness.h"
#include "service/sim_bridge.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

verify::StrongLinResult check_tree(const sim::ExecTree& tree, const verify::Spec& spec,
                                   const std::string& object) {
  verify::StrongLinOptions slopts;
  slopts.object = object;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

verify::StrongLinResult check(const sim::ScenarioFn& scenario, int n,
                              const verify::Spec& spec, const std::string& object,
                              int max_depth = 32, size_t max_nodes = 400000) {
  sim::ExploreOptions opts;
  opts.max_depth = max_depth;
  opts.max_nodes = max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  return check_tree(tree, spec, object);
}

/// Two keys guaranteed to live on different shards of a 2-shard router.
std::pair<uint64_t, uint64_t> keys_on_distinct_shards() {
  svc::ShardRouter router(2);
  uint64_t a = 0;
  uint64_t b = 1;
  while (router.shard_of(b) == router.shard_of(a)) ++b;
  return {a, b};
}

// --- 1. the keyed service path (acceptance configuration) -------------------

TEST(C2StoreSim, KeyedStorePerShardMaxStronglyLinearizable) {
  auto [ka, kb] = keys_on_distinct_shards();
  std::shared_ptr<svc::SimKeyedStore> store;
  auto scenario = [ka = ka, kb = kb, &store](sim::SimRun& run) {
    store = std::make_shared<svc::SimKeyedStore>(run.world, "c2", run.n(), 2);
    run.sched.spawn(0, [store, ka](sim::Ctx& ctx) { store->max_write(ctx, ka, 2); });
    run.sched.spawn(1, [store, ka, kb](sim::Ctx& ctx) {
      store->max_write(ctx, kb, 1);
      store->max_read(ctx, ka);
    });
    run.sched.spawn(2, [store, kb](sim::Ctx& ctx) { store->max_read(ctx, kb); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::MaxRegisterSpec spec;
  // Strong linearizability is local: certify each shard facet on the SAME tree.
  for (int s = 0; s < 2; ++s) {
    auto res = check_tree(tree, spec, store->max_object(s));
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.strongly_linearizable)
        << "shard facet " << s << ":\n" << res.report;
  }
}

TEST(C2StoreSim, KeyedStorePerShardCounterStronglyLinearizable) {
  auto [ka, kb] = keys_on_distinct_shards();
  std::shared_ptr<svc::SimKeyedStore> store;
  auto scenario = [ka = ka, kb = kb, &store](sim::SimRun& run) {
    store = std::make_shared<svc::SimKeyedStore>(run.world, "c2", run.n(), 2);
    run.sched.spawn(0, [store, ka](sim::Ctx& ctx) { store->counter_inc(ctx, ka); });
    run.sched.spawn(1, [store, ka, kb](sim::Ctx& ctx) {
      store->counter_inc(ctx, kb);
      store->counter_read(ctx, ka);
    });
    run.sched.spawn(2, [store, ka](sim::Ctx& ctx) { store->counter_inc(ctx, ka); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::FaiSpec spec;
  for (int s = 0; s < 2; ++s) {
    auto res = check_tree(tree, spec, store->ctr_object(s));
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.strongly_linearizable)
        << "shard facet " << s << ":\n" << res.report;
  }
}

// --- 2. the digest global max ----------------------------------------------

TEST(C2StoreSim, GlobalMaxDigestStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimGlobalMax>(w, "gmax", n, /*shards=*/2);
  };
  // The schedule family that kills the scans: one process writes 2 then 1
  // (routed to different shards) while another reads the global value.
  auto scenario = testing::fixed_scenario(
      factory, {{{"ReadMax", unit(), 0}},
                {{"WriteMax", num(2), 1}, {"WriteMax", num(1), 1}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 2, spec, "gmax");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(C2StoreSim, GlobalMaxDigestConcurrentWritersStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimGlobalMax>(w, "gmax", n, /*shards=*/2);
  };
  auto scenario = testing::fixed_scenario(factory, {{{"WriteMax", num(2), 0}},
                                                    {{"WriteMax", num(1), 1}},
                                                    {{"ReadMax", unit(), 2}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 3, spec, "gmax");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// --- 2b. the cross-facet digest write order, pinned --------------------------
//
// MaxRef::write updates the SHARD register first and the digest second. Each
// facet is individually strongly linearizable (above), but the order between
// the two writes is a documented cross-facet contract:
//   (i)  the digest may briefly LAG a shard register (a client can read v via
//        its key and then see global_max() < v while the writer sits between
//        its two updates) — that lag is real, witnessed below;
//   (ii) the digest must NEVER LEAD the shard registers (global_max() never
//        reports a value no shard register holds yet).
// A future "optimisation" that swaps the two writes would silently flip (ii)
// into a real anomaly — global_max() announcing values that no keyed read can
// confirm. These two tests make that reorder fail loudly instead of only
// contradicting a header comment.

/// P1's two read responses (program order), one pair per completed execution.
std::vector<std::pair<int64_t, int64_t>> observer_read_pairs(const sim::ExecTree& tree) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (const auto& node : tree.nodes) {
    if (!node.all_done) continue;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    std::vector<int64_t> resp;
    for (const auto& r : ops) {
      if (r.proc == 1 && r.complete && r.name != "WriteMax") resp.push_back(as_num(r.resp));
    }
    if (resp.size() == 2) out.emplace_back(resp[0], resp[1]);
  }
  return out;
}

TEST(C2StoreSim, DigestNeverLeadsTheShardRegisters) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimGlobalMax>(w, "gmax", n, /*shards=*/2);
  };
  // Writer lands 2 (routed to shard 0); observer reads digest THEN the shard.
  // Shard registers are monotone, so if the digest ever led, some execution
  // would show digest=2 while the (later!) shard read still returns 0.
  auto scenario = testing::fixed_scenario(
      factory, {{{"WriteMax", num(2), 0}},
                {{"ReadMax", unit(), 1}, {"ReadShard", num(0), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  auto pairs = observer_read_pairs(tree);
  ASSERT_FALSE(pairs.empty());
  for (auto [digest, shard] : pairs) {
    EXPECT_LE(digest, shard)
        << "digest ran ahead of the shard register: the shard-first write "
           "order in MaxRef::write was reordered";
  }
}

TEST(C2StoreSim, ShardRegisterMayLeadTheDigest) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimGlobalMax>(w, "gmax", n, /*shards=*/2);
  };
  // Observer reads the shard THEN the digest: some execution must catch the
  // writer between its two updates (shard=2, digest still 0). If this witness
  // disappears, the write order changed — the documented lag is load-bearing
  // documentation, so its existence is pinned too.
  auto scenario = testing::fixed_scenario(
      factory, {{{"WriteMax", num(2), 0}},
                {{"ReadShard", num(0), 1}, {"ReadMax", unit(), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  auto pairs = observer_read_pairs(tree);
  bool lag_witnessed = false;
  for (auto [shard, digest] : pairs) {
    if (shard == 2 && digest == 0) lag_witnessed = true;
  }
  EXPECT_TRUE(lag_witnessed)
      << "no execution shows the documented shard-ahead-of-digest lag window";
}

// --- 2c. the counter-sum digest ---------------------------------------------
//
// counter_sum() used to be the last aggregate served by a double-collect scan
// (linearizable only — refutation pinned in section 3). It now reads a
// CounterSumDigest: every Inc lands in its shard counter AND fetch&adds one
// digest word; the sum read is a single FAA(0). These tests run the digest
// design through EXACTLY the schedule family that refutes the scan-based sum
// (DoubleCollectCounterNotStronglyLinearizable below, kept as the negative
// control) and verify it strongly linearizable, then pin the cross-facet
// write order the same way as the max digest's (2b).

TEST(C2StoreSim, CounterSumDigestStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimCounterSumDigest>(w, "gsum", /*shards=*/2);
  };
  // The schedule family that kills the scan-based sum: two concurrent
  // incrementers (routed to different shards by process id) and a reader.
  auto scenario = testing::fixed_scenario(
      factory,
      {{{"Inc", unit(), 0}}, {{"Inc", unit(), 1}}, {{"Read", unit(), 2}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 3, spec, "gsum");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(C2StoreSim, CounterSumDigestIncReadRaceStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimCounterSumDigest>(w, "gsum", /*shards=*/2);
  };
  // A reader interleaved with back-to-back incs on one shard: the reads must
  // keep fixed own-step (FAA(0)) linearization points through the window
  // where the writer sits between its shard win and its digest step.
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}, {"Inc", unit(), 0}},
                {{"Read", unit(), 1}, {"Read", unit(), 1}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 2, spec, "gsum");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(C2StoreSim, SumDigestNeverLeadsTheShardCounters) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimCounterSumDigest>(w, "gsum", /*shards=*/2);
  };
  // Incrementer (proc 0 routes to shard 0); observer reads the digest THEN
  // the shard counter. Shard counters are monotone, so if the digest ever
  // led, some execution would show digest=1 while the (later!) shard read
  // still returns 0.
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}},
                {{"Read", unit(), 1}, {"ReadShard", num(0), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  auto pairs = observer_read_pairs(tree);
  ASSERT_FALSE(pairs.empty());
  for (auto [digest, shard] : pairs) {
    EXPECT_LE(digest, shard)
        << "sum digest ran ahead of the shard counter: the shard-first write "
           "order in CounterRef::inc was reordered";
  }
}

TEST(C2StoreSim, ShardCounterMayLeadTheSumDigest) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimCounterSumDigest>(w, "gsum", /*shards=*/2);
  };
  // Observer reads the shard THEN the digest: some execution must catch the
  // incrementer between its shard win and its digest step (shard=1, digest
  // still 0). If this witness disappears, the write order changed.
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}},
                {{"ReadShard", num(0), 1}, {"Read", unit(), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  auto pairs = observer_read_pairs(tree);
  bool lag_witnessed = false;
  for (auto [shard, digest] : pairs) {
    if (shard == 1 && digest == 0) lag_witnessed = true;
  }
  EXPECT_TRUE(lag_witnessed)
      << "no execution shows the documented shard-ahead-of-digest lag window";
}

// --- 3. double-collect scans: linearizable, NOT strongly linearizable -------

TEST(C2StoreSim, DoubleCollectScanLinSweep) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimShardedMaxRegister>(w, "smax", n, /*shards=*/4);
  };
  auto gen = [](int, int, Rng& rng) {
    if (rng.next_bool(0.5)) return Invocation{"WriteMax", num(rng.next_in(0, 6)), 0};
    return Invocation{"ReadMax", unit(), 0};
  };
  verify::MaxRegisterSpec spec;
  testing::WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, /*num_seeds=*/25, "smax"));
}

TEST(C2StoreSim, DoubleCollectCounterLinSweep) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimShardedCounter>(w, "sctr", /*shards=*/2);
  };
  auto gen = [](int, int, Rng& rng) {
    if (rng.next_bool(0.6)) return Invocation{"Inc", unit(), 0};
    return Invocation{"Read", unit(), 0};
  };
  verify::CounterSpec spec;
  testing::WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, /*num_seeds=*/25, "sctr"));
}

// PINNED: the double-collect read is not prefix-closed — at the node where a
// completed write has landed on a shard the reader's in-flight collect already
// passed, one extension lets the collect stabilise to the OLD value while
// another forces a rescan to the new one; no single early linearization choice
// survives both. If this starts passing, the checker (or the bridge) broke.
TEST(C2StoreSim, DoubleCollectScanNotStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimShardedMaxRegister>(w, "smax", n, /*shards=*/2);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"ReadMax", unit(), 0}},
                {{"WriteMax", num(2), 1}, {"WriteMax", num(1), 1}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 2, spec, "smax");
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "collect-based aggregate reads must NOT verify as strongly "
         "linearizable — this refutation is why global_max reads a digest";
}

// PINNED (the negative control for the counter-sum digest of 2c): the same
// Inc/Inc/Read schedule family over the double-collect SCAN sum must keep
// refuting — if this starts passing, the checker or the bridge broke, and the
// digest's reason to exist would be silently erased.
TEST(C2StoreSim, DoubleCollectCounterNotStronglyLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<svc::SimShardedCounter>(w, "sctr", /*shards=*/2);
  };
  auto scenario = testing::fixed_scenario(
      factory,
      {{{"Inc", unit(), 0}}, {{"Inc", unit(), 1}}, {{"Read", unit(), 2}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 3, spec, "sctr");
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable);
}

// --- 3b. segment publication (the unbounded-array growth protocol) ----------
//
// The native runtime's SegmentedArray grows by publishing doubling segments:
// a per-segment claim test&set elects one initialiser, which INITIALISES every
// cell and THEN publishes through a register write; accessors gate on the
// publication and treat an unpublished segment as all-initial. The sim twin
// (svc::SimSegmentedTasArray) replays that protocol at base-object step
// granularity with uninitialised cells modelled as garbage. Verified here:
//
//   (i)  the publication-order protocol is strongly linearizable, per cell
//        facet, including the interleavings where the claim race and the cell
//        operations overlap — and across distinct segments;
//   (ii) the deliberately-broken variant (publish BEFORE init — the tempting
//        "make the segment visible early" reorder) is REFUTED: a reader
//        passes the gate early, observes garbage, and the late initialisation
//        erases observed state. PINNED so the reorder fails loudly here
//        instead of only contradicting runtime/segmented_array.h's comment.

TEST(C2StoreSim, SegmentPublicationStronglyLinearizable) {
  // Two processes race TAS on index 1 — the first cell of a 2-cell segment —
  // so the claim race, both init writes, the publish and both cell exchanges
  // all interleave. Each cell facet must admit a prefix-closed linearization.
  std::shared_ptr<svc::SimSegmentedTasArray> arr;
  auto scenario = [&arr](sim::SimRun& run) {
    arr = std::make_shared<svc::SimSegmentedTasArray>(run.world, "seg");
    run.sched.spawn(0, [arr](sim::Ctx& ctx) { arr->test_and_set(ctx, 1); });
    run.sched.spawn(1, [arr](sim::Ctx& ctx) { arr->test_and_set(ctx, 1); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 24;  // bounds the publication-loser's spin branches
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::TasSpec spec;
  auto res = check_tree(tree, spec, arr->cell_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(C2StoreSim, SegmentPublicationReadersNeverSeeGarbage) {
  // A reader races the whole publication: before the publish it must report 0
  // from the gate alone (never touching an uninitialised cell), after it the
  // initialised cell. The second read pins monotonicity across the window
  // where the broken variant would leak garbage.
  std::shared_ptr<svc::SimSegmentedTasArray> arr;
  auto scenario = [&arr](sim::SimRun& run) {
    arr = std::make_shared<svc::SimSegmentedTasArray>(run.world, "seg");
    run.sched.spawn(0, [arr](sim::Ctx& ctx) { arr->test_and_set(ctx, 1); });
    run.sched.spawn(1, [arr](sim::Ctx& ctx) {
      arr->read(ctx, 1);
      arr->read(ctx, 1);
    });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 24;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::TasSpec spec;
  auto res = check_tree(tree, spec, arr->cell_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(C2StoreSim, SegmentPublicationAcrossSegmentsIndependent) {
  // Ops on indices 0 and 1 live in DIFFERENT segments (base-1 doubling):
  // two unrelated publications in flight at once. Strong linearizability is
  // local — each cell facet verifies on the shared tree.
  std::shared_ptr<svc::SimSegmentedTasArray> arr;
  auto scenario = [&arr](sim::SimRun& run) {
    arr = std::make_shared<svc::SimSegmentedTasArray>(run.world, "seg");
    run.sched.spawn(0, [arr](sim::Ctx& ctx) {
      arr->test_and_set(ctx, 0);
      arr->read(ctx, 1);
    });
    run.sched.spawn(1, [arr](sim::Ctx& ctx) { arr->test_and_set(ctx, 1); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 24;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::TasSpec spec;
  for (size_t idx : {size_t{0}, size_t{1}}) {
    auto res = check_tree(tree, spec, arr->cell_object(idx));
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.strongly_linearizable)
        << "cell facet " << idx << ":\n" << res.report;
  }
}

// PINNED: publishing the segment before initialising its cells lets a reader
// through the gate while the cells still hold garbage. The concrete anomaly
// in the explored tree: Read -> 1 (garbage) followed by Read -> 0 (the
// winner's late init write erased the observed state) with no Reset — not
// even linearizable, so certainly not strongly linearizable. If this starts
// passing, either the bridge stopped modelling uninitialised cells or the
// checker broke.
TEST(C2StoreSim, SegmentPublishBeforeInitRefuted) {
  std::shared_ptr<svc::SimSegmentedTasArray> arr;
  auto scenario = [&arr](sim::SimRun& run) {
    arr = std::make_shared<svc::SimSegmentedTasArray>(run.world, "seg",
                                                      /*publish_before_init=*/true);
    run.sched.spawn(0, [arr](sim::Ctx& ctx) { arr->test_and_set(ctx, 1); });
    run.sched.spawn(1, [arr](sim::Ctx& ctx) {
      arr->read(ctx, 1);
      arr->read(ctx, 1);
    });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 24;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::TasSpec spec;
  auto res = check_tree(tree, spec, arr->cell_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "publish-before-init must NOT verify — this refutation is why "
         "SegmentedArray::materialize initialises cells before the pointer "
         "store";
}

// --- 4. the naive one-pass scan is not even linearizable --------------------

TEST(C2StoreSim, NaiveOnePassScanNotEvenStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimShardedMaxRegister>(w, "smax", n, /*shards=*/2,
                                                        /*double_collect=*/false);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"ReadMax", unit(), 0}},
                {{"WriteMax", num(2), 1}, {"WriteMax", num(1), 1}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 2, spec, "smax");
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable);
}

// The witness history, checked directly: the reader passes shard 0, the writer
// lands 2 on shard 0 and then 1 on shard 1, the reader sees the 1 and returns
// it — but 2 was fully written before 1, so NO point of the read's interval
// has max value 1. Returning 2 from the same interval is fine.
TEST(C2StoreSim, NaiveScanWitnessHistoryIsNotLinearizable) {
  auto make_history = [](int64_t read_resp) {
    std::vector<sim::OpRecord> ops(3);
    ops[0].id = 0;
    ops[0].proc = 0;
    ops[0].object = "smax";
    ops[0].name = "ReadMax";
    ops[0].args = unit();
    ops[0].resp = num(read_resp);
    ops[0].complete = true;
    ops[0].inv_seq = 0;
    ops[0].resp_seq = 7;
    ops[1].id = 1;
    ops[1].proc = 1;
    ops[1].object = "smax";
    ops[1].name = "WriteMax";
    ops[1].args = num(2);
    ops[1].resp = unit();
    ops[1].complete = true;
    ops[1].inv_seq = 1;
    ops[1].resp_seq = 2;
    ops[2].id = 2;
    ops[2].proc = 1;
    ops[2].object = "smax";
    ops[2].name = "WriteMax";
    ops[2].args = num(1);
    ops[2].resp = unit();
    ops[2].complete = true;
    ops[2].inv_seq = 3;
    ops[2].resp_seq = 4;
    return ops;
  };
  verify::MaxRegisterSpec spec;
  auto bad = verify::check_linearizability(make_history(1), spec);
  ASSERT_TRUE(bad.decided);
  EXPECT_FALSE(bad.linearizable) << "ReadMax -> 1 has no linearization point";
  auto good = verify::check_linearizability(make_history(2), spec);
  ASSERT_TRUE(good.decided);
  EXPECT_TRUE(good.linearizable) << good.explanation;
}

// --- 5. the PR 9 routing-epoch hand-off -------------------------------------
//
// SimRoutingEpoch replays the online-resize protocol (runtime/routing_epoch.h
// + the epoch-stamped refs in service/c2store.h) at base-object step
// granularity: one stamp register, per-epoch one-shot claims, migration by
// monotone write_max replay, and the writer-side Dekker settle loop. Key 1
// under the identity mask MOVES on a 1 -> 2 resize (slot 0 -> slot 1), so
// these schedules force the full hand-off: primary write to the old slot,
// migration replay, dual-write window, fresh readers on the new slot.

// The acceptance verdict: a key's max facet stays strongly linearizable
// ACROSS the migration cut, with the writer, the resizer and a fresh reader
// all overlapping.
TEST(C2StoreSim, RoutingEpochHandoffStronglyLinearizable) {
  std::shared_ptr<svc::SimRoutingEpoch> re;
  auto scenario = [&re](sim::SimRun& run) {
    re = std::make_shared<svc::SimRoutingEpoch>(run.world, "re", run.n(),
                                                /*initial_shards=*/1,
                                                /*max_shards=*/2);
    run.sched.spawn(0, [re](sim::Ctx& ctx) { re->write_max(ctx, 1, 1); });
    run.sched.spawn(1, [re](sim::Ctx& ctx) { re->resize(ctx, 2); });
    run.sched.spawn(2, [re](sim::Ctx& ctx) { re->read_max(ctx, 1); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::MaxRegisterSpec spec;
  auto res = check_tree(tree, spec, re->key_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Racing resizers: the one-shot claim admits exactly one installer; the loser
// reports without touching the spine, and the key facet still verifies.
TEST(C2StoreSim, RoutingEpochRacingResizersKeyFacetStronglyLinearizable) {
  std::shared_ptr<svc::SimRoutingEpoch> re;
  auto scenario = [&re](sim::SimRun& run) {
    re = std::make_shared<svc::SimRoutingEpoch>(run.world, "re", run.n(),
                                                /*initial_shards=*/1,
                                                /*max_shards=*/2);
    run.sched.spawn(0, [re](sim::Ctx& ctx) { re->resize(ctx, 2); });
    run.sched.spawn(1, [re](sim::Ctx& ctx) { re->resize(ctx, 2); });
    // A writer only (the read variant of this schedule blows the node budget;
    // the hand-off WITH a racing reader is the previous test): what this tree
    // pins is the claim race — exactly one resizer installs, the loser leaves
    // the spine untouched, and the writer's settle loop stays correct when the
    // install lands under it. The shards_of asserts inside the bridge double
    // as the "loser never reads an uninstalled cell" check on every schedule.
    run.sched.spawn(2, [re](sim::Ctx& ctx) { re->write_max(ctx, 1, 1); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::MaxRegisterSpec spec;
  auto res = check_tree(tree, spec, re->key_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// PINNED refutation: publishing the new epoch BEFORE the migration replay
// (serve-before-replay — the tempting "flip the table first, copy at leisure"
// reorder) lets a fresh reader route to a new slot and read 0 after a
// completed write. Not even linearizable; if this starts passing, the
// publish-after-replay order in C2Store::resize_with_lane lost its mechanised
// justification.
TEST(C2StoreSim, RoutingEpochServeBeforeReplayRefuted) {
  std::shared_ptr<svc::SimRoutingEpoch> re;
  auto scenario = [&re](sim::SimRun& run) {
    re = std::make_shared<svc::SimRoutingEpoch>(run.world, "re", run.n(),
                                                /*initial_shards=*/1,
                                                /*max_shards=*/2,
                                                /*publish_before_replay=*/true);
    run.sched.spawn(0, [re](sim::Ctx& ctx) { re->write_max(ctx, 1, 1); });
    run.sched.spawn(1, [re](sim::Ctx& ctx) { re->resize(ctx, 2); });
    run.sched.spawn(2, [re](sim::Ctx& ctx) { re->read_max(ctx, 1); });
  };
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::MaxRegisterSpec spec;
  auto res = check_tree(tree, spec, re->key_object(1));
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "serve-before-replay must NOT verify — this refutation is why "
         "resize publishes the epoch only after the migration replay";
}

}  // namespace
}  // namespace c2sl
