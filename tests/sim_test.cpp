// Tests for the simulation substrate: fibers, scheduler gating, determinism,
// replay, crash injection, history recording, and the execution-tree explorer.
// The verification results in the rest of the suite are only as trustworthy as
// the properties established here.
#include <gtest/gtest.h>

#include "primitives/faa.h"
#include "primitives/register.h"
#include "primitives/tas.h"
#include "sim/explorer.h"
#include "sim/fiber.h"
#include "sim/sim_run.h"
#include "sim/strategy.h"

namespace c2sl {
namespace {

using sim::Choice;

TEST(Fiber, RunsBodyAcrossYields) {
  std::vector<int> trace;
  sim::Fiber* self = nullptr;
  sim::Fiber f([&] {
    trace.push_back(1);
    self->yield();
    trace.push_back(2);
    self->yield();
    trace.push_back(3);
  });
  self = &f;
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, PropagatesExceptions) {
  sim::Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Scheduler, OneStepPerResume) {
  sim::SimRun run(2);
  auto reg = run.world.add<prim::FetchAddInt>("ctr");
  std::vector<int64_t> seen;
  for (int p = 0; p < 2; ++p) {
    run.sched.spawn(p, [reg, &seen](sim::Ctx& ctx) {
      for (int j = 0; j < 3; ++j) seen.push_back(ctx.world->get(reg).fetch_add(ctx, 1));
    });
  }
  // Processes are parked at their first gate; the counter is untouched.
  EXPECT_EQ(run.world.get(reg).peek(), 0);
  EXPECT_EQ(run.sched.runnable(), (std::vector<sim::ProcId>{0, 1}));

  run.sched.step(0);  // p0 performs one fetch&add
  EXPECT_EQ(run.world.get(reg).peek(), 1);
  run.sched.step(1);
  EXPECT_EQ(run.world.get(reg).peek(), 2);

  sim::RoundRobinStrategy rr;
  run.sched.run(rr, 1000);
  EXPECT_TRUE(run.sched.all_done());
  EXPECT_EQ(run.world.get(reg).peek(), 6);
  // Every increment observed a distinct previous value.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Scheduler, DeterministicReplay) {
  auto run_once = [](uint64_t seed) {
    sim::SimRun run(3);
    auto reg = run.world.add<prim::FetchAddInt>("ctr");
    for (int p = 0; p < 3; ++p) {
      run.sched.spawn(p, [reg](sim::Ctx& ctx) {
        for (int j = 0; j < 4; ++j) ctx.world->get(reg).fetch_add(ctx, 1 << (2 * ctx.self));
      });
    }
    run.history.record_steps = true;
    sim::RandomStrategy strategy(seed);
    run.sched.run(strategy, 1000);
    return run.history.to_string();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Scheduler, CrashStopsProcessAndUnwinds) {
  sim::SimRun run(2);
  auto reg = run.world.add<prim::FetchAddInt>("ctr");
  bool p0_second_step_landed = false;
  run.sched.spawn(0, [reg, &p0_second_step_landed](sim::Ctx& ctx) {
    ctx.world->get(reg).fetch_add(ctx, 1);
    // Local code here runs eagerly with the first granted step; only the next
    // SHARED step is blocked by the crash.
    ctx.world->get(reg).fetch_add(ctx, 1);
    p0_second_step_landed = true;  // must never run: crash hits the 2nd gate
  });
  run.sched.spawn(1, [reg](sim::Ctx& ctx) {
    ctx.world->get(reg).fetch_add(ctx, 10);
  });
  run.sched.step(0);  // p0's first fetch&add lands
  run.sched.crash(0);
  EXPECT_EQ(run.sched.runnable(), (std::vector<sim::ProcId>{1}));
  EXPECT_FALSE(p0_second_step_landed);
  run.sched.step(1);
  EXPECT_EQ(run.world.get(reg).peek(), 11);  // 1 from p0, 10 from p1, no 2nd +1
  // The crash is visible in the history.
  bool found_crash = false;
  for (const auto& e : run.history.events()) {
    if (e.kind == sim::Event::Kind::kCrash && e.proc == 0) found_crash = true;
  }
  EXPECT_TRUE(found_crash);
}

TEST(Scheduler, StarveStrategyBlocksVictim) {
  sim::SimRun run(3);
  auto reg = run.world.add<prim::FetchAddInt>("ctr");
  std::vector<uint64_t> steps(3, 0);
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [reg, &steps](sim::Ctx& ctx) {
      for (int j = 0; j < 5; ++j) ctx.world->get(reg).fetch_add(ctx, 1);
      steps[static_cast<size_t>(ctx.self)] = ctx.steps_taken;
    });
  }
  sim::StarveStrategy starve(/*victim=*/1, /*seed=*/7);
  run.sched.run(starve, 1000);
  // Victim ran only after everyone else finished; all eventually complete.
  EXPECT_TRUE(run.sched.all_done());
  EXPECT_EQ(run.world.get(reg).peek(), 15);
}

TEST(History, RecordsInvocationResponseOrder) {
  sim::SimRun run(2);
  auto reg = run.world.add<prim::RWRegister>("r", num(0));
  run.sched.spawn(0, [reg](sim::Ctx& ctx) {
    sim::record_op(ctx, "r", "write", num(5), [&] {
      ctx.world->get(reg).write(ctx, num(5));
      return unit();
    });
  });
  run.sched.spawn(1, [reg](sim::Ctx& ctx) {
    sim::record_op(ctx, "r", "read", unit(),
                   [&] { return ctx.world->get(reg).read(ctx); });
  });
  sim::RoundRobinStrategy rr;
  run.sched.run(rr, 100);
  auto ops = run.history.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].complete);
  EXPECT_TRUE(ops[1].complete);
  EXPECT_EQ(ops[0].name, "write");
  EXPECT_EQ(ops[1].name, "read");
  EXPECT_LT(ops[0].inv_seq, ops[0].resp_seq);
}

TEST(Primitives, TasSemantics) {
  sim::SimRun run(3);
  auto ts = run.world.add<prim::TestAndSet>("ts", /*readable=*/true);
  std::vector<int64_t> results(3, -1);
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [&ts, &results](sim::Ctx& ctx) {
      results[static_cast<size_t>(ctx.self)] = ctx.world->get(ts).test_and_set(ctx);
    });
  }
  sim::RandomStrategy strategy(5);
  run.sched.run(strategy, 100);
  // Exactly one winner.
  EXPECT_EQ(std::count(results.begin(), results.end(), 0), 1);
  EXPECT_EQ(std::count(results.begin(), results.end(), 1), 2);
}

TEST(Primitives, NonReadableTasRejectsRead) {
  sim::World world;
  auto ts = world.add<prim::TestAndSet>("ts", /*readable=*/false);
  sim::Ctx solo;
  solo.world = &world;
  EXPECT_THROW(world.get(ts).read(solo), PreconditionError);
}

TEST(Primitives, TwoProcessTasEnforcesParticipants) {
  sim::World world;
  auto ts = world.add<prim::TestAndSet>("ts", false, /*max_participants=*/2);
  sim::Ctx c0, c1, c2;
  c0.world = c1.world = c2.world = &world;
  c0.self = 0;
  c1.self = 1;
  c2.self = 2;
  world.get(ts).test_and_set(c0);
  world.get(ts).test_and_set(c1);
  EXPECT_THROW(world.get(ts).test_and_set(c2), PreconditionError);
}

TEST(World, CloneIsDeepAndIndependent) {
  sim::World world;
  auto reg = world.add<prim::RWRegister>("r", num(1));
  auto faa = world.add<prim::FetchAddBig>("f", BigInt(10));
  auto clone = world.clone();
  sim::Ctx solo;
  solo.world = &world;
  world.get(reg).write(solo, num(2));
  world.get(faa).fetch_add(solo, BigInt(5));
  // The clone still sees the original values.
  EXPECT_EQ(clone->at(reg.idx).state_string(), "n:1");
  EXPECT_EQ(clone->at(faa.idx).state_string(), BigInt(10).to_hex());
  EXPECT_EQ(world.at(faa.idx).state_string(), BigInt(15).to_hex());
}

TEST(World, StateStringInstallRoundTrip) {
  sim::World world;
  auto faa = world.add<prim::FetchAddBig>("f");
  sim::Ctx solo;
  solo.world = &world;
  world.get(faa).fetch_add(solo, BigInt::pow2(100));
  std::string snapshot = world.at(faa.idx).state_string();
  world.get(faa).fetch_add(solo, BigInt(7));
  world.at(faa.idx).set_state_string(snapshot);
  EXPECT_EQ(world.get(faa).peek(), BigInt::pow2(100));
}

TEST(Explorer, EnumeratesAllInterleavings) {
  // Two processes, one fetch&add step each: executions are the 2 orders, the
  // tree has 1 root + 2 + 2 nodes (each leaf reached after both steps).
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto reg = run.world.add<prim::FetchAddInt>("ctr");
    for (int p = 0; p < 2; ++p) {
      run.sched.spawn(p, [reg](sim::Ctx& ctx) { ctx.world->get(reg).fetch_add(ctx, 1); });
    }
  };
  sim::ExploreOptions opts;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  EXPECT_EQ(tree.size(), 5u);
  int leaves = 0;
  for (const auto& node : tree.nodes) {
    if (node.children.empty()) {
      ++leaves;
      EXPECT_TRUE(node.all_done);
    }
  }
  EXPECT_EQ(leaves, 2);
}

TEST(Explorer, HistoryAtConcatenatesSuffixes) {
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto reg = run.world.add<prim::FetchAddInt>("ctr");
    for (int p = 0; p < 2; ++p) {
      run.sched.spawn(p, [reg, p](sim::Ctx& ctx) {
        sim::record_op(ctx, "ctr", "inc", unit(), [&] {
          ctx.world->get(reg).fetch_add(ctx, 1);
          return num(p);
        });
      });
    }
  };
  sim::ExploreOptions opts;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  // Root history: both invocations (spawn runs prologues).
  auto root_events = tree.history_at(0);
  EXPECT_EQ(root_events.size(), 2u);
  // A leaf history contains 2 invocations + 2 responses.
  for (const auto& node : tree.nodes) {
    if (node.children.empty()) {
      auto events = tree.history_at(node.id);
      EXPECT_EQ(events.size(), 4u);
    }
  }
}

TEST(Explorer, CrashBranchesWhenEnabled) {
  sim::ScenarioFn scenario = [](sim::SimRun& run) {
    auto reg = run.world.add<prim::FetchAddInt>("ctr");
    for (int p = 0; p < 2; ++p) {
      run.sched.spawn(p, [reg](sim::Ctx& ctx) { ctx.world->get(reg).fetch_add(ctx, 1); });
    }
  };
  sim::ExploreOptions opts;
  opts.include_crashes = true;
  opts.max_crashes = 1;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  bool has_crash_edge = false;
  for (const auto& node : tree.nodes) {
    if (node.parent != -1 && node.incoming.crash) has_crash_edge = true;
  }
  EXPECT_TRUE(has_crash_edge);
  EXPECT_GT(tree.size(), 5u);
}

}  // namespace
}  // namespace c2sl
