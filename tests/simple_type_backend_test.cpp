// Backend ablation for Algorithm 1 (Theorem 3's hypothesis): the simple-type
// construction is strongly linearizable when the root snapshot is — the
// atomic snapshot and the §3.2 SnapshotFAA (Theorem 4) both pass the model
// check — and remains plain-linearizable over the non-SL AADGMS snapshot
// (the Aspnes–Herlihy correctness argument never needed strong
// linearizability; only the hyperproperty-preservation claim does).
#include <gtest/gtest.h>

#include "baselines/aadgms_snapshot.h"
#include "core/simple_type.h"
#include "harness.h"
#include "primitives/atomic_objects.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

verify::CounterSpec g_counter_spec;

core::OverwritesFn counter_overwrites() {
  return [](const Invocation& o1, const Invocation&) { return o1.name == "Read"; };
}

/// Counter over an externally chosen snapshot backend.
struct CounterOver : core::ConcurrentObject {
  std::unique_ptr<core::SnapshotIface> backend;
  std::unique_ptr<core::SimpleTypeObject> ctr;

  /// Adapter: the hypothetical atomic snapshot base object.
  struct AtomicSnapshotAdapter : core::SnapshotIface {
    sim::Handle<prim::SnapshotObj> h;
    AtomicSnapshotAdapter(sim::World& w, int n) { h = w.add<prim::SnapshotObj>("root", n); }
    void update(sim::Ctx& ctx, int64_t v) override { ctx.world->get(h).update(ctx, v); }
    std::vector<int64_t> scan(sim::Ctx& ctx) override { return ctx.world->get(h).scan(ctx); }
  };

  enum class Backend { kAtomic, kAadgms };

  CounterOver(sim::World& w, int n, Backend which) {
    switch (which) {
      case Backend::kAtomic:
        backend = std::make_unique<AtomicSnapshotAdapter>(w, n);
        break;
      case Backend::kAadgms:
        backend = std::make_unique<baselines::AadgmsSnapshot>(w, "root", n);
        break;
    }
    ctr = std::make_unique<core::SimpleTypeObject>(w, "ctr", n, g_counter_spec,
                                                   counter_overwrites(), *backend);
  }
  std::string object_name() const override { return "ctr"; }
  Val apply(sim::Ctx& c, const Invocation& i) override { return ctr->apply(c, i); }
};

TEST(SimpleTypeBackend, SequentialSemanticsIdenticalAcrossBackends) {
  for (auto which : {CounterOver::Backend::kAtomic, CounterOver::Backend::kAadgms}) {
    sim::World world;
    CounterOver obj(world, 2, which);
    sim::Ctx solo;
    solo.world = &world;
    solo.self = 0;
    obj.apply(solo, {"Inc", unit(), 0});
    obj.apply(solo, {"Inc", unit(), 0});
    EXPECT_EQ(obj.apply(solo, {"Read", unit(), 0}), num(2));
  }
}

TEST(SimpleTypeBackend, LinearizableOverBothBackends) {
  testing::OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.6) ? Invocation{"Inc", unit(), -1}
                              : Invocation{"Read", unit(), -1};
  };
  for (auto which : {CounterOver::Backend::kAtomic, CounterOver::Backend::kAadgms}) {
    testing::ObjectFactory factory = [which](sim::World& w, int n) {
      return std::make_shared<CounterOver>(w, n, which);
    };
    testing::WorkloadOptions opts;
    opts.n = 3;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, g_counter_spec, opts, 30, "ctr"))
        << static_cast<int>(which);
  }
}

// Theorem 3's positive side over the ATOMIC snapshot: full bounded SL check.
TEST(SimpleTypeBackend, StronglyLinearizableOverAtomicSnapshot) {
  testing::ObjectFactory factory = [](sim::World& w, int n) {
    return std::make_shared<CounterOver>(w, n, CounterOver::Backend::kAtomic);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}}, {{"Read", unit(), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 24;
  opts.max_nodes = 300000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted);
  verify::StrongLinOptions slopts;
  slopts.object = "ctr";
  auto res = verify::check_strong_linearizability(tree, g_counter_spec, slopts);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Over the NON-strongly-linearizable AADGMS backend, probe small guided
// subtrees for prefix-closure conflicts in the composed object. A conflict
// would be a definitive refutation (sound); absence at this size is recorded,
// not asserted — AADGMS operations are long, so the conflict region may sit
// beyond tractable depth for the composed object.
TEST(SimpleTypeBackend, AadgmsBackendProbedForConflicts) {
  testing::ObjectFactory factory = [](sim::World& w, int n) {
    return std::make_shared<CounterOver>(w, n, CounterOver::Backend::kAadgms);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}}, {{"Inc", unit(), 1}}, {{"Read", unit(), 2}}});
  int conflicts = 0;
  int probes = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    sim::SimRun probe(3);
    scenario(probe);
    sim::RandomStrategy random(seed);
    sim::RecordingStrategy recorder(random);
    probe.sched.run(recorder, 10);
    if (recorder.recorded().size() < 10) continue;
    sim::ExploreOptions opts;
    opts.prefix = recorder.recorded();
    opts.max_depth = 8;
    opts.max_nodes = 30000;
    sim::ExecTree tree = sim::explore(3, scenario, opts);
    verify::StrongLinOptions slopts;
    slopts.object = "ctr";
    slopts.max_search_nodes = 2'000'000;
    auto res = verify::check_strong_linearizability(tree, g_counter_spec, slopts);
    if (!res.decided) continue;
    ++probes;
    if (!res.strongly_linearizable) ++conflicts;
  }
  EXPECT_GT(probes, 0);
  RecordProperty("conflicts_found", conflicts);
  RecordProperty("probes", probes);
  // Either outcome is consistent with theory at this scale; the linearizable
  // sweeps above plus the refutation of the BARE AADGMS snapshot
  // (strong_lin_negative_test.cpp) carry the §3.3 hypothesis story.
}

}  // namespace
}  // namespace c2sl
