// Theorems 3/4 (paper §3.3): the Aspnes–Herlihy simple-type construction
// (Algorithm 1) over the strongly-linearizable SnapshotFAA, for all four
// provided instances: counter, max register, union-set and logical clock.
#include "core/simple_type.h"

#include <gtest/gtest.h>

#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using testing::ObjectFactory;
using testing::OpGen;
using testing::WorkloadOptions;
using verify::Invocation;

verify::CounterSpec g_counter_spec;
verify::MaxRegisterSpec g_maxreg_spec;
verify::UnionSetSpec g_union_spec;
verify::LogicalClockSpec g_clock_spec;

TEST(SimpleTypeCounter, SequentialSemantics) {
  sim::World world;
  auto ctr = core::make_counter(world, "ctr", 2, g_counter_spec);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 0;
  EXPECT_EQ(ctr->apply(solo, {"Read", unit(), 0}), num(0));
  ctr->apply(solo, {"Inc", unit(), 0});
  ctr->apply(solo, {"Inc", unit(), 0});
  EXPECT_EQ(ctr->apply(solo, {"Read", unit(), 0}), num(2));
  ctr->apply(solo, {"Add", num(5), 0});
  EXPECT_EQ(ctr->apply(solo, {"Read", unit(), 0}), num(7));
}

TEST(SimpleTypeCounter, LinearizableUnderRandomSchedules) {
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_counter(w, "ctr", n, g_counter_spec));
  };
  OpGen gen = [](int, int, Rng& rng) {
    uint64_t r = rng.next_below(10);
    if (r < 5) return Invocation{"Inc", unit(), -1};
    if (r < 7) return Invocation{"Add", num(rng.next_in(1, 4)), -1};
    return Invocation{"Read", unit(), -1};
  };
  for (int n : {2, 3}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, g_counter_spec, opts, 40, "ctr")) << n;
  }
}

TEST(SimpleTypeMaxRegister, LinearizableUnderRandomSchedules) {
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_max_register_st(w, "mr", n, g_maxreg_spec));
  };
  OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.5) ? Invocation{"WriteMax", num(rng.next_in(0, 9)), -1}
                              : Invocation{"ReadMax", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, g_maxreg_spec, opts, 40, "mr"));
}

TEST(SimpleTypeUnionSet, SequentialSemantics) {
  sim::World world;
  auto set = core::make_union_set(world, "us", 2, g_union_spec);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 1;
  EXPECT_EQ(set->apply(solo, {"Has", num(4), 1}), num(0));
  set->apply(solo, {"Insert", num(4), 1});
  set->apply(solo, {"Insert", num(4), 1});  // idempotent
  EXPECT_EQ(set->apply(solo, {"Has", num(4), 1}), num(1));
  EXPECT_EQ(set->apply(solo, {"Has", num(5), 1}), num(0));
}

TEST(SimpleTypeUnionSet, LinearizableUnderRandomSchedules) {
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_union_set(w, "us", n, g_union_spec));
  };
  OpGen gen = [](int, int, Rng& rng) {
    int64_t x = rng.next_in(0, 4);
    return rng.next_bool(0.5) ? Invocation{"Insert", num(x), -1}
                              : Invocation{"Has", num(x), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, g_union_spec, opts, 40, "us"));
}

TEST(SimpleTypeLogicalClock, SequentialSemanticsAndLamportTick) {
  sim::World world;
  auto clock = core::make_logical_clock(world, "lc", 2, g_clock_spec);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 0;
  EXPECT_EQ(clock->apply(solo, {"Observe", unit(), 0}), num(0));
  clock->apply(solo, {"Join", num(5), 0});
  EXPECT_EQ(clock->apply(solo, {"Observe", unit(), 0}), num(5));
  // A Lamport tick: Join(Observe() + 1).
  int64_t now = as_num(clock->apply(solo, {"Observe", unit(), 0}));
  clock->apply(solo, {"Join", num(now + 1), 0});
  EXPECT_EQ(clock->apply(solo, {"Observe", unit(), 0}), num(6));
}

TEST(SimpleTypeLogicalClock, LinearizableUnderRandomSchedules) {
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_logical_clock(w, "lc", n, g_clock_spec));
  };
  OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.5) ? Invocation{"Join", num(rng.next_in(0, 12)), -1}
                              : Invocation{"Observe", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, g_clock_spec, opts, 40, "lc"));
}

// Wait-freedom: each operation's step count is bounded by a linear function of
// the operations published so far (scan + graph traversal + append + update).
TEST(SimpleTypeCounter, StepsBoundedByGraphSize) {
  sim::SimRun run(3);
  verify::CounterSpec spec;
  std::shared_ptr<core::ConcurrentObject> obj(
      core::make_counter(run.world, "ctr", 3, spec));
  std::vector<std::pair<uint64_t, uint64_t>> samples;  // (ops before, steps)
  uint64_t published = 0;
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [obj, &samples, &published](sim::Ctx& ctx) {
      for (int j = 0; j < 4; ++j) {
        uint64_t before = ctx.steps_taken;
        obj->apply(ctx, {"Inc", unit(), ctx.self});
        samples.emplace_back(published, ctx.steps_taken - before);
        ++published;
      }
    });
  }
  sim::RandomStrategy strategy(2);
  run.sched.run(strategy, 100000);
  ASSERT_TRUE(run.sched.all_done());
  for (auto [ops_before, steps] : samples) {
    // scan(1) + at most (all published ops) node reads + append(1) + update(1).
    EXPECT_LE(steps, ops_before + 3 + 12);
  }
}

// Crash tolerance: a crashed process's published nodes stay readable and the
// object remains linearizable.
TEST(SimpleTypeCounter, LinearizableUnderCrashes) {
  ObjectFactory factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_counter(w, "ctr", n, g_counter_spec));
  };
  OpGen gen = [](int, int, Rng&) { return Invocation{"Inc", unit(), -1}; };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  opts.crash_prob = 0.03;
  opts.max_crashes = 2;
  EXPECT_TRUE(testing::lin_sweep(factory, gen, g_counter_spec, opts, 40, "ctr"));
}

}  // namespace
}  // namespace c2sl
