// Functional tests for the multi-key snapshot surface of the service layer:
// C2Session::snapshot / snapshot_ref / snapshot_counters / transfer over the
// write journal (runtime/keyed_version_digest.h). The concurrency story is
// checker-verified in tests/snapshot_sim_test.cpp and stress-tested in
// tests/snapshot_stress_test.cpp; this file pins the sequential semantics:
// the quiescent identities against the per-key reads, the conservation of
// transfers, cursor reuse across repeated snapshots, and the edge cases
// (empty key list, duplicate keys, unknown keys, session close/reopen).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "service/c2store.h"

namespace c2sl {
namespace {

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = 4;
  cfg.max_value = 10;  // 4 * 10 <= 63
  cfg.tas_max_resets = 6;
  return cfg;
}

// --- quiescent identities ---------------------------------------------------

// With no transfers in the journal, a counter key's snapshot component IS the
// per-key counter read, and a max key's component IS the per-key max read.
TEST(Snapshot, QuiescentIdentityAgainstPerKeyReads) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;  // two distinct shards
  for (int i = 0; i < 7; ++i) s.counter(a).inc();
  for (int i = 0; i < 3; ++i) s.counter(b).inc();
  s.max(a).write(5);
  s.max(b).write(9);
  std::vector<int64_t> view = s.snapshot({svc::SnapKey::counter(a),
                                          svc::SnapKey::counter(b),
                                          svc::SnapKey::max(a),
                                          svc::SnapKey::max(b)});
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[0], s.counter_read(a));
  EXPECT_EQ(view[1], s.counter_read(b));
  EXPECT_EQ(view[2], s.max_read(a));
  EXPECT_EQ(view[3], s.max_read(b));
  EXPECT_EQ(view[0], 7);
  EXPECT_EQ(view[1], 3);
  EXPECT_EQ(view[2], 5);
  EXPECT_EQ(view[3], 9);
}

// Transfers exist only on the snapshot facet (the Thm 9 counter is inc-only):
// they shift the ledger balances the snapshot reports, conserve their sum,
// and leave the per-key counter reads untouched.
TEST(Snapshot, TransfersMoveLedgerBalanceAndConserveTheSum) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;
  for (int i = 0; i < 4; ++i) s.counter(a).inc();
  for (int i = 0; i < 2; ++i) s.counter(b).inc();
  s.transfer(a, b, 3);
  std::vector<int64_t> view = s.snapshot_counters({a, b});
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 4 - 3) << "debit side: incs + net transfers";
  EXPECT_EQ(view[1], 2 + 3) << "credit side: incs + net transfers";
  EXPECT_EQ(view[0] + view[1], 6) << "transfers conserve the total";
  EXPECT_EQ(s.counter_read(a), 4) << "the inc-only counter never sees transfers";
  EXPECT_EQ(s.counter_read(b), 2);
  // Balances may go negative; a negative amount transfers the other way.
  s.transfer(a, b, 5);
  view = s.snapshot_counters({a, b});
  EXPECT_EQ(view[0], -4);
  EXPECT_EQ(view[1], 10);
  s.transfer(a, b, -9);
  view = s.snapshot_counters({a, b});
  EXPECT_EQ(view[0], 5);
  EXPECT_EQ(view[1], 1);
}

TEST(Snapshot, StringKeysTransferLikeIntKeys) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  // Two string keys on distinct shards (names may collide on 8 shards).
  const std::string alice = "alice";
  std::string bob = "bob0";
  for (int i = 0; store.shard_of(std::string_view(bob)) ==
                  store.shard_of(std::string_view(alice));
       ++i) {
    bob = "bob" + std::to_string(i);
  }
  s.counter(alice).inc();
  s.counter(alice).inc();
  s.transfer(std::string_view(alice), std::string_view(bob), 1);
  // Route the string keys through integer-keyed shard representatives: keys
  // collapse to shards, so any key on the same shard reads the balance.
  uint64_t ka = 0;
  while (store.shard_of(ka) != store.shard_of(std::string_view(alice))) ++ka;
  uint64_t kb = 0;
  while (store.shard_of(kb) != store.shard_of(std::string_view(bob))) ++kb;
  std::vector<int64_t> balances = s.snapshot_counters({ka, kb});
  EXPECT_EQ(balances[0], 1);
  EXPECT_EQ(balances[1], 1);
}

// Keys collapse to shards exactly like the typed refs: colliding keys name
// the same snapshot component, and duplicates in one key list are allowed
// (each slot reports the same shard value).
TEST(Snapshot, DuplicateAndCollidingKeysShareTheComponent) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  uint64_t a = 0, b = 1;
  while (store.shard_of(b) != store.shard_of(a)) ++b;  // same shard
  for (int i = 0; i < 3; ++i) s.counter(a).inc();
  std::vector<int64_t> view = s.snapshot({svc::SnapKey::counter(a),
                                          svc::SnapKey::counter(a),
                                          svc::SnapKey::counter(b)});
  EXPECT_EQ(view, (std::vector<int64_t>{3, 3, 3}));
}

// --- cursor reuse and the reusable ref ---------------------------------------

TEST(Snapshot, SnapshotRefReplaysIncrementally) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;
  svc::SnapshotRef ref =
      s.snapshot_ref({svc::SnapKey::counter(a), svc::SnapKey::counter(b)});
  EXPECT_EQ(ref.size(), 2);
  EXPECT_EQ(ref.read(), (std::vector<int64_t>{0, 0}));
  s.counter(a).inc();
  EXPECT_EQ(ref.read(), (std::vector<int64_t>{1, 0}));
  s.counter(b).inc();
  s.transfer(a, b, 1);
  EXPECT_EQ(ref.read(), (std::vector<int64_t>{0, 2}));
  // Re-reading a quiescent journal replays nothing and changes nothing.
  EXPECT_EQ(ref.read(), (std::vector<int64_t>{0, 2}));
  // A second ref over different kinds shares the session's replay state.
  svc::SnapshotRef mref = s.snapshot_ref({svc::SnapKey::max(a)});
  s.max(a).write(4);
  EXPECT_EQ(mref.read(), (std::vector<int64_t>{4}));
  EXPECT_EQ(ref.read(), (std::vector<int64_t>{0, 2}));
}

TEST(Snapshot, JournalTicketsCountKeyedWrites) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  EXPECT_EQ(store.journal_tickets(), 0);
  s.counter(uint64_t{1}).inc();       // 1 entry
  s.max(uint64_t{2}).write(7);        // 1 entry
  s.transfer(uint64_t{1}, uint64_t{3}, 2);  // 1 entry
  s.counter_read(uint64_t{1});        // reads never journal
  s.snapshot_counters({uint64_t{1}});
  EXPECT_EQ(store.journal_tickets(), 3);
}

// --- edge cases ---------------------------------------------------------------

TEST(Snapshot, EmptyKeyListYieldsEmptyVector) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  EXPECT_TRUE(s.snapshot({}).empty());
  svc::SnapshotRef ref = s.snapshot_ref({});
  EXPECT_EQ(ref.size(), 0);
  EXPECT_TRUE(ref.read().empty());
}

// Snapshots and transfers ride the journal only — they must never materialise
// shards (same contract as the aggregate digest reads).
TEST(Snapshot, NeverMaterialisesShards) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  EXPECT_EQ(store.initialized_shards(), 0);
  std::vector<int64_t> view =
      s.snapshot({svc::SnapKey::counter(uint64_t{7}), svc::SnapKey::max(uint64_t{9})});
  EXPECT_EQ(view, (std::vector<int64_t>{0, 0})) << "unknown keys read as zero";
  s.transfer(uint64_t{7}, uint64_t{9}, 5);
  EXPECT_EQ(s.snapshot_counters({uint64_t{7}}).front(), -5);
  EXPECT_EQ(store.initialized_shards(), 0)
      << "snapshot/transfer must not materialise shards";
  // A keyed write then lands on exactly one shard, as usual.
  s.counter(uint64_t{7}).inc();
  EXPECT_EQ(store.initialized_shards(), 1);
}

TEST(Snapshot, ClosedSessionRejectsSnapshotAndTransfer) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  s.close();
  EXPECT_THROW(s.snapshot({svc::SnapKey::counter(uint64_t{1})}), PreconditionError);
  EXPECT_THROW(s.snapshot_ref({}), PreconditionError);
  EXPECT_THROW(s.transfer(uint64_t{1}, uint64_t{2}, 1), PreconditionError);
}

// Session close/reopen with lane recycling: the journal is store-global, so a
// fresh session (cursor 0) replays everything prior sessions wrote; its first
// snapshot sees the full history no matter which lane it was handed.
TEST(Snapshot, SurvivesSessionCloseReopen) {
  svc::C2Store store(small_config());
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;
  int first_lane;
  {
    svc::C2Session s = store.open_session();
    first_lane = s.lane();
    for (int i = 0; i < 5; ++i) s.counter(a).inc();
    s.transfer(a, b, 2);
    EXPECT_EQ(s.snapshot_counters({a, b}), (std::vector<int64_t>{3, 2}));
  }  // RAII close: replay state dies with the session, the journal persists
  {
    svc::C2Session s = store.open_session();
    EXPECT_EQ(s.lane(), first_lane) << "sole reopen must recycle the lane";
    EXPECT_EQ(s.snapshot_counters({a, b}), (std::vector<int64_t>{3, 2}))
        << "a recycled lane's fresh session replays the whole journal";
    s.counter(b).inc();
    EXPECT_EQ(s.snapshot_counters({a, b}), (std::vector<int64_t>{3, 3}));
  }
}

// A moved-from session hands its replay state to the destination; the
// destination's next snapshot continues from the moved cursor.
TEST(Snapshot, MoveCarriesTheReplayState) {
  svc::C2Store store(small_config());
  svc::C2Session a = store.open_session();
  uint64_t k = 42;
  a.counter(k).inc();
  EXPECT_EQ(a.snapshot_counters({k}).front(), 1);
  svc::C2Session b = std::move(a);
  a.close();  // idempotent on the moved-from shell
  EXPECT_EQ(b.snapshot_counters({k}).front(), 1);
  b.counter(k).inc();
  EXPECT_EQ(b.snapshot_counters({k}).front(), 2);
}

// Snapshots from concurrent sessions agree at quiescence: the journal is one
// global order, each session merely keeps its own replay cursor.
TEST(Snapshot, SessionsAgreeAtQuiescence) {
  svc::C2Store store(small_config());
  svc::C2Session s0 = store.open_session();
  svc::C2Session s1 = store.open_session();
  uint64_t a = 100, b = 101;
  while (store.shard_of(b) == store.shard_of(a)) ++b;
  s0.counter(a).inc();
  s1.counter(b).inc();
  s0.transfer(a, b, 1);
  std::vector<int64_t> v0 = s0.snapshot_counters({a, b});
  std::vector<int64_t> v1 = s1.snapshot_counters({a, b});
  EXPECT_EQ(v0, v1);
  EXPECT_EQ(v0, (std::vector<int64_t>{0, 2}));
}

}  // namespace
}  // namespace c2sl
