// Sim-mode verification of the multi-key snapshot design behind
// C2Session::snapshot (service/sim_bridge SimKeyedSnapshot, the twin of
// runtime/keyed_version_digest.h). The story, mechanically checked:
//
//  1. The JOURNAL snapshot — keyed writes append ticket-indexed entries, a
//     snapshot reads the tail once (FAA(0)) and replays below it — IS strongly
//     linearizable, on exactly the schedule families that kill per-key loops:
//     a write landing between the reads of two keys, and two overlapping
//     snapshots racing one writer (the prefix-closure anomaly family that
//     also kills per-key-version double-collects; docs/PROOFS.md works it).
//  2. Transfers are ONE journal entry, so every snapshot conserves the
//     transferred sum — checker-verified against the atomic Xfer spec
//     transition AND asserted directly over every explored execution.
//  3. The naive per-key read loop is PINNED REFUTED on the same schedule
//     family — not even linearizable (the torn (0,1) vector has no
//     linearization point), with the witness history also checked directly
//     against verify::KeyedSnapshotSpec.
//  4. The cross-facet order contract is pinned like the digests' (service_sim):
//     the journal never runs ahead of the keyed reads (shard object first,
//     journal append last), and the shard may briefly lead the journal.
//
// (3) is the experimental record of WHY snapshot() replays a journal instead
// of looping over per-key reads — the same §3.1/§3.2 pack-into-one-FAA-word
// move that powers the max and counter-sum digests, extended to vectors.
#include <gtest/gtest.h>

#include "harness.h"
#include "service/sim_bridge.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

verify::StrongLinResult check_tree(const sim::ExecTree& tree, const verify::Spec& spec,
                                   const std::string& object) {
  verify::StrongLinOptions slopts;
  slopts.object = object;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

verify::StrongLinResult check(const sim::ScenarioFn& scenario, int n,
                              const verify::Spec& spec, const std::string& object,
                              int max_depth = 32, size_t max_nodes = 400000) {
  sim::ExploreOptions opts;
  opts.max_depth = max_depth;
  opts.max_nodes = max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  return check_tree(tree, spec, object);
}

testing::ObjectFactory snap_factory(int shards, bool naive_loop = false) {
  return [shards, naive_loop](sim::World& w, int n) {
    return std::make_shared<svc::SimKeyedSnapshot>(w, "ksnap", n, shards,
                                                   naive_loop);
  };
}

/// Packed args in the KeyedSnapshotSpec encoding.
int64_t max_arg(int shard, int64_t v) { return shard | (v << 3); }
int64_t xfer_arg(int from, int to, int64_t d) {
  return from | (int64_t{to} << 3) | (d << 6);
}

// --- 1. the journal snapshot is strongly linearizable -----------------------

TEST(SnapshotSim, JournalSnapshotWriteBetweenReadsStronglyLinearizable) {
  // THE schedule family that tears per-key loops: a snapshot overlapping two
  // back-to-back incs on different shards. The journal version must keep a
  // fixed own-step point (its tail FAA(0)) through every interleaving.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Snap", unit(), 0}},
                        {{"Inc", num(0), 1}, {"Inc", num(1), 1}}});
  verify::KeyedSnapshotSpec spec(2);
  auto res = check(scenario, 2, spec, "ksnap");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(SnapshotSim, JournalSnapshotRacingSnapshotsStronglyLinearizable) {
  // The two-scanner anomaly family (docs/PROOFS.md): two overlapping
  // snapshots racing one in-flight writer is exactly where validation-window
  // schemes (per-key version double-collects) lose prefix closure. The
  // journal design must verify here — both snapshots linearize at their own
  // FAA(0). The writer is a transfer — the cheapest journal append (ticket
  // fetch&add + entry write), which keeps the 3-process tree inside the node
  // budget while still exposing the drawn-ticket/undeposited-entry window
  // both replayers must poll through.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Snap", unit(), 0}},
                        {{"Snap", unit(), 1}},
                        {{"Xfer", num(xfer_arg(0, 1, 1)), 2}}});
  verify::KeyedSnapshotSpec spec(2);
  // Depth 14 bounds the replayers' deposit-poll branches: two pollers
  // interleaving freely is exponential in depth (the explorer has no
  // partial-order reduction), and the anomaly nodes — both tails read while
  // the writer sits between its ticket and its deposit — are all shallow.
  // Fair schedules complete every op well inside the budget; starved ones
  // truncate, which the checker handles (pending ops stay pending).
  auto res = check(scenario, 3, spec, "ksnap", /*max_depth=*/14);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(SnapshotSim, JournalSnapshotMaxFacetStronglyLinearizable) {
  // Same family over the max facet: writes 2-then-1 routed to different
  // shards while a snapshot replays.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Snap", unit(), 0}},
                        {{"WriteMax", num(max_arg(0, 2)), 1},
                         {"WriteMax", num(max_arg(1, 1)), 1}}});
  verify::KeyedSnapshotSpec spec(2);
  auto res = check(scenario, 2, spec, "ksnap");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// --- 2. transfer conservation -----------------------------------------------

TEST(SnapshotSim, TransferConservationStronglyLinearizable) {
  // Xfer is ONE spec transition (debit and credit inseparable); an
  // implementation that could tear the two sides would fail this check.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Xfer", num(xfer_arg(0, 1, 1)), 0}},
                        {{"Snap", unit(), 1}}});
  verify::KeyedSnapshotSpec spec(2);
  auto res = check(scenario, 2, spec, "ksnap");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(SnapshotSim, EverySnapshotConservesTheTransferredSum) {
  // Direct sweep over the full execution tree: in EVERY completed execution,
  // EVERY snapshot's counter entries sum to zero — a transfer is either
  // entirely inside the replayed prefix or entirely outside it.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Xfer", num(xfer_arg(0, 1, 2)), 0}},
                        {{"Xfer", num(xfer_arg(1, 0, 1)), 1}},
                        {{"Snap", unit(), 2}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  int snaps_seen = 0;
  for (const auto& node : tree.nodes) {
    if (!node.all_done) continue;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    for (const auto& r : ops) {
      if (r.name != "Snap" || !r.complete) continue;
      const std::vector<int64_t>& view = as_vec(r.resp);
      ASSERT_EQ(view.size(), 4u);
      EXPECT_EQ(view[0] + view[1], 0)
          << "snapshot observed a torn transfer: (" << view[0] << ", "
          << view[1] << ")";
      ++snaps_seen;
    }
  }
  EXPECT_GT(snaps_seen, 0);
}

// --- 3. the naive per-key read loop, pinned refuted -------------------------

// PINNED: the one-pass per-key loop tears. Concrete anomaly in the explored
// tree: the loop reads shard 0 (sees 0), both incs land (states (0,0) ->
// (1,0) -> (1,1)), the loop reads shard 1 (sees 1) and returns (0,1) — a
// vector that was never the state at ANY point. Not even linearizable, so
// certainly not strongly linearizable. If this starts passing, either the
// bridge stopped modelling the loop or the checker broke — and the reason
// snapshot() replays a journal would be silently erased.
TEST(SnapshotSim, NaivePerKeyLoopRefuted) {
  auto scenario = testing::fixed_scenario(
      snap_factory(2, /*naive_loop=*/true),
      {{{"Snap", unit(), 0}}, {{"Inc", num(0), 1}, {"Inc", num(1), 1}}});
  verify::KeyedSnapshotSpec spec(2);
  auto res = check(scenario, 2, spec, "ksnap");
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "per-key read loops must NOT verify — this refutation is why "
         "C2Session::snapshot replays the write journal";
}

// The witness history, checked directly against the spec: Snap -> (0,1,0,0)
// overlapping Inc(0) then Inc(1) (program order, both complete inside the
// snapshot's interval) admits NO linearization — the snapshot can go before
// both incs (0,0), between them (1,0), or after both (1,1), never (0,1).
TEST(SnapshotSim, NaiveLoopWitnessHistoryIsNotLinearizable) {
  auto make_history = [](std::vector<int64_t> snap_resp) {
    std::vector<sim::OpRecord> ops(3);
    ops[0].id = 0;
    ops[0].proc = 0;
    ops[0].object = "ksnap";
    ops[0].name = "Snap";
    ops[0].args = unit();
    ops[0].resp = vec(std::move(snap_resp));
    ops[0].complete = true;
    ops[0].inv_seq = 0;
    ops[0].resp_seq = 7;
    ops[1].id = 1;
    ops[1].proc = 1;
    ops[1].object = "ksnap";
    ops[1].name = "Inc";
    ops[1].args = num(0);
    ops[1].resp = unit();
    ops[1].complete = true;
    ops[1].inv_seq = 1;
    ops[1].resp_seq = 2;
    ops[2].id = 2;
    ops[2].proc = 1;
    ops[2].object = "ksnap";
    ops[2].name = "Inc";
    ops[2].args = num(1);
    ops[2].resp = unit();
    ops[2].complete = true;
    ops[2].inv_seq = 3;
    ops[2].resp_seq = 4;
    return ops;
  };
  verify::KeyedSnapshotSpec spec(2);
  auto torn = verify::check_linearizability(make_history({0, 1, 0, 0}), spec);
  ASSERT_TRUE(torn.decided);
  EXPECT_FALSE(torn.linearizable) << "Snap -> (0,1) has no linearization point";
  auto ok = verify::check_linearizability(make_history({1, 1, 0, 0}), spec);
  ASSERT_TRUE(ok.decided);
  EXPECT_TRUE(ok.linearizable) << ok.explanation;
}

// --- 4. the cross-facet order, pinned (journal last) ------------------------

/// P1's two read responses (program order), one pair per completed execution:
/// the snapshot's shard-0 counter entry and the direct shard read, in the
/// order P1 issued them.
std::vector<std::pair<int64_t, int64_t>> observer_pairs(const sim::ExecTree& tree) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (const auto& node : tree.nodes) {
    if (!node.all_done) continue;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    std::vector<int64_t> resp;
    for (const auto& r : ops) {
      if (r.proc != 1 || !r.complete) continue;
      if (r.name == "Snap") resp.push_back(as_vec(r.resp)[0]);
      if (r.name == "ReadShard") resp.push_back(as_num(r.resp));
    }
    if (resp.size() == 2) out.emplace_back(resp[0], resp[1]);
  }
  return out;
}

TEST(SnapshotSim, JournalNeverLeadsTheShardCounters) {
  // Incrementer on shard 0; observer snapshots THEN reads the shard directly.
  // Shard counters are monotone, so if the journal ever led (append before
  // the shard win), some execution would show snap=1 while the (later!)
  // direct shard read still returns 0.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Inc", num(0), 0}},
                        {{"Snap", unit(), 1}, {"ReadShard", num(0), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  auto pairs = observer_pairs(tree);
  ASSERT_FALSE(pairs.empty());
  for (auto [snap_v, shard] : pairs) {
    EXPECT_LE(snap_v, shard)
        << "journal ran ahead of the shard counter: the shard-first order in "
           "CounterRef::inc was reordered";
  }
}

TEST(SnapshotSim, ShardCounterMayLeadTheJournal) {
  // Observer reads the shard THEN snapshots: some execution must catch the
  // incrementer between its shard win and its journal append (shard=1, snap
  // still 0). The documented lag is load-bearing, so its existence is pinned.
  auto scenario = testing::fixed_scenario(
      snap_factory(2), {{{"Inc", num(0), 0}},
                        {{"ReadShard", num(0), 1}, {"Snap", unit(), 1}}});
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(2, scenario, opts);
  ASSERT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  bool lag_witnessed = false;
  for (const auto& node : tree.nodes) {
    if (!node.all_done) continue;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    int64_t shard = -1, snap_v = -1;
    for (const auto& r : ops) {
      if (r.proc != 1 || !r.complete) continue;
      if (r.name == "ReadShard") shard = as_num(r.resp);
      if (r.name == "Snap") snap_v = as_vec(r.resp)[0];
    }
    if (shard == 1 && snap_v == 0) lag_witnessed = true;
  }
  EXPECT_TRUE(lag_witnessed)
      << "no execution shows the documented shard-ahead-of-journal lag window";
}

}  // namespace
}  // namespace c2sl
