// Multi-threaded stress tests (TSAN/ASAN targets) for the snapshot surface:
// the transfer_audit conservation invariant — concurrent transfers across
// random key pairs while snapshot readers assert that every observed cut
// conserves the transferred sum — plus snapshot/write races over the journal
// deposit protocol and session-churn snapshots on recycled lanes. All seeds
// are deterministic; volumes are sized to stay fast under the sanitizers.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/stress.h"
#include "service/c2store.h"
#include "util/rng.h"

namespace c2sl {
namespace {

svc::C2StoreConfig stress_config(int threads) {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 8;
  cfg.max_threads = threads;
  cfg.max_value = 63 / threads;
  cfg.tas_max_resets = 63 / threads - 1;
  return cfg;
}

std::vector<svc::C2Session> open_sessions(svc::C2Store& store, int threads) {
  std::vector<svc::C2Session> out;
  out.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) out.push_back(store.open_session());
  return out;
}

/// One integer key per shard (keys collapse to shards; auditing one
/// representative per shard is what makes the conservation sum exact).
std::vector<uint64_t> shard_representatives(const svc::C2Store& store) {
  std::vector<uint64_t> keys;
  std::set<int> covered;
  for (uint64_t k = 0; static_cast<int>(covered.size()) < store.shard_count(); ++k) {
    if (covered.insert(store.shard_of(k)).second) keys.push_back(k);
  }
  return keys;
}

// The transfer_audit invariant, raced: transferors move random amounts
// between random shard pairs while snapshot readers run concurrently. A
// transfer is ONE journal entry, so EVERY snapshot — no matter where its
// tail read cuts the journal — must see the balances sum to zero. A torn
// implementation (separate debit and credit entries, or a non-atomic
// replay) fails this within a handful of schedules.
TEST(SnapshotStress, ConcurrentTransfersConserveTheSum) {
  const int threads = 4;
  const int per_thread = 400;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const std::vector<uint64_t> keys = shard_representatives(store);
  // Threads 0..1 transfer; threads 2..3 snapshot and audit.
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    svc::C2Session& s = sessions[static_cast<size_t>(t)];
    if (t < 2) {
      Rng rng(static_cast<uint64_t>(t) * 7919 + static_cast<uint64_t>(j));
      size_t from = static_cast<size_t>(rng.next_below(keys.size()));
      size_t to = static_cast<size_t>(rng.next_below(keys.size() - 1));
      if (to >= from) ++to;
      s.transfer(keys[from], keys[to], static_cast<int64_t>(rng.next_in(1, 3)));
    } else {
      std::vector<int64_t> view = s.snapshot_counters(keys);
      int64_t sum = 0;
      for (int64_t v : view) sum += v;
      EXPECT_EQ(sum, 0) << "snapshot observed a torn transfer";
    }
    return op;
  });
  // Quiescent audit from a fresh replay cursor.
  std::vector<int64_t> final_view = sessions[0].snapshot_counters(keys);
  int64_t sum = 0;
  for (int64_t v : final_view) sum += v;
  EXPECT_EQ(sum, 0);
  EXPECT_EQ(store.journal_tickets(), 2 * per_thread);
}

// Incrementers + snapshotters: every snapshot's total must be a value the
// inc-only history passes through (between 0 and the final total, and at
// quiescence exactly the counter reads). Exercises the deposit-protocol
// acquire path: replayers spin on entries whose writers sit between their
// ticket fetch&add and their release store.
TEST(SnapshotStress, SnapshotsRaceIncrementersMonotonically) {
  const int threads = 4;
  const int per_thread = 300;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const std::vector<uint64_t> keys = shard_representatives(store);
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    svc::C2Session& s = sessions[static_cast<size_t>(t)];
    if (t < 2) {
      s.counter(keys[static_cast<size_t>(j) % keys.size()]).inc();
    } else {
      std::vector<int64_t> view = s.snapshot_counters(keys);
      int64_t sum = 0;
      for (int64_t v : view) {
        EXPECT_GE(v, 0);
        sum += v;
      }
      EXPECT_LE(sum, 2 * per_thread);
    }
    return op;
  });
  // Quiescent identity: the snapshot equals the per-key counter reads.
  std::vector<int64_t> view = sessions[0].snapshot_counters(keys);
  int64_t total = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(view[i], sessions[0].counter_read(keys[i]));
    total += view[i];
  }
  EXPECT_EQ(total, 2 * per_thread);
}

// Max keys under concurrent writers: every snapshot component must be a
// value some writer journaled (or zero), and the quiescent snapshot agrees
// with the per-key max reads.
TEST(SnapshotStress, MaxFacetSnapshotsUnderContention) {
  const int threads = 4;
  const int per_thread = 200;
  svc::C2Store store(stress_config(threads));
  auto sessions = open_sessions(store, threads);
  const std::vector<uint64_t> keys = shard_representatives(store);
  const int64_t vmax = stress_config(threads).max_value;
  std::vector<svc::SnapKey> mkeys;
  for (uint64_t k : keys) mkeys.push_back(svc::SnapKey::max(k));
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    svc::C2Session& s = sessions[static_cast<size_t>(t)];
    if (t < 2) {
      Rng rng(static_cast<uint64_t>(t) * 104729 + static_cast<uint64_t>(j));
      s.max(keys[static_cast<size_t>(rng.next_below(keys.size()))])
          .write(rng.next_in(1, vmax));
    } else {
      for (int64_t v : s.snapshot(mkeys)) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, vmax);
      }
    }
    return op;
  });
  std::vector<int64_t> view = sessions[0].snapshot(mkeys);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(view[i], sessions[0].max_read(keys[i]))
        << "quiescent max snapshot must equal the per-key read";
  }
}

// Session churn: waves of short-lived sessions snapshot on freshly recycled
// lanes while transferors keep the journal moving. Every fresh session
// replays the whole journal from cursor 0 — conservation must hold on every
// one of those full replays, and lane recycling must not leak replay state
// between session generations.
TEST(SnapshotStress, SessionChurnSnapshotsOnRecycledLanes) {
  const int threads = 4;
  const int per_thread = 60;
  svc::C2Store store(stress_config(threads));
  const std::vector<uint64_t> keys = shard_representatives(store);
  rt::run_stress(threads, per_thread, [&](int t, int j) {
    rt::TimedOp op;
    svc::C2Session s = store.open_session();  // churn: open per op
    if (t < 2) {
      Rng rng(static_cast<uint64_t>(t) * 31337 + static_cast<uint64_t>(j));
      size_t from = static_cast<size_t>(rng.next_below(keys.size()));
      size_t to = static_cast<size_t>(rng.next_below(keys.size() - 1));
      if (to >= from) ++to;
      s.transfer(keys[from], keys[to], 1);
    } else {
      std::vector<int64_t> view = s.snapshot_counters(keys);
      int64_t sum = 0;
      for (int64_t v : view) sum += v;
      EXPECT_EQ(sum, 0) << "fresh-session full replay observed a torn transfer";
    }
    return op;
  });
  EXPECT_EQ(store.journal_tickets(), 2 * per_thread);
}

}  // namespace
}  // namespace c2sl
