// Theorem 2 (paper §3.2): the fetch&add snapshot is wait-free and (strongly)
// linearizable. Sequential semantics, random-schedule linearizability sweeps,
// one-step wait-freedom, crash tolerance, and the differential test against
// the register-based AADGMS baseline.
#include "core/snapshot_faa.h"

#include <gtest/gtest.h>

#include "baselines/aadgms_snapshot.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using testing::ObjectFactory;
using testing::OpGen;
using testing::WorkloadOptions;

ObjectFactory faa_factory() {
  return [](sim::World& w, int n) {
    return std::make_shared<core::SnapshotFAA>(w, "snap", n);
  };
}

ObjectFactory aadgms_factory() {
  return [](sim::World& w, int n) {
    return std::make_shared<baselines::AadgmsSnapshot>(w, "snap", n);
  };
}

OpGen update_scan_mix(int64_t max_value, double update_prob = 0.5) {
  return [max_value, update_prob](int, int, Rng& rng) {
    if (rng.next_bool(update_prob)) {
      return verify::Invocation{"Update", num(rng.next_in(0, max_value)), -1};
    }
    return verify::Invocation{"Scan", unit(), -1};
  };
}

TEST(SnapshotFAA, SequentialSemantics) {
  sim::World world;
  core::SnapshotFAA s(world, "s", 3);
  sim::Ctx c0, c1, c2;
  c0.world = c1.world = c2.world = &world;
  c0.self = 0;
  c1.self = 1;
  c2.self = 2;
  EXPECT_EQ(s.scan(c0), (std::vector<int64_t>{0, 0, 0}));
  s.update(c0, 5);
  s.update(c1, 7);
  EXPECT_EQ(s.scan(c2), (std::vector<int64_t>{5, 7, 0}));
  s.update(c0, 3);  // DECREASE: snapshots are not monotone, unlike max registers
  EXPECT_EQ(s.scan(c1), (std::vector<int64_t>{3, 7, 0}));
  s.update(c2, 1023);
  EXPECT_EQ(s.scan(c0), (std::vector<int64_t>{3, 7, 1023}));
}

TEST(SnapshotFAA, SameValueUpdateStillTakesItsStep) {
  sim::World world;
  core::SnapshotFAA s(world, "s", 2);
  sim::Ctx c0;
  c0.world = &world;
  c0.self = 0;
  s.update(c0, 4);
  uint64_t before = c0.steps_taken;
  s.update(c0, 4);  // §3.2 step 1: fetch&add(R, 0)
  EXPECT_EQ(c0.steps_taken - before, 1u);
  EXPECT_EQ(s.scan(c0)[0], 4);
}

TEST(SnapshotFAA, LinearizableUnderRandomSchedules) {
  for (int n : {2, 3, 4}) {
    verify::SnapshotSpec spec(n);
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 4;
    EXPECT_TRUE(testing::lin_sweep(faa_factory(), update_scan_mix(12), spec, opts,
                                   /*num_seeds=*/40, "snap"))
        << "n=" << n;
  }
}

TEST(SnapshotFAA, LinearizableUnderCrashes) {
  verify::SnapshotSpec spec(3);
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  opts.crash_prob = 0.02;
  opts.max_crashes = 2;
  EXPECT_TRUE(testing::lin_sweep(faa_factory(), update_scan_mix(8), spec, opts,
                                 /*num_seeds=*/40, "snap"));
}

TEST(SnapshotFAA, EveryOperationIsOneStep) {
  sim::SimRun run(3);
  auto obj = std::make_shared<core::SnapshotFAA>(run.world, "s", 3);
  std::vector<uint64_t> per_op_steps;
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [obj, &per_op_steps](sim::Ctx& ctx) {
      for (int j = 0; j < 4; ++j) {
        uint64_t before = ctx.steps_taken;
        if (j % 2 == 0) {
          obj->update(ctx, j + ctx.self * 3);
        } else {
          obj->scan(ctx);
        }
        per_op_steps.push_back(ctx.steps_taken - before);
      }
    });
  }
  sim::RandomStrategy strategy(19);
  run.sched.run(strategy, 10000);
  ASSERT_EQ(per_op_steps.size(), 12u);
  for (uint64_t s : per_op_steps) EXPECT_EQ(s, 1u);
}

// AADGMS (read/write) baseline is linearizable too — just not strongly so
// (see strong_lin_negative_test.cpp) and with multi-collect scans.
TEST(AadgmsSnapshot, LinearizableUnderRandomSchedules) {
  for (int n : {2, 3}) {
    verify::SnapshotSpec spec(n);
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(aadgms_factory(), update_scan_mix(8), spec, opts,
                                   /*num_seeds=*/40, "snap"))
        << "n=" << n;
  }
}

TEST(AadgmsSnapshot, SequentialMatchesFAA) {
  sim::World world;
  core::SnapshotFAA faa(world, "faa", 3);
  baselines::AadgmsSnapshot aadgms(world, "aadgms", 3);
  sim::Ctx solo;
  solo.world = &world;
  Rng rng(5);
  for (int step = 0; step < 200; ++step) {
    solo.self = static_cast<int>(rng.next_below(3));
    if (rng.next_bool()) {
      int64_t v = rng.next_in(0, 100);
      faa.update(solo, v);
      aadgms.update(solo, v);
    } else {
      ASSERT_EQ(faa.scan(solo), aadgms.scan(solo));
    }
  }
}

// Scans cost one step for FAA vs >= 2n reads for AADGMS — the structural
// difference the benchmarks quantify.
TEST(SnapshotComparison, StepCounts) {
  sim::World world;
  core::SnapshotFAA faa(world, "faa", 4);
  baselines::AadgmsSnapshot aadgms(world, "aadgms", 4);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 0;
  uint64_t before = solo.steps_taken;
  faa.scan(solo);
  uint64_t faa_steps = solo.steps_taken - before;
  before = solo.steps_taken;
  aadgms.scan(solo);
  uint64_t aadgms_steps = solo.steps_taken - before;
  EXPECT_EQ(faa_steps, 1u);
  EXPECT_GE(aadgms_steps, 8u);  // one clean double collect == 2n reads
}

class SnapshotSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SnapshotSweep, Linearizable) {
  auto [n, update_prob] = GetParam();
  verify::SnapshotSpec spec(n);
  WorkloadOptions opts;
  opts.n = n;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(testing::lin_sweep(faa_factory(), update_scan_mix(6, update_prob), spec,
                                 opts, /*num_seeds=*/15, "snap"));
}

INSTANTIATE_TEST_SUITE_P(Configs, SnapshotSweep,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(0.2, 0.8)));

}  // namespace
}  // namespace c2sl
