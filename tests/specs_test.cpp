// Transition-table tests for every sequential specification in verify/specs.h.
// The checkers are only as good as the specs; each case pins down initial
// states, allowed transitions, responses, and rejection of malformed
// invocations — including the nondeterministic relaxed specs of §5.
#include "verify/specs.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace c2sl {
namespace {

using verify::Invocation;
using verify::Transition;

std::vector<Val> responses(const std::vector<Transition>& ts) {
  std::vector<Val> out;
  for (const Transition& t : ts) out.push_back(t.resp);
  return out;
}

TEST(MaxRegisterSpec, Transitions) {
  verify::MaxRegisterSpec spec;
  EXPECT_EQ(spec.initial(), "0");
  auto w = spec.next("3", {"WriteMax", num(5), 0});
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].state, "5");
  EXPECT_TRUE(is_unit(w[0].resp));
  // Smaller write leaves the state.
  auto w2 = spec.next("7", {"WriteMax", num(5), 0});
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_EQ(w2[0].state, "7");
  auto r = spec.next("7", {"ReadMax", unit(), 0});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].resp, num(7));
  EXPECT_EQ(r[0].state, "7");
  EXPECT_TRUE(spec.next("7", {"Bogus", unit(), 0}).empty());
}

TEST(SnapshotSpec, Transitions) {
  verify::SnapshotSpec spec(3);
  EXPECT_EQ(spec.initial(), "0,0,0");
  auto u = spec.next("0,0,0", {"Update", num(9), /*proc=*/1});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0].state, "0,9,0");
  auto s = spec.next("0,9,0", {"Scan", unit(), 2});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].resp, vec({0, 9, 0}));
}

TEST(CounterSpec, Transitions) {
  verify::CounterSpec spec;
  EXPECT_EQ(spec.next("4", {"Inc", unit(), 0})[0].state, "5");
  EXPECT_EQ(spec.next("4", {"Add", num(3), 0})[0].state, "7");
  EXPECT_EQ(spec.next("4", {"Read", unit(), 0})[0].resp, num(4));
}

TEST(LogicalClockSpec, Transitions) {
  verify::LogicalClockSpec spec;
  EXPECT_EQ(spec.next("4", {"Join", num(9), 0})[0].state, "9");
  EXPECT_EQ(spec.next("9", {"Join", num(2), 0})[0].state, "9");
  EXPECT_EQ(spec.next("9", {"Observe", unit(), 0})[0].resp, num(9));
}

TEST(UnionSetSpec, Transitions) {
  verify::UnionSetSpec spec;
  EXPECT_EQ(spec.initial(), "");
  auto i1 = spec.next("", {"Insert", num(4), 0});
  EXPECT_EQ(i1[0].state, "4");
  auto i2 = spec.next("4", {"Insert", num(2), 0});
  EXPECT_EQ(i2[0].state, "2,4");  // canonical sorted encoding
  auto i3 = spec.next("2,4", {"Insert", num(4), 0});
  EXPECT_EQ(i3[0].state, "2,4");  // idempotent
  EXPECT_EQ(spec.next("2,4", {"Has", num(4), 0})[0].resp, num(1));
  EXPECT_EQ(spec.next("2,4", {"Has", num(5), 0})[0].resp, num(0));
}

TEST(TasSpec, SingleShotTransitions) {
  verify::TasSpec spec;
  auto t0 = spec.next("0", {"TAS", unit(), 0});
  ASSERT_EQ(t0.size(), 1u);
  EXPECT_EQ(t0[0].resp, num(0));
  EXPECT_EQ(t0[0].state, "1");
  auto t1 = spec.next("1", {"TAS", unit(), 0});
  EXPECT_EQ(t1[0].resp, num(1));
  // Reset rejected without multi-shot.
  EXPECT_TRUE(spec.next("1", {"Reset", unit(), 0}).empty());
}

TEST(TasSpec, MultiShotReset) {
  verify::TasSpec spec(/*multi_shot=*/true);
  auto r = spec.next("1", {"Reset", unit(), 0});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].state, "0");
  EXPECT_EQ(spec.next("0", {"Reset", unit(), 0})[0].state, "0");  // idempotent
  EXPECT_EQ(spec.next("0", {"TAS", unit(), 0})[0].resp, num(0));  // winnable again
}

TEST(FaiSpec, Transitions) {
  verify::FaiSpec spec;
  auto f = spec.next("3", {"FAI", unit(), 0});
  EXPECT_EQ(f[0].resp, num(3));
  EXPECT_EQ(f[0].state, "4");
  EXPECT_EQ(spec.next("3", {"Read", unit(), 0})[0].resp, num(3));
}

TEST(SetSpec, NondeterministicTake) {
  verify::SetSpec spec;
  EXPECT_EQ(spec.next("", {"Take", unit(), 0})[0].resp, str("EMPTY"));
  auto takes = spec.next("2,5,9", {"Take", unit(), 0});
  ASSERT_EQ(takes.size(), 3u);  // any element may be removed
  std::vector<Val> resps = responses(takes);
  EXPECT_NE(std::find(resps.begin(), resps.end(), num(2)), resps.end());
  EXPECT_NE(std::find(resps.begin(), resps.end(), num(9)), resps.end());
  for (const Transition& t : takes) {
    EXPECT_EQ(t.state.size(), std::string("2,5").size());  // one element removed
  }
  // Put is idempotent on membership and always returns OK.
  EXPECT_EQ(spec.next("2", {"Put", num(2), 0})[0].resp, str("OK"));
}

TEST(LaneRegistrySpec, AcquireHandsOutFreeLanesOnly) {
  verify::LaneRegistrySpec spec(3);
  EXPECT_EQ(spec.initial(), "");
  // Empty registry: any of the 3 lanes may be granted; -1 is NOT allowed.
  auto acq = spec.next("", {"Acquire", unit(), 0});
  ASSERT_EQ(acq.size(), 3u);
  std::vector<Val> resps = responses(acq);
  for (int64_t l = 0; l < 3; ++l) {
    EXPECT_NE(std::find(resps.begin(), resps.end(), num(l)), resps.end());
  }
  // Lane 1 held: only 0 and 2 remain grantable.
  auto acq2 = spec.next("1", {"Acquire", unit(), 0});
  std::vector<Val> resps2 = responses(acq2);
  ASSERT_EQ(acq2.size(), 2u);
  EXPECT_EQ(std::find(resps2.begin(), resps2.end(), num(1)), resps2.end());
  // Full registry: ONLY -1 is allowed, and the state is unchanged.
  auto full = spec.next("0,1,2", {"Acquire", unit(), 0});
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].resp, num(-1));
  EXPECT_EQ(full[0].state, "0,1,2");
}

TEST(LaneRegistrySpec, ReleaseRequiresOwnership) {
  verify::LaneRegistrySpec spec(3);
  auto rel = spec.next("0,2", {"Release", num(2), 0});
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].state, "0");
  EXPECT_TRUE(is_unit(rel[0].resp));
  EXPECT_TRUE(spec.next("0", {"Release", num(2), 0}).empty())
      << "releasing an unheld lane must be illegal";
  EXPECT_TRUE(spec.next("0", {"Bogus", unit(), 0}).empty());
}

TEST(QueueSpec, ExactFifo) {
  verify::QueueSpec spec;
  auto e = spec.next("", {"Enq", num(7), 0});
  EXPECT_EQ(e[0].state, "7");
  EXPECT_EQ(e[0].resp, str("OK"));
  auto d = spec.next("7,8", {"Deq", unit(), 0});
  ASSERT_EQ(d.size(), 1u);  // k == 1: only the head
  EXPECT_EQ(d[0].resp, num(7));
  EXPECT_EQ(d[0].state, "8");
  EXPECT_EQ(spec.next("", {"Deq", unit(), 0})[0].resp, str("EMPTY"));
}

TEST(QueueSpec, KOutOfOrderWindow) {
  verify::QueueSpec spec(/*k=*/3);
  auto d = spec.next("1,2,3,4,5", {"Deq", unit(), 0});
  ASSERT_EQ(d.size(), 3u);  // any of the 3 oldest
  std::vector<Val> resps = responses(d);
  EXPECT_NE(std::find(resps.begin(), resps.end(), num(1)), resps.end());
  EXPECT_NE(std::find(resps.begin(), resps.end(), num(3)), resps.end());
  EXPECT_EQ(std::find(resps.begin(), resps.end(), num(4)), resps.end());
  // Window never exceeds the queue length.
  EXPECT_EQ(spec.next("9", {"Deq", unit(), 0}).size(), 1u);
}

TEST(StackSpec, Lifo) {
  verify::StackSpec spec;
  auto p = spec.next("1,2", {"Push", num(3), 0});
  EXPECT_EQ(p[0].state, "1,2,3");
  auto pop = spec.next("1,2,3", {"Pop", unit(), 0});
  EXPECT_EQ(pop[0].resp, num(3));
  EXPECT_EQ(pop[0].state, "1,2");
  EXPECT_EQ(spec.next("", {"Pop", unit(), 0})[0].resp, str("EMPTY"));
}

TEST(StutteringQueueSpec, BudgetedStutters) {
  verify::StutteringQueueSpec spec(/*m=*/2);
  EXPECT_EQ(spec.initial(), "0:0:");
  // Enq with budget left: two options (land or stutter).
  auto e = spec.next("1:0:7", {"Enq", num(9), 0});
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].state, "0:0:7,9");  // landing resets the counter
  EXPECT_EQ(e[1].state, "2:0:7");    // stutter consumes budget
  // Budget exhausted: landing is forced.
  auto forced = spec.next("2:0:7", {"Enq", num(9), 0});
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_EQ(forced[0].state, "0:0:7,9");
  // Stuttering Deq returns the front WITHOUT removing it.
  auto d = spec.next("0:0:7,8", {"Deq", unit(), 0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].resp, num(7));
  EXPECT_EQ(d[0].state, "0:0:8");
  EXPECT_EQ(d[1].resp, num(7));
  EXPECT_EQ(d[1].state, "0:1:7,8");
  // Deq on empty is EMPTY regardless of budgets.
  EXPECT_EQ(spec.next("1:1:", {"Deq", unit(), 0})[0].resp, str("EMPTY"));
}

TEST(OperationsFromEvents, RebuildsTable) {
  std::vector<sim::Event> events;
  events.push_back({sim::Event::Kind::kInvoke, 0, 0, 0, "q", "Enq", num(5)});
  events.push_back({sim::Event::Kind::kStep, 0, -1, 1, "q.tail", "faa", Val{}});
  events.push_back({sim::Event::Kind::kInvoke, 1, 1, 2, "q", "Deq", unit()});
  events.push_back({sim::Event::Kind::kRespond, 0, 0, 3, "", "", str("OK")});
  auto ops = verify::operations_from_events(events);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].complete);
  EXPECT_EQ(ops[0].resp, str("OK"));
  EXPECT_EQ(ops[0].inv_seq, 0u);
  EXPECT_EQ(ops[0].resp_seq, 3u);
  EXPECT_FALSE(ops[1].complete);
  EXPECT_EQ(ops[1].name, "Deq");
}

TEST(ValueCodec, RoundTrips) {
  for (const Val& v : {unit(), num(0), num(-17), num(INT64_MAX), vec({}),
                       vec({1, -2, 3}), str(""), str("EMPTY"), str("with:colons,commas")}) {
    EXPECT_EQ(decode_val(encode_val(v)), v) << to_string(v);
  }
}

TEST(ValueCodec, HashSeparates) {
  EXPECT_NE(hash_val(num(1)), hash_val(num(2)));
  EXPECT_NE(hash_val(num(1)), hash_val(vec({1})));
  EXPECT_NE(hash_val(str("OK")), hash_val(str("EMPTY")));
  EXPECT_EQ(hash_val(vec({1, 2})), hash_val(vec({1, 2})));
}

}  // namespace
}  // namespace c2sl
